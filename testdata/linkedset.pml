// linkedset.pml — a persistent sorted linked set with threaded inserts,
// exercising locks, spawn, and pointer-heavy persistent structures.

var lockcell;

fn lk() {
    if (lockcell == 0) {
        lockcell = valloc(1);
    }
    return lockcell;
}

fn init_() {
    var root = pmalloc(2);
    root[0] = 0;   // list head
    root[1] = 0;   // size
    persist(root, 2);
    setroot(0, root);
    return 0;
}

// insert keeps the list sorted ascending; duplicates are ignored.
fn insert(v) {
    lock(lk());
    var root = getroot(0);
    var cur = root[0];
    var prev = 0;
    while (cur != 0 && cur[0] < v) {
        prev = cur;
        cur = cur[1];
    }
    if (cur != 0 && cur[0] == v) {
        unlock(lk());
        return 0;
    }
    var n = pmalloc(2);
    n[0] = v;
    n[1] = cur;
    persist(n, 2);
    if (prev == 0) {
        root[0] = n;
        persist(root, 1);
    } else {
        prev[1] = n;
        persist(prev + 1, 1);
    }
    root[1] = root[1] + 1;
    persist(root + 1, 1);
    unlock(lk());
    return 1;
}

fn contains(v) {
    var root = getroot(0);
    var cur = root[0];
    while (cur != 0 && cur[0] <= v) {
        if (cur[0] == v) {
            return 1;
        }
        cur = cur[1];
    }
    return 0;
}

fn size() {
    var root = getroot(0);
    return root[1];
}

// insert_many inserts [base, base+n) from a worker thread.
fn insert_many(base, n) {
    var i = 0;
    while (i < n) {
        insert(base + i);
        i = i + 1;
    }
    return 0;
}

// parallel_fill inserts two ranges concurrently and waits.
fn parallel_fill(n) {
    spawn insert_many(0, n);
    spawn insert_many(n, n);
    var spin = 0;
    while (spin < 100000 && size() < n + n) {
        yield();
        spin = spin + 1;
    }
    return size();
}

fn checksorted() {
    var root = getroot(0);
    var cur = root[0];
    while (cur != 0) {
        var nxt = cur[1];
        if (nxt != 0) {
            assert(cur[0] < nxt[0]);
        }
        cur = nxt;
    }
    return root[1];
}

// recover_ walks the list but must tolerate a crash before init_ finished
// (null root — found by the internal/torture crash sweep).
fn recover_() {
    recover_begin();
    var seen = 0;
    var root = getroot(0);
    if (root != 0) {
        var cur = root[0];
        while (cur != 0 && seen <= root[1] + 4) {
            seen = seen + 1;
            cur = cur[1];
        }
    }
    recover_end();
    return seen;
}
