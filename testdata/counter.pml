// counter.pml — the smallest persistent program: a durable counter with a
// recovery function. Used by the pmlc/arthas-run tools and fixture tests.

fn init_() {
    var root = pmalloc(2);
    root[0] = 0;
    persist(root, 1);
    setroot(0, root);
    return 0;
}

fn bump() {
    var root = getroot(0);
    root[0] = root[0] + 1;
    persist(root, 1);
    return root[0];
}

fn value() {
    var root = getroot(0);
    return root[0];
}

// recover_ must tolerate a pool that crashed before init_ finished: the
// root slot may still be null (found by the internal/torture crash sweep).
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var v = 0;
    if (root != 0) {
        v = root[0];
    }
    recover_end();
    return v;
}
