// ringlog.pml — a persistent ring buffer committed with transactions:
// append writes the slot and the head index atomically, so a crash never
// leaves a half-visible record.

fn init_(cap) {
    var root = pmalloc(4);
    var buf = pmalloc(cap);
    root[0] = buf;
    root[1] = cap;
    root[2] = 0;   // head (next write position)
    root[3] = 0;   // total appended
    persist(root, 4);
    setroot(0, root);
    return 0;
}

fn append_(v) {
    var root = getroot(0);
    var buf = root[0];
    txbegin();
    buf[root[2]] = v;
    root[2] = (root[2] + 1) % root[1];
    root[3] = root[3] + 1;
    txcommit();
    return root[3];
}

// nth returns the i-th most recent record (0 = newest).
fn nth(i) {
    var root = getroot(0);
    if (i >= root[1] || i >= root[3]) {
        return -1;
    }
    var buf = root[0];
    var pos = (root[2] - 1 - i) % root[1];
    if (pos < 0) {
        pos = pos + root[1];
    }
    return buf[pos];
}

fn total() {
    var root = getroot(0);
    return root[3];
}

// recover_ rewarms the buffer but must tolerate a crash before init_
// finished: the root slot — or the buffer pointer inside a torn root
// flush — may still be null (found by the internal/torture crash sweep).
fn recover_() {
    recover_begin();
    var total = 0;
    var root = getroot(0);
    if (root != 0) {
        var buf = root[0];
        var i = 0;
        while (buf != 0 && i < root[1]) {
            var x = buf[i];
            i = i + 1;
        }
        total = root[3];
    }
    recover_end();
    return total;
}
