// checksum.pml — an 8-cell persistent array whose checker rejects any cell
// over 999. Poisoning one cell and then overwriting every OTHER cell buries
// the bad write deep in the reversion plan (candidates follow address
// recency), which makes this the smoke fixture for the parallel speculative
// mitigation path: "mitigate check" must search many candidates before it
// finds the healing reversion. Mirrors the scenario in parallel_bench_test.go.

fn init_() {
    var root = pmalloc(12);
    var i = 0;
    while (i < 8) {
        root[i] = 1;
        i = i + 1;
    }
    persist(root, 8);
    setroot(0, root);
    return 0;
}

fn set(i, v) {
    var root = getroot(0);
    root[i] = v;
    persist(root + i, 1);
    return 0;
}

fn check() {
    var root = getroot(0);
    var bad = 0;
    var sum = 0;
    var r = 0;
    while (r < 200) {
        var i = 0;
        while (i < 8) {
            var v = root[i];
            sum = sum + v;
            if (v > 999) {
                bad = 1;
            }
            i = i + 1;
        }
        r = r + 1;
    }
    assert(bad == 0);
    return sum;
}
