// native.pml — native-persistence fixture (paper §3.2's second framework
// class: stores + flush/fence instead of library persist calls), written
// with the persistence slop real native code accumulates: a redundant
// whole-object persist right after a zeroed allocation, back-to-back
// fences, and word-at-a-time flushes of contiguous ranges. The optimizer
// (-opt / internal/opt) removes the persist, drops the second fence of
// every pair, and coalesces each contiguous flush run — while every crash
// point keeps recovering to the identical durable state (the torture
// equivalence sweep proves it per crash point).

fn init_() {
    var log = pmalloc(8);   // durably zero already (Zalloc persists zeroes)
    log[0] = 0;             // head slot: rewrite of a zero word
    flush(log, 1);
    fence();
    persist(log, 8);        // redundant: words 1..7 never left zero, word 0 fenced
    fence();                // redundant: queue provably empty after the fence above
    setroot(0, log);
    return 0;
}

fn append_(v) {
    var log = getroot(0);
    var head = log[0];
    log[head + 1] = v;
    flush(log + head + 1, 1);   // dynamic offset: the optimizer must leave this alone
    fence();
    log[0] = head + 1;
    flush(log, 1);
    fence();
    return head + 1;
}

// reset_ clears the first three slots word-at-a-time — three exactly
// contiguous flushes the optimizer coalesces into one, and a doubled fence
// it halves.
fn reset_() {
    var log = getroot(0);
    log[0] = 0;
    log[1] = 0;
    log[2] = 0;
    flush(log, 1);
    flush(log + 1, 1);
    flush(log + 2, 1);
    fence();
    fence();
    return 0;
}

fn head() {
    var log = getroot(0);
    return log[0];
}

fn get(i) {
    var log = getroot(0);
    return log[i];
}

// recover_ must tolerate a pool that crashed before init_ finished: the
// root slot may still be null.
fn recover_() {
    recover_begin();
    var log = getroot(0);
    var h = 0;
    if (log != 0) {
        h = log[0];
    }
    recover_end();
    return h;
}
