package arthas

import (
	"bytes"
	"strings"
	"testing"
)

func TestOpenSavePoolRoundTrip(t *testing.T) {
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		inst.Call("put", i, 700+i)
	}
	var buf bytes.Buffer
	if err := inst.SavePool(&buf); err != nil {
		t.Fatal(err)
	}

	// A second "process" reopens the pool and reads the durable data.
	inst2, err := Open("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if trap := inst2.Restart(); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 8; i++ {
		v, trap := inst2.Call("get", i)
		if trap != nil || v != 700+i {
			t.Fatalf("get(%d) = %d (%v)", i, v, trap)
		}
	}
}

func TestOpenCrashSemantics(t *testing.T) {
	inst := newDemo(t)
	inst.Call("put", 0, 111)
	// Scribble without persisting: must not travel.
	root, _ := inst.Pool.Root(0)
	bufAddr, _ := inst.Pool.Load(root)
	inst.Pool.Store(uint64(bufAddr)+1, 999)

	var buf bytes.Buffer
	inst.SavePool(&buf)
	inst2, err := Open("demo", demoSource, Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := inst2.Call("get", 1)
	if v == 999 {
		t.Fatal("unpersisted store survived the pool file")
	}
	if v0, _ := inst2.Call("get", 0); v0 != 111 {
		t.Fatalf("persisted value = %d", v0)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open("demo", demoSource, Config{}, strings.NewReader("junk")); err == nil {
		t.Fatal("garbage pool file accepted")
	}
}

func TestImageRoundTripPreservesHistory(t *testing.T) {
	// A full image carries the checkpoint log and trace (as the paper's
	// durable metadata does), so a hard fault persisted in one process is
	// mitigable in the NEXT process, even though the contamination
	// happened entirely before the save.
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		inst.Call("put", i, 100+i)
	}
	inst.Call("corrupt", 5) // the bug fires BEFORE the save
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}

	inst2, err := OpenImage("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Log.TotalVersions() == 0 {
		t.Fatal("checkpoint history did not travel")
	}
	inst2.Restart()
	_, trap := inst2.Call("get", 0)
	if trap == nil {
		t.Fatal("hard fault did not travel")
	}
	inst2.Observe(trap)
	rep, err := inst2.Mitigate(func() *Trap {
		if tp := inst2.Restart(); tp != nil {
			return tp
		}
		_, tp := inst2.Call("get", 0)
		return tp
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("not recovered: %v (last %v)", rep, rep.LastTrap)
	}
	// All pre-save independent updates survive.
	for i := int64(0); i < 8; i++ {
		v, tp := inst2.Call("get", i)
		if tp != nil || v != 100+i {
			t.Fatalf("get(%d) = %d (%v)", i, v, tp)
		}
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	if _, err := OpenImage("demo", demoSource, Config{}, strings.NewReader("xx")); err == nil {
		t.Fatal("garbage image accepted")
	}
	// A bare pool file is not a full image.
	inst := newDemo(t)
	var buf bytes.Buffer
	inst.SavePool(&buf)
	if _, err := OpenImage("demo", demoSource, Config{}, &buf); err == nil {
		t.Fatal("bare pool file accepted as image")
	}
}

func TestImagePreservesTraceRecency(t *testing.T) {
	inst := newDemo(t)
	inst.Call("put", 1, 42)
	inst.Call("get", 1)
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	inst2, err := OpenImage("demo", demoSource, Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Trace.Len() != inst.Trace.Len() {
		t.Fatalf("trace events: %d vs %d", inst2.Trace.Len(), inst.Trace.Len())
	}
}
