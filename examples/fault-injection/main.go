// fault-injection: hardware faults become hard faults in PM (paper §2.4).
//
// A single bit flip in a persisted control flag — the Memcached "rehashing
// flag" pattern — silently reroutes every lookup to a missing table. A
// restart cannot clear it: the flipped bit is durable. Checksums CAN catch
// this one (the only one of the paper's twelve, §6.6), but detection alone
// does not repair the state; Arthas reverts the flag word to its last
// checkpointed value.
//
// Run: go run ./examples/fault-injection
package main

import (
	"fmt"
	"log"

	"arthas"
	"arthas/internal/detector"
)

const source = `
// root: 0 TAB  1 NBUCKET  2 MIGRATING(flag)  3 TAB2  4 NKEYS
fn init_() {
    var root = pmalloc(8);
    var tab = pmalloc(32);
    root[0] = tab;
    root[1] = 32;
    root[2] = 0;
    root[3] = 0;
    root[4] = 0;
    persist(root, 5);
    persist(tab, 32);
    setroot(0, root);
    return 0;
}

fn put(k, v) {
    var root = getroot(0);
    var n = pmalloc(3);
    n[0] = k;
    n[1] = v;
    var tab = root[0];
    var b = k % root[1];
    n[2] = tab[b];
    persist(n, 3);
    tab[b] = n;
    persist(tab + b, 1);
    root[4] = root[4] + 1;
    persist(root + 4, 1);
    return 0;
}

fn get(k) {
    var root = getroot(0);
    var tab = root[0];
    if (root[2] != 0) {
        // Migration in progress: consult the new table.
        var tab2 = root[3];
        if (tab2 == 0) {
            return -1;   // inconsistent state: nothing to consult
        }
        tab = tab2;
    }
    var n = tab[k % root[1]];
    while (n != 0) {
        if (n[0] == k) {
            return n[1];
        }
        n = n[2];
    }
    return -1;
}

fn recover_() {
    recover_begin();
    var root = getroot(0);
    var x = root[4];
    recover_end();
    return x;
}
`

func main() {
	inst, err := arthas.New("flipdemo", source, arthas.Config{RecoverFn: "recover_"})
	if err != nil {
		log.Fatal(err)
	}
	call := func(fn string, args ...int64) int64 {
		v, trap := inst.Call(fn, args...)
		if trap != nil {
			log.Fatalf("%s: %v", fn, trap)
		}
		return v
	}
	call("init_")
	for k := int64(1); k <= 40; k++ {
		call("put", k, k*3)
	}
	fmt.Println("key 7 before the fault:", call("get", 7))

	// Arm a checksum guard over the control words, the way a
	// checksum-based defense would (paper §6.6).
	root, _ := inst.Pool.Root(0)
	guard := &detector.ChecksumGuard{Name: "control", Addr: root + 2, Words: 2}
	if err := guard.Update(inst.Pool); err != nil {
		log.Fatal(err)
	}

	// The hardware fault: one durable bit flip in the MIGRATING flag.
	if err := inst.InjectBitFlip(root+2, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("key 7 after a 1-bit flip:", call("get", 7), "(every lookup now misses)")

	ok, _ := guard.Verify(inst.Pool)
	fmt.Println("checksum guard detects the corruption:", !ok)

	// Restart does not clear it: the flip is durable.
	inst.Restart()
	fmt.Println("key 7 after restart:", call("get", 7))

	// Data-loss failures have no trapping instruction; the fault
	// instructions are the serving function's returns.
	rep, err := inst.MitigateWithFaults(inst.RetInstrs("get"), func() *arthas.Trap {
		if tp := inst.Restart(); tp != nil {
			return tp
		}
		if v, tp := inst.Call("get", 7); tp != nil || v == -1 {
			return &arthas.Trap{Kind: arthas.TrapUserFail, Code: 7, Msg: "known key missing"}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigation: %v\n", rep)
	fmt.Println("key 7 after Arthas:", call("get", 7))
	fmt.Println("key 33 (independent):", call("get", 33))
}
