// kvstore-recovery: a Memcached-shaped hard fault, end to end.
//
// A chained-hashtable cache persists its items AND its index (the
// PMEM-Memcached pattern). A reference-count field wraps at 8 bits; the
// maintenance crawler then frees a still-linked item; the freed block is
// recycled by the next insert in the same bucket, producing a self-linked
// chain — every lookup in that bucket loops forever, across restarts.
//
// Arthas detects the hang, slices the looping load, and reverts the
// contaminated item back to its pre-recycle version.
//
// Run: go run ./examples/kvstore-recovery
package main

import (
	"fmt"
	"log"

	"arthas"
)

const source = `
// A small persistent cache: hashtable of items with refcounts.
//
// root:  0 TAB  1 NBUCKET  2 NITEMS
// item:  0 KEY  1 VAL  2 REF  3 HNEXT
fn init_() {
    var root = pmalloc(4);
    var tab = pmalloc(16);
    root[0] = tab;
    root[1] = 16;
    root[2] = 0;
    persist(root, 3);
    persist(tab, 16);
    setroot(0, root);
    return 0;
}

fn lookup(k) {
    var root = getroot(0);
    var tab = root[0];
    var it = tab[k % root[1]];
    while (it != 0) {
        if (it[0] == k) {
            return it;
        }
        it = it[3];    // the loop that never ends once a chain self-links
    }
    return 0;
}

// The crawler frees refcount-0 items, ASSUMING they are unlinked.
fn crawl() {
    var root = getroot(0);
    var tab = root[0];
    var b = 0;
    while (b < root[1]) {
        var it = tab[b];
        var prev = 0;
        while (it != 0) {
            var nxt = it[3];
            if (it[2] == 0) {
                pfree(it);     // BUG: never unlinked from the chain
                root[2] = root[2] - 1;
                persist(root + 2, 1);
            }
            prev = it;
            it = nxt;
        }
        b = b + 1;
    }
    return 0;
}

fn set(k, v) {
    crawl();
    var root = getroot(0);
    var it = lookup(k);
    if (it != 0) {
        it[1] = v;
        persist(it + 1, 1);
        return 1;
    }
    it = pmalloc(4);
    it[0] = k;
    it[1] = v;
    it[2] = 1;
    var tab = root[0];
    var b = k % root[1];
    it[3] = tab[b];
    persist(it, 4);
    tab[b] = it;
    persist(tab + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

fn get(k) {
    var it = lookup(k);
    if (it == 0) {
        return -1;
    }
    return it[1];
}

// hold pins an item; the increment wraps at 8 bits with no check.
fn hold(k) {
    var it = lookup(k);
    if (it == 0) {
        return -1;
    }
    it[2] = (it[2] + 1) & 255;
    persist(it + 2, 1);
    return it[2];
}

fn recover_() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var limit = root[2] + root[2] + 8;
    var seen = 0;
    var b = 0;
    while (b < root[1]) {
        var it = tab[b];
        while (it != 0 && seen <= limit) {
            seen = seen + 1;
            it = it[3];
        }
        b = b + 1;
    }
    recover_end();
    return seen;
}
`

func main() {
	inst, err := arthas.New("kvstore", source, arthas.Config{
		RecoverFn: "recover_",
		StepLimit: 200_000, // quick hang detection
	})
	if err != nil {
		log.Fatal(err)
	}
	call := func(fn string, args ...int64) int64 {
		v, trap := inst.Call(fn, args...)
		if trap != nil {
			log.Fatalf("%s: %v", fn, trap)
		}
		return v
	}
	call("init_")

	// Bucket 5 holds keys 5 and 21 (21 % 16 == 5).
	for k := int64(1); k <= 30; k++ {
		call("set", k, k*100)
	}
	fmt.Println("cache warm:", inst.Stats())

	// The soft bug: 255 holds wrap key 21's refcount to zero...
	for i := 0; i < 255; i++ {
		call("hold", 21)
	}
	// ...the next set's crawler frees the still-linked item, and the
	// same-bucket insert recycles its block: the chain self-links.
	call("set", 37, 3700) // 37 % 16 == 5

	_, trap := inst.Call("get", 5)
	fmt.Println("GET key 5:", trap) // hang (instruction budget exhausted)

	inst.Observe(trap)
	inst.Restart()
	_, trap2 := inst.Call("get", 5)
	_, hard := inst.Observe(trap2)
	fmt.Println("recurs across restart -> hard fault:", hard)

	rep, err := inst.Mitigate(func() *arthas.Trap {
		if tp := inst.Restart(); tp != nil {
			return tp
		}
		_, tp := inst.Call("get", 5)
		return tp
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigation: %v\n", rep)

	fmt.Println("key  5 =", call("get", 5))
	fmt.Println("key 13 =", call("get", 13), "(independent bucket, untouched)")
	fmt.Printf("discarded %.3f%% of checkpointed updates\n", rep.DataLossPct(inst.Log))
}
