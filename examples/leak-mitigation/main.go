// leak-mitigation: the PMEMKV asynchronous-lazy-free pattern (paper §4.7).
//
// Deletes unlink a node from the index immediately and hand the free to a
// background worker. A crash before the worker runs leaks the node — in
// persistent memory, forever. The fault instruction (the PM usage monitor
// firing) is disconnected from the root cause, so slicing does not apply;
// instead Arthas diffs the checkpoint log's live allocations against the
// addresses the annotated recovery function touches, and frees the rest.
//
// Run: go run ./examples/leak-mitigation
package main

import (
	"fmt"
	"log"

	"arthas"
)

const source = `
// root: 0 TAB  1 NBUCKET  2 NKEYS
// node: 0 KEY  1 VALUE  2 HNEXT
fn init_() {
    var root = pmalloc(4);
    var tab = pmalloc(32);
    root[0] = tab;
    root[1] = 32;
    root[2] = 0;
    persist(root, 3);
    persist(tab, 32);
    setroot(0, root);
    return 0;
}

fn put(k, v) {
    var root = getroot(0);
    var n = pmalloc(3);
    n[0] = k;
    n[1] = v;
    var tab = root[0];
    var b = k % root[1];
    n[2] = tab[b];
    persist(n, 3);
    tab[b] = n;
    persist(tab + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

fn get(k) {
    var root = getroot(0);
    var tab = root[0];
    var n = tab[k % root[1]];
    while (n != 0) {
        if (n[0] == k) {
            return n[1];
        }
        n = n[2];
    }
    return -1;
}

// The async worker frees the node... eventually.
fn free_worker(n) {
    yield();
    pfree(n);
    return 0;
}

// del unlinks immediately and schedules the free (the f12 pattern).
fn del(k) {
    var root = getroot(0);
    var tab = root[0];
    var b = k % root[1];
    var n = tab[b];
    var prev = 0;
    while (n != 0) {
        if (n[0] == k) {
            if (prev == 0) {
                tab[b] = n[2];
                persist(tab + b, 1);
            } else {
                prev[2] = n[2];
                persist(prev + 2, 1);
            }
            root[2] = root[2] - 1;
            persist(root + 2, 1);
            spawn free_worker(n);
            return 1;
        }
        prev = n;
        n = n[2];
    }
    return 0;
}

// The annotated recovery function touches every node reachable from the
// index — exactly the set leak mitigation must NOT free.
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var limit = root[2] + root[2] + 8;
    var seen = 0;
    var b = 0;
    while (b < root[1]) {
        var n = tab[b];
        while (n != 0 && seen <= limit) {
            var v = n[1];
            seen = seen + 1;
            n = n[2];
        }
        b = b + 1;
    }
    recover_end();
    return seen;
}
`

func main() {
	inst, err := arthas.New("pmkv", source, arthas.Config{
		PoolWords: 4096,
		RecoverFn: "recover_",
	})
	if err != nil {
		log.Fatal(err)
	}
	call := func(fn string, args ...int64) int64 {
		v, trap := inst.Call(fn, args...)
		if trap != nil {
			log.Fatalf("%s: %v", fn, trap)
		}
		return v
	}
	call("init_")

	// Churn: insert and delete; every delete's free worker dies in a
	// crash before running.
	for k := int64(1); k <= 120; k++ {
		call("put", k, k*7)
		if k > 20 {
			call("del", k-20)
		}
		if k%25 == 0 {
			inst.Restart() // kills pending free workers: nodes leak
		}
	}
	fmt.Printf("after churn: %d/%d pool words live, leak suspected: %v\n",
		inst.Pool.LiveWords(), inst.Pool.Words(), inst.LeakSuspected())

	rep, err := inst.MitigateLeak()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leak mitigation freed %d blocks (%d words)\n", len(rep.FreedAddr), rep.FreedWords)
	fmt.Printf("after mitigation: %d/%d pool words live, leak suspected: %v\n",
		inst.Pool.LiveWords(), inst.Pool.Words(), inst.LeakSuspected())

	// Live keys are untouched.
	fmt.Println("key 110 =", call("get", 110))
	fmt.Println("key 101 =", call("get", 101))
	// Deleted keys stay deleted.
	fmt.Println("key 50 (deleted) =", call("get", 50))
}
