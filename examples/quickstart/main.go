// Quickstart: the smallest useful Arthas loop.
//
// A tiny PM key-value program has a bug: a special request persists a
// corrupt data pointer. The crash recurs across restarts — a hard fault —
// until Arthas slices the fault, finds the contaminating checkpoint entry,
// and reverts it, keeping every independent update.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"arthas"
)

const source = `
// A minimal persistent array store.
fn init_() {
    var root = pmalloc(4);
    var buf = pmalloc(16);
    root[0] = buf;   // data pointer
    root[1] = 16;    // capacity
    persist(root, 2);
    setroot(0, root);
    return 0;
}

fn put(i, v) {
    var root = getroot(0);
    var buf = root[0];
    buf[i % 16] = v;
    persist(buf + (i % 16), 1);
    return 0;
}

fn get(i) {
    var root = getroot(0);
    var buf = root[0];
    return buf[i % 16];
}

// The bug: a maintenance request computes a scratch value in a volatile
// temporary and persists it over the data pointer (a type-II fault: the
// bad value propagates from volatile to persistent state).
fn compact(level) {
    var root = getroot(0);
    var scratch = level * 1024;
    if (level > 3) {
        root[0] = scratch;   // BAD persistent pointer
        persist(root, 2);
    }
    return 0;
}

fn recover_() {
    recover_begin();
    var root = getroot(0);
    var cap = root[1];
    recover_end();
    return cap;
}
`

func main() {
	inst, err := arthas.New("quickstart", source, arthas.Config{RecoverFn: "recover_"})
	if err != nil {
		log.Fatal(err)
	}
	must(inst.Call("init_"))

	// Normal traffic.
	for i := int64(0); i < 16; i++ {
		must(inst.Call("put", i, 1000+i))
	}
	fmt.Println("wrote 16 values;", inst.Stats())

	// The bug triggers...
	must(inst.Call("compact", 9))

	// ...and the next read crashes.
	_, trap := inst.Call("get", 3)
	fmt.Println("GET after the bug:", trap)

	// Restart does not help: the bad pointer is persistent.
	inst.Observe(trap)
	inst.Restart()
	_, trap2 := inst.Call("get", 3)
	_, hard := inst.Observe(trap2)
	fmt.Printf("after restart the crash recurs (%v) -> hard fault: %v\n", trap2 != nil, hard)

	// Arthas: slice the fault, map it through the trace to checkpoint
	// entries, revert, re-execute.
	rep, err := inst.Mitigate(func() *arthas.Trap {
		if tp := inst.Restart(); tp != nil {
			return tp
		}
		_, tp := inst.Call("get", 3)
		return tp
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigation: %v\n", rep)

	// Every independent update survived.
	ok := true
	for i := int64(0); i < 16; i++ {
		v, tp := inst.Call("get", i)
		if tp != nil || v != 1000+i {
			ok = false
		}
	}
	fmt.Println("all 16 independent values intact:", ok)
	fmt.Printf("data discarded: %.3f%% of checkpointed updates\n", rep.DataLossPct(inst.Log))
}

func must(v int64, trap *arthas.Trap) {
	if trap != nil {
		log.Fatal(trap)
	}
}
