package arthas

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
	"arthas/internal/scrub"
	"arthas/internal/trace"
)

// A full Arthas image bundles the pool's durable state with the durable
// metadata the toolchain keeps alongside it: the checkpoint log (which the
// paper stores IN persistent memory, §4.2) and the PM address trace (a file
// that outlives the process, §4.1/§5). Reopening an image restores full
// mitigation power — reversion history recorded before the save remains
// usable, exactly as after a real restart of the paper's deployment.
//
// SavePool/Open (pool-only) model a bare pool file instead: durable data
// travels but history does not.

const (
	imageMagic   uint64 = 0x41525448_494D4731 // "ARTH IMG1"
	imageVersion uint64 = 1
)

// SaveImage writes pool + checkpoint log + trace.
func (i *Instance) SaveImage(w io.Writer) error {
	return WriteImage(w, i.Pool, i.Log, i.Trace)
}

// WriteImage serializes a full image from loose components — what SaveImage
// does for an Instance, exposed so tooling (arthas-inspect -repair) can
// rewrite an image it opened with ReadAnyImage after scrubbing the pool.
func WriteImage(w io.Writer, pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:], imageVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pool.WriteTo(w); err != nil {
		return fmt.Errorf("arthas: saving pool: %w", err)
	}
	if log == nil {
		log = checkpoint.NewLog(0)
	}
	if _, err := log.WriteTo(w); err != nil {
		return fmt.Errorf("arthas: saving checkpoint log: %w", err)
	}
	if tr == nil {
		tr = trace.New()
	}
	if _, err := tr.WriteTo(w); err != nil {
		return fmt.Errorf("arthas: saving trace: %w", err)
	}
	return nil
}

// OpenImage reopens a full image saved by SaveImage.
//
// Media corruption detected while opening the pool is auto-healed using the
// image's own checkpoint log — the paper's version store doubles as the
// scrubber's ground truth, so poisoned words roll forward to their newest
// checkpointed values; what the log cannot prove is quarantined and the
// pool opens degraded rather than failing. The pass is recorded in
// Instance.LastScrub.
func OpenImage(name, source string, cfg Config, r io.Reader) (*Instance, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("arthas: reading image: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("arthas: not an image file")
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != imageVersion {
		return nil, fmt.Errorf("arthas: image version %d, want %d", v, imageVersion)
	}
	pool, err := pmem.ReadPool(r)
	var scrubRep *scrub.Report
	if err != nil {
		var merr *pmem.MediaError
		if !errors.As(err, &merr) || pool == nil {
			return nil, fmt.Errorf("arthas: %w", err)
		}
		// The log and trace sections follow the pool bytes, which were fully
		// consumed even on a media error — read them, then heal with the log.
		log, lerr := checkpoint.ReadLog(r)
		if lerr != nil {
			return nil, fmt.Errorf("arthas: %w (and media corrupt: %v)", lerr, err)
		}
		tr, terr := trace.ReadTrace(r)
		if terr != nil {
			return nil, fmt.Errorf("arthas: %w (and media corrupt: %v)", terr, err)
		}
		scrubRep = scrub.Repair(pool, log, obs.OrNop(cfg.Observer))
		if !scrubRep.Healthy() {
			return nil, fmt.Errorf("arthas: image unscrubbable (%s): %w", scrubRep, err)
		}
		return assembleImage(name, source, cfg, pool, log, tr, scrubRep)
	}
	log, err := checkpoint.ReadLog(r)
	if err != nil {
		return nil, fmt.Errorf("arthas: %w", err)
	}
	tr, err := trace.ReadTrace(r)
	if err != nil {
		return nil, fmt.Errorf("arthas: %w", err)
	}
	return assembleImage(name, source, cfg, pool, log, tr, nil)
}

func assembleImage(name, source string, cfg Config, pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace, scrubRep *scrub.Report) (*Instance, error) {
	inst, err := build(name, source, cfg, pool)
	if err != nil {
		return nil, err
	}
	inst.Log = log
	inst.Trace = tr
	inst.LastScrub = scrubRep
	inst.Pool.SetHooks(inst.wrapHooks(inst.Log.Hooks()))
	inst.boot() // rebind trace sinks to the restored trace
	return inst, nil
}

// ReadAnyImage opens either a full image (SaveImage) or a bare pool file
// (SavePool / pmem's WriteTo) for post-mortem inspection, WITHOUT compiling
// a program or validating pool integrity — corrupted images open so that
// forensics tooling (cmd/arthas-inspect) can examine them. The checkpoint
// log and trace are nil for bare pool files. A non-nil pool may be returned
// alongside a non-nil error when the pool parsed but the image's durable
// metadata (checkpoint log, trace) is damaged.
func ReadAnyImage(r io.Reader) (*pmem.Pool, *checkpoint.Log, *trace.Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("arthas: reading image: %w", err)
	}
	if binary.LittleEndian.Uint64(head) != imageMagic {
		// Not a full image: try a bare pool file.
		pool, err := pmem.ReadPoolInspect(br)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("arthas: %w", err)
		}
		return pool, nil, nil, nil
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, nil, fmt.Errorf("arthas: reading image: %w", err)
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != imageVersion {
		return nil, nil, nil, fmt.Errorf("arthas: image version %d, want %d", v, imageVersion)
	}
	pool, err := pmem.ReadPoolInspect(br)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("arthas: %w", err)
	}
	log, err := checkpoint.ReadLog(br)
	if err != nil {
		return pool, nil, nil, fmt.Errorf("arthas: checkpoint log damaged: %w", err)
	}
	tr, err := trace.ReadTrace(br)
	if err != nil {
		return pool, log, nil, fmt.Errorf("arthas: trace damaged: %w", err)
	}
	return pool, log, tr, nil
}
