// Package arthas is the public face of this repository: a from-scratch Go
// reproduction of "Understanding and Dealing with Hard Faults in Persistent
// Memory Systems" (Choi, Burns, Huang — EuroSys 2021).
//
// Arthas recovers persistent-memory systems from *hard faults*: bad values
// that were persisted and therefore survive restart, turning classically
// "soft" bugs (races, overflows, bit flips, leaks) into recurring failures.
// The toolchain (paper Figure 4) is:
//
//	analyzer   — static analysis of the target program: PM-variable
//	             identification, trace instrumentation (GUIDs), and an
//	             inter-procedural Program Dependence Graph
//	checkpoint — fine-grained versioning of PM updates at the program's own
//	             persistence granularity and timing
//	detector   — failure monitoring with cross-restart similarity heuristics
//	reactor    — backward slicing of the fault instruction(s), mapping slice
//	             nodes through the dynamic PM address trace to checkpoint
//	             sequence numbers, and revert+re-execute until healthy
//
// Target programs are written in PML, a small C-like language whose
// runtime provides simulated persistent memory with PMDK-like semantics
// (pmalloc/persist/txbegin/txcommit/setroot; stores are volatile until
// persisted; crashes drop unflushed stores). See DESIGN.md for the full
// substitution map from the paper's C/LLVM/Optane stack to this one.
//
// The smallest useful loop:
//
//	inst, _ := arthas.New("demo", demoSource, arthas.Config{})
//	inst.Call("put", 1, 42)
//	if _, trap := inst.Call("get", 1); trap != nil {
//	    inst.Observe(trap)                    // detector: is it hard?
//	    rep, _ := inst.Mitigate(func() *arthas.Trap {
//	        inst.Restart()
//	        _, t := inst.Call("get", 1)
//	        return t
//	    })
//	    fmt.Println(rep.Recovered)
//	}
package arthas

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/detector"
	"arthas/internal/ir"
	"arthas/internal/obs"
	"arthas/internal/opt"
	"arthas/internal/pmem"
	"arthas/internal/provenance"
	"arthas/internal/reactor"
	"arthas/internal/scrub"
	"arthas/internal/trace"
	"arthas/internal/vm"
)

// Re-exported core types, so callers need only this package.
type (
	// Trap describes a failed PML execution (fault instruction + stack).
	Trap = vm.Trap
	// Report summarizes a mitigation run.
	Report = reactor.Report
	// LeakReport summarizes a leak mitigation (§4.7).
	LeakReport = reactor.LeakReport
	// Signature is a detector failure signature (§4.3).
	Signature = detector.Signature
	// Mode selects purge vs rollback reversion (§4.4).
	Mode = reactor.Mode
	// ScrubReport summarizes a media-scrub pass (docs/MEDIA_FAULTS.md).
	ScrubReport = scrub.Report
	// Incident is an end-to-end incident report (`arthas-incident/v1`).
	Incident = provenance.Incident
)

// Reversion modes.
const (
	ModePurge    = reactor.ModePurge
	ModeRollback = reactor.ModeRollback
)

// Trap kinds (vm package re-exports).
const (
	TrapSegfault     = vm.TrapSegfault
	TrapAssert       = vm.TrapAssert
	TrapUserFail     = vm.TrapUserFail
	TrapHang         = vm.TrapStepLimit
	TrapDeadlock     = vm.TrapDeadlock
	TrapPMFull       = vm.TrapPMOutOfSpace
	TrapMediaCorrupt = vm.TrapMediaCorrupt
)

// ErrMediaCorrupt is the pmem media-corruption sentinel, re-exported so
// callers can errors.Is against traps and open errors without importing
// internal packages.
var ErrMediaCorrupt = pmem.ErrMediaCorrupt

// LifecycleEvent identifies one Instance state transition, delivered to
// Config.OnLifecycle. Fleet managers (internal/fleet) use these to track
// per-shard serving state without wrapping every Instance entry point.
type LifecycleEvent string

// Lifecycle events, in the order a mitigating instance emits them.
const (
	// EventBoot fires once when the instance first comes up (New/Open).
	EventBoot LifecycleEvent = "boot"
	// EventRestart fires on every Restart — including the restarts a
	// mitigation's re-execution script performs.
	EventRestart LifecycleEvent = "restart"
	// EventMitigateStart/End bracket a reactor mitigation.
	EventMitigateStart LifecycleEvent = "mitigate-start"
	EventMitigateEnd   LifecycleEvent = "mitigate-end"
	// EventScrubStart/End bracket a media-scrub pass (explicit Scrub calls
	// and the reactor's scrub-then-retry hook alike).
	EventScrubStart LifecycleEvent = "scrub-start"
	EventScrubEnd   LifecycleEvent = "scrub-end"
)

// Config tunes an Instance.
type Config struct {
	// PoolWords sizes the simulated PM pool (default 1<<16 words).
	PoolWords int
	// MaxVersions per checkpoint entry (paper default 3).
	MaxVersions int
	// StepLimit per call: the hang-detection budget (default 5M).
	StepLimit int64
	// RecoverFn names the annotated recovery entry point run by Restart
	// (optional; use recover_begin()/recover_end() inside it to enable
	// leak mitigation).
	RecoverFn string
	// RestartLatency simulates the fixed cost of a real process restart
	// (exec, PM pool remap, recovery scan) that the instant in-memory
	// Restart otherwise hides. Mitigation re-executes the system once per
	// candidate reversion, so this latency dominates real mitigation time;
	// speculative sessions (Reactor.Workers > 1) overlap it. 0 (the
	// default) keeps Restart instant.
	RestartLatency time.Duration
	// Reactor configures the mitigation strategy (defaults to purge-first
	// with rollback fallback, one-by-one reversion).
	Reactor reactor.Config
	// Observer, when non-nil, receives telemetry from every layer of the
	// instance (pool, checkpoint log, trace, VM, detector, reactor). Use
	// an *obs.Recorder and its WriteJSONL/Summary to export. Survives
	// Restart: each fresh machine is rewired to the same sink.
	Observer obs.Sink
	// FlightEvents, when > 0, enables the crash-surviving flight recorder:
	// a ring buffer of the last FlightEvents telemetry events, fed by the
	// same call sites as Observer and embedded in pool images by SaveImage/
	// SavePool, so a saved -poolfile carries the event tail that led up to
	// a failure (inspect with cmd/arthas-inspect). Opening an image that
	// already carries a tail continues recording into it. 0 disables (the
	// zero-cost default for library embedding).
	FlightEvents int
	// Provenance attaches the per-word write-lineage index: every
	// instrumented PM store and every persistence event stamps last-writer
	// provenance, and a mitigation's Report can be assembled into an
	// `arthas-incident/v1` report with BuildIncident. Off by default (the
	// disabled path costs one nil-check per store, as with tracing).
	Provenance bool
	// OnLifecycle, when non-nil, receives instance state transitions
	// (boot, restart, mitigate, scrub) synchronously from the goroutine
	// driving the instance. Keep it cheap and non-blocking; it is how a
	// fleet manager mirrors shard state without touching internals.
	OnLifecycle func(LifecycleEvent)
	// Optimize runs the flush/fence-elimination pass (internal/opt) on the
	// compiled module before analysis and instrumentation. The optimized
	// program reaches every crash-visible durability point with the same
	// durable state as the original (torture-proven; see docs/OPTIMIZER.md).
	// Off by default. Instance.OptStats reports what the pass did.
	Optimize bool
	// WrapHooks, when non-nil, wraps the persistence hooks installed on the
	// pool — outermost, over the checkpoint log's hooks and any provenance
	// wrapping. The replication shipper (internal/repl) uses it to observe
	// every durability event; wrapped hooks MUST invoke the inner ones.
	// Speculative mitigation forks are never wrapped: fork probes must not
	// leak into the replication stream.
	WrapHooks func(pmem.Hooks, *checkpoint.Log) pmem.Hooks
	// ScrubSource, when non-nil, gives the media scrubber an out-of-pool
	// repair source (typically a replica's durable image): a corrupt block
	// the checkpoint log cannot prove locally is fetched from the source
	// and committed only when the stored seal proves it is the original
	// contents (docs/REPLICATION.md).
	ScrubSource scrub.BlockSource
}

// Instance is a PML system deployed under the full Arthas toolchain:
// compiled, analyzed, instrumented, checkpointed, traced, and monitored.
type Instance struct {
	Name string
	// Exposed components for advanced use and experiments.
	Module   *ir.Module
	Analysis *analysis.Result
	Pool     *pmem.Pool
	Log      *checkpoint.Log
	Trace    *trace.Trace
	Machine  *vm.Machine
	Detector *detector.Detector
	// Flight is the crash-surviving flight recorder (nil unless enabled by
	// Config.FlightEvents or recovered from a reopened image).
	Flight *obs.Flight
	// LastScrub is the most recent media-scrub report: set by Scrub, by the
	// reactor's scrub-then-retry hook, and by Open/OpenImage auto-healing a
	// corrupt image. Nil until a scrub has run.
	LastScrub *ScrubReport
	// Prov is the write-lineage index (nil unless Config.Provenance).
	Prov *provenance.Index
	// OptStats reports what the optimizer removed (nil unless
	// Config.Optimize).
	OptStats *opt.Stats

	cfg        Config
	obsSink    obs.Sink // Observer + Flight fan-out, wired into every layer
	lastTrap   *Trap
	mitigating atomic.Bool
}

// New compiles source, runs the static analyzer (instrumenting the module
// with trace GUIDs), creates a pool with the checkpoint log attached, and
// boots the VM.
func New(name, source string, cfg Config) (*Instance, error) {
	return build(name, source, cfg, nil)
}

// Open is New against an existing pool file (the pmem_map_file analogue):
// the durable image is reloaded, so the program's recovery path — not its
// init path — should run next. The checkpoint log starts empty, exactly as
// after a real restart of the paper's toolchain: history before the reopen
// is not revertible, history after is.
//
// Media corruption detected at open time is auto-healed: a bare pool file
// carries no checkpoint log, so the scrubber repairs what structure alone
// proves and quarantines the rest — the pool opens degraded rather than
// failing. Inspect Instance.LastScrub for what happened; use OpenImage for
// log-assisted repair.
func Open(name, source string, cfg Config, poolFile io.Reader) (*Instance, error) {
	pool, err := pmem.ReadPool(poolFile)
	if err != nil {
		var merr *pmem.MediaError
		if !errors.As(err, &merr) || pool == nil {
			return nil, fmt.Errorf("arthas: %w", err)
		}
		rep := scrub.Repair(pool, nil, obs.OrNop(cfg.Observer))
		if !rep.Healthy() {
			return nil, fmt.Errorf("arthas: pool unscrubbable (%s): %w", rep, err)
		}
		inst, berr := build(name, source, cfg, pool)
		if berr != nil {
			return nil, berr
		}
		inst.LastScrub = rep
		return inst, nil
	}
	return build(name, source, cfg, pool)
}

// SavePool writes the durable image to w; reopen with Open. Unpersisted
// stores do not travel (crash semantics).
func (i *Instance) SavePool(w io.Writer) error {
	_, err := i.Pool.WriteTo(w)
	return err
}

func build(name, source string, cfg Config, pool *pmem.Pool) (*Instance, error) {
	if cfg.PoolWords == 0 {
		cfg.PoolWords = 1 << 16
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = 5_000_000
	}
	if cfg.Reactor.MaxAttempts == 0 {
		workers := cfg.Reactor.Workers
		cfg.Reactor = reactor.DefaultConfig()
		cfg.Reactor.Workers = workers
	}
	mod, err := ir.CompileSource(name, source)
	if err != nil {
		return nil, fmt.Errorf("arthas: %w", err)
	}
	var optStats *opt.Stats
	if cfg.Optimize {
		if optStats, err = opt.Optimize(mod); err != nil {
			return nil, fmt.Errorf("arthas: %w", err)
		}
	}
	if pool == nil {
		pool = pmem.New(cfg.PoolWords)
	}
	// Flight recorder: prefer a tail recovered from a reopened image (the
	// recording continues where the crashed process stopped); otherwise
	// create one when enabled. The pool embeds it in saved images either
	// way, so forensic history is never silently dropped.
	fl := pool.Flight()
	if fl == nil && cfg.FlightEvents > 0 {
		fl = obs.NewFlight(cfg.FlightEvents)
		pool.AttachFlight(fl)
	}
	inst := &Instance{
		Name:     name,
		Module:   mod,
		Analysis: analysis.Analyze(mod),
		Pool:     pool,
		Log:      checkpoint.NewLog(cfg.MaxVersions),
		Trace:    trace.New(),
		Detector: detector.New(),
		Flight:   fl,
		OptStats: optStats,
		cfg:      cfg,
	}
	inst.Pool.SetHooks(inst.wrapHooks(inst.Log.Hooks()))
	if cfg.Provenance {
		inst.Prov = provenance.New()
		inst.Pool.SetHooks(inst.wrapHooks(inst.Prov.WrapHooks(inst.Log.Hooks(), inst.Log)))
		inst.Detector.Lineage = func(addr uint64) (int, bool) {
			rec, ok := inst.Prov.Lookup(addr)
			return rec.GUID, ok
		}
	}
	inst.SetObserver(cfg.Observer)
	inst.boot()
	inst.lifecycle(EventBoot)
	return inst, nil
}

// wrapHooks applies Config.WrapHooks (the replication shipper's tap)
// outermost over h.
func (i *Instance) wrapHooks(h pmem.Hooks) pmem.Hooks {
	if i.cfg.WrapHooks == nil {
		return h
	}
	return i.cfg.WrapHooks(h, i.Log)
}

// lifecycle delivers ev to Config.OnLifecycle when wired.
func (i *Instance) lifecycle(ev LifecycleEvent) {
	if i.cfg.OnLifecycle != nil {
		i.cfg.OnLifecycle(ev)
	}
}

// Health snapshots the instance's serving health: media degradation and
// quarantine from the pool, plus whether a mitigation is in flight. Safe to
// call from other goroutines (debug endpoints, fleet health aggregation).
func (i *Instance) Health() obs.HealthState {
	return obs.HealthState{
		Degraded:          i.Pool.MediaDegraded(),
		QuarantinedBlocks: len(i.Pool.QuarantinedBlocks()),
		Mitigating:        i.Mitigating(),
	}
}

func (i *Instance) boot() {
	i.Machine = vm.New(i.Module, i.Pool, vm.Config{StepLimit: i.cfg.StepLimit})
	i.Machine.SetSink(i.obsSink)
	i.Machine.TraceSink = i.Trace.Record
	i.Machine.TraceReadSink = i.Trace.RecordRead
	if i.Prov != nil {
		i.Machine.WriteSink = i.Prov.NoteWrite
		i.Prov.SetClock(i.Machine.Steps)
	}
}

// SetObserver installs (or clears, with nil) an observability sink on every
// layer of the instance. A logical clock reading the machine's step counter
// is wired into recorders, so spans carry logical time alongside wall time.
// The flight recorder, when present, always rides along: every layer's
// events also land in the crash-surviving ring buffer.
func (i *Instance) SetObserver(s obs.Sink) {
	i.cfg.Observer = s
	eff := obs.OrNop(s)
	if i.Flight != nil {
		eff = obs.Multi(eff, i.Flight)
	}
	i.obsSink = eff
	obs.WireClock(eff, func() int64 {
		if i.Machine == nil {
			return 0
		}
		return i.Machine.Steps()
	})
	i.Pool.SetSink(eff)
	i.Log.SetSink(eff)
	i.Trace.SetSink(eff)
	i.Detector.SetSink(eff)
	if i.Prov != nil {
		i.Prov.SetSink(eff)
	}
	if i.Machine != nil {
		i.Machine.SetSink(eff)
	}
}

// Scrub runs a full media-scrub pass over the pool: every poisoned word with
// a checkpointed value is repaired from the checkpoint log, unreconstructible
// blocks are quarantined, and allocator metadata is re-recovered. The report
// is also stored in LastScrub. A non-nil error means the pool is structurally
// unhealthy even after the pass.
func (i *Instance) Scrub() (*ScrubReport, error) {
	i.lifecycle(EventScrubStart)
	defer i.lifecycle(EventScrubEnd)
	var lineage scrub.LineageFunc
	if i.Prov != nil {
		lineage = func(addr uint64) (int, bool) {
			rec, ok := i.Prov.Lookup(addr)
			return rec.GUID, ok
		}
	}
	rep := scrub.RepairWithLineageFrom(i.Pool, i.Log, i.obsSink, lineage, i.cfg.ScrubSource)
	i.LastScrub = rep
	if !rep.Healthy() {
		return rep, fmt.Errorf("arthas: pool unhealthy after scrub: %s", rep)
	}
	return rep, nil
}

// MediaSuspected reports whether any media block's checksum mismatches.
func (i *Instance) MediaSuspected() bool { return i.Detector.CheckMedia(i.Pool) }

// scrubHook adapts Scrub to the reactor's scrub-then-retry contract.
func (i *Instance) scrubHook() func() error {
	return func() error {
		_, err := i.Scrub()
		return err
	}
}

// Call invokes a PML function with int64 arguments.
func (i *Instance) Call(fn string, args ...int64) (int64, *Trap) {
	return i.Machine.Call(fn, args...)
}

// Restart simulates process kill + restart: unpersisted stores are lost,
// volatile state is dropped, and the configured recovery function runs.
func (i *Instance) Restart() *Trap {
	i.lifecycle(EventRestart)
	if i.cfg.RestartLatency > 0 {
		time.Sleep(i.cfg.RestartLatency)
	}
	i.Pool.Crash()
	i.boot()
	if i.cfg.RecoverFn != "" {
		if _, trap := i.Machine.Call(i.cfg.RecoverFn); trap != nil {
			return trap
		}
	}
	return nil
}

// Observe feeds a failure to the detector; it returns the signature and
// whether a similar failure was already seen (a suspected hard fault).
func (i *Instance) Observe(trap *Trap) (Signature, bool) {
	i.lastTrap = trap
	return i.Detector.Observe(trap)
}

// LastTrap returns the most recently observed failure.
func (i *Instance) LastTrap() *Trap { return i.lastTrap }

// Mitigate runs the reactor workflow (slice → candidates → revert →
// re-execute) for the most recently observed failure. reexec must restart
// the system and reproduce the failing operation, returning nil when the
// system is healthy — the paper's re-execution script.
func (i *Instance) Mitigate(reexec func() *Trap) (*Report, error) {
	if i.lastTrap == nil {
		return nil, fmt.Errorf("arthas: no observed failure; call Observe first")
	}
	ctx := &reactor.Context{
		Analysis:     i.Analysis,
		Trace:        i.Trace,
		Log:          i.Log,
		Pool:         i.Pool,
		Fault:        i.lastTrap.Instr,
		AddrFault:    i.lastTrap.Kind == vm.TrapSegfault,
		ReExec:       reexec,
		Scrub:        i.scrubHook(),
		MediaSuspect: i.MediaSuspected,
		Obs:          i.obsSink,
	}
	return i.runMitigation(ctx), nil
}

// MitigateCall is Mitigate specialized to the common re-execution script
// "restart, then re-issue one call". Unlike Mitigate — whose opaque reexec
// closure is bound to the live instance — the recipe form can be replayed
// against isolated copy-on-write forks of the pool and checkpoint log, so
// when Config.Reactor.Workers > 1 the reversion search runs speculatively
// in parallel (docs/PARALLEL_MITIGATION.md). At Workers <= 1 it behaves
// exactly like the equivalent Mitigate call.
func (i *Instance) MitigateCall(fn string, args ...int64) (*Report, error) {
	if i.lastTrap == nil {
		return nil, fmt.Errorf("arthas: no observed failure; call Observe first")
	}
	ctx := &reactor.Context{
		Analysis:  i.Analysis,
		Trace:     i.Trace,
		Log:       i.Log,
		Pool:      i.Pool,
		Fault:     i.lastTrap.Instr,
		AddrFault: i.lastTrap.Kind == vm.TrapSegfault,
		ReExec: func() *Trap {
			if trap := i.Restart(); trap != nil {
				return trap
			}
			_, trap := i.Call(fn, args...)
			return trap
		},
		Scrub:        i.scrubHook(),
		MediaSuspect: i.MediaSuspected,
		Obs:          i.obsSink,
	}
	if i.cfg.Reactor.Workers > 1 {
		ctx.ForkSession = i.forkSession(fn, args)
	}
	return i.runMitigation(ctx), nil
}

// runMitigation invokes the reactor with the in-flight flag raised, so
// health probes (obs.HealthState.Mitigating via Mitigating) see the window.
func (i *Instance) runMitigation(ctx *reactor.Context) *Report {
	i.mitigating.Store(true)
	i.lifecycle(EventMitigateStart)
	defer func() {
		i.mitigating.Store(false)
		i.lifecycle(EventMitigateEnd)
	}()
	return reactor.Mitigate(i.cfg.Reactor, ctx)
}

// Mitigating reports whether a mitigation is currently in flight. Safe to
// call from other goroutines (the debug endpoint's health probe).
func (i *Instance) Mitigating() bool { return i.mitigating.Load() }

// BuildIncident assembles the `arthas-incident/v1` report for a completed
// mitigation: the last observed failure's signature, the lineage of the
// faulting words (Config.Provenance required for non-empty lineage), the
// reactor's candidate plan with evidence, and the outcome.
func (i *Instance) BuildIncident(rep *Report) *Incident {
	var sig detector.Signature
	if i.lastTrap != nil {
		sig = detector.SignatureOf(i.lastTrap)
	}
	return provenance.BuildIncident(provenance.IncidentInput{
		Case:      i.Name,
		Signature: sig,
		Trap:      i.lastTrap,
		Report:    rep,
		Index:     i.Prov,
		Log:       i.Log,
		Analysis:  i.Analysis,
		Scrub:     i.LastScrub,
	})
}

// forkSession builds the speculative-session factory for MitigateCall: each
// session is a COW fork of the pool with its own forked checkpoint log and
// a private machine. Fork machines carry no trace or telemetry sinks —
// speculative probes must not pollute the instance's shared state.
func (i *Instance) forkSession(fn string, args []int64) func() (*reactor.Session, error) {
	return func() (*reactor.Session, error) {
		pool := i.Pool.Fork()
		log := i.Log.Fork()
		pool.SetHooks(log.Hooks())
		return &reactor.Session{
			Pool: pool,
			Log:  log,
			ReExec: func() *Trap {
				if i.cfg.RestartLatency > 0 {
					time.Sleep(i.cfg.RestartLatency)
				}
				pool.Crash()
				m := vm.New(i.Module, pool, vm.Config{StepLimit: i.cfg.StepLimit})
				if i.cfg.RecoverFn != "" {
					if _, trap := m.Call(i.cfg.RecoverFn); trap != nil {
						return trap
					}
				}
				_, trap := m.Call(fn, args...)
				return trap
			},
		}, nil
	}
}

// MitigateWithFaults is Mitigate with explicit fault instructions, for
// failures (data loss, wrong results) that have no trapping instruction.
// Typically the fault instructions are the result returns of the serving
// function; use RetInstrs to locate them.
func (i *Instance) MitigateWithFaults(faults []*ir.Instr, reexec func() *Trap) (*Report, error) {
	ctx := &reactor.Context{
		Analysis:     i.Analysis,
		Trace:        i.Trace,
		Log:          i.Log,
		Pool:         i.Pool,
		Faults:       faults,
		ReExec:       reexec,
		Scrub:        i.scrubHook(),
		MediaSuspect: i.MediaSuspected,
		Obs:          i.obsSink,
	}
	return i.runMitigation(ctx), nil
}

// RetInstrs returns the return instructions of a PML function — the default
// fault instructions for wrong-result failures.
func (i *Instance) RetInstrs(fn string) []*ir.Instr {
	f := i.Module.Func(fn)
	if f == nil {
		return nil
	}
	var out []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpRet {
			out = append(out, in)
		}
	})
	return out
}

// MitigateLeak runs the §4.7 leak workflow: restart, record the annotated
// recovery function's PM access set, diff it against the checkpoint log's
// live allocations, and free the unreachable blocks.
func (i *Instance) MitigateLeak() (*LeakReport, error) {
	if i.cfg.RecoverFn == "" {
		return nil, fmt.Errorf("arthas: leak mitigation needs Config.RecoverFn (annotated with recover_begin/recover_end)")
	}
	if trap := i.Restart(); trap != nil {
		return nil, fmt.Errorf("arthas: recovery failed: %v", trap)
	}
	return reactor.MitigateLeak(i.Pool, i.Log, i.Machine.RecoveryAccess, nil), nil
}

// LeakSuspected reports whether PM usage crossed the detector's threshold.
func (i *Instance) LeakSuspected() bool { return i.Detector.CheckLeak(i.Pool) }

// InjectBitFlip flips one bit of a durable PM word — the paper's hardware-
// fault model (§2.4). The flip happens BEFORE write-back in the media
// model, so checksums do not catch it; only checkpoint reversion heals it.
func (i *Instance) InjectBitFlip(addr uint64, bit uint) error {
	return i.Pool.InjectBitFlip(addr, bit, true)
}

// MediaFault describes one injected media corruption (pmem re-export); see
// docs/MEDIA_FAULTS.md for the taxonomy.
type MediaFault = pmem.MediaFault

// Media-fault kinds (pmem re-exports).
const (
	MediaBitFlip     = pmem.MediaBitFlip
	MediaStuckWord   = pmem.MediaStuckWord
	MediaStrayWrite  = pmem.MediaStrayWrite
	MediaBlockPoison = pmem.MediaBlockPoison
)

// InjectMediaFault corrupts durable words AFTER write-back — behind the
// checksums' back — so the next read from the block traps media-corrupt and
// the scrub-then-retry machinery engages.
func (i *Instance) InjectMediaFault(f MediaFault) error {
	_, err := i.Pool.InjectMediaFault(f)
	return err
}

// Stats summarizes the instance for logs.
func (i *Instance) Stats() string {
	st := i.Analysis.Stats()
	return fmt.Sprintf("%s: %d funcs, %d instrs (%d PM), %d PDG edges; pool %d/%d words live; %d checkpointed updates; %d trace events",
		i.Name, st.Functions, st.Instructions, st.PMInstrs, st.PDGEdges,
		i.Pool.LiveWords(), i.Pool.Words(), i.Log.TotalVersions(), i.Trace.Len())
}
