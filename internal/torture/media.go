package torture

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"arthas"
	"arthas/internal/pmem"
)

// Media-fault torture mode: instead of crashing at durability events, the
// harness corrupts the durable image AT them — bit flips, stuck words, stray
// writes, and whole-block poison landing behind the checksums' back — and
// then verifies the system heals end to end through BOTH repair paths: the
// in-process reactor (trap → detector → scrub-then-retry) while the workload
// keeps running, and the open path (SaveImage → OpenImage scrubs from the
// image's own checkpoint log) afterwards. Like the crash sweep, everything
// is deterministic for a given -seed and byte-identical across -workers.

// MediaSpec orders one injected media fault: after the Event'th durability
// event of the workload, corrupt the word at that event's address plus the
// Word offset with the named fault kind (docs/MEDIA_FAULTS.md taxonomy).
type MediaSpec struct {
	Event int    `json:"event"`
	Kind  string `json:"kind"`
	Word  int    `json:"word,omitempty"`
	Bits  uint64 `json:"bits,omitempty"`
	Value uint64 `json:"value,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
}

func (s MediaSpec) String() string {
	return fmt.Sprintf("e%d:%s+%d", s.Event, s.Kind, s.Word)
}

// mediaKindOf maps the spec's kind name to the pmem fault kind.
func mediaKindOf(name string) (pmem.MediaFaultKind, error) {
	switch name {
	case pmem.MediaBitFlip.String():
		return pmem.MediaBitFlip, nil
	case pmem.MediaStuckWord.String():
		return pmem.MediaStuckWord, nil
	case pmem.MediaStrayWrite.String():
		return pmem.MediaStrayWrite, nil
	case pmem.MediaBlockPoison.String():
		return pmem.MediaBlockPoison, nil
	}
	return 0, fmt.Errorf("torture: unknown media fault kind %q", name)
}

// MediaTrialResult is the outcome of one media-fault schedule.
type MediaTrialResult struct {
	Trial int       `json:"trial"`
	Spec  MediaSpec `json:"spec"`
	// Inject describes the fault that actually fired ("stuck-word@0x...+2");
	// empty when the spec's event index exceeded the run's event stream.
	Inject     string   `json:"inject,omitempty"`
	Outcome    string   `json:"outcome"`
	Violations []string `json:"violations,omitempty"`
	// ScrubRepairs totals in-process scrub passes the reactor ran; OpenHealed
	// reports that the final reopen had to scrub the image.
	ScrubRepairs       int  `json:"scrub_repairs,omitempty"`
	OpenHealed         bool `json:"open_healed,omitempty"`
	Quarantined        int  `json:"quarantined,omitempty"`
	MitigationAttempts int  `json:"mitigation_attempts,omitempty"`
}

// MediaReport is the full deterministic output of a media sweep.
type MediaReport struct {
	Program  string             `json:"program"`
	Script   string             `json:"script"`
	Seed     int64              `json:"seed"`
	Events   int                `json:"events"`
	Trials   int                `json:"trials"`
	Clean    int                `json:"clean"`
	Healed   int                `json:"healed"`
	Violated int                `json:"violated"`
	Results  []MediaTrialResult `json:"results"`
}

// JSON renders the report byte-identically for a given seed.
func (r *MediaReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunMedia executes a media-fault sweep: enumerate durability events with a
// baseline run, derive one fault spec per sampled event (kinds cycled, offsets
// and patterns from the seeded PRNG), and run each as an independent trial.
// When imageDir is non-empty, each trial's post-injection (still corrupt)
// image is saved there as <name>-media-NNN.img for offline tooling
// (arthas-inspect scrub) and the CI media job.
func RunMedia(cfg Config, imageDir string) (*MediaReport, error) {
	cfg = cfg.withDefaults()
	calls, err := ParseScript(cfg.Script)
	if err != nil {
		return nil, err
	}
	var probe *Call
	if cfg.Probe != "" {
		pc, err := ParseScript(cfg.Probe)
		if err != nil {
			return nil, err
		}
		if len(pc) != 1 {
			return nil, fmt.Errorf("torture: probe must be a single call, got %d", len(pc))
		}
		probe = &pc[0]
	}
	events, err := enumerate(cfg, calls)
	if err != nil {
		return nil, fmt.Errorf("torture: baseline run: %w", err)
	}
	specs := buildMediaSchedules(cfg, events)
	if imageDir != "" {
		if err := os.MkdirAll(imageDir, 0o755); err != nil {
			return nil, fmt.Errorf("torture: image dir: %w", err)
		}
	}

	rep := &MediaReport{
		Program: cfg.Name,
		Script:  cfg.Script,
		Seed:    cfg.Seed,
		Events:  len(events),
		Trials:  len(specs),
		Results: make([]MediaTrialResult, len(specs)),
	}
	runOne := func(i int) {
		res := runMediaTrial(cfg, calls, probe, specs[i], i, imageDir)
		res.Trial = i
		rep.Results[i] = res
	}
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for i := range specs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range specs {
			runOne(i)
		}
	}
	for _, res := range rep.Results {
		switch res.Outcome {
		case "clean":
			rep.Clean++
		case "healed":
			rep.Healed++
		default:
			rep.Violated++
		}
	}
	return rep, nil
}

// buildMediaSchedules derives one fault spec per event, cycling through the
// four fault kinds so every kind exercises many distinct targets, with the
// seeded PRNG choosing word offsets and corruption patterns. The set is then
// sampled down to cfg.Points (order-preserving).
func buildMediaSchedules(cfg Config, events []EventInfo) []MediaSpec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds := []pmem.MediaFaultKind{
		pmem.MediaBitFlip, pmem.MediaStuckWord,
		pmem.MediaStrayWrite, pmem.MediaBlockPoison,
	}
	specs := make([]MediaSpec, 0, len(events))
	for i, ev := range events {
		k := kinds[i%len(kinds)]
		sp := MediaSpec{Event: i, Kind: k.String()}
		if ev.Words > 1 {
			sp.Word = rng.Intn(ev.Words)
		}
		switch k {
		case pmem.MediaBitFlip:
			sp.Bits = 1 << uint(rng.Intn(64))
		case pmem.MediaStuckWord:
			sp.Value = rng.Uint64()
		case pmem.MediaBlockPoison:
			sp.Seed = rng.Int63()
		}
		specs = append(specs, sp)
	}
	if cfg.Points > 0 && len(specs) > cfg.Points {
		idx := rng.Perm(len(specs))[:cfg.Points]
		sort.Ints(idx)
		sampled := make([]MediaSpec, 0, cfg.Points)
		for _, i := range idx {
			sampled = append(sampled, specs[i])
		}
		specs = sampled
	}
	return specs
}

// runMediaTrial runs one media-fault schedule in a fresh deployment. The
// fault is injected between workload calls, right after the spec's event
// fires — modeling media that went bad under a completed write-back. The
// remaining workload may trap media-corrupt (in-process heal via the
// reactor's scrub-then-retry); whatever corruption the workload never
// touched is then healed by the reopen path, and the final state must pass
// every structural and media invariant.
func runMediaTrial(cfg Config, calls []Call, probe *Call, spec MediaSpec, trial int, imageDir string) MediaTrialResult {
	res := MediaTrialResult{Spec: spec, Outcome: "clean"}
	var violations []string
	healedAny := false

	kind, err := mediaKindOf(spec.Kind)
	if err != nil {
		res.Outcome = "violated"
		res.Violations = []string{err.Error()}
		return res
	}
	inst, err := arthas.New(cfg.Name, cfg.Source, arthasConfig(cfg))
	if err != nil {
		res.Outcome = "violated"
		res.Violations = []string{"deploy-failed: " + err.Error()}
		return res
	}

	// Counting hook: never crashes, only spots the target event and records
	// where its range landed.
	var target uint64
	pending := false
	count := 0
	inst.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
		if count == spec.Event {
			off := 0
			if ev.Words > 0 {
				off = spec.Word % ev.Words
			}
			target = ev.Addr + uint64(off)
			pending = true
		}
		count++
		return ev.Words, false
	})

	injected := false
	for ci := 0; ci < len(calls); ci++ {
		c := calls[ci]
		_, trap := inst.Call(c.Fn, c.Args...)
		if trap != nil {
			ok, mrep, v := heal(inst, trap, &c)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
				res.ScrubRepairs += mrep.ScrubRepairs
			}
			if !ok {
				violations = append(violations, v)
				return finishMedia(res, violations, healedAny)
			}
			healedAny = true
		}
		if pending && !injected {
			f := pmem.MediaFault{
				Kind: kind, Addr: target,
				Bits: spec.Bits, Value: spec.Value, Seed: spec.Seed,
			}
			r, err := inst.Pool.InjectMediaFault(f)
			if err != nil {
				violations = append(violations, "inject-failed: "+err.Error())
				return finishMedia(res, violations, healedAny)
			}
			injected = true
			res.Inject = fmt.Sprintf("%s@%#x+%d", spec.Kind, r.Addr, r.Words)
			if imageDir != "" {
				saveTrialImage(inst, imageDir, cfg.Name, trial, &violations)
			}
		}
	}

	if probe != nil {
		if _, trap := inst.Call(probe.Fn, probe.Args...); trap != nil {
			ok, mrep, v := heal(inst, trap, probe)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
				res.ScrubRepairs += mrep.ScrubRepairs
			}
			if !ok {
				violations = append(violations, v)
				return finishMedia(res, violations, healedAny)
			}
			healedAny = true
		}
	}

	// The reopen path: whatever corruption the workload never read travels
	// in the image and must be healed (or fenced) by OpenImage's scrubber.
	final, vs := reopen(cfg, inst)
	violations = append(violations, vs...)
	if final == nil {
		return finishMedia(res, violations, healedAny)
	}
	if final.LastScrub != nil {
		res.OpenHealed = true
		res.Quarantined = final.LastScrub.Quarantined
		if !final.LastScrub.Healthy() {
			violations = append(violations, "open-scrub-unhealthy: "+final.LastScrub.String())
		}
		healedAny = true
	}
	if merr := final.Pool.VerifyMedia(); merr != nil {
		violations = append(violations, "media-unclean: "+merr.Error())
	}
	violations = append(violations, checkState(cfg, final)...)
	if probe != nil && len(violations) == 0 {
		if _, trap := final.Call(probe.Fn, probe.Args...); trap != nil {
			// Reads of quarantined (unreconstructible) data may still trap —
			// that is data loss the log could not prevent, not a violation —
			// but only when something was actually fenced off.
			if res.Quarantined == 0 {
				violations = append(violations, "probe-after-reopen: "+trap.Error())
			}
		}
	}
	return finishMedia(res, violations, healedAny)
}

// saveTrialImage writes the still-corrupt image snapshot for offline repair
// tooling. Write failures are violations: the CI job depends on the corpus.
func saveTrialImage(inst *arthas.Instance, dir, name string, trial int, violations *[]string) {
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	path := filepath.Join(dir, fmt.Sprintf("%s-media-%03d.img", base, trial))
	f, err := os.Create(path)
	if err != nil {
		*violations = append(*violations, "image-save-failed: "+err.Error())
		return
	}
	defer f.Close()
	if err := inst.SaveImage(f); err != nil {
		*violations = append(*violations, "image-save-failed: "+err.Error())
	}
}

func finishMedia(res MediaTrialResult, violations []string, healed bool) MediaTrialResult {
	res.Violations = sortedViolations(violations)
	switch {
	case len(res.Violations) > 0:
		res.Outcome = "violated"
	case healed:
		res.Outcome = "healed"
	default:
		res.Outcome = "clean"
	}
	return res
}
