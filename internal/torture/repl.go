package torture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/repl"
)

// Replication torture mode: a primary streams its checkpoint log to a
// standby replica (internal/repl) while the harness kills one party at a
// time — the primary at every durability event (torn tails included), the
// stream mid-record at every shipped sequence number, the replica at every
// applied sequence number — and after every such failure the sweep demands
// the protocol converge back to a WORD-IDENTICAL durable image on both
// sides (pmem.Pool.DurableImage). Like the crash and media sweeps, the
// report is a pure function of the seed and byte-identical at any -workers.

// Replication victim kinds.
const (
	ReplVictimPrimary = "primary" // power-fail the primary at a durability event
	ReplVictimStream  = "stream"  // cut the shipped batch mid-record at a target seq
	ReplVictimReplica = "replica" // kill the replica applying a target seq
)

// ReplSpec orders one replication failure.
type ReplSpec struct {
	Victim string `json:"victim"`
	// Event and Keep drive primary crashes: power-fail at the Event'th
	// durability event keeping Keep words of it durable (-1 = all, the
	// untorn variant).
	Event int `json:"event,omitempty"`
	Keep  int `json:"keep,omitempty"`
	// Seq targets stream cuts and replica kills at one stream record.
	Seq uint64 `json:"seq,omitempty"`
	// Cut picks where inside the target record the stream tears (bytes,
	// reduced mod the record length so the tear is always mid-record).
	Cut int `json:"cut,omitempty"`
}

func (s ReplSpec) String() string {
	switch s.Victim {
	case ReplVictimPrimary:
		return fmt.Sprintf("primary@e%d keep=%d", s.Event, s.Keep)
	case ReplVictimStream:
		return fmt.Sprintf("stream@seq%d cut=%d", s.Seq, s.Cut)
	default:
		return fmt.Sprintf("replica@seq%d", s.Seq)
	}
}

// ReplTrialResult is the outcome of one replication-failure schedule.
type ReplTrialResult struct {
	Trial int      `json:"trial"`
	Spec  ReplSpec `json:"spec"`
	// Fired reports whether the ordered failure actually hit (an event or
	// seq past the run's stream simply never fires).
	Fired bool `json:"fired"`
	// Crashes describes primary power failures that fired ("tx@0x...+3
	// keep=1").
	Crashes []string `json:"crashes,omitempty"`
	// Session counters at the end of the trial.
	Truncations        uint64   `json:"truncations,omitempty"`
	Drops              uint64   `json:"drops,omitempty"`
	Resyncs            uint64   `json:"resyncs,omitempty"`
	Records            uint64   `json:"records,omitempty"`
	MitigationAttempts int      `json:"mitigation_attempts,omitempty"`
	Outcome            string   `json:"outcome"`
	Violations         []string `json:"violations,omitempty"`
}

// ReplReport is the full deterministic output of a replication sweep.
type ReplReport struct {
	Program string `json:"program"`
	Script  string `json:"script"`
	Seed    int64  `json:"seed"`
	// Events is the durability-event count of the fault-free workload;
	// Records the stream records one fault-free replication run ships.
	Events   int               `json:"events"`
	Records  uint64            `json:"records"`
	Trials   int               `json:"trials"`
	Clean    int               `json:"clean"`
	Healed   int               `json:"healed"`
	Violated int               `json:"violated"`
	Results  []ReplTrialResult `json:"results"`
}

// JSON renders the report byte-identically for a given seed.
func (r *ReplReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunRepl executes a replication sweep: enumerate the workload's durability
// events and (via a fault-free baseline replication run) its stream
// records, derive one failure spec per event for each victim kind, and run
// each as an independent trial asserting word-identical convergence.
func RunRepl(cfg Config) (*ReplReport, error) {
	cfg = cfg.withDefaults()
	calls, err := ParseScript(cfg.Script)
	if err != nil {
		return nil, err
	}
	var probe *Call
	if cfg.Probe != "" {
		pc, err := ParseScript(cfg.Probe)
		if err != nil {
			return nil, err
		}
		if len(pc) != 1 {
			return nil, fmt.Errorf("torture: probe must be a single call, got %d", len(pc))
		}
		probe = &pc[0]
	}
	events, err := enumerate(cfg, calls)
	if err != nil {
		return nil, fmt.Errorf("torture: baseline run: %w", err)
	}
	records, err := baselineRecords(cfg, calls)
	if err != nil {
		return nil, fmt.Errorf("torture: baseline replication: %w", err)
	}
	specs := buildReplSchedules(cfg, events, records)

	rep := &ReplReport{
		Program: cfg.Name,
		Script:  cfg.Script,
		Seed:    cfg.Seed,
		Events:  len(events),
		Records: records,
		Trials:  len(specs),
		Results: make([]ReplTrialResult, len(specs)),
	}
	runOne := func(i int) {
		res := runReplTrial(cfg, calls, probe, specs[i])
		res.Trial = i
		rep.Results[i] = res
	}
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for i := range specs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range specs {
			runOne(i)
		}
	}
	for _, res := range rep.Results {
		switch res.Outcome {
		case "clean":
			rep.Clean++
		case "healed":
			rep.Healed++
		default:
			rep.Violated++
		}
	}
	return rep, nil
}

// baselineRecords runs the workload once under a fault-free replication rig
// and returns the stream record count — the seq universe stream/replica
// victims enumerate. It also sanity-checks that fault-free replication
// converges word-identically; a broken protocol fails fast here instead of
// poisoning every trial.
func baselineRecords(cfg Config, calls []Call) (uint64, error) {
	rig, err := newReplRig(cfg)
	if err != nil {
		return 0, err
	}
	for _, c := range calls {
		if _, trap := rig.cur.Call(c.Fn, c.Args...); trap != nil {
			return 0, fmt.Errorf("workload call %q trapped with no injection: %v", c, trap)
		}
		if err := rig.sess.Ship(); err != nil {
			return 0, err
		}
	}
	if v := replIdentityViolation(rig); v != "" {
		return 0, fmt.Errorf("fault-free replication diverged: %s", v)
	}
	return rig.sess.Status().Seq, nil
}

// buildReplSchedules derives the victim universe: every durability event as
// a primary crash (torn variants when cfg.Torn and the event spans words),
// every stream record as a mid-record cut, every stream record as a replica
// kill — then samples down to cfg.Points (order-preserving).
func buildReplSchedules(cfg Config, events []EventInfo, records uint64) []ReplSpec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var specs []ReplSpec
	for i, ev := range events {
		specs = append(specs, ReplSpec{Victim: ReplVictimPrimary, Event: i, Keep: -1})
		if cfg.Torn && ev.Words > 1 {
			specs = append(specs, ReplSpec{
				Victim: ReplVictimPrimary, Event: i, Keep: rng.Intn(ev.Words),
			})
		}
	}
	for seq := uint64(1); seq <= records; seq++ {
		specs = append(specs, ReplSpec{Victim: ReplVictimStream, Seq: seq, Cut: 1 + rng.Intn(62)})
	}
	for seq := uint64(1); seq <= records; seq++ {
		specs = append(specs, ReplSpec{Victim: ReplVictimReplica, Seq: seq})
	}
	if cfg.Points > 0 && len(specs) > cfg.Points {
		idx := rng.Perm(len(specs))[:cfg.Points]
		sort.Ints(idx)
		sampled := make([]ReplSpec, 0, cfg.Points)
		for _, i := range idx {
			sampled = append(sampled, specs[i])
		}
		specs = sampled
	}
	return specs
}

// replRig is one primary + shipper + session under test. cur tracks the
// CURRENT primary instance across crash reopens, so the session's snapshot
// source always reads the live pool and log.
type replRig struct {
	cur  *arthas.Instance
	sh   *repl.Shipper
	sess *repl.Session
}

func newReplRig(cfg Config) (*replRig, error) {
	r := &replRig{sh: repl.NewShipper()}
	acfg := arthasConfig(cfg)
	acfg.WrapHooks = r.sh.WrapHooks
	inst, err := arthas.New(cfg.Name, cfg.Source, acfg)
	if err != nil {
		return nil, err
	}
	r.cur = inst
	r.sess = repl.NewSession(r.sh, uint64(cfg.Seed)|1, func() (*pmem.Pool, *checkpoint.Log) {
		return r.cur.Pool, r.cur.Log
	})
	return r, r.sess.Ship()
}

// replIdentityViolation ships any residue and compares the primary's and
// replica's durable images word by word — the sweep's convergence oracle.
func replIdentityViolation(rig *replRig) string {
	if err := rig.sess.Ship(); err != nil {
		return "final-ship-failed: " + err.Error()
	}
	if lag := rig.sess.Lag(); lag != 0 {
		return fmt.Sprintf("residual-lag: %d records unacked after final ship", lag)
	}
	prim := rig.cur.Pool.DurableImage()
	rep := rig.sess.ReplicaImage()
	if rep == nil {
		return "no-replica: session lost its replica"
	}
	if len(prim) != len(rep) {
		return fmt.Sprintf("image-size-mismatch: %d vs %d words", len(prim), len(rep))
	}
	for i := range prim {
		if prim[i] != rep[i] {
			return fmt.Sprintf("word-divergence: addr %#x primary=%#x replica=%#x",
				i, prim[i], rep[i])
		}
	}
	return ""
}

// runReplTrial runs one replication-failure schedule in a fresh rig. The
// workload ships after every call (the tightest lag bound), the ordered
// failure fires once, and the trial ends with the identity oracle: primary
// and replica durable images word-identical, zero residual lag.
func runReplTrial(cfg Config, calls []Call, probe *Call, spec ReplSpec) ReplTrialResult {
	res := ReplTrialResult{Spec: spec, Outcome: "clean"}
	var violations []string
	healed := false

	rig, err := newReplRig(cfg)
	if err != nil {
		res.Outcome = "violated"
		res.Violations = []string{"deploy-failed: " + err.Error()}
		return res
	}

	switch spec.Victim {
	case ReplVictimStream:
		// Tear the wire batch mid-record at the target seq, once. The
		// session must keep the complete prefix, count a truncation, and
		// re-ship the tail.
		rig.sess.LinkFault = func(b []byte) []byte {
			if res.Fired {
				return b
			}
			ops, err := checkpoint.DecodeStream(b)
			if err != nil {
				return b
			}
			off := 0
			for _, op := range ops {
				l := op.EncodedLen()
				if op.Seq == spec.Seq {
					cut := spec.Cut % (l - 1)
					if cut == 0 {
						cut = 1
					}
					res.Fired = true
					return b[:off+cut]
				}
				off += l
			}
			return b
		}
	case ReplVictimReplica:
		// Kill the replica as it applies the target seq, once. The session
		// must drop it, back off, and resync from a fresh snapshot.
		rig.sess.ReplicaFault = func(seq uint64) bool {
			if !res.Fired && seq == spec.Seq {
				res.Fired = true
				return true
			}
			return false
		}
	}

	armed := spec.Victim == ReplVictimPrimary
	ci := 0
	for {
		if armed {
			count := 0
			rig.cur.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
				i := count
				count++
				if i != spec.Event {
					return ev.Words, false
				}
				keep := spec.Keep
				if keep < 0 || keep > ev.Words {
					keep = ev.Words
				}
				res.Crashes = append(res.Crashes,
					fmt.Sprintf("%s@%#x+%d keep=%d", ev.Kind, ev.Addr, ev.Words, keep))
				return keep, true
			})
		}

		crashed := false
		for ci < len(calls) {
			c := calls[ci]
			_, trap := rig.cur.Call(c.Fn, c.Args...)
			if rig.cur.Pool.CrashLatched() {
				crashed = true
				res.Fired = true
				break
			}
			if trap != nil {
				ok, mrep, v := heal(rig.cur, trap, &c)
				if mrep != nil {
					res.MitigationAttempts += mrep.Attempts
				}
				if !ok {
					violations = append(violations, v)
					return finishRepl(res, rig, violations, healed)
				}
				// Mitigation reverts through raw pool writes the stream never
				// saw: resync before trusting the stream again.
				rig.sess.MarkDirty()
				healed = true
			}
			ci++
			if err := rig.sess.Ship(); err != nil {
				violations = append(violations, "ship-failed: "+err.Error())
				return finishRepl(res, rig, violations, healed)
			}
		}
		if !crashed {
			break
		}

		// Power failure on the primary: volatile state dies, the (possibly
		// torn) durable image is what the next process sees. The stream's
		// recorded tail may describe writes the tear threw away, so the
		// session is dirty until it resyncs from the recovered primary.
		armed = false
		rig.cur.Pool.SetCrashFunc(nil)
		rig.cur.Pool.Crash()
		rig.cur.Pool.ResetCrashLatch()

		acfg := arthasConfig(cfg)
		acfg.WrapHooks = rig.sh.WrapHooks
		next, vs := reopenWith(cfg, acfg, rig.cur)
		violations = append(violations, vs...)
		if next == nil {
			return finishRepl(res, rig, violations, healed)
		}
		rig.cur = next
		rig.sess.MarkDirty()

		if trap := rig.cur.Restart(); trap != nil {
			ok, mrep, v := heal(rig.cur, trap, probe)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
			}
			if !ok {
				violations = append(violations, v)
				return finishRepl(res, rig, violations, healed)
			}
			healed = true
		}
		violations = append(violations, checkState(cfg, rig.cur)...)
		if len(violations) > 0 {
			return finishRepl(res, rig, violations, healed)
		}
	}

	if probe != nil {
		if _, trap := rig.cur.Call(probe.Fn, probe.Args...); trap != nil {
			ok, mrep, v := heal(rig.cur, trap, probe)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
			}
			if !ok {
				violations = append(violations, v)
				return finishRepl(res, rig, violations, healed)
			}
			rig.sess.MarkDirty()
			healed = true
		}
	}

	if v := replIdentityViolation(rig); v != "" {
		violations = append(violations, v)
	}
	st := rig.sess.Status()
	switch spec.Victim {
	case ReplVictimStream:
		if res.Fired && st.Truncations == 0 {
			violations = append(violations, "cut-unnoticed: stream tear produced no truncation")
		}
	case ReplVictimReplica:
		if res.Fired && st.Drops == 0 {
			violations = append(violations, "kill-unnoticed: replica death produced no drop")
		}
	}
	violations = append(violations, checkState(cfg, rig.cur)...)
	return finishRepl(res, rig, violations, healed)
}

// reopenWith is reopen with an explicit instance config, so crash reopens
// keep the replication hooks wired into the same shipper.
func reopenWith(cfg Config, acfg arthas.Config, inst *arthas.Instance) (*arthas.Instance, []string) {
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		return nil, []string{"save-failed: " + err.Error()}
	}
	next, err := arthas.OpenImage(inst.Name, cfg.Source, acfg, &buf)
	if err != nil {
		return nil, []string{"reopen-failed: " + err.Error()}
	}
	return next, nil
}

func finishRepl(res ReplTrialResult, rig *replRig, violations []string, healed bool) ReplTrialResult {
	st := rig.sess.Status()
	res.Truncations = st.Truncations
	res.Drops = st.Drops
	res.Resyncs = st.Resyncs
	res.Records = st.Records
	res.Violations = sortedViolations(violations)
	switch {
	case len(res.Violations) > 0:
		res.Outcome = "violated"
	case healed:
		res.Outcome = "healed"
	default:
		res.Outcome = "clean"
	}
	return res
}
