// Package torture is a deterministic crash-point exploration harness for
// the Arthas toolchain: it enumerates every durability event a workload
// produces (library persists, transaction-commit ranges, allocator/root
// metadata updates), and for each point runs the workload in a fresh
// instrumented deployment with a crash injected exactly there — including
// *torn* crashes, where only the first k words of a multi-word flush became
// durable. After each injected crash the harness drives the REAL recovery
// path — serialize the image, reopen it (open-time allocator recovery,
// strict integrity check, checkpoint-log and flight-recorder parsing), run
// the recovery function — and checks invariants:
//
//   - the image reopens (typed errors from pmem/checkpoint readers are
//     violations: a legitimate crash state must never be unreadable);
//   - the pool passes CheckIntegrity after open-time recovery;
//   - the checkpoint log passes Validate (well-formed, monotonic);
//   - the flight-recorder section parses when enabled;
//   - recovery either completes clean or the failure is healed by the
//     reactor (detector → mitigation), deterministically.
//
// Failing schedules are shrunk to a minimal crash-point sequence and
// emitted as replayable seeds (testdata/torture holds the regression
// corpus). Everything is deterministic for a given -seed: trial schedules
// come from a seeded PRNG, trials share no state, and reports carry no
// wall-clock data — the JSON output is byte-identical across runs and
// across -workers values.
package torture

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"arthas"
)

// Call is one workload statement: a PML function invocation.
type Call struct {
	Fn   string  `json:"fn"`
	Args []int64 `json:"args,omitempty"`
}

func (c Call) String() string {
	s := c.Fn
	for _, a := range c.Args {
		s += " " + strconv.FormatInt(a, 10)
	}
	return s
}

// ParseScript parses a semicolon-separated workload script ("init_; put 1
// 2; get 1") into calls. Statement syntax matches Instance.RunScript's call
// form (no pseudo-ops).
func ParseScript(script string) ([]Call, error) {
	var calls []Call
	for _, stmt := range strings.Split(script, ";") {
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		c := Call{Fn: fields[0]}
		for _, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("torture: bad argument %q in %q", f, strings.TrimSpace(stmt))
			}
			c.Args = append(c.Args, v)
		}
		calls = append(calls, c)
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("torture: empty workload script")
	}
	return calls, nil
}

// Config describes one torture run.
type Config struct {
	// Name and Source identify and hold the PML program under test.
	Name   string
	Source string
	// Script is the workload (ParseScript syntax).
	Script string
	// RecoverFn names the recovery entry point run after each reopen
	// (optional, matching arthas.Config.RecoverFn).
	RecoverFn string
	// Probe, when non-empty, is one call ("fn a b") whose failure drives
	// mitigation; after clean recovery it must also succeed. Empty keeps
	// recovery-only probing (mitigation re-executes restart+recovery).
	Probe string
	// Seed drives schedule sampling. Same seed -> identical report.
	Seed int64
	// Points bounds the number of trials (0 = every enumerated crash
	// point, including torn variants).
	Points int
	// Torn enables torn-crash variants of multi-word durability events.
	Torn bool
	// Depth is the number of crashes per schedule (default 1; depth 2 adds
	// schedules that crash again during the re-run after recovery).
	Depth int
	// Workers parallelizes trials (trials are independent; the report is
	// identical at any worker count). <= 1 runs sequentially.
	Workers int
	// PoolWords / MaxVersions / StepLimit / FlightEvents mirror
	// arthas.Config (zero = that package's defaults, except FlightEvents
	// which defaults to 64 so the flight-section invariant is exercised).
	PoolWords    int
	MaxVersions  int
	StepLimit    int64
	FlightEvents int
	// Shrink enables minimization of failing schedules (default in Run).
	Shrink bool
	// Optimize runs the flush/fence-elimination pass (internal/opt) on the
	// program under torture, so the invariant sweep exercises the optimized
	// build. RunEquivalence ignores this flag: it always compares the
	// optimized and unoptimized builds against each other.
	Optimize bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Depth <= 0 {
		out.Depth = 1
	}
	if out.FlightEvents == 0 {
		out.FlightEvents = 64
	}
	if out.Workers <= 0 {
		out.Workers = 1
	}
	return out
}

// arthasConfig builds the instance configuration for trials.
func arthasConfig(cfg Config) arthas.Config {
	return arthas.Config{
		PoolWords:    cfg.PoolWords,
		MaxVersions:  cfg.MaxVersions,
		StepLimit:    cfg.StepLimit,
		RecoverFn:    cfg.RecoverFn,
		FlightEvents: cfg.FlightEvents,
		Optimize:     cfg.Optimize,
	}
}

// EventInfo describes one enumerated durability event.
type EventInfo struct {
	Kind  string `json:"kind"` // persist | tx | meta
	Addr  uint64 `json:"addr"`
	Words int    `json:"words"`
}

// TrialResult is the outcome of one schedule.
type TrialResult struct {
	Trial    int      `json:"trial"`
	Schedule Schedule `json:"schedule"`
	// Crashes describes the events where injection actually fired
	// ("meta@0x100000018+2 keep=1"); a schedule whose event index exceeds
	// the run's events fires fewer crashes than it has specs.
	Crashes []string `json:"crashes,omitempty"`
	// Outcome is "clean" (recovery needed no healing), "healed" (the
	// reactor mitigated a post-crash failure), or "violated".
	Outcome    string   `json:"outcome"`
	Violations []string `json:"violations,omitempty"`
	// MitigationAttempts totals reactor re-executions across the trial.
	MitigationAttempts int `json:"mitigation_attempts,omitempty"`
}

// Report is the full deterministic output of a run.
type Report struct {
	Program  string        `json:"program"`
	Script   string        `json:"script"`
	Seed     int64         `json:"seed"`
	Events   int           `json:"events"`
	Trials   int           `json:"trials"`
	Clean    int           `json:"clean"`
	Healed   int           `json:"healed"`
	Violated int           `json:"violated"`
	Results  []TrialResult `json:"results"`
	// Shrunk holds minimized failing schedules, ready to store as
	// regression seeds (testdata/torture).
	Shrunk []Seed `json:"shrunk,omitempty"`
}

// JSON renders the report byte-identically for a given seed.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Seed is a replayable minimal failing schedule.
type Seed struct {
	Program   string   `json:"program"`
	Script    string   `json:"script"`
	RecoverFn string   `json:"recover_fn,omitempty"`
	Probe     string   `json:"probe,omitempty"`
	Schedule  Schedule `json:"schedule"`
	// Note describes the violation the schedule originally provoked.
	Note string `json:"note,omitempty"`
}

// Run executes a full torture sweep: enumerate durability events with a
// baseline run, build schedules, run each as an independent trial, shrink
// failures.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	calls, err := ParseScript(cfg.Script)
	if err != nil {
		return nil, err
	}
	var probe *Call
	if cfg.Probe != "" {
		pc, err := ParseScript(cfg.Probe)
		if err != nil {
			return nil, err
		}
		if len(pc) != 1 {
			return nil, fmt.Errorf("torture: probe must be a single call, got %d", len(pc))
		}
		probe = &pc[0]
	}

	events, err := enumerate(cfg, calls)
	if err != nil {
		return nil, fmt.Errorf("torture: baseline run: %w", err)
	}
	schedules := buildSchedules(cfg, events)

	rep := &Report{
		Program: cfg.Name,
		Script:  cfg.Script,
		Seed:    cfg.Seed,
		Events:  len(events),
		Trials:  len(schedules),
		Results: make([]TrialResult, len(schedules)),
	}

	runOne := func(i int) {
		res := runTrial(cfg, calls, probe, schedules[i])
		res.Trial = i
		rep.Results[i] = res
	}
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for i := range schedules {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range schedules {
			runOne(i)
		}
	}

	for _, res := range rep.Results {
		switch res.Outcome {
		case "clean":
			rep.Clean++
		case "healed":
			rep.Healed++
		default:
			rep.Violated++
		}
	}

	if cfg.Shrink && rep.Violated > 0 {
		rep.Shrunk = shrinkAll(cfg, calls, probe, rep.Results)
	}
	return rep, nil
}

// Replay runs one seed's schedule against the program source and returns
// its result — the regression path for the golden corpus.
func Replay(source string, seed Seed) (*TrialResult, error) {
	base := Config{
		Name:      seed.Program,
		Source:    source,
		Script:    seed.Script,
		RecoverFn: seed.RecoverFn,
		Probe:     seed.Probe,
	}
	cfg := base.withDefaults()
	calls, err := ParseScript(seed.Script)
	if err != nil {
		return nil, err
	}
	var probe *Call
	if seed.Probe != "" {
		pc, err := ParseScript(seed.Probe)
		if err != nil {
			return nil, err
		}
		probe = &pc[0]
	}
	res := runTrial(cfg, calls, probe, seed.Schedule)
	return &res, nil
}

// sortedViolations returns a deterministic, deduplicated violation list.
func sortedViolations(vs []string) []string {
	if len(vs) == 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
