package torture

import "fmt"

// Shrinking reduces a failing schedule to a minimal reproducer: first drop
// whole crash specs greedily (a two-crash failure often needs only one of
// them), then simplify each surviving spec's keep toward the canonical
// points (0, then full). The result is emitted as a replayable Seed — the
// regression-corpus format under testdata/torture.

// shrinkAll minimizes every violated schedule in a result set, deduplicating
// schedules that shrink to the same reproducer. Deterministic: results are
// visited in trial order and every probe re-runs a fresh trial.
func shrinkAll(cfg Config, calls []Call, probe *Call, results []TrialResult) []Seed {
	violates := func(s Schedule) (bool, string) {
		r := runTrial(cfg, calls, probe, s)
		if r.Outcome != "violated" {
			return false, ""
		}
		note := ""
		if len(r.Violations) > 0 {
			note = r.Violations[0]
		}
		return true, note
	}

	var seeds []Seed
	seen := map[string]bool{}
	for _, r := range results {
		if r.Outcome != "violated" {
			continue
		}
		min, note := shrinkOne(r.Schedule, violates)
		key := min.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		seeds = append(seeds, Seed{
			Program:   cfg.Name,
			Script:    cfg.Script,
			RecoverFn: cfg.RecoverFn,
			Probe:     cfg.Probe,
			Schedule:  min,
			Note:      note,
		})
	}
	return seeds
}

// shrinkOne greedily minimizes one failing schedule. violates must re-run
// the trial and report whether the candidate still fails (plus the leading
// violation, kept as the seed's note).
func shrinkOne(sched Schedule, violates func(Schedule) (bool, string)) (Schedule, string) {
	cur := append(Schedule{}, sched...)
	_, note := violates(cur) // note for the full schedule (known to fail)

	// Phase 1: drop specs.
	for i := 0; i < len(cur) && len(cur) > 1; {
		cand := append(append(Schedule{}, cur[:i]...), cur[i+1:]...)
		if ok, n := violates(cand); ok {
			cur, note = cand, n
		} else {
			i++
		}
	}
	// Phase 2: canonicalize keeps (torn points shrink to 0 or full when the
	// tear itself is not what the failure needs).
	for i := range cur {
		for _, k := range []int{0, -1} {
			if cur[i].Keep == k {
				break
			}
			cand := append(Schedule{}, cur...)
			cand[i].Keep = k
			if ok, n := violates(cand); ok {
				cur, note = cand, n
				break
			}
		}
	}
	return cur, note
}

// describeSeed renders a one-line label for logs and test names.
func describeSeed(s Seed) string {
	return fmt.Sprintf("%s[%s]", s.Program, s.Schedule)
}
