package torture

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSeeds replays every shrunk schedule in testdata/torture — the
// regression corpus of crash points that once broke recovery (unguarded
// recovery functions, torn multi-word flushes, mid-commit transaction
// tears). Each must now finish clean or healed; "violated" means a fixed
// bug came back.
func TestGoldenSeeds(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "torture")
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no golden seeds in %s", dir)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var seed Seed
			if err := json.Unmarshal(data, &seed); err != nil {
				t.Fatal(err)
			}
			res, err := Replay(progSource(t, seed.Program), seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Crashes) == 0 {
				t.Fatalf("seed %s injected no crash — schedule no longer reaches its event", describeSeed(seed))
			}
			if res.Outcome == "violated" {
				t.Fatalf("seed %s regressed: %v", describeSeed(seed), res.Violations)
			}
		})
	}
}
