package torture

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenMediaReports regenerates the bounded media sweeps the CI media
// job runs over the fixture workloads and compares them byte-for-byte
// against the checked-in goldens in testdata/media — pinning both the
// sweep's determinism and the scrubber's verdicts (every trial in the
// goldens ends clean or healed). A mismatch means media-fault behavior
// changed: if the change is intentional, regenerate with
//
//	arthas-torture -media -seed 1 -points 24 [fixture flags] > testdata/media/<name>.json
func TestGoldenMediaReports(t *testing.T) {
	fixtures := []struct {
		name      string
		recoverFn string
		probe     string
		script    string
	}{
		{"counter", "recover_", "value", "init_; bump; bump; bump"},
		{"checksum", "", "check", "init_; set 1 5; set 2 7"},
		{"linkedset", "recover_", "", "init_; insert 5; insert 3; insert 9"},
		{"ringlog", "recover_", "", "init_ 4; append_ 1; append_ 2; append_ 3"},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "media", fx.name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunMedia(Config{
				Name:      "testdata/" + fx.name + ".pml",
				Source:    progSource(t, fx.name),
				Script:    fx.script,
				RecoverFn: fx.recoverFn,
				Probe:     fx.probe,
				Seed:      1,
				Points:    24,
				Workers:   4,
			}, "")
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violated > 0 {
				t.Fatalf("media sweep violated %d trials: %+v", rep.Violated, rep.Results)
			}
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			js = append(js, '\n')
			if !bytes.Equal(js, golden) {
				t.Fatalf("report diverged from golden testdata/media/%s.json;\nregenerate if intentional\ngot:\n%s", fx.name, js)
			}
		})
	}
}
