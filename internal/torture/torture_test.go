package torture

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func progSource(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".pml"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestParseScript(t *testing.T) {
	calls, err := ParseScript("init_; set 1 0x10; check")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || calls[1].Fn != "set" || calls[1].Args[1] != 16 {
		t.Fatalf("parsed %v", calls)
	}
	if _, err := ParseScript("set one"); err == nil {
		t.Fatal("bad argument accepted")
	}
	if _, err := ParseScript(" ; ; "); err == nil {
		t.Fatal("empty script accepted")
	}
}

// TestTortureQuick is the bounded smoke sweep: every crash point of a small
// counter workload must recover clean or healed.
func TestTortureQuick(t *testing.T) {
	rep, err := Run(Config{
		Name:      "counter",
		Source:    progSource(t, "counter"),
		Script:    "init_; bump; bump; bump",
		RecoverFn: "recover_",
		Torn:      true,
		Seed:      1,
		Points:    40,
		Workers:   4,
		Shrink:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Trials == 0 {
		t.Fatalf("no crash points enumerated: %+v", rep)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("crash sweep found %d violations:\n%s", rep.Violated, js)
	}
}

// TestTortureTornChecksum covers torn multi-word persists (the 8-word array
// flush) with a content probe after every recovery.
func TestTortureTornChecksum(t *testing.T) {
	rep, err := Run(Config{
		Name:   "checksum",
		Source: progSource(t, "checksum"),
		Script: "init_; set 1 5; set 2 7",
		Probe:  "check",
		Torn:   true,
		Seed:   2,
		Points: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("torn-persist sweep found %d violations:\n%s", rep.Violated, js)
	}
}

// TestTortureRinglogTx covers transaction-commit crash points (each
// DurTxRange is a separate event) on the ring buffer.
func TestTortureRinglogTx(t *testing.T) {
	rep, err := Run(Config{
		Name:      "ringlog",
		Source:    progSource(t, "ringlog"),
		Script:    "init_ 4; append_ 1; append_ 2; append_ 3",
		RecoverFn: "recover_",
		Torn:      true,
		Seed:      3,
		Points:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("tx crash sweep found %d violations:\n%s", rep.Violated, js)
	}
}

// TestTortureDeterminism: byte-identical JSON for the same seed, across
// runs AND across worker counts.
func TestTortureDeterminism(t *testing.T) {
	cfg := Config{
		Name:      "linkedset",
		Source:    progSource(t, "linkedset"),
		Script:    "init_; insert 5; insert 3; insert 9",
		RecoverFn: "recover_",
		Torn:      true,
		Seed:      7,
		Points:    20,
		Depth:     2,
		Shrink:    true,
	}
	var outs [][]byte
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		rep, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, js)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("report differs across worker counts:\n--- w1:\n%s\n--- w4:\n%s", outs[0], outs[1])
	}
	// And across repeated runs at the same worker count.
	c := cfg
	c.Workers = 4
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := rep.JSON()
	if !bytes.Equal(outs[1], js) {
		t.Fatal("report differs across runs with the same seed")
	}
}

// TestTortureFindsBrokenRecovery proves the harness catches the bug class
// it was built for: a recovery entry point that assumes initialization
// completed ("value" dereferences the root unguarded) is driven into an
// unhealable segfault by a crash before setroot, and the failing schedule
// shrinks to a minimal replayable seed.
func TestTortureFindsBrokenRecovery(t *testing.T) {
	src := progSource(t, "counter")
	rep, err := Run(Config{
		Name:      "counter",
		Source:    src,
		Script:    "init_; bump",
		RecoverFn: "value", // deliberately unguarded recovery path
		Seed:      4,
		Shrink:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated == 0 {
		t.Fatal("unguarded recovery not caught by the sweep")
	}
	if len(rep.Shrunk) == 0 {
		t.Fatal("violations found but nothing shrunk")
	}
	for _, seed := range rep.Shrunk {
		if len(seed.Schedule) != 1 {
			t.Fatalf("seed %s not minimal", describeSeed(seed))
		}
		res, err := Replay(src, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != "violated" {
			t.Fatalf("shrunk seed %s does not reproduce: %+v", describeSeed(seed), res)
		}
	}
}
