package torture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"slices"

	"arthas"
	"arthas/internal/opt"
	"arthas/internal/pmem"
)

// Durability-equivalence sweep: the torture-grade proof obligation of the
// optimizer. For every enumerated crash point of the OPTIMIZED program
// (including torn variants when enabled), the schedule runs against the
// optimized build, the power failure latches, and the resulting durable
// image is recovered twice — once by the optimized stack and once by the
// unoptimized stack. The two recovered durable images must be
// word-identical: the optimizer may remove persists, but it must never
// change what any crash can make durable or how recovery repairs it. A
// crash-free full run of both builds must likewise end word-identical.
// Comparison is over pmem.Pool.DurableImage — the crash-preserved payload
// alone, not the serialized pool file, whose stats section counts persist
// traffic and would legitimately differ between the two builds.

// EquivSchemaVersion identifies the equivalence report format.
const EquivSchemaVersion = "arthas-equiv/v1"

// EquivMismatch records one crash point whose recovered states diverged.
type EquivMismatch struct {
	Trial  int    `json:"trial"`
	Event  int    `json:"event"`
	Keep   int    `json:"keep"`
	Detail string `json:"detail"`
}

// EquivReport is the deterministic output of RunEquivalence.
type EquivReport struct {
	Schema  string `json:"schema"`
	Program string `json:"program"`
	Script  string `json:"script"`
	Seed    int64  `json:"seed"`
	// EventsBaseline / EventsOptimized count durability events in one
	// uninjected run of each build: the dynamic persist-traffic reduction.
	EventsBaseline  int `json:"events_baseline"`
	EventsOptimized int `json:"events_optimized"`
	// Trials is the number of crash points swept (on the optimized build);
	// Matched of them recovered byte-identically under both stacks.
	Trials  int `json:"trials"`
	Matched int `json:"matched"`
	// Skipped counts schedules whose event never fired (the optimized run
	// produced fewer events than the schedule indexed).
	Skipped int `json:"skipped"`
	// FinalMatch is the crash-free check: both builds run the workload to
	// completion and the durable pools compare equal.
	FinalMatch bool            `json:"final_match"`
	Mismatches []EquivMismatch `json:"mismatches,omitempty"`
	// OptStats is what the optimizer did to the program under test.
	OptStats *opt.Stats `json:"opt_stats"`
}

// OK reports whether every swept crash point (and the crash-free run)
// recovered identically.
func (r *EquivReport) OK() bool {
	return len(r.Mismatches) == 0 && r.FinalMatch
}

// JSON renders the report byte-identically for a given seed.
func (r *EquivReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunEquivalence sweeps every enumerated crash point of the optimized
// program and proves recovery equivalence against the unoptimized build.
// cfg.Optimize is ignored (both builds always run); cfg.FlightEvents is
// forced to zero so pool images carry no telemetry tail and compare by
// durable content alone.
func RunEquivalence(cfg Config) (*EquivReport, error) {
	cfg = cfg.withDefaults()
	calls, err := ParseScript(cfg.Script)
	if err != nil {
		return nil, err
	}

	rep := &EquivReport{
		Schema:  EquivSchemaVersion,
		Program: cfg.Name,
		Script:  cfg.Script,
		Seed:    cfg.Seed,
	}

	// Static stats: what the pass does to this module.
	inst, err := arthas.New(cfg.Name, cfg.Source, eqConfig(cfg, true))
	if err != nil {
		return nil, fmt.Errorf("torture: optimized deploy: %w", err)
	}
	rep.OptStats = inst.OptStats

	// Dynamic event universes for both builds.
	optEvents, err := eqEnumerate(cfg, calls, true)
	if err != nil {
		return nil, fmt.Errorf("torture: optimized baseline run: %w", err)
	}
	baseEvents, err := eqEnumerate(cfg, calls, false)
	if err != nil {
		return nil, fmt.Errorf("torture: unoptimized baseline run: %w", err)
	}
	rep.EventsOptimized = len(optEvents)
	rep.EventsBaseline = len(baseEvents)

	// Crash-point schedules over the optimized build's universe. Depth 1:
	// equivalence is a property of one crash image at a time.
	schedCfg := cfg
	schedCfg.Depth = 1
	schedules := buildSchedules(schedCfg, optEvents)
	rep.Trials = len(schedules)

	for i, sched := range schedules {
		spec := sched[0]
		image, fired, err := crashImage(cfg, calls, spec)
		if err != nil {
			rep.Mismatches = append(rep.Mismatches, EquivMismatch{
				Trial: i, Event: spec.Event, Keep: spec.Keep,
				Detail: "optimized run: " + err.Error(),
			})
			continue
		}
		if !fired {
			rep.Skipped++
			continue
		}
		optPool, optErr := recoverImage(cfg, true, image)
		basePool, baseErr := recoverImage(cfg, false, image)
		switch {
		case optErr != nil || baseErr != nil:
			rep.Mismatches = append(rep.Mismatches, EquivMismatch{
				Trial: i, Event: spec.Event, Keep: spec.Keep,
				Detail: fmt.Sprintf("recovery failed (opt: %v, base: %v)", optErr, baseErr),
			})
		case !slices.Equal(optPool, basePool):
			rep.Mismatches = append(rep.Mismatches, EquivMismatch{
				Trial: i, Event: spec.Event, Keep: spec.Keep,
				Detail: fmt.Sprintf("recovered durable images differ at word %d",
					firstDiff(optPool, basePool)),
			})
		default:
			rep.Matched++
		}
	}

	// Crash-free check: both builds run the workload to completion and the
	// durable images must agree word for word.
	optFinal, err1 := finalPool(cfg, calls, true)
	baseFinal, err2 := finalPool(cfg, calls, false)
	rep.FinalMatch = err1 == nil && err2 == nil && slices.Equal(optFinal, baseFinal)

	return rep, nil
}

// eqConfig builds the per-stack instance configuration. FlightEvents stays
// zero: the flight recorder embeds telemetry in saved pools, which would
// make byte comparison reflect observation history instead of durability.
func eqConfig(cfg Config, optimize bool) arthas.Config {
	return arthas.Config{
		PoolWords:   cfg.PoolWords,
		MaxVersions: cfg.MaxVersions,
		StepLimit:   cfg.StepLimit,
		RecoverFn:   cfg.RecoverFn,
		Optimize:    optimize,
	}
}

// eqEnumerate counts durability events in one uninjected run of one build.
func eqEnumerate(cfg Config, calls []Call, optimize bool) ([]EventInfo, error) {
	inst, err := arthas.New(cfg.Name, cfg.Source, eqConfig(cfg, optimize))
	if err != nil {
		return nil, err
	}
	var events []EventInfo
	inst.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
		events = append(events, EventInfo{Kind: ev.Kind.String(), Addr: ev.Addr, Words: ev.Words})
		return ev.Words, false
	})
	for _, c := range calls {
		if _, trap := inst.Call(c.Fn, c.Args...); trap != nil {
			return nil, fmt.Errorf("call %q trapped with no injection: %v", c, trap)
		}
	}
	return events, nil
}

// crashImage runs the optimized build until spec's event fires, latches the
// power failure, and returns the serialized durable image. fired=false means
// the workload completed without reaching the event.
func crashImage(cfg Config, calls []Call, spec CrashSpec) ([]byte, bool, error) {
	inst, err := arthas.New(cfg.Name, cfg.Source, eqConfig(cfg, true))
	if err != nil {
		return nil, false, err
	}
	count := 0
	inst.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
		i := count
		count++
		if i != spec.Event {
			return ev.Words, false
		}
		keep := spec.Keep
		if keep < 0 || keep > ev.Words {
			keep = ev.Words
		}
		return keep, true
	})
	for _, c := range calls {
		inst.Call(c.Fn, c.Args...)
		if inst.Pool.CrashLatched() {
			break
		}
	}
	if !inst.Pool.CrashLatched() {
		return nil, false, nil
	}
	inst.Pool.SetCrashFunc(nil)
	inst.Pool.Crash()
	inst.Pool.ResetCrashLatch()
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		return nil, true, fmt.Errorf("save: %w", err)
	}
	return buf.Bytes(), true, nil
}

// recoverImage reopens one crash image under one build, runs recovery (with
// detector → reactor healing if it traps), and returns the recovered
// durable word image.
func recoverImage(cfg Config, optimize bool, image []byte) ([]uint64, error) {
	inst, err := arthas.OpenImage(cfg.Name, cfg.Source, eqConfig(cfg, optimize), bytes.NewReader(image))
	if err != nil {
		return nil, fmt.Errorf("reopen: %w", err)
	}
	if trap := inst.Restart(); trap != nil {
		if ok, _, v := heal(inst, trap, nil); !ok {
			return nil, fmt.Errorf("recovery unhealed: %s", v)
		}
	}
	return inst.Pool.DurableImage(), nil
}

// finalPool runs the full workload crash-free under one build and returns
// the final durable word image.
func finalPool(cfg Config, calls []Call, optimize bool) ([]uint64, error) {
	inst, err := arthas.New(cfg.Name, cfg.Source, eqConfig(cfg, optimize))
	if err != nil {
		return nil, err
	}
	for _, c := range calls {
		if _, trap := inst.Call(c.Fn, c.Args...); trap != nil {
			return nil, fmt.Errorf("call %q trapped: %v", c, trap)
		}
	}
	return inst.Pool.DurableImage(), nil
}

// firstDiff returns the first index where a and b disagree (or the shorter
// length when one is a prefix of the other).
func firstDiff(a, b []uint64) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
