package torture

import (
	"bytes"
	"fmt"

	"arthas"
	"arthas/internal/pmem"
)

// runTrial executes one schedule in a completely fresh deployment and
// reports the outcome. The trial shares nothing with other trials, so any
// number of them run concurrently with identical results.
//
// The loop mirrors how a real operator would live through the crash: run
// the workload until the injected power failure latches the pool, discard
// volatile state, serialize the durable image, reopen it through the REAL
// open path (open-time allocator recovery, strict integrity check,
// checkpoint-log and flight parsing), run the recovery function, and
// re-issue the interrupted operation (at-least-once semantics). Any trap on
// the way — during recovery or during the re-run — goes through the full
// detector → reactor healing flow; a failure the reactor cannot heal is an
// invariant violation, as is any malformed image, pool, or log state.
func runTrial(cfg Config, calls []Call, probe *Call, sched Schedule) TrialResult {
	res := TrialResult{Schedule: sched, Outcome: "clean"}
	var violations []string
	healed := false

	inst, err := arthas.New(cfg.Name, cfg.Source, arthasConfig(cfg))
	if err != nil {
		res.Outcome = "violated"
		res.Violations = []string{"deploy-failed: " + err.Error()}
		return res
	}

	ci := 0 // next workload call (not advanced past an interrupted call)
	for si := 0; ; si++ {
		if si < len(sched) {
			arm(inst, sched[si], &res)
		} else {
			inst.Pool.SetCrashFunc(nil)
		}

		crashed := false
		for ci < len(calls) {
			c := calls[ci]
			_, trap := inst.Call(c.Fn, c.Args...)
			if inst.Pool.CrashLatched() {
				crashed = true
				break
			}
			if trap != nil {
				// A failure with no crash pending: detector + reactor. The
				// mitigation's re-execution script restarts, recovers, and
				// re-issues this very call, so on success we advance past it.
				ok, mrep, v := heal(inst, trap, &c)
				if mrep != nil {
					res.MitigationAttempts += mrep.Attempts
				}
				if !ok {
					violations = append(violations, v)
					return finish(res, violations, healed)
				}
				healed = true
			}
			ci++
		}
		if !crashed {
			break
		}

		// Power failure: volatile state dies, the (possibly torn) durable
		// image is what the next process sees.
		inst.Pool.SetCrashFunc(nil)
		inst.Pool.Crash()
		inst.Pool.ResetCrashLatch()

		next, vs := reopen(cfg, inst)
		violations = append(violations, vs...)
		if next == nil {
			return finish(res, violations, healed)
		}
		inst = next

		if trap := inst.Restart(); trap != nil {
			ok, mrep, v := heal(inst, trap, probe)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
			}
			if !ok {
				violations = append(violations, v)
				return finish(res, violations, healed)
			}
			healed = true
		}
		violations = append(violations, checkState(cfg, inst)...)
		if len(violations) > 0 {
			return finish(res, violations, healed)
		}
	}

	// Workload complete. The optional probe must succeed now, and the final
	// state must survive one more save/reopen round trip cleanly.
	if probe != nil {
		if _, trap := inst.Call(probe.Fn, probe.Args...); trap != nil {
			ok, mrep, v := heal(inst, trap, probe)
			if mrep != nil {
				res.MitigationAttempts += mrep.Attempts
			}
			if !ok {
				violations = append(violations, v)
				return finish(res, violations, healed)
			}
			healed = true
		}
	}
	final, vs := reopen(cfg, inst)
	violations = append(violations, vs...)
	if final != nil {
		violations = append(violations, checkState(cfg, final)...)
	}
	return finish(res, violations, healed)
}

// arm installs the counting crash hook for one spec on the current segment.
func arm(inst *arthas.Instance, spec CrashSpec, res *TrialResult) {
	count := 0
	inst.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
		i := count
		count++
		if i != spec.Event {
			return ev.Words, false
		}
		keep := spec.Keep
		if keep < 0 || keep > ev.Words {
			keep = ev.Words
		}
		res.Crashes = append(res.Crashes,
			fmt.Sprintf("%s@%#x+%d keep=%d", ev.Kind, ev.Addr, ev.Words, keep))
		return keep, true
	})
}

// reopen serializes the instance's durable state and reopens it through the
// real recovery path. A crash image that cannot be reopened is always a
// violation: power loss at a durability boundary must never leave the
// system unreadable.
func reopen(cfg Config, inst *arthas.Instance) (*arthas.Instance, []string) {
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		return nil, []string{"save-failed: " + err.Error()}
	}
	next, err := arthas.OpenImage(inst.Name, cfg.Source, arthasConfig(cfg), &buf)
	if err != nil {
		return nil, []string{"reopen-failed: " + err.Error()}
	}
	return next, nil
}

// heal drives the detector → reactor flow for a trap. With a call, the
// mitigation re-execution script is "restart, recover, re-issue the call";
// without one it is recovery alone. Returns ok=false with a violation
// string when the reactor cannot produce a healthy system; rep is nil only
// when the reactor refused to run at all.
func heal(inst *arthas.Instance, trap *arthas.Trap, call *Call) (bool, *arthas.Report, string) {
	inst.Observe(trap)
	var rep *arthas.Report
	var err error
	if call != nil {
		rep, err = inst.MitigateCall(call.Fn, call.Args...)
	} else {
		rep, err = inst.Mitigate(func() *arthas.Trap { return inst.Restart() })
	}
	if err != nil {
		return false, nil, "mitigation-error: " + err.Error()
	}
	if !rep.Recovered {
		return false, rep, fmt.Sprintf("unhealed: %v after %d attempts (mode %v)",
			trap.Kind, rep.Attempts, rep.ModeUsed)
	}
	return true, rep, ""
}

// checkState verifies the post-recovery invariants on a live instance.
func checkState(cfg Config, inst *arthas.Instance) []string {
	var out []string
	if rep := inst.Pool.CheckIntegrity(); !rep.OK() {
		out = append(out, "pool-integrity: "+rep.String())
	}
	if rep := inst.Log.Validate(); !rep.OK() {
		out = append(out, "log-invalid: "+rep.String())
	}
	if cfg.FlightEvents > 0 && inst.Flight == nil {
		out = append(out, "flight-lost: recorder missing after reopen")
	}
	return out
}

func finish(res TrialResult, violations []string, healed bool) TrialResult {
	res.Violations = sortedViolations(violations)
	switch {
	case len(res.Violations) > 0:
		res.Outcome = "violated"
	case healed:
		res.Outcome = "healed"
	default:
		res.Outcome = "clean"
	}
	return res
}
