package torture

import (
	"fmt"
	"math/rand"
	"sort"

	"arthas"
	"arthas/internal/pmem"
)

// CrashSpec orders one injected crash: at the Event'th durability event of
// the current workload segment (events are counted from 0 and reset after
// each recovery), crash with the first Keep words of that event durable.
// Keep == -1 keeps the whole range — the "flush completed, checkpoint hook
// and tx commit never ran" point; Keep == 0 crashes before any word landed;
// anything between is a torn flush.
type CrashSpec struct {
	Event int `json:"event"`
	Keep  int `json:"keep"`
}

// Schedule is the ordered crash plan for one trial.
type Schedule []CrashSpec

func (s Schedule) String() string {
	out := ""
	for i, sp := range s {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("e%dk%d", sp.Event, sp.Keep)
	}
	return out
}

// enumerate runs the workload once uninjected with a counting hook and
// returns every durability event in order — the crash-point universe.
func enumerate(cfg Config, calls []Call) ([]EventInfo, error) {
	inst, err := arthas.New(cfg.Name, cfg.Source, arthasConfig(cfg))
	if err != nil {
		return nil, err
	}
	var events []EventInfo
	inst.Pool.SetCrashFunc(func(ev pmem.DurEvent) (int, bool) {
		events = append(events, EventInfo{Kind: ev.Kind.String(), Addr: ev.Addr, Words: ev.Words})
		return ev.Words, false
	})
	for _, c := range calls {
		if _, trap := inst.Call(c.Fn, c.Args...); trap != nil {
			return nil, fmt.Errorf("workload call %q trapped with no injection: %v", c, trap)
		}
	}
	return events, nil
}

// buildSchedules expands the event universe into crash schedules:
//
//   - every event gets a keep=0 ("nothing landed") and keep=-1 ("all landed,
//     hooks lost") variant;
//   - multi-word events additionally get torn variants (1, n/2, n-1 words
//     durable) when cfg.Torn is set;
//   - Depth >= 2 adds sampled two-crash schedules (crash, recover, crash
//     again during the re-run);
//   - the whole set is then sampled down to cfg.Points with the seeded PRNG
//     (order-preserving, so reports stay readable and deterministic).
func buildSchedules(cfg Config, events []EventInfo) []Schedule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var all []Schedule
	for i, ev := range events {
		keeps := []int{0, -1}
		if cfg.Torn && ev.Words > 1 {
			for _, k := range []int{1, ev.Words / 2, ev.Words - 1} {
				if k > 0 && k < ev.Words {
					keeps = append(keeps, k)
				}
			}
			keeps = dedupInts(keeps)
		}
		for _, k := range keeps {
			all = append(all, Schedule{{Event: i, Keep: k}})
		}
	}
	if cfg.Depth >= 2 && len(all) > 0 {
		// Sampled second crashes: after the first recovery the segment's
		// event stream differs from the baseline, so the second index is a
		// blind (but deterministic) probe into it.
		n := len(events)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			first := all[rng.Intn(len(all))][0]
			second := CrashSpec{Event: rng.Intn(len(events)), Keep: -1}
			if rng.Intn(2) == 0 {
				second.Keep = 0
			}
			all = append(all, Schedule{first, second})
		}
	}
	if cfg.Points > 0 && len(all) > cfg.Points {
		idx := rng.Perm(len(all))[:cfg.Points]
		sort.Ints(idx)
		sampled := make([]Schedule, 0, cfg.Points)
		for _, i := range idx {
			sampled = append(sampled, all[i])
		}
		all = sampled
	}
	return all
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
