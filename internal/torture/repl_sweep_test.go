package torture

import (
	"bytes"
	"testing"
)

// TestReplSweepConverges: every replication failure — primary power loss at
// each durability event (torn included), stream cut at each record, replica
// kill at each record — must converge back to word-identical durable images
// with zero residual lag. Violations are protocol bugs by definition.
func TestReplSweepConverges(t *testing.T) {
	rep, err := RunRepl(Config{
		Name:      "linkedset",
		Source:    progSource(t, "linkedset"),
		Script:    "init_; insert 1; insert 2; insert 3; insert 4",
		RecoverFn: "recover_",
		Probe:     "contains 1",
		Seed:      19,
		Points:    48,
		Torn:      true,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Records == 0 || rep.Trials == 0 {
		t.Fatalf("empty sweep: %+v", rep)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("repl sweep found %d violations:\n%s", rep.Violated, js)
	}
	// The sampled universe must actually exercise all three victim kinds,
	// and the ordered failures must fire and be noticed by the session.
	var crashes, truncations, drops int
	for _, res := range rep.Results {
		switch res.Spec.Victim {
		case ReplVictimPrimary:
			if res.Fired {
				crashes++
			}
		case ReplVictimStream:
			if res.Fired {
				if res.Truncations == 0 {
					t.Fatalf("stream cut fired without truncation: %+v", res)
				}
				truncations++
			}
		case ReplVictimReplica:
			if res.Fired {
				if res.Drops == 0 {
					t.Fatalf("replica kill fired without drop: %+v", res)
				}
				drops++
			}
		}
	}
	if crashes == 0 || truncations == 0 || drops == 0 {
		js, _ := rep.JSON()
		t.Fatalf("victim coverage: crashes=%d truncations=%d drops=%d\n%s",
			crashes, truncations, drops, js)
	}
}

// TestReplSweepTornTailIdentity pins the hardest case unsampled: torn
// primary crashes (partial multi-word flushes) — the stream recorded the
// full write, the durable truth kept a prefix, and the dirty-resync
// protocol must still converge to identity at every such point.
func TestReplSweepTornTailIdentity(t *testing.T) {
	rep, err := RunRepl(Config{
		Name:      "counter",
		Source:    progSource(t, "counter"),
		Script:    "init_; bump; bump; bump",
		RecoverFn: "recover_",
		Probe:     "value",
		Seed:      23,
		Torn:      true,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("torn repl sweep violations:\n%s", js)
	}
	torn := 0
	for _, res := range rep.Results {
		if res.Spec.Victim == ReplVictimPrimary && res.Spec.Keep >= 0 && res.Fired {
			torn++
		}
	}
	if torn == 0 {
		t.Fatal("no torn primary crash fired")
	}
}

// TestReplSweepDeterminism: byte-identical JSON for the same seed across
// worker counts and repeated runs — the same contract the crash and media
// sweeps carry, extended to the replication mode (CI diffs these).
func TestReplSweepDeterminism(t *testing.T) {
	cfg := Config{
		Name:   "checksum",
		Source: progSource(t, "checksum"),
		Script: "init_; set 1 5; set 2 7",
		Probe:  "check",
		Seed:   29,
		Points: 20,
		Torn:   true,
	}
	var outs [][]byte
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		rep, err := RunRepl(c)
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, js)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("repl report differs across worker counts:\n--- w1:\n%s\n--- w4:\n%s", outs[0], outs[1])
	}
	c := cfg
	c.Workers = 4
	rep, err := RunRepl(c)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := rep.JSON()
	if !bytes.Equal(outs[1], js) {
		t.Fatal("repl report differs across runs with the same seed")
	}
}
