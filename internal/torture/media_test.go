package torture

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arthas"
)

// TestMediaSweepHeals is the bounded media smoke sweep: every injected
// media fault over a small counter workload must end clean or healed —
// never a violation — through the in-process and reopen repair paths.
func TestMediaSweepHeals(t *testing.T) {
	rep, err := RunMedia(Config{
		Name:      "counter",
		Source:    progSource(t, "counter"),
		Script:    "init_; bump; bump; bump",
		RecoverFn: "recover_",
		Probe:     "value",
		Seed:      11,
		Points:    24,
		Workers:   4,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Trials == 0 {
		t.Fatalf("no events enumerated: %+v", rep)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("media sweep found %d violations:\n%s", rep.Violated, js)
	}
	healed := 0
	for _, res := range rep.Results {
		if res.ScrubRepairs > 0 || res.OpenHealed {
			healed++
		}
	}
	if healed == 0 {
		js, _ := rep.JSON()
		t.Fatalf("no trial exercised a scrub repair:\n%s", js)
	}
}

// TestMediaSweepDeterminism: byte-identical JSON for the same seed across
// worker counts and repeated runs — the satellite (c) acceptance check.
func TestMediaSweepDeterminism(t *testing.T) {
	cfg := Config{
		Name:   "checksum",
		Source: progSource(t, "checksum"),
		Script: "init_; set 1 5; set 2 7; set 3 9",
		Probe:  "check",
		Seed:   13,
		Points: 16,
	}
	var outs [][]byte
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		rep, err := RunMedia(c, "")
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, js)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("media report differs across worker counts:\n--- w1:\n%s\n--- w8:\n%s", outs[0], outs[1])
	}
	c := cfg
	c.Workers = 8
	rep, err := RunMedia(c, "")
	if err != nil {
		t.Fatal(err)
	}
	js, _ := rep.JSON()
	if !bytes.Equal(outs[1], js) {
		t.Fatal("media report differs across runs with the same seed")
	}
}

// TestMediaSweepImageDir saves corrupt trial images and verifies they are
// real Arthas images carrying detectable corruption — the corpus the CI
// media job feeds to arthas-inspect scrub.
func TestMediaSweepImageDir(t *testing.T) {
	dir := t.TempDir()
	rep, err := RunMedia(Config{
		Name:      "counter",
		Source:    progSource(t, "counter"),
		Script:    "init_; bump; bump",
		RecoverFn: "recover_",
		Seed:      17,
		Points:    6,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated != 0 {
		js, _ := rep.JSON()
		t.Fatalf("media sweep found violations:\n%s", js)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var images []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".img") {
			images = append(images, filepath.Join(dir, e.Name()))
		}
	}
	if len(images) == 0 {
		t.Fatal("no trial images saved")
	}
	sawCorrupt := false
	for _, path := range images {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		pool, _, _, err := arthas.ReadAnyImage(f)
		f.Close()
		if err != nil || pool == nil {
			t.Fatalf("saved image %s unreadable: %v", path, err)
		}
		if pool.VerifyMedia() != nil {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no saved image carries detectable corruption")
	}
}
