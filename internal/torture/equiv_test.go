package torture

import (
	"bytes"
	"testing"
)

// equivCases are the fixture workloads the durability-equivalence sweep
// must prove. native is the one the optimizer actually rewrites; the
// others pin that the sweep holds trivially when the pass is a no-op
// (ringlog is tx-tainted, counter/checksum/linkedset have no redundancy).
var equivCases = []struct {
	name, script, recover, probe string
}{
	{"counter", "init_; bump; bump; bump", "recover_", ""},
	{"checksum", "init_; set 1 5; set 2 7", "", "check"},
	{"linkedset", "init_; insert 5; insert 3; insert 9", "recover_", ""},
	{"ringlog", "init_ 4; append_ 1; append_ 2; append_ 3", "recover_", ""},
	{"native", "init_; append_ 5; append_ 7; reset_; append_ 2", "recover_", ""},
}

// TestEquivalenceSweep is the optimizer's acceptance gate: every enumerated
// crash point of the optimized build must recover to a pool byte-identical
// to what the unoptimized build recovers from the same image.
func TestEquivalenceSweep(t *testing.T) {
	for _, tc := range equivCases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := RunEquivalence(Config{
				Name:      tc.name,
				Source:    progSource(t, tc.name),
				Script:    tc.script,
				RecoverFn: tc.recover,
				Probe:     tc.probe,
				Torn:      true,
				Seed:      7,
				Points:    60,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Trials == 0 || rep.EventsOptimized == 0 {
				t.Fatalf("no crash points swept: %+v", rep)
			}
			if !rep.OK() {
				js, _ := rep.JSON()
				t.Fatalf("equivalence violated:\n%s", js)
			}
			if rep.Matched+rep.Skipped != rep.Trials {
				t.Fatalf("trial accounting off: %d matched + %d skipped != %d trials",
					rep.Matched, rep.Skipped, rep.Trials)
			}
		})
	}
}

// TestEquivalenceNativeWins pins that the sweep is not vacuous on native:
// the pass rewrites the module AND the dynamic durability-event stream
// shrinks, yet every crash point still recovers identically.
func TestEquivalenceNativeWins(t *testing.T) {
	rep, err := RunEquivalence(Config{
		Name:      "native",
		Source:    progSource(t, "native"),
		Script:    "init_; append_ 5; append_ 7; reset_; append_ 2",
		RecoverFn: "recover_",
		Torn:      true,
		Seed:      7,
		Points:    60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OptStats == nil || rep.OptStats.Total() == 0 {
		t.Fatalf("optimizer did nothing to native: %+v", rep.OptStats)
	}
	if rep.EventsOptimized >= rep.EventsBaseline {
		t.Fatalf("optimized build should issue fewer durability events: %d vs baseline %d",
			rep.EventsOptimized, rep.EventsBaseline)
	}
	if !rep.OK() {
		js, _ := rep.JSON()
		t.Fatalf("equivalence violated:\n%s", js)
	}
}

// TestOptimizedSweepWorkerInvariant: a -opt torture sweep must produce a
// byte-identical report at any worker count — the optimized module is
// deterministic, so parallel trials cannot change what any schedule sees.
func TestOptimizedSweepWorkerInvariant(t *testing.T) {
	run := func(workers int) []byte {
		rep, err := Run(Config{
			Name:      "native",
			Source:    progSource(t, "native"),
			Script:    "init_; append_ 5; reset_; append_ 7",
			RecoverFn: "recover_",
			Torn:      true,
			Seed:      3,
			Points:    30,
			Workers:   workers,
			Optimize:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violated != 0 {
			js, _ := rep.JSON()
			t.Fatalf("optimized sweep at %d workers found violations:\n%s", workers, js)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	one, eight := run(1), run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("-opt sweep report differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}

// TestEquivalenceDeterministic: same seed, same report bytes.
func TestEquivalenceDeterministic(t *testing.T) {
	cfg := Config{
		Name:      "native",
		Source:    progSource(t, "native"),
		Script:    "init_; append_ 5; reset_",
		RecoverFn: "recover_",
		Torn:      true,
		Seed:      11,
		Points:    30,
	}
	a, err := RunEquivalence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEquivalence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("equivalence report not deterministic:\n%s\nvs\n%s", ja, jb)
	}
}
