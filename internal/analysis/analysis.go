// Package analysis implements the Arthas static analyzer (paper §4.1):
// identification of persistent-memory variables and instructions, trace
// instrumentation (GUID assignment), the inter-procedural Program
// Dependence Graph, and backward/forward slicing.
//
// The analyzer plays the role of the paper's LLVM-based component: it
// consumes the IR a PML program compiles to, finds every instruction that
// may create or access persistent memory (seeded at the PM allocation APIs
// and closed over def-use chains and an Andersen-style pointer analysis),
// instruments those instructions with GUIDs so the VM emits address traces,
// and builds the PDG the reactor later slices to plan reversions.
package analysis

import (
	"time"

	"arthas/internal/ir"
)

// Result bundles everything the analyzer produces for one module: the
// paper's "static PDG + GUID mappings" metadata files.
type Result struct {
	Mod    *ir.Module
	PT     *PointsTo
	PDG    *PDG
	GUIDs  []GUIDInfo
	ByGUID map[int]*ir.Instr

	// Timings for Table 9.
	PointsToTime time.Duration
	PDGTime      time.Duration
	InstrTime    time.Duration

	pm *pmClosure
}

// Analyze runs the full static pipeline: pointer analysis, PM-variable
// closure, instrumentation (mutates the module by assigning GUIDs), and PDG
// construction.
func Analyze(mod *ir.Module) *Result {
	res := &Result{Mod: mod, ByGUID: map[int]*ir.Instr{}}

	t0 := time.Now()
	res.PT = buildPointsTo(mod)
	res.PointsToTime = time.Since(t0)

	t1 := time.Now()
	res.pm = computePMVars(mod, res.PT)
	res.GUIDs = instrument(mod, res.pm)
	res.InstrTime = time.Since(t1)

	t2 := time.Now()
	res.PDG = buildPDG(mod, res.PT)
	res.PDGTime = time.Since(t2)

	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.GUID != 0 {
				res.ByGUID[in.GUID] = in
			}
		})
	}
	return res
}

// IsPMInstr reports whether the instruction may touch persistent memory.
func (r *Result) IsPMInstr(f *ir.Function, in *ir.Instr) bool { return r.pm.isPMInstr(f, in) }

// IsPMWrite reports whether the instruction may modify persistent state.
func (r *Result) IsPMWrite(f *ir.Function, in *ir.Instr) bool { return r.pm.isPMWrite(f, in) }

// IsPMReg reports whether register reg of f may hold a PM address.
func (r *Result) IsPMReg(f *ir.Function, reg int) bool { return r.pm.isPMReg(f, reg) }

// PMWriteGUIDs returns the GUIDs of instructions that modify PM state.
func (r *Result) PMWriteGUIDs() []int {
	var out []int
	for _, gi := range r.GUIDs {
		in := r.ByGUID[gi.GUID]
		f := r.PDG.FnOf[in]
		if r.pm.isPMWrite(f, in) {
			out = append(out, gi.GUID)
		}
	}
	return out
}

// InstrByGUID resolves a GUID back to its instruction (nil if unknown).
func (r *Result) InstrByGUID(g int) *ir.Instr { return r.ByGUID[g] }

// Stats summarizes the analysis for logs and Table 9.
type Stats struct {
	Functions    int
	Instructions int
	PMInstrs     int
	PDGEdges     int
}

// Stats returns module-level counts.
func (r *Result) Stats() Stats {
	s := Stats{Functions: len(r.Mod.Funcs), PDGEdges: r.PDG.NumEdges()}
	for _, f := range r.Mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			s.Instructions++
			if in.GUID != 0 {
				s.PMInstrs++
			}
		})
	}
	return s
}
