package analysis

import "arthas/internal/ir"

// Post-dominance and control dependence (Ferrante/Ottenstein/Warren).
//
// Control dependence is computed per function: for every CFG edge A→B where
// B does not post-dominate A, every block from B up the post-dominator tree
// (until, exclusively, A's immediate post-dominator) is control-dependent on
// A's terminating branch. Blocks in infinite loops never reach the virtual
// exit; they post-dominate nothing, and the walk guards against that.

// postDoms computes the post-dominator sets of every block, using a virtual
// exit node indexed len(blocks) that every return block precedes.
func postDoms(f *ir.Function) []bitset {
	nb := len(f.Blocks)
	exit := nb
	n := nb + 1

	// Reverse-CFG predecessors = forward successors (+ exit after rets).
	succs := make([][]int, n)
	for bi, b := range f.Blocks {
		succs[bi] = b.Succs()
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			succs[bi] = []int{exit}
		}
	}

	pdom := make([]bitset, n)
	for i := 0; i < n; i++ {
		pdom[i] = newBitset(n)
		if i == exit {
			pdom[i].set(exit)
		} else {
			// Start full; refine down.
			for j := 0; j < n; j++ {
				pdom[i].set(j)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			if len(succs[i]) == 0 {
				// No path to exit (e.g. guaranteed-trap block): keep full.
				continue
			}
			meet := pdom[succs[i][0]].clone()
			for _, s := range succs[i][1:] {
				for w := range meet {
					meet[w] &= pdom[s][w]
				}
			}
			meet.set(i)
			same := true
			for w := range meet {
				if meet[w] != pdom[i][w] {
					same = false
					break
				}
			}
			if !same {
				pdom[i] = meet
				changed = true
			}
		}
	}
	return pdom
}

// immediatePostDom derives the ipdom of each block from the pdom sets.
// Returns -1 when undefined (exit, or unreachable-from-exit blocks).
func immediatePostDom(f *ir.Function, pdom []bitset) []int {
	nb := len(f.Blocks)
	n := nb + 1
	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	for i := 0; i < nb; i++ {
		// Strict post-dominators of i.
		var strict []int
		pdom[i].forEach(func(j int) {
			if j != i {
				strict = append(strict, j)
			}
		})
		// The ipdom is the strict post-dominator that is post-dominated by
		// every other strict post-dominator.
		for _, c := range strict {
			isIPDom := true
			for _, o := range strict {
				if o != c && !pdom[c].has(o) {
					isIPDom = false
					break
				}
			}
			if isIPDom {
				ipdom[i] = c
				break
			}
		}
	}
	return ipdom
}

// controlDeps returns, for each block, the branch instructions it is
// control-dependent on.
func controlDeps(f *ir.Function) map[int][]*ir.Instr {
	pdom := postDoms(f)
	ipdom := immediatePostDom(f, pdom)
	deps := map[int][]*ir.Instr{}

	for _, a := range f.Blocks {
		t := a.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		for _, b := range a.Succs() {
			if pdom[a.Index].has(b) {
				// b post-dominates a: taking this edge is inevitable, so
				// nothing on it is control-dependent on the branch.
				continue
			}
			// Walk b up the post-dominator tree until ipdom(a), marking
			// each visited block control-dependent on a's branch. Loops
			// make the walk pass through a itself (self-dependence).
			stop := ipdom[a.Index]
			cur := b
			for steps := 0; cur != -1 && cur != stop && steps <= len(f.Blocks)+1; steps++ {
				if cur < len(f.Blocks) {
					deps[cur] = append(deps[cur], t)
				}
				cur = ipdom[cur]
			}
		}
	}
	return deps
}
