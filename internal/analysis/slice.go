package analysis

import (
	"sort"

	"arthas/internal/ir"
)

// Backward program slicing (paper §4.5): "The reactor first computes the
// backward slices of the fault instruction based on the PDG. A backward
// slice for an instruction A includes all instructions that may affect the
// values in A. We only retain instructions that have persistent variables
// operands."

// SliceNode is one instruction in a slice, with its BFS distance from the
// fault instruction (used by distance-capping policies).
type SliceNode struct {
	Instr *ir.Instr
	Fn    *ir.Function
	Dist  int
}

// Slice is an ordered backward slice (closest dependencies first).
type Slice struct {
	Fault *ir.Instr
	Nodes []SliceNode
}

// GUIDs returns the traced PM instructions in the slice, nearest first.
func (s *Slice) GUIDs() []int {
	var out []int
	for _, n := range s.Nodes {
		if n.Instr.GUID != 0 {
			out = append(out, n.Instr.GUID)
		}
	}
	return out
}

// SliceOpts tunes backward slicing.
type SliceOpts struct {
	// AddrFault indicates the fault is an invalid-address trap at the
	// fault instruction (segfault on a load/store/free). In that case the
	// slice follows the fault node's register (address) dependencies but
	// NOT its memory dependence: the crash is caused by the bad pointer,
	// not by the contents of the location it failed to access. All other
	// nodes follow memory dependence normally.
	AddrFault bool
}

// BackwardSlice computes the backward slice of fault over the PDG with
// default options.
func (g *PDG) BackwardSlice(fault *ir.Instr) *Slice {
	return g.BackwardSliceOpts(fault, SliceOpts{})
}

// BackwardSliceOpts computes the backward slice of fault over the PDG,
// following data, memory, and control predecessor edges, plus the call-site
// rule: reaching any instruction of a function pulls in that function's
// call sites (inter-procedural control dependence).
func (g *PDG) BackwardSliceOpts(fault *ir.Instr, opts SliceOpts) *Slice {
	type qe struct {
		in   *ir.Instr
		dist int
	}
	seen := map[*ir.Instr]int{fault: 0}
	queue := []qe{{fault, 0}}
	fnPulled := map[*ir.Function]bool{}

	push := func(in *ir.Instr, dist int) {
		if _, ok := seen[in]; ok {
			return
		}
		seen[in] = dist
		queue = append(queue, qe{in, dist})
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range g.DataPreds[cur.in] {
			push(p, cur.dist+1)
		}
		if !(opts.AddrFault && cur.in == fault) {
			for _, p := range g.MemPreds[cur.in] {
				push(p, cur.dist+1)
			}
		}
		for _, p := range g.CtrlPreds[cur.in] {
			push(p, cur.dist+1)
		}
		// Call-site rule: the first time the slice enters a function,
		// include its call sites (the fault can only be reached through
		// them), at distance+1.
		if f := g.FnOf[cur.in]; f != nil && !fnPulled[f] {
			fnPulled[f] = true
			for _, site := range g.CallSitesOf[f.Name] {
				push(site, cur.dist+1)
			}
		}
	}

	s := &Slice{Fault: fault}
	for in, d := range seen {
		s.Nodes = append(s.Nodes, SliceNode{Instr: in, Fn: g.FnOf[in], Dist: d})
	}
	// Order: nearest first; ties by function name then instruction ID for
	// determinism.
	sort.Slice(s.Nodes, func(i, j int) bool {
		a, b := s.Nodes[i], s.Nodes[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		an, bn := "", ""
		if a.Fn != nil {
			an = a.Fn.Name
		}
		if b.Fn != nil {
			bn = b.Fn.Name
		}
		if an != bn {
			return an < bn
		}
		return a.Instr.ID < b.Instr.ID
	})
	return s
}

// PMSlice filters a slice down to nodes whose instructions touch PM (have a
// GUID), i.e. the paper's "retain instructions that have persistent
// variable operands".
func (s *Slice) PMSlice() *Slice {
	out := &Slice{Fault: s.Fault}
	for _, n := range s.Nodes {
		if n.Instr.GUID != 0 {
			out.Nodes = append(out.Nodes, n)
		}
	}
	return out
}

// MaxDist caps a slice at a maximum distance from the fault (the "more
// complex policy function" of §4.5).
func (s *Slice) MaxDist(d int) *Slice {
	out := &Slice{Fault: s.Fault}
	for _, n := range s.Nodes {
		if n.Dist <= d {
			out.Nodes = append(out.Nodes, n)
		}
	}
	return out
}

// Contains reports whether the slice includes the instruction.
func (s *Slice) Contains(in *ir.Instr) bool {
	for _, n := range s.Nodes {
		if n.Instr == in {
			return true
		}
	}
	return false
}

// ForwardSlice computes the forward closure from a set of instructions over
// data edges — used by the purge mode's second pass, which re-purges states
// influenced by a reverted update (paper §4.4).
func (g *PDG) ForwardSlice(from []*ir.Instr) map[*ir.Instr]bool {
	seen := map[*ir.Instr]bool{}
	queue := append([]*ir.Instr(nil), from...)
	for _, in := range from {
		seen[in] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range g.DataSuccs[cur] {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
		for _, s := range g.MemSuccs[cur] {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}
