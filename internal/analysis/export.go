package analysis

import "arthas/internal/ir"

// DefUse is the exported view of the per-function reaching-definitions
// def-use chains, the proof substrate internal/opt uses to resolve address
// operands to their defining instructions.
type DefUse struct{ du *regDefUse }

// ReachDefs computes reaching definitions over f and returns the def-use
// chains. The result is deterministic for a given function.
func ReachDefs(f *ir.Function) *DefUse {
	return &DefUse{du: computeDefUse(f)}
}

// DefsOf returns the definition instructions that may reach use's read of
// reg, and whether the incoming function parameter may also reach it. An
// empty slice with fromParam=false means reg is not read by use (or is
// read uninitialized, which the compiler does not emit).
func (d *DefUse) DefsOf(use *ir.Instr, reg int) (defs []*ir.Instr, fromParam bool) {
	for _, ds := range d.du.useDefs[use] {
		if ds.reg != reg {
			continue
		}
		if ds.instr == nil {
			fromParam = true
			continue
		}
		defs = append(defs, ds.instr)
	}
	return defs, fromParam
}

// BuildPointsTo runs the Andersen-style pointer analysis alone, without the
// instrumentation step that assigns GUIDs (Analyze mutates the module;
// BuildPointsTo does not). internal/opt uses it for may-alias refutation
// before the module has been analyzed.
func BuildPointsTo(mod *ir.Module) *PointsTo {
	return buildPointsTo(mod)
}
