package analysis

import "arthas/internal/ir"

// Reaching definitions and register def-use chains, computed per function.
//
// The IR is a non-SSA register machine, so def-use chains come from a
// classic reaching-definitions fixpoint: a definition site is any
// instruction with a destination register, plus one synthetic definition
// per parameter (representing the value flowing in from call sites).

// defSite is one definition of a register.
type defSite struct {
	instr *ir.Instr // nil for the synthetic parameter definition
	reg   int
	param int // parameter index when instr == nil
}

// regDefUse holds the per-function def-use results.
type regDefUse struct {
	fn   *ir.Function
	defs []defSite
	// useDefs maps an instruction to the definition sites that may reach
	// each of its register uses (merged over all uses).
	useDefs map[*ir.Instr][]defSite
}

// computeDefUse runs reaching definitions over f and records, for every
// instruction, which definitions reach its uses.
func computeDefUse(f *ir.Function) *regDefUse {
	r := &regDefUse{fn: f, useDefs: map[*ir.Instr][]defSite{}}

	// Enumerate definition sites. Synthetic parameter defs come first.
	defsOfReg := make([][]int, f.NumRegs) // reg -> def indices
	for p := 0; p < f.NumParams; p++ {
		r.defs = append(r.defs, defSite{instr: nil, reg: p, param: p})
		defsOfReg[p] = append(defsOfReg[p], p)
	}
	f.Instrs(func(in *ir.Instr) {
		if in.HasDst() {
			idx := len(r.defs)
			r.defs = append(r.defs, defSite{instr: in, reg: in.Dst})
			defsOfReg[in.Dst] = append(defsOfReg[in.Dst], idx)
		}
	})
	nd := len(r.defs)

	// gen/kill per block.
	nb := len(f.Blocks)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	for bi, b := range f.Blocks {
		gen[bi] = newBitset(nd)
		kill[bi] = newBitset(nd)
		for _, in := range b.Instrs {
			if !in.HasDst() {
				continue
			}
			// This def kills all other defs of the register...
			for _, d := range defsOfReg[in.Dst] {
				kill[bi].set(d)
				gen[bi].clear(d)
			}
			// ...and generates itself.
			for _, d := range defsOfReg[in.Dst] {
				if r.defs[d].instr == in {
					gen[bi].set(d)
					kill[bi].clear(d)
				}
			}
		}
	}

	// IN/OUT fixpoint. Entry IN holds the synthetic parameter defs.
	in := make([]bitset, nb)
	out := make([]bitset, nb)
	for bi := range f.Blocks {
		in[bi] = newBitset(nd)
		out[bi] = newBitset(nd)
	}
	for p := 0; p < f.NumParams; p++ {
		in[0].set(p)
	}
	preds := ir.Preds(f)
	changed := true
	for changed {
		changed = false
		for bi := range f.Blocks {
			if bi != 0 {
				merged := newBitset(nd)
				for _, p := range preds[bi] {
					merged.orWith(out[p])
				}
				if bi == 0 {
					for p := 0; p < f.NumParams; p++ {
						merged.set(p)
					}
				}
				in[bi].copyFrom(merged)
			}
			o := in[bi].clone()
			o.andNot(kill[bi])
			o.orWith(gen[bi])
			if out[bi].orWith(o) {
				changed = true
			}
		}
	}

	// Walk each block tracking current reaching defs to resolve uses.
	for bi, b := range f.Blocks {
		cur := in[bi].clone()
		for _, instr := range b.Instrs {
			for _, useReg := range instr.Args {
				for _, d := range defsOfReg[useReg] {
					if cur.has(d) {
						r.useDefs[instr] = append(r.useDefs[instr], r.defs[d])
					}
				}
			}
			if instr.HasDst() {
				for _, d := range defsOfReg[instr.Dst] {
					cur.clear(d)
					if r.defs[d].instr == instr {
						cur.set(d)
					}
				}
			}
		}
	}
	return r
}
