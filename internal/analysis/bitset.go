package analysis

import "math/bits"

// bitset is a dense bit vector used by the dataflow fixpoints.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// orWith ORs o into b, reporting whether b changed.
func (b bitset) orWith(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// andNot clears every bit of k from b.
func (b bitset) andNot(k bitset) {
	for i := range b {
		b[i] &^= k[i]
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// forEach calls f for every set bit index.
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			f(i)
			word &= word - 1
		}
	}
}
