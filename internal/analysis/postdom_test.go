package analysis

import (
	"testing"

	"arthas/internal/ir"
)

// Post-dominance and control-dependence edge cases: infinite loops, nested
// conditionals, multiple returns, and unreachable-from-exit regions.

func ctrlDepsOf(t *testing.T, src, fn string) (map[int][]*ir.Instr, *ir.Function) {
	t.Helper()
	mod, err := ir.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return controlDeps(f), f
}

func TestControlDepsNestedIf(t *testing.T) {
	deps, f := ctrlDepsOf(t, `
fn f(a, b) {
    var r = 0;
    if (a > 0) {
        if (b > 0) {
            r = 1;
        }
        r = r + 10;
    }
    return r;
}`, "f")
	// Find both branches in source order.
	var branches []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBr {
			branches = append(branches, in)
		}
	})
	if len(branches) != 2 {
		t.Fatalf("branches = %d", len(branches))
	}
	outer, inner := branches[0], branches[1]
	// The inner branch's block is control-dependent on the outer branch.
	found := false
	for _, d := range deps[inner.Block] {
		if d == outer {
			found = true
		}
	}
	if !found {
		t.Fatal("inner branch not control-dependent on outer")
	}
	// The innermost assignment depends on BOTH branches (transitively the
	// inner one directly; the PDG slicer follows chains).
	innerThen := f.Blocks[inner.Target]
	dep := map[*ir.Instr]bool{}
	for _, d := range deps[innerThen.Index] {
		dep[d] = true
	}
	if !dep[inner] {
		t.Fatal("inner-then block not control-dependent on inner branch")
	}
}

func TestControlDepsInfiniteLoop(t *testing.T) {
	// A function with an unconditional infinite loop must not crash the
	// post-dominance computation (no path to exit).
	deps, f := ctrlDepsOf(t, `
fn f(n) {
    var i = 0;
    while (1) {
        i = i + n;
        if (i > 100) {
            i = 0;
        }
    }
    return i;
}`, "f")
	_ = deps
	_ = f // reaching here without panic/fixpoint divergence is the test
}

func TestControlDepsMultipleReturns(t *testing.T) {
	deps, f := ctrlDepsOf(t, `
fn f(a) {
    if (a == 1) { return 10; }
    if (a == 2) { return 20; }
    return 30;
}`, "f")
	// Each early-return block is control-dependent on its branch.
	var branches []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBr {
			branches = append(branches, in)
		}
	})
	if len(branches) != 2 {
		t.Fatalf("branches = %d", len(branches))
	}
	for i, br := range branches {
		thenBlock := br.Target
		ok := false
		for _, d := range deps[thenBlock] {
			if d == br {
				ok = true
			}
		}
		if !ok {
			t.Errorf("return %d not control-dependent on its branch", i)
		}
	}
}

func TestPostDomsStraightLine(t *testing.T) {
	mod := ir.MustCompile("t", "fn f(a) { var x = a + 1; return x; }")
	f := mod.Func("f")
	pd := postDoms(f)
	// The single block post-dominates itself; exit post-dominates it.
	if !pd[0].has(0) {
		t.Fatal("block does not post-dominate itself")
	}
	exit := len(f.Blocks)
	if !pd[0].has(exit) {
		t.Fatal("exit does not post-dominate the entry of a straight-line fn")
	}
}

func TestImmediatePostDomDiamond(t *testing.T) {
	mod := ir.MustCompile("t", `
fn f(c) {
    var r = 0;
    if (c) {
        r = 1;
    } else {
        r = 2;
    }
    return r;
}`)
	f := mod.Func("f")
	pd := postDoms(f)
	ip := immediatePostDom(f, pd)
	// The entry block's immediate post-dominator is the join block (which
	// contains the return), not the exit.
	var br *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBr {
			br = in
		}
	})
	join := ip[br.Block]
	if join < 0 || join >= len(f.Blocks) {
		t.Fatalf("ipdom of branch block = %d", join)
	}
	// The join must contain the ret (directly or lead to it unconditionally).
	t.Logf("branch block %d -> ipdom %d", br.Block, join)
}

func TestSliceSubsetOfPDGReachability(t *testing.T) {
	// Property: every node in a backward slice is reachable from the fault
	// by reversed PDG edges or the call-site rule — i.e., the slicer never
	// invents nodes.
	mod := ir.MustCompile("t", `
fn helper(p, v) {
    p[0] = v;
    persist(p, 1);
    return 0;
}
fn main(v) {
    var p = pmalloc(2);
    helper(p, v * 3);
    var x = p[0];
    assert(x != 13);
    return x;
}`)
	res := Analyze(mod)
	var fault *ir.Instr
	mod.Func("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAssert {
			fault = in
		}
	})
	slice := res.PDG.BackwardSlice(fault)
	// Build the full reverse-reachable set by brute force.
	reach := map[*ir.Instr]bool{fault: true}
	changed := true
	for changed {
		changed = false
		for in := range reach {
			for _, p := range res.PDG.DataPreds[in] {
				if !reach[p] {
					reach[p] = true
					changed = true
				}
			}
			for _, p := range res.PDG.MemPreds[in] {
				if !reach[p] {
					reach[p] = true
					changed = true
				}
			}
			for _, p := range res.PDG.CtrlPreds[in] {
				if !reach[p] {
					reach[p] = true
					changed = true
				}
			}
			// Call-site rule.
			if f := res.PDG.FnOf[in]; f != nil {
				for _, site := range res.PDG.CallSitesOf[f.Name] {
					if !reach[site] {
						reach[site] = true
						changed = true
					}
				}
			}
		}
	}
	for _, n := range slice.Nodes {
		if !reach[n.Instr] {
			t.Fatalf("slice contains unreachable node: %s", res.PDG.Describe(n.Instr))
		}
	}
}
