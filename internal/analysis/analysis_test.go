package analysis

import (
	"testing"
	"testing/quick"

	"arthas/internal/ir"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	mod, err := ir.CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Analyze(mod)
}

// findInstr returns the first instruction in fn matching pred.
func findInstr(t *testing.T, mod *ir.Module, fn string, pred func(*ir.Instr) bool) *ir.Instr {
	t.Helper()
	var out *ir.Instr
	mod.Func(fn).Instrs(func(in *ir.Instr) {
		if out == nil && pred(in) {
			out = in
		}
	})
	if out == nil {
		t.Fatalf("no matching instruction in %s", fn)
	}
	return out
}

func TestPMSeedsIdentified(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = pmalloc(4);   // PM
    var v = valloc(4);    // volatile
    p[0] = 1;             // PM store -> GUID
    v[0] = 2;             // volatile store -> no GUID
    persist(p, 1);
    return 0;
}`)
	f := res.Mod.Func("f")
	var pmStores, volStores int
	f.Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore {
			return
		}
		if in.GUID != 0 {
			pmStores++
		} else {
			volStores++
		}
	})
	if pmStores != 1 || volStores != 1 {
		t.Fatalf("pmStores=%d volStores=%d, want 1/1", pmStores, volStores)
	}
}

func TestPMClosureThroughPointerArith(t *testing.T) {
	res := analyze(t, `
fn f(i) {
    var p = pmalloc(16);
    var q = p + 4;     // derived PM pointer
    q[i] = 9;          // must be recognized as a PM store
    return 0;
}`)
	store := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if store.GUID == 0 {
		t.Fatal("store through derived pointer not instrumented")
	}
}

func TestPMClosureAcrossCalls(t *testing.T) {
	res := analyze(t, `
fn helper(x) {
    x[0] = 5;  // x may be PM (passed from f)
    return 0;
}
fn f() {
    var p = pmalloc(2);
    helper(p);
    return 0;
}`)
	store := findInstr(t, res.Mod, "helper", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if store.GUID == 0 {
		t.Fatal("PM argument not propagated into callee")
	}
}

func TestPMClosureThroughGlobals(t *testing.T) {
	res := analyze(t, `
var gptr;
fn setup() { gptr = pmalloc(2); return 0; }
fn write(v) { gptr[0] = v; return 0; }`)
	store := findInstr(t, res.Mod, "write", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if store.GUID == 0 {
		t.Fatal("PM pointer through global not recognized")
	}
}

func TestPMClosureThroughLoads(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = pmalloc(2);
    var q = pmalloc(2);
    p[0] = q;          // persistent pointer stored in PM
    persist(p, 1);
    var r = p[0];      // loading it back yields a PM pointer
    r[1] = 7;          // PM store
    return 0;
}`)
	var stores []*ir.Instr
	res.Mod.Func("f").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if len(stores) != 2 {
		t.Fatalf("stores = %d", len(stores))
	}
	for i, st := range stores {
		if st.GUID == 0 {
			t.Fatalf("store %d not instrumented", i)
		}
	}
}

func TestGetrootIsSeed(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = getroot(0);
    p[0] = 3;
    return 0;
}`)
	store := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if store.GUID == 0 {
		t.Fatal("getroot result not treated as PM seed")
	}
}

func TestGUIDsDenseAndMapped(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    p[1] = 2;
    persist(p, 2);
    pfree(p);
    return 0;
}`)
	if len(res.GUIDs) == 0 {
		t.Fatal("no GUIDs assigned")
	}
	for i, gi := range res.GUIDs {
		if gi.GUID != i+1 {
			t.Fatalf("GUIDs not dense: %d at %d", gi.GUID, i)
		}
		if res.InstrByGUID(gi.GUID) == nil {
			t.Fatalf("GUID %d not resolvable", gi.GUID)
		}
	}
	if FormatGUIDMap(res.GUIDs) == "" {
		t.Fatal("empty GUID map rendering")
	}
}

func TestPointsToDistinguishesSites(t *testing.T) {
	res := analyze(t, `
fn f() {
    var a = pmalloc(2);
    var b = pmalloc(2);
    a[0] = 1;
    b[0] = 2;
    return 0;
}`)
	f := res.Mod.Func("f")
	var stores []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if res.PT.MayAlias(f, stores[0], f, stores[1]) {
		t.Fatal("stores to distinct allocation sites reported as aliasing")
	}
}

func TestPointsToFieldSensitivity(t *testing.T) {
	res := analyze(t, `
fn f() {
    var a = pmalloc(4);
    a[0] = 1;
    a[1] = 2;
    return 0;
}`)
	f := res.Mod.Func("f")
	var stores []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if res.PT.MayAlias(f, stores[0], f, stores[1]) {
		t.Fatal("constant fields 0 and 1 of same object reported aliasing")
	}
}

func TestPointsToDynamicOffsetAliasesAll(t *testing.T) {
	res := analyze(t, `
fn f(i) {
    var a = pmalloc(4);
    a[i] = 1;   // dynamic offset
    a[2] = 2;   // constant field
    return 0;
}`)
	f := res.Mod.Func("f")
	var stores []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if !res.PT.MayAlias(f, stores[0], f, stores[1]) {
		t.Fatal("dynamic-offset store must may-alias constant fields of same object")
	}
}

func TestPointsToThroughRoot(t *testing.T) {
	res := analyze(t, `
fn setup() {
    var p = pmalloc(2);
    setroot(0, p);
    return 0;
}
fn use() {
    var q = getroot(0);
    q[0] = 1;
    return 0;
}`)
	setupStoreObj := findInstr(t, res.Mod, "setup", func(in *ir.Instr) bool { return in.Op == ir.OpPmalloc })
	useF := res.Mod.Func("use")
	store := findInstr(t, res.Mod, "use", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	objs := res.PT.PointsToObjects(useF, store.Args[0])
	found := false
	for _, o := range objs {
		if o == setupStoreObj {
			found = true
		}
	}
	if !found {
		t.Fatal("getroot result does not point to the object stored via setroot")
	}
}

func TestDataDependenceChain(t *testing.T) {
	res := analyze(t, `
fn f(a) {
    var x = a + 1;
    var y = x * 2;
    return y;
}`)
	f := res.Mod.Func("f")
	ret := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpRet })
	slice := res.PDG.BackwardSlice(ret)
	// The slice must include the add and mul.
	var mul, add *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && ir.BinOp(in.Imm) == ir.Mul {
			mul = in
		}
		if in.Op == ir.OpBin && ir.BinOp(in.Imm) == ir.Add {
			add = in
		}
	})
	if !slice.Contains(mul) || !slice.Contains(add) {
		t.Fatal("backward slice missing arithmetic chain")
	}
}

func TestControlDependence(t *testing.T) {
	res := analyze(t, `
fn f(c) {
    var r = 0;
    if (c > 0) {
        r = 1;
    }
    return r;
}`)
	f := res.Mod.Func("f")
	// The store r=1 (a Mov) inside the if must be control-dependent on the br.
	var movIn *ir.Instr
	var br *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBr {
			br = in
		}
	})
	// Find the const 1 -> mov pattern inside the then-block.
	thenBlock := f.Blocks[br.Target]
	for _, in := range thenBlock.Instrs {
		if in.Op == ir.OpMov || in.Op == ir.OpConst {
			movIn = in
			break
		}
	}
	if movIn == nil {
		t.Fatal("no instruction in then block")
	}
	deps := res.PDG.CtrlPreds[movIn]
	found := false
	for _, d := range deps {
		if d == br {
			found = true
		}
	}
	if !found {
		t.Fatalf("then-block instruction not control-dependent on branch (deps=%v)", deps)
	}
}

func TestLoopSelfControlDependence(t *testing.T) {
	res := analyze(t, `
fn f(n) {
    var i = 0;
    while (i < n) {
        i = i + 1;
    }
    return i;
}`)
	f := res.Mod.Func("f")
	var br *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBr {
			br = in
		}
	})
	// Loop body instructions are control-dependent on the loop branch.
	body := f.Blocks[br.Target]
	dep := false
	for _, in := range body.Instrs {
		for _, d := range res.PDG.CtrlPreds[in] {
			if d == br {
				dep = true
			}
		}
	}
	if !dep {
		t.Fatal("loop body not control-dependent on loop condition")
	}
}

func TestMemoryDependenceEdge(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = pmalloc(2);
    p[0] = 42;        // store
    var v = p[0];     // load must depend on the store
    return v;
}`)
	f := res.Mod.Func("f")
	store := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	load := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpLoad })
	found := false
	for _, d := range res.PDG.MemPreds[load] {
		if d == store {
			found = true
		}
	}
	if !found {
		t.Fatal("no store->load memory dependence edge")
	}
	_ = f
}

func TestInterproceduralSliceThroughCall(t *testing.T) {
	res := analyze(t, `
fn produce() {
    var p = pmalloc(2);
    p[0] = 13;       // root cause write
    persist(p, 1);
    setroot(0, p);
    return p;
}
fn consume() {
    var p = getroot(0);
    var v = p[0];
    assert(v != 13); // fault here
    return v;
}`)
	fault := findInstr(t, res.Mod, "consume", func(in *ir.Instr) bool { return in.Op == ir.OpAssert })
	slice := res.PDG.BackwardSlice(fault)
	rootWrite := findInstr(t, res.Mod, "produce", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if !slice.Contains(rootWrite) {
		t.Fatal("backward slice does not cross functions to the root-cause store")
	}
	pm := slice.PMSlice()
	if len(pm.Nodes) == 0 {
		t.Fatal("PM slice empty")
	}
	for _, n := range pm.Nodes {
		if n.Instr.GUID == 0 {
			t.Fatal("PM slice contains untraced instruction")
		}
	}
}

func TestSliceOrderedByDistance(t *testing.T) {
	res := analyze(t, `
fn f(a) {
    var x = a + 1;
    var y = x + 1;
    var z = y + 1;
    return z;
}`)
	ret := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpRet })
	slice := res.PDG.BackwardSlice(ret)
	for i := 1; i < len(slice.Nodes); i++ {
		if slice.Nodes[i].Dist < slice.Nodes[i-1].Dist {
			t.Fatal("slice not ordered by distance")
		}
	}
	capped := slice.MaxDist(1)
	for _, n := range capped.Nodes {
		if n.Dist > 1 {
			t.Fatal("MaxDist cap not applied")
		}
	}
}

func TestForwardSlice(t *testing.T) {
	res := analyze(t, `
fn f(a) {
    var x = a + 1;
    var y = x * 2;
    var z = a - 1;
    return y + z;
}`)
	f := res.Mod.Func("f")
	var add *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && ir.BinOp(in.Imm) == ir.Add && add == nil {
			add = in
		}
	})
	fwd := res.PDG.ForwardSlice([]*ir.Instr{add})
	var mul *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && ir.BinOp(in.Imm) == ir.Mul {
			mul = in
		}
	})
	if !fwd[mul] {
		t.Fatal("forward slice missing downstream multiply")
	}
}

func TestPMWriteClassification(t *testing.T) {
	res := analyze(t, `
fn f() {
    var p = pmalloc(2);
    p[0] = 1;          // write
    var v = p[0];      // read: PM instr but not a write
    persist(p, 1);     // write
    return v;
}`)
	f := res.Mod.Func("f")
	load := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpLoad })
	store := findInstr(t, res.Mod, "f", func(in *ir.Instr) bool { return in.Op == ir.OpStore })
	if res.IsPMWrite(f, load) {
		t.Fatal("load classified as PM write")
	}
	if !res.IsPMWrite(f, store) {
		t.Fatal("store not classified as PM write")
	}
	if load.GUID == 0 {
		t.Fatal("PM load should still be traced (it is a PM instruction)")
	}
}

func TestStatsCounts(t *testing.T) {
	res := analyze(t, `
fn g() { return 1; }
fn f() {
    var p = pmalloc(2);
    p[0] = g();
    persist(p, 1);
    return 0;
}`)
	s := res.Stats()
	if s.Functions != 2 || s.Instructions == 0 || s.PMInstrs == 0 || s.PDGEdges == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: the PM slice is always a subset of the full slice, and slicing
// never includes instructions from functions that are unreachable from the
// fault via the dependence+call-site relation... at minimum, every slice
// contains its own fault instruction and is deterministic.
func TestPropSliceDeterministicAndContainsFault(t *testing.T) {
	res := analyze(t, `
var g1;
var g2;
fn mix(a, b) {
    var t = a ^ b;
    g1 = t;
    return t + g2;
}
fn stepper(n) {
    var i = 0;
    var acc = 0;
    while (i < n) {
        acc = mix(acc, i);
        i = i + 1;
    }
    return acc;
}
fn store(v) {
    var p = pmalloc(4);
    p[0] = v;
    persist(p, 1);
    setroot(0, p);
    return 0;
}
fn driver(n) {
    var v = stepper(n);
    store(v);
    return v;
}`)
	var faults []*ir.Instr
	for _, f := range res.Mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpStore || in.Op == ir.OpRet {
				faults = append(faults, in)
			}
		})
	}
	check := func(idx uint8) bool {
		fault := faults[int(idx)%len(faults)]
		s1 := res.PDG.BackwardSlice(fault)
		s2 := res.PDG.BackwardSlice(fault)
		if len(s1.Nodes) != len(s2.Nodes) {
			return false
		}
		for i := range s1.Nodes {
			if s1.Nodes[i].Instr != s2.Nodes[i].Instr {
				return false
			}
		}
		if !s1.Contains(fault) {
			return false
		}
		pm := s1.PMSlice()
		return len(pm.Nodes) <= len(s1.Nodes)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
