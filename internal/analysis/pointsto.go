package analysis

import (
	"arthas/internal/ir"
)

// Inter-procedural inclusion-based (Andersen-style) pointer analysis.
//
// Abstract objects are allocation sites (every pmalloc/valloc instruction)
// plus one pseudo-object for the pool's root-slot table. Pointer variables
// are (function, register) pairs and module globals. The heap is modeled
// per-object (fields collapsed for the points-to relation itself;
// field-sensitivity is recovered at alias-query time from the instructions'
// constant offsets — see MayAlias).
//
// Constraints:
//
//	a = pmalloc/valloc     pts(a) ⊇ {site}
//	a = getroot(k)         pts(a) ⊇ heap(rootObj)
//	setroot(k, b)          heap(rootObj) ⊇ pts(b)
//	a = b (mov)            pts(a) ⊇ pts(b)
//	a = b op c (bin)       pts(a) ⊇ pts(b) ∪ pts(c)   (pointer arithmetic)
//	a = load [b+off]       pts(a) ⊇ heap(o) for o ∈ pts(b)
//	store [b+off], c       heap(o) ⊇ pts(c) for o ∈ pts(b)
//	call r = f(..b..)      pts(param_i(f)) ⊇ pts(b); pts(r) ⊇ pts(ret(f))
//	g = b / a = g          via a pts set per global
type PointsTo struct {
	mod *ir.Module

	// Object identities.
	objs      []*ir.Instr // index -> allocation instruction (nil for rootObj)
	objOf     map[*ir.Instr]int
	rootObj   int
	pmObjSet  bitset // objects that live in persistent memory
	numVars   int
	varOf     map[varKey]int
	globalVar []int // global index -> var id

	// Solver state.
	pts      []bitset   // var -> object set
	heap     []bitset   // obj -> object set (what its fields may point to)
	copyEdge [][]int    // var -> vars that include it
	loadUses [][]loadC  // var (base) -> load constraints
	storeUse [][]storeC // var (base) -> store constraints
}

type varKey struct {
	fn  *ir.Function // nil for globals
	reg int          // register index, or global index when fn == nil
}

type loadC struct{ dst int }
type storeC struct{ src int }

// buildPointsTo constructs and solves the constraint system for a module.
func buildPointsTo(mod *ir.Module) *PointsTo {
	pt := &PointsTo{
		mod:   mod,
		objOf: map[*ir.Instr]int{},
		varOf: map[varKey]int{},
	}
	// rootObj is object 0.
	pt.rootObj = 0
	pt.objs = append(pt.objs, nil)

	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpPmalloc || in.Op == ir.OpValloc || in.Op == ir.OpPmRealloc {
				pt.objOf[in] = len(pt.objs)
				pt.objs = append(pt.objs, in)
			}
		})
	}
	pt.pmObjSet = newBitset(len(pt.objs))
	pt.pmObjSet.set(pt.rootObj)
	for in, id := range pt.objOf {
		if in.Op == ir.OpPmalloc || in.Op == ir.OpPmRealloc {
			pt.pmObjSet.set(id)
		}
	}

	// Variable ids.
	pt.globalVar = make([]int, len(mod.Globals))
	for gi := range mod.Globals {
		pt.globalVar[gi] = pt.varID(varKey{nil, gi})
	}
	for _, f := range mod.Funcs {
		for r := 0; r < f.NumRegs; r++ {
			pt.varID(varKey{f, r})
		}
	}
	pt.numVars = len(pt.pts)

	pt.copyEdge = make([][]int, pt.numVars)
	pt.loadUses = make([][]loadC, pt.numVars)
	pt.storeUse = make([][]storeC, pt.numVars)
	pt.heap = make([]bitset, len(pt.objs))
	for i := range pt.heap {
		pt.heap[i] = newBitset(len(pt.objs))
	}

	pt.collectConstraints()
	pt.solve()
	return pt
}

func (pt *PointsTo) varID(k varKey) int {
	if id, ok := pt.varOf[k]; ok {
		return id
	}
	id := len(pt.pts)
	pt.varOf[k] = id
	pt.pts = append(pt.pts, newBitset(len(pt.objs)))
	return id
}

func (pt *PointsTo) regVar(f *ir.Function, r int) int { return pt.varOf[varKey{f, r}] }

func (pt *PointsTo) collectConstraints() {
	addCopy := func(from, to int) { pt.copyEdge[from] = append(pt.copyEdge[from], to) }

	for _, f := range pt.mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpPmalloc, ir.OpValloc, ir.OpPmRealloc:
				pt.pts[pt.regVar(f, in.Dst)].set(pt.objOf[in])
				if in.Op == ir.OpPmRealloc {
					// The new block inherits the old block's contents:
					// heap(new) ⊇ heap(anything the old pointer reached).
					base := pt.regVar(f, in.Args[0])
					pt.loadUses[base] = append(pt.loadUses[base],
						loadC{dst: pt.regVar(f, in.Dst)})
				}
			case ir.OpMov:
				addCopy(pt.regVar(f, in.Args[0]), pt.regVar(f, in.Dst))
			case ir.OpBin:
				// Pointer arithmetic may flow through either operand.
				addCopy(pt.regVar(f, in.Args[0]), pt.regVar(f, in.Dst))
				addCopy(pt.regVar(f, in.Args[1]), pt.regVar(f, in.Dst))
			case ir.OpLoad:
				base := pt.regVar(f, in.Args[0])
				pt.loadUses[base] = append(pt.loadUses[base], loadC{dst: pt.regVar(f, in.Dst)})
			case ir.OpStore:
				base := pt.regVar(f, in.Args[0])
				pt.storeUse[base] = append(pt.storeUse[base], storeC{src: pt.regVar(f, in.Args[1])})
			case ir.OpGlobLoad:
				addCopy(pt.globalVar[in.Imm], pt.regVar(f, in.Dst))
			case ir.OpGlobStore:
				addCopy(pt.regVar(f, in.Args[0]), pt.globalVar[in.Imm])
			case ir.OpGetRoot:
				// Treated as a load from rootObj: dst ⊇ heap(rootObj).
				// Model with a synthetic variable that points at rootObj.
				rv := pt.syntheticRootVar()
				pt.loadUses[rv] = append(pt.loadUses[rv], loadC{dst: pt.regVar(f, in.Dst)})
			case ir.OpSetRoot:
				rv := pt.syntheticRootVar()
				pt.storeUse[rv] = append(pt.storeUse[rv], storeC{src: pt.regVar(f, in.Args[1])})
			case ir.OpCall, ir.OpSpawn:
				callee := pt.mod.Func(in.Callee)
				if callee == nil {
					return
				}
				for i, a := range in.Args {
					addCopy(pt.regVar(f, a), pt.regVar(callee, i))
				}
				if in.Op == ir.OpCall && in.HasDst() {
					// Return flow: every ret arg of callee copies to dst.
					callee.Instrs(func(r *ir.Instr) {
						if r.Op == ir.OpRet && len(r.Args) == 1 {
							addCopy(pt.regVar(callee, r.Args[0]), pt.regVar(f, in.Dst))
						}
					})
				}
			}
		})
	}
}

// syntheticRootVar returns a variable whose points-to set is exactly
// {rootObj}, used to express getroot/setroot as loads/stores on rootObj.
func (pt *PointsTo) syntheticRootVar() int {
	k := varKey{nil, -1}
	if id, ok := pt.varOf[k]; ok {
		return id
	}
	id := len(pt.pts)
	pt.varOf[k] = id
	b := newBitset(len(pt.objs))
	b.set(pt.rootObj)
	pt.pts = append(pt.pts, b)
	pt.copyEdge = append(pt.copyEdge, nil)
	pt.loadUses = append(pt.loadUses, nil)
	pt.storeUse = append(pt.storeUse, nil)
	pt.numVars++
	return id
}

// solve runs the inclusion fixpoint to convergence.
func (pt *PointsTo) solve() {
	changed := true
	for changed {
		changed = false
		// Copy edges.
		for from, tos := range pt.copyEdge {
			for _, to := range tos {
				if pt.pts[to].orWith(pt.pts[from]) {
					changed = true
				}
			}
		}
		// Load/store constraints.
		for base := range pt.pts {
			if len(pt.loadUses[base]) == 0 && len(pt.storeUse[base]) == 0 {
				continue
			}
			var objs []int
			pt.pts[base].forEach(func(o int) { objs = append(objs, o) })
			for _, lc := range pt.loadUses[base] {
				for _, o := range objs {
					if pt.pts[lc.dst].orWith(pt.heap[o]) {
						changed = true
					}
				}
			}
			for _, sc := range pt.storeUse[base] {
				for _, o := range objs {
					if pt.heap[o].orWith(pt.pts[sc.src]) {
						changed = true
					}
				}
			}
		}
	}
}

// PointsToObjects returns the allocation sites register r of f may point at.
func (pt *PointsTo) PointsToObjects(f *ir.Function, r int) []*ir.Instr {
	var out []*ir.Instr
	id, ok := pt.varOf[varKey{f, r}]
	if !ok {
		return nil
	}
	pt.pts[id].forEach(func(o int) {
		out = append(out, pt.objs[o]) // nil = rootObj
	})
	return out
}

// MayPointToPM reports whether register r of f may hold a PM address.
func (pt *PointsTo) MayPointToPM(f *ir.Function, r int) bool {
	id, ok := pt.varOf[varKey{f, r}]
	if !ok {
		return false
	}
	found := false
	pt.pts[id].forEach(func(o int) {
		if pt.pmObjSet.has(o) {
			found = true
		}
	})
	return found
}

// objsOfBase returns the abstract object ids the base register may address.
func (pt *PointsTo) objsOfBase(f *ir.Function, r int) bitset {
	id, ok := pt.varOf[varKey{f, r}]
	if !ok {
		return newBitset(len(pt.objs))
	}
	return pt.pts[id]
}

// MayAlias reports whether a store and a load/store may touch the same word.
// Both instructions must be memory ops (their Args[0] is the base address
// register). Field sensitivity: when both accesses use folded constant
// offsets off the same base object, differing offsets cannot alias; an
// access whose address was computed dynamically (base register defined by
// arithmetic) conservatively aliases every offset of its objects.
func (pt *PointsTo) MayAlias(fa *ir.Function, a *ir.Instr, fb *ir.Function, b *ir.Instr) bool {
	oa := pt.objsOfBase(fa, a.Args[0])
	ob := pt.objsOfBase(fb, b.Args[0])
	overlap := false
	oa.forEach(func(i int) {
		if ob.has(i) {
			overlap = true
		}
	})
	if !overlap {
		return false
	}
	if dynamicAddress(fa, a) || dynamicAddress(fb, b) {
		return true
	}
	return a.Off == b.Off
}

// dynamicAddress reports whether the access's base register may itself be a
// computed (base+index) address, in which case its Off is not the true field.
func dynamicAddress(f *ir.Function, in *ir.Instr) bool {
	base := in.Args[0]
	dyn := false
	f.Instrs(func(d *ir.Instr) {
		if d.HasDst() && d.Dst == base && d.Op == ir.OpBin {
			dyn = true
		}
	})
	return dyn
}
