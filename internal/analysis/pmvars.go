package analysis

import (
	"fmt"

	"arthas/internal/ir"
	"arthas/internal/pml"
)

// PM variable identification and trace instrumentation (paper §4.1).
//
// Seeds are the results of the PM allocation/entry APIs (pmalloc, getroot —
// the pmemobj_create/pmemobj_direct analogues). The closure propagates over
// def-use chains: moves, arithmetic (pointer offsets), loads from PM
// pointers, stores into globals, and inter-procedural argument/return
// binding. Every instruction that creates or accesses persistent memory
// through a PM variable becomes a "PM instruction" and is assigned a GUID;
// the VM emits <GUID, address> trace events for those (the instrumented
// tracing API calls of the paper).

// GUIDInfo is one entry of the static metadata file mapping GUIDs to their
// source location and instruction (the paper's <GUID, source_location,
// instruction> records).
type GUIDInfo struct {
	GUID  int
	Fn    string
	Pos   pml.Pos
	Instr string
	Op    ir.Op
}

// pmClosure computes the set of PM registers per function (plus PM globals)
// by fixpoint over def-use and call edges, then returns the PM instruction
// set: instructions whose memory effect may touch PM.
type pmClosure struct {
	mod     *ir.Module
	pt      *PointsTo
	pmRegs  map[varKey]bool
	pmGlobs map[int]bool
}

func computePMVars(mod *ir.Module, pt *PointsTo) *pmClosure {
	c := &pmClosure{mod: mod, pt: pt, pmRegs: map[varKey]bool{}, pmGlobs: map[int]bool{}}

	mark := func(f *ir.Function, r int) bool {
		k := varKey{f, r}
		if c.pmRegs[k] {
			return false
		}
		c.pmRegs[k] = true
		return true
	}

	// Seeds.
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpPmalloc || in.Op == ir.OpGetRoot || in.Op == ir.OpPmRealloc {
				mark(f, in.Dst)
			}
		})
	}

	// Closure.
	changed := true
	for changed {
		changed = false
		for _, f := range mod.Funcs {
			f.Instrs(func(in *ir.Instr) {
				switch in.Op {
				case ir.OpMov, ir.OpBin, ir.OpUn:
					for _, a := range in.Args {
						if c.pmRegs[varKey{f, a}] && mark(f, in.Dst) {
							changed = true
						}
					}
				case ir.OpLoad:
					// A value loaded through a PM pointer may itself be a
					// PM pointer (linked persistent structures).
					if c.pmRegs[varKey{f, in.Args[0]}] && mark(f, in.Dst) {
						changed = true
					}
				case ir.OpGlobStore:
					if c.pmRegs[varKey{f, in.Args[0]}] && !c.pmGlobs[int(in.Imm)] {
						c.pmGlobs[int(in.Imm)] = true
						changed = true
					}
				case ir.OpGlobLoad:
					if c.pmGlobs[int(in.Imm)] && mark(f, in.Dst) {
						changed = true
					}
				case ir.OpCall, ir.OpSpawn:
					callee := mod.Func(in.Callee)
					if callee == nil {
						return
					}
					for i, a := range in.Args {
						if c.pmRegs[varKey{f, a}] && mark(callee, i) {
							changed = true
						}
					}
					if in.Op == ir.OpCall && in.HasDst() {
						callee.Instrs(func(r *ir.Instr) {
							if r.Op == ir.OpRet && len(r.Args) == 1 &&
								c.pmRegs[varKey{callee, r.Args[0]}] && mark(f, in.Dst) {
								changed = true
							}
						})
					}
				}
			})
		}
	}
	return c
}

// isPMReg reports whether register r of f may hold a PM address, combining
// the def-use closure with the pointer analysis.
func (c *pmClosure) isPMReg(f *ir.Function, r int) bool {
	return c.pmRegs[varKey{f, r}] || c.pt.MayPointToPM(f, r)
}

// isPMInstr reports whether in creates or accesses persistent memory.
func (c *pmClosure) isPMInstr(f *ir.Function, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPmalloc, ir.OpGetRoot, ir.OpSetRoot, ir.OpPfree, ir.OpPersist,
		ir.OpFlush, ir.OpFence, ir.OpTxBegin, ir.OpTxCommit, ir.OpPmSize,
		ir.OpPmRealloc:
		return true
	case ir.OpStore, ir.OpLoad:
		return c.isPMReg(f, in.Args[0])
	}
	return false
}

// isPMWrite reports whether in may modify persistent state — the
// instructions whose trace events the reactor joins with checkpoint entries.
func (c *pmClosure) isPMWrite(f *ir.Function, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPmalloc, ir.OpSetRoot, ir.OpPfree, ir.OpPersist, ir.OpFlush, ir.OpFence,
		ir.OpPmRealloc:
		return true
	case ir.OpStore:
		return c.isPMReg(f, in.Args[0])
	}
	return false
}

// instrument assigns GUIDs to all PM instructions and returns the metadata
// table. GUIDs start at 1 (0 means "not traced").
func instrument(mod *ir.Module, c *pmClosure) []GUIDInfo {
	var infos []GUIDInfo
	next := 1
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if !c.isPMInstr(f, in) {
				return
			}
			in.GUID = next
			infos = append(infos, GUIDInfo{
				GUID:  next,
				Fn:    f.Name,
				Pos:   in.Pos,
				Instr: ir.FormatInstr(f, in),
				Op:    in.Op,
			})
			next++
		})
	}
	return infos
}

// FormatGUIDMap renders the metadata table the way the paper's analyzer
// writes its mapping file.
func FormatGUIDMap(infos []GUIDInfo) string {
	s := ""
	for _, gi := range infos {
		s += fmt.Sprintf("%d\t%s\t%v\t%s\n", gi.GUID, gi.Fn, gi.Pos, gi.Instr)
	}
	return s
}
