package analysis

import (
	"fmt"

	"arthas/internal/ir"
)

// The Program Dependence Graph (paper §4.1, "Constructing Program
// Dependence Graph"). Nodes are IR instructions; edges are data
// dependencies (register def-use, global flow, memory store→load via the
// alias analysis, call argument/return binding) and control dependencies
// (from post-dominance frontiers). The graph is inter-procedural.

// PDG is the assembled dependence graph for one module.
type PDG struct {
	Mod *ir.Module

	// FnOf maps every instruction to its containing function.
	FnOf map[*ir.Instr]*ir.Function

	// DataPreds / DataSuccs: register, global, and call/return dataflow.
	// x depends-on y ⇔ y ∈ DataPreds[x].
	DataPreds map[*ir.Instr][]*ir.Instr
	DataSuccs map[*ir.Instr][]*ir.Instr

	// MemPreds / MemSuccs: store→load dependence through may-aliasing
	// memory. Kept separate from register flow so the slicer can skip the
	// fault instruction's own memory dependence for address faults: a
	// segfaulting load crashes because of its *pointer*, not because of
	// what the memory location contains.
	MemPreds map[*ir.Instr][]*ir.Instr
	MemSuccs map[*ir.Instr][]*ir.Instr

	// CtrlPreds: branch instructions x is control-dependent on.
	CtrlPreds map[*ir.Instr][]*ir.Instr
	CtrlSuccs map[*ir.Instr][]*ir.Instr

	// CallSitesOf lists the call/spawn instructions targeting a function.
	CallSitesOf map[string][]*ir.Instr

	numEdges int
}

// NumEdges returns the total dependence edge count (diagnostics, Table 9).
func (g *PDG) NumEdges() int { return g.numEdges }

// NumNodes returns the instruction count across the module.
func (g *PDG) NumNodes() int { return len(g.FnOf) }

func (g *PDG) addData(from, to *ir.Instr) {
	g.DataPreds[to] = append(g.DataPreds[to], from)
	g.DataSuccs[from] = append(g.DataSuccs[from], to)
	g.numEdges++
}

func (g *PDG) addMem(store, load *ir.Instr) {
	g.MemPreds[load] = append(g.MemPreds[load], store)
	g.MemSuccs[store] = append(g.MemSuccs[store], load)
	g.numEdges++
}

func (g *PDG) addCtrl(branch, dependent *ir.Instr) {
	g.CtrlPreds[dependent] = append(g.CtrlPreds[dependent], branch)
	g.CtrlSuccs[branch] = append(g.CtrlSuccs[branch], dependent)
	g.numEdges++
}

// buildPDG assembles the graph.
func buildPDG(mod *ir.Module, pt *PointsTo) *PDG {
	g := &PDG{
		Mod:         mod,
		FnOf:        map[*ir.Instr]*ir.Function{},
		DataPreds:   map[*ir.Instr][]*ir.Instr{},
		DataSuccs:   map[*ir.Instr][]*ir.Instr{},
		MemPreds:    map[*ir.Instr][]*ir.Instr{},
		MemSuccs:    map[*ir.Instr][]*ir.Instr{},
		CtrlPreds:   map[*ir.Instr][]*ir.Instr{},
		CtrlSuccs:   map[*ir.Instr][]*ir.Instr{},
		CallSitesOf: map[string][]*ir.Instr{},
	}
	for _, f := range mod.Funcs {
		f := f
		f.Instrs(func(in *ir.Instr) { g.FnOf[in] = f })
	}

	// 1. Register def-use, per function, with inter-procedural binding.
	for _, f := range mod.Funcs {
		du := computeDefUse(f)
		for use, defs := range du.useDefs {
			for _, d := range defs {
				if d.instr != nil {
					g.addData(d.instr, use)
					continue
				}
				// Synthetic parameter def: bind to every call site's
				// argument i — the call instruction is the dependence
				// source (its own args already link to their defs).
				for _, site := range callSites(mod, f.Name) {
					g.addData(site, use)
				}
			}
		}
	}

	// 2. Return-value flow: ret in callee -> call instruction.
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpCall || !in.HasDst() {
				return
			}
			callee := mod.Func(in.Callee)
			if callee == nil {
				return
			}
			callee.Instrs(func(r *ir.Instr) {
				if r.Op == ir.OpRet {
					g.addData(r, in)
				}
			})
		})
	}

	// 3. Global flow (flow-insensitive inter-procedural def-use).
	gstores := map[int][]*ir.Instr{}
	gloads := map[int][]*ir.Instr{}
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpGlobStore:
				gstores[int(in.Imm)] = append(gstores[int(in.Imm)], in)
			case ir.OpGlobLoad:
				gloads[int(in.Imm)] = append(gloads[int(in.Imm)], in)
			}
		})
	}
	for gi, loads := range gloads {
		for _, ld := range loads {
			for _, st := range gstores[gi] {
				g.addData(st, ld)
			}
		}
	}

	// 4. Memory dependence: store → load through may-alias.
	var stores, loads []*ir.Instr
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpStore:
				stores = append(stores, in)
			case ir.OpLoad:
				loads = append(loads, in)
			}
		})
	}
	for _, ld := range loads {
		for _, st := range stores {
			if pt.MayAlias(g.FnOf[st], st, g.FnOf[ld], ld) {
				g.addMem(st, ld)
			}
		}
	}

	// 5. Control dependence (intra-procedural; call-site dependence is
	// applied by the slicer).
	for _, f := range mod.Funcs {
		deps := controlDeps(f)
		for bi, branches := range deps {
			for _, in := range f.Blocks[bi].Instrs {
				for _, br := range branches {
					if br != in {
						g.addCtrl(br, in)
					}
				}
			}
		}
	}

	// 6. Call-site index.
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpCall || in.Op == ir.OpSpawn {
				g.CallSitesOf[in.Callee] = append(g.CallSitesOf[in.Callee], in)
			}
		})
	}
	return g
}

func callSites(mod *ir.Module, name string) []*ir.Instr {
	var sites []*ir.Instr
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if (in.Op == ir.OpCall || in.Op == ir.OpSpawn) && in.Callee == name {
				sites = append(sites, in)
			}
		})
	}
	return sites
}

// Describe renders a node for logs and debugging.
func (g *PDG) Describe(in *ir.Instr) string {
	f := g.FnOf[in]
	name := "?"
	if f != nil {
		name = f.Name
	}
	return fmt.Sprintf("%s: %s", name, ir.FormatInstr(f, in))
}
