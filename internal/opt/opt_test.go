package opt_test

import (
	"strings"
	"testing"

	"arthas/internal/ir"
	"arthas/internal/opt"
)

// mustOpt compiles, optimizes, and returns the module + stats. The optimized
// module has already passed ir.Verify (Optimize re-verifies its output).
func mustOpt(t *testing.T, src string) (*ir.Module, *opt.Stats) {
	t.Helper()
	mod := ir.MustCompile("t", src)
	st, err := opt.Optimize(mod)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return mod, st
}

// countOps tallies one opcode across the module.
func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == op {
				n++
			}
		})
	}
	return n
}

func TestEliminatePersistOfFreshAlloc(t *testing.T) {
	m, st := mustOpt(t, `
fn init_() {
    var p = pmalloc(16);
    persist(p, 16);     // fresh zeroed alloc is already durably zero
    setroot(0, p);
    return 0;
}`)
	if n := countOps(m, ir.OpPersist); n != 0 {
		t.Fatalf("persist ops left = %d, want 0", n)
	}
	if st.PersistsRemoved != 1 || st.WordsRemoved != 16 {
		t.Fatalf("stats = %+v, want 1 persist / 16 words removed", st)
	}
}

func TestShrinkPersistToDirtyPrefix(t *testing.T) {
	m, st := mustOpt(t, `
fn init_() {
    var p = pmalloc(8);
    p[0] = 7;
    persist(p, 8);      // only word 0 is dirty; words 1..7 stay durably zero
    setroot(0, p);
    return 0;
}`)
	if st.PersistsShrunk != 1 || st.WordsRemoved != 7 {
		t.Fatalf("stats = %+v, want 1 shrink / 7 words removed", st)
	}
	// The persist survives with a rewritten count of 1.
	found := false
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpPersist {
				return
			}
			found = true
			defs := defConsts(f, in, in.Args[1])
			if len(defs) != 1 || defs[0] != 1 {
				t.Fatalf("persist count consts = %v, want [1]", defs)
			}
		})
	}
	if !found {
		t.Fatal("shrunk persist disappeared entirely")
	}
}

// defConsts returns the OpConst immediates defining reg within the
// instruction's block (enough for straight-line test programs).
func defConsts(f *ir.Function, use *ir.Instr, reg int) []int64 {
	var out []int64
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in == use {
				return out
			}
			if in.Op == ir.OpConst && in.Dst == reg {
				out = []int64{in.Imm}
			}
		}
	}
	return out
}

func TestSecondPersistOfCleanRangeRemoved(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    p[1] = 2;
    persist(p, 2);
    persist(p, 2);      // nothing stored in between
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 1 {
		t.Fatalf("stats = %+v, want exactly 1 persist removed", st)
	}
}

func TestStoreKillsCleanFact(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    persist(p, 1);
    p[0] = 2;
    persist(p, 1);      // must stay: word 0 dirtied again
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 0 || st.PersistsShrunk != 0 {
		t.Fatalf("stats = %+v, want no persist touched", st)
	}
}

func TestCallBarrierKillsFacts(t *testing.T) {
	_, st := mustOpt(t, `
fn poke() { return 0; }
fn f() {
    var p = pmalloc(4);
    persist(p, 4);
    return 0;
}
fn g() {
    var p = pmalloc(4);
    poke();
    persist(p, 4);      // call may have dirtied anything: must stay
    return 0;
}`)
	// f's persist goes (fresh alloc), g's stays (call barrier).
	if st.PersistsRemoved != 1 {
		t.Fatalf("stats = %+v, want exactly 1 persist removed", st)
	}
}

func TestUnknownStoreKillsAllFacts(t *testing.T) {
	_, st := mustOpt(t, `
fn f(q) {
    var p = pmalloc(4);
    q[0] = 9;           // parameter pointer: may alias p
    persist(p, 4);      // must stay
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 0 || st.PersistsShrunk != 0 {
		t.Fatalf("stats = %+v, want no persist touched", st)
	}
}

func TestVallocStoreKeepsFacts(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    var v = valloc(4);
    v[0] = 9;           // volatile object: provably disjoint from p
    persist(p, 4);      // still removable
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 1 {
		t.Fatalf("stats = %+v, want 1 persist removed", st)
	}
}

func TestTransactionalPersistUntouched(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    txbegin();
    persist(p, 4);      // defers to the commit write-set: never touched
    txcommit();
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 0 || st.PersistsShrunk != 0 {
		t.Fatalf("stats = %+v, want no persist touched", st)
	}
}

func TestTxTaintPropagatesThroughCalls(t *testing.T) {
	_, st := mustOpt(t, `
fn helper(p) {
    persist(p, 4);      // callee of an in-tx call: tainted, untouched
    return 0;
}
fn f() {
    var p = pmalloc(4);
    txbegin();
    helper(p);
    txcommit();
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 0 || st.PersistsShrunk != 0 {
		t.Fatalf("stats = %+v, want no persist touched", st)
	}
}

func TestLoopAllocGeneratesNoFacts(t *testing.T) {
	_, st := mustOpt(t, `
fn f(n) {
    var last = 0;
    while (n > 0) {
        var p = pmalloc(4);
        persist(p, 4);  // re-executing alloc site: must stay
        last = p;
        n = n - 1;
    }
    setroot(0, last);
    return 0;
}`)
	if st.PersistsRemoved != 0 {
		t.Fatalf("stats = %+v, want no persist removed in a loop", st)
	}
}

func TestSetRootKillsRootFacts(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = getroot(0);
    persist(p, 2);
    var q = pmalloc(2);
    setroot(0, q);
    var r = getroot(0);
    persist(r, 2);      // different object now: must stay
    return 0;
}`)
	if st.PersistsRemoved != 0 {
		t.Fatalf("stats = %+v, want no persist removed across setroot", st)
	}
}

func TestDoubleFenceDropped(t *testing.T) {
	m, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    flush(p, 1);
    fence();
    fence();            // queue provably empty
    setroot(0, p);
    return 0;
}`)
	if st.FencesRemoved != 1 {
		t.Fatalf("stats = %+v, want 1 fence removed", st)
	}
	if n := countOps(m, ir.OpFence); n != 1 {
		t.Fatalf("fences left = %d, want 1", n)
	}
}

func TestEntryFenceKept(t *testing.T) {
	// At function entry the machine-global queue is unknown: a lone fence
	// must survive even with no flush in the function.
	m, _ := mustOpt(t, `fn f() { fence(); return 7; }`)
	if n := countOps(m, ir.OpFence); n != 1 {
		t.Fatalf("fences left = %d, want 1 (entry queue unknown)", n)
	}
}

func TestFenceAfterCallKept(t *testing.T) {
	m, _ := mustOpt(t, `
fn poke() { return 0; }
fn f() {
    fence();
    poke();             // callee may flush
    fence();            // must stay
    return 0;
}`)
	if n := countOps(m, ir.OpFence); n != 2 {
		t.Fatalf("fences left = %d, want 2", n)
	}
}

func TestCoalesceContiguousFlushes(t *testing.T) {
	m, st := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    p[1] = 2;
    p[2] = 3;
    flush(p, 1);
    flush(p + 1, 1);
    flush(p + 2, 1);
    fence();
    setroot(0, p);
    return 0;
}`)
	if st.FlushesCoalesced != 2 {
		t.Fatalf("stats = %+v, want 2 flushes coalesced", st)
	}
	if n := countOps(m, ir.OpFlush); n != 1 {
		t.Fatalf("flushes left = %d, want 1", n)
	}
	// The surviving flush covers 3 words.
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpFlush {
				return
			}
			if defs := defConsts(f, in, in.Args[1]); len(defs) != 1 || defs[0] != 3 {
				t.Fatalf("merged flush count = %v, want [3]", defs)
			}
		})
	}
}

func TestGappedFlushesNotCoalesced(t *testing.T) {
	m, _ := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    p[2] = 3;
    flush(p, 1);
    flush(p + 2, 1);    // gap at word 1: vm drains these separately
    fence();
    setroot(0, p);
    return 0;
}`)
	if n := countOps(m, ir.OpFlush); n != 2 {
		t.Fatalf("flushes left = %d, want 2 (gapped)", n)
	}
}

func TestOverlappingFlushesNotCoalesced(t *testing.T) {
	m, _ := mustOpt(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 1;
    p[1] = 2;
    flush(p, 2);
    flush(p + 1, 2);    // overlap: vm drains these separately
    fence();
    setroot(0, p);
    return 0;
}`)
	if n := countOps(m, ir.OpFlush); n != 2 {
		t.Fatalf("flushes left = %d, want 2 (overlapping)", n)
	}
}

func TestFlushOfFencedCleanRangeRemoved(t *testing.T) {
	_, st := mustOpt(t, `
fn f() {
    var p = pmalloc(2);
    p[0] = 1;
    flush(p, 1);
    fence();
    flush(p, 1);        // word 0 is durably clean now
    fence();
    setroot(0, p);
    return 0;
}`)
	if st.FlushesRemoved != 1 {
		t.Fatalf("stats = %+v, want 1 flush removed", st)
	}
	// With the second flush gone, its fence drains an empty queue and goes
	// too.
	if st.FencesRemoved != 1 {
		t.Fatalf("stats = %+v, want 1 fence removed", st)
	}
}

func TestBranchMeetIsIntersection(t *testing.T) {
	_, st := mustOpt(t, `
fn f(c) {
    var p = pmalloc(4);
    if (c != 0) {
        p[0] = 1;       // dirties word 0 on this path only
    }
    persist(p, 4);      // not fully clean on all paths
    setroot(0, p);
    return 0;
}`)
	if st.PersistsRemoved != 0 {
		t.Fatalf("stats = %+v, want no persist removed across branch", st)
	}
	// The clean suffix [1,4) still holds on both paths: shrink to 1 word.
	if st.PersistsShrunk != 1 || st.WordsRemoved != 3 {
		t.Fatalf("stats = %+v, want 1 shrink / 3 words", st)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	src := `
fn init_() {
    var p = pmalloc(8);
    p[0] = 1;
    persist(p, 8);
    flush(p, 1);
    flush(p + 1, 1);
    fence();
    fence();
    setroot(0, p);
    return 0;
}
fn bump() {
    var p = getroot(0);
    p[0] = p[0] + 1;
    persist(p, 1);
    persist(p, 1);
    return p[0];
}`
	m1, s1 := mustOpt(t, src)
	m2, s2 := mustOpt(t, src)
	if *s1 != *s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if p1, p2 := ir.Print(m1), ir.Print(m2); p1 != p2 {
		t.Fatalf("optimized IR not deterministic:\n%s\n----\n%s", p1, p2)
	}
}

func TestOptimizedModuleVerifies(t *testing.T) {
	// Belt and braces: Optimize verifies internally, but assert the exported
	// contract too on a program that triggers every rewrite.
	m, st := mustOpt(t, `
fn f() {
    var p = pmalloc(8);
    p[0] = 1;
    persist(p, 8);
    flush(p, 1);
    flush(p + 1, 1);
    fence();
    fence();
    setroot(0, p);
    return 0;
}`)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("optimized module fails verification: %v", err)
	}
	if st.Total() == 0 {
		t.Fatal("expected the pass to do something on this program")
	}
	if !strings.Contains(st.String(), "removed") {
		t.Fatalf("stats string = %q", st)
	}
}
