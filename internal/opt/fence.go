package opt

import "arthas/internal/ir"

// Fence elimination and flush coalescing.
//
// The write-pending queue (vm flushQueue) is machine-global: at function
// entry its contents are unknown (the caller may have flushed), and any
// call, spawn, yield or lock transfer may flush or drain it. A fence is
// removable only where the queue is provably empty on every path — i.e.
// a fence (or nothing since one) with no flush, call, or thread switch in
// between. That is exactly the "each fence epoch drains once" rule: the
// second of two back-to-back fences drains nothing and goes away, while a
// fence that could drain even one queued line survives, so no durability
// point ever moves.

// dropEmptyFences removes fences whose queue is provably empty and returns
// how many were removed.
func (o *optFunc) dropEmptyFences() int {
	f := o.f
	nb := len(f.Blocks)
	// Forward must-dataflow: "queue is empty here". Entry: unknown (false).
	in := make([]bool, nb)
	out := make([]bool, nb)
	seen := make([]bool, nb)
	seen[0] = true
	preds := ir.Preds(f)
	transfer := func(b *ir.Block, cur bool) bool {
		for _, instr := range b.Instrs {
			switch instr.Op {
			case ir.OpFence:
				cur = true
			case ir.OpFlush:
				cur = false
			case ir.OpCall, ir.OpSpawn, ir.OpYield, ir.OpLock, ir.OpUnlock:
				cur = false // callee or another thread may queue lines
			}
		}
		return cur
	}
	for changed := true; changed; {
		changed = false
		for bi, b := range f.Blocks {
			if bi != 0 {
				v, any := true, false
				for _, p := range preds[bi] {
					if seen[p] {
						any = true
						v = v && out[p]
					}
				}
				if !any {
					continue
				}
				if !seen[bi] || v != in[bi] {
					in[bi], seen[bi] = v, true
					changed = true
				}
			}
			if v := transfer(b, in[bi]); v != out[bi] || !seen[bi] {
				out[bi] = v
				changed = true
			}
		}
	}

	del := map[*ir.Instr]bool{}
	for bi, b := range f.Blocks {
		if !seen[bi] {
			continue
		}
		cur := in[bi]
		for _, instr := range b.Instrs {
			if instr.Op == ir.OpFence && cur {
				del[instr] = true
			}
			switch instr.Op {
			case ir.OpFence:
				cur = true
			case ir.OpFlush:
				cur = false
			case ir.OpCall, ir.OpSpawn, ir.OpYield, ir.OpLock, ir.OpUnlock:
				cur = false
			}
		}
	}
	if len(del) > 0 {
		o.rewrite(del, nil, nil)
	}
	return len(del)
}

// coalesceFlushes merges runs of adjacent flush instructions that queue
// exactly contiguous ascending word ranges off the same base (pmalloc or
// getroot) into a single flush. The merged flush queues exactly the union
// word set the originals queued, and the VM's fence coalesces
// exactly-contiguous queue entries into one drain range anyway — so the
// optimized program drains the identical range at the identical fence, and
// crash behavior is bit-for-bit the same. Overlapping or gapped ranges are
// NOT merged: the VM drains those as separate persists, and merging would
// change mid-drain crash states.
func (o *optFunc) coalesceFlushes() {
	type run struct {
		first  *ir.Instr // kept instruction (lowest offset: its addr reg is reused)
		base   *ir.Instr
		lo, hi int64
		dead   []*ir.Instr
	}
	del := map[*ir.Instr]bool{}
	newCount := map[*ir.Instr]int64{}
	var cur *run
	flush := func() {
		if cur != nil && len(cur.dead) > 0 {
			for _, d := range cur.dead {
				del[d] = true
			}
			newCount[cur.first] = cur.hi - cur.lo
			o.stats.FlushesCoalesced += len(cur.dead)
		}
		cur = nil
	}
	for _, b := range o.f.Blocks {
		flush()
		for _, instr := range b.Instrs {
			if instr.Op != ir.OpFlush {
				// Queued ranges are volatile (a crash discards them) and
				// their values are read only when a fence drains them, so
				// moving a flush earlier is invisible unless a drain — a
				// fence, or a call/thread-switch that may fence — happens in
				// between. Anything else (address arithmetic, stores, even
				// persists) keeps the run alive.
				switch instr.Op {
				case ir.OpFence, ir.OpCall, ir.OpSpawn, ir.OpYield, ir.OpLock, ir.OpUnlock:
					flush()
				}
				continue
			}
			base, count := o.addrOf(instr)
			k := o.factBase(base)
			if k == nil || !count.isConst || count.c <= 0 {
				flush()
				continue
			}
			lo, hi := base.c, base.c+count.c
			if cur != nil && cur.base == k && lo == cur.hi {
				// Exactly contiguous and ascending: extend the run.
				cur.hi = hi
				cur.dead = append(cur.dead, instr)
				continue
			}
			flush()
			cur = &run{first: instr, base: k, lo: lo, hi: hi}
		}
	}
	flush()
	if len(del)+len(newCount) > 0 {
		o.rewrite(del, newCount, nil)
	}
}
