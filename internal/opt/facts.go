package opt

import (
	"sort"

	"arthas/internal/analysis"
	"arthas/internal/ir"
)

// Address value numbering, the durably-clean-word dataflow, and the
// transaction-taint analysis. See docs/OPTIMIZER.md for the soundness
// argument behind each rule.

// maxOff bounds symbolic offsets so loop-carried pointer arithmetic cannot
// grow values without bound during the fixpoint.
const maxOff = 1 << 32

type baseKind int

const (
	bNone   baseKind = iota
	bAlloc           // pmalloc result: the persistent object of one alloc site
	bValloc          // valloc result: a volatile object (never aliases PM)
	bRoot            // getroot result: whatever the slot held at that getroot
)

// val is the abstract value of a register use: a constant, or a symbolic
// address base+offset. The zero value is "unknown" (top).
type val struct {
	known   bool
	isConst bool
	c       int64 // constant value, or byte^Wword offset from base
	kind    baseKind
	base    *ir.Instr // the pmalloc/valloc/getroot instruction
}

var top = val{}

func constVal(c int64) val { return val{known: true, isConst: true, c: c} }

func sameVal(a, b val) bool {
	return a.known && b.known && a.isConst == b.isConst &&
		a.c == b.c && a.kind == b.kind && a.base == b.base
}

// resolver memoizes reaching-definition value resolution per (use, reg).
// A use resolves only when every reaching definition yields the same value,
// so the result is valid on all paths into the use.
type resolver struct {
	du       *analysis.DefUse
	memo     map[rkey]val
	visiting map[rkey]bool
}

type rkey struct {
	in  *ir.Instr
	reg int
}

func newResolver(f *ir.Function) *resolver {
	return &resolver{du: analysis.ReachDefs(f), memo: map[rkey]val{}, visiting: map[rkey]bool{}}
}

func (r *resolver) valueOf(use *ir.Instr, reg int) val {
	k := rkey{use, reg}
	if v, ok := r.memo[k]; ok {
		return v
	}
	if r.visiting[k] {
		return top // def cycle (loop-carried register): unknown
	}
	r.visiting[k] = true
	defs, fromParam := r.du.DefsOf(use, reg)
	v := top
	if !fromParam && len(defs) > 0 {
		v = r.defValue(defs[0])
		for _, d := range defs[1:] {
			if !sameVal(v, r.defValue(d)) {
				v = top
				break
			}
		}
	}
	delete(r.visiting, k)
	r.memo[k] = v
	return v
}

func (r *resolver) defValue(d *ir.Instr) val {
	switch d.Op {
	case ir.OpConst:
		return constVal(d.Imm)
	case ir.OpMov:
		return r.valueOf(d, d.Args[0])
	case ir.OpPmalloc:
		return val{known: true, kind: bAlloc, base: d}
	case ir.OpValloc:
		return val{known: true, kind: bValloc, base: d}
	case ir.OpGetRoot:
		// The base identity is this getroot instruction, not the slot: a
		// later setroot must never let a stale pointer match facts about
		// the slot's new target.
		if s := r.valueOf(d, d.Args[0]); s.isConst {
			return val{known: true, kind: bRoot, base: d}
		}
		return top
	case ir.OpBin:
		return binVal(ir.BinOp(d.Imm), r.valueOf(d, d.Args[0]), r.valueOf(d, d.Args[1]))
	case ir.OpUn:
		x := r.valueOf(d, d.Args[0])
		if !x.isConst {
			return top
		}
		switch ir.UnOp(d.Imm) {
		case ir.Neg:
			return constVal(-x.c)
		case ir.BitNot:
			return constVal(^x.c)
		case ir.LogNot:
			if x.c == 0 {
				return constVal(1)
			}
			return constVal(0)
		}
	}
	return top
}

func binVal(op ir.BinOp, x, y val) val {
	if x.isConst && y.isConst {
		return foldConst(op, x.c, y.c)
	}
	addr, off, ok := addrPlusConst(op, x, y)
	if ok && abs64(addr.c+off) < maxOff {
		a := addr
		a.c += off
		return a
	}
	return top
}

func addrPlusConst(op ir.BinOp, x, y val) (val, int64, bool) {
	isAddr := func(v val) bool { return v.known && !v.isConst }
	switch op {
	case ir.Add:
		if isAddr(x) && y.isConst {
			return x, y.c, true
		}
		if isAddr(y) && x.isConst {
			return y, x.c, true
		}
	case ir.Sub:
		if isAddr(x) && y.isConst {
			return x, -y.c, true
		}
	}
	return top, 0, false
}

func foldConst(op ir.BinOp, a, b int64) val {
	switch op {
	case ir.Add:
		return constVal(a + b)
	case ir.Sub:
		return constVal(a - b)
	case ir.Mul:
		if abs64(a) < maxOff && abs64(b) < maxOff {
			return constVal(a * b)
		}
	case ir.Div:
		if b != 0 {
			return constVal(a / b)
		}
	case ir.Mod:
		if b != 0 {
			return constVal(a % b)
		}
	case ir.And:
		return constVal(a & b)
	case ir.Or:
		return constVal(a | b)
	case ir.Xor:
		return constVal(a ^ b)
	case ir.Shl:
		if b >= 0 && b < 32 {
			return constVal(a << uint(b))
		}
	case ir.Shr:
		if b >= 0 && b < 64 {
			return constVal(a >> uint(b))
		}
	case ir.Lt:
		return boolVal(a < b)
	case ir.Le:
		return boolVal(a <= b)
	case ir.Gt:
		return boolVal(a > b)
	case ir.Ge:
		return boolVal(a >= b)
	case ir.Eq:
		return boolVal(a == b)
	case ir.Ne:
		return boolVal(a != b)
	}
	return top
}

func boolVal(b bool) val {
	if b {
		return constVal(1)
	}
	return constVal(0)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---- durably-clean word spans ----

// span is a half-open word interval [lo, hi) relative to a base.
type span struct{ lo, hi int64 }

type spanSet []span // sorted, disjoint, non-adjacent-merged

func (s spanSet) clone() spanSet {
	out := make(spanSet, len(s))
	copy(out, s)
	return out
}

// add merges [lo, hi) into the set.
func (s spanSet) add(lo, hi int64) spanSet {
	if lo >= hi {
		return s
	}
	out := make(spanSet, 0, len(s)+1)
	for _, sp := range s {
		if sp.hi < lo {
			out = append(out, sp)
			continue
		}
		if sp.lo > hi {
			continue
		}
		if sp.lo < lo {
			lo = sp.lo
		}
		if sp.hi > hi {
			hi = sp.hi
		}
	}
	out = append(out, span{lo, hi})
	for _, sp := range s {
		if sp.lo > hi {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

// remove cuts [lo, hi) out of the set.
func (s spanSet) remove(lo, hi int64) spanSet {
	if lo >= hi {
		return s
	}
	var out spanSet
	for _, sp := range s {
		if sp.hi <= lo || sp.lo >= hi {
			out = append(out, sp)
			continue
		}
		if sp.lo < lo {
			out = append(out, span{sp.lo, lo})
		}
		if sp.hi > hi {
			out = append(out, span{hi, sp.hi})
		}
	}
	return out
}

// intersect keeps the words present in both sets.
func (s spanSet) intersect(o spanSet) spanSet {
	var out spanSet
	for _, a := range s {
		for _, b := range o {
			lo, hi := a.lo, a.hi
			if b.lo > lo {
				lo = b.lo
			}
			if b.hi < hi {
				hi = b.hi
			}
			if lo < hi {
				out = append(out, span{lo, hi})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

// covers reports whether [lo, hi) is fully inside the set.
func (s spanSet) covers(lo, hi int64) bool {
	if lo >= hi {
		return true
	}
	for _, sp := range s {
		if sp.lo <= lo && hi <= sp.hi {
			return true
		}
	}
	return false
}

// cleanSuffixFrom returns the smallest d in [lo, hi] such that [d, hi) is
// fully covered (d == hi when no suffix is clean).
func (s spanSet) cleanSuffixFrom(lo, hi int64) int64 {
	for _, sp := range s {
		if sp.hi >= hi && sp.lo < hi {
			d := sp.lo
			if d < lo {
				d = lo
			}
			return d
		}
	}
	return hi
}

func (s spanSet) equal(o spanSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// state is the must-dataflow fact at a program point: per base, the words
// proven durably clean (durable value == current value on every path), and
// the words flushed into the write-pending queue but not yet fenced.
type state struct {
	clean   map[*ir.Instr]spanSet
	pending map[*ir.Instr]spanSet
}

func newState() *state {
	return &state{clean: map[*ir.Instr]spanSet{}, pending: map[*ir.Instr]spanSet{}}
}

func (st *state) clone() *state {
	n := newState()
	for k, v := range st.clean {
		n.clean[k] = v.clone()
	}
	for k, v := range st.pending {
		n.pending[k] = v.clone()
	}
	return n
}

func (st *state) equal(o *state) bool {
	return mapEqual(st.clean, o.clean) && mapEqual(st.pending, o.pending)
}

func mapEqual(a, b map[*ir.Instr]spanSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !v.equal(b[k]) {
			return false
		}
	}
	return true
}

// meet intersects two states (must-analysis join).
func meet(a, b *state) *state {
	n := newState()
	for k, v := range a.clean {
		if o, ok := b.clean[k]; ok {
			if x := v.intersect(o); len(x) > 0 {
				n.clean[k] = x
			}
		}
	}
	for k, v := range a.pending {
		if o, ok := b.pending[k]; ok {
			if x := v.intersect(o); len(x) > 0 {
				n.pending[k] = x
			}
		}
	}
	return n
}

func (st *state) killAll() {
	st.clean = map[*ir.Instr]spanSet{}
	st.pending = map[*ir.Instr]spanSet{}
}

func (st *state) killBase(b *ir.Instr) {
	delete(st.clean, b)
	delete(st.pending, b)
}

// killRoots drops every fact derived through a getroot base.
func (st *state) killRoots() {
	for k := range st.clean {
		if k.Op == ir.OpGetRoot {
			delete(st.clean, k)
		}
	}
	for k := range st.pending {
		if k.Op == ir.OpGetRoot {
			delete(st.pending, k)
		}
	}
}

func (st *state) killWord(b *ir.Instr, w int64) {
	if s, ok := st.clean[b]; ok {
		if s = s.remove(w, w+1); len(s) > 0 {
			st.clean[b] = s
		} else {
			delete(st.clean, b)
		}
	}
	if s, ok := st.pending[b]; ok {
		if s = s.remove(w, w+1); len(s) > 0 {
			st.pending[b] = s
		} else {
			delete(st.pending, b)
		}
	}
}

// ---- transaction taint ----

// txTaint computes, per instruction, whether it may execute while a
// transaction is active (its own function's txbegin, or the function being
// reachable from a call made inside an active transaction). Persists that
// may be transactional defer to the commit write-set, so the pass must
// neither trust nor touch them.
func txTaint(m *ir.Module) map[*ir.Instr]bool {
	entryTainted := map[*ir.Function]bool{}
	hasTx := map[*ir.Function]bool{}
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpTxBegin || in.Op == ir.OpTxCommit {
				hasTx[f] = true
			}
		})
	}

	// Propagate entry taint through calls made at maybe-tx points until
	// stable. Spawned threads start with a fresh (inactive) tx state, so
	// OpSpawn does not propagate.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if !hasTx[f] && !entryTainted[f] {
				continue
			}
			inTx := instrTxStates(f, entryTainted[f])
			f.Instrs(func(in *ir.Instr) {
				if in.Op != ir.OpCall || !inTx[in] {
					return
				}
				if callee := m.Func(in.Callee); callee != nil && !entryTainted[callee] {
					entryTainted[callee] = true
					changed = true
				}
			})
		}
	}

	out := map[*ir.Instr]bool{}
	for _, f := range m.Funcs {
		if !hasTx[f] && !entryTainted[f] {
			continue
		}
		inTx := instrTxStates(f, entryTainted[f])
		for in, v := range inTx {
			if v {
				out[in] = true
			}
		}
	}
	return out
}

// instrTxStates runs the forward may-be-in-tx dataflow over one function.
func instrTxStates(f *ir.Function, entry bool) map[*ir.Instr]bool {
	nb := len(f.Blocks)
	in := make([]bool, nb)
	seen := make([]bool, nb)
	in[0], seen[0] = entry, true
	preds := ir.Preds(f)
	out := make([]bool, nb)
	for changed := true; changed; {
		changed = false
		for bi, b := range f.Blocks {
			if bi != 0 {
				v, any := false, false
				for _, p := range preds[bi] {
					if seen[p] {
						any = true
						v = v || out[p]
					}
				}
				if !any {
					continue
				}
				if !seen[bi] || v != in[bi] {
					in[bi], seen[bi] = v, true
					changed = true
				}
			}
			cur := in[bi]
			for _, instr := range b.Instrs {
				switch instr.Op {
				case ir.OpTxBegin:
					cur = true
				case ir.OpTxCommit:
					cur = false
				}
			}
			if cur != out[bi] {
				out[bi] = cur
				changed = true
			}
		}
	}
	res := map[*ir.Instr]bool{}
	for bi, b := range f.Blocks {
		cur := in[bi]
		for _, instr := range b.Instrs {
			res[instr] = cur
			switch instr.Op {
			case ir.OpTxBegin:
				cur = true
			case ir.OpTxCommit:
				cur = false
			}
		}
	}
	return res
}
