package opt_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arthas/internal/ir"
	"arthas/internal/opt"
	"arthas/internal/systems"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPrograms is every program the pass is snapshotted against: the
// repo's PML fixtures plus the five paper systems (hosts of the f1–f12
// fault cases).
func goldenPrograms(t *testing.T) map[string]string {
	t.Helper()
	progs := map[string]string{}
	for _, name := range []string{"counter", "checksum", "linkedset", "ringlog", "native"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".pml"))
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = string(src)
	}
	for _, sys := range []*systems.System{
		systems.Memcached(), systems.Redis(), systems.Pelikan(),
		systems.PMEMKV(), systems.CCEH(),
	} {
		progs[sys.Name] = sys.Source
	}
	return progs
}

// summarize renders the deterministic golden header: op counts before and
// after plus the pass stats.
func summarize(before, after map[ir.Op]int, st *opt.Stats) string {
	var sb strings.Builder
	for _, op := range []ir.Op{ir.OpPersist, ir.OpFlush, ir.OpFence} {
		fmt.Fprintf(&sb, "%s: %d -> %d\n", op, before[op], after[op])
	}
	fmt.Fprintf(&sb, "stats: %s\n", st)
	return sb.String()
}

func opCounts(m *ir.Module) map[ir.Op]int {
	counts := map[ir.Op]int{}
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) { counts[in.Op]++ })
	}
	return counts
}

// smallFixtures get a full optimized-IR snapshot appended to their golden;
// the systems' IR is too large to review as a snapshot, so their goldens
// carry the summary alone.
var smallFixtures = map[string]bool{"counter": true, "checksum": true, "linkedset": true, "ringlog": true, "native": true}

func TestGoldenOptimizedIR(t *testing.T) {
	for name, src := range goldenPrograms(t) {
		t.Run(name, func(t *testing.T) {
			mod := ir.MustCompile(name, src)
			before := opCounts(mod)
			st, err := opt.Optimize(mod)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if err := ir.Verify(mod); err != nil {
				t.Fatalf("optimized module fails verification: %v", err)
			}
			after := opCounts(mod)

			// Persistence ops must never increase, and every removal the
			// stats claim must show up in the op counts.
			if after[ir.OpPersist] > before[ir.OpPersist] ||
				after[ir.OpFlush] > before[ir.OpFlush] ||
				after[ir.OpFence] > before[ir.OpFence] {
				t.Fatalf("op counts increased: before %v after %v", before, after)
			}
			if got := before[ir.OpPersist] - after[ir.OpPersist]; got != st.PersistsRemoved {
				t.Fatalf("persist delta %d != stats %d", got, st.PersistsRemoved)
			}
			if got := before[ir.OpFlush] - after[ir.OpFlush]; got != st.FlushesRemoved+st.FlushesCoalesced {
				t.Fatalf("flush delta %d != stats %d+%d", got, st.FlushesRemoved, st.FlushesCoalesced)
			}
			if got := before[ir.OpFence] - after[ir.OpFence]; got != st.FencesRemoved {
				t.Fatalf("fence delta %d != stats %d", got, st.FencesRemoved)
			}

			golden := summarize(before, after, st)
			if smallFixtures[name] {
				golden += "\n" + ir.Print(mod)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(golden), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(want) != golden {
				t.Errorf("golden mismatch for %s (re-run with -update and review)\n--- want\n%s--- got\n%s",
					name, want, golden)
			}
		})
	}
}

// TestGoldenExpectedWins pins the headline eliminations: programs provenance
// flags as persist-redundant must actually lose persists to the pass.
func TestGoldenExpectedWins(t *testing.T) {
	progs := goldenPrograms(t)
	for name, minRemoved := range map[string]int{
		"memcached": 1, // mc_init's persist(tab, 64) of a fresh zeroed table
		"pelikan":   3, // pk_init's metrics + table persists, pk_stats_reset
		"redis":     1, // dict table persist after zeroed alloc
		"pmemkv":    1, // root table persist after zeroed alloc
		"cceh":      0, // cc_newseg persists get shrunk, not removed
		"native":    1, // init_'s whole-object persist
	} {
		mod := ir.MustCompile(name, progs[name])
		st, err := opt.Optimize(mod)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.PersistsRemoved < minRemoved {
			t.Errorf("%s: persists removed = %d, want >= %d (stats %s)",
				name, st.PersistsRemoved, minRemoved, st)
		}
	}
	// CCEH's segment-init persist covers 2 dirty header words + 16 fresh
	// bucket words: the shrink path must reclaim those words.
	mod := ir.MustCompile("cceh", progs["cceh"])
	st, err := opt.Optimize(mod)
	if err != nil {
		t.Fatal(err)
	}
	if st.PersistsShrunk == 0 {
		t.Errorf("cceh: expected at least one persist shrink, stats %s", st)
	}
}
