// Package opt is the flush/fence-elimination optimizer: an IR-to-IR pass
// that removes provably redundant persistence operations from PML programs
// (the Bentō line of work) while preserving every crash-visible durability
// point. Three rewrites run in order:
//
//  1. Redundant persist/flush elimination — a persist (or flush) whose whole
//     word range is proven durably clean on every path is deleted; a persist
//     whose range ends in a clean suffix is shrunk to its dirty prefix.
//     "Durably clean" facts come from two sources: pmalloc (the pool's
//     Zalloc persists the zeroed payload at allocation, so a fresh object is
//     durably zero) and an earlier covering persist, invalidated by any
//     may-aliasing store (reaching-defs value numbering, refined by the
//     Andersen points-to analysis) and by every crash-visible barrier.
//  2. Fence elimination — a fence whose write-pending queue is provably
//     empty on every path (a fence or function entry with no flush since)
//     drains nothing and is deleted, so each fence epoch drains exactly once.
//  3. Flush coalescing — adjacent flushes of contiguous word ranges of the
//     same object merge into one queue entry, mirroring the VM's own
//     adjacent-line coalescing at fence time (bit-identical drain behavior).
//
// The barrier model: calls, spawns, yields, locks/unlocks, txbegin/txcommit,
// setroot, pfree and pmrealloc kill all facts — the pass never reasons
// across a point where another thread, a callee, a transaction commit, or a
// root update could observe or change durable state. Persists that may
// execute inside an active transaction are never touched (they defer to the
// commit write-set). The pass assumes the default cooperative scheduler;
// vm.Config.PreemptEvery > 0 voids the proofs (documented in
// docs/OPTIMIZER.md).
//
// Run Optimize before analysis.Analyze: the pass mutates the module and
// re-verifies it; instrumentation GUIDs are assigned afterwards as usual.
package opt

import (
	"fmt"

	"arthas/internal/analysis"
	"arthas/internal/ir"
)

// Stats reports what the pass did. All counters are deterministic for a
// given module.
type Stats struct {
	PersistsRemoved  int `json:"persists_removed"`
	PersistsShrunk   int `json:"persists_shrunk"`
	FlushesRemoved   int `json:"flushes_removed"`
	FlushesCoalesced int `json:"flushes_coalesced"` // flush instructions merged away
	FencesRemoved    int `json:"fences_removed"`
	// WordsRemoved counts statically-known persisted words the optimized
	// program no longer re-persists (const-size eliminations and shrinks).
	WordsRemoved int64 `json:"words_removed"`
}

// Total is the number of persistence instructions removed or rewritten.
func (s *Stats) Total() int {
	return s.PersistsRemoved + s.PersistsShrunk + s.FlushesRemoved +
		s.FlushesCoalesced + s.FencesRemoved
}

func (s *Stats) String() string {
	return fmt.Sprintf("persists: %d removed, %d shrunk; flushes: %d removed, %d coalesced; fences: %d removed; %d words saved",
		s.PersistsRemoved, s.PersistsShrunk, s.FlushesRemoved, s.FlushesCoalesced,
		s.FencesRemoved, s.WordsRemoved)
}

// Optimize rewrites m in place and returns what it did. The output module
// is re-verified; an error means the pass produced malformed IR and must be
// treated as a compile failure (no partial rewrite is kept on error paths
// of individual functions — verification covers the whole module).
func Optimize(m *ir.Module) (*Stats, error) {
	st := &Stats{}
	pt := analysis.BuildPointsTo(m)
	inTx := txTaint(m)
	for _, f := range m.Funcs {
		of := &optFunc{m: m, f: f, pt: pt, inTx: inTx, stats: st}
		of.run()
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("opt: output failed verification: %w", err)
	}
	return st, nil
}

// optFunc carries the per-function pass state.
type optFunc struct {
	m     *ir.Module
	f     *ir.Function
	pt    *analysis.PointsTo
	inTx  map[*ir.Instr]bool
	stats *Stats

	res       *resolver
	allocSize map[*ir.Instr]int64 // const Zalloc size per acyclic alloc site
	cyclic    []bool              // block index -> participates in a CFG cycle
}

func (o *optFunc) run() {
	o.res = newResolver(o.f)
	o.cyclic = cyclicBlocks(o.f)
	o.allocSize = o.collectAllocs()

	// Pass 1: redundant persist/flush elimination + persist shrinking.
	in := o.cleanFixpoint()
	del := map[*ir.Instr]bool{}
	shrink := map[*ir.Instr]int64{}
	for bi, b := range o.f.Blocks {
		st := in[bi]
		if st == nil {
			continue // unreachable block
		}
		st = st.clone()
		for _, instr := range b.Instrs {
			o.decide(instr, st, del, shrink)
			o.transfer(instr, st)
		}
	}
	if len(del)+len(shrink) > 0 {
		o.rewrite(del, shrink, nil)
		o.res = newResolver(o.f) // IDs and chains changed
	}

	// Pass 2: provably-empty fences.
	if n := o.dropEmptyFences(); n > 0 {
		o.stats.FencesRemoved += n
		o.res = newResolver(o.f)
	}

	// Pass 3: coalesce adjacent contiguous flushes.
	o.coalesceFlushes()
}

// collectAllocs records the const allocation size of every pmalloc that
// executes at most once per call (outside any CFG cycle). Only those sites
// yield clean facts: a re-executing alloc names a fresh object each
// iteration, and a stale pointer from an earlier iteration must never match
// facts about the latest one.
func (o *optFunc) collectAllocs() map[*ir.Instr]int64 {
	sizes := map[*ir.Instr]int64{}
	for bi, b := range o.f.Blocks {
		if o.cyclic[bi] {
			continue
		}
		for _, instr := range b.Instrs {
			if instr.Op != ir.OpPmalloc {
				continue
			}
			if n := o.res.valueOf(instr, instr.Args[0]); n.isConst && n.c > 0 && n.c < maxOff {
				sizes[instr] = n.c
			}
		}
	}
	return sizes
}

// cyclicBlocks marks blocks that can reach themselves.
func cyclicBlocks(f *ir.Function) []bool {
	nb := len(f.Blocks)
	reach := make([][]bool, nb)
	for i, b := range f.Blocks {
		reach[i] = make([]bool, nb)
		seen := make([]bool, nb)
		stack := b.Succs()
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[s] {
				continue
			}
			seen[s] = true
			reach[i][s] = true
			stack = append(stack, f.Blocks[s].Succs()...)
		}
	}
	out := make([]bool, nb)
	for i := range out {
		out[i] = reach[i][i]
	}
	return out
}

// cleanFixpoint runs the forward must-dataflow to a fixpoint and returns
// the per-block entry states (nil for blocks never reached).
func (o *optFunc) cleanFixpoint() []*state {
	nb := len(o.f.Blocks)
	in := make([]*state, nb)
	out := make([]*state, nb)
	in[0] = newState()
	preds := ir.Preds(o.f)
	for changed := true; changed; {
		changed = false
		for bi, b := range o.f.Blocks {
			if bi != 0 {
				var merged *state
				for _, p := range preds[bi] {
					if out[p] == nil {
						continue
					}
					if merged == nil {
						merged = out[p].clone()
					} else {
						merged = meet(merged, out[p])
					}
				}
				if merged == nil {
					continue
				}
				if in[bi] == nil || !in[bi].equal(merged) {
					in[bi] = merged
					changed = true
				}
			}
			cur := in[bi].clone()
			for _, instr := range b.Instrs {
				o.transfer(instr, cur)
			}
			if out[bi] == nil || !out[bi].equal(cur) {
				out[bi] = cur
				changed = true
			}
		}
	}
	return in
}

// addrOf resolves a persistence instruction's (addr, count) operands.
func (o *optFunc) addrOf(in *ir.Instr) (base val, count val) {
	return o.res.valueOf(in, in.Args[0]), o.res.valueOf(in, in.Args[1])
}

// factBase returns the fact key for an address value, or nil when the pass
// must not track facts for it.
func (o *optFunc) factBase(a val) *ir.Instr {
	if !a.known || a.isConst {
		return nil
	}
	switch a.kind {
	case bAlloc:
		if _, ok := o.allocSize[a.base]; ok {
			return a.base
		}
	case bRoot:
		return a.base
	}
	return nil
}

// transfer applies one instruction's effect to the state.
func (o *optFunc) transfer(in *ir.Instr, st *state) {
	switch in.Op {
	case ir.OpCall, ir.OpSpawn, ir.OpYield, ir.OpLock, ir.OpUnlock,
		ir.OpTxBegin, ir.OpTxCommit, ir.OpPmRealloc:
		st.killAll()

	case ir.OpSetRoot:
		st.killAll()

	case ir.OpPmalloc:
		st.killBase(in)
		if s, ok := o.allocSize[in]; ok {
			st.clean[in] = spanSet{{0, s}}
		}

	case ir.OpPfree:
		a := o.res.valueOf(in, in.Args[0])
		if a.known && a.kind == bAlloc {
			st.killBase(a.base)
			st.killRoots()
		} else if a.known && a.kind == bValloc {
			// pfree of a volatile address traps; no PM effect to model.
		} else {
			st.killAll()
		}

	case ir.OpStore:
		a := o.res.valueOf(in, in.Args[0])
		switch {
		case a.known && a.kind == bValloc:
			// Volatile object: provably disjoint from every PM fact.
		case a.known && a.kind == bAlloc && o.inExtent(a.base, a.c+in.Off):
			// In-bounds store to a known object: only that word dirties.
			// (An out-of-bounds store could reach a neighboring object, so
			// it falls through to the conservative case below.)
			st.killWord(a.base, a.c+in.Off)
			st.killRoots()
		default:
			// Unknown or root-relative address: keep only alloc facts the
			// pointer analysis proves the store cannot reach. An empty set
			// (or one containing the synthetic root object) means the base
			// was not modeled as a pointer — assume it can reach anything.
			ptObjs := o.pt.PointsToObjects(o.f, in.Args[0])
			objs := map[*ir.Instr]bool{}
			modeled := len(ptObjs) > 0
			for _, obj := range ptObjs {
				if obj == nil {
					modeled = false
					break
				}
				objs[obj] = true
			}
			if !modeled {
				st.killAll()
				return
			}
			for k := range st.clean {
				if k.Op == ir.OpPmalloc && objs[k] {
					st.killBase(k)
				}
			}
			for k := range st.pending {
				if k.Op == ir.OpPmalloc && objs[k] {
					st.killBase(k)
				}
			}
			st.killRoots()
		}

	case ir.OpPersist:
		if o.inTx[in] {
			return // may defer to the commit write-set: not a durability point here
		}
		base, count := o.addrOf(in)
		if k := o.factBase(base); k != nil && count.isConst {
			lo, hi := o.clip(k, base.c, base.c+count.c)
			if lo < hi {
				st.clean[k] = st.clean[k].add(lo, hi)
			}
		}

	case ir.OpFlush:
		base, count := o.addrOf(in)
		if k := o.factBase(base); k != nil && count.isConst {
			lo, hi := o.clip(k, base.c, base.c+count.c)
			if lo < hi {
				st.pending[k] = st.pending[k].add(lo, hi)
			}
		}

	case ir.OpFence:
		// The queue drains: every pending line is persisted with its
		// current value, so pending spans become clean.
		for k, v := range st.pending {
			for _, sp := range v {
				st.clean[k] = st.clean[k].add(sp.lo, sp.hi)
			}
		}
		st.pending = map[*ir.Instr]spanSet{}
	}
}

// inExtent reports whether word w is provably inside the allocation.
func (o *optFunc) inExtent(alloc *ir.Instr, w int64) bool {
	s, ok := o.allocSize[alloc]
	return ok && w >= 0 && w < s
}

// clip bounds a span to the object's extent for alloc bases (facts about
// words outside the allocation would not be invalidated by stores through
// neighboring objects' bases). Root bases carry no static extent; their
// spans come only from successful persists, which proves validity.
func (o *optFunc) clip(k *ir.Instr, lo, hi int64) (int64, int64) {
	if k.Op == ir.OpPmalloc {
		s := o.allocSize[k]
		if lo < 0 {
			lo = 0
		}
		if hi > s {
			hi = s
		}
	}
	if hi-lo >= maxOff {
		return 0, 0
	}
	return lo, hi
}

// decide marks a persist/flush for deletion or shrinking given the state
// before it executes.
func (o *optFunc) decide(in *ir.Instr, st *state, del map[*ir.Instr]bool, shrink map[*ir.Instr]int64) {
	if in.Op != ir.OpPersist && in.Op != ir.OpFlush {
		return
	}
	if in.Op == ir.OpPersist && o.inTx[in] {
		// A transactional persist adds its range to the commit write-set;
		// removing it would drop words from the atomic commit.
		return
	}
	base, count := o.addrOf(in)
	k := o.factBase(base)
	if k == nil || !count.isConst || count.c <= 0 {
		return
	}
	lo, hi := base.c, base.c+count.c
	if k.Op == ir.OpPmalloc {
		// Ranges beyond the object's extent persist neighboring words the
		// facts say nothing about; leave those operations alone.
		if lo < 0 || hi > o.allocSize[k] {
			return
		}
	}
	clean := st.clean[k]
	if clean.covers(lo, hi) {
		del[in] = true
		if in.Op == ir.OpPersist {
			o.stats.PersistsRemoved++
		} else {
			o.stats.FlushesRemoved++
		}
		o.stats.WordsRemoved += hi - lo
		return
	}
	if in.Op != ir.OpPersist {
		return
	}
	// Shrink: persist only the dirty prefix when a clean suffix is proven.
	if d := clean.cleanSuffixFrom(lo, hi); d < hi && d > lo {
		shrink[in] = d - lo
		o.stats.PersistsShrunk++
		o.stats.WordsRemoved += hi - d
	}
}

// rewrite applies deletions and count replacements, inserting OpConst
// definitions for new count operands, then re-finalizes the function.
func (o *optFunc) rewrite(del map[*ir.Instr]bool, newCount map[*ir.Instr]int64, newAddr map[*ir.Instr]int) {
	for _, b := range o.f.Blocks {
		out := make([]*ir.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			if del[in] {
				continue
			}
			if c, ok := newCount[in]; ok {
				reg := o.f.NumRegs
				o.f.NumRegs++
				o.f.RegNames = append(o.f.RegNames, fmt.Sprintf("%%opt%d", reg))
				out = append(out, &ir.Instr{Op: ir.OpConst, Dst: reg, Imm: c, Pos: in.Pos})
				addr := in.Args[0]
				if a, ok := newAddr[in]; ok {
					addr = a
				}
				in.Args = []int{addr, reg}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	o.f.Finalize()
}
