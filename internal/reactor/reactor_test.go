package reactor

import (
	"testing"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/pmem"
	"arthas/internal/trace"
	"arthas/internal/vm"
)

// miniKV is a synthetic PM system reproducing the paper's Figure 6 shape:
// a bad value is persisted long before the failure point (the root cause at
// t5), propagates through a volatile temporary, and a later read through
// the contaminated persistent pointer crashes.
const miniKV = `
fn init_() {
    var root = pmalloc(8);
    var buf = pmalloc(16);
    root[0] = 0;      // op count
    root[1] = buf;    // data pointer
    root[2] = 16;     // capacity
    persist(root, 3);
    setroot(0, root);
    return 0;
}

fn put(i, v) {
    var root = getroot(0);
    var buf = root[1];
    buf[i % 16] = v;
    persist(buf + (i % 16), 1);
    root[0] = root[0] + 1;
    persist(root, 1);
    return 0;
}

// evil contains the bug: a special input corrupts the persistent data
// pointer via a volatile temporary (type-II propagation).
fn evil(v) {
    var root = getroot(0);
    var tmp = v * 3;
    if (v == 777) {
        root[1] = tmp;
        persist(root, 3);
    }
    return 0;
}

fn get(i) {
    var root = getroot(0);
    var buf = root[1];
    return buf[i % 16];
}

fn recover_() {
    recover_begin();
    var root = getroot(0);
    var n = root[0];
    recover_end();
    return n;
}
`

// rig is a minimal instrumented deployment of one PML system.
type rig struct {
	mod  *ir.Module
	res  *analysis.Result
	pool *pmem.Pool
	log  *checkpoint.Log
	tr   *trace.Trace
	m    *vm.Machine
}

func newRig(t *testing.T, src string) *rig {
	t.Helper()
	mod, err := ir.CompileSource("minikv", src)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		mod:  mod,
		res:  analysis.Analyze(mod),
		pool: pmem.New(1 << 14),
		log:  checkpoint.NewLog(3),
		tr:   trace.New(),
	}
	r.pool.SetHooks(r.log.Hooks())
	r.boot()
	return r
}

// boot (re)creates the machine on the existing pool — a process start.
func (r *rig) boot() {
	r.m = vm.New(r.mod, r.pool, vm.Config{StepLimit: 5_000_000})
	r.m.TraceSink = r.tr.Record
}

// restart simulates kill + restart: volatile state dropped, pool crashed.
func (r *rig) restart() {
	r.pool.Crash()
	r.boot()
}

func TestMitigatePropagatedPointerCorruption(t *testing.T) {
	r := newRig(t, miniKV)
	if _, trap := r.m.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 10; i++ {
		if _, trap := r.m.Call("put", i, 100+i); trap != nil {
			t.Fatal(trap)
		}
	}
	// Trigger the bug, then hit the failure.
	if _, trap := r.m.Call("evil", 777); trap != nil {
		t.Fatal(trap)
	}
	_, trap := r.m.Call("get", 0)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("expected segfault, got %v", trap)
	}

	// Restart reproduces the failure: it is a hard fault.
	r.restart()
	if _, trap2 := r.m.Call("recover_"); trap2 != nil {
		t.Fatal(trap2)
	}
	_, trap2 := r.m.Call("get", 0)
	if trap2 == nil {
		t.Fatal("failure did not recur after restart; not a hard fault")
	}

	// Mitigate.
	reexec := func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call("get", 0)
		return tp
	}
	ctx := &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, AddrFault: trap.Kind == vm.TrapSegfault, ReExec: reexec,
	}
	rep := Mitigate(DefaultConfig(), ctx)
	if !rep.Recovered {
		t.Fatalf("mitigation failed: %v (last trap: %v)", rep, rep.LastTrap)
	}
	if rep.RestartOnly {
		t.Fatal("plan was empty; slicing found no PM candidates")
	}

	// The system is healthy and retains independent data.
	r.restart()
	r.m.Call("recover_")
	v, tp := r.m.Call("get", 3)
	if tp != nil {
		t.Fatalf("post-recovery get trapped: %v", tp)
	}
	if v != 103 {
		t.Fatalf("post-recovery get(3) = %d, want 103 (independent data lost)", v)
	}
	// Fine-grained: only a small fraction of updates discarded.
	if pct := rep.DataLossPct(r.log); pct > 50 {
		t.Fatalf("data loss = %.1f%%, too coarse", pct)
	}
}

func TestMitigateRollbackMode(t *testing.T) {
	r := newRig(t, miniKV)
	r.m.Call("init_")
	for i := int64(0); i < 10; i++ {
		r.m.Call("put", i, 100+i)
	}
	r.m.Call("evil", 777)
	_, trap := r.m.Call("get", 0)
	if trap == nil {
		t.Fatal("no fault")
	}
	reexec := func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call("get", 0)
		return tp
	}
	cfg := DefaultConfig()
	cfg.Mode = ModeRollback
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, AddrFault: true, ReExec: reexec,
	})
	if !rep.Recovered {
		t.Fatalf("rollback mitigation failed: %v", rep)
	}
	if rep.ModeUsed != ModeRollback {
		t.Fatalf("mode = %v", rep.ModeUsed)
	}
}

func TestRollbackDiscardsMoreThanPurge(t *testing.T) {
	run := func(mode Mode) int {
		r := newRig(t, miniKV)
		r.m.Call("init_")
		for i := int64(0); i < 20; i++ {
			r.m.Call("put", i, 100+i)
		}
		r.m.Call("evil", 777)
		// More independent updates AFTER the contamination: rollback must
		// discard them, purge must not.
		_, trap := r.m.Call("get", 0)
		if trap == nil {
			t.Fatal("no fault")
		}
		reexec := func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("get", 0)
			return tp
		}
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.FallbackToRollback = false
		rep := Mitigate(cfg, &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, AddrFault: true, ReExec: reexec,
		})
		if !rep.Recovered {
			t.Fatalf("mode %v failed: %v", mode, rep)
		}
		return rep.RevertedVersions
	}
	purge := run(ModePurge)
	rollback := run(ModeRollback)
	if purge > rollback {
		t.Fatalf("purge discarded %d > rollback %d", purge, rollback)
	}
}

// cfgStore is a system whose fault has many aliasing PM dependencies, so
// the candidate list is long and the root cause sits deep in it — the shape
// where batch reversion pays off (paper §6.5).
const cfgStore = `
fn init_() {
    var root = pmalloc(6);
    persist(root, 6);
    setroot(0, root);
    return 0;
}
fn setcfg(slot, v) {
    var root = getroot(0);
    root[slot % 6] = v;
    persist(root + (slot % 6), 1);
    return 0;
}
fn check() {
    var root = getroot(0);
    var sum = root[0] + root[1] + root[2] + root[3] + root[4] + root[5];
    assert(sum < 1000);
    return sum;
}
fn recover_() { return 0; }
`

func TestBatchReversionFewerAttempts(t *testing.T) {
	run := func(batch int) *Report {
		r := newRig(t, cfgStore)
		r.m.Call("init_")
		for round := int64(0); round < 3; round++ {
			for slot := int64(0); slot < 6; slot++ {
				r.m.Call("setcfg", slot, 10+slot)
			}
		}
		// The bug: a huge value is persisted into slot 3...
		r.m.Call("setcfg", 3, 5000)
		// ...followed by several independent good updates, pushing the bad
		// sequence number deeper into the (newest-first) candidate list.
		for _, slot := range []int64{0, 1, 2, 4, 5, 0, 1} {
			r.m.Call("setcfg", slot, 20+slot)
		}
		_, trap := r.m.Call("check")
		if trap == nil || trap.Kind != vm.TrapAssert {
			t.Fatalf("trap = %v", trap)
		}
		reexec := func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("check")
			return tp
		}
		cfg := DefaultConfig()
		cfg.Batch = batch
		rep := Mitigate(cfg, &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, ReExec: reexec,
		})
		if !rep.Recovered {
			t.Fatalf("batch=%d failed: %v", batch, rep)
		}
		return rep
	}
	one := run(1)
	five := run(5)
	if one.Attempts < 2 {
		t.Fatalf("scenario too shallow: one-by-one took %d attempts", one.Attempts)
	}
	if five.Attempts >= one.Attempts {
		t.Fatalf("batch-5 attempts %d >= one-by-one %d", five.Attempts, one.Attempts)
	}
	// The price of batching: it discards at least as much data (§6.5).
	if five.RevertedVersions < one.RevertedVersions {
		t.Fatalf("batch discarded %d < one-by-one %d", five.RevertedVersions, one.RevertedVersions)
	}
}

func TestEmptyPlanFallsBackToRestart(t *testing.T) {
	// A soft fault: volatile-only corruption. The slice contains no PM
	// writes, so the plan is empty and a plain restart fixes it.
	src := `
var vptr;
fn init_() {
    var root = pmalloc(4);
    persist(root, 1);
    setroot(0, root);
    return 0;
}
fn poke() {
    vptr = 12345;  // volatile garbage pointer
    return 0;
}
fn use() {
    if (vptr != 0) {
        return vptr[0];  // segfault, but purely volatile cause
    }
    return 0;
}
fn recover_() { return 0; }
`
	r := newRig(t, src)
	r.m.Call("init_")
	r.m.Call("poke")
	_, trap := r.m.Call("use")
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
	reexec := func() *vm.Trap {
		r.restart() // restart clears vptr
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call("use")
		return tp
	}
	rep := Mitigate(DefaultConfig(), &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: reexec,
	})
	if !rep.RestartOnly {
		t.Fatalf("expected restart-only mitigation, got %v", rep)
	}
	if !rep.Recovered {
		t.Fatal("soft fault not cleared by restart")
	}
	if rep.RevertedVersions != 0 {
		t.Fatal("restart-only path reverted PM state")
	}
}

func TestUnmitigableReportsFailure(t *testing.T) {
	// A fault whose probe always fails regardless of reversion: the reactor
	// must exhaust its budget and report failure honestly.
	r := newRig(t, miniKV)
	r.m.Call("init_")
	r.m.Call("put", 0, 1)
	r.m.Call("evil", 777)
	_, trap := r.m.Call("get", 0)
	alwaysFail := func() *vm.Trap {
		return &vm.Trap{Kind: vm.TrapUserFail, Code: 1}
	}
	cfg := DefaultConfig()
	cfg.MaxAttempts = 5
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: alwaysFail,
	})
	if rep.Recovered {
		t.Fatal("reported recovery for unmitigable failure")
	}
	if rep.Attempts == 0 || rep.Attempts > 2*cfg.MaxAttempts {
		t.Fatalf("attempts = %d", rep.Attempts)
	}
}

// pairStore hosts a semantic dependency the PDG cannot see: the client
// requires A and B to be updated in lockstep, but the code never reads one
// when writing the other. Purge (slice-guided) reverts only A's updates;
// rollback also unwinds B's later independent update — the paper's case
// for the conservative mode (§3.3, §4.4).
const pairStore = `
fn init_() {
    var root = pmalloc(4);
    persist(root, 2);
    setroot(0, root);
    return 0;
}
fn setA(v) {
    var root = getroot(0);
    root[0] = v;
    persist(root + 0, 1);
    return 0;
}
fn setB(v) {
    var root = getroot(0);
    root[1] = v;
    persist(root + 1, 1);
    return 0;
}
fn checkA() {
    var root = getroot(0);
    assert(root[0] < 100);
    return root[0];
}
fn getB() {
    var root = getroot(0);
    return root[1];
}
fn recover_() { return 0; }
`

func TestPurgeFallsBackToRollback(t *testing.T) {
	r := newRig(t, pairStore)
	r.m.Call("init_")
	r.m.Call("setA", 5)
	r.m.Call("setB", 7)
	r.m.Call("setA", 500) // the bad persisted value
	r.m.Call("setB", 9)   // independent later update
	_, trap := r.m.Call("checkA")
	if trap == nil || trap.Kind != vm.TrapAssert {
		t.Fatalf("trap = %v", trap)
	}

	// The client's semantic requirement: when A is reverted, B must be
	// back to its paired value 7 as well. Purge never touches B (it is
	// outside A's slice); rollback unwinds it.
	reexec := func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("checkA"); tp != nil {
			return tp
		}
		b, tp := r.m.Call("getB")
		if tp != nil {
			return tp
		}
		if b != 7 {
			return &vm.Trap{Kind: vm.TrapUserFail, Code: 42, Msg: "pair out of sync"}
		}
		return nil
	}
	rep := Mitigate(DefaultConfig(), &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: reexec,
	})
	if !rep.FellBack {
		t.Fatalf("expected purge->rollback fallback, got %v", rep)
	}
	if rep.ModeUsed != ModeRollback {
		t.Fatalf("final mode = %v", rep.ModeUsed)
	}
	if !rep.Recovered {
		t.Fatalf("rollback fallback did not recover: %v (last %v)", rep, rep.LastTrap)
	}
}

func TestLeakMitigation(t *testing.T) {
	// A system that allocates per-request scratch blocks and "forgets" to
	// free them (the PMEMKV async-free shape).
	src := `
fn init_() {
    var root = pmalloc(4);
    root[0] = 0;
    persist(root, 1);
    setroot(0, root);
    return 0;
}
fn leaky_op(v) {
    var root = getroot(0);
    var scratch = pmalloc(8);   // never freed, never linked
    scratch[0] = v;
    persist(scratch, 1);
    root[0] = root[0] + 1;
    persist(root, 1);
    return 0;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var n = root[0];
    recover_end();
    return n;
}
`
	r := newRig(t, src)
	r.m.Call("init_")
	for i := int64(0); i < 20; i++ {
		r.m.Call("leaky_op", i)
	}
	liveBefore := r.pool.LiveWords()

	// Restart and run annotated recovery to collect the access set.
	r.restart()
	if _, trap := r.m.Call("recover_"); trap != nil {
		t.Fatal(trap)
	}
	leaks := FindLeaks(r.log, r.m.RecoveryAccess)
	if len(leaks) != 20 {
		t.Fatalf("suspected leaks = %d, want 20", len(leaks))
	}
	rep := MitigateLeak(r.pool, r.log, r.m.RecoveryAccess, nil)
	if len(rep.FreedAddr) != 20 {
		t.Fatalf("freed = %d", len(rep.FreedAddr))
	}
	if r.pool.LiveWords() >= liveBefore {
		t.Fatal("leak mitigation did not reclaim space")
	}
	// The root block (accessed in recovery) must survive.
	root, _ := r.pool.Root(0)
	if !r.pool.IsAllocated(root) {
		t.Fatal("leak mitigation freed live state")
	}
	// And the system still works.
	if _, trap := r.m.Call("leaky_op", 5); trap != nil {
		t.Fatal(trap)
	}
}

func TestLeakMitigationConfirmVeto(t *testing.T) {
	r := newRig(t, miniKV)
	r.m.Call("init_")
	rep := MitigateLeak(r.pool, r.log, map[uint64]bool{}, func(*checkpoint.AllocRecord) bool { return false })
	if len(rep.FreedAddr) != 0 {
		t.Fatal("vetoed frees happened anyway")
	}
}

func TestPlanOrdering(t *testing.T) {
	r := newRig(t, miniKV)
	r.m.Call("init_")
	for i := int64(0); i < 5; i++ {
		r.m.Call("put", i, i)
	}
	r.m.Call("evil", 777)
	_, trap := r.m.Call("get", 0)
	plan := ComputePlan(r.res, r.tr, r.log, []*ir.Instr{trap.Instr}, PlanConfig{})
	if plan.Empty() {
		t.Fatal("plan empty")
	}
	// No duplicate seqs.
	seen := map[uint64]bool{}
	for _, c := range plan.Candidates {
		if seen[c.Seq] {
			t.Fatalf("duplicate seq %d in plan", c.Seq)
		}
		seen[c.Seq] = true
	}
	// The first candidate must come from the most specific slice node:
	// nothing later may have strictly lower fanout AND lower distance
	// (the plan's node order is fanout-primary, distance-secondary).
	fanout := func(guid int) int { return len(r.tr.AddrsOfGUIDByRecency(guid)) }
	first := plan.Candidates[0]
	for _, c := range plan.Candidates[1:] {
		if fanout(c.GUID) < fanout(first.GUID) &&
			c.Dist < first.Dist {
			t.Fatalf("candidate (fanout %d, dist %d) should precede first (fanout %d, dist %d)",
				fanout(c.GUID), c.Dist, fanout(first.GUID), first.Dist)
		}
	}
	// MaxCandidates cap.
	capped := ComputePlan(r.res, r.tr, r.log, []*ir.Instr{trap.Instr}, PlanConfig{MaxCandidates: 2})
	if len(capped.Candidates) > 2 {
		t.Fatalf("cap ignored: %d", len(capped.Candidates))
	}
}

func TestServerPrecomputeAndMitigate(t *testing.T) {
	r := newRig(t, miniKV)
	srv := NewServer()
	srv.Precompute("minikv", r.mod)
	// Analysis instruments the module in place, so wait for it before
	// executing that module — the production order (the server precomputes
	// before the target starts serving).
	if _, err := srv.Analysis("minikv"); err != nil {
		t.Fatal(err)
	}

	r.m.Call("init_")
	r.m.Call("put", 0, 100)
	r.m.Call("evil", 777)
	_, trap := r.m.Call("get", 0)
	reexec := func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call("get", 0)
		return tp
	}
	rep, err := srv.Mitigate("minikv", DefaultConfig(), &Context{
		Trace: r.tr, Log: r.log, Pool: r.pool, Fault: trap.Instr, ReExec: reexec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("server-mediated mitigation failed: %v", rep)
	}
	if _, err := srv.Analysis("unknown"); err == nil {
		t.Fatal("unknown module analysis did not error")
	}
}
