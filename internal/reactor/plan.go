// Package reactor implements the Arthas reactor (paper §4.4–§4.7): given a
// fault instruction, it derives a reversion plan by slicing the static PDG,
// joining slice nodes with the dynamic PM address trace, and mapping the
// addresses to checkpoint-log sequence numbers; it then executes the plan by
// reverting entries and re-executing the target system until the failure
// disappears.
package reactor

import (
	"sort"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/trace"
)

// Candidate is one revertible checkpoint sequence number, annotated with the
// slice node that produced it.
type Candidate struct {
	Seq  uint64
	GUID int
	Dist int // slice distance of the producing node
	Addr uint64
}

// Plan is the ordered candidate list of §4.5. Order: nearest slice nodes
// first (dependency order), newest sequence numbers first within a node —
// so reversion walks backward along the dependency chain, most recent
// contamination first. Multiple fault instructions (Figure 4's "fault
// instruction(s)") contribute merged candidates.
type Plan struct {
	Faults     []*ir.Instr
	Slices     []*analysis.Slice
	Candidates []Candidate
}

// Empty reports whether the plan has nothing to revert — the "false alarm"
// signal that makes the reactor fall back to a plain restart (§4.5).
func (p *Plan) Empty() bool { return len(p.Candidates) == 0 }

// Seqs returns the candidate sequence numbers in plan order.
func (p *Plan) Seqs() []uint64 {
	out := make([]uint64, len(p.Candidates))
	for i, c := range p.Candidates {
		out[i] = c.Seq
	}
	return out
}

// PlanConfig tunes plan derivation.
type PlanConfig struct {
	// MaxDist caps the slice distance considered (0 = unlimited): the
	// "enforce a maximum distance with the fault instruction" policy.
	MaxDist int
	// MaxCandidates caps the final list size (0 = unlimited).
	MaxCandidates int
	// AddrFault marks the fault as an invalid-address trap, which makes
	// the slicer follow the fault's pointer dependencies rather than the
	// contents of the (unreachable) memory location.
	AddrFault bool
	// NaiveOrder disables the fan-out/recency candidate ordering and sorts
	// candidates purely by descending sequence number — the paper's
	// "default policy function sorts and de-duplicates" baseline. Used by
	// the ordering ablation benchmarks.
	NaiveOrder bool
}

// ComputePlan derives the reversion plan for one or more fault instructions.
func ComputePlan(res *analysis.Result, tr *trace.Trace, log *checkpoint.Log,
	faults []*ir.Instr, cfg PlanConfig) *Plan {

	plan := &Plan{Faults: faults}

	// Merge slice nodes across faults, keeping each instruction's minimum
	// distance to any fault.
	type nodeInfo struct {
		guid   int
		dist   int
		fanout int // distinct dynamic addresses this instruction touched
	}
	var merged []nodeInfo
	seenNode := map[*ir.Instr]int{} // instr -> index in merged
	for _, fault := range faults {
		if fault == nil {
			continue
		}
		slice := res.PDG.BackwardSliceOpts(fault, analysis.SliceOpts{AddrFault: cfg.AddrFault})
		if cfg.MaxDist > 0 {
			slice = slice.MaxDist(cfg.MaxDist)
		}
		pmSlice := slice.PMSlice()
		plan.Slices = append(plan.Slices, pmSlice)
		for _, n := range pmSlice.Nodes {
			if i, ok := seenNode[n.Instr]; ok {
				if n.Dist < merged[i].dist {
					merged[i].dist = n.Dist
				}
				continue
			}
			seenNode[n.Instr] = len(merged)
			merged = append(merged, nodeInfo{
				guid: n.Instr.GUID,
				dist: n.Dist,
				// Fan-out over ALL traced accesses (reads included): a
				// node that only ever touched one address is the most
				// specific suspect.
				fanout: len(tr.AddrsOfGUIDByRecency(n.Instr.GUID)),
			})
		}
	}
	// Order: most-specific nodes first. A slice node "may be invoked many
	// times while only some invocations are bad" (paper §6.4) — an
	// instruction that touched one address (a one-shot config write, a
	// special command) is a far more specific suspect than a hot-path
	// access aliasing hundreds of checkpoint entries, so low trace fan-out
	// leads; slice distance breaks ties (nearest dependencies first).
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].fanout != merged[j].fanout {
			return merged[i].fanout < merged[j].fanout
		}
		return merged[i].dist < merged[j].dist
	})

	seen := map[uint64]bool{}
	for _, node := range merged {
		// Gather this node's dynamic addresses in last-touch order (the
		// failing execution touched the contaminated state last), then
		// each address's checkpoint sequence numbers, newest first.
		for _, addr := range tr.AddrsOfGUIDByRecency(node.guid) {
			covering := log.SeqsCovering(addr)
			for i := len(covering) - 1; i >= 0; i-- {
				s := covering[i]
				if !seen[s] {
					seen[s] = true
					plan.Candidates = append(plan.Candidates,
						Candidate{Seq: s, GUID: node.guid, Dist: node.dist, Addr: addr})
				}
			}
		}
	}
	if cfg.NaiveOrder {
		sort.SliceStable(plan.Candidates, func(i, j int) bool {
			return plan.Candidates[i].Seq > plan.Candidates[j].Seq
		})
	}
	if cfg.MaxCandidates > 0 && len(plan.Candidates) > cfg.MaxCandidates {
		plan.Candidates = plan.Candidates[:cfg.MaxCandidates]
	}
	return plan
}
