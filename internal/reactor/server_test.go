package reactor

import (
	"sync"
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/trace"
	"arthas/internal/vm"
)

// Two simultaneous mitigations through one server must not interfere: the
// server fills the cached analysis into a per-call copy of the Context
// (never the caller's), so concurrent requests for distinct deployments
// are safe. Run under -race; a shared-Context regression shows up both as
// a detector report and as caller-visible mutation, checked below.
func TestServerConcurrentMitigations(t *testing.T) {
	srv := NewServer()
	// Two deployments of the SAME compiled module — the situation the
	// server's per-target analysis cache exists for.
	r0 := newRig(t, miniKV)
	r1 := &rig{mod: r0.mod, res: r0.res, pool: pmem.New(1 << 14), log: checkpoint.NewLog(3), tr: trace.New()}
	r1.pool.SetHooks(r1.log.Hooks())
	r1.boot()
	rigs := [2]*rig{r0, r1}
	srv.Precompute("minikv", r0.mod)
	// Analysis instruments the module in place; block until it settles
	// before executing that module (in production the server precomputes
	// before the target starts serving).
	if _, err := srv.Analysis("minikv"); err != nil {
		t.Fatal(err)
	}

	var ctxs [2]*Context
	for k, r := range rigs {
		r.m.Call("init_")
		r.m.Call("put", 0, 100+int64(k))
		r.m.Call("evil", 777)
		_, trap := r.m.Call("get", 0)
		if trap == nil {
			t.Fatalf("rig %d did not fail", k)
		}
		r := r
		reexec := func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("get", 0)
			return tp
		}
		ctxs[k] = &Context{Trace: r.tr, Log: r.log, Pool: r.pool, Fault: trap.Instr, ReExec: reexec}
	}

	var wg sync.WaitGroup
	var reps [2]*Report
	var errs [2]error
	for k := range rigs {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[k], errs[k] = srv.Mitigate("minikv", DefaultConfig(), ctxs[k])
		}()
	}
	wg.Wait()
	for k := range rigs {
		if errs[k] != nil {
			t.Fatalf("rig %d: %v", k, errs[k])
		}
		if !reps[k].Recovered {
			t.Fatalf("rig %d not recovered: %v", k, reps[k])
		}
		if ctxs[k].Analysis != nil {
			t.Fatalf("rig %d: server mutated the caller's Context", k)
		}
	}
}
