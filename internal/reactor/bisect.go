package reactor

import "arthas/internal/checkpoint"

// Binary-search reversion (the technical report's algorithm referenced in
// paper §6.4: "a binary search algorithm that reduces the sequence number
// set that we have to revert").
//
// When no single candidate heals the system, the failure needs a *set* of
// reversions. Walking candidates cumulatively one at a time (the default
// deeper rounds) both burns re-executions and over-discards. Instead,
// verify once that reverting the full candidate prefix heals, then binary
// search the shortest healing prefix; every probe runs against an isolated
// trial (the log state is restored between probes), so the search leaves
// exactly one reversion applied — the minimal healing prefix.

// bisectMitigate returns true when a healing prefix was found and left
// applied. It consumes re-execution attempts from the shared budget.
func bisectMitigate(cfg Config, ctx *Context, plan *Plan, rep *Report, attempts *int) bool {
	n := len(plan.Candidates)
	if n == 0 {
		return false
	}
	base := ctx.Log.CaptureState()

	// apply reverts the first m candidates, one version step per entry:
	// a prefix often contains several sequence numbers of the same entry,
	// and walking them all would discard deeper history than the search
	// is actually testing.
	apply := func(m int) {
		touched := map[*checkpoint.Entry]bool{}
		for _, cand := range plan.Candidates[:m] {
			if e := ctx.Log.EntryBySeq(cand.Seq); e != nil {
				if touched[e] {
					continue
				}
				touched[e] = true
			}
			revertCandidate(cfg, ctx, cand)
		}
	}
	// probe reverts the first m candidates on a clean slate and re-executes;
	// on failure the trial is rolled back.
	probe := func(m int) bool {
		if *attempts >= cfg.MaxAttempts {
			return false
		}
		apply(m)
		*attempts++
		trap := reExec(cfg, ctx, cfg.Mode.String(), rep)
		if trap == nil {
			return true
		}
		_ = ctx.Log.RestoreState(ctx.Pool, base)
		return false
	}

	// Does full reversion heal at all?
	if !probe(n) {
		return false
	}
	// It does — but it is applied. Roll back and search for the shortest
	// healing prefix.
	_ = ctx.Log.RestoreState(ctx.Pool, base)
	lo, hi := 1, n // invariant: prefix hi heals
	for lo < hi {
		if *attempts >= cfg.MaxAttempts {
			break
		}
		mid := (lo + hi) / 2
		if probe(mid) {
			hi = mid
			_ = ctx.Log.RestoreState(ctx.Pool, base)
		} else {
			lo = mid + 1
		}
	}
	// Apply the minimal prefix for real and confirm.
	apply(hi)
	*attempts++
	trap := reExec(cfg, ctx, cfg.Mode.String(), rep)
	if trap == nil {
		for _, cand := range plan.Candidates[:hi] {
			rep.RevertedSeqs = append(rep.RevertedSeqs, cand.Seq)
		}
		return true
	}
	_ = ctx.Log.RestoreState(ctx.Pool, base)
	return false
}
