package reactor

import (
	"testing"

	"arthas/internal/ir"
	"arthas/internal/vm"
)

// multiStore needs TWO reversions at once: two config slots are poisoned in
// one trigger, and the health check validates both. No single-candidate
// isolated trial can heal it — the shape the binary-search reversion is for.
const multiStore = `
fn init_() {
    var root = pmalloc(8);
    persist(root, 4);
    setroot(0, root);
    return 0;
}
fn seta(v) {
    var root = getroot(0);
    root[0] = v;
    persist(root + 0, 1);
    return 0;
}
fn setb(v) {
    var root = getroot(0);
    root[1] = v;
    persist(root + 1, 1);
    return 0;
}
fn check() {
    var root = getroot(0);
    assert(root[0] < 100);
    assert(root[1] < 100);
    return root[0] + root[1];
}
fn recover_() { return 0; }
`

func multiFail(t *testing.T) (*rig, *vm.Trap) {
	t.Helper()
	r := newRig(t, multiStore)
	r.m.Call("init_")
	r.m.Call("seta", 5)
	r.m.Call("setb", 6)
	r.m.Call("seta", 7)
	r.m.Call("setb", 8)
	// The bug poisons BOTH slots.
	r.m.Call("seta", 500)
	r.m.Call("setb", 600)
	_, trap := r.m.Call("check")
	if trap == nil || trap.Kind != vm.TrapAssert {
		t.Fatalf("trap = %v", trap)
	}
	return r, trap
}

func reexecFor(r *rig) func() *vm.Trap {
	return func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call("check")
		return tp
	}
}

func TestBisectFindsMinimalPrefix(t *testing.T) {
	r, trap := multiFail(t)
	cfg := DefaultConfig()
	cfg.Bisect = true
	cfg.FallbackToRollback = false
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: reexecFor(r),
	})
	if !rep.Recovered {
		t.Fatalf("bisect did not recover: %v", rep)
	}
	if rep.ModeUsed != ModePurge {
		t.Fatalf("mode = %v", rep.ModeUsed)
	}
	// Both slots healed.
	r.restart()
	v, tp := r.m.Call("check")
	if tp != nil {
		t.Fatal(tp)
	}
	if v != 7+8 {
		t.Fatalf("check = %d, want 15 (latest good values)", v)
	}
	// Bisect is economical: isolated-round singles (one per candidate,
	// across up to one re-plan) plus O(log n) search probes.
	if rep.Attempts > 40 {
		t.Fatalf("attempts = %d", rep.Attempts)
	}
}

func TestWithoutBisectCumulativeStillRecovers(t *testing.T) {
	r, trap := multiFail(t)
	cfg := DefaultConfig() // no bisect: falls to cumulative rounds
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: reexecFor(r),
	})
	if !rep.Recovered {
		t.Fatalf("cumulative rounds did not recover: %v", rep)
	}
}

func TestBisectGivesUpWhenFullReversionFails(t *testing.T) {
	r, trap := multiFail(t)
	cfg := DefaultConfig()
	cfg.Bisect = true
	cfg.FallbackToRollback = false
	alwaysFail := func() *vm.Trap { return &vm.Trap{Kind: vm.TrapUserFail, Code: 1} }
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: alwaysFail,
	})
	if rep.Recovered {
		t.Fatal("recovered against an always-failing probe")
	}
}

func TestCumulativeOnlyAblation(t *testing.T) {
	// With CumulativeOnly the isolated round is skipped; the miniKV case
	// still recovers via cumulative reverts, but (unlike isolated trials)
	// every attempted candidate's reversion sticks.
	r := newRig(t, miniKV)
	r.m.Call("init_")
	for i := int64(0); i < 10; i++ {
		r.m.Call("put", i, 100+i)
	}
	r.m.Call("evil", 777)
	_, trap := r.m.Call("get", 0)
	cfg := DefaultConfig()
	cfg.CumulativeOnly = true
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, AddrFault: true,
		ReExec: func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("get", 0)
			return tp
		},
	})
	if !rep.Recovered {
		t.Fatalf("cumulative-only failed: %v", rep)
	}
}

func TestNaiveOrderAblation(t *testing.T) {
	// Naive (pure seq-descending) ordering must still be usable; it may
	// cost more attempts but the plan contents are identical.
	r, trap := multiFail(t)
	cfg := DefaultConfig()
	cfg.Plan.NaiveOrder = true
	rep := Mitigate(cfg, &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, ReExec: reexecFor(r),
	})
	if !rep.Recovered {
		t.Fatalf("naive ordering failed: %v", rep)
	}
	// Candidates sorted by descending seq.
	plan := ComputePlan(r.res, r.tr, r.log, []*ir.Instr{trap.Instr}, PlanConfig{NaiveOrder: true})
	for i := 1; i < len(plan.Candidates); i++ {
		if plan.Candidates[i].Seq > plan.Candidates[i-1].Seq {
			t.Fatal("naive order not seq-descending")
		}
	}
}
