package reactor

import (
	"fmt"
	"strings"
	"time"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/obs"
	"arthas/internal/pmem"
	"arthas/internal/trace"
	"arthas/internal/vm"
)

// Mode selects the reversion strategy (paper §4.4).
type Mode int

// Reversion modes.
const (
	// ModePurge reverts only the candidate entries (plus transaction
	// siblings and forward-dependent entries) — minimal data loss, small
	// risk of semantic inconsistency.
	ModePurge Mode = iota
	// ModeRollback additionally reverts every checkpoint entry newer than
	// the chosen one — strict time order, conservative.
	ModeRollback
)

func (m Mode) String() string {
	if m == ModePurge {
		return "purge"
	}
	return "rollback"
}

// Config tunes the reactor.
type Config struct {
	Mode Mode
	// Batch reverts this many candidates between re-executions
	// (1 = one-by-one, the default; §6.5 evaluates 5).
	Batch int
	// MaxAttempts bounds re-execution attempts (the paper's 10-minute
	// timeout analogue). Default 128.
	MaxAttempts int
	// Plan derivation knobs.
	Plan PlanConfig
	// FallbackToRollback switches from purge to rollback when purging
	// exhausts its attempts or re-execution hits recovery assertions
	// (§4.5). Default true (set by New).
	FallbackToRollback bool
	// Bisect enables the technical report's binary-search reversion: when
	// no isolated single candidate heals, search for the shortest healing
	// candidate prefix in O(log n) re-executions instead of cumulative
	// one-at-a-time walking.
	Bisect bool
	// CumulativeOnly disables the isolated-trial round so every reversion
	// accumulates (the paper's literal multi-attempt semantics). Used by
	// the ablation benchmarks.
	CumulativeOnly bool
	// Workers sets the speculative-mitigation parallelism: when > 1 and the
	// Context supplies ForkSession, isolated candidate trials (and bisect
	// probes) run concurrently on copy-on-write forks, with the winner
	// chosen by plan order — not wall-clock order — so outcomes match the
	// sequential search at any worker count. <= 1 (the default) keeps the
	// exact sequential path. See docs/PARALLEL_MITIGATION.md.
	Workers int
	// ScrubRetries bounds how many times a re-execution probe that traps on
	// media corruption is retried after running the scrubber (Context.Scrub).
	// Scrub retries are NOT charged as mitigation attempts: the medium lied,
	// not the data, so they must not burn the reversion budget. 0 means the
	// default (3); negative disables scrub-then-retry.
	ScrubRetries int
	// ScrubBackoff is the base delay before each scrub retry, doubled per
	// retry (bounded exponential backoff). 0 (the default) retries
	// immediately — deterministic for tests; deployments model device
	// recovery latency with it.
	ScrubBackoff time.Duration
}

// DefaultConfig returns the paper-default reactor configuration.
func DefaultConfig() Config {
	return Config{Mode: ModePurge, Batch: 1, MaxAttempts: 128, FallbackToRollback: true}
}

// Context carries everything the reactor needs about the failed system.
type Context struct {
	Analysis *analysis.Result
	Trace    *trace.Trace
	Log      *checkpoint.Log
	Pool     *pmem.Pool
	// Fault is the fault instruction the detector identified. For
	// failures without a trapping instruction (data loss, wrong results),
	// use Faults with the serving function's result instructions instead.
	Fault *ir.Instr
	// Faults optionally supplies multiple fault instructions (Figure 4's
	// "fault instruction(s)"); merged with Fault.
	Faults []*ir.Instr
	// AddrFault marks the failure as an invalid-address trap at Fault
	// (segfault); the slicer then follows pointer rather than content
	// dependencies at the fault node.
	AddrFault bool
	// ReExec restarts the target system against the (possibly reverted)
	// pool, runs its recovery path and the failure probe, and returns nil
	// when the system is healthy — the paper's re-execution script.
	ReExec func() *vm.Trap
	// Scrub, when set, runs a media-scrub pass over the pool (internal/scrub
	// backed by the checkpoint log) and returns nil when the pool verifies
	// afterwards. Re-execution probes trapping on media corruption invoke it
	// and retry — see Config.ScrubRetries. Nil disables scrub-then-retry
	// (media-corrupt probes then fail like any other trap).
	Scrub func() error
	// MediaSuspect, when set alongside Scrub, is the detector's media
	// monitor (a full checksum scan). Mitigate consults it once up front:
	// corruption can surface as ANY failure kind — a poisoned pointer
	// segfaults long before any load touches the poisoned block — so a
	// positive check runs one scrub pass before reversion planning.
	MediaSuspect func() bool
	// ForkSession, when set, creates an isolated speculative session — a
	// copy-on-write fork of the pool, a fork of the checkpoint log wired to
	// it, and a re-execution script bound to the fork — enabling the
	// parallel search when Config.Workers > 1. Must be safe to call from
	// multiple goroutines. Nil keeps mitigation sequential.
	ForkSession func() (*Session, error)
	// Obs receives mitigation telemetry: one span per reversion attempt
	// (candidate seq, mode, versions discarded) and one per re-execution
	// (outcome). Nil disables.
	Obs obs.Sink
}

// Session is one isolated speculative trial environment: a forked pool, a
// forked checkpoint log feeding it, and a re-execution script targeting the
// fork. On the winning trial the reactor promotes Pool onto its base and
// the main log adopts Log; losing sessions are dropped (Close, if set, runs
// either way).
type Session struct {
	Pool   *pmem.Pool
	Log    *checkpoint.Log
	ReExec func() *vm.Trap
	// Close releases session resources (optional).
	Close func()
}

// Report summarizes a mitigation.
type Report struct {
	Recovered bool
	// RestartOnly is set when the plan was empty and a plain restart was
	// attempted instead (suspected soft failure / detector false alarm).
	RestartOnly bool
	Attempts    int // re-executions performed
	// AttemptsByMode splits Attempts by strategy: "purge", "rollback", and
	// "restart" (plain restarts when the plan was empty).
	AttemptsByMode map[string]int
	// TotalVersions snapshots the checkpoint log's lifetime version count
	// at mitigation end, so data loss renders without the log in hand.
	TotalVersions uint64
	// RevertedVersions counts checkpoint versions discarded.
	RevertedVersions int
	RevertedSeqs     []uint64
	CandidateCount   int
	ModeUsed         Mode
	FellBack         bool
	// Replans counts re-planning passes triggered by re-execution failing
	// at a new fault instruction.
	Replans int
	// ScrubRepairs counts scrub-then-retry passes run because a probe
	// trapped on media corruption. These are not mitigation attempts.
	ScrubRepairs int
	Duration     time.Duration
	LastTrap     *vm.Trap
	// Plan is the final reversion plan tried (candidates in trial order);
	// incident reports cite it as per-candidate evidence.
	Plan *Plan
}

// DataLossPct returns discarded updates as a percentage of all updates the
// checkpoint log ever recorded (Figure 9's metric).
func (r *Report) DataLossPct(log *checkpoint.Log) float64 {
	total := log.TotalVersions()
	if total == 0 {
		return 0
	}
	return 100 * float64(r.RevertedVersions) / float64(total)
}

func (r *Report) String() string {
	status := "FAILED"
	if r.Recovered {
		status = "recovered"
	}
	s := fmt.Sprintf("%s mode=%v attempts=%d", status, r.ModeUsed, r.Attempts)
	if len(r.AttemptsByMode) > 0 {
		var parts []string
		for _, m := range []string{"purge", "rollback", "restart"} {
			if n := r.AttemptsByMode[m]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", m, n))
			}
		}
		if len(parts) > 0 {
			s += " [" + strings.Join(parts, " ") + "]"
		}
	}
	s += fmt.Sprintf(" reverted=%d", r.RevertedVersions)
	if r.TotalVersions > 0 {
		s += fmt.Sprintf(" dataloss=%.1f%%",
			100*float64(r.RevertedVersions)/float64(r.TotalVersions))
	}
	s += fmt.Sprintf(" candidates=%d fellback=%v", r.CandidateCount, r.FellBack)
	return s
}

// reExec runs one re-execution probe, charging it to the report's total and
// per-mode attempt counts and emitting a reactor.reexec span whose outcome
// attribute is "recovered" or the trap kind.
//
// A probe that traps on media corruption is not a failed mitigation attempt:
// the medium lied, not the reverted data. When the context supplies a Scrub
// hook, the probe scrubs and retries under a bounded exponential-backoff
// budget (cfg.ScrubRetries/ScrubBackoff) without charging extra attempts.
func reExec(cfg Config, ctx *Context, mode string, rep *Report) *vm.Trap {
	rep.Attempts++
	if rep.AttemptsByMode == nil {
		rep.AttemptsByMode = map[string]int{}
	}
	rep.AttemptsByMode[mode]++
	span := obs.OrNop(ctx.Obs).Start("reactor.reexec",
		obs.A("mode", mode), obs.A("attempt", rep.Attempts))
	trap := ctx.ReExec()
	if ctx.Scrub != nil && cfg.ScrubRetries >= 0 {
		retries := cfg.ScrubRetries
		if retries == 0 {
			retries = 3
		}
		for r := 0; trap != nil && trap.Kind == vm.TrapMediaCorrupt && r < retries; r++ {
			if cfg.ScrubBackoff > 0 {
				time.Sleep(cfg.ScrubBackoff << uint(r))
			}
			sspan := obs.OrNop(ctx.Obs).Start("reactor.scrub", obs.A("retry", r))
			err := ctx.Scrub()
			sspan.End()
			if err != nil {
				break
			}
			rep.ScrubRepairs++
			trap = ctx.ReExec()
		}
	}
	rep.LastTrap = trap
	if trap == nil {
		span.SetAttr("outcome", "recovered")
	} else {
		span.SetAttr("outcome", trap.Kind.String())
	}
	span.End()
	return trap
}

// Mitigate runs the full §4.5 workflow: derive the plan, then revert and
// re-execute until the failure disappears or budgets run out.
func Mitigate(cfg Config, ctx *Context) *Report {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 128
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	start := time.Now()
	startReverted := ctx.Log.RevertedVersions()
	rep := &Report{ModeUsed: cfg.Mode}
	mitSpan := obs.OrNop(ctx.Obs).Start("reactor.mitigate", obs.A("mode", cfg.Mode.String()))
	defer func() {
		rep.Duration = time.Since(start)
		if end := ctx.Log.RevertedVersions(); end > startReverted {
			rep.RevertedVersions = int(end - startReverted)
		} else {
			rep.RevertedVersions = 0
		}
		rep.TotalVersions = ctx.Log.TotalVersions()
		mitSpan.SetAttr("recovered", rep.Recovered)
		mitSpan.SetAttr("attempts", rep.Attempts)
		mitSpan.SetAttr("reverted_versions", rep.RevertedVersions)
		mitSpan.End()
	}()

	// Media pre-check: when the detector's checksum monitor flags the pool,
	// heal the media first — corruption reached through a poisoned pointer
	// traps as a plain segfault, never as media-corrupt, and no amount of
	// reversion repairs words the checkpoint hooks never saw change. The
	// pass is not charged against the attempt budget.
	if ctx.Scrub != nil && ctx.MediaSuspect != nil && cfg.ScrubRetries >= 0 && ctx.MediaSuspect() {
		sspan := obs.OrNop(ctx.Obs).Start("reactor.scrub", obs.A("retry", 0))
		err := ctx.Scrub()
		sspan.End()
		if err == nil {
			rep.ScrubRepairs++
		}
	}

	planCfg := cfg.Plan
	planCfg.AddrFault = planCfg.AddrFault || ctx.AddrFault
	faults := ctx.Faults
	if ctx.Fault != nil {
		faults = append([]*ir.Instr{ctx.Fault}, faults...)
	}

	// Mitigation may surface a NEW fault instruction: reverting the state
	// behind the first symptom exposes the next one (two poisoned fields,
	// two asserts). The detector→reactor pipeline re-triggers on each
	// failure, so re-plan with the union of fault instructions — bounded,
	// since each re-plan adds a fresh instruction.
	const maxReplans = 3
	for replan := 0; ; replan++ {
		planSpan := obs.OrNop(ctx.Obs).Start("reactor.plan", obs.A("replan", replan))
		plan := ComputePlan(ctx.Analysis, ctx.Trace, ctx.Log, faults, planCfg)
		rep.CandidateCount = len(plan.Candidates)
		rep.Plan = plan
		planSpan.SetAttr("candidates", len(plan.Candidates))
		planSpan.End()

		if plan.Empty() {
			// Not caused by bad PM values: "the reactor then safely aborts
			// and resorts to simple restart" (§4.5).
			rep.RestartOnly = true
			trap := reExec(cfg, ctx, "restart", rep)
			rep.Recovered = trap == nil
			return rep
		}

		mcfg := cfg
		if mitigateWithMode(mcfg, ctx, plan, rep) {
			rep.Recovered = true
			return rep
		}
		if cfg.Mode == ModePurge && cfg.FallbackToRollback {
			// Purge could not stabilize the system: undo its reversions
			// (the data is all still in the checkpoint log) and switch to
			// the conservative rollback mode (§4.5).
			_ = ctx.Log.RestoreNewest(ctx.Pool)
			rep.FellBack = true
			rep.ModeUsed = ModeRollback
			mcfg.Mode = ModeRollback
			if mitigateWithMode(mcfg, ctx, plan, rep) {
				rep.Recovered = true
				return rep
			}
		}
		lt := rep.LastTrap
		if replan >= maxReplans || lt == nil || lt.Instr == nil || containsInstr(faults, lt.Instr) {
			return rep
		}
		_ = ctx.Log.RestoreNewest(ctx.Pool)
		faults = append(faults, lt.Instr)
		rep.Replans++
		rep.FellBack = false
		rep.ModeUsed = cfg.Mode
	}
}

func containsInstr(xs []*ir.Instr, in *ir.Instr) bool {
	for _, x := range xs {
		if x == in {
			return true
		}
	}
	return false
}

// mitigateWithMode runs reversion rounds under one mode. Returns true when a
// re-execution comes back healthy. Multiple rounds walk entries down through
// their older versions (the "retries reversion to an older version v-2
// until the max versions are exhausted" loop). MaxAttempts budgets each
// mode separately, so the rollback fallback gets a fresh budget after purge
// exhausts its tries (§4.5).
func mitigateWithMode(cfg Config, ctx *Context, plan *Plan, rep *Report) bool {
	maxRounds := ctx.Log.MaxVersions
	if maxRounds <= 0 {
		maxRounds = 1
	}
	attempts := 0
	if cfg.Mode == ModeRollback {
		// Resync pre-pass: before discarding any history, try the minimal
		// rollback — restoring the candidates' last checkpointed state —
		// which alone repairs out-of-band corruption (hardware faults).
		fixedAny := false
		for _, cand := range plan.Candidates {
			if n, err := ctx.Log.Resync(ctx.Pool, cand.Seq); err == nil && n > 0 {
				fixedAny = true
			}
		}
		if fixedAny {
			if attempts >= cfg.MaxAttempts {
				return false
			}
			attempts++
			if reExec(cfg, ctx, cfg.Mode.String(), rep) == nil {
				return true
			}
		}
	}

	// Round 0: ISOLATED trials. Each candidate (or batch) is reverted on a
	// clean slate — the log state is captured before and restored after a
	// failed probe — so an unsuccessful trial cannot destroy state that a
	// later candidate's fix (or the probe itself) depends on. A single
	// reverted candidate is also the minimal possible data loss, which is
	// the design goal (§3).
	if !cfg.CumulativeOnly {
		isolatedRound := func(batch int) (bool, bool) {
			for start := 0; start < len(plan.Candidates); start += batch {
				if attempts >= cfg.MaxAttempts {
					return false, true
				}
				end := start + batch
				if end > len(plan.Candidates) {
					end = len(plan.Candidates)
				}
				st := ctx.Log.CaptureState()
				// One version step per entry within a batch: a batch
				// often holds several sequence numbers of the same entry,
				// and walking them all would test a deeper state than
				// intended (and discard more than the trial needs).
				touched := map[*checkpoint.Entry]bool{}
				for _, cand := range plan.Candidates[start:end] {
					if e := ctx.Log.EntryBySeq(cand.Seq); e != nil {
						if touched[e] {
							continue
						}
						touched[e] = true
					}
					revertCandidate(cfg, ctx, cand)
				}
				attempts++
				trap := reExec(cfg, ctx, cfg.Mode.String(), rep)
				if trap == nil {
					for _, cand := range plan.Candidates[start:end] {
						rep.RevertedSeqs = append(rep.RevertedSeqs, cand.Seq)
					}
					return true, false
				}
				if err := ctx.Log.RestoreState(ctx.Pool, st); err != nil {
					return false, true
				}
			}
			return false, false
		}
		round := func(batch int) (bool, bool) {
			if canSpeculate(cfg, ctx) {
				return parallelIsolatedRound(cfg, ctx, plan, rep, batch, &attempts)
			}
			return isolatedRound(batch)
		}
		healed, exhausted := round(cfg.Batch)
		if healed {
			return true
		}
		if !exhausted && cfg.Batch > 1 {
			// Batching can overshoot: the single-candidate state that
			// heals is never tested at batch granularity. Retry the
			// isolated trials one candidate at a time before escalating.
			if healed, _ := round(1); healed {
				return true
			}
		}
	}

	// Round 1: optional binary-search reversion (the technical report's
	// algorithm): when no single candidate heals, find the shortest
	// healing candidate prefix in O(log n) re-executions.
	if cfg.Bisect {
		if canSpeculate(cfg, ctx) {
			if parallelBisect(cfg, ctx, plan, rep, &attempts) {
				return true
			}
		} else if bisectMitigate(cfg, ctx, plan, rep, &attempts) {
			return true
		}
	}

	// Rounds 2..N: cumulative reversion, walking entries down through their
	// older versions (the "retries reversion to an older version v-2 until
	// the max versions are exhausted" loop).
	for round := 0; round < maxRounds; round++ {
		progressed := false
		pending := 0
		for i, cand := range plan.Candidates {
			if attempts >= cfg.MaxAttempts {
				return false
			}
			n := revertCandidate(cfg, ctx, cand)
			if n > 0 {
				progressed = true
				rep.RevertedSeqs = append(rep.RevertedSeqs, cand.Seq)
			}
			pending++
			// Re-execute after each batch (or at the end of the list).
			if pending < cfg.Batch && i != len(plan.Candidates)-1 {
				continue
			}
			pending = 0
			attempts++
			if reExec(cfg, ctx, cfg.Mode.String(), rep) == nil {
				return true
			}
		}
		if !progressed {
			// Every entry is already at its oldest version; more rounds
			// cannot help.
			return false
		}
	}
	return false
}

// revertCandidate applies one candidate under the configured mode and
// returns the number of checkpoint versions discarded.
func revertCandidate(cfg Config, ctx *Context, cand Candidate) (reverted int) {
	if obs.Enabled(ctx.Obs) {
		span := ctx.Obs.Start("reactor.revert",
			obs.A("seq", cand.Seq), obs.A("guid", cand.GUID),
			obs.A("mode", cfg.Mode.String()))
		defer func() {
			span.SetAttr("reverted_versions", reverted)
			span.End()
		}()
	}
	if cfg.Mode == ModeRollback {
		n, err := ctx.Log.RevertAllAfter(ctx.Pool, cand.Seq)
		if err != nil {
			return 0
		}
		return n
	}
	// Purge mode: the candidate (+ its transaction), then the forward pass.
	n, err := ctx.Log.RevertSeqAndTx(ctx.Pool, cand.Seq)
	if err != nil {
		return 0
	}
	if n > 0 {
		// Only a revert that actually changed state can make forward-
		// dependent state inconsistent.
		n += purgeForward(ctx, cand)
	}
	return n
}

// purgeForward implements the purge-mode second pass (§4.4): after reverting
// an update, revert the newer checkpoint entries of its DIRECT dependents
// too, keeping dependent state mutually consistent (the paper's example:
// after reverting t5, the directly-influenced t7 is purged as well). The
// pass is deliberately one hop — the transitive closure of an early update
// reaches essentially the whole execution.
func purgeForward(ctx *Context, cand Candidate) int {
	src := ctx.Analysis.InstrByGUID(cand.GUID)
	if src == nil {
		return 0
	}
	direct := append([]*ir.Instr(nil), ctx.Analysis.PDG.DataSuccs[src]...)
	direct = append(direct, ctx.Analysis.PDG.MemSuccs[src]...)
	total := 0
	for _, in := range direct {
		if in == src || in.GUID == 0 {
			continue
		}
		for _, addr := range ctx.Trace.AddrsOfGUID(in.GUID) {
			for _, s := range ctx.Log.SeqsCovering(addr) {
				if s > cand.Seq {
					n, err := ctx.Log.Revert(ctx.Pool, s)
					if err == nil {
						total += n
					}
				}
			}
		}
	}
	return total
}
