package reactor

import (
	"testing"

	"arthas/internal/vm"
)

// nativeKV persists through clwb/sfence-style flush+fence instead of the
// library persist API — the paper's second supported PM framework class
// (§3.2). The checkpoint hooks fire at the fence, so the whole Arthas
// workflow (trace → slice → revert) applies unchanged.
const nativeKV = `
fn init_() {
    var root = pmalloc(4);
    var buf = pmalloc(16);
    root[0] = buf;
    root[1] = 16;
    flush(root, 2);
    fence();
    setroot(0, root);
    return 0;
}
fn put(i, v) {
    var root = getroot(0);
    var buf = root[0];
    buf[i % 16] = v;
    flush(buf + (i % 16), 1);
    fence();
    return 0;
}
fn get(i) {
    var root = getroot(0);
    var buf = root[0];
    return buf[i % 16];
}
fn corrupt(v) {
    var root = getroot(0);
    var tmp = v * 13;
    root[0] = tmp;         // bad persistent pointer...
    flush(root, 2);
    fence();               // ...made durable natively
    return 0;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var c = root[1];
    recover_end();
    return c;
}
`

func TestNativePersistenceRecovery(t *testing.T) {
	r := newRig(t, nativeKV)
	if _, trap := r.m.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 16; i++ {
		if _, trap := r.m.Call("put", i, 500+i); trap != nil {
			t.Fatal(trap)
		}
	}
	r.m.Call("corrupt", 999)
	_, trap := r.m.Call("get", 0)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
	// Hard: recurs across restart (the corruption was fenced).
	r.restart()
	if _, tp := r.m.Call("get", 0); tp == nil {
		t.Fatal("failure did not recur")
	}

	rep := Mitigate(DefaultConfig(), &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, AddrFault: true,
		ReExec: func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("get", 0)
			return tp
		},
	})
	if !rep.Recovered {
		t.Fatalf("native-persistence fault not recovered: %v (last %v)", rep, rep.LastTrap)
	}
	// Independent natively-persisted data survives.
	r.restart()
	for i := int64(0); i < 16; i++ {
		v, tp := r.m.Call("get", i)
		if tp != nil || v != 500+i {
			t.Fatalf("get(%d) = %d (%v)", i, v, tp)
		}
	}
}
