package reactor

import (
	"sync"
	"sync/atomic"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/vm"
)

// Parallel speculative mitigation (docs/PARALLEL_MITIGATION.md).
//
// The sequential search tries one candidate reversion at a time against the
// single live pool, so mitigation latency is O(plan) re-executions. With
// Config.Workers > 1 and Context.ForkSession available, isolated trials run
// concurrently instead: each trial reverts and re-executes on its own
// copy-on-write pool fork + checkpoint-log fork, the winner is the trial
// with the LOWEST plan index whose probe comes back healthy (never the
// first to finish in wall-clock), its fork is promoted onto the real pool,
// and one confirmation re-execution runs on the real session. Attempt
// charging is by plan order — failed trials below the winner plus the
// confirmation — so Report outcomes are identical at any worker count.
//
// Per-worker telemetry: a Recorder's span stack assumes single-goroutine
// nesting, so each trial records into a private Recorder; after the round
// joins, the recorders replay into the session sink in trial order (again:
// deterministic, not completion order) with their spans marked
// speculative=true.

// canSpeculate reports whether the parallel search is enabled and possible.
func canSpeculate(cfg Config, ctx *Context) bool {
	return cfg.Workers > 1 && ctx.ForkSession != nil
}

// sessionContext aims a Context at a speculative session. The fork runs
// dark at the pool/log layer (forks carry the no-op sink) and records
// reactor-level spans into the worker's private sink.
func sessionContext(ctx *Context, s *Session, sink obs.Sink) *Context {
	return &Context{
		Analysis:  ctx.Analysis,
		Trace:     ctx.Trace,
		Log:       s.Log,
		Pool:      s.Pool,
		Fault:     ctx.Fault,
		Faults:    ctx.Faults,
		AddrFault: ctx.AddrFault,
		ReExec:    s.ReExec,
		Obs:       sink,
	}
}

// specResult is one speculative trial's outcome.
type specResult struct {
	ran    bool
	healed bool
	sess   *Session
	rec    *obs.Recorder
	trap   *vm.Trap
}

// runSpeculative executes n trials on up to cfg.Workers goroutines. Each
// trial forks a session, applies its reversions via apply(i, sctx), and
// probes once. With firstWins, workers skip trials whose index exceeds an
// already-healed lower index (cooperative cancellation: such trials can no
// longer win); trials below the eventual winner always run, keeping the
// attempt accounting deterministic. Without firstWins every trial runs
// (bisect rounds need all outcomes).
func runSpeculative(cfg Config, ctx *Context, n int, mode string, apply func(i int, sctx *Context), firstWins bool) []specResult {
	results := make([]specResult, n)
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	var best atomic.Int64
	best.Store(int64(n))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if firstWins && int64(i) > best.Load() {
					continue
				}
				sess, err := ctx.ForkSession()
				if err != nil {
					continue
				}
				r := &results[i]
				r.sess = sess
				r.rec = obs.NewRecorder()
				r.ran = true
				sctx := sessionContext(ctx, sess, r.rec)
				apply(i, sctx)
				span := r.rec.Start("reactor.reexec",
					obs.A("mode", mode), obs.A("speculative", true),
					obs.A("trial", i), obs.A("worker", worker))
				r.trap = sctx.ReExec()
				if r.trap == nil {
					span.SetAttr("outcome", "recovered")
					r.healed = true
					for {
						cur := best.Load()
						if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				} else {
					span.SetAttr("outcome", r.trap.Kind.String())
				}
				span.End()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// settleSpeculative replays every trial's telemetry into the session sink in
// trial order and closes all sessions. Call after any promotion/adoption of
// the winner — a closed session must no longer be used.
func settleSpeculative(ctx *Context, results []specResult) {
	sink := obs.OrNop(ctx.Obs)
	for i := range results {
		if results[i].rec != nil {
			obs.ReplayInto(sink, results[i].rec)
		}
	}
	for i := range results {
		if s := results[i].sess; s != nil && s.Close != nil {
			s.Close()
		}
	}
}

// chargeAttempts books k re-execution attempts against the budget and report.
func chargeAttempts(k int, mode string, rep *Report, attempts *int) {
	*attempts += k
	rep.Attempts += k
	if rep.AttemptsByMode == nil {
		rep.AttemptsByMode = map[string]int{}
	}
	rep.AttemptsByMode[mode] += k
}

// applyBatch reverts plan candidates [start, end) on sctx, one version step
// per entry (same dedup rule as the sequential isolated round).
func applyBatch(cfg Config, sctx *Context, plan *Plan, start, end int) {
	touched := map[*checkpoint.Entry]bool{}
	for _, cand := range plan.Candidates[start:end] {
		if e := sctx.Log.EntryBySeq(cand.Seq); e != nil {
			if touched[e] {
				continue
			}
			touched[e] = true
		}
		revertCandidate(cfg, sctx, cand)
	}
}

// parallelIsolatedRound is the speculative isolated-trials round: each
// candidate batch is reverted and probed on its own fork, Workers at a time.
// The winner's fork is promoted onto the real pool, the main log adopts the
// fork's log, and one confirmation re-execution runs on the real session —
// the charged winning attempt, which also reboots the live machine against
// the promoted state. Total attempts charged (failed trials below the
// winner + the confirmation) equal the sequential search's exactly.
func parallelIsolatedRound(cfg Config, ctx *Context, plan *Plan, rep *Report, batch int, attempts *int) (healed, exhausted bool) {
	n := len(plan.Candidates)
	trials := (n + batch - 1) / batch
	budget := cfg.MaxAttempts - *attempts
	if budget <= 0 {
		return false, true
	}
	runnable := trials
	if runnable > budget {
		runnable = budget
	}
	mode := cfg.Mode.String()
	results := runSpeculative(cfg, ctx, runnable, mode, func(i int, sctx *Context) {
		end := (i + 1) * batch
		if end > n {
			end = n
		}
		applyBatch(cfg, sctx, plan, i*batch, end)
	}, true)

	winner := -1
	for i := range results {
		if results[i].healed {
			winner = i
			break
		}
	}
	if winner < 0 {
		ran := 0
		for i := range results {
			if results[i].ran {
				ran++
			}
		}
		// Sequentially the last failed probe's trap would be the last seen;
		// preserve that for the replanning heuristic.
		for i := len(results) - 1; i >= 0; i-- {
			if results[i].trap != nil {
				rep.LastTrap = results[i].trap
				break
			}
		}
		settleSpeculative(ctx, results)
		chargeAttempts(ran, mode, rep, attempts)
		return false, runnable < trials
	}

	// Promote the winning fork, then settle (telemetry replay + close).
	chargeAttempts(winner, mode, rep, attempts)
	sess := results[winner].sess
	promoteErr := sess.Pool.Promote()
	if promoteErr == nil {
		ctx.Log.Adopt(sess.Log)
	}
	settleSpeculative(ctx, results)
	if promoteErr != nil {
		return false, false
	}
	// Confirm on the real session: the charged winning attempt.
	*attempts++
	if trap := reExec(cfg, ctx, mode, rep); trap != nil {
		// The VM is deterministic, so a confirmed divergence means the
		// promotion itself is broken — report not healed; the adopted
		// log/pool pair is still consistent, so later phases continue.
		return false, false
	}
	end := (winner + 1) * batch
	if end > n {
		end = n
	}
	for _, cand := range plan.Candidates[winner*batch : end] {
		rep.RevertedSeqs = append(rep.RevertedSeqs, cand.Seq)
	}
	return true, false
}

// parallelBisect is the speculative version of bisectMitigate: instead of
// probing one prefix midpoint per round, it probes up to Workers prefix
// lengths concurrently (each on its own fork) and narrows [lo, hi] by the
// smallest healing and largest failing sampled points. Under the same
// monotonicity assumption the sequential binary search makes, it converges
// to the same minimal healing prefix; probe points depend only on the
// interval and the worker count, so the outcome is deterministic for a
// given -workers setting. The final application + confirmation run on the
// real session, exactly like the sequential algorithm's tail.
func parallelBisect(cfg Config, ctx *Context, plan *Plan, rep *Report, attempts *int) bool {
	n := len(plan.Candidates)
	if n == 0 {
		return false
	}
	mode := cfg.Mode.String()

	// probeSet probes each prefix length on its own fork, concurrently.
	// Every probe charges one attempt.
	probeSet := func(pts []int) []bool {
		results := runSpeculative(cfg, ctx, len(pts), mode, func(i int, sctx *Context) {
			applyBatch(cfg, sctx, plan, 0, pts[i])
		}, false)
		healed := make([]bool, len(pts))
		ran := 0
		for i := range results {
			healed[i] = results[i].healed
			if results[i].ran {
				ran++
			}
		}
		settleSpeculative(ctx, results)
		chargeAttempts(ran, mode, rep, attempts)
		return healed
	}

	lo, hi := 1, n
	confirmed := false // becomes true once some sampled prefix healed
	for {
		if *attempts >= cfg.MaxAttempts {
			break
		}
		top := hi
		if confirmed {
			top = hi - 1 // hi already known to heal; re-probing wastes a slot
		}
		if top < lo {
			break
		}
		k := cfg.Workers
		if rem := cfg.MaxAttempts - *attempts; k > rem {
			k = rem
		}
		pts := splitPoints(lo, top, k)
		healed := probeSet(pts)
		win, lastFail := 0, 0
		for i, m := range pts {
			if healed[i] {
				win = m
				break
			}
			lastFail = m
		}
		if win == 0 {
			if !confirmed {
				// The sample included the full prefix (top == hi == n) and
				// even that does not heal: give up, like the sequential
				// algorithm's failed probe(n).
				return false
			}
			lo = pts[len(pts)-1] + 1
			if lo >= hi {
				break // hi is the minimal healing prefix
			}
			continue
		}
		hi = win
		confirmed = true
		if lastFail > 0 {
			lo = lastFail + 1
		}
		if lo >= hi {
			break
		}
	}
	if !confirmed || *attempts >= cfg.MaxAttempts {
		return false
	}

	// Apply the minimal prefix for real and confirm — the sequential tail.
	base := ctx.Log.CaptureState()
	applyBatch(cfg, ctx, plan, 0, hi)
	*attempts++
	if trap := reExec(cfg, ctx, mode, rep); trap == nil {
		for _, cand := range plan.Candidates[:hi] {
			rep.RevertedSeqs = append(rep.RevertedSeqs, cand.Seq)
		}
		return true
	}
	_ = ctx.Log.RestoreState(ctx.Pool, base)
	return false
}

// splitPoints returns up to k evenly spaced integers in [lo, hi], ascending
// and deduplicated, always including hi.
func splitPoints(lo, hi, k int) []int {
	if k < 1 {
		k = 1
	}
	span := hi - lo + 1
	if k > span {
		k = span
	}
	pts := make([]int, 0, k)
	for i := 1; i <= k; i++ {
		m := lo - 1 + span*i/k
		if len(pts) == 0 || m > pts[len(pts)-1] {
			pts = append(pts, m)
		}
	}
	return pts
}
