package reactor

import (
	"testing"

	"arthas/internal/vm"
)

// txStore commits semantically-paired fields through libpmemobj-style
// transactions. The §4.6 guarantee under test: when the reactor reverts one
// checkpoint entry of a transaction, it reverts the whole transaction, so a
// recovered system never holds half a commit.
const txStore = `
fn init_() {
    var root = pmalloc(8);
    txbegin();
    root[0] = 1;    // balance A
    root[4] = 1;    // balance B, non-adjacent (invariant: A + B == 2)
    txcommit();
    setroot(0, root);
    return 0;
}

// transfer moves amount from A to B atomically.
fn transfer(amount) {
    var root = getroot(0);
    txbegin();
    root[0] = root[0] - amount;
    root[4] = root[4] + amount;
    txcommit();
    return 0;
}

// The bug: a special amount corrupts BOTH balances inside one transaction
// (a logic error committed atomically).
fn transfer_buggy(amount) {
    var root = getroot(0);
    txbegin();
    root[0] = amount * 1000;
    root[4] = amount * 2000;
    txcommit();
    return 0;
}

fn check() {
    var root = getroot(0);
    assert(root[0] + root[4] == 2);
    return root[0];
}
fn recover_() { return 0; }
`

func TestTransactionRevertedAsUnit(t *testing.T) {
	r := newRig(t, txStore)
	if _, trap := r.m.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 5; i++ {
		if _, trap := r.m.Call("transfer", 1); trap != nil {
			t.Fatal(trap)
		}
		if _, trap := r.m.Call("transfer", -1); trap != nil {
			t.Fatal(trap)
		}
	}
	r.m.Call("transfer_buggy", 7)
	_, trap := r.m.Call("check")
	if trap == nil || trap.Kind != vm.TrapAssert {
		t.Fatalf("trap = %v", trap)
	}

	rep := Mitigate(DefaultConfig(), &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr,
		ReExec: func() *vm.Trap {
			r.restart()
			if _, tp := r.m.Call("recover_"); tp != nil {
				return tp
			}
			_, tp := r.m.Call("check")
			return tp
		},
	})
	if !rep.Recovered {
		t.Fatalf("not recovered: %v (last %v)", rep, rep.LastTrap)
	}

	// Both balances must be from the SAME committed transaction: the
	// invariant holds (check passed) and values are a pre-bug pair.
	r.restart()
	a, tp := r.m.Call("check")
	if tp != nil {
		t.Fatal(tp)
	}
	b, _ := r.pool.Root(0)
	bv, _ := r.pool.ReadDurable(b + 4)
	if a+int64(bv) != 2 {
		t.Fatalf("balances %d + %d != 2: transaction torn by reversion", a, int64(bv))
	}
}

func TestTransactionLogGrouping(t *testing.T) {
	r := newRig(t, txStore)
	r.m.Call("init_")
	r.m.Call("transfer", 1)
	// Each commit's entries share a transaction id.
	seqs := r.log.AllSeqs()
	if len(seqs) < 4 {
		t.Fatalf("seqs = %v", seqs)
	}
	last := seqs[len(seqs)-1]
	tx := r.log.TxOf(last)
	if tx == 0 {
		t.Fatal("transactional persist has no tx id")
	}
	members := r.log.SeqsInTx(tx)
	if len(members) < 2 {
		t.Fatalf("tx members = %v (both balances must be grouped)", members)
	}
	// And the init transaction is a different group.
	if r.log.TxOf(seqs[0]) == tx {
		t.Fatal("separate commits share a tx id")
	}
}
