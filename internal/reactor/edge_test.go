package reactor

import (
	"reflect"
	"testing"

	"arthas/internal/vm"
)

// Edge-case parity: mitigation must produce the SAME well-formed report at
// any worker count — empty candidate plans, single-candidate bisects, and
// runs where every probe fails must charge attempts identically whether the
// search ran sequentially or speculatively on forks.

// normalize strips the fields that legitimately differ across runs
// (wall-clock, trap pointers) so reports compare with reflect.DeepEqual.
func normalize(rep *Report) *Report {
	n := *rep
	n.Duration = 0
	n.LastTrap = nil
	n.TotalVersions = 0 // parallel probes may version fork-local state
	if n.AttemptsByMode == nil {
		n.AttemptsByMode = map[string]int{}
	}
	return &n
}

// forkSessions builds a ForkSession factory over a rig, mirroring the
// arthas facade wiring: COW pool fork + forked log + private machine.
func (r *rig) forkSessions(fn string, args ...int64) func() (*Session, error) {
	return func() (*Session, error) {
		pool := r.pool.Fork()
		log := r.log.Fork()
		pool.SetHooks(log.Hooks())
		return &Session{
			Pool: pool,
			Log:  log,
			ReExec: func() *vm.Trap {
				pool.Crash()
				m := vm.New(r.mod, pool, vm.Config{StepLimit: 5_000_000})
				if _, tp := m.Call("recover_"); tp != nil {
					return tp
				}
				_, tp := m.Call(fn, args...)
				return tp
			},
		}, nil
	}
}

// failingRig builds the miniKV rig in its post-failure state and returns the
// context pieces mitigation needs.
func failingRig(t *testing.T) (*rig, *vm.Trap) {
	t.Helper()
	r := newRig(t, miniKV)
	if _, trap := r.m.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 10; i++ {
		if _, trap := r.m.Call("put", i, 100+i); trap != nil {
			t.Fatal(trap)
		}
	}
	if _, trap := r.m.Call("evil", 777); trap != nil {
		t.Fatal(trap)
	}
	_, trap := r.m.Call("get", 0)
	if trap == nil {
		t.Fatal("no failure")
	}
	return r, trap
}

func (r *rig) reexec(fn string, args ...int64) func() *vm.Trap {
	return func() *vm.Trap {
		r.restart()
		if _, tp := r.m.Call("recover_"); tp != nil {
			return tp
		}
		_, tp := r.m.Call(fn, args...)
		return tp
	}
}

func TestEmptyPlanRestartOnlyParity(t *testing.T) {
	for _, healthy := range []bool{true, false} {
		var reports []*Report
		for _, workers := range []int{1, 8} {
			r, _ := failingRig(t)
			reexecs := 0
			ctx := &Context{
				Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
				// No fault instructions at all: the plan is empty and the
				// reactor must fall back to plain restart (§4.5).
				ReExec: func() *vm.Trap {
					reexecs++
					if healthy {
						return nil
					}
					return &vm.Trap{Kind: vm.TrapSegfault}
				},
				ForkSession: r.forkSessions("get", 0),
			}
			cfg := DefaultConfig()
			cfg.Workers = workers
			rep := Mitigate(cfg, ctx)
			if !rep.RestartOnly {
				t.Fatalf("workers=%d healthy=%v: RestartOnly not set", workers, healthy)
			}
			if rep.Recovered != healthy {
				t.Fatalf("workers=%d healthy=%v: Recovered=%v", workers, healthy, rep.Recovered)
			}
			if rep.Attempts != 1 || rep.AttemptsByMode["restart"] != 1 {
				t.Fatalf("workers=%d: attempts=%d byMode=%v, want exactly one restart",
					workers, rep.Attempts, rep.AttemptsByMode)
			}
			if reexecs != 1 {
				t.Fatalf("workers=%d: %d re-executions, want 1", workers, reexecs)
			}
			if len(rep.RevertedSeqs) != 0 || rep.RevertedVersions != 0 {
				t.Fatalf("workers=%d: empty plan reverted data: %+v", workers, rep)
			}
			reports = append(reports, normalize(rep))
		}
		if !reflect.DeepEqual(reports[0], reports[1]) {
			t.Fatalf("healthy=%v: restart-only reports differ:\n  w1: %+v\n  w8: %+v",
				healthy, reports[0], reports[1])
		}
	}
}

func TestSingleCandidateBisectParity(t *testing.T) {
	// A plan with exactly ONE candidate forced down the bisect path: the
	// degenerate lo==hi==1 search must terminate with no off-by-one (probe
	// prefix 1, then apply + confirm) and report byte-identically at any
	// worker count.
	var reports []*Report
	for _, workers := range []int{1, 8} {
		r, trap := failingRig(t)
		cfg := DefaultConfig()
		cfg.CumulativeOnly = true // skip isolated trials: bisect does the work
		cfg.Bisect = true
		cfg.Workers = workers
		cfg.Plan.MaxCandidates = 1
		ctx := &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, AddrFault: true,
			ReExec:      r.reexec("get", 0),
			ForkSession: r.forkSessions("get", 0),
		}
		rep := Mitigate(cfg, ctx)
		if rep.CandidateCount != 1 {
			t.Fatalf("workers=%d: plan has %d candidates, want 1", workers, rep.CandidateCount)
		}
		if !rep.Recovered {
			t.Fatalf("workers=%d: single-candidate bisect failed: %v", workers, rep)
		}
		if len(rep.RevertedSeqs) != 1 {
			t.Fatalf("workers=%d: reverted seqs %v, want exactly the one candidate",
				workers, rep.RevertedSeqs)
		}
		reports = append(reports, normalize(rep))
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("single-candidate bisect reports differ:\n  w1: %+v\n  w8: %+v",
			reports[0], reports[1])
	}
}

func TestMultiCandidateBisectOutcomeParity(t *testing.T) {
	// With several candidates the parallel bisect legitimately probes more
	// points per round (deterministic per worker count), but the OUTCOME —
	// what healed, what was reverted, which mode — must match the
	// sequential search, and charging must stay well-formed.
	var outcomes []*Report
	for _, workers := range []int{1, 8} {
		r, trap := failingRig(t)
		cfg := DefaultConfig()
		cfg.CumulativeOnly = true
		cfg.Bisect = true
		cfg.Workers = workers
		ctx := &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, AddrFault: true,
			ReExec:      r.reexec("get", 0),
			ForkSession: r.forkSessions("get", 0),
		}
		rep := Mitigate(cfg, ctx)
		if !rep.Recovered {
			t.Fatalf("workers=%d: bisect mitigation failed: %v", workers, rep)
		}
		total := 0
		for _, n := range rep.AttemptsByMode {
			total += n
		}
		if total != rep.Attempts {
			t.Fatalf("workers=%d: AttemptsByMode sums to %d, Attempts=%d",
				workers, total, rep.Attempts)
		}
		outcomes = append(outcomes, rep)
	}
	w1, w8 := outcomes[0], outcomes[1]
	if !reflect.DeepEqual(w1.RevertedSeqs, w8.RevertedSeqs) {
		t.Fatalf("bisect reverted different seqs: w1=%v w8=%v", w1.RevertedSeqs, w8.RevertedSeqs)
	}
	if w1.ModeUsed != w8.ModeUsed || w1.FellBack != w8.FellBack ||
		w1.RevertedVersions != w8.RevertedVersions {
		t.Fatalf("bisect outcomes differ:\n  w1: %+v\n  w8: %+v", w1, w8)
	}
}

func TestIsolatedRoundParity(t *testing.T) {
	// The default (isolated-round) search: same report at 1 and 8 workers.
	var reports []*Report
	for _, workers := range []int{1, 8} {
		r, trap := failingRig(t)
		cfg := DefaultConfig()
		cfg.Workers = workers
		ctx := &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, AddrFault: true,
			ReExec:      r.reexec("get", 0),
			ForkSession: r.forkSessions("get", 0),
		}
		rep := Mitigate(cfg, ctx)
		if !rep.Recovered {
			t.Fatalf("workers=%d: mitigation failed: %v", workers, rep)
		}
		reports = append(reports, normalize(rep))
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("reports differ across workers:\n  w1: %+v\n  w8: %+v",
			reports[0], reports[1])
	}
}

func TestAllProbesFailChargingParity(t *testing.T) {
	// Every probe fails — on the base AND on every fork. Attempt charging
	// (total and per-mode, including the rollback fallback budget) must be
	// identical at any worker count, and the attempt total must respect
	// MaxAttempts per mode.
	var reports []*Report
	for _, workers := range []int{1, 8} {
		r, trap := failingRig(t)
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Bisect = true
		cfg.MaxAttempts = 7 // small budget: exercises exhaustion exactly
		permafail := &vm.Trap{Kind: vm.TrapSegfault, Instr: trap.Instr}
		ctx := &Context{
			Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
			Fault: trap.Instr, AddrFault: true,
			ReExec: func() *vm.Trap { return permafail },
			ForkSession: func() (*Session, error) {
				pool := r.pool.Fork()
				log := r.log.Fork()
				pool.SetHooks(log.Hooks())
				return &Session{
					Pool: pool, Log: log,
					ReExec: func() *vm.Trap { return permafail },
				}, nil
			},
		}
		rep := Mitigate(cfg, ctx)
		if rep.Recovered {
			t.Fatalf("workers=%d: recovered with a permafailing probe", workers)
		}
		if !rep.FellBack {
			t.Fatalf("workers=%d: purge exhaustion did not fall back to rollback", workers)
		}
		// Each mode gets its own MaxAttempts budget; neither may exceed it.
		for mode, n := range rep.AttemptsByMode {
			if n > cfg.MaxAttempts {
				t.Fatalf("workers=%d: mode %s charged %d > MaxAttempts %d",
					workers, mode, n, cfg.MaxAttempts)
			}
		}
		total := 0
		for _, n := range rep.AttemptsByMode {
			total += n
		}
		if total != rep.Attempts {
			t.Fatalf("workers=%d: AttemptsByMode sums to %d, Attempts=%d",
				workers, total, rep.Attempts)
		}
		reports = append(reports, normalize(rep))
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("exhaustion reports differ across workers:\n  w1: %+v\n  w8: %+v",
			reports[0], reports[1])
	}
}

func TestForkSessionErrorFallsBackSequential(t *testing.T) {
	// A ForkSession factory that fails must not crash or distort charging:
	// the round falls back to the sequential path.
	r, trap := failingRig(t)
	cfg := DefaultConfig()
	cfg.Workers = 8
	ctx := &Context{
		Analysis: r.res, Trace: r.tr, Log: r.log, Pool: r.pool,
		Fault: trap.Instr, AddrFault: true,
		ReExec:      r.reexec("get", 0),
		ForkSession: func() (*Session, error) { return nil, errForkRefused },
	}
	rep := Mitigate(cfg, ctx)
	if !rep.Recovered {
		t.Fatalf("mitigation with refusing fork factory failed: %v", rep)
	}
}

var errForkRefused = &forkRefusedError{}

type forkRefusedError struct{}

func (*forkRefusedError) Error() string { return "fork refused" }
