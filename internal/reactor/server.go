package reactor

import (
	"fmt"
	"sync"
	"time"

	"arthas/internal/analysis"
	"arthas/internal/ir"
)

// The reactor's client-server split (paper §5): computing the PDG and
// pointer analysis for a large program takes long, so a reactor *server*
// starts as soon as the target's code is available, computes the PDG in the
// background, and re-uses it until the code changes. When the detector
// flags a failure, the *client* sends a mitigation request; because the
// metadata is already resident, only the (fast) slicing remains on the
// critical path.

// Server precomputes and caches analysis results per target system.
type Server struct {
	mu       sync.Mutex
	analyses map[string]*analysis.Result
	pending  map[string]chan struct{}
}

// NewServer returns an empty reactor server.
func NewServer() *Server {
	return &Server{
		analyses: map[string]*analysis.Result{},
		pending:  map[string]chan struct{}{},
	}
}

// Precompute starts background analysis of a module (idempotent per name).
// It returns immediately; Analysis blocks until the result is ready.
func (s *Server) Precompute(name string, mod *ir.Module) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.analyses[name] != nil || s.pending[name] != nil {
		return
	}
	done := make(chan struct{})
	s.pending[name] = done
	go func() {
		res := analysis.Analyze(mod)
		s.mu.Lock()
		s.analyses[name] = res
		delete(s.pending, name)
		s.mu.Unlock()
		close(done)
	}()
}

// Analysis returns the (possibly precomputed) analysis for name, blocking
// until the background computation completes. It errors if Precompute was
// never called for name.
func (s *Server) Analysis(name string) (*analysis.Result, error) {
	s.mu.Lock()
	if res := s.analyses[name]; res != nil {
		s.mu.Unlock()
		return res, nil
	}
	done := s.pending[name]
	s.mu.Unlock()
	if done == nil {
		return nil, fmt.Errorf("reactor server: %q was never precomputed", name)
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		return nil, fmt.Errorf("reactor server: analysis of %q timed out", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.analyses[name], nil
}

// Mitigate is the RPC-style entry point: it resolves the cached analysis
// and runs the mitigation workflow. The caller's Context is never mutated —
// each call works on its own copy with the cached analysis filled in — so
// concurrent mitigations of different targets are safe (each Context still
// describes a distinct deployment; two calls sharing one pool/log would
// race in the target itself, not here).
func (s *Server) Mitigate(name string, cfg Config, ctx *Context) (*Report, error) {
	res, err := s.Analysis(name)
	if err != nil {
		return nil, err
	}
	call := *ctx
	call.Analysis = res
	return Mitigate(cfg, &call), nil
}
