package reactor

import (
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// Persistent-memory leak mitigation (paper §4.7).
//
// Leaks are the hard-fault class where the fault instruction (out-of-space,
// or a PM usage monitor firing) is disconnected from the root cause, so
// slicing does not apply. Instead, the reactor compares two sets:
//
//   - the allocations the checkpoint component recorded and never saw freed
//   - the PM addresses the program's annotated recovery function
//     (recover_begin/recover_end) actually touched on restart
//
// Live-but-unreachable-in-recovery blocks are the suspected leaks. They are
// reported first and only freed after confirmation, mirroring the paper's
// "outputs the suspected leak PM variables and only frees them after
// confirmation".

// LeakReport lists suspected leaked allocations and the outcome of freeing.
type LeakReport struct {
	Suspected []*checkpoint.AllocRecord
	FreedAddr []uint64
	// FreedWords is the PM recovered.
	FreedWords int
}

// FindLeaks computes the suspected-leak set: allocations never freed whose
// payload was not accessed during the recovery window.
func FindLeaks(log *checkpoint.Log, recoveryAccess map[uint64]bool) []*checkpoint.AllocRecord {
	var out []*checkpoint.AllocRecord
	for _, rec := range log.LiveAllocs() {
		touched := false
		for w := 0; w < rec.Words; w++ {
			if recoveryAccess[rec.Addr+uint64(w)] {
				touched = true
				break
			}
		}
		if !touched {
			out = append(out, rec)
		}
	}
	return out
}

// MitigateLeak finds suspected leaks and, when confirm approves (nil
// confirm = approve all), frees them from the pool.
func MitigateLeak(pool *pmem.Pool, log *checkpoint.Log, recoveryAccess map[uint64]bool,
	confirm func(rec *checkpoint.AllocRecord) bool) *LeakReport {

	rep := &LeakReport{Suspected: FindLeaks(log, recoveryAccess)}
	for _, rec := range rep.Suspected {
		if confirm != nil && !confirm(rec) {
			continue
		}
		if !pool.IsAllocated(rec.Addr) {
			continue
		}
		words, err := pool.BlockSize(rec.Addr)
		if err != nil {
			continue
		}
		if err := pool.Free(rec.Addr); err == nil {
			rep.FreedAddr = append(rep.FreedAddr, rec.Addr)
			rep.FreedWords += words
		}
	}
	return rep
}
