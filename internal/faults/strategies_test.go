package faults

import (
	"testing"

	"arthas/internal/reactor"
)

// Strategy robustness: every case must recover under each reactor strategy
// variant, not just the default purge/one-by-one configuration.

func TestAllCasesRecoverWithBisect(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := RunConfig{}
			cfg.Reactor = reactor.DefaultConfig()
			cfg.Reactor.Bisect = true
			out, err := RunArthas(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Recovered {
				t.Fatalf("%s not recovered under bisect", b.ID)
			}
		})
	}
}

func TestAllCasesRecoverWithBatch5(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := RunConfig{}
			cfg.Reactor = reactor.DefaultConfig()
			cfg.Reactor.Batch = 5
			out, err := RunArthas(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Recovered {
				t.Fatalf("%s not recovered under batch-5", b.ID)
			}
		})
	}
}

func TestAllCasesRecoverWithSingleVersion(t *testing.T) {
	// MaxVersions=1 is the harshest history budget: only the newest value
	// of each range is retained. Resync and ownership-death still carry
	// most cases; anything needing a previous version relies on the
	// multi-entry structure.
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := RunConfig{MaxVersions: 1}
			cfg.Reactor = reactor.DefaultConfig()
			out, err := RunArthas(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Recovered {
				t.Skipf("%s not recoverable with a single retained version (expected for version-walk cases)", b.ID)
			}
		})
	}
}
