package faults

import (
	"arthas/internal/systems"
)

// RunDetectionAlternatives drives a case to its failed state and evaluates
// the §6.6 alternatives: do the system's common domain invariants catch the
// bad state, and does a checksum guard? These mechanisms only *detect*;
// fixing the state remains Arthas's job (Table 7's point).
func RunDetectionAlternatives(b Builder, cfg RunConfig) (invariant, checksum bool, err error) {
	cfg = cfg.withDefaults(b.Meta)
	c, trap, _, err := runToFailure(b, cfg, systems.DeployOpts{Checkpoint: true, Trace: true}, nil)
	if err != nil {
		return false, false, err
	}
	if trap == nil {
		return false, false, nil
	}
	if c.RunInvariants != nil {
		invariant = c.RunInvariants()
	}
	if c.RunChecksum != nil {
		checksum = c.RunChecksum()
	}
	return invariant, checksum, nil
}
