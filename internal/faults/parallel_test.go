package faults

import (
	"reflect"
	"testing"

	"arthas/internal/reactor"
)

// Parallel speculative mitigation must be an implementation detail: for any
// worker count the reactor's Report outcome is identical to the sequential
// search's (docs/PARALLEL_MITIGATION.md, "Determinism"). Outcome.Attempts is
// deliberately excluded — it is telemetry-derived and counts speculative
// re-executions on losing forks too.
func TestParallelMitigationDeterminism(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			run := func(workers int) *Outcome {
				cfg := RunConfig{}
				cfg.Reactor = reactor.DefaultConfig()
				cfg.Reactor.Workers = workers
				out, err := RunArthas(b, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			seq := run(1)
			par := run(8)
			if seq.Recovered != par.Recovered {
				t.Fatalf("recovered: sequential=%v parallel=%v", seq.Recovered, par.Recovered)
			}
			if b.IsLeak {
				// Leak mitigation has no speculative path; just confirm
				// both runs freed the same number of blocks.
				if seq.Freed != par.Freed {
					t.Fatalf("freed: sequential=%d parallel=%d", seq.Freed, par.Freed)
				}
				return
			}
			sr, pr := seq.Report, par.Report
			if sr == nil || pr == nil {
				t.Fatalf("missing reactor report: sequential=%v parallel=%v", sr != nil, pr != nil)
			}
			// TotalVersions is deliberately absent: it is the log's
			// LIFETIME version history, and probes that write (f9's
			// insert, f10's get-side repair) record that history on
			// whichever log they ran against — private fork logs under
			// speculation, the main log sequentially. The mitigation
			// outcome below is the determinism contract.
			type outcome struct {
				Recovered      bool
				RestartOnly    bool
				Attempts       int
				AttemptsByMode map[string]int
				Reverted       int
				RevertedSeqs   []uint64
				Candidates     int
				Mode           reactor.Mode
				FellBack       bool
				Replans        int
			}
			key := func(r *reactor.Report) outcome {
				return outcome{
					Recovered:      r.Recovered,
					RestartOnly:    r.RestartOnly,
					Attempts:       r.Attempts,
					AttemptsByMode: r.AttemptsByMode,
					Reverted:       r.RevertedVersions,
					RevertedSeqs:   r.RevertedSeqs,
					Candidates:     r.CandidateCount,
					Mode:           r.ModeUsed,
					FellBack:       r.FellBack,
					Replans:        r.Replans,
				}
			}
			if sk, pk := key(sr), key(pr); !reflect.DeepEqual(sk, pk) {
				t.Fatalf("report diverged across worker counts:\n  workers=1: %+v\n  workers=8: %+v", sk, pk)
			}
		})
	}
}
