package faults

import (
	"testing"

	"arthas/internal/systems"
)

// TestArthasRecoversAllCases is the repository's Table 3 headline: Arthas
// mitigates every one of the twelve hard faults.
func TestArthasRecoversAllCases(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			out, err := RunArthas(b, RunConfig{})
			if err != nil {
				t.Fatalf("%s: %v", b.ID, err)
			}
			if !out.Recovered {
				t.Fatalf("%s (%s %s): Arthas did not recover", b.ID, b.System, b.Fault)
			}
			if !out.HardFault {
				t.Errorf("%s: failure was not flagged as hard (did not recur?)", b.ID)
			}
		})
	}
}

func TestCaseRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("cases = %d, want 12", len(all))
	}
	seen := map[string]bool{}
	for i, b := range all {
		want := "f" + string(rune('1'+i))
		if i >= 9 {
			want = "f1" + string(rune('0'+i-9))
		}
		if b.ID != want {
			t.Errorf("case %d id = %s, want %s", i, b.ID, want)
		}
		if seen[b.ID] {
			t.Errorf("duplicate id %s", b.ID)
		}
		seen[b.ID] = true
		if b.System == "" || b.Fault == "" || b.Consequence == "" {
			t.Errorf("%s: incomplete metadata %+v", b.ID, b.Meta)
		}
	}
	if _, err := ByID("f7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("f99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestFaultsAreHard: every case's failure recurs across restart before any
// mitigation — the soft-to-hard transformation itself.
func TestFaultsAreHard(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := RunConfig{}.withDefaults(b.Meta)
			_, trap, hard, err := runToFailure(b, cfg, systems.DeployOpts{Checkpoint: true, Trace: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if trap == nil {
				t.Fatalf("%s: failure did not manifest", b.ID)
			}
			if !hard {
				t.Fatalf("%s: failure did not recur across restart", b.ID)
			}
		})
	}
}

// TestPmCRIUShape: pmCRIU recovers trigger-after-snapshot cases and fails
// when the bad state predates every snapshot (the f3 natural-trigger case).
func TestPmCRIUShape(t *testing.T) {
	// f4 (immediate crash, trigger at 50%): snapshots 1-2 predate it.
	out, err := RunPmCRIU(F4(), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered {
		t.Fatalf("pmCRIU failed on f4: %+v", out)
	}
	// f5 with the trigger before the first snapshot: every image is
	// contaminated, pmCRIU cannot recover.
	out, err = RunPmCRIU(F5(), RunConfig{TriggerFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered {
		t.Fatal("pmCRIU recovered f5 despite pre-snapshot trigger")
	}
	// f5 with the trigger after the first snapshot: recoverable.
	out, err = RunPmCRIU(F5(), RunConfig{TriggerFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered {
		t.Fatalf("pmCRIU failed on post-snapshot f5: %+v", out)
	}
}

// TestArCkptShape: ArCkpt recovers immediate-crash bugs (f4, f10) and
// times out when the root cause is buried (f1).
func TestArCkptShape(t *testing.T) {
	for _, b := range []Builder{F4(), F10()} {
		out, err := RunArCkpt(b, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Recovered {
			t.Fatalf("ArCkpt failed on %s: %+v", b.ID, out)
		}
	}
	out, err := RunArCkpt(F1(), RunConfig{ArCkptAttempts: 20})
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered {
		t.Fatalf("ArCkpt recovered f1 (buried root cause) in %d attempts", out.Attempts)
	}
	if !out.TimedOut {
		t.Fatal("expected ArCkpt timeout on f1")
	}
}

// TestArthasFineGrainedLoss: the key Figure 9 property — Arthas discards a
// small fraction of updates on the propagation-heavy cases.
func TestArthasFineGrainedLoss(t *testing.T) {
	for _, b := range []Builder{F2(), F4(), F6()} {
		out, err := RunArthas(b, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Recovered {
			t.Fatalf("%s not recovered", b.ID)
		}
		if out.DataLossPct > 30 {
			t.Errorf("%s: Arthas discarded %.1f%% of updates (too coarse)", b.ID, out.DataLossPct)
		}
	}
}

// TestLeakCasesFreeOnlyLeaked: f8/f12 mitigation frees the leaked blocks
// and nothing else (paper: "does not discard any good item").
func TestLeakCasesFreeOnlyLeaked(t *testing.T) {
	for _, b := range []Builder{F8(), F12()} {
		out, err := RunArthas(b, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Recovered {
			t.Fatalf("%s not recovered: %+v", b.ID, out)
		}
		if out.Freed == 0 {
			t.Fatalf("%s: nothing freed", b.ID)
		}
		if out.Consistent != nil {
			t.Fatalf("%s: post-recovery inconsistency: %v", b.ID, out.Consistent)
		}
	}
}

// TestInvariantDetectability reproduces Table 7: only f1, f4, f6, f10 are
// caught by common domain invariants.
func TestInvariantDetectability(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := RunConfig{}.withDefaults(b.Meta)
			c, trap, _, err := runToFailure(b, cfg, systems.DeployOpts{Checkpoint: true, Trace: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if trap == nil {
				t.Fatal("no failure")
			}
			if c.RunInvariants == nil {
				t.Skip("no invariant battery")
			}
			got := c.RunInvariants()
			if got != c.InvariantDetectable {
				t.Errorf("%s: invariant detection = %v, paper expectation %v", b.ID, got, c.InvariantDetectable)
			}
		})
	}
}

// TestChecksumDetectsOnlyF5 reproduces §6.6.
func TestChecksumDetectsOnlyF5(t *testing.T) {
	cfg := RunConfig{}.withDefaults(F5().Meta)
	c, trap, _, err := runToFailure(F5(), cfg, systems.DeployOpts{Checkpoint: true, Trace: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trap == nil {
		t.Fatal("no failure")
	}
	if c.RunChecksum == nil || !c.RunChecksum() {
		t.Fatal("checksum guard did not catch the f5 bit flip")
	}
	// No other case defines a checksum-catchable region.
	for _, b := range All() {
		if b.ID != "f5" && b.ChecksumDetectable {
			t.Errorf("%s unexpectedly marked checksum-detectable", b.ID)
		}
	}
}
