package faults

import (
	"fmt"
	"sync/atomic"

	"arthas/internal/detector"
	"arthas/internal/ir"
	"arthas/internal/systems"
	"arthas/internal/vm"
)

func rdWorkload(rd *systems.RD, ops int, tick func() bool) {
	for i := 0; i < ops; i++ {
		k := int64(i%80 + 1)
		if i%4 == 3 {
			rd.Get(k)
		} else {
			rd.Set(k, k*7)
		}
		if tick != nil && !tick() {
			return
		}
	}
}

func rdConsistency(rd *systems.RD) error {
	if rep := rd.Pool.CheckIntegrity(); !rep.OK() {
		return fmt.Errorf("pool check: %v", rep)
	}
	for i := int64(0); i < 40; i++ {
		k := 500 + i%10
		if err := rd.Set(k, k); err != nil {
			return err
		}
		if _, err := rd.Get(k); err != nil {
			return err
		}
	}
	return nil
}

func rdInvariants(rd *systems.RD) bool {
	count, trap := rd.Call("rd_count")
	if trap != nil {
		return true
	}
	walked, trap := rd.Call("rd_walk_count")
	if trap != nil {
		return true
	}
	return count != walked
}

// F6: Redis listpack buffer overflow -> segfault.
func F6() Builder {
	return Builder{
		Meta: Meta{
			ID: "f6", System: "redis",
			Fault:       "Listpack buffer overflow",
			Consequence: "Segfault",
			Kind:        detector.FailCrash,
			AddrFault:   true,
			// A stored listpack size beyond its block is checkable
			// (Table 7 ✓).
			InvariantDetectable: true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			rd, err := systems.NewRD(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: rd.Deployment}
			c.Meta = F6().Meta
			created := false
			c.Workload = func(ops int, tick func() bool) {
				if !created {
					created = true
					rd.Call("rd_lp_new", 401, 200)
					for i := int64(1); i <= 40; i++ {
						rd.Call("rd_lp_append", 401, i)
						if tick != nil && !tick() {
							return
						}
					}
					ops -= 40
				}
				rdWorkload(rd, ops, tick)
			}
			c.Trigger = func() *vm.Trap {
				// Push the pack past the 96-word encoding boundary.
				for i := int64(41); i <= 96; i++ {
					rd.Call("rd_lp_append", 401, i)
				}
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				r := &systems.RD{Deployment: d}
				if trap := r.Restart(); trap != nil {
					return trap
				}
				_, trap := r.Call("rd_get", 401)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if err := rdConsistency(rd); err != nil {
					return err
				}
				if _, err := rd.Get(401); err != nil {
					return err
				}
				return nil
			}
			c.RunInvariants = func() bool {
				// Invariant: listpack used-size fits its block.
				e, trap := rd.Call("rd_find", 401)
				if trap != nil || e == 0 {
					return true
				}
				obj, _ := rd.Pool.Load(uint64(e) + 1)
				lp, _ := rd.Pool.Load(uint64(obj) + 2)
				used, _ := rd.Pool.Load(lp)
				size, err := rd.Pool.BlockSize(lp)
				if err != nil {
					return true
				}
				return int(used) > size
			}
			return c, nil
		},
	}
}

// F7: Redis logic bug in refcount -> server panic.
func F7() Builder {
	return Builder{
		Meta: Meta{
			ID: "f7", System: "redis",
			Fault:       "Logic bug in refcount",
			Consequence: "Server panic",
			Kind:        detector.FailPanic,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			rd, err := systems.NewRD(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: rd.Deployment}
			c.Meta = F7().Meta
			c.Workload = func(ops int, tick func() bool) {
				rd.Call("rd_share", 301)
				rd.Call("rd_share", 302)
				rdWorkload(rd, ops-2, tick)
			}
			c.Trigger = func() *vm.Trap {
				// Release both references through the buggy
				// double-decrement path: the refcount goes negative, the
				// shared object is freed and poisoned while the dict
				// still points at it.
				rd.Call("rd_unshare", 301, 1)
				rd.Call("rd_unshare", 302, 1)
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				r := &systems.RD{Deployment: d}
				if trap := r.Restart(); trap != nil {
					return trap
				}
				_, trap := r.Call("rd_get", 301)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if err := rdConsistency(rd); err != nil {
					return err
				}
				// The purge-mode inconsistency the paper reports for f7:
				// the key is back but its value object was freed at the
				// allocator level — GET on a key whose object is not a
				// live allocation is semantically inconsistent.
				e, trap := rd.Call("rd_find", 301)
				if trap != nil {
					return trap
				}
				if e != 0 {
					obj, _ := rd.Pool.Load(uint64(e) + 1)
					if obj != 0 && !rd.Pool.IsAllocated(obj) {
						return fmt.Errorf("key 301 references a freed object")
					}
				}
				return nil
			}
			c.RunInvariants = func() bool { return rdInvariants(rd) }
			return c, nil
		},
	}
}

// F8: Redis slowlogEntry leak -> persistent leak. The trigger happens
// naturally as the slowlog churns (like the paper's f8).
func F8() Builder {
	return Builder{
		Meta: Meta{
			ID: "f8", System: "redis",
			Fault:       "slowlogEntry leak",
			Consequence: "Persistent leak",
			Kind:        detector.FailLeak,
			IsLeak:      true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			sys := systems.Redis()
			sys.PoolWords = 1 << 13 // small pool so the leak matters
			d, err := systems.Deploy(sys, opts)
			if err != nil {
				return nil, err
			}
			rd := &systems.RD{Deployment: d}
			c := &Case{D: d}
			c.Meta = F8().Meta
			c.Workload = func(ops int, tick func() bool) {
				for i := 0; i < ops; i++ {
					rd.Set(int64(i%20+1), int64(i))
					if tick != nil && !tick() {
						return
					}
				}
			}
			// The trigger durably enables the slowlog: from here every
			// command leaks a trimmed entry.
			c.Trigger = func() *vm.Trap {
				rd.Call("rd_slowlog_on")
				return nil
			}
			det := detector.New()
			det.LeakThresholdPct = 40
			c.Probe = func() *vm.Trap {
				if trap := rd.Restart(); trap != nil {
					return trap
				}
				if det.CheckLeak(rd.Pool) {
					return synthetic(1008, "PM usage above leak threshold")
				}
				if _, err := rd.Get(5); err != nil {
					return err.(*vm.Trap)
				}
				return nil
			}
			c.FaultInstrs = func(*vm.Trap) []*ir.Instr { return nil } // leak path
			c.Consistency = func() error { return rdConsistency(rd) }
			c.RunInvariants = func() bool { return rdInvariants(rd) }
			return c, nil
		},
	}
}

// F9: CCEH directory doubling bug -> infinite loop.
func F9() Builder {
	return Builder{
		Meta: Meta{
			ID: "f9", System: "cceh",
			Fault:       "directory doubling bug",
			Consequence: "Infinite loop",
			Kind:        detector.FailHang,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			if opts.StepLimit == 0 {
				opts.StepLimit = 300_000
			}
			cc, err := systems.NewCC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: cc.Deployment}
			c.Meta = F9().Meta
			var nextKey int64 = 1
			c.Workload = func(ops int, tick func() bool) {
				for i := 0; i < ops; i++ {
					cc.Insert(nextKey, nextKey*3)
					nextKey++
					if tick != nil && !tick() {
						return
					}
				}
			}
			c.Trigger = func() *vm.Trap {
				cc.Call("cc_arm_crash")
				// Insert until the armed doubling fires the crash.
				for i := 0; i < 5000; i++ {
					_, trap := cc.Call("cc_insert", nextKey, nextKey)
					nextKey++
					if trap != nil {
						// The untimely crash: drop volatile state.
						cc.Restart()
						return trap
					}
				}
				return nil
			}
			// Concurrent speculative probes each need a fresh key; the
			// atomic add keeps them unique (and -race clean) without
			// changing the sequential behaviour.
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				h := &systems.CC{Deployment: d}
				if trap := h.Restart(); trap != nil {
					return trap
				}
				k := atomic.AddInt64(&nextKey, 1) - 1
				_, trap := h.Call("cc_insert", 900_000+k, 1)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if rep := cc.Pool.CheckIntegrity(); !rep.OK() {
					return fmt.Errorf("pool check: %v", rep)
				}
				for i := int64(0); i < 30; i++ {
					k := 800_000 + i
					if err := cc.Insert(k, k); err != nil {
						return err
					}
					v, err := cc.Get(k)
					if err != nil {
						return err
					}
					if v != k {
						return fmt.Errorf("get(%d) = %d after insert", k, v)
					}
				}
				return nil
			}
			c.RunInvariants = func() bool {
				// dir size vs global depth — the exact broken invariant —
				// is NOT among the "common" invariants developers write
				// (the paper finds only 4 of 12 detectable); model the
				// common one: count >= 0 and get of a recent key works.
				_, trap := cc.Call("cc_get", 1)
				return trap != nil
			}
			return c, nil
		},
	}
}

// F10: Pelikan value length overflow -> segfault.
func F10() Builder {
	return Builder{
		Meta: Meta{
			ID: "f10", System: "pelikan",
			Fault:               "Value length overflow",
			Consequence:         "Segfault",
			Kind:                detector.FailCrash,
			AddrFault:           true,
			DetectImmediately:   true,
			InvariantDetectable: true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			pk, err := systems.NewPK(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: pk.Deployment}
			c.Meta = F10().Meta
			c.Workload = func(ops int, tick func() bool) {
				for i := 0; i < ops; i++ {
					k := int64(i%60 + 1)
					if i%4 == 3 {
						pk.Get(k)
					} else {
						pk.Set(k, k, 3)
					}
					if tick != nil && !tick() {
						return
					}
				}
			}
			c.Trigger = func() *vm.Trap {
				// Key 209 is outside the workload key space.
				pk.Set(209, 1, 70_000)
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				p := &systems.PK{Deployment: d}
				if trap := p.Restart(); trap != nil {
					return trap
				}
				_, trap := p.Call("pk_get", 209)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if rep := pk.Pool.CheckIntegrity(); !rep.OK() {
					return fmt.Errorf("pool check: %v", rep)
				}
				for i := int64(0); i < 40; i++ {
					k := 600 + i%10
					if err := pk.Set(k, k, 2); err != nil {
						return err
					}
					if _, err := pk.Get(k); err != nil {
						return err
					}
				}
				return nil
			}
			c.RunInvariants = func() bool {
				it, trap := pk.Call("pk_find", 209)
				if trap != nil || it == 0 {
					return true
				}
				vbuf, _ := pk.Pool.Load(uint64(it) + 1)
				vlen, _ := pk.Pool.Load(uint64(it) + 2)
				size, err := pk.Pool.BlockSize(vbuf)
				if err != nil {
					return true
				}
				return int(vlen) > size
			}
			return c, nil
		},
	}
}

// F11: Pelikan null stats response -> segfault.
func F11() Builder {
	return Builder{
		Meta: Meta{
			ID: "f11", System: "pelikan",
			Fault:       "Null stats response",
			Consequence: "Segfault",
			Kind:        detector.FailCrash,
			AddrFault:   true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			pk, err := systems.NewPK(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: pk.Deployment}
			c.Meta = F11().Meta
			c.Workload = func(ops int, tick func() bool) {
				for i := 0; i < ops; i++ {
					k := int64(i%60 + 1)
					if i%4 == 3 {
						pk.Get(k)
					} else {
						pk.Set(k, k, 3)
					}
					if tick != nil && !tick() {
						return
					}
				}
			}
			c.Trigger = func() *vm.Trap {
				pk.Call("pk_arm_crash")
				_, trap := pk.Call("pk_stats_reset")
				if trap != nil {
					pk.Restart() // the untimely crash
				}
				return trap
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				p := &systems.PK{Deployment: d}
				if trap := p.Restart(); trap != nil {
					return trap
				}
				_, trap := p.Call("pk_stats")
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if rep := pk.Pool.CheckIntegrity(); !rep.OK() {
					return fmt.Errorf("pool check: %v", rep)
				}
				if _, trap := pk.Call("pk_stats"); trap != nil {
					return trap
				}
				return nil
			}
			c.RunInvariants = func() bool {
				// "Stats pointer non-null" is exactly the check the code
				// lacks; common invariants (item counts) miss this.
				count, trap := pk.Call("pk_count")
				return trap != nil || count < 0
			}
			return c, nil
		},
	}
}

// F12: PMEMKV asynchronous lazy free -> persistent leak.
func F12() Builder {
	return Builder{
		Meta: Meta{
			ID: "f12", System: "pmemkv",
			Fault:       "Asynchronous lazy free",
			Consequence: "Persistent leak",
			Kind:        detector.FailLeak,
			IsLeak:      true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			sys := systems.PMEMKV()
			sys.PoolWords = 1 << 13
			d, err := systems.Deploy(sys, opts)
			if err != nil {
				return nil, err
			}
			kv := &systems.KV{Deployment: d}
			c := &Case{D: d}
			c.Meta = F12().Meta
			var nextKey int64 = 1
			triggered := false
			c.Workload = func(ops int, tick func() bool) {
				for i := 0; i < ops; i++ {
					if !triggered {
						// Steady state: bounded key space, no churn.
						kv.Put(nextKey%50+1, nextKey)
					} else {
						// Churn phase: every delete hands its node to the
						// async worker, and periodic crashes kill the
						// workers before they run — the nodes leak.
						kv.Put(nextKey, nextKey)
						if nextKey > 10 {
							kv.Del(nextKey - 10)
						}
						if i%25 == 24 {
							kv.Restart()
						}
					}
					nextKey++
					if tick != nil && !tick() {
						return
					}
				}
			}
			c.Trigger = func() *vm.Trap {
				triggered = true
				nextKey = 1000 // churn keys disjoint from the steady set
				return nil
			}
			det := detector.New()
			det.LeakThresholdPct = 40
			c.Probe = func() *vm.Trap {
				if trap := kv.Restart(); trap != nil {
					return trap
				}
				if det.CheckLeak(kv.Pool) {
					return synthetic(1012, "PM usage above leak threshold")
				}
				if _, err := kv.Get(nextKey - 1); err != nil {
					return err.(*vm.Trap)
				}
				return nil
			}
			c.FaultInstrs = func(*vm.Trap) []*ir.Instr { return nil }
			c.Consistency = func() error {
				if rep := kv.Pool.CheckIntegrity(); !rep.OK() {
					return fmt.Errorf("pool check: %v", rep)
				}
				for i := int64(0); i < 40; i++ {
					k := 700_000 + i%10
					if err := kv.Put(k, k); err != nil {
						return err
					}
					if _, err := kv.Get(k); err != nil {
						return err
					}
				}
				return nil
			}
			c.RunInvariants = func() bool {
				count, trap := kv.Call("kv_count")
				if trap != nil {
					return true
				}
				// Common invariant: count matches a table walk — both see
				// only linked nodes, so the leak is invisible (Table 7 ✗).
				walked := int64(0)
				tab, _ := kv.Pool.Root(0)
				tabPtr, _ := kv.Pool.Load(tab)
				nb, _ := kv.Pool.Load(tab + 1)
				for b := uint64(0); b < nb; b++ {
					n, _ := kv.Pool.Load(tabPtr + b)
					for n != 0 && walked < count*2+16 {
						walked++
						nx, _ := kv.Pool.Load(n + 2)
						n = nx
					}
				}
				return walked != count
			}
			return c, nil
		},
	}
}
