package faults

import (
	"fmt"

	"arthas/internal/detector"
	"arthas/internal/ir"
	"arthas/internal/systems"
	"arthas/internal/vm"
)

// Shared Memcached workload: a YCSB-A-like update/read mix over keys
// 1..200 (no deletes, like the paper's YCSB workload — address reuse is
// exercised separately by the systems tests). With 64 buckets every bucket
// chain holds ~3 keys, so bucket heads are multi-version in the checkpoint
// log, as they are under any realistic key distribution.
func mcWorkload(mc *systems.MC, ops int, tick func() bool) {
	for i := 0; i < ops; i++ {
		k := int64((i*7)%200 + 1) // decorrelate key choice from op choice
		switch i % 5 {
		case 0, 1, 2:
			mc.Set(k, k*10, 2)
		default:
			mc.Get(k)
		}
		if tick != nil && !tick() {
			return
		}
	}
}

// mcConsistency runs the Table 4 battery: pool integrity, an extended
// mixed workload without traps, and spot reads.
func mcConsistency(mc *systems.MC) error {
	if rep := mc.Pool.CheckIntegrity(); !rep.OK() {
		return fmt.Errorf("pool check: %v", rep)
	}
	for i := int64(0); i < 60; i++ {
		k := 200 + i%20
		if err := mc.Set(k, k, 2); err != nil {
			return fmt.Errorf("post-recovery set(%d): %w", k, err)
		}
		if _, err := mc.Get(k); err != nil {
			return fmt.Errorf("post-recovery get(%d): %w", k, err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if _, err := mc.Get(200 + i); err != nil {
			return err
		}
	}
	return nil
}

// mcInvariants: the "number of items equals hashtable size" check the
// paper cites as a common domain invariant.
func mcInvariants(mc *systems.MC) bool {
	count, trap := mc.Call("mc_count")
	if trap != nil {
		return true // the invariant runner itself failed: detected
	}
	walked, trap := mc.Call("mc_walk_count")
	if trap != nil {
		return true
	}
	return count != walked
}

// F1: Memcached refcount overflow -> deadlock (hang).
func F1() Builder {
	return Builder{
		Meta: Meta{
			ID: "f1", System: "memcached",
			Fault:       "Refcount overflow",
			Consequence: "Deadlock",
			Kind:        detector.FailHang,
			// Items != hashtable walk after the crawler frees a linked
			// item: the invariant catches it (Table 7 ✓).
			InvariantDetectable: true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			if opts.StepLimit == 0 {
				opts.StepLimit = 300_000 // quick hang detection
			}
			mc, err := systems.NewMC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: mc.Deployment}
			c.Meta = F1().Meta
			c.Workload = func(ops int, tick func() bool) { mcWorkload(mc, ops, tick) }
			c.Trigger = func() *vm.Trap {
				// A long-lived connection pins an item in bucket 36 (the
				// bucket of pre-trigger workload key 36), using keys
				// outside the workload key space so the corruption
				// survives while traffic keeps flowing and buries the
				// root cause under newer updates...
				mc.Set(292, 20, 2)
				for i := 0; i < 255; i++ {
					mc.Call("mc_hold", 292) // ...255 times: the 8-bit wrap
				}
				mc.Set(356, 40, 2) // crawler frees, block reused, self-link
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				m := &systems.MC{Deployment: d}
				if trap := m.Restart(); trap != nil {
					return trap
				}
				_, trap := m.Call("mc_get", 36)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error { return mcConsistency(mc) }
			c.RunInvariants = func() bool { return mcInvariants(mc) }
			return c, nil
		},
	}
}

// F2: Memcached flush_all logic bug -> data loss.
func F2() Builder {
	return Builder{
		Meta: Meta{
			ID: "f2", System: "memcached",
			Fault:       "flush_all logic bug",
			Consequence: "Data loss",
			Kind:        detector.FailDataLoss,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			mc, err := systems.NewMC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: mc.Deployment}
			c.Meta = F2().Meta
			c.Workload = func(ops int, tick func() bool) { mcWorkload(mc, ops, tick) }
			c.Trigger = func() *vm.Trap {
				mc.Call("mc_flush", 1_000_000) // flush_all at a future time
				return nil
			}
			// Key 43 is a workload key set long before the trigger, so any
			// pre-trigger snapshot contains it.
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				m := &systems.MC{Deployment: d}
				if trap := m.Restart(); trap != nil {
					return trap
				}
				v, trap := m.Call("mc_get", 43)
				if trap != nil {
					return trap
				}
				if v == -1 {
					return synthetic(1002, "known key flushed away")
				}
				return nil
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			// The symptom is the flushed-miss return inside mc_get (the
			// second return; the first is the plain lookup miss).
			c.FaultInstrs = func(*vm.Trap) []*ir.Instr {
				rets := c.D.RetInstrs("mc_get")
				if len(rets) >= 2 {
					return rets[1:2]
				}
				return rets
			}
			c.Consistency = func() error { return mcConsistency(mc) }
			c.RunInvariants = func() bool { return mcInvariants(mc) }
			return c, nil
		},
	}
}

// F3: Memcached hashtable lock data race -> data loss. The trigger happens
// "naturally" mid-workload (two unlocked concurrent inserts), like the
// paper's f3.
func F3() Builder {
	return Builder{
		Meta: Meta{
			ID: "f3", System: "memcached",
			Fault:       "Hashtable lock data race",
			Consequence: "Data loss",
			Kind:        detector.FailDataLoss,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			mc, err := systems.NewMC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: mc.Deployment}
			c.Meta = F3().Meta
			var lostKey int64
			c.Workload = func(ops int, tick func() bool) { mcWorkload(mc, ops, tick) }
			c.Trigger = func() *vm.Trap {
				// Two fresh same-bucket keys race their inserts.
				mc.Call("mc_race", 301, 11, 365, 22)
				v1, _ := mc.Get(301)
				v2, _ := mc.Get(365)
				switch {
				case v1 == -1:
					lostKey = 301
				case v2 == -1:
					lostKey = 365
				}
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				if lostKey == 0 {
					return nil // race did not lose an insert this run
				}
				m := &systems.MC{Deployment: d}
				if trap := m.Restart(); trap != nil {
					return trap
				}
				v, trap := m.Call("mc_get", lostKey)
				if trap != nil {
					return trap
				}
				if v == -1 {
					return synthetic(1003, "racy insert lost")
				}
				return nil
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			// Lookup-miss return of mc_get.
			c.FaultInstrs = func(*vm.Trap) []*ir.Instr {
				rets := c.D.RetInstrs("mc_get")
				if len(rets) >= 1 {
					return rets[:1]
				}
				return nil
			}
			c.Consistency = func() error { return mcConsistency(mc) }
			c.RunInvariants = func() bool { return mcInvariants(mc) }
			return c, nil
		},
	}
}

// F4: Memcached integer overflow in append -> segfault.
func F4() Builder {
	return Builder{
		Meta: Meta{
			ID: "f4", System: "memcached",
			Fault:             "Integer overflow in append",
			Consequence:       "Segfault",
			Kind:              detector.FailCrash,
			AddrFault:         true,
			DetectImmediately: true,
			// A stored length larger than the allocated block is checkable
			// (Table 7 ✓).
			InvariantDetectable: true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			mc, err := systems.NewMC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: mc.Deployment}
			c.Meta = F4().Meta
			c.Workload = func(ops int, tick func() bool) { mcWorkload(mc, ops, tick) }
			c.Trigger = func() *vm.Trap {
				// Key 205 is outside the workload key space, so the corrupt
				// length survives until the failing GET.
				mc.Set(205, 1, 4)
				mc.Call("mc_append", 205, 70_000, 9)
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				m := &systems.MC{Deployment: d}
				if trap := m.Restart(); trap != nil {
					return trap
				}
				_, trap := m.Call("mc_get", 205)
				return trap
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = instrOfTrap
			c.Consistency = func() error {
				if err := mcConsistency(mc); err != nil {
					return err
				}
				// The appended key itself must read cleanly.
				if _, err := mc.Get(205); err != nil {
					return err
				}
				return nil
			}
			c.RunInvariants = func() bool {
				// Invariant: stored value length fits its block.
				it, trap := mc.Call("mc_lookup", 205)
				if trap != nil || it == 0 {
					return true
				}
				vbuf, _ := mc.Pool.Load(uint64(it) + 1)
				vlen, _ := mc.Pool.Load(uint64(it) + 2)
				size, err := mc.Pool.BlockSize(vbuf)
				if err != nil {
					return true
				}
				return int(vlen) > size
			}
			return c, nil
		},
	}
}

// F5: Memcached rehashing flag bit flip (hardware fault) -> data loss.
func F5() Builder {
	return Builder{
		Meta: Meta{
			ID: "f5", System: "memcached",
			Fault:       "Rehashing flag bit flip",
			Consequence: "Data loss",
			Kind:        detector.FailDataLoss,
			// The only case a checksum guard catches (§6.6).
			ChecksumDetectable: true,
		},
		New: func(opts systems.DeployOpts) (*Case, error) {
			mc, err := systems.NewMC(opts)
			if err != nil {
				return nil, err
			}
			c := &Case{D: mc.Deployment}
			c.Meta = F5().Meta
			// Guard over the root config words, updated at init time the
			// way a checksum defense would maintain it.
			root, _ := mc.Pool.Root(0)
			guard := &detector.ChecksumGuard{Name: "root-flags", Addr: root + 6, Words: 3}
			guard.Update(mc.Pool)
			c.Workload = func(ops int, tick func() bool) { mcWorkload(mc, ops, tick) }
			c.Trigger = func() *vm.Trap {
				mc.Pool.InjectBitFlip(root+6, 0, true)
				return nil
			}
			c.ProbeOn = func(d *systems.Deployment) *vm.Trap {
				m := &systems.MC{Deployment: d}
				if trap := m.Restart(); trap != nil {
					return trap
				}
				v, trap := m.Call("mc_get", 43)
				if trap != nil {
					return trap
				}
				if v == -1 {
					return synthetic(1005, "lookups routed to missing table")
				}
				return nil
			}
			c.Probe = func() *vm.Trap { return c.ProbeOn(c.D) }
			c.FaultInstrs = func(*vm.Trap) []*ir.Instr {
				rets := c.D.RetInstrs("mc_get")
				if len(rets) >= 1 {
					return rets[:1]
				}
				return nil
			}
			c.Consistency = func() error { return mcConsistency(mc) }
			c.RunInvariants = func() bool { return mcInvariants(mc) }
			c.RunChecksum = func() bool {
				ok, err := guard.Verify(mc.Pool)
				return err != nil || !ok
			}
			return c, nil
		},
	}
}
