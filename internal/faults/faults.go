// Package faults reproduces the twelve real-world hard faults of the
// paper's evaluation (Table 2) on the PML target systems, wrapping each as
// a uniform scenario the experiments can run under Arthas, pmCRIU, and
// ArCkpt.
//
// Each case supplies: a deployment, a pre-fault workload (with a tick
// callback so the pmCRIU baseline can take periodic snapshots), the bug
// trigger, a probe that restarts the system and reproduces the symptom
// (the paper's re-execution script), the fault-instruction resolution, and
// the post-recovery consistency / invariant / checksum checks used by
// Tables 4 and 7.
package faults

import (
	"fmt"

	"arthas/internal/detector"
	"arthas/internal/ir"
	"arthas/internal/systems"
	"arthas/internal/vm"
)

// Meta describes one fault case (one row of Table 2).
type Meta struct {
	ID          string // "f1".."f12"
	System      string
	Fault       string
	Consequence string
	Kind        detector.FailureKind
	// IsLeak routes mitigation through the leak path (§4.7).
	IsLeak bool
	// AddrFault marks invalid-address failures for the slicer.
	AddrFault bool
	// DetectImmediately marks bugs whose failure manifests on the very
	// next client request (the same client reads the value it just
	// appended): the run stops at detection, as the paper begins
	// mitigation "whenever the bug is detected".
	DetectImmediately bool
	// InvariantDetectable / ChecksumDetectable are evaluated live by
	// RunInvariants / RunChecksum; these fields carry the paper's
	// expectation for cross-checking (Table 7 and §6.6).
	InvariantDetectable bool
	ChecksumDetectable  bool
}

// Case is a deployed, runnable fault scenario.
type Case struct {
	Meta
	D *systems.Deployment

	// Workload runs ops pre-fault operations; tick is invoked once per
	// logical operation (pmCRIU snapshot cadence). tick may be nil.
	Workload func(ops int, tick func() bool)
	// Trigger fires the bug. For cases whose trigger is an injected
	// crash, Trigger returns the observed trap.
	Trigger func() *vm.Trap
	// Probe restarts the system and reproduces the failure symptom;
	// nil = healthy. Synthetic traps (UserFail with case-specific codes)
	// represent data-loss symptoms.
	Probe func() *vm.Trap
	// ProbeOn is Probe generalized over the deployment it runs against, so
	// the parallel reactor can probe copy-on-write forks of the live
	// deployment concurrently (Probe must stay pinned to c.D). Cases that
	// define ProbeOn set Probe = func() { return ProbeOn(c.D) }. Nil for
	// leak cases, whose mitigation never re-executes speculatively.
	ProbeOn func(d *systems.Deployment) *vm.Trap
	// FaultInstrs resolves the fault instruction(s) from the probe trap.
	FaultInstrs func(trap *vm.Trap) []*ir.Instr
	// Consistency validates the recovered system beyond the probe
	// (Table 4): pool integrity, extended mixed workload, domain checks.
	Consistency func() error
	// RunInvariants evaluates the common domain invariants against the
	// CURRENT (failed) state and reports whether any catches the fault.
	RunInvariants func() bool
	// RunChecksum reports whether a checksum guard catches the fault.
	// Nil when the case has no checksummable corrupt region.
	RunChecksum func() bool
}

// Builder constructs a fresh Case (systems are stateful, so experiments
// build a new one per run).
type Builder struct {
	Meta
	New func(opts systems.DeployOpts) (*Case, error)
}

// All returns the twelve builders in paper order.
func All() []Builder {
	return []Builder{
		F1(), F2(), F3(), F4(), F5(), F6(),
		F7(), F8(), F9(), F10(), F11(), F12(),
	}
}

// ByID returns the builder for a fault id ("f1".."f12").
func ByID(id string) (Builder, error) {
	for _, b := range All() {
		if b.ID == id {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("faults: unknown case %q", id)
}

// synthetic builds a data-loss style trap for probe results that are wrong
// values rather than crashes.
func synthetic(code int64, msg string) *vm.Trap {
	return &vm.Trap{Kind: vm.TrapUserFail, Code: code, Msg: msg}
}

// instrOfTrap is the common fault-instruction resolution for trapping
// failures.
func instrOfTrap(trap *vm.Trap) []*ir.Instr {
	if trap == nil || trap.Instr == nil {
		return nil
	}
	return []*ir.Instr{trap.Instr}
}
