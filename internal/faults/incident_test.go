package faults

import (
	"bytes"
	"testing"

	"arthas/internal/provenance"
	"arthas/internal/reactor"
)

// Every fault family that reaches mitigation must yield an incident report
// that (a) is byte-identical run-to-run and across worker counts, (b) decodes
// under the arthas-incident/v1 schema, and (c) names the true root-cause
// write site — instruction, transaction, and checkpoint version — for the
// first reverted entry (ISSUE 6 acceptance).
func TestIncidentDeterminismAndRootCause(t *testing.T) {
	for _, b := range All() {
		if b.IsLeak {
			continue // leak mitigation never builds an incident
		}
		b := b
		t.Run(b.ID, func(t *testing.T) {
			run := func(workers int) *Outcome {
				cfg := RunConfig{Provenance: true}
				cfg.Reactor = reactor.DefaultConfig()
				cfg.Reactor.Workers = workers
				out, err := RunArthas(b, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if out.Incident == nil {
					t.Fatal("no incident assembled")
				}
				return out
			}
			seq := run(1)
			seq2 := run(1)
			par := run(4)

			j1, j2, jp := seq.Incident.JSON(), seq2.Incident.JSON(), par.Incident.JSON()
			if !bytes.Equal(j1, j2) {
				t.Fatalf("incident not reproducible at workers=1:\n--- run1\n%s\n--- run2\n%s", j1, j2)
			}
			if !bytes.Equal(j1, jp) {
				t.Fatalf("incident differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", j1, jp)
			}

			inc, err := provenance.DecodeIncident(j1)
			if err != nil {
				t.Fatalf("incident does not round-trip: %v", err)
			}
			if inc.Case != b.ID || inc.Schema != provenance.IncidentSchema {
				t.Fatalf("incident identity = %s/%s", inc.Schema, inc.Case)
			}
			if inc.Signature.Kind == "" {
				t.Fatal("incident lost the failure signature")
			}
			if seq.Recovered && inc.Outcome == "not-recovered" {
				t.Fatalf("outcome %q contradicts Recovered=true", inc.Outcome)
			}

			// Lineage addresses must come out sorted (determinism contract).
			for i := 1; i < len(inc.Lineage); i++ {
				if inc.Lineage[i-1].Addr >= inc.Lineage[i].Addr {
					t.Fatalf("lineage not strictly ascending at %d: %#x >= %#x",
						i, inc.Lineage[i-1].Addr, inc.Lineage[i].Addr)
				}
			}

			rep := seq.Report
			if rep == nil || len(rep.RevertedSeqs) == 0 {
				if inc.RootCause != nil {
					t.Fatal("root cause named without any reverted version")
				}
				return // restart-only / no-reversion family: nothing to attribute
			}

			rc := inc.RootCause
			if rc == nil {
				t.Fatal("reverted versions but no root cause")
			}
			if rc.Seq != rep.RevertedSeqs[0] {
				t.Fatalf("root cause seq = %d, want first reverted %d", rc.Seq, rep.RevertedSeqs[0])
			}
			if rc.GUID == 0 || rc.Site == nil || rc.Site.Fn == "" || rc.Site.Pos == "" {
				t.Fatalf("root cause site unresolved: %+v", rc)
			}
			// The named site must be the plan candidate actually reverted
			// first, and the entry/version must exist in the checkpoint log
			// (re-verified through the raw report, not the incident itself).
			found := false
			for _, ev := range inc.Plan {
				if ev.Seq == rc.Seq {
					found = true
					if ev.GUID != rc.GUID {
						t.Fatalf("root cause guid %d disagrees with plan candidate %d", rc.GUID, ev.GUID)
					}
					if !ev.Reverted {
						t.Fatal("root-cause candidate not marked reverted in the plan")
					}
				}
			}
			if !found {
				t.Fatalf("root cause seq %d absent from the plan", rc.Seq)
			}
			if rc.EntryAddr == 0 || rc.EntryWords == 0 || rc.VersionIndex < 0 {
				t.Fatalf("root cause missing checkpoint coordinates: %+v", rc)
			}
		})
	}
}

// The incident's human rendering must mention the headline facts so
// `arthas-inspect incident` post-mortems stand alone.
func TestIncidentTextRendering(t *testing.T) {
	cfg := RunConfig{Provenance: true}
	cfg.Reactor = reactor.DefaultConfig()
	b, err := ByID("f6")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunArthas(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Incident == nil {
		t.Fatal("no incident")
	}
	text := out.Incident.Text()
	for _, want := range []string{"incident (arthas-incident/v1)", "case f6", "signature:", "mitigation:", "outcome:"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
}
