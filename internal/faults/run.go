package faults

import (
	"time"

	"arthas/internal/baseline"
	"arthas/internal/detector"
	"arthas/internal/obs"
	"arthas/internal/provenance"
	"arthas/internal/reactor"
	"arthas/internal/systems"
	"arthas/internal/vm"
)

// RunConfig parameterizes one fault-case execution (the paper's 5-minute
// run with the trigger at the halfway point, scaled to logical operations).
type RunConfig struct {
	// WorkloadOps is the total logical operations (default 600; leak
	// cases default higher so the leak can cross its threshold).
	WorkloadOps int
	// TriggerFrac is the fraction of the workload after which the bug is
	// triggered (default 0.5; the f5/f8 probabilistic pmCRIU results come
	// from per-seed variation of this).
	TriggerFrac float64
	// Snapshots is pmCRIU's snapshot count across the workload (paper:
	// one per minute of five).
	Snapshots int
	// Reactor configures Arthas's reversion strategy.
	Reactor reactor.Config
	// ArCkptAttempts bounds the ArCkpt baseline (timeout analogue).
	ArCkptAttempts int
	// LeakThresholdPct for leak-monitor cases (default 40).
	LeakThresholdPct int
	// MaxVersions per checkpoint entry (0 = the paper default of 3).
	MaxVersions int
	// Obs, when non-nil, receives the full pipeline telemetry of the run:
	// pipeline.run / pipeline.detect / pipeline.recovered phase spans plus
	// every component's counters. The runner always attaches its own
	// recorder internally (Outcome tallies are derived from it), so this
	// sink only adds a second consumer.
	Obs obs.Sink
	// Provenance attaches the write-lineage index to the deployment and
	// makes RunArthas assemble an incident report (Outcome.Incident) after
	// mitigation (Arthas non-leak runs only).
	Provenance bool
	// Optimize runs the flush/fence-elimination pass on the system before
	// deployment (all three stacks honor it, so baselines stay comparable).
	Optimize bool
}

func (cfg RunConfig) withDefaults(m Meta) RunConfig {
	if cfg.WorkloadOps == 0 {
		if m.IsLeak {
			cfg.WorkloadOps = 4000
		} else {
			cfg.WorkloadOps = 600
		}
	}
	if cfg.TriggerFrac == 0 {
		cfg.TriggerFrac = 0.5
	}
	if cfg.Snapshots == 0 {
		cfg.Snapshots = 5
	}
	if cfg.Reactor.MaxAttempts == 0 {
		workers := cfg.Reactor.Workers
		cfg.Reactor = reactor.DefaultConfig()
		cfg.Reactor.Workers = workers
	}
	if cfg.ArCkptAttempts == 0 {
		cfg.ArCkptAttempts = 64
	}
	if cfg.LeakThresholdPct == 0 {
		cfg.LeakThresholdPct = 40
	}
	return cfg
}

// Outcome reports one mitigation run.
type Outcome struct {
	Meta      Meta
	Solution  string // "arthas", "pmcriu", "arckpt"
	HardFault bool   // the detector flagged recurrence across restart
	Recovered bool
	Attempts  int
	// DataLossPct: Arthas/ArCkpt = reverted checkpoint versions over all
	// recorded versions; pmCRIU = durable words discarded over words that
	// had ever been written.
	DataLossPct float64
	// RevertedItems counts discarded checkpoint versions (Arthas/ArCkpt)
	// or snapshots unwound (pmCRIU).
	RevertedItems int
	// Consistent is nil if the Table 4 battery passed post-recovery.
	Consistent error
	// Freed counts leak-mitigation freed blocks (leak cases).
	Freed int
	// MitigationTime is the wall time of the mitigation phase only.
	MitigationTime time.Duration
	// TimedOut marks budget exhaustion.
	TimedOut bool
	// Report is the raw reactor report (Arthas non-leak runs only). Its
	// outcome fields are deterministic across worker counts; Attempts
	// above is telemetry-derived and counts speculative re-executions too.
	Report *reactor.Report
	// Incident is the assembled incident report (RunArthas with
	// cfg.Provenance, non-leak cases that reached mitigation).
	Incident *provenance.Incident
}

// runToFailure deploys, applies workload+trigger, confirms the failure and
// its recurrence across restart (the soft-to-hard confirmation), and
// returns the case plus the observed trap.
func runToFailure(b Builder, cfg RunConfig, opts systems.DeployOpts, tick func() bool) (*Case, *vm.Trap, bool, error) {
	c, err := b.New(opts)
	if err != nil {
		return nil, nil, false, err
	}
	sink := obs.OrNop(opts.Obs)
	// The machine is replaced on every restart; read it at stamp time.
	obs.WireClock(sink, func() int64 { return c.D.M.Steps() })
	det := detector.New()
	det.SetSink(sink)
	det.LeakThresholdPct = cfg.LeakThresholdPct
	if c.D.Prov != nil {
		det.Lineage = func(addr uint64) (int, bool) {
			rec, ok := c.D.Prov.Lookup(addr)
			return rec.GUID, ok
		}
	}

	pre := int(float64(cfg.WorkloadOps) * cfg.TriggerFrac)
	post := cfg.WorkloadOps - pre

	stop := false
	wrapTick := func() bool {
		if tick != nil && !tick() {
			stop = true
			return false
		}
		if c.IsLeak && det.CheckLeak(c.D.Pool) {
			stop = true
			return false
		}
		return true
	}
	runSpan := sink.Start("pipeline.run", obs.A("case", c.Meta.ID), obs.A("ops", cfg.WorkloadOps))
	c.Workload(pre, wrapTick)
	var trap *vm.Trap
	if !stop {
		c.Trigger()
		if c.DetectImmediately {
			// The failing request arrives right after the trigger.
			trap = c.Probe()
		}
		if trap == nil && !stop {
			c.Workload(post, wrapTick)
		}
	}
	runSpan.End()

	// Failure manifests via the probe; observe twice (across restart) to
	// confirm a hard fault.
	detSpan := sink.Start("pipeline.detect")
	defer detSpan.End()
	if trap == nil {
		trap = c.Probe()
	}
	if trap == nil {
		detSpan.SetAttr("outcome", "healthy")
		return c, nil, false, nil
	}
	_, _ = det.Observe(trap)
	trap2 := c.Probe()
	hard := false
	if trap2 != nil {
		_, hard = det.Observe(trap2)
		trap = trap2
	}
	detSpan.SetAttr("outcome", detector.KindOfTrap(trap.Kind).String())
	detSpan.SetAttr("hard", hard)
	return c, trap, hard, nil
}

// RunArthas executes a case end-to-end under the Arthas toolchain. It
// always attaches an obs.Recorder to the deployment: the Outcome's
// attempt/reversion/data-loss tallies are read back from the recorded
// telemetry (merged with cfg.Obs when set), so the paper tables and the
// live metric stream come from the same counters.
func RunArthas(b Builder, cfg RunConfig) (*Outcome, error) {
	cfg = cfg.withDefaults(b.Meta)
	rec := obs.NewRecorder()
	sink := obs.Multi(rec, cfg.Obs)
	c, trap, hard, err := runToFailure(b, cfg,
		systems.DeployOpts{Checkpoint: true, Trace: true, MaxVersions: cfg.MaxVersions,
			Obs: sink, Provenance: cfg.Provenance, Optimize: cfg.Optimize}, nil)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Meta: c.Meta, Solution: "arthas", HardFault: hard}
	if trap == nil {
		out.Recovered = true // nothing to mitigate
		return out, nil
	}

	start := time.Now()
	if c.IsLeak {
		// §4.7: restart, record the annotated recovery function's access
		// set, diff against the checkpoint log's live allocations, free.
		if tp := c.D.Restart(); tp != nil {
			return out, nil
		}
		rep := reactor.MitigateLeak(c.D.Pool, c.D.Log, c.D.M.RecoveryAccess, nil)
		out.Freed = len(rep.FreedAddr)
		out.Attempts = 1
		out.Recovered = c.Probe() == nil
		out.MitigationTime = time.Since(start)
		if out.Recovered {
			sink.Start("pipeline.recovered", obs.A("solution", "arthas-leak")).End()
			if c.Consistency != nil {
				out.Consistent = c.Consistency()
			}
		}
		return out, nil
	}

	ctx := &reactor.Context{
		Analysis:  c.D.Res,
		Trace:     c.D.Tr,
		Log:       c.D.Log,
		Pool:      c.D.Pool,
		Faults:    c.FaultInstrs(trap),
		AddrFault: c.AddrFault,
		ReExec:    c.Probe,
		Obs:       sink,
	}
	if cfg.Reactor.Workers > 1 && c.ProbeOn != nil {
		ctx.ForkSession = func() (*reactor.Session, error) {
			fd := c.D.Fork()
			return &reactor.Session{
				Pool:   fd.Pool,
				Log:    fd.Log,
				ReExec: func() *vm.Trap { return c.ProbeOn(fd) },
			}, nil
		}
	}
	// Freeze the provenance evidence at failure time: sequential probe
	// re-executions persist through the primary pool and log, so building
	// the incident from the live index would tie the report to the worker
	// count (docs/PARALLEL_MITIGATION.md, "Determinism").
	var provAtFailure *provenance.Index
	var versionsAtFailure uint64
	if cfg.Provenance && c.D.Prov != nil {
		provAtFailure = c.D.Prov.Snapshot()
		versionsAtFailure = c.D.Log.TotalVersions()
	}
	rep := reactor.Mitigate(cfg.Reactor, ctx)
	out.Report = rep
	out.Recovered = rep.Recovered
	if provAtFailure != nil {
		out.Incident = provenance.BuildIncident(provenance.IncidentInput{
			Case:              c.Meta.ID,
			System:            c.Meta.System,
			Fault:             c.Meta.Fault,
			Consequence:       c.Meta.Consequence,
			Signature:         detector.SignatureOf(trap),
			HardFault:         hard,
			Trap:              trap,
			Report:            rep,
			Index:             provAtFailure,
			Log:               c.D.Log,
			Analysis:          c.D.Res,
			VersionsAtFailure: versionsAtFailure,
		})
		c.D.Prov.Publish(sink)
	}
	// Tallies come from the telemetry, not private bookkeeping: attempts =
	// recorded re-execution spans, reversion = the checkpoint log's own
	// reverted/total gauges (trial restores already netted out).
	out.Attempts = rec.SpanCount("reactor.reexec")
	out.RevertedItems = int(rec.GaugeValue("ckpt.reverted_versions"))
	if total := rec.GaugeValue("ckpt.total_versions"); total > 0 {
		out.DataLossPct = 100 * float64(out.RevertedItems) / float64(total)
	}
	out.MitigationTime = time.Since(start)
	out.TimedOut = !rep.Recovered
	if rep.Recovered {
		sink.Start("pipeline.recovered", obs.A("solution", "arthas")).End()
		if c.Consistency != nil {
			out.Consistent = c.Consistency()
		}
	}
	return out, nil
}

// RunPmCRIU executes a case under the coarse snapshot baseline.
func RunPmCRIU(b Builder, cfg RunConfig) (*Outcome, error) {
	cfg = cfg.withDefaults(b.Meta)
	// pmCRIU attaches no Arthas instrumentation; snapshots come from the
	// tick callback. (Checkpointing stays on only to measure nothing —
	// we deploy vanilla to keep overhead honest.)
	var criu *baseline.PmCRIU
	interval := uint64(cfg.WorkloadOps / cfg.Snapshots)
	if interval == 0 {
		interval = 1
	}
	tick := func() bool {
		criu.Tick(1)
		return true
	}
	var caseRef *Case
	deploy := func(opts systems.DeployOpts) (*Case, error) {
		c, err := b.New(opts)
		if err != nil {
			return nil, err
		}
		criu = baseline.NewPmCRIU(c.D.Pool, interval)
		criu.Obs = cfg.Obs
		caseRef = c
		return c, nil
	}
	c, trap, hard, err := runToFailure(wrapBuilder(b, deploy), cfg,
		systems.DeployOpts{SkipAnalysis: true, Obs: cfg.Obs, Optimize: cfg.Optimize}, tick)
	if err != nil {
		return nil, err
	}
	_ = caseRef
	out := &Outcome{Meta: c.Meta, Solution: "pmcriu", HardFault: hard}
	if trap == nil {
		out.Recovered = true
		return out, nil
	}
	// Measure pre-mitigation durable footprint for the loss metric.
	written := writtenWords(c)
	start := time.Now()
	rep := criu.Mitigate(c.Probe)
	out.Recovered = rep.Recovered
	out.Attempts = rep.Attempts
	out.RevertedItems = rep.SnapshotsBack
	out.MitigationTime = time.Since(start)
	out.TimedOut = rep.TimedOut
	if written > 0 {
		out.DataLossPct = 100 * float64(rep.DiscardedWords) / float64(written)
		if out.DataLossPct > 100 {
			// The coarse diff can exceed the live-word footprint because
			// it also counts discarded allocator metadata and freed-block
			// residue; clamp to "lost everything".
			out.DataLossPct = 100
		}
	}
	if rep.Recovered {
		if obs.Enabled(cfg.Obs) {
			cfg.Obs.Start("pipeline.recovered", obs.A("solution", "pmcriu")).End()
		}
		if c.Consistency != nil {
			out.Consistent = c.Consistency()
		}
	}
	return out, nil
}

// RunArCkpt executes a case under the dependency-blind fine-grained
// baseline (checkpoint log attached, analyzer disabled). Like RunArthas, it
// derives the Outcome's reversion tallies from an attached recorder.
func RunArCkpt(b Builder, cfg RunConfig) (*Outcome, error) {
	cfg = cfg.withDefaults(b.Meta)
	rec := obs.NewRecorder()
	sink := obs.Multi(rec, cfg.Obs)
	c, trap, hard, err := runToFailure(b, cfg,
		systems.DeployOpts{Checkpoint: true, SkipAnalysis: true, Obs: sink, Optimize: cfg.Optimize}, nil)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Meta: c.Meta, Solution: "arckpt", HardFault: hard}
	if trap == nil {
		out.Recovered = true
		return out, nil
	}
	start := time.Now()
	rep := baseline.MitigateArCkpt(c.D.Pool, c.D.Log, c.Probe,
		baseline.ArCkptConfig{MaxAttempts: cfg.ArCkptAttempts, Obs: sink})
	out.Recovered = rep.Recovered
	out.Attempts = rep.Attempts
	out.RevertedItems = int(rec.GaugeValue("ckpt.reverted_versions"))
	out.MitigationTime = time.Since(start)
	out.TimedOut = rep.TimedOut
	if total := rec.GaugeValue("ckpt.total_versions"); total > 0 {
		out.DataLossPct = 100 * float64(out.RevertedItems) / float64(total)
	}
	if rep.Recovered {
		sink.Start("pipeline.recovered", obs.A("solution", "arckpt")).End()
		if c.Consistency != nil {
			out.Consistent = c.Consistency()
		}
	}
	return out, nil
}

// wrapBuilder lets a runner intercept case construction (pmCRIU needs the
// pool before the workload starts).
func wrapBuilder(b Builder, construct func(systems.DeployOpts) (*Case, error)) Builder {
	return Builder{Meta: b.Meta, New: construct}
}

// writtenWords estimates how many durable words the run wrote — the
// denominator for pmCRIU's coarse data-loss metric.
func writtenWords(c *Case) int {
	// Live allocation footprint approximates the data the system holds.
	return c.D.Pool.LiveWords()
}

// WithDefaultsExported exposes the default-filling for diagnostics tooling.
func (cfg RunConfig) WithDefaultsExported(m Meta) RunConfig { return cfg.withDefaults(m) }

// DebugRunToFailure exposes runToFailure for diagnostics tooling.
func DebugRunToFailure(b Builder, cfg RunConfig, opts systems.DeployOpts) (*Case, *vm.Trap, bool, error) {
	return runToFailure(b, cfg, opts, nil)
}
