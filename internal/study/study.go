// Package study encodes the paper's empirical hard-fault study (§2): the
// 28 collected bugs with their systems, origins, root causes, consequences,
// and fault-propagation types. The experiment harness renders Table 1 and
// Figures 2–3 from this dataset and cross-checks the distributions the
// paper reports (logic errors 46%, race conditions 18%, repeated crashes
// 32%, type-II propagation 68%, ...).
package study

import (
	"fmt"
	"sort"
	"strings"
)

// Origin distinguishes bugs found in new PM systems from historical bugs
// reproduced in PM ports of mature systems (§2.1).
type Origin int

// Origins.
const (
	NewSystem Origin = iota
	PortedSystem
)

func (o Origin) String() string {
	if o == NewSystem {
		return "New"
	}
	return "Port"
}

// RootCause categories (§2.4, Figure 2).
type RootCause int

// Root causes.
const (
	LogicError RootCause = iota
	IntegerOverflow
	RaceCondition
	BufferOverflow
	HardwareFault
	MemoryLeak
)

var rootCauseNames = [...]string{
	LogicError: "Logic Error", IntegerOverflow: "Integer Overflow",
	RaceCondition: "Race Condition", BufferOverflow: "Buffer Overflow",
	HardwareFault: "H/W Fault", MemoryLeak: "Memory Leak",
}

func (r RootCause) String() string { return rootCauseNames[r] }

// Consequence categories (§2.5, Figure 3).
type Consequence int

// Consequences.
const (
	RepeatedCrash Consequence = iota
	WrongResult
	Corruption
	OutOfSpace
	RepeatedHang
	PersistentLeak
	DataLoss
)

var consequenceNames = [...]string{
	RepeatedCrash: "Repeated Crash", WrongResult: "Wrong Result",
	Corruption: "Corruption", OutOfSpace: "Out of Space",
	RepeatedHang: "Repeated Hang", PersistentLeak: "Persistent Leak",
	DataLoss: "Data Loss",
}

func (c Consequence) String() string { return consequenceNames[c] }

// PropagationType classifies how the fault reaches persistence (§2.6).
type PropagationType int

// Propagation types.
const (
	// TypeI: a PM-backed variable holds a bad value that directly causes
	// the failure.
	TypeI PropagationType = iota
	// TypeII: a bad value propagates across volatile and persistent
	// variables before causing the failure.
	TypeII
	// TypeIII: persistent variables misbehave without bad values (e.g.
	// leaks from missing frees).
	TypeIII
)

func (p PropagationType) String() string {
	return [...]string{"Type I", "Type II", "Type III"}[p]
}

// Bug is one studied case.
type Bug struct {
	System      string
	Origin      Origin
	Summary     string
	RootCause   RootCause
	Consequence Consequence
	Type        PropagationType
}

// Dataset returns the 28 studied bugs. The per-system counts follow
// Table 1 (CCEH 1, Dash 1, PMEMKV 2, LevelHash 2, RECIPE 2, Memcached 9,
// Redis 11); root-cause, consequence, and propagation-type distributions
// follow Figures 2, 3, and §2.6.
func Dataset() []Bug {
	return []Bug{
		// --- New PM systems (8 bugs) ---
		{"CCEH", NewSystem, "directory doubling leaves stale global depth", LogicError, RepeatedHang, TypeII},
		{"Dash", NewSystem, "displacement metadata inconsistent after split", LogicError, WrongResult, TypeII},
		{"PMEMKV", NewSystem, "async lazy free leaks items on crash", MemoryLeak, PersistentLeak, TypeIII},
		{"PMEMKV", NewSystem, "engine header update drops record index", LogicError, DataLoss, TypeII},
		{"LevelHash", NewSystem, "resize level pointer persisted early", LogicError, RepeatedCrash, TypeI},
		{"LevelHash", NewSystem, "slot bitmap race on concurrent insert", RaceCondition, WrongResult, TypeII},
		{"RECIPE", NewSystem, "converted index persists interior node pointer", LogicError, RepeatedCrash, TypeI},
		{"RECIPE", NewSystem, "leaf merge double-links sibling", LogicError, RepeatedHang, TypeII},

		// --- Memcached (PM port, 9 bugs) ---
		{"Memcached", PortedSystem, "refcount overflow frees linked item", IntegerOverflow, RepeatedHang, TypeII},
		{"Memcached", PortedSystem, "flush_all future time removes valid items", LogicError, DataLoss, TypeII},
		{"Memcached", PortedSystem, "hashtable lock data race loses insert", RaceCondition, DataLoss, TypeII},
		{"Memcached", PortedSystem, "integer overflow in append corrupts length", IntegerOverflow, RepeatedCrash, TypeII},
		{"Memcached", PortedSystem, "rehashing flag bit flip misroutes lookups", HardwareFault, DataLoss, TypeI},
		{"Memcached", PortedSystem, "slab rebalance moves pinned item", RaceCondition, Corruption, TypeII},
		{"Memcached", PortedSystem, "LRU crawler frees item under iteration", RaceCondition, RepeatedCrash, TypeII},
		{"Memcached", PortedSystem, "expiration clock skew marks items dead", LogicError, DataLoss, TypeII},
		{"Memcached", PortedSystem, "stats size accounting leaks per reconnect", MemoryLeak, OutOfSpace, TypeIII},

		// --- Redis (PM port, 11 bugs) ---
		{"Redis", PortedSystem, "listpack encoding overflows size header", BufferOverflow, RepeatedCrash, TypeII},
		{"Redis", PortedSystem, "shared object refcount double decrement", LogicError, RepeatedCrash, TypeII},
		{"Redis", PortedSystem, "slowlog trim never frees evicted entries", MemoryLeak, PersistentLeak, TypeIII},
		{"Redis", PortedSystem, "ziplist cascade update writes past buffer", BufferOverflow, Corruption, TypeII},
		{"Redis", PortedSystem, "dict rehash index persisted mid-step", LogicError, RepeatedCrash, TypeII},
		{"Redis", PortedSystem, "expire propagates wrong ttl to persistent copy", LogicError, WrongResult, TypeII},
		{"Redis", PortedSystem, "bitfield offset overflow writes neighbor key", IntegerOverflow, Corruption, TypeI},
		{"Redis", PortedSystem, "defrag races key deletion", RaceCondition, RepeatedCrash, TypeII},
		{"Redis", PortedSystem, "stream listpack master entry corrupt on reload", LogicError, RepeatedCrash, TypeI},
		{"Redis", PortedSystem, "module data type persists dangling aux pointer", LogicError, RepeatedCrash, TypeI},
		{"Redis", PortedSystem, "radix tree node bit flip breaks iteration", HardwareFault, RepeatedHang, TypeII},
	}
}

// Count is a labeled tally used by the distribution tables.
type Count struct {
	Label string
	N     int
	Pct   float64
}

func tally(labels []string) []Count {
	m := map[string]int{}
	var order []string
	for _, l := range labels {
		if m[l] == 0 {
			order = append(order, l)
		}
		m[l]++
	}
	out := make([]Count, 0, len(order))
	for _, l := range order {
		out = append(out, Count{Label: l, N: m[l], Pct: 100 * float64(m[l]) / float64(len(labels))})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].N > out[j].N })
	return out
}

// BySystem returns Table 1: bug counts per system with origin.
func BySystem() []Count {
	var labels []string
	for _, b := range Dataset() {
		labels = append(labels, b.System)
	}
	return tally(labels)
}

// OriginOf returns whether a studied system is new or ported.
func OriginOf(system string) Origin {
	for _, b := range Dataset() {
		if b.System == system {
			return b.Origin
		}
	}
	return NewSystem
}

// ByRootCause returns Figure 2's distribution.
func ByRootCause() []Count {
	var labels []string
	for _, b := range Dataset() {
		labels = append(labels, b.RootCause.String())
	}
	return tally(labels)
}

// ByConsequence returns Figure 3's distribution.
func ByConsequence() []Count {
	var labels []string
	for _, b := range Dataset() {
		labels = append(labels, b.Consequence.String())
	}
	return tally(labels)
}

// ByType returns the §2.6 propagation-type distribution.
func ByType() []Count {
	var labels []string
	for _, b := range Dataset() {
		labels = append(labels, b.Type.String())
	}
	return tally(labels)
}

// FormatCounts renders a distribution as an aligned text table.
func FormatCounts(title string, counts []Count) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, c := range counts {
		fmt.Fprintf(&sb, "  %-18s %2d  (%4.0f%%)\n", c.Label, c.N, c.Pct)
	}
	return sb.String()
}
