package study

import (
	"strings"
	"testing"
)

func pctOf(counts []Count, label string) float64 {
	for _, c := range counts {
		if c.Label == label {
			return c.Pct
		}
	}
	return 0
}

func nOf(counts []Count, label string) int {
	for _, c := range counts {
		if c.Label == label {
			return c.N
		}
	}
	return 0
}

func TestDatasetSize(t *testing.T) {
	if got := len(Dataset()); got != 28 {
		t.Fatalf("dataset = %d bugs, want 28 (paper abstract)", got)
	}
}

func TestTable1SystemCounts(t *testing.T) {
	counts := BySystem()
	want := map[string]int{
		"CCEH": 1, "Dash": 1, "PMEMKV": 2, "LevelHash": 2, "RECIPE": 2,
		"Memcached": 9, "Redis": 11,
	}
	for sys, n := range want {
		if got := nOf(counts, sys); got != n {
			t.Errorf("%s = %d bugs, want %d", sys, got, n)
		}
	}
}

func TestTable1Origins(t *testing.T) {
	if OriginOf("Memcached") != PortedSystem || OriginOf("Redis") != PortedSystem {
		t.Error("Memcached/Redis must be ports")
	}
	for _, s := range []string{"CCEH", "Dash", "PMEMKV", "LevelHash", "RECIPE"} {
		if OriginOf(s) != NewSystem {
			t.Errorf("%s must be a new PM system", s)
		}
	}
}

func TestFig2RootCauseDistribution(t *testing.T) {
	counts := ByRootCause()
	// Paper: logic 46%, race 18%, int-ovf 11%, buf-ovf 11%, leak 11%, h/w 4%.
	within := func(label string, want, tol float64) {
		if got := pctOf(counts, label); got < want-tol || got > want+tol {
			t.Errorf("%s = %.0f%%, want ~%.0f%%", label, got, want)
		}
	}
	within("Logic Error", 46, 4)
	within("Race Condition", 18, 4)
	within("Integer Overflow", 11, 4)
	within("Buffer Overflow", 11, 4)
	within("Memory Leak", 11, 4)
	within("H/W Fault", 4, 4)
	// Largest must be logic errors.
	if counts[0].Label != "Logic Error" {
		t.Errorf("largest root cause = %s, want Logic Error", counts[0].Label)
	}
}

func TestFig3ConsequenceDistribution(t *testing.T) {
	counts := ByConsequence()
	if counts[0].Label != "Repeated Crash" {
		t.Errorf("most common consequence = %s, want Repeated Crash", counts[0].Label)
	}
	if got := pctOf(counts, "Repeated Crash"); got < 28 || got > 36 {
		t.Errorf("Repeated Crash = %.0f%%, want ~32%%", got)
	}
}

func TestTypeDistribution(t *testing.T) {
	counts := ByType()
	// Paper: Type II 68%, Type I 18%, Type III 14%.
	if got := pctOf(counts, "Type II"); got < 64 || got > 72 {
		t.Errorf("Type II = %.0f%%, want ~68%%", got)
	}
	if got := pctOf(counts, "Type I"); got < 14 || got > 22 {
		t.Errorf("Type I = %.0f%%, want ~18%%", got)
	}
	if got := pctOf(counts, "Type III"); got < 10 || got > 18 {
		t.Errorf("Type III = %.0f%%, want ~14%%", got)
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	for _, counts := range [][]Count{ByRootCause(), ByConsequence(), ByType(), BySystem()} {
		sum := 0.0
		for _, c := range counts {
			sum += c.Pct
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("percentages sum to %.1f", sum)
		}
	}
}

func TestFormatCounts(t *testing.T) {
	out := FormatCounts("Root causes", ByRootCause())
	if !strings.Contains(out, "Logic Error") || !strings.Contains(out, "%") {
		t.Fatalf("format output:\n%s", out)
	}
}
