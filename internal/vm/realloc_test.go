package vm

import (
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/pmem"
)

func TestPmReallocGrowsAndCopies(t *testing.T) {
	mod := ir.MustCompile("t", `
fn grow() {
    var p = pmalloc(3);
    p[0] = 10;
    p[1] = 20;
    p[2] = 30;
    persist(p, 3);
    var q = pmrealloc(p, 6);
    q[5] = 60;
    persist(q + 5, 1);
    setroot(0, q);
    return q;
}
fn read(i) { var q = getroot(0); return q[i]; }`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	if _, trap := m.Call("grow"); trap != nil {
		t.Fatal(trap)
	}
	pool.Crash()
	m2 := New(mod, pool, Config{})
	for i, want := range []int64{10, 20, 30, 0, 0, 60} {
		v, trap := m2.Call("read", int64(i))
		if trap != nil || v != want {
			t.Fatalf("read(%d) = %d (%v), want %d", i, v, trap, want)
		}
	}
}

func TestPmReallocShrink(t *testing.T) {
	mod := ir.MustCompile("t", `
fn shrink() {
    var p = pmalloc(8);
    p[0] = 7;
    persist(p, 8);
    var q = pmrealloc(p, 2);
    setroot(0, q);
    return pmsize(q);
}
fn read() { var q = getroot(0); return q[0]; }`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	size, trap := m.Call("shrink")
	if trap != nil {
		t.Fatal(trap)
	}
	if size != 2 {
		t.Fatalf("new size = %d", size)
	}
	if v, _ := m.Call("read"); v != 7 {
		t.Fatalf("copied word = %d", v)
	}
}

func TestPmReallocInvalid(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { pmrealloc(5, 2); }")
	m := New(mod, pmem.New(1<<12), Config{})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
}

func TestPmReallocLinksOldEntryOnReuse(t *testing.T) {
	// Shrinking then growing cycles blocks through the free list; when a
	// new entry is created at a reused address the checkpoint log links
	// it to the prior history (paper Figure 5's old_entry).
	mod := ir.MustCompile("t", `
fn cycle() {
    var p = pmalloc(6);
    p[0] = 1;
    persist(p, 1);
    pfree(p);
    var q = pmalloc(6); // reuses p's block
    setroot(0, q);
    q[0] = 2;
    persist(q, 2);      // NEW (addr,2) entry at the reused address
    return q;
}`)
	pool := pmem.New(1 << 12)
	log := checkpoint.NewLog(3)
	pool.SetHooks(log.Hooks())
	m := New(mod, pool, Config{})
	q, trap := m.Call("cycle")
	if trap != nil {
		t.Fatal(trap)
	}
	e := log.EntryBySeq(log.Seq())
	if e == nil || e.Addr != uint64(q) {
		t.Fatalf("latest entry = %+v", e)
	}
	if e.OldEntry == nil {
		t.Fatal("reused-address entry not linked to prior history")
	}
}
