package vm

import (
	"testing"

	"arthas/internal/ir"
	"arthas/internal/pmem"
)

// Scheduler-focused tests: preemption, background drains with traps, and
// stack/trap context.

func TestPreemptiveInterleaving(t *testing.T) {
	// Without yields, cooperative scheduling would run each worker to
	// completion; preemption forces interleaving and exposes the race.
	src := `
var counter;
fn bump(n) {
    var i = 0;
    while (i < n) {
        var c = counter;
        counter = c + 1;   // racy read-modify-write, no yield
        i = i + 1;
    }
    return 0;
}
fn main(n) {
    spawn bump(n);
    spawn bump(n);
    var spin = 0;
    while (spin < 100000 && counter < n + n) {
        yield();
        spin = spin + 1;
        if (counter >= n) {
            if (spin > 50000) { break; }
        }
    }
    return counter;
}`
	mod := ir.MustCompile("t", src)

	// Cooperative: each bump runs atomically between yields -> no loss.
	m1 := New(mod, pmem.New(1<<12), Config{})
	v1, trap := m1.Call("main", 200)
	if trap != nil {
		t.Fatal(trap)
	}
	if v1 != 400 {
		t.Fatalf("cooperative counter = %d, want 400", v1)
	}

	// Preemptive with a tiny quantum: updates get lost.
	m2 := New(mod, pmem.New(1<<12), Config{PreemptEvery: 7})
	v2, trap := m2.Call("main", 200)
	if trap != nil {
		t.Fatal(trap)
	}
	if v2 >= 400 {
		t.Fatalf("preemptive counter = %d; expected lost updates", v2)
	}
}

func TestDrainBackgroundPropagatesTrap(t *testing.T) {
	mod := ir.MustCompile("t", `
fn worker() {
    var p = 0;
    return p[0]; // segfault in the background
}
fn main() { spawn worker(); return 0; }`)
	m := New(mod, pmem.New(1<<12), Config{})
	if _, trap := m.Call("main"); trap != nil {
		t.Fatal(trap)
	}
	trap := m.DrainBackground(10_000)
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("background trap = %v", trap)
	}
}

func TestTrapStackHasCallChain(t *testing.T) {
	mod := ir.MustCompile("t", `
fn inner() { assert(0); }
fn middle() { inner(); }
fn outer() { middle(); }`)
	m := New(mod, pmem.New(1<<12), Config{})
	_, trap := m.Call("outer")
	if trap == nil {
		t.Fatal("no trap")
	}
	if len(trap.Stack) != 3 {
		t.Fatalf("stack depth = %d: %v", len(trap.Stack), trap.Stack)
	}
	wantOrder := []string{"inner", "middle", "outer"}
	for i, frame := range trap.Stack {
		if len(frame) < len(wantOrder[i]) || frame[:len(wantOrder[i])] != wantOrder[i] {
			t.Fatalf("stack[%d] = %q, want prefix %q", i, frame, wantOrder[i])
		}
	}
	if trap.StackString() == "" {
		t.Fatal("empty stack string")
	}
}

func TestGlobalAccessors(t *testing.T) {
	mod := ir.MustCompile("t", "var g = 3;\nfn get() { return g; }")
	m := New(mod, pmem.New(1<<12), Config{})
	if v, ok := m.Global("g"); !ok || v != 3 {
		t.Fatalf("Global = %d, %v", v, ok)
	}
	if !m.SetGlobal("g", 9) {
		t.Fatal("SetGlobal failed")
	}
	if v, _ := m.Call("get"); v != 9 {
		t.Fatalf("after SetGlobal, get = %d", v)
	}
	if _, ok := m.Global("missing"); ok {
		t.Fatal("missing global found")
	}
	if m.SetGlobal("missing", 1) {
		t.Fatal("SetGlobal on missing global succeeded")
	}
}

func TestCallArityMismatch(t *testing.T) {
	mod := ir.MustCompile("t", "fn f(a) { return a; }")
	m := New(mod, pmem.New(1<<12), Config{})
	_, trap := m.Call("f") // no args
	if trap == nil || trap.Kind != TrapInternal {
		t.Fatalf("trap = %v", trap)
	}
}

func TestVfreeInvalid(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { vfree(5); }")
	m := New(mod, pmem.New(1<<12), Config{})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
}

func TestOutputAccumulatesAcrossCalls(t *testing.T) {
	mod := ir.MustCompile("t", "fn e(v) { emit(v); }")
	m := New(mod, pmem.New(1<<12), Config{})
	m.Call("e", 1)
	m.Call("e", 2)
	if len(m.Output) != 2 || m.Output[0] != 1 || m.Output[1] != 2 {
		t.Fatalf("output = %v", m.Output)
	}
}
