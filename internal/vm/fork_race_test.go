package vm

import (
	"sync"
	"testing"

	"arthas/internal/ir"
	"arthas/internal/pmem"
)

// Two Machines on two copy-on-write forks of ONE base pool, running the
// same shared module on concurrent goroutines — the parallel speculative
// mitigation execution shape. Run under -race: the vm package keeps no
// package-level mutable state and the forks isolate all pool writes, so
// the only shared data (the module, the base pool image) is read-only.
func TestConcurrentMachinesOnPoolForks(t *testing.T) {
	const src = `
fn init_() {
    var root = pmalloc(4);
    root[0] = 7;
    persist(root, 1);
    setroot(0, root);
    return 0;
}
fn churn(seed) {
    var root = getroot(0);
    var i = 0;
    while (i < 2000) {
        root[0] = root[0] + seed;
        persist(root, 1);
        root[1] = root[0] * 3;
        i = i + 1;
    }
    return root[0];
}
fn value() {
    var root = getroot(0);
    return root[0];
}
`
	mod, err := ir.CompileSource("forks", src)
	if err != nil {
		t.Fatal(err)
	}
	base := pmem.New(1 << 12)
	bm := New(mod, base, Config{})
	if _, trap := bm.Call("init_"); trap != nil {
		t.Fatal(trap)
	}

	const forks = 4
	results := [forks]int64{}
	var wg sync.WaitGroup
	for k := 0; k < forks; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			fp := base.Fork()
			m := New(mod, fp, Config{})
			v, trap := m.Call("churn", int64(k+1))
			if trap != nil {
				t.Errorf("fork %d trapped: %v", k, trap)
				return
			}
			results[k] = v
		}()
	}
	wg.Wait()

	// Every fork computed its own divergent value...
	for k := 0; k < forks; k++ {
		if want := int64(7 + 2000*(k+1)); results[k] != want {
			t.Fatalf("fork %d: churn = %d, want %d", k, results[k], want)
		}
	}
	// ...and the base pool never saw any of it.
	if v, trap := bm.Call("value"); trap != nil || v != 7 {
		t.Fatalf("base pool contaminated by forks: value = %d (%v)", v, trap)
	}
}
