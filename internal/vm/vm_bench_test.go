package vm

import (
	"testing"

	"arthas/internal/ir"
	"arthas/internal/pmem"
)

// Interpreter micro-benchmarks: per-operation cost of the substrate, which
// calibrates the Figure 12 overhead percentages (hook cost relative to the
// interpreted op cost).

func benchMachine(b *testing.B, src string) *Machine {
	b.Helper()
	mod, err := ir.CompileSource("bench", src)
	if err != nil {
		b.Fatal(err)
	}
	return New(mod, pmem.New(1<<20), Config{StepLimit: 1 << 40})
}

func BenchmarkVMArithLoop(b *testing.B) {
	m := benchMachine(b, `
fn loop(n) {
    var s = 0;
    var i = 0;
    while (i < n) {
        s = s + i*3 - (i >> 1);
        i = i + 1;
    }
    return s;
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("loop", 1000); trap != nil {
			b.Fatal(trap)
		}
	}
	b.ReportMetric(float64(m.Steps())/float64(b.N), "steps/op")
}

func BenchmarkVMCalls(b *testing.B) {
	m := benchMachine(b, `
fn leaf(a) { return a + 1; }
fn loop(n) {
    var i = 0;
    while (i < n) {
        i = leaf(i);
    }
    return i;
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("loop", 500); trap != nil {
			b.Fatal(trap)
		}
	}
}

func BenchmarkVMPersistPath(b *testing.B) {
	m := benchMachine(b, `
fn setup() {
    var p = pmalloc(64);
    setroot(0, p);
    return 0;
}
fn write(n) {
    var p = getroot(0);
    var i = 0;
    while (i < n) {
        p[i % 64] = i;
        persist(p + (i % 64), 1);
        i = i + 1;
    }
    return 0;
}`)
	m.Call("setup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("write", 256); trap != nil {
			b.Fatal(trap)
		}
	}
}

func BenchmarkVMPersistPathWithHooks(b *testing.B) {
	mod := ir.MustCompile("bench", `
fn setup() {
    var p = pmalloc(64);
    setroot(0, p);
    return 0;
}
fn write(n) {
    var p = getroot(0);
    var i = 0;
    while (i < n) {
        p[i % 64] = i;
        persist(p + (i % 64), 1);
        i = i + 1;
    }
    return 0;
}`)
	pool := pmem.New(1 << 20)
	sink := 0
	pool.SetHooks(pmem.Hooks{OnPersist: func(addr uint64, data []uint64) { sink += len(data) }})
	m := New(mod, pool, Config{StepLimit: 1 << 40})
	m.Call("setup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("write", 256); trap != nil {
			b.Fatal(trap)
		}
	}
	_ = sink
}

func BenchmarkVMThreadSwitch(b *testing.B) {
	m := benchMachine(b, `
fn worker(n) {
    var i = 0;
    while (i < n) {
        yield();
        i = i + 1;
    }
    return 0;
}
fn pair(n) {
    spawn worker(n);
    spawn worker(n);
    var spin = 0;
    while (spin < n + n + 8) {
        yield();
        spin = spin + 1;
    }
    return 0;
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("pair", 100); trap != nil {
			b.Fatal(trap)
		}
	}
}

func BenchmarkVMTraceSink(b *testing.B) {
	mod := ir.MustCompile("bench", `
fn setup() {
    var p = pmalloc(64);
    setroot(0, p);
    return 0;
}
fn write(n) {
    var p = getroot(0);
    var i = 0;
    while (i < n) {
        p[i % 64] = i;
        persist(p + (i % 64), 1);
        i = i + 1;
    }
    return 0;
}`)
	// Assign GUIDs the way the analyzer does.
	g := 1
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpStore, ir.OpPersist, ir.OpPmalloc:
				in.GUID = g
				g++
			}
		})
	}
	m := New(mod, pmem.New(1<<20), Config{StepLimit: 1 << 40})
	events := 0
	m.TraceSink = func(guid int, addr uint64) { events++ }
	m.Call("setup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, trap := m.Call("write", 256); trap != nil {
			b.Fatal(trap)
		}
	}
	_ = events
}
