package vm

import (
	"testing"

	"arthas/internal/ir"
	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// flushQueue lifecycle regressions: queued-but-unfenced lines must never
// leak durability across Call returns, machine restarts, or crashes. The
// hazard: a flush with no fence leaves its range in the machine-global
// queue, and a LATER unrelated fence — in another entry call, or after a
// restart — would drain it, making a word durable that no crash-consistent
// execution ever fenced.

const flushLeakProg = `
fn setup() {
    var p = pmalloc(2);
    setroot(0, p);
    flush(p, 1);
    fence();
    return 0;
}
fn dirty() {
    var p = getroot(0);
    p[0] = 77;
    flush(p, 1);
    return 0; // returns with the flush queued, unfenced
}
fn fencer() { fence(); return 0; }
fn read() { var p = getroot(0); return p[0]; }`

// TestFlushQueueEmptyAtCallReturn: the queue must be dropped when an entry
// call returns with no background threads pending, and a later fence must
// not resurrect it.
func TestFlushQueueEmptyAtCallReturn(t *testing.T) {
	mod := ir.MustCompile("t", flushLeakProg)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	rec := obs.NewRecorder()
	m.SetSink(rec)
	for _, fn := range []string{"setup", "dirty"} {
		if _, trap := m.Call(fn); trap != nil {
			t.Fatal(trap)
		}
		if n := m.FlushQueueLen(); n != 0 {
			t.Fatalf("after %s: flush queue holds %d ranges at Call return", fn, n)
		}
	}
	if got := rec.CounterValue("vm.flush_dropped"); got != 1 {
		t.Fatalf("vm.flush_dropped = %d, want 1 (dirty's unfenced flush)", got)
	}

	// The regression itself: fence on the same machine, then crash. If the
	// queue leaked across the Call return, the fence would have drained it
	// and 77 would survive.
	if _, trap := m.Call("fencer"); trap != nil {
		t.Fatal(trap)
	}
	pool.Crash()
	v, trap := New(mod, pool, Config{}).Call("read")
	if trap != nil {
		t.Fatal(trap)
	}
	if v == 77 {
		t.Fatal("queued-but-unfenced store leaked durability through a later fence")
	}
}

// TestCrashBetweenFlushAndFence: a power failure after flush but before
// fence must lose the store — on the machine that crashed AND on a fresh
// machine reopening the pool (restart starts with an empty queue).
func TestCrashBetweenFlushAndFence(t *testing.T) {
	mod := ir.MustCompile("t", flushLeakProg)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	if _, trap := m.Call("setup"); trap != nil {
		t.Fatal(trap)
	}
	if _, trap := m.Call("dirty"); trap != nil {
		t.Fatal(trap)
	}
	// Crash strictly between dirty's flush and any fence.
	pool.Crash()

	// Restart: a fresh machine models the post-failure process. Its first
	// action being a fence must not persist anything.
	m2 := New(mod, pool, Config{})
	if n := m2.FlushQueueLen(); n != 0 {
		t.Fatalf("restarted machine starts with %d queued ranges", n)
	}
	if _, trap := m2.Call("fencer"); trap != nil {
		t.Fatal(trap)
	}
	pool.Crash()
	v, trap := New(mod, pool, Config{}).Call("read")
	if trap != nil {
		t.Fatal(trap)
	}
	if v == 77 {
		t.Fatal("store flushed before the crash became durable after restart")
	}
}
