package vm

import (
	"testing"

	"arthas/internal/ir"
	"arthas/internal/pmem"
)

// Native-persistence semantics (paper §3.2's second PM framework class):
// stores + flush (clwb) + fence (sfence). Durability happens only at the
// fence; flushed-but-unfenced lines are lost on crash.

func TestFlushFenceDurability(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    setroot(0, p);
    p[0] = 10;
    p[1] = 20;
    flush(p, 2);
    fence();
    return 0;
}
fn read(i) { var p = getroot(0); return p[i]; }`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	if _, trap := m.Call("setup"); trap != nil {
		t.Fatal(trap)
	}
	pool.Crash()
	m2 := New(mod, pool, Config{})
	for i, want := range []int64{10, 20} {
		v, trap := m2.Call("read", int64(i))
		if trap != nil || v != want {
			t.Fatalf("read(%d) = %d (%v), want %d", i, v, trap, want)
		}
	}
}

func TestFlushWithoutFenceLost(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(2);
    setroot(0, p);
    p[0] = 77;
    flush(p, 1);
    return 0; // crash before the fence
}
fn read() { var p = getroot(0); return p[0]; }`)
	pool := pmem.New(1 << 12)
	New(mod, pool, Config{}).Call("setup")
	pool.Crash()
	v, trap := New(mod, pool, Config{}).Call("read")
	if trap != nil {
		t.Fatal(trap)
	}
	if v == 77 {
		t.Fatal("flushed-but-unfenced store survived crash")
	}
}

func TestFenceFiresCheckpointHooks(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    p[0] = 1;
    p[2] = 3;
    flush(p, 1);
    flush(p + 2, 1);
    fence();
    return 0;
}`)
	pool := pmem.New(1 << 12)
	var persists int
	pool.SetHooks(pmem.Hooks{OnPersist: func(addr uint64, data []uint64) { persists++ }})
	m := New(mod, pool, Config{})
	if _, trap := m.Call("setup"); trap != nil {
		t.Fatal(trap)
	}
	if persists != 2 {
		t.Fatalf("persist hooks fired %d times, want 2 (non-adjacent lines)", persists)
	}
}

func TestFenceCoalescesAdjacentLines(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    p[0] = 1;
    p[1] = 2;
    flush(p, 1);
    flush(p + 1, 1);
    fence();
    return 0;
}`)
	pool := pmem.New(1 << 12)
	var persists int
	pool.SetHooks(pmem.Hooks{OnPersist: func(addr uint64, data []uint64) { persists++ }})
	New(mod, pool, Config{}).Call("setup")
	if persists != 1 {
		t.Fatalf("persist hooks fired %d times, want 1 (adjacent lines coalesce)", persists)
	}
}

func TestFlushInvalidAddressTraps(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { flush(12345, 1); fence(); }")
	m := New(mod, pmem.New(1<<12), Config{})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
}

func TestFenceWithEmptyQueue(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { fence(); return 7; }")
	m := New(mod, pmem.New(1<<12), Config{})
	v, trap := m.Call("f")
	if trap != nil || v != 7 {
		t.Fatalf("v=%d trap=%v", v, trap)
	}
}
