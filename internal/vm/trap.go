package vm

import (
	"fmt"
	"strings"

	"arthas/internal/ir"
)

// TrapKind classifies how a PML execution failed. The detector's similarity
// heuristics (paper §4.3) hash these together with the fault instruction and
// the stack trace.
type TrapKind int

// Trap kinds.
const (
	TrapNone          TrapKind = iota
	TrapSegfault               // load/store/free through an invalid address
	TrapAssert                 // assert(0)
	TrapUserFail               // fail(code): program-detected fatal condition (panic analogue)
	TrapDivZero                // division or modulo by zero
	TrapOOM                    // volatile heap exhausted
	TrapPMOutOfSpace           // persistent pool exhausted
	TrapStackOverflow          // call depth limit
	TrapStepLimit              // instruction budget exhausted: hang / infinite loop
	TrapDeadlock               // every live thread blocked on a lock
	TrapInjectedCrash          // a scheduled fault injection requested a crash
	TrapInternal               // VM invariant violation (bug in harness or IR)
	TrapMediaCorrupt           // PM load hit a media block whose checksum mismatches
)

var trapNames = [...]string{
	TrapNone: "none", TrapSegfault: "segfault", TrapAssert: "assert",
	TrapUserFail: "fail", TrapDivZero: "div-by-zero", TrapOOM: "oom",
	TrapPMOutOfSpace: "pm-out-of-space", TrapStackOverflow: "stack-overflow",
	TrapStepLimit: "hang", TrapDeadlock: "deadlock",
	TrapInjectedCrash: "injected-crash", TrapInternal: "internal",
	TrapMediaCorrupt: "media-corrupt",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap describes a failed execution: what happened, at which instruction,
// with what call stack. It is the "fault instruction + exit code + stack
// trace" bundle the Arthas detector consumes.
type Trap struct {
	Kind  TrapKind
	Code  int64  // user code for fail(code)
	Addr  uint64 // faulting address for segfault / bad free
	Msg   string
	Fn    *ir.Function // function containing the fault instruction
	Instr *ir.Instr    // the fault instruction
	Stack []string     // innermost first: "fn @ line:col"
	Step  int64        // logical time of the fault
}

func (t *Trap) Error() string {
	if t == nil {
		return "<no trap>"
	}
	loc := "?"
	if t.Fn != nil && t.Instr != nil {
		loc = fmt.Sprintf("%s @ %v", t.Fn.Name, t.Instr.Pos)
	}
	s := fmt.Sprintf("trap %v at %s", t.Kind, loc)
	if t.Msg != "" {
		s += ": " + t.Msg
	}
	return s
}

// StackString joins the stack frames for signature comparison and logs.
func (t *Trap) StackString() string { return strings.Join(t.Stack, " <- ") }
