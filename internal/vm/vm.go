// Package vm interprets compiled PML modules against a simulated persistent
// memory pool plus a volatile heap.
//
// The machine provides the runtime behaviors the paper's evaluation needs:
//
//   - Cooperative threads (spawn/yield/lock/unlock) so concurrency bugs can
//     persist bad state (paper §2.4 "Concurrency Bugs").
//   - Traps carrying the fault instruction and stack trace — the inputs to
//     the Arthas detector (§4.3).
//   - An instruction budget that converts infinite loops into detectable
//     hangs (the CCEH directory-doubling and Memcached refcount cases).
//   - Scheduled fault injections (bit flips, crashes) for the hardware-fault
//     and untimely-crash cases.
//   - A trace sink: instructions carrying a GUID emit <GUID, PM address>
//     events, the lightweight runtime tracing of §4.1.
//   - Recovery-window access recording between recover_begin/recover_end,
//     which drives leak mitigation (§4.7).
//
// Volatile state (registers, globals, volatile heap, threads) lives in the
// Machine and vanishes when the Machine is discarded; persistent state lives
// in the pool and survives. A process restart is: drop the Machine, call
// pool.Crash(), build a new Machine on the same pool.
//
// The package holds NO package-level mutable state (the only package var is
// the immutable trapNames table), so independent Machines on independent
// pools may run on concurrent goroutines — parallel speculative mitigation
// runs one Machine per copy-on-write pool fork this way. A compiled
// *ir.Module is shared read-only across those Machines; the only writes to
// a module happen during analysis instrumentation, before execution.
package vm

import (
	"errors"
	"fmt"

	"arthas/internal/ir"
	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// Config tunes a Machine.
type Config struct {
	// VHeapWords sizes the volatile heap (default 1<<20 words).
	VHeapWords int
	// StepLimit bounds the instructions executed by a single Call
	// (default 50M). Exceeding it raises TrapStepLimit — hang detection.
	StepLimit int64
	// PreemptEvery forces a thread switch every N steps (0 = cooperative
	// only: switches happen at yield, lock contention, spawn, and exit).
	PreemptEvery int64
	// MaxCallDepth bounds recursion (default 4096).
	MaxCallDepth int
}

func (c Config) withDefaults() Config {
	if c.VHeapWords == 0 {
		c.VHeapWords = 1 << 20
	}
	if c.StepLimit == 0 {
		c.StepLimit = 50_000_000
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = 4096
	}
	return c
}

// Injection is a scheduled fault: at logical step AtStep, Apply runs against
// the machine. Use it for hardware bit flips and untimely crashes.
type Injection struct {
	AtStep int64
	Apply  func(m *Machine) *Trap // non-nil trap aborts execution (e.g. crash)
	done   bool
}

// frame is one activation record.
type frame struct {
	fn     *ir.Function
	regs   []int64
	block  int
	idx    int
	retDst int // register in the CALLER frame to receive our return value
}

// threadState enumerates scheduler states.
type threadState int

const (
	threadRunnable threadState = iota
	threadBlocked              // on a lock word
	threadDone
)

// thread is one cooperative thread.
type thread struct {
	id       int
	frames   []*frame
	state    threadState
	lockAddr uint64 // when blocked
	result   int64

	txActive bool
	txWrites []pmem.Range
	txSeen   map[uint64]bool
}

// Machine executes one PML module against one pool.
type Machine struct {
	Mod  *ir.Module
	Pool *pmem.Pool
	cfg  Config

	globals []int64
	vheap   *vheap
	threads []*thread
	nextTID int

	steps int64 // lifetime logical clock

	// Output collects emit(v) values from all Calls in order.
	Output []int64

	// TraceSink, when set, receives <GUID, PM address> events from
	// instrumented PM-writing instructions (§4.1). The checkpoint sequence
	// number at the time of the event is correlated by the caller.
	TraceSink func(guid int, addr uint64)
	// TraceReadSink, when set, receives <GUID, PM address> events from
	// instrumented PM loads (recency signal; bounded by the tracer).
	TraceReadSink func(guid int, addr uint64)
	// WriteSink, when set, receives the same <GUID, PM address> store events
	// as TraceSink. It feeds the provenance lineage index; kept separate so
	// tracing and lineage can be enabled independently.
	WriteSink func(guid int, addr uint64)

	// Injections are scheduled faults, applied when the clock reaches them.
	Injections []*Injection

	// loadErr latches the pool error behind the most recent failed loadMem,
	// letting opcode handlers raise TrapMediaCorrupt instead of TrapSegfault
	// when the address was fine but the medium lied.
	loadErr error

	// inRecovery tracks the recover_begin/recover_end window.
	inRecovery bool
	// RecoveryAccess records every PM address loaded or stored inside a
	// recovery window (leak mitigation input, §4.7).
	RecoveryAccess map[uint64]bool

	// yieldFlag is set by OpYield to request a scheduler switch away from
	// the yielding thread at the top of the run loop.
	yieldFlag *thread

	// flushQueue holds ranges queued by flush() (the clwb analogue) and
	// not yet drained by fence(). Like real write-pending-queue contents,
	// it is volatile: a crash before the fence loses the queued lines.
	flushQueue []pmem.Range

	// sink receives execution telemetry. The per-instruction path only
	// bumps a local opCounts slot behind the cached obsOn branch; counts
	// are flushed to the sink when a Call completes, so enabling tracing
	// never adds a sink call per instruction.
	sink     obs.Sink
	obsOn    bool
	opCounts [int(ir.OpRecoverEnd) + 1]int64
}

// New builds a machine. Globals are initialized from the module — fresh
// volatile state, as after a process start.
func New(mod *ir.Module, pool *pmem.Pool, cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		Mod:            mod,
		Pool:           pool,
		cfg:            cfg,
		vheap:          newVHeap(cfg.VHeapWords),
		RecoveryAccess: map[uint64]bool{},
		sink:           obs.Nop(),
	}
	m.globals = make([]int64, len(mod.Globals))
	for i, g := range mod.Globals {
		m.globals[i] = g.Init
	}
	return m
}

// Steps returns the machine's logical clock.
func (m *Machine) Steps() int64 { return m.steps }

// SetSink installs an observability sink (nil restores the no-op).
func (m *Machine) SetSink(s obs.Sink) {
	m.sink = obs.OrNop(s)
	m.obsOn = m.sink.Enabled()
}

// flushObs publishes the instruction counts accumulated since the last
// flush: total retired, yields, and one vm.op.<name> counter per opcode
// actually executed. A trap (if any) is classified by kind.
func (m *Machine) flushObs(retired int64, trap *Trap) {
	m.sink.Count("vm.instructions", retired)
	for op, n := range m.opCounts {
		if n == 0 {
			continue
		}
		m.sink.Count("vm.op."+ir.Op(op).String(), n)
		m.opCounts[op] = 0
	}
	if trap != nil {
		m.sink.Count("vm.traps", 1)
		m.sink.Count("vm.trap."+trap.Kind.String(), 1)
	}
}

// Global returns a global's current value by name.
func (m *Machine) Global(name string) (int64, bool) {
	i, ok := m.Mod.GlobIdx[name]
	if !ok {
		return 0, false
	}
	return m.globals[i], true
}

// SetGlobal sets a global by name (harness hook for trigger conditions).
func (m *Machine) SetGlobal(name string, v int64) bool {
	i, ok := m.Mod.GlobIdx[name]
	if !ok {
		return false
	}
	m.globals[i] = v
	return true
}

// Call invokes fn with args as a new main thread and runs the scheduler
// until that thread returns or a trap occurs. Background threads spawned
// earlier keep their state and are co-scheduled.
func (m *Machine) Call(fnName string, args ...int64) (int64, *Trap) {
	f := m.Mod.Func(fnName)
	if f == nil {
		return 0, &Trap{Kind: TrapInternal, Msg: fmt.Sprintf("no function %q", fnName), Step: m.steps}
	}
	if len(args) != f.NumParams {
		return 0, &Trap{Kind: TrapInternal,
			Msg: fmt.Sprintf("%s takes %d args, got %d", fnName, f.NumParams, len(args)), Step: m.steps}
	}
	main := m.newThread(f, args)
	if !m.obsOn {
		v, trap := m.run(main)
		m.dropUnfenced()
		return v, trap
	}
	span := m.sink.Start("vm.call", obs.A("fn", fnName))
	before := m.steps
	v, trap := m.run(main)
	m.dropUnfenced()
	m.flushObs(m.steps-before, trap)
	if trap != nil {
		span.SetAttr("trap", trap.Kind.String())
	}
	span.End()
	return v, trap
}

// dropUnfenced empties the write-pending queue once no thread is left that
// could still fence it. Queued-but-unfenced lines are volatile: letting them
// linger across Call boundaries would allow a later call's fence to drain
// them, making state look durable that a crash between the calls would have
// lost. Live background threads keep their epoch open (they may still
// fence), so the queue survives until quiescence.
func (m *Machine) dropUnfenced() {
	if len(m.flushQueue) == 0 || m.BackgroundThreads() > 0 {
		return
	}
	if m.obsOn {
		m.sink.Count("vm.flush_dropped", int64(len(m.flushQueue)))
	}
	m.flushQueue = m.flushQueue[:0]
}

// FlushQueueLen reports how many flushed-but-unfenced ranges are queued
// (test hook for the queue-lifecycle invariant).
func (m *Machine) FlushQueueLen() int { return len(m.flushQueue) }

// DrainBackground runs pending background threads until they finish, block,
// or the budget is consumed. It models the idle time a server has between
// requests, during which async workers (e.g. PMEMKV's lazy free) proceed.
func (m *Machine) DrainBackground(maxSteps int64) (trap *Trap) {
	if m.obsOn {
		before := m.steps
		defer func() { m.flushObs(m.steps-before, trap) }()
	}
	deadline := m.steps + maxSteps
	var last *thread
	for m.steps < deadline {
		th := m.pickRunnable(last)
		if th == nil {
			m.gcThreads()
			m.dropUnfenced()
			return nil
		}
		last = th
		if trap := m.execStep(th); trap != nil {
			return trap
		}
	}
	m.gcThreads()
	return nil
}

// BackgroundThreads reports how many spawned threads are still live.
func (m *Machine) BackgroundThreads() int {
	n := 0
	for _, t := range m.threads {
		if t.state != threadDone {
			n++
		}
	}
	return n
}

func (m *Machine) newThread(f *ir.Function, args []int64) *thread {
	th := &thread{id: m.nextTID, state: threadRunnable}
	m.nextTID++
	fr := &frame{fn: f, regs: make([]int64, f.NumRegs), retDst: -1}
	copy(fr.regs, args)
	th.frames = []*frame{fr}
	m.threads = append(m.threads, th)
	return th
}

// run drives the scheduler until the given main thread completes.
func (m *Machine) run(main *thread) (int64, *Trap) {
	budget := m.steps + m.cfg.StepLimit
	cur := main
	sinceSwitch := int64(0)
	for {
		if main.state == threadDone {
			m.gcThreads()
			return main.result, nil
		}
		if m.steps >= budget {
			return 0, m.trapAt(cur, TrapStepLimit, "instruction budget exhausted (hang)")
		}
		wantSwitch := m.yieldFlag != nil && m.yieldFlag == cur
		m.yieldFlag = nil
		if cur == nil || cur.state != threadRunnable || wantSwitch ||
			(m.cfg.PreemptEvery > 0 && sinceSwitch >= m.cfg.PreemptEvery) {
			next := m.pickRunnable(cur)
			if next == nil {
				if main.state == threadBlocked || m.anyBlocked() {
					return 0, m.trapAt(main, TrapDeadlock, "all live threads blocked on locks")
				}
				return 0, m.trapAt(main, TrapInternal, "scheduler found no runnable thread")
			}
			cur = next
			sinceSwitch = 0
		}
		if trap := m.execStep(cur); trap != nil {
			return 0, trap
		}
		sinceSwitch++
	}
}

// pickRunnable chooses the next runnable thread after cur (round robin).
// Blocked threads are re-checked: if their lock word is now free, they wake.
func (m *Machine) pickRunnable(cur *thread) *thread {
	if len(m.threads) == 0 {
		return nil
	}
	start := 0
	if cur != nil {
		for i, t := range m.threads {
			if t == cur {
				start = i + 1
				break
			}
		}
	}
	n := len(m.threads)
	for k := 0; k < n; k++ {
		t := m.threads[(start+k)%n]
		switch t.state {
		case threadRunnable:
			return t
		case threadBlocked:
			if v, ok := m.loadMem(t.lockAddr); ok && v == 0 {
				t.state = threadRunnable
				return t
			}
		}
	}
	return nil
}

func (m *Machine) anyBlocked() bool {
	for _, t := range m.threads {
		if t.state == threadBlocked {
			return true
		}
	}
	return false
}

func (m *Machine) gcThreads() {
	live := m.threads[:0]
	for _, t := range m.threads {
		if t.state != threadDone {
			live = append(live, t)
		}
	}
	m.threads = live
}

// stack renders a thread's call stack, innermost first.
func (m *Machine) stack(th *thread) []string {
	var out []string
	for i := len(th.frames) - 1; i >= 0; i-- {
		fr := th.frames[i]
		pos := ""
		if fr.block < len(fr.fn.Blocks) && fr.idx < len(fr.fn.Blocks[fr.block].Instrs) {
			pos = fmt.Sprintf(" @ %v", fr.fn.Blocks[fr.block].Instrs[fr.idx].Pos)
		}
		out = append(out, fr.fn.Name+pos)
	}
	return out
}

func (m *Machine) trapAt(th *thread, kind TrapKind, msg string) *Trap {
	t := &Trap{Kind: kind, Msg: msg, Step: m.steps}
	if th != nil && len(th.frames) > 0 {
		fr := th.frames[len(th.frames)-1]
		t.Fn = fr.fn
		if fr.block < len(fr.fn.Blocks) && fr.idx < len(fr.fn.Blocks[fr.block].Instrs) {
			t.Instr = fr.fn.Blocks[fr.block].Instrs[fr.idx]
		}
		t.Stack = m.stack(th)
	}
	return t
}

// loadMem reads a word from whichever address space addr names. On failure
// the underlying pool error (if any) is latched in m.loadErr so the opcode
// handler can distinguish media corruption from a plain bad address.
func (m *Machine) loadMem(addr uint64) (int64, bool) {
	m.loadErr = nil
	if m.Pool.Contains(addr) {
		v, err := m.Pool.Load(addr)
		if err != nil {
			m.loadErr = err
			return 0, false
		}
		return int64(v), true
	}
	if v, ok := m.vheap.load(addr); ok {
		return v, true
	}
	return 0, false
}

// storeMem writes a word; PM stores inside a transaction are added to the
// thread's write-set for commit-time persistence.
func (m *Machine) storeMem(th *thread, addr uint64, v int64) bool {
	if m.Pool.Contains(addr) {
		if err := m.Pool.Store(addr, uint64(v)); err != nil {
			return false
		}
		if th != nil && th.txActive && !th.txSeen[addr] {
			th.txSeen[addr] = true
			th.txWrites = append(th.txWrites, pmem.Range{Addr: addr, Words: 1})
		}
		return true
	}
	return m.vheap.store(addr, v)
}

func (m *Machine) noteRecoveryAccess(addr uint64) {
	if m.inRecovery && m.Pool.Contains(addr) {
		m.RecoveryAccess[addr] = true
	}
}

// applyInjections fires any scheduled injections whose time has come.
func (m *Machine) applyInjections() *Trap {
	for _, inj := range m.Injections {
		if !inj.done && m.steps >= inj.AtStep {
			inj.done = true
			if trap := inj.Apply(m); trap != nil {
				trap.Step = m.steps
				return trap
			}
		}
	}
	return nil
}

// execStep executes one instruction of th. A non-nil return aborts the run.
func (m *Machine) execStep(th *thread) *Trap {
	m.steps++
	if len(m.Injections) > 0 {
		if trap := m.applyInjections(); trap != nil {
			return trap
		}
	}
	fr := th.frames[len(th.frames)-1]
	if fr.block >= len(fr.fn.Blocks) || fr.idx >= len(fr.fn.Blocks[fr.block].Instrs) {
		return m.trapAt(th, TrapInternal, "program counter out of range")
	}
	in := fr.fn.Blocks[fr.block].Instrs[fr.idx]
	if m.obsOn {
		m.opCounts[in.Op]++
	}

	advance := func() { fr.idx++ }

	switch in.Op {
	case ir.OpConst:
		fr.regs[in.Dst] = in.Imm
		advance()
	case ir.OpMov:
		fr.regs[in.Dst] = fr.regs[in.Args[0]]
		advance()
	case ir.OpBin:
		v, trap := m.binop(th, in, fr.regs[in.Args[0]], fr.regs[in.Args[1]])
		if trap != nil {
			return trap
		}
		fr.regs[in.Dst] = v
		advance()
	case ir.OpUn:
		x := fr.regs[in.Args[0]]
		switch ir.UnOp(in.Imm) {
		case ir.Neg:
			fr.regs[in.Dst] = -x
		case ir.LogNot:
			if x == 0 {
				fr.regs[in.Dst] = 1
			} else {
				fr.regs[in.Dst] = 0
			}
		case ir.BitNot:
			fr.regs[in.Dst] = ^x
		}
		advance()

	case ir.OpLoad:
		addr := uint64(fr.regs[in.Args[0]] + in.Off)
		if in.GUID != 0 && m.TraceReadSink != nil && m.Pool.Contains(addr) {
			m.TraceReadSink(in.GUID, addr)
		}
		v, ok := m.loadMem(addr)
		if !ok {
			kind, what := TrapSegfault, "load from invalid address"
			if errors.Is(m.loadErr, pmem.ErrMediaCorrupt) {
				kind, what = TrapMediaCorrupt, "load from corrupt media at"
			}
			t := m.trapAt(th, kind, fmt.Sprintf("%s %#x", what, addr))
			t.Addr = addr
			return t
		}
		m.noteRecoveryAccess(addr)
		fr.regs[in.Dst] = v
		advance()

	case ir.OpStore:
		addr := uint64(fr.regs[in.Args[0]] + in.Off)
		if in.GUID != 0 && (m.TraceSink != nil || m.WriteSink != nil) && m.Pool.Contains(addr) {
			if m.TraceSink != nil {
				m.TraceSink(in.GUID, addr)
			}
			if m.WriteSink != nil {
				m.WriteSink(in.GUID, addr)
			}
		}
		if !m.storeMem(th, addr, fr.regs[in.Args[1]]) {
			t := m.trapAt(th, TrapSegfault, fmt.Sprintf("store to invalid address %#x", addr))
			t.Addr = addr
			return t
		}
		m.noteRecoveryAccess(addr)
		advance()

	case ir.OpGlobLoad:
		fr.regs[in.Dst] = m.globals[in.Imm]
		advance()
	case ir.OpGlobStore:
		m.globals[in.Imm] = fr.regs[in.Args[0]]
		advance()

	case ir.OpCall:
		callee := m.Mod.Func(in.Callee)
		if callee == nil {
			return m.trapAt(th, TrapInternal, "call to undefined "+in.Callee)
		}
		if len(th.frames) >= m.cfg.MaxCallDepth {
			return m.trapAt(th, TrapStackOverflow, "call depth limit in "+in.Callee)
		}
		nf := &frame{fn: callee, regs: make([]int64, callee.NumRegs), retDst: in.Dst}
		for i, a := range in.Args {
			nf.regs[i] = fr.regs[a]
		}
		fr.idx++ // resume after the call upon return
		th.frames = append(th.frames, nf)

	case ir.OpSpawn:
		callee := m.Mod.Func(in.Callee)
		if callee == nil {
			return m.trapAt(th, TrapInternal, "spawn of undefined "+in.Callee)
		}
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = fr.regs[a]
		}
		m.newThread(callee, args)
		advance()

	case ir.OpRet:
		var v int64
		if len(in.Args) == 1 {
			v = fr.regs[in.Args[0]]
		}
		th.frames = th.frames[:len(th.frames)-1]
		if len(th.frames) == 0 {
			th.result = v
			th.state = threadDone
			return nil
		}
		caller := th.frames[len(th.frames)-1]
		if fr.retDst >= 0 {
			caller.regs[fr.retDst] = v
		}

	case ir.OpJmp:
		fr.block = in.Target
		fr.idx = 0
	case ir.OpBr:
		if fr.regs[in.Args[0]] != 0 {
			fr.block = in.Target
		} else {
			fr.block = in.Target2
		}
		fr.idx = 0

	case ir.OpPmalloc:
		n := fr.regs[in.Args[0]]
		if n < 0 {
			n = 0
		}
		addr, err := m.Pool.Zalloc(int(n))
		if err != nil {
			return m.trapAt(th, TrapPMOutOfSpace, err.Error())
		}
		if in.GUID != 0 && m.TraceSink != nil {
			m.TraceSink(in.GUID, addr)
		}
		fr.regs[in.Dst] = int64(addr)
		advance()

	case ir.OpPfree:
		addr := uint64(fr.regs[in.Args[0]])
		if in.GUID != 0 && m.TraceSink != nil && m.Pool.Contains(addr) {
			m.TraceSink(in.GUID, addr)
		}
		if err := m.Pool.Free(addr); err != nil {
			t := m.trapAt(th, TrapSegfault, "pfree: "+err.Error())
			t.Addr = addr
			return t
		}
		advance()

	case ir.OpPersist:
		addr := uint64(fr.regs[in.Args[0]])
		n := fr.regs[in.Args[1]]
		if n < 0 {
			n = 0
		}
		if in.GUID != 0 && m.TraceSink != nil && m.Pool.Contains(addr) {
			m.TraceSink(in.GUID, addr)
		}
		if th.txActive {
			// Inside a transaction an explicit persist defers to commit.
			for w := int64(0); w < n; w++ {
				a := addr + uint64(w)
				if !th.txSeen[a] {
					th.txSeen[a] = true
					th.txWrites = append(th.txWrites, pmem.Range{Addr: a, Words: 1})
				}
			}
			advance()
			break
		}
		if err := m.Pool.Persist(addr, int(n)); err != nil {
			t := m.trapAt(th, TrapSegfault, "persist: "+err.Error())
			t.Addr = addr
			return t
		}
		advance()

	case ir.OpFlush:
		// Native persistence (paper §3.2, "systems written with persistence
		// instructions such as clwb and sfence"): queue the range; it only
		// becomes durable at the next fence.
		addr := uint64(fr.regs[in.Args[0]])
		n := fr.regs[in.Args[1]]
		if n < 0 {
			n = 0
		}
		if !m.Pool.Contains(addr) {
			t := m.trapAt(th, TrapSegfault, fmt.Sprintf("flush of invalid address %#x", addr))
			t.Addr = addr
			return t
		}
		if in.GUID != 0 && m.TraceSink != nil {
			m.TraceSink(in.GUID, addr)
		}
		m.flushQueue = append(m.flushQueue, pmem.Range{Addr: addr, Words: int(n)})
		advance()

	case ir.OpFence:
		// Drain the queue: everything flushed is now durable, firing the
		// same checkpoint hooks the library persist path fires.
		for _, r := range coalesce(m.flushQueue) {
			if err := m.Pool.Persist(r.Addr, r.Words); err != nil {
				return m.trapAt(th, TrapSegfault, "fence: "+err.Error())
			}
		}
		m.flushQueue = m.flushQueue[:0]
		advance()

	case ir.OpTxBegin:
		th.txActive = true
		th.txWrites = nil
		th.txSeen = map[uint64]bool{}
		advance()

	case ir.OpTxCommit:
		if th.txActive {
			th.txActive = false
			if err := m.Pool.PersistTx(coalesce(th.txWrites)); err != nil {
				return m.trapAt(th, TrapSegfault, "txcommit: "+err.Error())
			}
			th.txWrites, th.txSeen = nil, nil
		}
		advance()

	case ir.OpSetRoot:
		slot := fr.regs[in.Args[0]]
		addr := uint64(fr.regs[in.Args[1]])
		if in.GUID != 0 && m.TraceSink != nil && m.Pool.Contains(addr) {
			m.TraceSink(in.GUID, addr)
		}
		if err := m.Pool.SetRoot(int(slot), addr); err != nil {
			return m.trapAt(th, TrapSegfault, "setroot: "+err.Error())
		}
		advance()

	case ir.OpGetRoot:
		v, err := m.Pool.Root(int(fr.regs[in.Args[0]]))
		if err != nil {
			return m.trapAt(th, TrapSegfault, "getroot: "+err.Error())
		}
		fr.regs[in.Dst] = int64(v)
		advance()

	case ir.OpPmSize:
		addr := uint64(fr.regs[in.Args[0]])
		n, err := m.Pool.BlockSize(addr)
		if err != nil {
			n = 0
		}
		fr.regs[in.Dst] = int64(n)
		advance()

	case ir.OpPmRealloc:
		// Resize a persistent block: allocate, copy, persist the copy,
		// free the old block (paper §4.2's resize case — the checkpoint
		// log links the histories via old_entry when the address is
		// reused).
		old := uint64(fr.regs[in.Args[0]])
		n := fr.regs[in.Args[1]]
		if n < 1 {
			n = 1
		}
		oldSize, err := m.Pool.BlockSize(old)
		if err != nil {
			t := m.trapAt(th, TrapSegfault, "pmrealloc: "+err.Error())
			t.Addr = old
			return t
		}
		naddr, err := m.Pool.Zalloc(int(n))
		if err != nil {
			return m.trapAt(th, TrapPMOutOfSpace, err.Error())
		}
		cp := oldSize
		if int(n) < cp {
			cp = int(n)
		}
		for w := 0; w < cp; w++ {
			v, _ := m.Pool.Load(old + uint64(w))
			m.Pool.Store(naddr+uint64(w), v)
		}
		if in.GUID != 0 && m.TraceSink != nil {
			m.TraceSink(in.GUID, naddr)
		}
		if in.GUID != 0 && m.WriteSink != nil {
			m.WriteSink(in.GUID, naddr)
		}
		if err := m.Pool.Persist(naddr, cp); err != nil {
			return m.trapAt(th, TrapSegfault, "pmrealloc persist: "+err.Error())
		}
		if err := m.Pool.Free(old); err != nil {
			t := m.trapAt(th, TrapSegfault, "pmrealloc free: "+err.Error())
			t.Addr = old
			return t
		}
		fr.regs[in.Dst] = int64(naddr)
		advance()

	case ir.OpValloc:
		n := fr.regs[in.Args[0]]
		if n < 0 {
			n = 0
		}
		addr := m.vheap.alloc(int(n))
		if addr == 0 {
			return m.trapAt(th, TrapOOM, "volatile heap exhausted")
		}
		fr.regs[in.Dst] = int64(addr)
		advance()

	case ir.OpVfree:
		if err := m.vheap.free(uint64(fr.regs[in.Args[0]])); err != nil {
			t := m.trapAt(th, TrapSegfault, err.Error())
			t.Addr = uint64(fr.regs[in.Args[0]])
			return t
		}
		advance()

	case ir.OpYield:
		advance()
		m.yieldFlag = th // run() switches to the next runnable thread

	case ir.OpLock:
		addr := uint64(fr.regs[in.Args[0]])
		v, ok := m.loadMem(addr)
		if !ok {
			kind, what := TrapSegfault, "lock on invalid address"
			if errors.Is(m.loadErr, pmem.ErrMediaCorrupt) {
				kind, what = TrapMediaCorrupt, "lock on corrupt media at"
			}
			t := m.trapAt(th, kind, fmt.Sprintf("%s %#x", what, addr))
			t.Addr = addr
			return t
		}
		if v == 0 {
			if !m.storeMem(th, addr, 1) {
				return m.trapAt(th, TrapSegfault, "lock store failed")
			}
			advance()
		} else {
			th.state = threadBlocked
			th.lockAddr = addr
			// pc stays at the lock: retried when the thread wakes.
		}

	case ir.OpUnlock:
		addr := uint64(fr.regs[in.Args[0]])
		if !m.storeMem(th, addr, 0) {
			t := m.trapAt(th, TrapSegfault, fmt.Sprintf("unlock on invalid address %#x", addr))
			t.Addr = addr
			return t
		}
		advance()

	case ir.OpAssert:
		if fr.regs[in.Args[0]] == 0 {
			return m.trapAt(th, TrapAssert, "assertion failed")
		}
		advance()

	case ir.OpFail:
		t := m.trapAt(th, TrapUserFail, "fail() invoked")
		t.Code = fr.regs[in.Args[0]]
		return t

	case ir.OpEmit:
		m.Output = append(m.Output, fr.regs[in.Args[0]])
		advance()

	case ir.OpRecoverBegin:
		m.inRecovery = true
		advance()
	case ir.OpRecoverEnd:
		m.inRecovery = false
		advance()

	default:
		return m.trapAt(th, TrapInternal, fmt.Sprintf("unimplemented op %v", in.Op))
	}
	return nil
}

func (m *Machine) binop(th *thread, in *ir.Instr, a, b int64) (int64, *Trap) {
	switch ir.BinOp(in.Imm) {
	case ir.Add:
		return a + b, nil
	case ir.Sub:
		return a - b, nil
	case ir.Mul:
		return a * b, nil
	case ir.Div:
		if b == 0 {
			return 0, m.trapAt(th, TrapDivZero, "division by zero")
		}
		return a / b, nil
	case ir.Mod:
		if b == 0 {
			return 0, m.trapAt(th, TrapDivZero, "modulo by zero")
		}
		return a % b, nil
	case ir.And:
		return a & b, nil
	case ir.Or:
		return a | b, nil
	case ir.Xor:
		return a ^ b, nil
	case ir.Shl:
		return a << (uint64(b) & 63), nil
	case ir.Shr:
		return a >> (uint64(b) & 63), nil
	case ir.Lt:
		return b2i(a < b), nil
	case ir.Le:
		return b2i(a <= b), nil
	case ir.Gt:
		return b2i(a > b), nil
	case ir.Ge:
		return b2i(a >= b), nil
	case ir.Eq:
		return b2i(a == b), nil
	case ir.Ne:
		return b2i(a != b), nil
	}
	return 0, m.trapAt(th, TrapInternal, fmt.Sprintf("bad binop %d", in.Imm))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// coalesce merges adjacent single-word ranges into runs to reduce hook calls.
func coalesce(rs []pmem.Range) []pmem.Range {
	if len(rs) <= 1 {
		return rs
	}
	// Insertion sort by address (write-sets are small).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Addr < rs[j-1].Addr; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Addr == last.Addr+uint64(last.Words) {
			last.Words += r.Words
		} else {
			out = append(out, r)
		}
	}
	return out
}
