package vm

import (
	"testing"
	"testing/quick"

	"arthas/internal/ir"
	"arthas/internal/pmem"
)

func machine(t *testing.T, src string) *Machine {
	t.Helper()
	mod, err := ir.CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(mod, pmem.New(1<<16), Config{})
}

func mustCall(t *testing.T, m *Machine, fn string, args ...int64) int64 {
	t.Helper()
	v, trap := m.Call(fn, args...)
	if trap != nil {
		t.Fatalf("%s trapped: %v", fn, trap)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	m := machine(t, `
fn calc(a, b) {
    return (a + b) * 3 - a / b + a % b;
}`)
	if got := mustCall(t, m, "calc", 10, 3); got != (10+3)*3-10/3+10%3 {
		t.Fatalf("calc = %d", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	m := machine(t, `
fn f(a, b) {
    var r = 0;
    if (a < b) { r = r + 1; }
    if (a <= b) { r = r + 10; }
    if (a > b) { r = r + 100; }
    if (a >= b) { r = r + 1000; }
    if (a == b) { r = r + 10000; }
    if (a != b) { r = r + 100000; }
    return r;
}`)
	if got := mustCall(t, m, "f", 2, 5); got != 100011 {
		t.Fatalf("f(2,5) = %d", got)
	}
	if got := mustCall(t, m, "f", 5, 5); got != 11010 {
		t.Fatalf("f(5,5) = %d", got)
	}
}

func TestBitwiseOps(t *testing.T) {
	m := machine(t, "fn f(a, b) { return ((a & b) | (a ^ b)) + (a << 2) + (b >> 1) + ~a + -b; }")
	a, b := int64(0b1100), int64(0b1010)
	want := ((a & b) | (a ^ b)) + (a << 2) + (b >> 1) + ^a + -b
	if got := mustCall(t, m, "f", a, b); got != want {
		t.Fatalf("f = %d, want %d", got, want)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	m := machine(t, `
var called;
fn side() { called = called + 1; return 1; }
fn andFalse() { return 0 && side(); }
fn orTrue() { return 1 || side(); }
fn andTrue() { return 1 && side(); }
`)
	mustCall(t, m, "andFalse")
	mustCall(t, m, "orTrue")
	if v, _ := m.Global("called"); v != 0 {
		t.Fatalf("short-circuit evaluated RHS %d times", v)
	}
	if got := mustCall(t, m, "andTrue"); got != 1 {
		t.Fatalf("andTrue = %d", got)
	}
	if v, _ := m.Global("called"); v != 1 {
		t.Fatalf("called = %d, want 1", v)
	}
}

func TestWhileLoopsAndBreakContinue(t *testing.T) {
	m := machine(t, `
fn sumEvens(n) {
    var s = 0;
    var i = 0;
    while (1) {
        i = i + 1;
        if (i > n) { break; }
        if (i % 2 == 1) { continue; }
        s = s + i;
    }
    return s;
}`)
	if got := mustCall(t, m, "sumEvens", 10); got != 2+4+6+8+10 {
		t.Fatalf("sumEvens = %d", got)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	m := machine(t, `
fn fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}`)
	if got := mustCall(t, m, "fib", 15); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	m := machine(t, `
var count;
fn bump() { count = count + 1; return count; }`)
	mustCall(t, m, "bump")
	mustCall(t, m, "bump")
	if got := mustCall(t, m, "bump"); got != 3 {
		t.Fatalf("count = %d", got)
	}
}

func TestGlobalsResetOnNewMachine(t *testing.T) {
	mod := ir.MustCompile("t", "var g = 5;\nfn get() { return g; }\nfn set(v) { g = v; }")
	pool := pmem.New(1 << 12)
	m1 := New(mod, pool, Config{})
	m1.Call("set", 99)
	m2 := New(mod, pool, Config{})
	v, _ := m2.Call("get")
	if v != 5 {
		t.Fatalf("new machine global = %d, want init 5", v)
	}
}

func TestVolatileHeap(t *testing.T) {
	m := machine(t, `
fn f() {
    var p = valloc(4);
    p[0] = 10;
    p[3] = 40;
    var s = p[0] + p[3];
    vfree(p);
    return s;
}`)
	if got := mustCall(t, m, "f"); got != 50 {
		t.Fatalf("f = %d", got)
	}
}

func TestVallocZeroed(t *testing.T) {
	m := machine(t, `
fn f() {
    var p = valloc(4);
    p[1] = 7;
    vfree(p);
    var q = valloc(4);
    return q[1];
}`)
	if got := mustCall(t, m, "f"); got != 0 {
		t.Fatalf("reused volatile block not zeroed: %d", got)
	}
}

func TestPersistentMemoryOps(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    p[0] = 123;
    persist(p, 1);
    setroot(0, p);
    return p;
}
fn read() {
    var p = getroot(0);
    return p[0];
}`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	mustCall(t, m, "setup")

	// Restart: new machine, same pool, after crash.
	pool.Crash()
	m2 := New(mod, pool, Config{})
	if got := mustCall(t, m2, "read"); got != 123 {
		t.Fatalf("persisted value = %d, want 123", got)
	}
}

func TestUnpersistedStoreLostOnCrash(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(2);
    setroot(0, p);
    p[0] = 55; // never persisted
    return 0;
}
fn read() { var p = getroot(0); return p[0]; }`)
	pool := pmem.New(1 << 12)
	New(mod, pool, Config{}).Call("setup")
	pool.Crash()
	v, trap := New(mod, pool, Config{}).Call("read")
	if trap != nil {
		t.Fatal(trap)
	}
	if v == 55 {
		t.Fatal("unpersisted store survived crash")
	}
}

func TestTransactionCommit(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    setroot(0, p);
    txbegin();
    p[0] = 1;
    p[1] = 2;
    p[2] = 3;
    txcommit();
    return 0;
}
fn sum() { var p = getroot(0); return p[0] + p[1] + p[2]; }`)
	pool := pmem.New(1 << 12)
	New(mod, pool, Config{}).Call("setup")
	pool.Crash()
	v, trap := New(mod, pool, Config{}).Call("sum")
	if trap != nil || v != 6 {
		t.Fatalf("after tx commit + crash: sum = %d, trap = %v", v, trap)
	}
}

func TestTransactionUncommittedLost(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(4);
    setroot(0, p);
    txbegin();
    p[0] = 42;
    return 0; // crash before commit
}
fn read() { var p = getroot(0); return p[0]; }`)
	pool := pmem.New(1 << 12)
	New(mod, pool, Config{}).Call("setup")
	pool.Crash()
	v, _ := New(mod, pool, Config{}).Call("read")
	if v == 42 {
		t.Fatal("uncommitted transactional store survived crash")
	}
}

func TestSegfaultNullDeref(t *testing.T) {
	m := machine(t, "fn f() { var p = 0; return p[0]; }")
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v, want segfault", trap)
	}
	if trap.Fn == nil || trap.Instr == nil || len(trap.Stack) == 0 {
		t.Fatalf("trap lacks fault context: %+v", trap)
	}
}

func TestSegfaultWildStore(t *testing.T) {
	m := machine(t, "fn f() { var p = 12345678; p[0] = 1; }")
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v, want segfault", trap)
	}
}

func TestDivByZeroTrap(t *testing.T) {
	m := machine(t, "fn f(a, b) { return a / b; }")
	_, trap := m.Call("f", 1, 0)
	if trap == nil || trap.Kind != TrapDivZero {
		t.Fatalf("trap = %v", trap)
	}
	m2 := machine(t, "fn f(a, b) { return a % b; }")
	_, trap = m2.Call("f", 1, 0)
	if trap == nil || trap.Kind != TrapDivZero {
		t.Fatalf("mod trap = %v", trap)
	}
}

func TestAssertTrap(t *testing.T) {
	m := machine(t, "fn f(x) { assert(x > 0); return x; }")
	if got := mustCall(t, m, "f", 5); got != 5 {
		t.Fatal("assert(true) broke execution")
	}
	_, trap := m.Call("f", -1)
	if trap == nil || trap.Kind != TrapAssert {
		t.Fatalf("trap = %v", trap)
	}
}

func TestUserFailTrap(t *testing.T) {
	m := machine(t, "fn f() { fail(77); }")
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapUserFail || trap.Code != 77 {
		t.Fatalf("trap = %+v", trap)
	}
}

func TestHangDetection(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { while (1) { } }")
	m := New(mod, pmem.New(1<<12), Config{StepLimit: 10000})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapStepLimit {
		t.Fatalf("trap = %v, want hang", trap)
	}
}

func TestStackOverflow(t *testing.T) {
	mod := ir.MustCompile("t", "fn f() { return f(); }")
	m := New(mod, pmem.New(1<<12), Config{MaxCallDepth: 100})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapStackOverflow {
		t.Fatalf("trap = %v", trap)
	}
}

func TestPMOutOfSpace(t *testing.T) {
	mod := ir.MustCompile("t", `
fn f() {
    while (1) {
        var p = pmalloc(64);
        persist(p, 1);
    }
}`)
	m := New(mod, pmem.New(1024), Config{})
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapPMOutOfSpace {
		t.Fatalf("trap = %v", trap)
	}
}

func TestEmitOutput(t *testing.T) {
	m := machine(t, "fn f(n) { var i = 0; while (i < n) { emit(i * i); i = i + 1; } }")
	mustCall(t, m, "f", 4)
	want := []int64{0, 1, 4, 9}
	if len(m.Output) != len(want) {
		t.Fatalf("output = %v", m.Output)
	}
	for i, w := range want {
		if m.Output[i] != w {
			t.Fatalf("output = %v", m.Output)
		}
	}
}

func TestSpawnAndYield(t *testing.T) {
	m := machine(t, `
var log;
fn worker(tag) {
    log = log * 10 + tag;
    return 0;
}
fn main() {
    spawn worker(1);
    spawn worker(2);
    log = log * 10 + 9;
    yield();
    yield();
    return log;
}`)
	got := mustCall(t, m, "main")
	// main writes 9 first, then yields to workers 1 and 2 in spawn order.
	if got != 912 {
		t.Fatalf("interleave log = %d, want 912", got)
	}
}

func TestBackgroundThreadRunsOnDrain(t *testing.T) {
	m := machine(t, `
var done;
fn worker() { done = 1; return 0; }
fn main() { spawn worker(); return 0; }`)
	mustCall(t, m, "main")
	if v, _ := m.Global("done"); v != 0 {
		t.Fatal("background thread ran without being scheduled")
	}
	if m.BackgroundThreads() != 1 {
		t.Fatalf("background threads = %d", m.BackgroundThreads())
	}
	if trap := m.DrainBackground(1000); trap != nil {
		t.Fatal(trap)
	}
	if v, _ := m.Global("done"); v != 1 {
		t.Fatal("background thread did not run during drain")
	}
	if m.BackgroundThreads() != 0 {
		t.Fatalf("background threads after drain = %d", m.BackgroundThreads())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	m := machine(t, `
var lk;
var counter;
fn bump(n) {
    var i = 0;
    while (i < n) {
        lock(lkaddr());
        var c = counter;
        yield(); // adversarial: try to lose the update
        counter = c + 1;
        unlock(lkaddr());
        i = i + 1;
    }
    return 0;
}
var lkcell;
fn lkaddr() {
    if (lkcell == 0) { lkcell = valloc(1); }
    return lkcell;
}
fn main(n) {
    spawn bump(n);
    spawn bump(n);
    var spin = 0;
    while (spin < 10000) { yield(); spin = spin + 1; }
    return counter;
}`)
	got := mustCall(t, m, "main", 50)
	if got != 100 {
		t.Fatalf("locked counter = %d, want 100 (mutual exclusion broken)", got)
	}
}

func TestRaceWithoutLockLosesUpdates(t *testing.T) {
	m := machine(t, `
var counter;
fn bump(n) {
    var i = 0;
    while (i < n) {
        var c = counter;
        yield(); // the race window
        counter = c + 1;
        i = i + 1;
    }
    return 0;
}
fn main(n) {
    spawn bump(n);
    spawn bump(n);
    var spin = 0;
    while (spin < 10000) { yield(); spin = spin + 1; }
    return counter;
}`)
	got := mustCall(t, m, "main", 50)
	if got >= 100 {
		t.Fatalf("unlocked counter = %d; expected lost updates (< 100)", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := machine(t, `
fn main() {
    var lk = valloc(1);
    lock(lk);
    lock(lk); // self-deadlock
    return 0;
}`)
	_, trap := m.Call("main")
	if trap == nil || trap.Kind != TrapDeadlock {
		t.Fatalf("trap = %v, want deadlock", trap)
	}
}

func TestInjectionBitFlip(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(1);
    p[0] = 0;
    persist(p, 1);
    setroot(0, p);
    return 0;
}
fn read() { var p = getroot(0); return p[0]; }`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	mustCall(t, m, "setup")
	root, _ := pool.Root(0)
	m.Injections = append(m.Injections, &Injection{
		AtStep: m.Steps() + 1,
		Apply: func(mm *Machine) *Trap {
			mm.Pool.InjectBitFlip(root, 4, true)
			return nil
		},
	})
	if got := mustCall(t, m, "read"); got != 16 {
		t.Fatalf("after injected flip, read = %d, want 16", got)
	}
}

func TestInjectionCrash(t *testing.T) {
	mod := ir.MustCompile("t", `
fn busy() { var i = 0; while (i < 100000) { i = i + 1; } return i; }`)
	m := New(mod, pmem.New(1<<12), Config{})
	m.Injections = append(m.Injections, &Injection{
		AtStep: 500,
		Apply: func(mm *Machine) *Trap {
			return &Trap{Kind: TrapInjectedCrash, Msg: "scheduled crash"}
		},
	})
	_, trap := m.Call("busy")
	if trap == nil || trap.Kind != TrapInjectedCrash {
		t.Fatalf("trap = %v", trap)
	}
}

func TestTraceSinkReceivesGUIDEvents(t *testing.T) {
	mod := ir.MustCompile("t", `
fn f() {
    var p = pmalloc(2);
    p[0] = 5;
    persist(p, 1);
    return 0;
}`)
	// Hand-assign GUIDs the way the analyzer does.
	guid := 1
	mod.Func("f").Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpPmalloc, ir.OpStore, ir.OpPersist:
			in.GUID = guid
			guid++
		}
	})
	m := New(mod, pmem.New(1<<12), Config{})
	var events []int
	m.TraceSink = func(g int, addr uint64) { events = append(events, g) }
	mustCall(t, m, "f")
	if len(events) != 3 {
		t.Fatalf("trace events = %v, want 3", events)
	}
}

func TestRecoveryAccessTracking(t *testing.T) {
	mod := ir.MustCompile("t", `
fn setup() {
    var p = pmalloc(2);
    var q = pmalloc(2);
    p[0] = q;
    persist(p, 1);
    setroot(0, p);
    return q;
}
fn recover_run() {
    recover_begin();
    var p = getroot(0);
    var v = p[0];
    recover_end();
    return v;
}`)
	pool := pmem.New(1 << 12)
	m := New(mod, pool, Config{})
	q := mustCall(t, m, "setup")
	root, _ := pool.Root(0)

	m2 := New(mod, pool, Config{})
	mustCall(t, m2, "recover_run")
	if !m2.RecoveryAccess[root] {
		t.Fatal("root access not recorded during recovery window")
	}
	if m2.RecoveryAccess[uint64(q)] {
		t.Fatal("q was never accessed but is recorded")
	}
}

func TestPmSize(t *testing.T) {
	m := machine(t, `
fn f() {
    var p = pmalloc(7);
    var s = pmsize(p);
    pfree(p);
    return s * 100 + pmsize(p);
}`)
	if got := mustCall(t, m, "f"); got != 700 {
		t.Fatalf("pmsize = %d, want 700", got)
	}
}

func TestDoubleFreeTrapsAsSegfault(t *testing.T) {
	m := machine(t, "fn f() { var p = pmalloc(2); pfree(p); pfree(p); }")
	_, trap := m.Call("f")
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
}

func TestCallUnknownFunction(t *testing.T) {
	m := machine(t, "fn f() { return 0; }")
	_, trap := m.Call("missing")
	if trap == nil || trap.Kind != TrapInternal {
		t.Fatalf("trap = %v", trap)
	}
}

// Property: VM arithmetic agrees with Go int64 semantics for the full
// operator set (excluding division by zero).
func TestPropArithmeticMatchesGo(t *testing.T) {
	m := machine(t, `
fn addf(a, b) { return a + b; }
fn subf(a, b) { return a - b; }
fn mulf(a, b) { return a * b; }
fn andf(a, b) { return a & b; }
fn orf(a, b) { return a | b; }
fn xorf(a, b) { return a ^ b; }
`)
	f := func(a, b int64) bool {
		pairs := []struct {
			fn   string
			want int64
		}{
			{"addf", a + b}, {"subf", a - b}, {"mulf", a * b},
			{"andf", a & b}, {"orf", a | b}, {"xorf", a ^ b},
		}
		for _, p := range pairs {
			got, trap := m.Call(p.fn, a, b)
			if trap != nil || got != p.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a value stored and persisted through PML survives crash+restart
// and equals what was written.
func TestPropPersistRoundTrip(t *testing.T) {
	mod := ir.MustCompile("t", `
fn write(v) {
    var p = getroot(0);
    if (p == 0) {
        p = pmalloc(1);
        setroot(0, p);
    }
    p[0] = v;
    persist(p, 1);
    return 0;
}
fn read() { var p = getroot(0); return p[0]; }`)
	pool := pmem.New(1 << 12)
	f := func(v int64) bool {
		m := New(mod, pool, Config{})
		if _, trap := m.Call("write", v); trap != nil {
			return false
		}
		pool.Crash()
		m2 := New(mod, pool, Config{})
		got, trap := m2.Call("read")
		return trap == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
