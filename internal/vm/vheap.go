package vm

import "fmt"

// VBase is the lowest valid volatile heap address. Addresses in [0, VBase)
// form the "null page": dereferencing them traps, so nil-pointer bugs in PML
// programs fail the same way C programs segfault.
const VBase uint64 = 1 << 20

// vheap is the volatile (DRAM) heap: the same block layout as the persistent
// allocator but with no durability — it vanishes when the Machine is dropped,
// which is exactly how restart clears soft state.
type vheap struct {
	words    int
	mem      []int64
	heapNext int
	freeHead int // payload index of first free block, 0 = none
	live     int
}

const (
	vBlockAllocated = int64(1) << 62
	vBlockSizeMask  = int64(1)<<32 - 1
)

func newVHeap(words int) *vheap {
	if words < 64 {
		words = 64
	}
	return &vheap{words: words, mem: make([]int64, words), heapNext: 1}
}

func (h *vheap) contains(addr uint64) bool {
	return addr >= VBase && addr < VBase+uint64(h.words)
}

func (h *vheap) load(addr uint64) (int64, bool) {
	if !h.contains(addr) {
		return 0, false
	}
	return h.mem[addr-VBase], true
}

func (h *vheap) store(addr uint64, v int64) bool {
	if !h.contains(addr) {
		return false
	}
	h.mem[addr-VBase] = v
	return true
}

// alloc returns a zeroed payload of n words, or 0 on exhaustion.
func (h *vheap) alloc(n int) uint64 {
	if n <= 0 {
		n = 1
	}
	// First fit over the free list.
	prev := -1
	cur := h.freeHead
	for cur != 0 {
		hdr := h.mem[cur-1]
		size := int(hdr & vBlockSizeMask)
		if size >= n {
			next := int(h.mem[cur])
			if size >= n+2 {
				restIdx := cur + n + 1
				h.mem[restIdx-1] = int64(size - n - 1)
				h.mem[restIdx] = int64(next)
				next = restIdx
				h.mem[cur-1] = int64(n)
			}
			if prev < 0 {
				h.freeHead = next
			} else {
				h.mem[prev] = int64(next)
			}
			h.mem[cur-1] |= vBlockAllocated
			size = int(h.mem[cur-1] & vBlockSizeMask)
			for w := 0; w < size; w++ {
				h.mem[cur+w] = 0
			}
			h.live += size
			return VBase + uint64(cur)
		}
		prev = cur
		cur = int(h.mem[cur])
	}
	if h.heapNext+n+1 > h.words {
		return 0
	}
	idx := h.heapNext
	h.mem[idx] = int64(n) | vBlockAllocated
	h.heapNext = idx + n + 1
	h.live += n
	return VBase + uint64(idx+1)
}

func (h *vheap) free(addr uint64) error {
	if !h.contains(addr) {
		return fmt.Errorf("vfree of non-heap address %#x", addr)
	}
	i := int(addr - VBase)
	if i <= 1 || i >= h.heapNext {
		return fmt.Errorf("vfree of %#x outside heap", addr)
	}
	hdr := h.mem[i-1]
	if hdr&vBlockAllocated == 0 {
		return fmt.Errorf("vfree of %#x: not allocated (double free?)", addr)
	}
	size := int(hdr & vBlockSizeMask)
	h.mem[i-1] = int64(size)
	h.mem[i] = int64(h.freeHead)
	h.freeHead = i
	h.live -= size
	return nil
}
