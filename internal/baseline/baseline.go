// Package baseline implements the two comparison solutions of the paper's
// evaluation (§6.1):
//
//   - pmCRIU: the CRIU process-checkpointing approach enhanced to snapshot
//     PM pools — coarse-grained, periodic, point-in-time images, rolled
//     back newest-first until the failure disappears.
//   - ArCkpt: Arthas's fine-grained checkpoint log but with the analyzer
//     disabled — reversion follows strict time order (newest sequence
//     number first), one entry per re-execution, with no dependency
//     guidance. It recovers immediate-crash bugs cheaply and times out on
//     everything whose root cause is buried in history.
package baseline

import (
	"time"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
	"arthas/internal/vm"
)

// Report summarizes a baseline mitigation.
type Report struct {
	Recovered bool
	Attempts  int
	// SnapshotsBack, for pmCRIU, counts how many snapshots were unwound.
	SnapshotsBack int
	// RevertedVersions, for ArCkpt, counts discarded checkpoint versions.
	RevertedVersions int
	// DiscardedWords measures durable words that differ between the
	// pre-mitigation pool and the restored state (pmCRIU's coarse loss).
	DiscardedWords int
	Duration       time.Duration
	TimedOut       bool
}

// PmCRIU takes whole-pool snapshots every Interval logical operations.
type PmCRIU struct {
	Pool *pmem.Pool
	// Interval is the number of Tick operations between snapshots
	// (the paper dumps an image every minute).
	Interval uint64
	// Obs receives one span per snapshot-restore attempt. Nil disables.
	Obs obs.Sink

	ops   uint64
	snaps []*pmem.Snapshot
}

// NewPmCRIU wires the baseline to a pool.
func NewPmCRIU(pool *pmem.Pool, interval uint64) *PmCRIU {
	if interval == 0 {
		interval = 1000
	}
	return &PmCRIU{Pool: pool, Interval: interval}
}

// Tick advances logical time by n operations, snapshotting when due.
func (c *PmCRIU) Tick(n uint64) {
	before := c.ops / c.Interval
	c.ops += n
	if c.ops/c.Interval != before {
		c.SnapshotNow()
	}
}

// SnapshotNow forces an immediate snapshot.
func (c *PmCRIU) SnapshotNow() {
	c.snaps = append(c.snaps, c.Pool.TakeSnapshot(c.ops))
}

// Snapshots returns how many snapshots have been taken.
func (c *PmCRIU) Snapshots() int { return len(c.snaps) }

// Mitigate restores snapshots newest-first, re-executing after each, until
// the system is healthy or snapshots run out. reexec restarts the target
// and probes the failure; nil means healthy.
func (c *PmCRIU) Mitigate(reexec func() *vm.Trap) *Report {
	start := time.Now()
	rep := &Report{}
	defer func() { rep.Duration = time.Since(start) }()

	failedState := c.Pool.TakeSnapshot(c.ops) // for loss measurement
	sink := obs.OrNop(c.Obs)
	for i := len(c.snaps) - 1; i >= 0; i-- {
		rep.Attempts++
		rep.SnapshotsBack = len(c.snaps) - i
		span := sink.Start("baseline.pmcriu.restore",
			obs.A("snapshots_back", rep.SnapshotsBack))
		if err := c.Pool.RestoreSnapshot(c.snaps[i]); err != nil {
			span.SetAttr("outcome", "restore-error")
			span.End()
			continue
		}
		if trap := reexec(); trap == nil {
			span.SetAttr("outcome", "recovered")
			span.End()
			rep.Recovered = true
			rep.DiscardedWords = c.Pool.DiffWords(failedState)
			return rep
		} else {
			span.SetAttr("outcome", trap.Kind.String())
			span.End()
		}
	}
	rep.TimedOut = true
	return rep
}

// ArCkptConfig bounds the ArCkpt baseline.
type ArCkptConfig struct {
	// MaxAttempts is the re-execution budget (the paper's 10-minute
	// timeout analogue). Default 64.
	MaxAttempts int
	// Obs receives one span per revert+re-execute attempt. Nil disables.
	Obs obs.Sink
}

// MitigateArCkpt reverts checkpoint entries strictly newest-first, one per
// re-execution, with no dependency analysis.
func MitigateArCkpt(pool *pmem.Pool, log *checkpoint.Log, reexec func() *vm.Trap,
	cfg ArCkptConfig) *Report {

	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 64
	}
	start := time.Now()
	startReverted := log.RevertedVersions()
	rep := &Report{}
	defer func() {
		rep.Duration = time.Since(start)
		rep.RevertedVersions = int(log.RevertedVersions() - startReverted)
	}()

	sink := obs.OrNop(cfg.Obs)
	seqs := log.AllSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		if rep.Attempts >= cfg.MaxAttempts {
			rep.TimedOut = true
			return rep
		}
		span := sink.Start("baseline.arckpt.revert", obs.A("seq", seqs[i]))
		if _, err := log.Revert(pool, seqs[i]); err != nil {
			span.SetAttr("outcome", "revert-error")
			span.End()
			continue
		}
		rep.Attempts++
		if trap := reexec(); trap == nil {
			span.SetAttr("outcome", "recovered")
			span.End()
			rep.Recovered = true
			return rep
		} else {
			span.SetAttr("outcome", trap.Kind.String())
			span.End()
		}
	}
	rep.TimedOut = true
	return rep
}
