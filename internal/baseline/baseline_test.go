package baseline

import (
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/pmem"
	"arthas/internal/vm"
)

// counterSys: a root counter plus a poison flag; poisoning persists a bad
// flag that makes check() fail.
const counterSys = `
fn init_() {
    var root = pmalloc(4);
    root[0] = 0;  // counter
    persist(root, 1);
    root[1] = 0;  // poison flag, persisted per-field so it is versioned
    persist(root + 1, 1);
    setroot(0, root);
    return 0;
}
fn bump() {
    var root = getroot(0);
    root[0] = root[0] + 1;
    persist(root, 1);
    return root[0];
}
fn poison() {
    var root = getroot(0);
    root[1] = 1;
    persist(root + 1, 1);
    return 0;
}
fn check() {
    var root = getroot(0);
    assert(root[1] == 0);
    return root[0];
}
// append_ persists a fresh item per call: each produces a distinct
// checkpoint entry, mimicking a KV store ingesting new keys.
fn append_(v) {
    var item = pmalloc(2);
    item[0] = v;
    persist(item, 1);
    return 0;
}
`

type deployment struct {
	mod  *ir.Module
	pool *pmem.Pool
	log  *checkpoint.Log
	m    *vm.Machine
}

func deploy(t *testing.T, withLog bool) *deployment {
	t.Helper()
	mod, err := ir.CompileSource("counter", counterSys)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{mod: mod, pool: pmem.New(1 << 12)}
	if withLog {
		d.log = checkpoint.NewLog(3)
		d.pool.SetHooks(d.log.Hooks())
	}
	d.m = vm.New(mod, d.pool, vm.Config{})
	return d
}

func (d *deployment) restart() {
	d.pool.Crash()
	d.m = vm.New(d.mod, d.pool, vm.Config{})
}

func (d *deployment) probe() *vm.Trap {
	d.restart()
	_, trap := d.m.Call("check")
	return trap
}

func TestPmCRIUSnapshotCadence(t *testing.T) {
	d := deploy(t, false)
	c := NewPmCRIU(d.pool, 10)
	for i := 0; i < 35; i++ {
		c.Tick(1)
	}
	if c.Snapshots() != 3 {
		t.Fatalf("snapshots = %d, want 3", c.Snapshots())
	}
}

func TestPmCRIURecoversWhenSnapshotPredatesBug(t *testing.T) {
	d := deploy(t, false)
	c := NewPmCRIU(d.pool, 10)
	d.m.Call("init_")
	for i := 0; i < 20; i++ {
		d.m.Call("bump")
		c.Tick(1)
	}
	// Bug strikes after the snapshots.
	d.m.Call("poison")
	if d.probe() == nil {
		t.Fatal("poison did not break the system")
	}
	rep := c.Mitigate(d.probe)
	if !rep.Recovered {
		t.Fatalf("pmCRIU failed: %+v", rep)
	}
	// Coarse rollback: the counter lost progress back to the snapshot.
	d.restart()
	v, trap := d.m.Call("check")
	if trap != nil {
		t.Fatal(trap)
	}
	if v != 20 {
		t.Logf("counter after restore = %d (snapshot-granularity loss)", v)
	}
	if v > 20 {
		t.Fatalf("counter too high after restore: %d", v)
	}
}

func TestPmCRIUFailsWhenBugPrecedesFirstSnapshot(t *testing.T) {
	// The paper's probabilistic cases (f5, f8): the bug triggers before
	// the first snapshot, so every image contains the bad state.
	d := deploy(t, false)
	c := NewPmCRIU(d.pool, 10)
	d.m.Call("init_")
	d.m.Call("poison") // bug first...
	for i := 0; i < 20; i++ {
		d.m.Call("bump")
		c.Tick(1) // ...snapshots all capture the poisoned pool
	}
	rep := c.Mitigate(d.probe)
	if rep.Recovered {
		t.Fatal("pmCRIU recovered despite all snapshots containing the bad state")
	}
	if !rep.TimedOut {
		t.Fatal("expected timeout-style failure")
	}
}

func TestPmCRIUNoSnapshots(t *testing.T) {
	d := deploy(t, false)
	c := NewPmCRIU(d.pool, 100)
	d.m.Call("init_")
	d.m.Call("poison")
	rep := c.Mitigate(d.probe)
	if rep.Recovered || rep.Attempts != 0 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestArCkptRecoversImmediateCrash(t *testing.T) {
	// The newest update IS the bad one: ArCkpt's single newest-first
	// reversion fixes it in one attempt (the paper's f4/f10 pattern).
	d := deploy(t, true)
	d.m.Call("init_")
	for i := 0; i < 5; i++ {
		d.m.Call("bump")
	}
	d.m.Call("poison") // newest persisted update
	rep := MitigateArCkpt(d.pool, d.log, d.probe, ArCkptConfig{})
	if !rep.Recovered {
		t.Fatalf("ArCkpt failed: %+v", rep)
	}
	if rep.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", rep.Attempts)
	}
	if rep.RevertedVersions != 1 {
		t.Fatalf("reverted = %d, want 1", rep.RevertedVersions)
	}
}

func TestArCkptTimesOutOnBuriedRootCause(t *testing.T) {
	// Bug triggered early, followed by many updates: newest-first blind
	// reversion burns its budget before reaching the bad entry.
	d := deploy(t, true)
	d.m.Call("init_")
	d.m.Call("poison")
	for i := 0; i < 50; i++ {
		d.m.Call("append_", int64(i)) // 50 distinct newer entries
	}
	rep := MitigateArCkpt(d.pool, d.log, d.probe, ArCkptConfig{MaxAttempts: 10})
	if rep.Recovered {
		t.Fatal("ArCkpt recovered despite buried root cause and small budget")
	}
	if !rep.TimedOut {
		t.Fatal("expected timeout")
	}
	if rep.Attempts != 10 {
		t.Fatalf("attempts = %d", rep.Attempts)
	}
}

func TestArCkptEventuallyFindsBuriedRootCauseWithBigBudget(t *testing.T) {
	d := deploy(t, true)
	d.m.Call("init_")
	d.m.Call("poison")
	for i := 0; i < 20; i++ {
		d.m.Call("append_", int64(i))
	}
	rep := MitigateArCkpt(d.pool, d.log, d.probe, ArCkptConfig{MaxAttempts: 1000})
	if !rep.Recovered {
		t.Fatalf("ArCkpt with big budget failed: %+v", rep)
	}
	// Blind newest-first reversion had to walk past every newer entry
	// (20 appended items) before reaching the poison.
	if rep.Attempts < 20 {
		t.Fatalf("attempts = %d; expected blind reversion to churn through newer entries", rep.Attempts)
	}
}
