package detector

import (
	"errors"
	"testing"
)

func TestUserChecksCleanPass(t *testing.T) {
	d := New()
	d.AddCheck("items-exist", FailDataLoss, func() error { return nil })
	sig, hard, err := d.RunChecks()
	if err != nil || hard {
		t.Fatalf("clean check: sig=%v hard=%v err=%v", sig, hard, err)
	}
	if len(d.History()) != 0 {
		t.Fatal("clean check recorded history")
	}
}

func TestUserChecksViolation(t *testing.T) {
	d := New()
	boom := errors.New("key 42 missing")
	present := true
	d.AddCheck("items-exist", FailDataLoss, func() error {
		if present {
			return nil
		}
		return boom
	})
	if _, _, err := d.RunChecks(); err != nil {
		t.Fatal(err)
	}
	present = false
	sig, hard, err := d.RunChecks()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if hard {
		t.Fatal("first violation flagged hard")
	}
	if sig.Kind != FailDataLoss {
		t.Fatalf("sig kind = %v", sig.Kind)
	}
	// The same check failing again (e.g. after a restart) is a hard fault.
	_, hard, _ = d.RunChecks()
	if !hard {
		t.Fatal("recurring violation not flagged hard")
	}
}

func TestUserChecksOrdering(t *testing.T) {
	d := New()
	d.AddCheck("first", FailWrongResult, func() error { return errors.New("a") })
	d.AddCheck("second", FailDataLoss, func() error { return errors.New("b") })
	sig, _, err := d.RunChecks()
	if err == nil || err.Error() != "a" {
		t.Fatalf("err = %v", err)
	}
	if sig.Fn != "first" {
		t.Fatalf("sig = %v", sig)
	}
}

func TestUserChecksSurviveReset(t *testing.T) {
	d := New()
	d.AddCheck("c", FailWrongResult, func() error { return errors.New("x") })
	d.RunChecks()
	d.Reset()
	if len(d.History()) != 0 {
		t.Fatal("reset did not clear history")
	}
	if _, _, err := d.RunChecks(); err == nil {
		t.Fatal("checks lost after reset")
	}
}
