package detector

import (
	"errors"
	"testing"

	"arthas/internal/ir"
	"arthas/internal/pmem"
	"arthas/internal/vm"
)

func trapFrom(t *testing.T, src, fn string) *vm.Trap {
	t.Helper()
	mod, err := ir.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(mod, pmem.New(1<<12), vm.Config{StepLimit: 100000})
	_, trap := m.Call(fn)
	if trap == nil {
		t.Fatalf("%s did not trap", fn)
	}
	return trap
}

func TestKindMapping(t *testing.T) {
	cases := []struct {
		src, fn string
		want    FailureKind
	}{
		{"fn f() { var p = 0; p[0] = 1; }", "f", FailCrash},
		{"fn f() { assert(0); }", "f", FailAssert},
		{"fn f() { fail(3); }", "f", FailPanic},
		{"fn f() { while (1) { } }", "f", FailHang},
		{"fn f() { var lk = valloc(1); lock(lk); lock(lk); }", "f", FailDeadlock},
	}
	for _, c := range cases {
		trap := trapFrom(t, c.src, c.fn)
		if got := KindOfTrap(trap.Kind); got != c.want {
			t.Errorf("%q -> %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSignatureSimilarSameInstruction(t *testing.T) {
	src := "fn f() { var p = 0; p[0] = 1; }"
	a := SignatureOf(trapFrom(t, src, "f"))
	b := SignatureOf(trapFrom(t, src, "f"))
	if !Similar(a, b) {
		t.Fatalf("identical faults not similar: %v vs %v", a, b)
	}
}

func TestSignatureDissimilarKinds(t *testing.T) {
	a := SignatureOf(trapFrom(t, "fn f() { var p = 0; p[0] = 1; }", "f"))
	b := SignatureOf(trapFrom(t, "fn f() { assert(0); }", "f"))
	if Similar(a, b) {
		t.Fatal("different kinds reported similar")
	}
}

func TestSignatureDissimilarCodes(t *testing.T) {
	a := SignatureOf(trapFrom(t, "fn f() { fail(1); }", "f"))
	b := SignatureOf(trapFrom(t, "fn f() { fail(2); }", "f"))
	if Similar(a, b) {
		t.Fatal("different panic codes reported similar")
	}
}

func TestDetectorFlagsRecurrence(t *testing.T) {
	d := New()
	src := "fn f() { var p = 0; p[0] = 1; }"
	_, hard := d.Observe(trapFrom(t, src, "f"))
	if hard {
		t.Fatal("first observation flagged as hard")
	}
	_, hard = d.Observe(trapFrom(t, src, "f")) // "after restart"
	if !hard {
		t.Fatal("recurring failure not flagged as potential hard failure")
	}
}

func TestDetectorDistinguishesDifferentFaults(t *testing.T) {
	d := New()
	d.Observe(trapFrom(t, "fn f() { var p = 0; p[0] = 1; }", "f"))
	_, hard := d.Observe(trapFrom(t, "fn g() { assert(0); }", "g"))
	if hard {
		t.Fatal("unrelated failure flagged as recurrence")
	}
}

func TestObserveCustomRecurrence(t *testing.T) {
	d := New()
	_, hard := d.ObserveCustom(FailLeak, "pool-monitor")
	if hard {
		t.Fatal("first leak flagged hard")
	}
	_, hard = d.ObserveCustom(FailLeak, "pool-monitor")
	if !hard {
		t.Fatal("second leak not flagged hard")
	}
}

func TestLeakMonitor(t *testing.T) {
	pool := pmem.New(1000)
	d := New()
	if d.CheckLeak(pool) {
		t.Fatal("empty pool flagged as leaking")
	}
	for {
		if _, err := pool.Alloc(64); err != nil {
			break
		}
	}
	if !d.CheckLeak(pool) {
		t.Fatalf("full pool (live=%d/%d) not flagged", pool.LiveWords(), pool.Words())
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	pool := pmem.New(1 << 10)
	a, _ := pool.Alloc(4)
	for i := uint64(0); i < 4; i++ {
		pool.Store(a+i, 1000+i)
	}
	pool.Persist(a, 4)
	g := &ChecksumGuard{Name: "region", Addr: a, Words: 4}
	if err := g.Update(pool); err != nil {
		t.Fatal(err)
	}
	ok, err := g.Verify(pool)
	if err != nil || !ok {
		t.Fatalf("clean region fails verify: ok=%v err=%v", ok, err)
	}
	pool.InjectBitFlip(a+2, 17, true)
	ok, err = g.Verify(pool)
	if err != nil || ok {
		t.Fatal("bit flip not detected by checksum")
	}
}

func TestChecksumBlindToLogicalErrors(t *testing.T) {
	// A checksum updated after a buggy-but-"legitimate" write verifies
	// fine — the paper's point about checksums being insufficient.
	pool := pmem.New(1 << 10)
	a, _ := pool.Alloc(1)
	pool.Store(a, 42)
	pool.Persist(a, 1)
	g := &ChecksumGuard{Addr: a, Words: 1}
	g.Update(pool)
	pool.Store(a, 9999) // logic error writes a wrong value
	pool.Persist(a, 1)
	g.Update(pool) // and the system dutifully re-checksums it
	ok, _ := g.Verify(pool)
	if !ok {
		t.Fatal("expected checksum to (wrongly) accept the logical error")
	}
}

func TestUnarmedGuardVerifies(t *testing.T) {
	pool := pmem.New(1 << 10)
	g := &ChecksumGuard{Addr: pmem.Base, Words: 1}
	ok, err := g.Verify(pool)
	if err != nil || !ok {
		t.Fatal("unarmed guard must vacuously verify")
	}
}

func TestInvariantSuite(t *testing.T) {
	var s InvariantSuite
	count, size := 5, 5
	s.Add("items == hashtable size", func() error {
		if count != size {
			return errors.New("mismatch")
		}
		return nil
	})
	if v := s.Run(); v != nil {
		t.Fatalf("clean state violated: %v", v)
	}
	count = 7
	if v := s.Run(); len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
}

func TestHistoryAndReset(t *testing.T) {
	d := New()
	d.ObserveCustom(FailLeak, "x")
	if len(d.History()) != 1 {
		t.Fatal("history not recorded")
	}
	d.Reset()
	if len(d.History()) != 0 {
		t.Fatal("reset did not clear history")
	}
}
