package detector

import (
	"fmt"

	"arthas/internal/pmem"
)

// Alternative detection mechanisms evaluated in paper §6.6: checksums catch
// value corruption (but not logic errors producing "valid" wrong values),
// and invariant checks require developers to enumerate application-specific
// invariants — both detect only a minority of hard faults (Table 7), and
// neither fixes the bad state.

// Checksum computes a simple FNV-1a style checksum over a PM range.
func Checksum(pool *pmem.Pool, addr uint64, words int) (uint64, error) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for w := 0; w < words; w++ {
		v, err := pool.Load(addr + uint64(w))
		if err != nil {
			return 0, err
		}
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= prime
		}
	}
	return h, nil
}

// ChecksumGuard pairs a PM range with its last-known-good checksum, the way
// a checksum-based defense would protect an individual PM state.
type ChecksumGuard struct {
	Name  string
	Addr  uint64
	Words int
	sum   uint64
	armed bool
}

// Update recomputes and stores the checksum (call after a legitimate write).
func (g *ChecksumGuard) Update(pool *pmem.Pool) error {
	s, err := Checksum(pool, g.Addr, g.Words)
	if err != nil {
		return err
	}
	g.sum = s
	g.armed = true
	return nil
}

// Verify reports whether the range still matches the recorded checksum.
// An unarmed guard vacuously verifies.
func (g *ChecksumGuard) Verify(pool *pmem.Pool) (bool, error) {
	if !g.armed {
		return true, nil
	}
	s, err := Checksum(pool, g.Addr, g.Words)
	if err != nil {
		return false, err
	}
	return s == g.sum, nil
}

// Invariant is one domain-specific consistency predicate ("the number of
// key-value items must equal the hashtable size").
type Invariant struct {
	Name  string
	Check func() error
}

// InvariantSuite runs a set of invariants and collects violations.
type InvariantSuite struct {
	Invariants []Invariant
}

// Add registers an invariant.
func (s *InvariantSuite) Add(name string, check func() error) {
	s.Invariants = append(s.Invariants, Invariant{Name: name, Check: check})
}

// Run evaluates all invariants, returning the violations (nil if clean).
func (s *InvariantSuite) Run() []error {
	var out []error
	for _, inv := range s.Invariants {
		if err := inv.Check(); err != nil {
			out = append(out, fmt.Errorf("invariant %q violated: %w", inv.Name, err))
		}
	}
	return out
}
