// Package detector implements the Arthas detector (paper §4.3): it monitors
// a PM system for failures (crash, assertion, hang, leak, wrong results),
// extracts a failure signature — fault instruction, exit kind, stack trace —
// and uses similarity heuristics across restarts to flag *potential hard
// failures*. The heuristics are deliberately imperfect: false alarms are
// pruned later by the reactor when the reversion plan comes out empty.
//
// The package also hosts the alternative detection mechanisms the paper
// evaluates in §6.6: value checksums and domain invariant checks, which
// catch only a small subset of hard faults (Table 7).
package detector

import (
	"fmt"
	"strings"

	"arthas/internal/obs"
	"arthas/internal/pmem"
	"arthas/internal/vm"
)

// FailureKind classifies an observed failure at the detector level.
type FailureKind int

// Failure kinds.
const (
	FailNone FailureKind = iota
	FailCrash
	FailAssert
	FailPanic // program-reported fatal error (fail(code))
	FailHang
	FailDeadlock
	FailOutOfSpace
	FailLeak
	FailWrongResult
	FailDataLoss
	FailMediaCorrupt
)

var failNames = [...]string{
	FailNone: "none", FailCrash: "crash", FailAssert: "assert",
	FailPanic: "panic", FailHang: "hang", FailDeadlock: "deadlock",
	FailOutOfSpace: "out-of-space", FailLeak: "persistent-leak",
	FailWrongResult: "wrong-result", FailDataLoss: "data-loss",
	FailMediaCorrupt: "media-corrupt",
}

func (k FailureKind) String() string {
	if int(k) < len(failNames) {
		return failNames[k]
	}
	return fmt.Sprintf("failure(%d)", int(k))
}

// KindOfTrap maps VM trap kinds to detector failure kinds.
func KindOfTrap(k vm.TrapKind) FailureKind {
	switch k {
	case vm.TrapSegfault, vm.TrapDivZero, vm.TrapOOM, vm.TrapStackOverflow:
		return FailCrash
	case vm.TrapAssert:
		return FailAssert
	case vm.TrapUserFail:
		return FailPanic
	case vm.TrapStepLimit:
		return FailHang
	case vm.TrapDeadlock:
		return FailDeadlock
	case vm.TrapPMOutOfSpace:
		return FailOutOfSpace
	case vm.TrapMediaCorrupt:
		return FailMediaCorrupt
	}
	return FailNone
}

// Signature identifies a failure for cross-restart comparison.
type Signature struct {
	Kind  FailureKind
	GUID  int    // fault instruction GUID if it is a traced PM instruction
	Fn    string // function containing the fault instruction
	Loc   string // source position of the fault instruction
	Code  int64  // user code for panics
	Stack string
}

// String renders a compact signature.
func (s Signature) String() string {
	return fmt.Sprintf("%v@%s:%s guid=%d code=%d", s.Kind, s.Fn, s.Loc, s.GUID, s.Code)
}

// SignatureOf extracts a signature from a VM trap.
func SignatureOf(trap *vm.Trap) Signature {
	sig := Signature{Kind: KindOfTrap(trap.Kind), Code: trap.Code, Stack: trap.StackString()}
	if trap.Fn != nil {
		sig.Fn = trap.Fn.Name
	}
	if trap.Instr != nil {
		sig.GUID = trap.Instr.GUID
		sig.Loc = trap.Instr.Pos.String()
	}
	return sig
}

// Similar applies the paper's heuristic: "having the same exit code, fault
// instruction, loosely the same stack trace".
func Similar(a, b Signature) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Code != b.Code {
		return false
	}
	// Same fault instruction is the strongest signal.
	if a.Fn == b.Fn && a.Loc == b.Loc && a.Fn != "" {
		return true
	}
	// Detector-synthesized failures (data loss, leak monitors) carry no
	// instruction or stack: kind + code identity is the whole signature.
	if a.Fn == "" && b.Fn == "" && a.Stack == "" && b.Stack == "" {
		return true
	}
	// Loosely the same stack: share the innermost frame.
	af := strings.SplitN(a.Stack, " <- ", 2)
	bf := strings.SplitN(b.Stack, " <- ", 2)
	return len(af) > 0 && len(bf) > 0 && af[0] != "" && af[0] == bf[0]
}

// UserCheck is a user-defined health predicate (§4.3: "It also supports
// user-defined checks (e.g., inserted key-value items exist)"). It returns
// a non-nil error describing the violation.
type UserCheck struct {
	Name string
	Kind FailureKind
	Run  func() error
}

// Detector accumulates observations for one monitored system.
type Detector struct {
	// LeakThresholdPct flags a leak when live PM words exceed this percent
	// of the pool (default 90; <=0 disables).
	LeakThresholdPct int

	// Lineage, when set, resolves a faulting PM address to its last-writer
	// provenance (fed by the provenance index). The detector only records
	// hit/miss telemetry — classification never depends on lineage, so
	// attaching the index cannot change what counts as a hard fault.
	Lineage func(addr uint64) (guid int, ok bool)

	history []Signature
	checks  []UserCheck

	sink obs.Sink
}

// New returns a detector with default thresholds.
func New() *Detector { return &Detector{LeakThresholdPct: 90, sink: obs.Nop()} }

// SetSink installs an observability sink (nil restores the no-op).
func (d *Detector) SetSink(s obs.Sink) { d.sink = obs.OrNop(s) }

// noteClassification publishes one classification outcome: the signature
// kind observed and whether it was flagged as a suspected hard fault.
func (d *Detector) noteClassification(sig Signature, hard bool) {
	if d.sink == nil {
		return
	}
	d.sink.Count("detector.observe", 1)
	d.sink.Count("detector.signature."+sig.Kind.String(), 1)
	if hard {
		d.sink.Count("detector.hard", 1)
	} else {
		d.sink.Count("detector.soft", 1)
	}
}

// History returns the recorded failure signatures in observation order.
func (d *Detector) History() []Signature { return append([]Signature(nil), d.history...) }

// Observe records a trap and reports whether the failure is a *suspected
// hard failure*: a similar failure was already observed in a previous run
// (restart did not make the symptom disappear).
func (d *Detector) Observe(trap *vm.Trap) (Signature, bool) {
	sig := SignatureOf(trap)
	hard := false
	for _, prev := range d.history {
		if Similar(prev, sig) {
			hard = true
			break
		}
	}
	d.history = append(d.history, sig)
	d.noteClassification(sig, hard)
	if d.Lineage != nil && trap.Addr != 0 {
		if _, ok := d.Lineage(trap.Addr); ok {
			d.sink.Count("detector.lineage_hit", 1)
		} else {
			d.sink.Count("detector.lineage_miss", 1)
		}
	}
	return sig, hard
}

// ObserveCustom records a detector-level failure that did not come from a
// trap (leak monitor, user-defined check, data-loss probe).
func (d *Detector) ObserveCustom(kind FailureKind, where string) (Signature, bool) {
	sig := Signature{Kind: kind, Fn: where}
	hard := false
	for _, prev := range d.history {
		if prev.Kind == sig.Kind && prev.Fn == sig.Fn {
			hard = true
			break
		}
	}
	d.history = append(d.history, sig)
	d.noteClassification(sig, hard)
	return sig, hard
}

// CheckLeak applies the PM usage monitor: it reports FailLeak when the
// pool's live allocation exceeds the threshold.
func (d *Detector) CheckLeak(pool *pmem.Pool) bool {
	if d.LeakThresholdPct <= 0 {
		return false
	}
	sink := obs.OrNop(d.sink)
	sink.Count("detector.leak_check", 1)
	leak := pool.LiveWords()*100 >= pool.Words()*d.LeakThresholdPct
	if leak {
		sink.Count("detector.leak_flagged", 1)
	}
	return leak
}

// CheckMedia applies the media-corruption monitor: a full checksum scan of
// the pool. It reports FailMediaCorrupt when any block's seal is broken —
// the detector-side trigger for the scrub-then-retry loop (the reactor heals
// via internal/scrub rather than by reversion).
func (d *Detector) CheckMedia(pool *pmem.Pool) bool {
	sink := obs.OrNop(d.sink)
	sink.Count("detector.media_check", 1)
	corrupt := pool.VerifyMedia() != nil
	if corrupt {
		sink.Count("detector.media_flagged", 1)
	}
	return corrupt
}

// AddCheck registers a user-defined health check.
func (d *Detector) AddCheck(name string, kind FailureKind, run func() error) {
	d.checks = append(d.checks, UserCheck{Name: name, Kind: kind, Run: run})
}

// RunChecks evaluates every user check. The first violation is observed
// (recorded in history) and returned with the hard-fault verdict; a clean
// pass returns an empty signature and false.
func (d *Detector) RunChecks() (Signature, bool, error) {
	for _, c := range d.checks {
		if err := c.Run(); err != nil {
			sig, hard := d.ObserveCustom(c.Kind, c.Name)
			return sig, hard, err
		}
	}
	return Signature{}, false, nil
}

// Reset clears history (used between experiments). Registered checks stay.
func (d *Detector) Reset() { d.history = nil }
