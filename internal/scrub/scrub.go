// Package scrub implements the online media scrubber: the policy layer over
// pmem's media-checksum mechanism (docs/MEDIA_FAULTS.md). Scan walks every
// media block and cross-checks stored checksums against durable contents;
// Repair heals poisoned words by rolling the affected addresses forward from
// the checkpoint log — the same version store the reactor reverts through —
// and quarantines blocks it cannot reconstruct so the allocator never hands
// them out again.
//
// Division of labor: pmem.RepairMedia owns the word-level mechanism (raw
// rewrites, seal arithmetic, quarantine bookkeeping); this package owns
// orchestration — assembling ground truth from the log, re-running allocator
// recovery and the integrity check after the blocks are settled, and
// producing the deterministic `arthas-scrub/v1` report that tooling
// (arthas-inspect scrub, the CI media sweep) diffs byte-for-byte.
package scrub

import (
	"encoding/json"
	"fmt"
	"strings"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// Schema identifies the scrub report JSON schema.
const Schema = "arthas-scrub/v1"

// Verdict strings for BlockReport.Verdict.
const (
	VerdictCorrupt     = "corrupt"     // Scan only: seal broken, not yet repaired
	VerdictHealed      = "healed"      // original contents provably restored
	VerdictQuarantined = "quarantined" // unreconstructible: fenced off
	VerdictDegraded    = "degraded"    // header block unreconstructible
)

// LineageFunc resolves a durable word to the GUID of the instrumented
// instruction that last wrote it (the provenance index's Lookup, passed in
// as a function so this package never imports provenance).
type LineageFunc func(addr uint64) (guid int, ok bool)

// BlockSource supplies a media block's words from outside the pool — a
// replica's durable image, passed in as a function so this package never
// imports the replication layer (internal/repl). A block fetched from it
// is committed only when the pool's stored seal proves it is the original
// contents; otherwise the verdict falls through to quarantine as before.
type BlockSource = pmem.BlockFetch

// BlockReport describes one media block the scrubber acted on.
type BlockReport struct {
	Block         int    `json:"block"`
	Addr          uint64 `json:"addr"`
	Words         int    `json:"words"`
	RepairedWords int    `json:"repaired_words,omitempty"`
	Verdict       string `json:"verdict"`
	// Source names where a healed block's ground truth came from:
	// "log" (local reconstruction) or "replica" (seal-proven external
	// fetch; RepairFrom variants only). Empty for non-healed verdicts.
	Source string `json:"source,omitempty"`
	// LastWriterGUID attributes the block's first word with recorded
	// lineage to its last writer (RepairWithLineage only; 0 = none found).
	LastWriterGUID int `json:"last_writer_guid,omitempty"`
}

// Report is the deterministic outcome of one scrub pass. Two runs over the
// same pool and log produce byte-identical JSON (no wall-clock, no maps).
type Report struct {
	Schema        string        `json:"schema"`
	PoolWords     int           `json:"pool_words"`
	MediaBlocks   int           `json:"media_blocks"`
	BlockWords    int           `json:"block_words"`
	CorruptBlocks int           `json:"corrupt_blocks"`
	Healed        int           `json:"healed"`
	Quarantined   int           `json:"quarantined"`
	Degraded      bool          `json:"degraded"`
	RepairedWords int           `json:"repaired_words"`
	Blocks        []BlockReport `json:"blocks,omitempty"`
	// Post-repair structural state (Repair only).
	Repaired    bool   `json:"repaired"`
	MetaOK      bool   `json:"meta_ok"`
	IntegrityOK bool   `json:"integrity_ok"`
	VerifyClean bool   `json:"verify_clean"`
	Note        string `json:"note,omitempty"`
}

// Clean reports whether the pass found (or left behind) nothing wrong.
func (r *Report) Clean() bool {
	return r.CorruptBlocks == 0 && r.VerifyClean && (!r.Repaired || (r.MetaOK && r.IntegrityOK))
}

// Healthy reports whether the pool is sound NOW: after Repair, corruption
// that was healed or fenced off (quarantined, degraded-header) still counts
// — the pool serves, possibly with reduced capacity. A scan-only report is
// healthy only when nothing was corrupt.
func (r *Report) Healthy() bool {
	if !r.Repaired {
		return r.CorruptBlocks == 0
	}
	return r.VerifyClean && r.MetaOK && r.IntegrityOK
}

// JSON renders the report deterministically.
func (r *Report) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// String renders a one-line human summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d/%d blocks corrupt", r.CorruptBlocks, r.MediaBlocks)
	if r.Repaired {
		fmt.Fprintf(&b, "; healed %d, quarantined %d, repaired %d words", r.Healed, r.Quarantined, r.RepairedWords)
		if r.Degraded {
			b.WriteString(", DEGRADED")
		}
		if !r.MetaOK || !r.IntegrityOK {
			b.WriteString(", structural check FAILED")
		}
	}
	return b.String()
}

// Scan verifies every media block without mutating the pool and reports the
// broken seals. It is the read-only half of the scrubber (arthas-inspect
// scrub without -repair).
func Scan(pool *pmem.Pool, sink obs.Sink) *Report {
	sink = obs.OrNop(sink)
	sink.Count("scrub.scan", 1)
	rep := &Report{
		Schema:      Schema,
		PoolWords:   pool.Words(),
		MediaBlocks: pool.MediaBlocks(),
		BlockWords:  pmem.MediaBlockWords,
		Degraded:    pool.MediaDegraded(),
	}
	for _, b := range pool.CorruptMediaBlocks() {
		r := pool.MediaBlockRange(b)
		rep.Blocks = append(rep.Blocks, BlockReport{
			Block: b, Addr: r.Addr, Words: r.Words, Verdict: VerdictCorrupt,
		})
	}
	rep.CorruptBlocks = len(rep.Blocks)
	rep.VerifyClean = rep.CorruptBlocks == 0
	sink.Count("scrub.corrupt_blocks", int64(rep.CorruptBlocks))
	return rep
}

// Repair runs a full scrub-and-heal pass: every poisoned word with a
// checkpointed value is rewritten from the log (§4.4 resync in the forward
// direction), reconstructed block headers come from the log's allocation
// records, and blocks whose original contents cannot be proven restored are
// quarantined (the header block degrades the pool instead). Afterwards the
// allocator metadata is re-recovered and the integrity check re-run, since
// repairs may have rewritten metadata words.
//
// log may be nil: the scrubber then repairs what pool structure alone can
// prove (header constants, chain-derived metadata) and quarantines the rest
// — the degraded-but-serving path the acceptance criteria require.
func Repair(pool *pmem.Pool, log *checkpoint.Log, sink obs.Sink) *Report {
	return RepairWithLineage(pool, log, sink, nil)
}

// RepairFrom is Repair with an external block source: blocks the local
// log-driven reconstruction cannot seal-prove are fetched from src and
// committed only when the stored checksum proves them — turning a
// quarantine into a heal when a caught-up replica is available
// (docs/REPLICATION.md).
func RepairFrom(pool *pmem.Pool, log *checkpoint.Log, sink obs.Sink, src BlockSource) *Report {
	return RepairWithLineageFrom(pool, log, sink, nil, src)
}

// RepairWithLineage is Repair plus provenance annotation: when lineage is
// non-nil, each acted-on block is attributed to the last writer of its first
// word with a resident lineage record, so a scrub report names the write
// site whose data was at stake. The annotation is informational — repair
// decisions are identical to Repair's.
func RepairWithLineage(pool *pmem.Pool, log *checkpoint.Log, sink obs.Sink, lineage LineageFunc) *Report {
	return RepairWithLineageFrom(pool, log, sink, lineage, nil)
}

// RepairWithLineageFrom combines RepairWithLineage and RepairFrom: the full
// scrub pass with provenance annotation and an optional replica-backed
// repair source.
func RepairWithLineageFrom(pool *pmem.Pool, log *checkpoint.Log, sink obs.Sink, lineage LineageFunc, src BlockSource) *Report {
	sink = obs.OrNop(sink)
	span := sink.Start("scrub.repair")
	defer span.End()
	rep := Scan(pool, sink)
	rep.Repaired = true
	if rep.CorruptBlocks == 0 {
		rep.MetaOK = true
		rep.IntegrityOK = pool.CheckIntegrity().OK()
		return rep
	}

	var hints []pmem.AllocHint
	var lookup func(addr uint64) (uint64, bool)
	if log != nil {
		for _, a := range log.LiveAllocs() {
			hints = append(hints, pmem.AllocHint{Addr: a.Addr, Words: a.Words})
		}
		lookup = log.CheckpointedValueAt
	}
	repairs := pool.RepairMediaFrom(hints, lookup, src)

	rep.Blocks = rep.Blocks[:0]
	for _, mr := range repairs {
		br := BlockReport{
			Block: mr.Block, Addr: mr.Range.Addr, Words: mr.Range.Words,
			RepairedWords: mr.RepairedWords,
		}
		switch {
		case mr.Healed:
			br.Verdict = VerdictHealed
			br.Source = "log"
			if mr.Fetched {
				br.Source = "replica"
			}
			rep.Healed++
		case mr.Degraded:
			br.Verdict = VerdictDegraded
		case mr.Quarantined:
			br.Verdict = VerdictQuarantined
			rep.Quarantined++
		}
		if lineage != nil {
			for w := 0; w < mr.Range.Words; w++ {
				if guid, ok := lineage(mr.Range.Addr + uint64(w)); ok && guid != 0 {
					br.LastWriterGUID = guid
					break
				}
			}
		}
		rep.RepairedWords += mr.RepairedWords
		rep.Blocks = append(rep.Blocks, br)
	}
	rep.Degraded = pool.MediaDegraded()

	// Blocks are settled (healed or fenced); now rebuild derived allocator
	// metadata through the normal checksummed write path and re-verify.
	rec := pool.RecoverMeta()
	rep.MetaOK = rec.OK()
	if !rep.MetaOK {
		rep.Note = fmt.Sprintf("allocator metadata unrecoverable after repair: %v", rec)
	}
	rep.IntegrityOK = pool.CheckIntegrity().OK()
	rep.VerifyClean = pool.VerifyMedia() == nil

	sink.Count("scrub.healed", int64(rep.Healed))
	sink.Count("scrub.quarantined", int64(rep.Quarantined))
	sink.Count("scrub.repaired_words", int64(rep.RepairedWords))
	if rep.Degraded {
		sink.Count("scrub.degraded", 1)
	}
	return rep
}
