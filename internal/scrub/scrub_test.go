package scrub

import (
	"bytes"
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// rig builds a pool with a wired checkpoint log holding a known workload.
func rig(t *testing.T) (*pmem.Pool, *checkpoint.Log, uint64) {
	t.Helper()
	p := pmem.New(2048)
	log := checkpoint.NewLog(8)
	p.SetHooks(log.Hooks())
	a, err := p.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 16; w++ {
		p.Store(a+w, 0x5000+w)
	}
	p.Persist(a, 16)
	p.SetRoot(0, a)
	return p, log, a
}

func TestScanCleanPool(t *testing.T) {
	p, _, _ := rig(t)
	rep := Scan(p, nil)
	if !rep.Clean() || rep.CorruptBlocks != 0 || len(rep.Blocks) != 0 {
		t.Fatalf("clean pool scan: %+v", rep)
	}
	if rep.Schema != Schema || rep.MediaBlocks != p.MediaBlocks() {
		t.Fatalf("report header: %+v", rep)
	}
}

func TestScanReportsCorruptBlocks(t *testing.T) {
	p, _, a := rig(t)
	if _, err := p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaBitFlip, Addr: a + 2, Bits: 1}); err != nil {
		t.Fatal(err)
	}
	rep := Scan(p, nil)
	if rep.Clean() || rep.CorruptBlocks != 1 {
		t.Fatalf("scan after fault: %+v", rep)
	}
	if rep.Blocks[0].Verdict != VerdictCorrupt || rep.Blocks[0].Block != pmem.MediaBlockOf(a+2) {
		t.Fatalf("block report: %+v", rep.Blocks[0])
	}
}

func TestRepairHealsFromCheckpointLog(t *testing.T) {
	p, log, a := rig(t)
	if _, err := p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaStuckWord, Addr: a, Words: 6, Value: 0xDEAD}); err != nil {
		t.Fatal(err)
	}
	rep := Repair(p, log, nil)
	if rep.Healed != 1 || rep.Quarantined != 0 || rep.Degraded {
		t.Fatalf("repair: %+v", rep)
	}
	if !rep.MetaOK || !rep.IntegrityOK || !rep.VerifyClean {
		t.Fatalf("post-repair structure: %+v", rep)
	}
	for w := uint64(0); w < 16; w++ {
		if v, err := p.Load(a + w); err != nil || v != 0x5000+w {
			t.Fatalf("word %d after heal = %#x, %v", w, v, err)
		}
	}
}

func TestRepairQuarantinesWithoutLog(t *testing.T) {
	p, _, _ := rig(t)
	// Fill a big allocation whose payload reaches past media block 0, then
	// poison a payload block and repair WITHOUT the log: the data words have
	// no ground truth (and are nonzero, so the never-used-space guess fails
	// seal arbitration) — the block must be quarantined and the pool must
	// still pass its structural checks.
	big, err := p.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 200; w++ {
		p.Store(big+w, 0x7000+w)
	}
	p.Persist(big, 200)
	target := big + 150
	if pmem.MediaBlockOf(target) == 0 {
		t.Fatalf("target %#x unexpectedly in block 0", target)
	}
	if _, err := p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaBlockPoison, Addr: target, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	rep := Repair(p, nil, nil)
	if rep.Quarantined != 1 || rep.Healed != 0 {
		t.Fatalf("repair: %+v", rep)
	}
	if !rep.MetaOK || !rep.IntegrityOK || !rep.VerifyClean {
		t.Fatalf("post-repair structure: %+v", rep)
	}
	if !p.IsQuarantined(pmem.MediaBlockOf(target)) {
		t.Fatal("block not quarantined")
	}
}

func TestRepairReportDeterministic(t *testing.T) {
	run := func() []byte {
		p, log, a := rig(t)
		p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaStuckWord, Addr: a + 1, Words: 4, Value: 7})
		p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaBlockPoison, Addr: pmem.Base + uint64(25*pmem.MediaBlockWords), Seed: 11})
		return Repair(p, log, nil).JSON()
	}
	r1, r2 := run(), run()
	if !bytes.Equal(r1, r2) {
		t.Fatalf("scrub reports diverge:\n%s\nvs\n%s", r1, r2)
	}
}

func TestRepairOnCleanPoolIsNoop(t *testing.T) {
	p, log, a := rig(t)
	before, _ := p.Load(a)
	rep := Repair(p, log, nil)
	if !rep.Clean() || rep.RepairedWords != 0 {
		t.Fatalf("clean repair: %+v", rep)
	}
	if after, _ := p.Load(a); after != before {
		t.Fatal("no-op repair changed data")
	}
}
