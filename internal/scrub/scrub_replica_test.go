package scrub

import (
	"testing"

	"arthas/internal/pmem"
)

// replicaRig builds a pool whose payload spans several media blocks and a
// pristine copy of its durable blocks — the stand-in for a caught-up
// replica.
func replicaRig(t *testing.T) (*pmem.Pool, uint64, map[int][]uint64) {
	t.Helper()
	p := pmem.New(2048)
	big, err := p.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 200; w++ {
		p.Store(big+w, 0x7000+w)
	}
	p.Persist(big, 200)
	blocks := map[int][]uint64{}
	for b := 0; b < p.MediaBlocks(); b++ {
		blocks[b] = p.DurableBlock(b)
	}
	return p, big, blocks
}

func TestRepairFromReplicaTurnsQuarantineIntoHeal(t *testing.T) {
	p, big, replica := replicaRig(t)
	target := big + 150
	if _, err := p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaBlockPoison, Addr: target, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// No log: the local reconstruction cannot prove the payload — without a
	// source this exact scenario quarantines (TestRepairQuarantinesWithoutLog).
	rep := RepairFrom(p, nil, nil, func(b int) ([]uint64, bool) {
		w, ok := replica[b]
		return w, ok
	})
	if rep.Healed != 1 || rep.Quarantined != 0 {
		t.Fatalf("repair from replica: %+v", rep)
	}
	if rep.Blocks[0].Source != "replica" {
		t.Fatalf("healed block source = %q, want replica", rep.Blocks[0].Source)
	}
	if !rep.MetaOK || !rep.IntegrityOK || !rep.VerifyClean {
		t.Fatalf("post-repair structure: %+v", rep)
	}
	for w := uint64(0); w < 200; w++ {
		if v, err := p.Load(big + w); err != nil || v != 0x7000+w {
			t.Fatalf("word %d after replica heal = %#x, %v", w, v, err)
		}
	}
	if p.IsQuarantined(pmem.MediaBlockOf(target)) {
		t.Fatal("healed block still quarantined")
	}
}

func TestRepairFromStaleReplicaStillQuarantines(t *testing.T) {
	p, big, replica := replicaRig(t)
	target := big + 150
	// The replica lags: its copy of the target block predates the last
	// writes, so the seal proof must reject it and the verdict must fall
	// through to quarantine — a stale replica can never corrupt the pool.
	stale := append([]uint64(nil), replica[pmem.MediaBlockOf(target)]...)
	for i := range stale {
		stale[i] ^= 0xBAD
	}
	replica[pmem.MediaBlockOf(target)] = stale
	if _, err := p.InjectMediaFault(pmem.MediaFault{Kind: pmem.MediaBlockPoison, Addr: target, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	rep := RepairFrom(p, nil, nil, func(b int) ([]uint64, bool) {
		w, ok := replica[b]
		return w, ok
	})
	if rep.Healed != 0 || rep.Quarantined != 1 {
		t.Fatalf("repair from stale replica: %+v", rep)
	}
	if !p.IsQuarantined(pmem.MediaBlockOf(target)) {
		t.Fatal("block not quarantined")
	}
}
