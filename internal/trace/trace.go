// Package trace implements the lightweight runtime PM-address tracing of
// paper §4.1: instrumented PM instructions emit <GUID, pmem_address> events;
// the tracer buffers them in memory and flushes in batches so the hot path
// is a plain append. All lookup indexes are built lazily and incrementally
// at query time — mirroring the paper's reactor server, which parses the
// trace file on a background thread rather than taxing the target system
// (§5). The Arthas reactor joins the trace with the static GUID metadata
// and the checkpoint log to map slice nodes to concrete checkpoint
// sequence numbers.
package trace

import (
	"sort"
	"sync"

	"arthas/internal/obs"
)

// Event is one <GUID, address> record, stamped with the global event index
// so the reactor can reason about relative order.
type Event struct {
	GUID int
	Addr uint64
	Idx  uint64
}

// Trace accumulates PM address events for one system run (including across
// restarts — the paper's trace file outlives the process).
type Trace struct {
	// BufSize is the in-memory buffer capacity before a flush (default 4096).
	BufSize int

	buf     []Event
	flushed []Event
	next    uint64
	flushes int

	// Read events (PM loads) never create checkpoint entries; they only
	// feed the recency signal, so they live in a bounded ring rather than
	// the persistent event list. This keeps the per-load cost at one
	// fixed-slot write and the memory bounded no matter how hot the read
	// path is.
	ring     []Event
	ringNext int

	// Lazily built indexes over flushed[:indexed] and ring[:ringIndexed].
	indexed     int
	ringIndexed int
	byGUID      map[int][]uint64
	byAddr      map[uint64][]int
	// lastTouch records, per GUID, the most recent event index per address
	// — the recency signal the reactor's candidate ordering uses (the
	// failing execution touches the bad state last).
	lastTouch map[int]map[uint64]uint64

	// sink receives tracing telemetry; obsOn caches sink.Enabled() so the
	// per-event hot path pays one predictable branch when disabled.
	sink  obs.Sink
	obsOn bool

	// qmu serializes the query side (ensureIndex lazily mutates the index
	// maps): parallel speculative-mitigation workers query one shared
	// trace concurrently. Recording stays lock-free — it never runs
	// concurrently with itself or with queries (the traced machine is
	// idle while the reactor searches, and forks record no trace).
	qmu sync.Mutex
}

// ringSize bounds retained read events (a power of two).
const ringSize = 1 << 16

// New creates a trace with the default buffer size.
func New() *Trace {
	return &Trace{
		BufSize:   4096,
		ring:      make([]Event, ringSize),
		byGUID:    map[int][]uint64{},
		byAddr:    map[uint64][]int{},
		lastTouch: map[int]map[uint64]uint64{},
		sink:      obs.Nop(),
	}
}

// SetSink installs an observability sink (nil restores the no-op).
func (t *Trace) SetSink(s obs.Sink) {
	t.sink = obs.OrNop(s)
	t.obsOn = t.sink.Enabled()
}

// Record appends one event; it is the VM's TraceSink for PM writes
// (stores, persists, allocations, frees, root updates). The hot path is a
// single slice append (the paper inlines its tracing call and buffers
// events for the same reason).
func (t *Trace) Record(guid int, addr uint64) {
	t.buf = append(t.buf, Event{GUID: guid, Addr: addr, Idx: t.next})
	t.next++
	if t.obsOn {
		t.sink.Count("trace.events", 1)
		t.sink.SetGauge("trace.buffered", int64(len(t.buf)))
	}
	if len(t.buf) >= t.BufSize {
		t.Flush()
	}
}

// RecordRead notes a PM read. Reads never map to checkpoint entries of
// their own; they contribute only the recency signal, so they are kept in
// a fixed-size ring (one slot write, no allocation) holding the most recent
// ringSize reads.
func (t *Trace) RecordRead(guid int, addr uint64) {
	t.ring[t.ringNext&(ringSize-1)] = Event{GUID: guid, Addr: addr, Idx: t.next}
	t.ringNext++
	t.next++
	if t.obsOn {
		t.sink.Count("trace.read_events", 1)
	}
}

// Flush drains the buffer into the persistent side of the trace. Called
// automatically when the buffer fills and by readers before queries.
// Indexing is NOT done here: it happens lazily at query time.
func (t *Trace) Flush() {
	if len(t.buf) == 0 {
		return
	}
	t.flushes++
	if t.obsOn {
		t.sink.Count("trace.flushes", 1)
		t.sink.Count("trace.flushed_events", int64(len(t.buf)))
		t.sink.SetGauge("trace.buffered", 0)
	}
	t.flushed = append(t.flushed, t.buf...)
	t.buf = t.buf[:0]
}

// ensureIndex incrementally indexes write events not yet covered, then
// overlays the retained read ring onto the recency map.
func (t *Trace) ensureIndex() {
	t.Flush()
	touch := func(guid int, addr, idx uint64) {
		lt := t.lastTouch[guid]
		if lt == nil {
			lt = map[uint64]uint64{}
			t.lastTouch[guid] = lt
		}
		if idx >= lt[addr] {
			lt[addr] = idx
		}
	}
	for _, e := range t.flushed[t.indexed:] {
		addrs := t.byGUID[e.GUID]
		if len(addrs) == 0 || addrs[len(addrs)-1] != e.Addr {
			t.byGUID[e.GUID] = append(addrs, e.Addr)
		}
		guids := t.byAddr[e.Addr]
		if len(guids) == 0 || guids[len(guids)-1] != e.GUID {
			t.byAddr[e.Addr] = append(guids, e.GUID)
		}
		touch(e.GUID, e.Addr, e.Idx)
	}
	t.indexed = len(t.flushed)
	if t.ringNext != t.ringIndexed {
		n := t.ringNext
		if n > ringSize {
			n = ringSize
		}
		for i := 0; i < n; i++ {
			e := t.ring[i]
			if e.GUID != 0 {
				touch(e.GUID, e.Addr, e.Idx)
			}
		}
		t.ringIndexed = t.ringNext
	}
}

// Events returns all recorded events in order.
func (t *Trace) Events() []Event {
	t.Flush()
	return t.flushed
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.flushed) + len(t.buf) }

// Flushes returns how many buffer flushes occurred (overhead diagnostics).
func (t *Trace) Flushes() int { return t.flushes }

// AddrsOfGUID returns the distinct addresses an instrumented instruction
// touched, in first-touch order. "One dependent instruction in a slice may
// be invoked many times" (paper §6.4) — this is exactly that aliasing.
func (t *Trace) AddrsOfGUID(guid int) []uint64 {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	t.ensureIndex()
	seen := map[uint64]bool{}
	var out []uint64
	for _, a := range t.byGUID[guid] {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// AddrsOfGUIDByRecency returns the distinct addresses an instrumented
// instruction touched, most recently touched first. The failing execution
// is the last to run, so its addresses — the contaminated ones — lead.
func (t *Trace) AddrsOfGUIDByRecency(guid int) []uint64 {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	t.ensureIndex()
	lt := t.lastTouch[guid]
	out := make([]uint64, 0, len(lt))
	for a := range lt {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if lt[out[i]] != lt[out[j]] {
			return lt[out[i]] > lt[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// GUIDsOfAddr returns the distinct GUIDs that touched an address.
func (t *Trace) GUIDsOfAddr(addr uint64) []int {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	t.ensureIndex()
	seen := map[int]bool{}
	var out []int
	for _, g := range t.byAddr[addr] {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out
}
