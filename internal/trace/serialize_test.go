package trace

import (
	"bytes"
	"testing"
)

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := New()
	tr.Record(1, 100)
	tr.Record(2, 200)
	tr.RecordRead(3, 300)
	tr.Record(1, 150)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("events: %d vs %d", got.Len(), tr.Len())
	}
	addrs := got.AddrsOfGUID(1)
	if len(addrs) != 2 || addrs[0] != 100 || addrs[1] != 150 {
		t.Fatalf("guid 1 addrs = %v", addrs)
	}
	// Read-ring recency travels.
	rec := got.AddrsOfGUIDByRecency(3)
	if len(rec) != 1 || rec[0] != 300 {
		t.Fatalf("guid 3 recency = %v", rec)
	}
	// The restored clock continues monotonically.
	got.Record(9, 900)
	evs := got.Events()
	if evs[len(evs)-1].Idx <= evs[len(evs)-2].Idx {
		t.Fatal("clock not monotone after reopen")
	}
}

func TestTraceSerializationEmpty(t *testing.T) {
	tr := New()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("x"))); err == nil {
		t.Fatal("garbage accepted")
	}
	tr := New()
	tr.Record(1, 1)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	data := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
