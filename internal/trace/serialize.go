package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Trace serialization: the paper's PM address trace is a file that outlives
// the process (§4.1 tracing flushes to a file; §5 the reactor server parses
// it incrementally). Serializing the trace alongside the pool file keeps
// slice→address resolution working across process restarts.

const (
	traceMagic   uint64 = 0x41525448_54524345 // "ARTH TRCE"
	traceVersion uint64 = 1
)

// WriteTo serializes the trace (flushed events, the clock, and the recent-
// reads ring). It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	t.Flush()
	var written int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := w.Write(buf[:])
		written += int64(n)
		return err
	}
	for _, v := range []uint64{traceMagic, traceVersion, t.next, uint64(len(t.flushed))} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	for _, e := range t.flushed {
		for _, v := range []uint64{uint64(e.GUID), e.Addr, e.Idx} {
			if err := put(v); err != nil {
				return written, err
			}
		}
	}
	// Ring: persist only the occupied slots.
	n := t.ringNext
	if n > ringSize {
		n = ringSize
	}
	if err := put(uint64(n)); err != nil {
		return written, err
	}
	for i := 0; i < n; i++ {
		e := t.ring[i]
		for _, v := range []uint64{uint64(e.GUID), e.Addr, e.Idx} {
			if err := put(v); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: reading image: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: not a trace image (magic %#x)", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: image version %d, want %d", version, traceVersion)
	}
	t := New()
	next, err := get()
	if err != nil {
		return nil, err
	}
	t.next = next
	nEvents, err := get()
	if err != nil {
		return nil, err
	}
	if nEvents > 1<<30 {
		return nil, fmt.Errorf("trace: implausible event count %d", nEvents)
	}
	for i := uint64(0); i < nEvents; i++ {
		g, err := get()
		if err != nil {
			return nil, err
		}
		a, err := get()
		if err != nil {
			return nil, err
		}
		idx, err := get()
		if err != nil {
			return nil, err
		}
		t.flushed = append(t.flushed, Event{GUID: int(g), Addr: a, Idx: idx})
	}
	nRing, err := get()
	if err != nil {
		return nil, err
	}
	if nRing > ringSize {
		return nil, fmt.Errorf("trace: implausible ring count %d", nRing)
	}
	for i := uint64(0); i < nRing; i++ {
		g, err := get()
		if err != nil {
			return nil, err
		}
		a, err := get()
		if err != nil {
			return nil, err
		}
		idx, err := get()
		if err != nil {
			return nil, err
		}
		t.ring[i] = Event{GUID: int(g), Addr: a, Idx: idx}
		t.ringNext++
	}
	return t, nil
}
