package trace

import (
	"testing"
	"testing/quick"
)

func TestRecordAndQuery(t *testing.T) {
	tr := New()
	tr.Record(1, 100)
	tr.Record(2, 200)
	tr.Record(1, 100)
	tr.Record(1, 300)

	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	addrs := tr.AddrsOfGUID(1)
	if len(addrs) != 2 || addrs[0] != 100 || addrs[1] != 300 {
		t.Fatalf("AddrsOfGUID(1) = %v", addrs)
	}
	guids := tr.GUIDsOfAddr(100)
	if len(guids) != 1 || guids[0] != 1 {
		t.Fatalf("GUIDsOfAddr(100) = %v", guids)
	}
	if got := tr.AddrsOfGUID(99); got != nil {
		t.Fatalf("unknown GUID addrs = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Record(i, uint64(1000+i))
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.Idx != uint64(i) || e.GUID != i {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestBufferedFlush(t *testing.T) {
	tr := New()
	tr.BufSize = 8
	for i := 0; i < 20; i++ {
		tr.Record(1, uint64(i))
	}
	if tr.Flushes() < 2 {
		t.Fatalf("flushes = %d, want >= 2 with BufSize 8", tr.Flushes())
	}
	// Queries see buffered events too.
	if got := len(tr.AddrsOfGUID(1)); got != 20 {
		t.Fatalf("addrs = %d, want 20", got)
	}
}

func TestSharedAddressMultipleGUIDs(t *testing.T) {
	tr := New()
	tr.Record(5, 777)
	tr.Record(9, 777)
	tr.Record(5, 777)
	guids := tr.GUIDsOfAddr(777)
	if len(guids) != 2 || guids[0] != 5 || guids[1] != 9 {
		t.Fatalf("GUIDsOfAddr = %v", guids)
	}
}

// Property: every recorded (guid, addr) pair is later discoverable through
// both indexes, regardless of buffer-size-induced flush boundaries.
func TestPropIndexesComplete(t *testing.T) {
	f := func(pairs []struct {
		G uint8
		A uint16
	}, bufSize uint8) bool {
		tr := New()
		tr.BufSize = int(bufSize%16) + 1
		for _, p := range pairs {
			tr.Record(int(p.G), uint64(p.A))
		}
		for _, p := range pairs {
			foundAddr := false
			for _, a := range tr.AddrsOfGUID(int(p.G)) {
				if a == uint64(p.A) {
					foundAddr = true
				}
			}
			if !foundAddr {
				return false
			}
			foundGUID := false
			for _, g := range tr.GUIDsOfAddr(uint64(p.A)) {
				if g == int(p.G) {
					foundGUID = true
				}
			}
			if !foundGUID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
