package trace

import "testing"

func TestRecordReadRecency(t *testing.T) {
	tr := New()
	tr.Record(1, 100)     // write
	tr.RecordRead(2, 200) // read
	tr.RecordRead(2, 300)
	tr.RecordRead(2, 200) // 200 touched again, most recent

	addrs := tr.AddrsOfGUIDByRecency(2)
	if len(addrs) != 2 || addrs[0] != 200 || addrs[1] != 300 {
		t.Fatalf("read recency = %v", addrs)
	}
	// Reads do not enter the write indexes.
	if got := tr.AddrsOfGUID(2); got != nil {
		t.Fatalf("reads leaked into write index: %v", got)
	}
	if got := tr.GUIDsOfAddr(200); got != nil {
		t.Fatalf("reads leaked into addr index: %v", got)
	}
}

func TestReadsAndWritesShareRecencyClock(t *testing.T) {
	tr := New()
	tr.Record(1, 100)
	tr.RecordRead(1, 500)
	// The read came later: it leads the recency list for guid 1.
	addrs := tr.AddrsOfGUIDByRecency(1)
	if len(addrs) != 2 || addrs[0] != 500 || addrs[1] != 100 {
		t.Fatalf("recency = %v", addrs)
	}
}

func TestReadRingWraps(t *testing.T) {
	tr := New()
	// Overfill the ring; only recent reads remain influential, but the
	// tracer must not crash or mis-index.
	for i := 0; i < ringSize+500; i++ {
		tr.RecordRead(7, uint64(1000+i%64))
	}
	addrs := tr.AddrsOfGUIDByRecency(7)
	if len(addrs) != 64 {
		t.Fatalf("distinct addrs = %d", len(addrs))
	}
}

func TestIncrementalIndexing(t *testing.T) {
	tr := New()
	tr.Record(1, 100)
	_ = tr.AddrsOfGUID(1) // forces index build
	tr.Record(1, 200)     // post-index event
	addrs := tr.AddrsOfGUID(1)
	if len(addrs) != 2 {
		t.Fatalf("incremental index missed events: %v", addrs)
	}
	tr.Record(2, 100)
	guids := tr.GUIDsOfAddr(100)
	if len(guids) != 2 {
		t.Fatalf("guids = %v", guids)
	}
}

func TestEventsIncludeIdx(t *testing.T) {
	tr := New()
	tr.Record(1, 10)
	tr.RecordRead(2, 20) // consumes a clock tick
	tr.Record(3, 30)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %v", evs)
	}
	if evs[1].Idx != 2 {
		t.Fatalf("write idx = %d, want 2 (read consumed tick 1)", evs[1].Idx)
	}
}

func TestEmptyTraceQueries(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Flushes() != 0 {
		t.Fatal("fresh trace not empty")
	}
	if tr.AddrsOfGUID(1) != nil || tr.GUIDsOfAddr(1) != nil {
		t.Fatal("empty queries returned data")
	}
	if got := tr.AddrsOfGUIDByRecency(1); len(got) != 0 {
		t.Fatalf("recency on empty = %v", got)
	}
}
