package systems

// Pelikan-like PM cache server.
//
// Hosts f10 (value length overflow: a large set wraps the slab item's
// length field computation, persisting a length far beyond the buffer —
// the read path then walks off the pool) and f11 (null stats response: a
// stats-reset path persists a null metrics pointer that the stats command
// dereferences without a check).
//
// Persistent layout (word offsets):
//
//	root:  0 TAB  1 NBUCKET  2 NITEMS  3 METRICS (stats block ptr)
//	item:  0 KEY  1 VBUF  2 VLEN  3 HNEXT
//	metrics: 0 HITS  1 MISSES  2 SETS
const pelikanSource = `
// ---- Pelikan ----

fn pk_init() {
    var root = pmalloc(8);
    var nb = 64;
    var tab = pmalloc(nb);
    var metrics = pmalloc(4);
    persist(metrics, 3);
    root[0] = tab;
    root[1] = nb;
    root[2] = 0;
    root[3] = metrics;
    persist(root, 4);
    persist(tab, 64);
    setroot(0, root);
    return 0;
}

fn pk_find(k) {
    var root = getroot(0);
    var tab = root[0];
    var it = tab[k % root[1]];
    while (it != 0) {
        if (it[0] == k) {
            return it;
        }
        it = it[3];
    }
    return 0;
}

// pk_set stores an n-word value. The f10 bug: the item length field is
// computed through a 12-bit slab-size encoding that wraps for large
// values, but the raw requested length is what gets persisted.
fn pk_set(k, v, n) {
    pk_stat_bump(2);
    var root = getroot(0);
    var cap = n & 4095;     // slab-class size wraps at 4096 words
    if (cap < 1) {
        cap = 1;
    }
    var it = pk_find(k);
    if (it == 0) {
        it = pmalloc(4);
        it[0] = k;
        var tab = root[0];
        var b = k % root[1];
        it[3] = tab[b];
        persist(it, 4);
        tab[b] = it;
        persist(tab + b, 1);
        root[2] = root[2] + 1;
        persist(root + 2, 1);
    } else {
        if (it[1] != 0) {
            pfree(it[1]);
        }
    }
    var vbuf = pmalloc(cap);
    var i = 0;
    while (i < cap) {
        vbuf[i] = v + i;
        i = i + 1;
    }
    persist(vbuf, cap);
    it[1] = vbuf;
    it[2] = n;              // BUG: unwrapped length persisted
    persist(it, 4);
    return 0;
}

// pk_get sums the stored value words (walks VLEN words).
fn pk_get(k) {
    var it = pk_find(k);
    if (it == 0) {
        pk_stat_bump(1);
        return -1;
    }
    pk_stat_bump(0);
    var vbuf = it[1];
    var n = it[2];
    var s = 0;
    var i = 0;
    while (i < n) {
        s = s + vbuf[i];
        i = i + 1;
    }
    return s;
}

fn pk_stat_bump(which) {
    var root = getroot(0);
    var m = root[3];
    if (m == 0) {
        return 0;   // stats disabled (or broken: see pk_stats)
    }
    m[which] = m[which] + 1;
    persist(m + which, 1);
    return 0;
}

// pk_stats_reset rotates the metrics block. The f11 bug: the new block is
// installed only AFTER the old pointer is nulled and persisted; a crash in
// between leaves a persistent null metrics pointer.
var pk_crashpoint;
fn pk_stats_reset() {
    var root = getroot(0);
    var old = root[3];
    root[3] = 0;
    persist(root + 3, 1);
    if (pk_crashpoint != 0) {
        fail(1111);   // the untimely crash
    }
    var m = pmalloc(4);
    persist(m, 3);
    root[3] = m;
    persist(root + 3, 1);
    if (old != 0) {
        pfree(old);
    }
    return 0;
}

fn pk_arm_crash() {
    pk_crashpoint = 1;
    return 0;
}

// pk_stats renders the stats response; it dereferences the metrics block
// without a null check (f11's segfault).
fn pk_stats() {
    var root = getroot(0);
    var m = root[3];
    return m[0] * 1000000 + m[1] * 1000 + m[2];
}

fn pk_count() {
    var root = getroot(0);
    return root[2];
}

fn pk_recover() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var seen = 0;
    var b = 0;
    while (b < nb) {
        var it = tab[b];
        while (it != 0 && seen <= limit) {
            var vbuf = it[1];
            if (vbuf != 0) {
                var x = vbuf[0];
            }
            seen = seen + 1;
            it = it[3];
        }
        b = b + 1;
    }
    var m = root[3];
    if (m != 0) {
        var h = m[0];
    }
    recover_end();
    return seen;
}
`

// Pelikan returns the deployable Pelikan-like system.
func Pelikan() *System {
	return &System{
		Name:      "pelikan",
		Source:    pelikanSource,
		PoolWords: 1 << 16,
		InitFn:    "pk_init",
		RecoverFn: "pk_recover",
	}
}

// PK wraps a Pelikan deployment with typed operations.
type PK struct{ *Deployment }

// NewPK deploys the Pelikan system.
func NewPK(opts DeployOpts) (*PK, error) {
	d, err := Deploy(Pelikan(), opts)
	if err != nil {
		return nil, err
	}
	return &PK{d}, nil
}

// Set stores an n-word value for k seeded from v.
func (p *PK) Set(k, v, n int64) error { return callErr(p.Deployment, "pk_set", k, v, n) }

// Get sums k's value words (-1 on miss).
func (p *PK) Get(k int64) (int64, error) {
	v, trap := p.Call("pk_get", k)
	if trap != nil {
		return 0, trap
	}
	return v, nil
}
