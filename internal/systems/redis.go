package systems

// Redis-like PM store.
//
// Hosts the paper's three Redis cases: the listpack encoding bug that
// corrupts the stored size for large packs (f6, crash in lpNext), a shared-
// object refcount logic error that frees an object still referenced by the
// dict (f7, server panic), and the slowlog trim path that forgets to free
// evicted entries (f8, persistent leak).
//
// Persistent layout (word offsets):
//
//	root:  0 DICT (bucket array)  1 NBUCKET  2 NKEYS  3 SLOWHEAD
//	       4 SLOWLEN              5 SHARED (shared integer object)
//	entry: 0 KEY  1 OBJ  2 HNEXT
//	obj:   0 TYPE(1=int,2=listpack)  1 REFCOUNT  2 PAYLOAD (value or lp ptr)
//	listpack: 0 TOTALWORDS  1 COUNT  2.. elements
//	slowlog entry: 0 ID  1 DURATION  2 NEXT
const redisSource = `
// ---- Redis (PM port) ----

fn rd_init() {
    var root = pmalloc(8);
    var nb = 64;
    var dict = pmalloc(nb);
    root[0] = dict;
    root[1] = nb;
    root[2] = 0;
    root[3] = 0;   // slowlog head
    root[4] = 0;   // slowlog length
    // The shared integer object (like Redis' shared.integers).
    var shared = pmalloc(4);
    shared[0] = 1;   // type int
    shared[1] = 1;   // refcount
    shared[2] = 0;
    persist(shared, 3);
    root[5] = shared;
    persist(root, 6);
    persist(dict, 64);
    setroot(0, root);
    return 0;
}

fn rd_find(k) {
    var root = getroot(0);
    var dict = root[0];
    var e = dict[k % root[1]];
    while (e != 0) {
        if (e[0] == k) {
            return e;
        }
        e = e[2];
    }
    return 0;
}

// rd_set stores an integer object for k.
fn rd_set(k, v) {
    rd_slowlog(k);
    var root = getroot(0);
    var e = rd_find(k);
    if (e != 0) {
        var obj = e[1];
        obj[2] = v;
        persist(obj + 2, 1);
        return 1;
    }
    var obj2 = pmalloc(4);
    obj2[0] = 1;
    obj2[1] = 1;
    obj2[2] = v;
    persist(obj2, 3);
    e = pmalloc(4);
    e[0] = k;
    e[1] = obj2;
    var dict = root[0];
    var b = k % root[1];
    e[2] = dict[b];
    persist(e, 3);
    dict[b] = e;
    persist(dict + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

fn rd_get(k) {
    var e = rd_find(k);
    if (e == 0) {
        return -1;
    }
    var obj = e[1];
    // Sanity check the object header the way Redis asserts object types:
    // a freed/recycled object trips this (f7's panic).
    if (obj[0] != 1 && obj[0] != 2) {
        fail(71);
    }
    if (obj[0] == 1) {
        return obj[2];
    }
    return lp_sum(obj[2]);
}

// --- listpack ---

// rd_lp_new creates an empty listpack object under key k.
fn rd_lp_new(k, cap) {
    rd_slowlog(k);
    var root = getroot(0);
    var lp = pmalloc(cap + 2);
    lp[0] = 2;     // header words used so far
    lp[1] = 0;     // element count
    persist(lp, 2);
    var obj = pmalloc(4);
    obj[0] = 2;
    obj[1] = 1;
    obj[2] = lp;
    persist(obj, 3);
    var e = pmalloc(4);
    e[0] = k;
    e[1] = obj;
    var dict = root[0];
    var b = k % root[1];
    e[2] = dict[b];
    persist(e, 3);
    dict[b] = e;
    persist(dict + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

// rd_lp_append encodes v onto k's listpack. The f6 bug: for packs past the
// 96-word encoding boundary the updated total is written through a wrapped
// 7-bit "backlen" encoding, corrupting the stored size.
fn rd_lp_append(k, v) {
    var e = rd_find(k);
    if (e == 0) {
        return -1;
    }
    var obj = e[1];
    if (obj[0] != 2) {
        return -2;
    }
    var lp = obj[2];
    var used = lp[0];
    if (pmsize(lp) <= used) {
        return -3;  // full
    }
    lp[used] = v;
    var newused = used + 1;
    if (newused > 96) {
        // BUG: large-pack encoding corrupts the size field.
        newused = ((newused & 127) << 12) + 4095;
    }
    lp[0] = newused;
    lp[1] = lp[1] + 1;
    persist(lp, 2);
    persist(lp + used, 1);
    return lp[1];
}

// lp_sum walks the listpack elements by the stored size (the lpNext walk
// that segfaults on a corrupt header).
fn lp_sum(lp) {
    var used = lp[0];
    var s = 0;
    var i = 2;
    while (i < used) {
        s = s + lp[i];
        i = i + 1;
    }
    return s;
}

// --- shared object refcounts (f7) ---

// rd_share hands out the shared object to key k (incrRefCount).
fn rd_share(k) {
    var root = getroot(0);
    var shared = root[5];
    shared[1] = shared[1] + 1;
    persist(shared + 1, 1);
    var e = rd_find(k);
    if (e != 0) {
        e[1] = shared;
        persist(e + 1, 1);
        return 1;
    }
    e = pmalloc(4);
    e[0] = k;
    e[1] = shared;
    var dict = root[0];
    var b = k % root[1];
    e[2] = dict[b];
    persist(e, 3);
    dict[b] = e;
    persist(dict + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

// rd_unshare releases k's reference. The f7 bug: an extra decrement on the
// error path drops the refcount to zero while the dict still references
// the object, so it is freed and its header scribbled.
fn rd_unshare(k, twice) {
    var root = getroot(0);
    var shared = root[5];
    shared[1] = shared[1] - 1;
    persist(shared + 1, 1);
    if (twice != 0) {
        // BUG: logic error path decrements again.
        shared[1] = shared[1] - 1;
        persist(shared + 1, 1);
    }
    if (shared[1] <= 0) {
        shared[0] = 0;  // poison the header, then free (like zfree)
        persist(shared, 1);
        pfree(shared);
    }
    return shared[1];
}

// --- slowlog (f8) ---

// rd_slowlog records a command in the slowlog ring when the persistent
// config flag root[6] is set. The f8 bug: trimming unlinks old entries but
// never frees them — a persistent leak.
fn rd_slowlog(id) {
    var root = getroot(0);
    if (root[6] == 0) {
        return 0;
    }
    // Entries carry the command's argument payload too (8 words), like
    // real slowlog entries keep argv copies.
    var se = pmalloc(8);
    se[0] = id;
    se[1] = id & 1023;
    se[2] = root[3];
    persist(se, 3);
    root[3] = se;
    root[4] = root[4] + 1;
    persist(root + 3, 2);
    if (root[4] > 8) {
        // Trim the tail: walk to the 8th entry and cut the chain.
        var cur = root[3];
        var i = 1;
        while (i < 8) {
            cur = cur[2];
            i = i + 1;
        }
        cur[2] = 0;           // BUG: the cut-off entries are never pfree'd
        persist(cur + 2, 1);
        root[4] = 8;
        persist(root + 4, 1);
    }
    return 0;
}

fn rd_slowlog_on() {
    var root = getroot(0);
    root[6] = 1;
    persist(root + 6, 1);
    return 0;
}

fn rd_count() {
    var root = getroot(0);
    return root[2];
}

fn rd_walk_count() {
    var root = getroot(0);
    var dict = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var total = 0;
    var b = 0;
    while (b < nb) {
        var e = dict[b];
        while (e != 0 && total <= limit) {
            total = total + 1;
            e = e[2];
        }
        b = b + 1;
    }
    return total;
}

fn rd_recover() {
    recover_begin();
    var root = getroot(0);
    var dict = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var seen = 0;
    var b = 0;
    while (b < nb) {
        var e = dict[b];
        while (e != 0 && seen <= limit) {
            var obj = e[1];
            if (obj != 0) {
                var ty = obj[0];
                if (ty == 2) {
                    var lp = obj[2];
                    var hdr = lp[0];
                }
            }
            seen = seen + 1;
            e = e[2];
        }
        b = b + 1;
    }
    // Walk the live slowlog entries too: they are reachable state.
    var se = root[3];
    var n = 0;
    while (se != 0 && n <= root[4]) {
        var x = se[0];
        se = se[2];
        n = n + 1;
    }
    recover_end();
    return seen;
}
`

// Redis returns the deployable Redis-like system.
func Redis() *System {
	return &System{
		Name:      "redis",
		Source:    redisSource,
		PoolWords: 1 << 16,
		InitFn:    "rd_init",
		RecoverFn: "rd_recover",
	}
}

// RD wraps a Redis deployment with typed operations.
type RD struct{ *Deployment }

// NewRD deploys the Redis system.
func NewRD(opts DeployOpts) (*RD, error) {
	d, err := Deploy(Redis(), opts)
	if err != nil {
		return nil, err
	}
	return &RD{d}, nil
}

// Set stores integer v at key k.
func (r *RD) Set(k, v int64) error { return callErr(r.Deployment, "rd_set", k, v) }

// Get fetches k's value (or listpack sum), -1 on miss.
func (r *RD) Get(k int64) (int64, error) {
	v, trap := r.Call("rd_get", k)
	if trap != nil {
		return 0, trap
	}
	return v, nil
}
