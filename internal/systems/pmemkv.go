package systems

// PMEMKV-like PM key-value database.
//
// Hosts the f12 case: delete unlinks the key from the index immediately
// and hands the object to an asynchronous worker for freeing later; a
// crash before the worker runs leaks the object permanently (the reported
// PMEMKV lazy-free issue).
//
// Persistent layout (word offsets):
//
//	root:  0 TAB (bucket array)  1 NBUCKET  2 NKEYS
//	node:  0 KEY  1 VALUE  2 HNEXT
const pmemkvSource = `
// ---- PMEMKV ----

fn kv_init() {
    var root = pmalloc(4);
    var nb = 128;
    var tab = pmalloc(nb);
    root[0] = tab;
    root[1] = nb;
    root[2] = 0;
    persist(root, 3);
    persist(tab, 128);
    setroot(0, root);
    return 0;
}

fn kv_find(k) {
    var root = getroot(0);
    var tab = root[0];
    var n = tab[k % root[1]];
    while (n != 0) {
        if (n[0] == k) {
            return n;
        }
        n = n[2];
    }
    return 0;
}

fn kv_put(k, v) {
    var root = getroot(0);
    var n = kv_find(k);
    if (n != 0) {
        n[1] = v;
        persist(n + 1, 1);
        return 1;
    }
    n = pmalloc(3);
    n[0] = k;
    n[1] = v;
    var tab = root[0];
    var b = k % root[1];
    n[2] = tab[b];
    persist(n, 3);
    tab[b] = n;
    persist(tab + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 0;
}

fn kv_get(k) {
    var n = kv_find(k);
    if (n == 0) {
        return -1;
    }
    return n[1];
}

// kv_free_worker is the asynchronous lazy-free thread: it frees the node
// some time after the unlink. If the process dies first, the node leaks.
fn kv_free_worker(n) {
    yield();
    pfree(n);
    return 0;
}

// kv_del unlinks k and schedules the free asynchronously (the f12 path).
fn kv_del(k) {
    var root = getroot(0);
    var tab = root[0];
    var b = k % root[1];
    var n = tab[b];
    var prev = 0;
    while (n != 0) {
        if (n[0] == k) {
            if (prev == 0) {
                tab[b] = n[2];
                persist(tab + b, 1);
            } else {
                prev[2] = n[2];
                persist(prev + 2, 1);
            }
            root[2] = root[2] - 1;
            persist(root + 2, 1);
            spawn kv_free_worker(n);
            return 1;
        }
        prev = n;
        n = n[2];
    }
    return 0;
}

fn kv_count() {
    var root = getroot(0);
    return root[2];
}

fn kv_recover() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var seen = 0;
    var b = 0;
    while (b < nb) {
        var n = tab[b];
        while (n != 0 && seen <= limit) {
            var v = n[1];
            seen = seen + 1;
            n = n[2];
        }
        b = b + 1;
    }
    recover_end();
    return seen;
}
`

// PMEMKV returns the deployable PMEMKV-like system.
func PMEMKV() *System {
	return &System{
		Name:      "pmemkv",
		Source:    pmemkvSource,
		PoolWords: 1 << 16,
		InitFn:    "kv_init",
		RecoverFn: "kv_recover",
	}
}

// KV wraps a PMEMKV deployment with typed operations.
type KV struct{ *Deployment }

// NewKV deploys the PMEMKV system.
func NewKV(opts DeployOpts) (*KV, error) {
	d, err := Deploy(PMEMKV(), opts)
	if err != nil {
		return nil, err
	}
	return &KV{d}, nil
}

// Put stores (k, v).
func (s *KV) Put(k, v int64) error { return callErr(s.Deployment, "kv_put", k, v) }

// Get fetches k's value (-1 on miss).
func (s *KV) Get(k int64) (int64, error) {
	v, trap := s.Call("kv_get", k)
	if trap != nil {
		return 0, trap
	}
	return v, nil
}

// Del removes k, scheduling the free on the async worker.
func (s *KV) Del(k int64) error { return callErr(s.Deployment, "kv_del", k) }
