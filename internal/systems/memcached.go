package systems

// Memcached-like PM key-value cache.
//
// Mirrors the structures the paper's Memcached bugs live in: a chained
// hashtable (persisted, as in PMEM-Memcached where the whole item structure
// is persisted "for simplicity"), items with 8-bit reference counts, an LRU
// list with a crawler that frees refcount-0 items assuming they are already
// unlinked, a flush_all path with the classic oldest_live logic bug, value
// append with an unchecked length addition, and a rehash/expansion flag.
//
// Persistent layout (word offsets):
//
//	root:  0 TAB (bucket array)   1 NBUCKET     2 NITEMS    3 LRU_HEAD
//	       4 LRU_TAIL             5 OLDEST      6 EXPANDING 7 TAB2
//	       8 NBUCKET2             9 CLOCK
//	item:  0 KEY  1 VBUF  2 VLEN  3 REF  4 HNEXT  5 LNEXT  6 LPREV  7 CTIME
//
// The bugs (triggered only by specific inputs, like the real ones):
//
//	f1  mc_hold increments REF with an unchecked 8-bit wrap; mc_crawl frees
//	    REF==0 items without unlinking them from the hashtable.
//	f2  mc_flush applies a future flush time immediately.
//	f3  mc_set_racy updates the bucket head without holding the table lock.
//	f4  mc_append stores the unwrapped new length but sizes the buffer with
//	    an 8-bit wrap.
//	f5  (hardware) a bit flip in EXPANDING sends lookups to the empty
//	    secondary table.
const memcachedSource = `
// ---- Memcached (PM port) ----

var tablock;   // volatile lock cell for the hashtable (set paths)

fn mc_init() {
    var root = pmalloc(16);
    var nb = 64;
    var tab = pmalloc(nb);
    root[0] = tab;
    root[1] = nb;
    root[2] = 0;    // item count
    root[3] = 0;    // lru head
    root[4] = 0;    // lru tail
    root[5] = 0;    // oldest_live (flush_all)
    root[6] = 0;    // expanding flag
    root[7] = 0;    // secondary table
    root[8] = 0;
    root[9] = 1;    // logical clock
    persist(root, 10);
    persist(tab, 64);
    setroot(0, root);
    return 0;
}

fn mc_clock() {
    var root = getroot(0);
    var t = root[9] + 1;
    root[9] = t;
    persist(root + 9, 1);
    return t;
}

// mc_lookup walks the bucket chain; the f1 corruption turns this loop
// into the paper's "while (it) { ... it = it->h_next; }" infinite loop.
fn mc_lookup(k) {
    var root = getroot(0);
    var tab = root[0];
    var nb = root[1];
    if (root[6] != 0) {
        // Rehashing in progress: consult the expansion table.
        var tab2 = root[7];
        if (tab2 == 0) {
            return 0; // inconsistent: expansion table missing
        }
        tab = tab2;
        nb = root[8];
    }
    var it = tab[k % nb];
    while (it != 0) {
        if (it[0] == k) {
            return it;
        }
        it = it[4];
    }
    return 0;
}

// mc_crawl is the item crawler: it frees refcount-0 items, ASSUMING they
// were already unlinked from the hashtable (the f1 bug's second half).
fn mc_crawl() {
    var root = getroot(0);
    var it = root[3];
    while (it != 0) {
        var nxt = it[5];
        if (it[3] == 0) {
            mc_lru_unlink(it);
            if (it[1] != 0) {
                pfree(it[1]);
            }
            pfree(it);
            root[2] = root[2] - 1;
            persist(root + 2, 1);
        }
        it = nxt;
    }
    return 0;
}

fn mc_lru_unlink(it) {
    var root = getroot(0);
    var nxt = it[5];
    var prv = it[6];
    if (prv == 0) {
        root[3] = nxt;
        persist(root + 3, 1);
    } else {
        prv[5] = nxt;
        persist(prv + 5, 1);
    }
    if (nxt == 0) {
        root[4] = prv;
        persist(root + 4, 1);
    } else {
        nxt[6] = prv;
        persist(nxt + 6, 1);
    }
    return 0;
}

fn mc_lru_push(it) {
    var root = getroot(0);
    var head = root[3];
    it[5] = head;
    it[6] = 0;
    persist(it + 5, 2);
    if (head != 0) {
        head[6] = it;
        persist(head + 6, 1);
    } else {
        root[4] = it;
        persist(root + 4, 1);
    }
    root[3] = it;
    persist(root + 3, 1);
    return 0;
}

fn mc_fill_value(vbuf, n, v) {
    var i = 0;
    while (i < n) {
        vbuf[i] = v + i;
        i = i + 1;
    }
    persist(vbuf, n);
    return 0;
}

// mc_set inserts or updates key k with an n-word value seeded from v.
fn mc_set(k, v, n) {
    lock(lockcell());
    mc_crawl();
    var t = mc_clock();
    var root = getroot(0);
    var it = mc_lookup(k);
    if (it != 0) {
        var old = it[1];
        var vbuf = pmalloc(n);
        mc_fill_value(vbuf, n, v);
        it[1] = vbuf;
        it[2] = n;
        it[7] = t;
        persist(it, 8);
        if (old != 0) {
            pfree(old);
        }
        unlock(lockcell());
        return 1;
    }
    it = pmalloc(8);
    var vbuf2 = pmalloc(n);
    mc_fill_value(vbuf2, n, v);
    it[0] = k;
    it[1] = vbuf2;
    it[2] = n;
    it[3] = 1;
    it[7] = t;
    var tab = root[0];
    var b = k % root[1];
    it[4] = tab[b];
    persist(it, 8);
    tab[b] = it;
    persist(tab + b, 1);
    mc_lru_push(it);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    unlock(lockcell());
    return 0;
}

var lockaddr;  // lazily allocated volatile lock word
fn lockcell() {
    if (lockaddr == 0) {
        lockaddr = valloc(1);
    }
    return lockaddr;
}

// mc_set_racy is the f3 path: it updates the bucket head WITHOUT the table
// lock, with a scheduling point inside the read-modify-write window.
fn mc_set_racy(k, v, n) {
    var t = mc_clock();
    var root = getroot(0);
    var it = pmalloc(8);
    var vbuf = pmalloc(n);
    mc_fill_value(vbuf, n, v);
    it[0] = k;
    it[1] = vbuf;
    it[2] = n;
    it[3] = 1;
    it[7] = t;
    var tab = root[0];
    var b = k % root[1];
    var head = tab[b];    // read...
    yield();              // ...the race window...
    it[4] = head;         // ...write with a possibly stale head
    persist(it, 8);
    tab[b] = it;
    persist(tab + b, 1);
    mc_lru_push(it);
    var cnt = root[2];   // the same unlocked read-modify-write race
    yield();
    root[2] = cnt + 1;   // loses one increment when interleaved
    persist(root + 2, 1);
    return 0;
}

// mc_get returns the sum of the value words (so corrupt lengths walk the
// buffer like the real code walks its byte array), or -1 on miss.
fn mc_get(k) {
    var root = getroot(0);
    var it = mc_lookup(k);
    if (it == 0) {
        return -1;
    }
    if (root[5] != 0 && it[7] <= root[5]) {
        return -1;   // flushed by flush_all
    }
    var vbuf = it[1];
    var n = it[2];
    var s = 0;
    var i = 0;
    while (i < n) {
        s = s + vbuf[i];
        i = i + 1;
    }
    return s;
}

// mc_hold pins an item (connection holding a reference). The f1 bug: the
// increment wraps at 8 bits with no overflow check.
fn mc_hold(k) {
    var it = mc_lookup(k);
    if (it == 0) {
        return -1;
    }
    it[3] = (it[3] + 1) & 255;
    persist(it + 3, 1);
    return it[3];
}

fn mc_release(k) {
    var it = mc_lookup(k);
    if (it == 0) {
        return -1;
    }
    it[3] = (it[3] - 1) & 255;
    persist(it + 3, 1);
    return it[3];
}

fn mc_delete(k) {
    lock(lockcell());
    var root = getroot(0);
    var tab = root[0];
    var b = k % root[1];
    var it = tab[b];
    var prev = 0;
    while (it != 0) {
        if (it[0] == k) {
            if (prev == 0) {
                tab[b] = it[4];
                persist(tab + b, 1);
            } else {
                prev[4] = it[4];
                persist(prev + 4, 1);
            }
            mc_lru_unlink(it);
            if (it[1] != 0) {
                pfree(it[1]);
            }
            pfree(it);
            root[2] = root[2] - 1;
            persist(root + 2, 1);
            unlock(lockcell());
            return 1;
        }
        prev = it;
        it = it[4];
    }
    unlock(lockcell());
    return 0;
}

// mc_append extends k's value by n words seeded from v. The f4 bug: the
// buffer is sized with an 8-bit wrap of the new length, but the stored
// length is the unwrapped sum.
fn mc_append(k, n, v) {
    var it = mc_lookup(k);
    if (it == 0) {
        return -1;
    }
    var oldlen = it[2];
    var newlen = oldlen + n;
    var cap = newlen & 255;   // slab-class size computation wraps
    if (cap < 1) {
        cap = 1;
    }
    var nbuf = pmalloc(cap);
    var old = it[1];
    var i = 0;
    while (i < oldlen && i < cap) {
        nbuf[i] = old[i];
        i = i + 1;
    }
    while (i < cap) {
        nbuf[i] = v;
        i = i + 1;
    }
    persist(nbuf, cap);
    it[1] = nbuf;
    it[2] = newlen;    // BUG: unwrapped length persisted
    persist(it, 8);
    pfree(old);
    return newlen;
}

// mc_flush is flush_all(when). The f2 bug: a future "when" is applied
// immediately instead of being scheduled.
fn mc_flush(when) {
    var root = getroot(0);
    root[5] = when - 1;
    persist(root + 5, 1);
    return 0;
}

// mc_expand doubles the hashtable — the rehashing whose in-progress flag
// f5's bit flip corrupts. The migration publishes the secondary table and
// the flag first, relinks every item, then atomically swaps the tables and
// clears the flag.
fn mc_expand() {
    lock(lockcell());
    var root = getroot(0);
    var nb = root[1];
    var nb2 = nb * 2;
    var tab2 = pmalloc(nb2);
    persist(tab2, nb2);
    root[7] = tab2;
    root[8] = nb2;
    root[6] = 1;           // rehashing in progress
    persist(root + 6, 3);
    var tab = root[0];
    var b = 0;
    while (b < nb) {
        var it = tab[b];
        while (it != 0) {
            var nxt = it[4];
            var b2 = it[0] % nb2;
            it[4] = tab2[b2];
            persist(it + 4, 1);
            tab2[b2] = it;
            persist(tab2 + b2, 1);
            it = nxt;
        }
        b = b + 1;
    }
    root[0] = tab2;
    root[1] = nb2;
    root[6] = 0;
    root[7] = 0;
    root[8] = 0;
    persist(root, 9);
    unlock(lockcell());
    return nb2;
}

// mc_count returns the maintained item counter.
fn mc_count() {
    var root = getroot(0);
    return root[2];
}

// mc_walk_count recounts items by walking every bucket chain (bounded by
// the maintained count so corrupted chains cannot hang the invariant check).
fn mc_walk_count() {
    var root = getroot(0);
    var tab = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var total = 0;
    var b = 0;
    while (b < nb) {
        var it = tab[b];
        while (it != 0 && total <= limit) {
            total = total + 1;
            it = it[4];
        }
        b = b + 1;
    }
    return total;
}

fn mc_recover() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var nb = root[1];
    var limit = root[2] + root[2] + 16;
    var seen = 0;
    var b = 0;
    while (b < nb) {
        var it = tab[b];
        while (it != 0 && seen <= limit) {
            var vbuf = it[1];
            if (vbuf != 0) {
                var x = vbuf[0];
            }
            seen = seen + 1;
            it = it[4];
        }
        b = b + 1;
    }
    recover_end();
    return seen;
}

// mc_race launches two unlocked concurrent inserts (the f3 trigger) and
// waits for both.
fn mc_race(k1, v1, k2, v2) {
    spawn mc_set_racy(k1, v1, 2);
    spawn mc_set_racy(k2, v2, 2);
    var spin = 0;
    while (spin < 2000) {
        yield();
        spin = spin + 1;
    }
    return 0;
}
`

// Memcached returns the deployable Memcached-like system.
func Memcached() *System {
	return &System{
		Name:      "memcached",
		Source:    memcachedSource,
		PoolWords: 1 << 16,
		InitFn:    "mc_init",
		RecoverFn: "mc_recover",
	}
}

// MC wraps a Memcached deployment with typed operations.
type MC struct{ *Deployment }

// NewMC deploys the Memcached system.
func NewMC(opts DeployOpts) (*MC, error) {
	d, err := Deploy(Memcached(), opts)
	if err != nil {
		return nil, err
	}
	return &MC{d}, nil
}

// Set stores key k with an n-word value seeded from v.
func (m *MC) Set(k, v, n int64) error { return callErr(m.Deployment, "mc_set", k, v, n) }

// Get returns the value sum for k, or -1 on miss.
func (m *MC) Get(k int64) (int64, error) {
	v, trap := m.Call("mc_get", k)
	if trap != nil {
		return 0, trap
	}
	return v, nil
}

// Delete removes k.
func (m *MC) Delete(k int64) error { return callErr(m.Deployment, "mc_delete", k) }

// Count returns the maintained item counter.
func (m *MC) Count() (int64, error) {
	v, trap := m.Call("mc_count")
	if trap != nil {
		return 0, trap
	}
	return v, nil
}

func callErr(d *Deployment, fn string, args ...int64) error {
	if _, trap := d.Call(fn, args...); trap != nil {
		return trap
	}
	return nil
}
