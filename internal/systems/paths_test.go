package systems

import "testing"

// Additional request-path coverage across the five systems: error paths,
// capacity limits, and secondary operations.

func TestRDListpackFull(t *testing.T) {
	rd, _ := NewRD(optsFull())
	rd.Call("rd_lp_new", 9, 4) // capacity 4+2 words: room for 4 elements
	for i := int64(1); i <= 4; i++ {
		if v, trap := rd.Call("rd_lp_append", 9, i); trap != nil || v != i {
			t.Fatalf("append %d -> %d (%v)", i, v, trap)
		}
	}
	v, trap := rd.Call("rd_lp_append", 9, 5)
	if trap != nil {
		t.Fatal(trap)
	}
	if v != -3 {
		t.Fatalf("full listpack append = %d, want -3", v)
	}
}

func TestRDAppendToMissingOrWrongType(t *testing.T) {
	rd, _ := NewRD(optsFull())
	if v, _ := rd.Call("rd_lp_append", 77, 1); v != -1 {
		t.Fatalf("append to missing key = %d", v)
	}
	rd.Set(5, 50)
	if v, _ := rd.Call("rd_lp_append", 5, 1); v != -2 {
		t.Fatalf("append to int object = %d", v)
	}
}

func TestRDShareExistingKey(t *testing.T) {
	rd, _ := NewRD(optsFull())
	rd.Set(3, 30)
	if _, trap := rd.Call("rd_share", 3); trap != nil {
		t.Fatal(trap)
	}
	// The key now returns the shared object's payload (0).
	if v, _ := rd.Get(3); v != 0 {
		t.Fatalf("shared get = %d", v)
	}
}

func TestRDUnshareBalanced(t *testing.T) {
	rd, _ := NewRD(optsFull())
	rd.Call("rd_share", 1)
	// Correct (non-buggy) release: refcount stays positive, object lives.
	if v, trap := rd.Call("rd_unshare", 1, 0); trap != nil || v <= 0 {
		t.Fatalf("unshare -> %d (%v)", v, trap)
	}
	if _, trap := rd.Call("rd_get", 1); trap != nil {
		t.Fatalf("get after balanced unshare: %v", trap)
	}
}

func TestPKStatsCounters(t *testing.T) {
	pk, _ := NewPK(optsFull())
	pk.Set(1, 1, 1)
	pk.Get(1)
	pk.Get(999) // miss
	stats, trap := pk.Call("pk_stats")
	if trap != nil {
		t.Fatal(trap)
	}
	// stats = hits*1e6 + misses*1e3 + sets
	if stats != 1_000_000+1_000+1 {
		t.Fatalf("stats = %d", stats)
	}
}

func TestPKStatsResetRotatesBlock(t *testing.T) {
	pk, _ := NewPK(optsFull())
	pk.Set(1, 1, 1)
	if _, trap := pk.Call("pk_stats_reset"); trap != nil {
		t.Fatal(trap)
	}
	stats, trap := pk.Call("pk_stats")
	if trap != nil {
		t.Fatal(trap)
	}
	if stats != 0 {
		t.Fatalf("stats after reset = %d", stats)
	}
	// And the system still counts afterwards.
	pk.Get(1)
	if stats, _ = pk.Call("pk_stats"); stats != 1_000_000 {
		t.Fatalf("stats after reset+hit = %d", stats)
	}
}

func TestPKSetUpdatesExisting(t *testing.T) {
	pk, _ := NewPK(optsFull())
	pk.Set(4, 10, 2)
	pk.Set(4, 20, 3)
	v, err := pk.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20+21+22 {
		t.Fatalf("updated value = %d", v)
	}
	if n, _ := pk.Call("pk_count"); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestKVDelMissing(t *testing.T) {
	kv, _ := NewKV(optsFull())
	kv.Put(1, 1)
	if v, trap := kv.Call("kv_del", 99); trap != nil || v != 0 {
		t.Fatalf("del missing = %d (%v)", v, trap)
	}
	if v, trap := kv.Call("kv_del", 1); trap != nil || v != 1 {
		t.Fatalf("del present = %d (%v)", v, trap)
	}
}

func TestKVPutUpdates(t *testing.T) {
	kv, _ := NewKV(optsFull())
	kv.Put(7, 1)
	kv.Put(7, 2)
	if v, _ := kv.Get(7); v != 2 {
		t.Fatalf("updated = %d", v)
	}
	if n, _ := kv.Call("kv_count"); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestMCHoldReleaseMissing(t *testing.T) {
	mc, _ := NewMC(optsFull())
	if v, _ := mc.Call("mc_hold", 12345); v != -1 {
		t.Fatalf("hold missing = %d", v)
	}
	if v, _ := mc.Call("mc_release", 12345); v != -1 {
		t.Fatalf("release missing = %d", v)
	}
	mc.Set(1, 1, 1)
	if v, _ := mc.Call("mc_hold", 1); v != 2 {
		t.Fatalf("hold -> ref %d", v)
	}
	if v, _ := mc.Call("mc_release", 1); v != 1 {
		t.Fatalf("release -> ref %d", v)
	}
}

func TestMCAppendMissing(t *testing.T) {
	mc, _ := NewMC(optsFull())
	if v, _ := mc.Call("mc_append", 999, 2, 1); v != -1 {
		t.Fatalf("append missing = %d", v)
	}
}

func TestMCDeleteMissing(t *testing.T) {
	mc, _ := NewMC(optsFull())
	mc.Set(1, 1, 1)
	if v, _ := mc.Call("mc_delete", 999); v != 0 {
		t.Fatalf("delete missing = %d", v)
	}
}

func TestCCUpdateExistingKey(t *testing.T) {
	cc, _ := NewCC(optsFull())
	cc.Insert(5, 50)
	cc.Insert(5, 55) // update in place
	if v, _ := cc.Get(5); v != 55 {
		t.Fatalf("updated = %d", v)
	}
}

func TestCCSplitRedistributes(t *testing.T) {
	cc, _ := NewCC(optsFull())
	// Insert enough keys to force several splits (segments hold 8 pairs,
	// initial depth 2 = 4 segments).
	for k := int64(1); k <= 64; k++ {
		if err := cc.Insert(k, k+1000); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := int64(1); k <= 64; k++ {
		v, err := cc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if v != k+1000 {
			t.Fatalf("get(%d) = %d after splits", k, v)
		}
	}
}
