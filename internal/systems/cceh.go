package systems

// CCEH-like extendible hash table for PM.
//
// Hosts the f9 case: directory doubling modifies several pieces of
// metadata; an untimely crash before the global depth is updated leaves the
// directory and depth inconsistent, and subsequent insertions spin forever
// (the RECIPE-reported CCEH bug).
//
// Persistent layout (word offsets):
//
//	root:    0 DIR (array of segment ptrs)  1 GDEPTH  2 NKEYS
//	segment: 0 LDEPTH  1 NUSED  2.. 2+2*SEGCAP slot pairs (key, value);
//	         key slot 0 means empty (keys must be nonzero)
//
// Segment capacity is 8 pairs. The directory has 2^GDEPTH entries; segment
// index = key & (2^GDEPTH - 1) folded over the directory.
const ccehSource = `
// ---- CCEH (write-optimized dynamic hashing for PM) ----

// Injected-crash rendezvous: the f9 experiment arms this to make the
// doubling path "crash" between installing the new directory and updating
// the global depth (the paper's untimely crash).
var crashpoint;

fn cc_init() {
    var root = pmalloc(4);
    var g = 2;
    var dirsize = 1 << g;
    var dir = pmalloc(dirsize);
    var i = 0;
    while (i < dirsize) {
        var seg = cc_newseg(g);
        dir[i] = seg;
        i = i + 1;
    }
    persist(dir, dirsize);
    root[0] = dir;
    root[1] = g;
    root[2] = 0;
    persist(root, 3);
    setroot(0, root);
    return 0;
}

fn cc_newseg(ldepth) {
    var seg = pmalloc(2 + 16);
    seg[0] = ldepth;
    seg[1] = 0;
    persist(seg, 18);
    return seg;
}

fn cc_segidx(k, g) {
    return k & ((1 << g) - 1);
}

// cc_insert adds (k, v); keys must be nonzero. Returns 0 on success.
fn cc_insert(k, v) {
    var root = getroot(0);
    var tries = 0;
    while (tries < 64) {
        var dir = root[0];
        var g = root[1];
        // The f9 consistency check: a doubled directory with a stale
        // global depth makes the code believe another doubling is in
        // flight, so it waits — forever, since nobody completes it.
        if (pmsize(dir) != (1 << g)) {
            yield();
            tries = tries + 0;   // spin without progress (hang)
            continue;
        }
        var idx = cc_segidx(k, g);
        var seg = dir[idx];
        var slot = cc_seg_put(seg, k, v);
        if (slot >= 0) {
            root[2] = root[2] + 1;
            persist(root + 2, 1);
            return 0;
        }
        // Segment full: split (or double the directory first).
        if (seg[0] == g) {
            cc_double();
        } else {
            cc_split(idx);
        }
        tries = tries + 1;
    }
    return -1;
}

// cc_seg_put places k in seg; updates in place if present. Returns the
// slot index or -1 when full.
fn cc_seg_put(seg, k, v) {
    var i = 0;
    while (i < 8) {
        var off = 2 + i * 2;
        if (seg[off] == k) {
            seg[off + 1] = v;
            persist(seg + off, 2);
            return i;
        }
        if (seg[off] == 0) {
            seg[off] = k;
            seg[off + 1] = v;
            seg[1] = seg[1] + 1;
            persist(seg + off, 2);
            persist(seg + 1, 1);
            return i;
        }
        i = i + 1;
    }
    return -1;
}

// cc_double doubles the directory: new dir, copied pointers, THEN the
// global depth. The f9 crash is injected between those two persists.
fn cc_double() {
    var root = getroot(0);
    var dir = root[0];
    var g = root[1];
    var oldsize = 1 << g;
    var ndir = pmalloc(oldsize * 2);
    var i = 0;
    while (i < oldsize) {
        ndir[i] = dir[i];
        ndir[i + oldsize] = dir[i];
        i = i + 1;
    }
    persist(ndir, oldsize * 2);
    root[0] = ndir;
    persist(root, 1);
    if (crashpoint != 0) {
        fail(9999);   // the injected untimely crash (f9)
    }
    root[1] = g + 1;
    persist(root + 1, 1);
    pfree(dir);
    return 0;
}

// cc_split splits the segment at directory index idx into two with a
// deeper local depth, redistributing its keys.
fn cc_split(idx) {
    var root = getroot(0);
    var dir = root[0];
    var g = root[1];
    var seg = dir[idx];
    var l = seg[0];
    var s0 = cc_newseg(l + 1);
    var s1 = cc_newseg(l + 1);
    var i = 0;
    while (i < 8) {
        var off = 2 + i * 2;
        var k = seg[off];
        if (k != 0) {
            var tgt = s0;
            if ((k >> l) & 1) {
                tgt = s1;
            }
            cc_seg_put(tgt, k, seg[off + 1]);
        }
        i = i + 1;
    }
    // Update every directory entry that pointed at seg.
    var dirsize = 1 << g;
    var d = 0;
    while (d < dirsize) {
        if (dir[d] == seg) {
            if ((d >> l) & 1) {
                dir[d] = s1;
            } else {
                dir[d] = s0;
            }
            persist(dir + d, 1);
        }
        d = d + 1;
    }
    pfree(seg);
    return 0;
}

fn cc_get(k) {
    var root = getroot(0);
    var dir = root[0];
    var g = root[1];
    var idx = cc_segidx(k, g);
    var seg = dir[idx];
    var i = 0;
    while (i < 8) {
        var off = 2 + i * 2;
        if (seg[off] == k) {
            return seg[off + 1];
        }
        i = i + 1;
    }
    return -1;
}

fn cc_count() {
    var root = getroot(0);
    return root[2];
}

fn cc_arm_crash() {
    crashpoint = 1;
    return 0;
}

fn cc_recover() {
    recover_begin();
    var root = getroot(0);
    var dir = root[0];
    var g = root[1];
    var dirsize = pmsize(dir);
    var i = 0;
    while (i < dirsize) {
        var seg = dir[i];
        if (seg != 0) {
            var l = seg[0];
        }
        i = i + 1;
    }
    recover_end();
    return g;
}
`

// CCEH returns the deployable CCEH-like system.
func CCEH() *System {
	return &System{
		Name:      "cceh",
		Source:    ccehSource,
		PoolWords: 1 << 16,
		InitFn:    "cc_init",
		RecoverFn: "cc_recover",
	}
}

// CC wraps a CCEH deployment with typed operations.
type CC struct{ *Deployment }

// NewCC deploys the CCEH system.
func NewCC(opts DeployOpts) (*CC, error) {
	d, err := Deploy(CCEH(), opts)
	if err != nil {
		return nil, err
	}
	return &CC{d}, nil
}

// Insert adds a nonzero key.
func (c *CC) Insert(k, v int64) error { return callErr(c.Deployment, "cc_insert", k, v) }

// Get looks up k (-1 on miss).
func (c *CC) Get(k int64) (int64, error) {
	v, trap := c.Call("cc_get", k)
	if trap != nil {
		return 0, trap
	}
	return v, nil
}
