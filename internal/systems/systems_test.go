package systems

import (
	"testing"

	"arthas/internal/vm"
)

func optsFull() DeployOpts { return DeployOpts{Checkpoint: true, Trace: true} }

// --- Memcached ---

func TestMCBasicOps(t *testing.T) {
	mc, err := NewMC(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 20; k++ {
		if err := mc.Set(k, k*10, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Value is sum of [v, v+1] = 2v+1.
	v, err := mc.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 70+71 {
		t.Fatalf("get(7) = %d", v)
	}
	if v, _ := mc.Get(999); v != -1 {
		t.Fatalf("missing key returned %d", v)
	}
	if err := mc.Delete(7); err != nil {
		t.Fatal(err)
	}
	if v, _ := mc.Get(7); v != -1 {
		t.Fatalf("deleted key returned %d", v)
	}
	n, _ := mc.Count()
	if n != 19 {
		t.Fatalf("count = %d", n)
	}
	w, trap := mc.Call("mc_walk_count")
	if trap != nil || w != 19 {
		t.Fatalf("walk count = %d (%v)", w, trap)
	}
}

func TestMCUpdateExistingKey(t *testing.T) {
	mc, _ := NewMC(optsFull())
	mc.Set(5, 100, 2)
	mc.Set(5, 200, 3)
	v, err := mc.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200+201+202 {
		t.Fatalf("updated get = %d", v)
	}
	if n, _ := mc.Count(); n != 1 {
		t.Fatalf("count after update = %d", n)
	}
}

func TestMCSurvivesRestart(t *testing.T) {
	mc, _ := NewMC(optsFull())
	for k := int64(1); k <= 10; k++ {
		mc.Set(k, k, 1)
	}
	if trap := mc.Restart(); trap != nil {
		t.Fatal(trap)
	}
	v, err := mc.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("after restart get(4) = %d", v)
	}
}

func TestMCRefcountOverflowHang(t *testing.T) {
	// The f1 chain: wrap the refcount, let the crawler free the linked
	// item, reinsert into the same bucket, observe the lookup hang.
	mc, _ := NewMC(DeployOpts{Checkpoint: true, Trace: true, StepLimit: 300_000})
	// Same bucket: keys ≡ mod 64.
	mc.Set(1, 10, 2)  // it1
	mc.Set(65, 20, 2) // it2, chain head
	for i := 0; i < 255; i++ {
		if _, trap := mc.Call("mc_hold", 65); trap != nil {
			t.Fatal(trap)
		}
	}
	// The next set's crawler frees the ref==0 item (still linked); the
	// same call then reuses its block for a same-bucket key: self-link.
	mc.Set(129, 40, 2)
	_, trap := mc.Call("mc_get", 1)
	if trap == nil || trap.Kind != vm.TrapStepLimit {
		t.Fatalf("expected hang, got %v", trap)
	}
	// Hard fault: recurs after restart.
	if trap := mc.Restart(); trap != nil {
		t.Fatal(trap)
	}
	_, trap = mc.Call("mc_get", 1)
	if trap == nil || trap.Kind != vm.TrapStepLimit {
		t.Fatalf("hang did not recur after restart: %v", trap)
	}
}

func TestMCFlushAllFutureTime(t *testing.T) {
	mc, _ := NewMC(optsFull())
	mc.Set(1, 10, 1)
	mc.Set(2, 20, 1)
	// flush_all at a far-future time: the bug applies it immediately.
	if _, trap := mc.Call("mc_flush", 1_000_000); trap != nil {
		t.Fatal(trap)
	}
	if v, _ := mc.Get(1); v != -1 {
		t.Fatalf("get(1) = %d, want miss (data loss)", v)
	}
	mc.Restart()
	if v, _ := mc.Get(2); v != -1 {
		t.Fatal("data loss did not persist across restart")
	}
}

func TestMCRaceLosesInsert(t *testing.T) {
	mc, _ := NewMC(optsFull())
	// Two same-bucket keys inserted concurrently without the lock.
	if _, trap := mc.Call("mc_race", 10, 100, 74, 200); trap != nil {
		t.Fatal(trap)
	}
	v10, _ := mc.Get(10)
	v74, _ := mc.Get(74)
	if v10 != -1 && v74 != -1 {
		t.Fatal("race did not lose an insert (both keys present)")
	}
	if v10 == -1 && v74 == -1 {
		t.Fatal("both inserts lost")
	}
	// The loss is persistent.
	mc.Restart()
	v10, _ = mc.Get(10)
	v74, _ = mc.Get(74)
	if v10 != -1 && v74 != -1 {
		t.Fatal("loss healed by restart?")
	}
}

func TestMCAppendOverflowSegfault(t *testing.T) {
	mc, _ := NewMC(optsFull())
	mc.Set(5, 1, 4)
	if _, trap := mc.Call("mc_append", 5, 70_000, 9); trap != nil {
		t.Fatal(trap)
	}
	_, trap := mc.Call("mc_get", 5)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("expected segfault, got %v", trap)
	}
	mc.Restart()
	_, trap = mc.Call("mc_get", 5)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("segfault did not recur: %v", trap)
	}
}

func TestMCExpandingFlagFlip(t *testing.T) {
	mc, _ := NewMC(optsFull())
	mc.Set(1, 10, 1)
	root, _ := mc.Pool.Root(0)
	// Hardware fault: flip bit 0 of the EXPANDING flag, durably.
	mc.Pool.InjectBitFlip(root+6, 0, true)
	if v, _ := mc.Get(1); v != -1 {
		t.Fatalf("get(1) = %d, want miss (lookups routed to missing table)", v)
	}
	mc.Restart()
	if v, _ := mc.Get(1); v != -1 {
		t.Fatal("flag flip healed by restart?")
	}
}

// --- Redis ---

func TestRDBasicOps(t *testing.T) {
	rd, err := NewRD(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 15; k++ {
		rd.Set(k, k*7)
	}
	v, err := rd.Get(9)
	if err != nil {
		t.Fatal(err)
	}
	if v != 63 {
		t.Fatalf("get(9) = %d", v)
	}
	rd.Set(9, 100)
	if v, _ := rd.Get(9); v != 100 {
		t.Fatalf("updated get = %d", v)
	}
	if trap := rd.Restart(); trap != nil {
		t.Fatal(trap)
	}
	if v, _ := rd.Get(3); v != 21 {
		t.Fatal("values lost across restart")
	}
}

func TestRDListpack(t *testing.T) {
	rd, _ := NewRD(optsFull())
	if _, trap := rd.Call("rd_lp_new", 50, 200); trap != nil {
		t.Fatal(trap)
	}
	sum := int64(0)
	for i := int64(1); i <= 20; i++ {
		if _, trap := rd.Call("rd_lp_append", 50, i); trap != nil {
			t.Fatal(trap)
		}
		sum += i
	}
	v, err := rd.Get(50)
	if err != nil {
		t.Fatal(err)
	}
	if v != sum {
		t.Fatalf("listpack sum = %d, want %d", v, sum)
	}
}

func TestRDListpackOverflowSegfault(t *testing.T) {
	// Appending past the 96-word boundary corrupts the stored size (f6).
	rd, _ := NewRD(optsFull())
	rd.Call("rd_lp_new", 50, 200)
	for i := int64(1); i <= 96; i++ {
		if _, trap := rd.Call("rd_lp_append", 50, i); trap != nil {
			t.Fatal(trap)
		}
	}
	_, trap := rd.Call("rd_get", 50)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("expected segfault, got %v", trap)
	}
	rd.Restart()
	_, trap = rd.Call("rd_get", 50)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("segfault did not recur: %v", trap)
	}
}

func TestRDShareRefcountPanic(t *testing.T) {
	rd, _ := NewRD(optsFull())
	rd.Call("rd_share", 7)
	rd.Call("rd_share", 8)
	// Release with the buggy double-decrement path (f7).
	rd.Call("rd_unshare", 7, 1)
	rd.Call("rd_unshare", 8, 1)
	_, trap := rd.Call("rd_get", 7)
	if trap == nil || trap.Kind != vm.TrapUserFail || trap.Code != 71 {
		t.Fatalf("expected panic 71, got %v", trap)
	}
	rd.Restart()
	_, trap = rd.Call("rd_get", 8)
	if trap == nil || trap.Kind != vm.TrapUserFail {
		t.Fatalf("panic did not recur: %v", trap)
	}
}

func TestRDSlowlogLeak(t *testing.T) {
	rd, _ := NewRD(optsFull())
	rd.Call("rd_slowlog_on")
	before := rd.Pool.LiveWords()
	for k := int64(1); k <= 200; k++ {
		rd.Set(k%10, k) // 10 keys, lots of slowlog churn
	}
	after := rd.Pool.LiveWords()
	// 10 keys worth of real data but ~200 slowlog entries leaked.
	leakedEntries := rd.Log.LiveAllocs()
	if after-before < 3*150 {
		t.Fatalf("leak too small: %d words, %d live allocs", after-before, len(leakedEntries))
	}
}

// --- CCEH ---

func TestCCBasicOps(t *testing.T) {
	cc, err := NewCC(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 200; k++ {
		if err := cc.Insert(k, k*3); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for _, k := range []int64{1, 50, 123, 200} {
		v, err := cc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if v != k*3 {
			t.Fatalf("get(%d) = %d", k, v)
		}
	}
	if v, _ := cc.Get(5000); v != -1 {
		t.Fatalf("missing key returned %d", v)
	}
	if trap := cc.Restart(); trap != nil {
		t.Fatal(trap)
	}
	if v, _ := cc.Get(123); v != 369 {
		t.Fatal("values lost across restart")
	}
}

func TestCCDirectoryDoublingCrashHang(t *testing.T) {
	cc, _ := NewCC(DeployOpts{Checkpoint: true, Trace: true, StepLimit: 300_000})
	// Fill until a doubling is imminent, then arm the crash.
	var k int64
	for k = 1; k <= 400; k++ {
		if err := cc.Insert(k, k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		g, _ := cc.Call("cc_recover") // returns current global depth
		if g >= 5 {
			break
		}
	}
	cc.Call("cc_arm_crash")
	// Keep inserting until the armed doubling fires.
	var trap *vm.Trap
	for k++; k <= 3000; k++ {
		_, trap = cc.Call("cc_insert", k, k)
		if trap != nil {
			break
		}
	}
	if trap == nil || trap.Kind != vm.TrapUserFail || trap.Code != 9999 {
		t.Fatalf("injected crash did not fire: %v", trap)
	}
	// Restart: the directory/global-depth mismatch persists and inserts hang.
	if tp := cc.Restart(); tp != nil {
		t.Fatal(tp)
	}
	_, trap = cc.Call("cc_insert", 70001, 1)
	if trap == nil || trap.Kind != vm.TrapStepLimit {
		t.Fatalf("expected insert hang after crash, got %v", trap)
	}
}

// --- PMEMKV ---

func TestKVBasicOps(t *testing.T) {
	kv, err := NewKV(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 50; k++ {
		kv.Put(k, k+1000)
	}
	if v, _ := kv.Get(30); v != 1030 {
		t.Fatalf("get(30) = %d", v)
	}
	kv.Del(30)
	if v, _ := kv.Get(30); v != -1 {
		t.Fatal("deleted key still present")
	}
	// Draining the async worker frees the node.
	live := len(kv.Log.LiveAllocs())
	kv.M.DrainBackground(10_000)
	if len(kv.Log.LiveAllocs()) >= live {
		t.Fatal("async free worker did not free the node")
	}
}

func TestKVAsyncFreeLeakOnCrash(t *testing.T) {
	kv, _ := NewKV(optsFull())
	for k := int64(1); k <= 40; k++ {
		kv.Put(k, k)
	}
	allocsBefore := len(kv.Log.LiveAllocs())
	for k := int64(1); k <= 20; k++ {
		kv.Del(k)
	}
	// Crash before the workers run: nodes leak.
	kv.Restart()
	leaked := 0
	for _, rec := range kv.Log.LiveAllocs() {
		_ = rec
		leaked++
	}
	if leaked != allocsBefore {
		t.Fatalf("live allocs = %d, want %d (unlinked nodes leaked)", leaked, allocsBefore)
	}
	// The unlinked nodes are invisible to the index.
	if v, _ := kv.Get(5); v != -1 {
		t.Fatal("deleted key resurrected")
	}
}

// --- Pelikan ---

func TestPKBasicOps(t *testing.T) {
	pk, err := NewPK(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	pk.Set(3, 5, 4)
	v, err := pk.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5+6+7+8 {
		t.Fatalf("get(3) = %d", v)
	}
	stats, trap := pk.Call("pk_stats")
	if trap != nil {
		t.Fatal(trap)
	}
	if stats == 0 {
		t.Fatal("stats empty after ops")
	}
}

func TestPKValueLengthOverflowSegfault(t *testing.T) {
	pk, _ := NewPK(optsFull())
	// A value "larger than the slab encoding": wraps the buffer size.
	if err := pk.Set(9, 1, 70_000); err != nil {
		t.Fatal(err)
	}
	_, trap := pk.Call("pk_get", 9)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("expected segfault, got %v", trap)
	}
	pk.Restart()
	_, trap = pk.Call("pk_get", 9)
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("segfault did not recur: %v", trap)
	}
}

func TestPKNullStatsSegfault(t *testing.T) {
	pk, _ := NewPK(optsFull())
	pk.Set(1, 1, 1)
	pk.Call("pk_arm_crash")
	_, trap := pk.Call("pk_stats_reset")
	if trap == nil || trap.Code != 1111 {
		t.Fatalf("injected crash did not fire: %v", trap)
	}
	pk.Restart()
	_, trap = pk.Call("pk_stats")
	if trap == nil || trap.Kind != vm.TrapSegfault {
		t.Fatalf("expected null-deref segfault, got %v", trap)
	}
}

// --- harness ---

func TestDeploymentVariants(t *testing.T) {
	// Vanilla: no hooks, no analysis.
	d, err := Deploy(PMEMKV(), DeployOpts{SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Res != nil || d.Log != nil || d.Tr != nil {
		t.Fatal("vanilla deployment attached Arthas components")
	}
	if _, trap := d.Call("kv_put", 1, 2); trap != nil {
		t.Fatal(trap)
	}
	// Checkpoint-only.
	d2, _ := Deploy(PMEMKV(), DeployOpts{Checkpoint: true})
	d2.Call("kv_put", 1, 2)
	if d2.Log.TotalVersions() == 0 {
		t.Fatal("checkpoint log empty after put")
	}
	// Trace-only.
	d3, _ := Deploy(PMEMKV(), DeployOpts{Trace: true})
	d3.Call("kv_put", 1, 2)
	if d3.Tr.Len() == 0 {
		t.Fatal("trace empty after put")
	}
}

func TestRetInstrsHelper(t *testing.T) {
	d, _ := Deploy(PMEMKV(), DeployOpts{SkipAnalysis: true})
	rets := d.RetInstrs("kv_get")
	if len(rets) != 2 {
		t.Fatalf("kv_get rets = %d, want 2", len(rets))
	}
	if d.RetInstrs("nope") != nil {
		t.Fatal("unknown function returned rets")
	}
}
