package systems

import "testing"

// Hashtable expansion (the rehashing path whose flag f5 flips).

func TestMCExpansionPreservesItems(t *testing.T) {
	mc, err := NewMC(optsFull())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 150; k++ {
		if err := mc.Set(k, k*3, 2); err != nil {
			t.Fatal(err)
		}
	}
	nb2, trap := mc.Call("mc_expand")
	if trap != nil {
		t.Fatal(trap)
	}
	if nb2 != 128 {
		t.Fatalf("expanded bucket count = %d, want 128", nb2)
	}
	// Every key is still reachable, values intact.
	for k := int64(1); k <= 150; k++ {
		v, err := mc.Get(k)
		if err != nil {
			t.Fatalf("get(%d): %v", k, err)
		}
		if v != k*3+(k*3+1) { // sum of the 2-word value [v, v+1]
			t.Fatalf("get(%d) = %d", k, v)
		}
	}
	// The flag is clear and the expansion is durable.
	if trap := mc.Restart(); trap != nil {
		t.Fatal(trap)
	}
	root, _ := mc.Pool.Root(0)
	flag, _ := mc.Pool.Load(root + 6)
	if flag != 0 {
		t.Fatalf("rehashing flag = %d after completed expansion", flag)
	}
	nb, _ := mc.Pool.Load(root + 1)
	if nb != 128 {
		t.Fatalf("bucket count after restart = %d", nb)
	}
	if v, _ := mc.Get(99); v != 99*3+99*3+1 {
		t.Fatalf("post-restart get(99) = %d", v)
	}
}

func TestMCExpansionWalkCountStable(t *testing.T) {
	mc, _ := NewMC(optsFull())
	for k := int64(1); k <= 80; k++ {
		mc.Set(k, k, 1)
	}
	before, _ := mc.Call("mc_walk_count")
	mc.Call("mc_expand")
	after, trap := mc.Call("mc_walk_count")
	if trap != nil {
		t.Fatal(trap)
	}
	if before != after {
		t.Fatalf("walk count changed across expansion: %d -> %d", before, after)
	}
}

func TestMCExpansionTwice(t *testing.T) {
	mc, _ := NewMC(optsFull())
	for k := int64(1); k <= 40; k++ {
		mc.Set(k, k, 1)
	}
	mc.Call("mc_expand")
	nb, trap := mc.Call("mc_expand")
	if trap != nil {
		t.Fatal(trap)
	}
	if nb != 256 {
		t.Fatalf("second expansion -> %d buckets", nb)
	}
	if v, _ := mc.Get(17); v != 17 {
		t.Fatalf("get(17) = %d", v)
	}
}
