// Package systems contains the five target PM systems of the paper's
// evaluation — Memcached, Redis, Pelikan, PMEMKV and CCEH — re-implemented
// in PML with the data structures and code paths that host the twelve
// evaluated hard-fault bugs, plus the deployment harness that compiles,
// analyzes, instruments, and runs them the way the Arthas toolchain does
// (paper Figure 4).
package systems

import (
	"fmt"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/ir"
	"arthas/internal/obs"
	"arthas/internal/opt"
	"arthas/internal/pmem"
	"arthas/internal/provenance"
	"arthas/internal/trace"
	"arthas/internal/vm"
)

// System describes one deployable PML target.
type System struct {
	Name      string
	Source    string
	PoolWords int
	// InitFn creates the persistent layout on a fresh pool.
	InitFn string
	// RecoverFn is the annotated recovery entry point run after restart.
	RecoverFn string
}

// DeployOpts selects which parts of the Arthas runtime attach — the knobs
// behind Table 8's overhead split (vanilla / checkpoint-only /
// instrumentation-only) and Figure 12.
type DeployOpts struct {
	Checkpoint bool // attach the checkpoint log (pmem hooks)
	Trace      bool // attach the PM address trace sink
	// MaxVersions for the checkpoint log (default 3).
	MaxVersions int
	// StepLimit per VM call (default 5M: hangs detected quickly).
	StepLimit int64
	// SkipAnalysis deploys without running the static analyzer (vanilla
	// builds for overhead baselines; no GUIDs are assigned).
	SkipAnalysis bool
	// Obs, when non-nil, receives telemetry from every attached runtime
	// layer (pool, checkpoint log, trace, VM). Survives restarts: each
	// fresh machine is rewired to the same sink.
	Obs obs.Sink
	// Provenance attaches the per-word write-lineage index: the VM's
	// WriteSink feeds last-writer attribution and the pool's persistence
	// hooks are wrapped to stamp lineage records (incident-report input).
	Provenance bool
	// Optimize runs the flush/fence-elimination pass (internal/opt) on the
	// compiled module before analysis and instrumentation.
	Optimize bool
}

// Deployment is a running instance of a system: compiled module, analysis
// metadata, pool, checkpoint log, trace, and the current VM.
type Deployment struct {
	Sys  *System
	Mod  *ir.Module
	Res  *analysis.Result // nil when SkipAnalysis
	Pool *pmem.Pool
	Log  *checkpoint.Log   // nil when !Checkpoint
	Tr   *trace.Trace      // nil when !Trace
	Prov *provenance.Index // nil when !Provenance
	M    *vm.Machine

	opts     DeployOpts
	restarts int
}

// Deploy compiles and boots a system on a fresh pool, running InitFn.
func Deploy(sys *System, opts DeployOpts) (*Deployment, error) {
	if opts.StepLimit == 0 {
		opts.StepLimit = 5_000_000
	}
	mod, err := ir.CompileSource(sys.Name, sys.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sys.Name, err)
	}
	if opts.Optimize {
		if _, err := opt.Optimize(mod); err != nil {
			return nil, fmt.Errorf("%s: %w", sys.Name, err)
		}
	}
	d := &Deployment{Sys: sys, Mod: mod, opts: opts}
	if !opts.SkipAnalysis {
		d.Res = analysis.Analyze(mod)
	}
	d.Pool = pmem.New(sys.PoolWords)
	d.Pool.SetSink(opts.Obs)
	if opts.Checkpoint {
		d.Log = checkpoint.NewLog(opts.MaxVersions)
		d.Log.SetSink(opts.Obs)
		d.Pool.SetHooks(d.Log.Hooks())
	}
	if opts.Provenance {
		d.Prov = provenance.New()
		d.Prov.SetSink(opts.Obs)
		var hooks pmem.Hooks
		if d.Log != nil {
			hooks = d.Log.Hooks()
		}
		d.Pool.SetHooks(d.Prov.WrapHooks(hooks, d.Log))
	}
	if opts.Trace {
		d.Tr = trace.New()
		d.Tr.SetSink(opts.Obs)
	}
	d.boot()
	if sys.InitFn != "" {
		if _, trap := d.M.Call(sys.InitFn); trap != nil {
			return nil, fmt.Errorf("%s init: %v", sys.Name, trap)
		}
	}
	return d, nil
}

// MustDeploy panics on deployment failure (tests, experiments).
func MustDeploy(sys *System, opts DeployOpts) *Deployment {
	d, err := Deploy(sys, opts)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Deployment) boot() {
	d.M = vm.New(d.Mod, d.Pool, vm.Config{StepLimit: d.opts.StepLimit})
	d.M.SetSink(d.opts.Obs)
	if d.Tr != nil {
		d.M.TraceSink = d.Tr.Record
		d.M.TraceReadSink = d.Tr.RecordRead
	}
	if d.Prov != nil {
		d.M.WriteSink = d.Prov.NoteWrite
		d.Prov.SetClock(d.M.Steps)
	}
}

// SetObs installs (or clears, with nil) the observability sink on every
// attached layer of a live deployment, including the current machine.
func (d *Deployment) SetObs(s obs.Sink) {
	d.opts.Obs = s
	d.Pool.SetSink(s)
	if d.Log != nil {
		d.Log.SetSink(s)
	}
	if d.Tr != nil {
		d.Tr.SetSink(s)
	}
	if d.Prov != nil {
		d.Prov.SetSink(s)
	}
	if d.M != nil {
		d.M.SetSink(s)
	}
}

// Call invokes a PML function on the current machine.
func (d *Deployment) Call(fn string, args ...int64) (int64, *vm.Trap) {
	return d.M.Call(fn, args...)
}

// Restart simulates process kill + restart: the pool crashes (unpersisted
// stores lost), a fresh machine boots, and the recovery function runs.
func (d *Deployment) Restart() *vm.Trap {
	d.Pool.Crash()
	d.boot()
	d.restarts++
	if d.Sys.RecoverFn != "" {
		if _, trap := d.M.Call(d.Sys.RecoverFn); trap != nil {
			return trap
		}
	}
	return nil
}

// Restarts reports how many restarts occurred.
func (d *Deployment) Restarts() int { return d.restarts }

// FindInstr locates an instruction in the module by function name and
// predicate — used by experiments to identify fault instructions for
// failures (like data loss) that have no trapping instruction.
func (d *Deployment) FindInstr(fn string, pred func(*ir.Instr) bool) *ir.Instr {
	f := d.Mod.Func(fn)
	if f == nil {
		return nil
	}
	var out *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if out == nil && pred(in) {
			out = in
		}
	})
	return out
}

// RetInstrs returns the return instructions of a function: the default
// fault instructions for wrong-result/data-loss failures, where the
// symptom is a value the function computed rather than a trap.
func (d *Deployment) RetInstrs(fn string) []*ir.Instr {
	f := d.Mod.Func(fn)
	if f == nil {
		return nil
	}
	var out []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpRet {
			out = append(out, in)
		}
	})
	return out
}

// Fork clones the deployment into an isolated speculative session: the pool
// is copy-on-write forked, the checkpoint log (when attached) is forked and
// wired to the forked pool's hooks, and a fresh machine boots against the
// fork. The compiled module and analysis are shared read-only. Forks record
// no address trace, no write lineage, and carry no observability sink —
// speculative probes must not pollute the shared trace, the provenance
// index, or telemetry (the reactor replays
// worker telemetry separately; see docs/PARALLEL_MITIGATION.md). The fork's
// Restart/Call work as usual; a winning fork's pool is promoted by the
// reactor, never by the fork itself.
func (d *Deployment) Fork() *Deployment {
	fd := &Deployment{
		Sys:      d.Sys,
		Mod:      d.Mod,
		Res:      d.Res,
		Pool:     d.Pool.Fork(),
		opts:     d.opts,
		restarts: d.restarts,
	}
	fd.opts.Obs = nil
	if d.Log != nil {
		fd.Log = d.Log.Fork()
		fd.Pool.SetHooks(fd.Log.Hooks())
	}
	fd.boot()
	return fd
}
