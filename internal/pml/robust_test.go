package pml

import (
	"testing"
	"testing/quick"
)

// Robustness: the front-end must never panic — arbitrary inputs either
// parse or return an error with a position.

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on input %q: %v", string(data), r)
			}
		}()
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnMutatedPrograms(t *testing.T) {
	base := `
var g = 1;
fn f(a, b) {
    var x = a + b * g;
    if (x > 0) {
        while (x != 0) {
            x = x - 1;
        }
    }
    return pmalloc(x);
}`
	f := func(pos uint16, b byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on mutation at %d -> %q: %v", pos, b, r)
			}
		}()
		mutated := []byte(base)
		mutated[int(pos)%len(mutated)] = b
		_, _ = Parse(string(mutated))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDeeplyNestedExpressions(t *testing.T) {
	// Bounded recursion depth: a pathological but legal input parses.
	src := "fn f(x) { return "
	for i := 0; i < 200; i++ {
		src += "("
	}
	src += "x"
	for i := 0; i < 200; i++ {
		src += ")"
	}
	src += "; }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
}

func TestParseLongChains(t *testing.T) {
	src := "fn f(x) { return x"
	for i := 0; i < 500; i++ {
		src += " + 1"
	}
	src += "; }"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
