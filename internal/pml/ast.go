package pml

// AST node definitions for PML.

// Program is a parsed PML compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalDecl is a top-level `var name = <int literal>;` declaration.
// Globals are volatile (reset at every program start, like C globals
// without persistence) and are shared across threads.
type GlobalDecl struct {
	Name string
	Init int64
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Pos    Pos
}

// --- Statements ---

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` sequence.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarStmt declares a local: `var x;` or `var x = e;`.
type VarStmt struct {
	Name string
	Init Expr // nil means zero
	Pos  Pos
}

// AssignStmt is `lhs = rhs;` where lhs is an identifier or index expression.
type AssignStmt struct {
	LHS Expr // *Ident or *IndexExpr
	RHS Expr
	Pos Pos
}

// ExprStmt evaluates an expression for its side effects: `f(x);`.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is `if (cond) { ... } else { ... }` (else optional).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt (else-if) or nil
	Pos  Pos
}

// WhileStmt is `while (cond) { ... }`.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt re-tests the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt is `return;` or `return e;`.
type ReturnStmt struct {
	X   Expr // may be nil
	Pos Pos
}

// SpawnStmt is `spawn f(args);` — start a cooperative thread.
type SpawnStmt struct {
	Callee string
	Args   []Expr
	Pos    Pos
}

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*SpawnStmt) stmtNode()    {}

// --- Expressions ---

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// NumLit is an integer literal.
type NumLit struct {
	Val int64
	Pos Pos
}

// Ident references a local, parameter, or global.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr is `base[idx]`: a load from (or, as an assignment target, a
// store to) memory word base+idx. This is PML's only memory access form,
// mirroring *(p+i) in the C systems the paper studies.
type IndexExpr struct {
	Base, Idx Expr
	Pos       Pos
}

// CallExpr invokes a user function or an intrinsic.
type CallExpr struct {
	Callee string
	Args   []Expr
	Pos    Pos
}

// UnaryExpr is -x, !x, or ~x.
type UnaryExpr struct {
	Op  Kind // Minus, Not, Tilde
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation. && and || short-circuit.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

func (*NumLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// ExprPos implementations.
func (e *NumLit) ExprPos() Pos     { return e.Pos }
func (e *Ident) ExprPos() Pos      { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }

// Intrinsics is the set of built-in function names. The analyzer treats the
// PM-facing subset (pmalloc, getroot, …) as the seeds of its persistent
// variable identification (paper §4.1), and the VM implements them directly.
var Intrinsics = map[string]int{ // name -> arity (-1 = variadic not allowed; all fixed)
	"pmalloc":       1, // allocate+zero n persistent words, returns address
	"pfree":         1, // free persistent block
	"persist":       2, // persist(addr, nwords): make durable (library API)
	"flush":         2, // flush(addr, nwords): queue cache lines (clwb analogue)
	"fence":         0, // fence(): drain queued flushes to durability (sfence)
	"txbegin":       0, // begin transaction (per-thread)
	"txcommit":      0, // commit: persist tx write-set atomically
	"setroot":       2, // setroot(slot, addr)
	"getroot":       1, // getroot(slot) -> addr
	"pmsize":        1, // pmsize(addr) -> allocated words (0 if not a block start)
	"pmrealloc":     2, // pmrealloc(addr, n): resize block, returns new addr
	"valloc":        1, // allocate+zero n volatile words
	"vfree":         1, // free volatile block
	"yield":         0, // cooperative scheduling point
	"lock":          1, // spin-acquire word at addr
	"unlock":        1, // release word at addr
	"assert":        1, // trap AssertFail if 0
	"fail":          1, // unconditional trap with user code
	"emit":          1, // append value to the run's output channel
	"recover_begin": 0, // annotate recovery section start (§4.7)
	"recover_end":   0, // annotate recovery section end
}

// IsIntrinsic reports whether name is a PML built-in.
func IsIntrinsic(name string) bool { _, ok := Intrinsics[name]; return ok }
