package pml

import (
	"fmt"
)

// Parser is a recursive-descent parser for PML with precedence-climbing
// expression parsing.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a full PML program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// MustParse parses src and panics on error; for tests and embedded sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%v: expected %v, found %v", t.Pos, k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	seen := map[string]Pos{}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KwFn:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if prev, dup := seen["fn "+f.Name]; dup {
				return nil, fmt.Errorf("%v: function %q redeclared (first at %v)", f.Pos, f.Name, prev)
			}
			seen["fn "+f.Name] = f.Pos
			prog.Funcs = append(prog.Funcs, f)
		case KwVar:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			if prev, dup := seen["var "+g.Name]; dup {
				return nil, fmt.Errorf("%v: global %q redeclared (first at %v)", g.Pos, g.Name, prev)
			}
			seen["var "+g.Name] = g.Pos
			prog.Globals = append(prog.Globals, g)
		default:
			return nil, fmt.Errorf("%v: expected 'fn' or 'var' at top level, found %v", p.cur().Pos, p.cur())
		}
	}
	return prog, nil
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(KwVar)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Pos: kw.Pos}
	if p.accept(Assign) {
		neg := p.accept(Minus)
		num, err := p.expect(NUMBER)
		if err != nil {
			return nil, fmt.Errorf("%v: global initializer must be an integer literal", p.cur().Pos)
		}
		g.Init = num.Val
		if neg {
			g.Init = -g.Init
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expect(KwFn)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if IsIntrinsic(name.Text) {
		return nil, fmt.Errorf("%v: cannot define function %q: name is an intrinsic", name.Pos, name.Text)
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Pos: kw.Pos}
	if p.cur().Kind != RParen {
		for {
			param, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, param.Text)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, fmt.Errorf("%v: unexpected EOF, unclosed block opened at %v", p.cur().Pos, lb.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case KwVar:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name.Text, Pos: t.Pos}
		if p.accept(Assign) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = e
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case KwReturn:
		p.next()
		s := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != Semicolon {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	case KwSpawn:
		p.next()
		callee, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		s := &SpawnStmt{Callee: callee.Text, Pos: t.Pos}
		if p.cur().Kind != RParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				s.Args = append(s.Args, a)
				if !p.accept(Comma) {
					break
				}
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	}

	// Expression or assignment statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == Assign {
		eq := p.next()
		switch e.(type) {
		case *Ident, *IndexExpr:
			// ok
		default:
			return nil, fmt.Errorf("%v: invalid assignment target", eq.Pos)
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: e, RHS: rhs, Pos: eq.Pos}, nil
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: t.Pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t, _ := p.expect(KwIf)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = elseIf
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = blk
		}
	}
	return s, nil
}

// Binary operator precedence, loosest (1) to tightest. Mirrors C except that
// & ^ | bind tighter than comparisons would suggest in C's famously awkward
// table; we use: || < && < | < ^ < & < == != < relational < shifts < + - < * / %.
func precedence(k Kind) int {
	switch k {
	case PipePipe:
		return 1
	case AmpAmp:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, Le, Gt, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec := precedence(op.Kind)
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Not, Tilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals so -9223372036854775808 works.
		if n, ok := x.(*NumLit); ok && t.Kind == Minus {
			return &NumLit{Val: -n.Val, Pos: t.Pos}, nil
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Idx: idx, Pos: lb.Pos}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		return &NumLit{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LParen {
			p.next()
			call := &CallExpr{Callee: t.Text, Pos: t.Pos}
			if p.cur().Kind != RParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			if arity, ok := Intrinsics[call.Callee]; ok && arity != len(call.Args) {
				return nil, fmt.Errorf("%v: intrinsic %q takes %d argument(s), got %d",
					t.Pos, call.Callee, arity, len(call.Args))
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("%v: expected expression, found %v", t.Pos, t)
}
