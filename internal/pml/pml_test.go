package pml

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("fn f(a, b) { return a + b; }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwFn, IDENT, LParen, IDENT, Comma, IDENT, RParen, LBrace,
		KwReturn, IDENT, Plus, IDENT, Semicolon, RBrace, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "<< >> <= >= == != && || < > = ! ~ & | ^ + - * / %"
	want := []Kind{Shl, Shr, Le, Ge, EqEq, NotEq, AmpAmp, PipePipe,
		Lt, Gt, Assign, Not, Tilde, Amp, Pipe, Caret, Plus, Minus, Star, Slash, Percent, EOF}
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]int64{
		"0":                   0,
		"42":                  42,
		"0x10":                16,
		"0xdeadBEEF":          0xdeadbeef,
		"9223372036854775807": 1<<63 - 1,
		"0xffffffffffffffff":  -1,
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != NUMBER || toks[0].Val != want {
			t.Errorf("%q -> %v (val %d), want %d", src, toks[0], toks[0].Val, want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a // comment with fn var if\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Fatalf("b at line %d, want 2", toks[1].Pos.Line)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, _ := Tokenize("ab\n  cd")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("ab pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("cd pos = %v", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"@", "$x", "0x"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestParseSimpleFunction(t *testing.T) {
	prog, err := Parse(`
fn add(a, b) {
    return a + b;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	f := prog.Funcs[0]
	if f.Name != "add" || !reflect.DeepEqual(f.Params, []string{"a", "b"}) {
		t.Fatalf("f = %+v", f)
	}
	ret, ok := f.Body.Stmts[0].(*ReturnStmt)
	if !ok {
		t.Fatalf("stmt = %T", f.Body.Stmts[0])
	}
	bin, ok := ret.X.(*BinaryExpr)
	if !ok || bin.Op != Plus {
		t.Fatalf("ret.X = %#v", ret.X)
	}
}

func TestParseGlobals(t *testing.T) {
	prog, err := Parse("var g;\nvar h = 5;\nvar neg = -3;\nfn main() { return g + h; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	if prog.Globals[1].Init != 5 || prog.Globals[2].Init != -3 {
		t.Fatalf("inits = %d, %d", prog.Globals[1].Init, prog.Globals[2].Init)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse("fn f() { return 1 + 2 * 3; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*BinaryExpr)
	if add.Op != Plus {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != Star {
		t.Fatalf("right op = %v", mul.Op)
	}
}

func TestParseComparisonVsShift(t *testing.T) {
	prog := MustParse("fn f(a, b) { return a << 2 < b; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp := ret.X.(*BinaryExpr)
	if cmp.Op != Lt {
		t.Fatalf("top op = %v, want <", cmp.Op)
	}
	if sh := cmp.L.(*BinaryExpr); sh.Op != Shl {
		t.Fatalf("left = %v, want <<", sh.Op)
	}
}

func TestParseIndexChain(t *testing.T) {
	prog := MustParse("fn f(p) { return p[0][1]; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	outer := ret.X.(*IndexExpr)
	inner := outer.Base.(*IndexExpr)
	if inner.Base.(*Ident).Name != "p" {
		t.Fatalf("inner base = %#v", inner.Base)
	}
}

func TestParseIndexAssignment(t *testing.T) {
	prog := MustParse("fn f(p) { p[3] = p[3] + 1; }")
	asn := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if _, ok := asn.LHS.(*IndexExpr); !ok {
		t.Fatalf("lhs = %T", asn.LHS)
	}
}

func TestParseIfElseChain(t *testing.T) {
	prog := MustParse(`
fn f(x) {
    if (x == 1) { return 10; }
    else if (x == 2) { return 20; }
    else { return 30; }
}`)
	s := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	elseIf, ok := s.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %T", s.Else)
	}
	if _, ok := elseIf.Else.(*BlockStmt); !ok {
		t.Fatalf("else-else = %T", elseIf.Else)
	}
}

func TestParseWhileBreakContinue(t *testing.T) {
	prog := MustParse(`
fn f(n) {
    var i = 0;
    while (i < n) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i == 7) { break; }
    }
    return i;
}`)
	w := prog.Funcs[0].Body.Stmts[1].(*WhileStmt)
	if len(w.Body.Stmts) != 3 {
		t.Fatalf("while body = %d stmts", len(w.Body.Stmts))
	}
}

func TestParseSpawn(t *testing.T) {
	prog := MustParse("fn worker(x) { return x; } fn main() { spawn worker(5); }")
	sp := prog.Funcs[1].Body.Stmts[0].(*SpawnStmt)
	if sp.Callee != "worker" || len(sp.Args) != 1 {
		t.Fatalf("spawn = %+v", sp)
	}
}

func TestParseIntrinsicArity(t *testing.T) {
	if _, err := Parse("fn f() { persist(1); }"); err == nil {
		t.Fatal("wrong intrinsic arity accepted")
	}
	if _, err := Parse("fn f(p) { persist(p, 1); }"); err != nil {
		t.Fatalf("correct arity rejected: %v", err)
	}
}

func TestParseRejectsIntrinsicRedefinition(t *testing.T) {
	if _, err := Parse("fn pmalloc(n) { return 0; }"); err == nil {
		t.Fatal("redefinition of intrinsic accepted")
	}
}

func TestParseRejectsDuplicates(t *testing.T) {
	if _, err := Parse("fn f() { } fn f() { }"); err == nil {
		t.Fatal("duplicate function accepted")
	}
	if _, err := Parse("var g; var g;"); err == nil {
		t.Fatal("duplicate global accepted")
	}
}

func TestParseRejectsBadAssignTarget(t *testing.T) {
	if _, err := Parse("fn f() { 3 = 4; }"); err == nil {
		t.Fatal("assignment to literal accepted")
	}
	if _, err := Parse("fn f() { f() = 4; }"); err == nil {
		t.Fatal("assignment to call accepted")
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("fn f() {\n  var = 3;\n}")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestParseUnclosedBlock(t *testing.T) {
	if _, err := Parse("fn f() { var x = 1;"); err == nil {
		t.Fatal("unclosed block accepted")
	}
}

func TestParseShortCircuitOps(t *testing.T) {
	prog := MustParse("fn f(a, b, c) { return a && b || c; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or := ret.X.(*BinaryExpr)
	if or.Op != PipePipe {
		t.Fatalf("top = %v, want ||", or.Op)
	}
	if and := or.L.(*BinaryExpr); and.Op != AmpAmp {
		t.Fatalf("left = %v, want &&", and.Op)
	}
}

func TestParseNegativeLiteralFold(t *testing.T) {
	prog := MustParse("fn f() { return -9223372036854775808; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	n, ok := ret.X.(*NumLit)
	if !ok || n.Val != -9223372036854775808 {
		t.Fatalf("ret = %#v", ret.X)
	}
}

func TestFuncLookup(t *testing.T) {
	prog := MustParse("fn a() { } fn b() { }")
	if prog.Func("b") == nil || prog.Func("missing") != nil {
		t.Fatal("Func lookup broken")
	}
}

// --- Print / round-trip ---

const roundTripSrc = `
var counter;
var limit = 100;

fn hash(k) {
    return ((k * 2654435761) >> 3) & 1023;
}

fn put(tab, k, v) {
    var b = tab[hash(k) % 16];
    while (b != 0) {
        if (b[0] == k) {
            b[1] = v;
            persist(b, 2);
            return 1;
        }
        b = b[2];
    }
    var n = pmalloc(3);
    n[0] = k;
    n[1] = v;
    n[2] = tab[hash(k) % 16];
    persist(n, 3);
    return 0;
}

fn main() {
    var t = pmalloc(16);
    setroot(0, t);
    spawn put(t, 1, 2);
    yield();
    if (counter > limit || !(counter == 0)) {
        fail(1);
    } else {
        assert(counter <= limit);
    }
    return ~counter + -5;
}
`

func TestPrintRoundTrip(t *testing.T) {
	p1 := MustParse(roundTripSrc)
	text := Print(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("printed source does not reparse: %v\n%s", err, text)
	}
	// Compare via a second print: print(parse(print(p))) == print(p).
	if Print(p2) != text {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, Print(p2))
	}
}

// Property: for random expression trees, ExprString -> parse -> ExprString is
// the identity.
func TestPropExprRoundTrip(t *testing.T) {
	ops := []Kind{Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Shl, Shr,
		Lt, Le, Gt, Ge, EqEq, NotEq, AmpAmp, PipePipe}
	var build func(seed int64, depth int) Expr
	build = func(seed int64, depth int) Expr {
		if depth <= 0 || seed%5 == 0 {
			if seed%2 == 0 {
				return &NumLit{Val: seed % 1000}
			}
			return &Ident{Name: "x"}
		}
		switch seed % 4 {
		case 0:
			return &UnaryExpr{Op: []Kind{Minus, Not, Tilde}[int(uint64(seed)%3)], X: build(seed/3, depth-1)}
		case 1:
			return &IndexExpr{Base: &Ident{Name: "p"}, Idx: build(seed/3, depth-1)}
		case 2:
			return &CallExpr{Callee: "h", Args: []Expr{build(seed/3, depth-1)}}
		default:
			op := ops[int(uint64(seed)%uint64(len(ops)))]
			return &BinaryExpr{Op: op, L: build(seed/3, depth-1), R: build(seed/7, depth-1)}
		}
	}
	f := func(seed int64) bool {
		e := build(seed, 4)
		s1 := ExprString(e)
		src := "fn f(x, p) { return " + s1 + "; }"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("parse failed for %q: %v", s1, err)
			return false
		}
		ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
		// Unary minus of a literal folds; renormalize by re-printing a reparse.
		s2 := ExprString(ret.X)
		prog2, err := Parse("fn f(x, p) { return " + s2 + "; }")
		if err != nil {
			return false
		}
		s3 := ExprString(prog2.Funcs[0].Body.Stmts[0].(*ReturnStmt).X)
		return s2 == s3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
