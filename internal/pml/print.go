package pml

import (
	"fmt"
	"strings"
)

// Print renders a Program back to PML source. The output reparses to an
// equivalent program (used by round-trip property tests and cmd/pmlc -fmt).
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		if g.Init != 0 {
			fmt.Fprintf(&b, "var %s = %d;\n", g.Name, g.Init)
		} else {
			fmt.Fprintf(&b, "var %s;\n", g.Name)
		}
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, f)
	}
	return b.String()
}

func printFunc(b *strings.Builder, f *FuncDecl) {
	fmt.Fprintf(b, "fn %s(%s) ", f.Name, strings.Join(f.Params, ", "))
	printBlock(b, f.Body, 0)
	b.WriteString("\n")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *BlockStmt:
		printBlock(b, s, depth)
		b.WriteString("\n")
	case *VarStmt:
		if s.Init != nil {
			fmt.Fprintf(b, "var %s = %s;\n", s.Name, ExprString(s.Init))
		} else {
			fmt.Fprintf(b, "var %s;\n", s.Name)
		}
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", ExprString(s.LHS), ExprString(s.RHS))
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", ExprString(s.X))
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", ExprString(s.Cond))
		printBlock(b, s.Then, depth)
		for s.Else != nil {
			if elseIf, ok := s.Else.(*IfStmt); ok {
				fmt.Fprintf(b, " else if (%s) ", ExprString(elseIf.Cond))
				printBlock(b, elseIf.Then, depth)
				s = elseIf
				continue
			}
			b.WriteString(" else ")
			printBlock(b, s.Else.(*BlockStmt), depth)
			break
		}
		b.WriteString("\n")
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", ExprString(s.Cond))
		printBlock(b, s.Body, depth)
		b.WriteString("\n")
	case *BreakStmt:
		b.WriteString("break;\n")
	case *ContinueStmt:
		b.WriteString("continue;\n")
	case *ReturnStmt:
		if s.X != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(s.X))
		} else {
			b.WriteString("return;\n")
		}
	case *SpawnStmt:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = ExprString(a)
		}
		fmt.Fprintf(b, "spawn %s(%s);\n", s.Callee, strings.Join(args, ", "))
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */;\n", s)
	}
}

var opText = map[Kind]string{
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Shl: "<<", Shr: ">>",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", EqEq: "==", NotEq: "!=",
	AmpAmp: "&&", PipePipe: "||", Not: "!", Tilde: "~",
}

// ExprString renders an expression with full parenthesization (always
// reparses to the same tree regardless of precedence).
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *NumLit:
		return fmt.Sprintf("%d", e.Val)
	case *Ident:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", parenUnlessSimple(e.Base), ExprString(e.Idx))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Callee, strings.Join(args, ", "))
	case *UnaryExpr:
		return fmt.Sprintf("%s(%s)", opText[e.Op], ExprString(e.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), opText[e.Op], ExprString(e.R))
	}
	return fmt.Sprintf("/*%T*/", e)
}

func parenUnlessSimple(e Expr) string {
	switch e.(type) {
	case *Ident, *NumLit, *IndexExpr, *CallExpr:
		return ExprString(e)
	}
	return "(" + ExprString(e) + ")"
}
