// Package pml implements the front-end for PML (Persistent Memory Language),
// the small C-like language the target PM systems in this repository are
// written in.
//
// PML stands in for the C sources the paper's Arthas analyzer consumes via
// LLVM: it has functions, 64-bit integer locals and globals, pointers (plain
// integers indexing a word-addressed memory), while/if control flow, and
// intrinsics mirroring the PMDK surface Arthas hooks (pmalloc/pfree/persist/
// txbegin/txcommit/setroot/getroot) plus volatile allocation, cooperative
// threading, and the recovery-annotation API from §4.7 of the paper.
package pml

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// keywords
	KwFn
	KwVar
	KwIf
	KwElse
	KwWhile
	KwBreak
	KwContinue
	KwReturn
	KwSpawn

	// punctuation
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon

	// operators
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp      // &
	Pipe     // |
	Caret    // ^
	Shl      // <<
	Shr      // >>
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	AmpAmp   // &&
	PipePipe // ||
	Not      // !
	Tilde    // ~
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwFn: "'fn'", KwVar: "'var'", KwIf: "'if'", KwElse: "'else'",
	KwWhile: "'while'", KwBreak: "'break'", KwContinue: "'continue'",
	KwReturn: "'return'", KwSpawn: "'spawn'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semicolon: "';'",
	Assign: "'='", Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
	Percent: "'%'", Amp: "'&'", Pipe: "'|'", Caret: "'^'",
	Shl: "'<<'", Shr: "'>>'", Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='",
	EqEq: "'=='", NotEq: "'!='", AmpAmp: "'&&'", PipePipe: "'||'",
	Not: "'!'", Tilde: "'~'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"fn":       KwFn,
	"var":      KwVar,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"spawn":    KwSpawn,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier text or number literal
	Val  int64  // parsed value for NUMBER
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
