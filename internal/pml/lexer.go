package pml

import (
	"fmt"
	"strconv"
)

// Lexer turns PML source text into tokens. It supports //-comments,
// decimal and 0x-hex integer literals, and negative numbers via the
// parser's unary minus.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRest(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentRest(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			for l.off < len(l.src) && isHex(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		digits := text
		if base == 16 {
			digits = text[2:]
			if digits == "" {
				return Token{}, fmt.Errorf("%v: malformed hex literal %q", pos, text)
			}
		}
		// Parse as unsigned so full-width constants like 0xffffffffffffffff work,
		// then reinterpret as int64 (two's complement), matching C semantics.
		u, err := strconv.ParseUint(digits, base, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%v: bad number %q: %v", pos, text, err)
		}
		return Token{Kind: NUMBER, Text: text, Val: int64(u), Pos: pos}, nil
	}

	l.advance()
	two := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) { return Token{Kind: k, Pos: pos}, nil }

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semicolon)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '^':
		return one(Caret)
	case '~':
		return one(Tilde)
	case '&':
		if l.peek() == '&' {
			return two(AmpAmp)
		}
		return one(Amp)
	case '|':
		if l.peek() == '|' {
			return two(PipePipe)
		}
		return one(Pipe)
	case '<':
		if l.peek() == '<' {
			return two(Shl)
		}
		if l.peek() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek() == '>' {
			return two(Shr)
		}
		if l.peek() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if l.peek() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '!':
		if l.peek() == '=' {
			return two(NotEq)
		}
		return one(Not)
	}
	return Token{}, fmt.Errorf("%v: unexpected character %q", pos, string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize lexes the whole input, returning all tokens up to and including EOF.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
