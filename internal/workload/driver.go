package workload

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arthas/internal/obs"
)

// Driver promotes the op-list generator into a closed-loop load driver:
// N concurrent clients each run their own deterministically seeded operation
// stream against a target, measuring per-op latency and classifying errors
// without stopping the loop (a shard refusing traffic must not stall its
// siblings' clients). This is the serving-fleet counterpart of Runner, which
// remains the single-threaded abort-on-error harness of the overhead
// experiments (§6.7).
type Driver struct {
	// Clients is the number of concurrent closed-loop clients (default 1).
	Clients int
	// OpsPerClient is each client's operation count (default Shape.Ops,
	// then 1000).
	OpsPerClient int
	// Shape is the workload shape. Shape.Seed is the base seed: client c
	// runs the stream generated from deriveSeed(Shape.Seed, c), so the
	// full set of streams is a pure function of (Shape, Clients,
	// OpsPerClient).
	Shape Config
	// Do executes one operation for one client. Required.
	Do func(client int, op Op) error
	// Obs, when non-nil, receives per-op latency ("workload.op.us" plus a
	// per-kind "workload.<kind>.us" histogram) and op/error counters. Must
	// be concurrency-safe (obs.Recorder is).
	Obs obs.Sink
	// Tick, when non-nil, runs after every completed operation with the
	// fleet-wide completed count — the hook mid-run fault injection hangs
	// off (and the pmCRIU-style snapshot cadence before it). Called
	// concurrently from client goroutines.
	Tick func(done int)
	// ErrClass, when non-nil, buckets errors for the report (e.g.
	// "unavailable" vs "trap"). Unclassified errors bucket as "error".
	ErrClass func(error) string
	// StopOnErr aborts a client's loop at its first error (Runner
	// semantics). The default keeps driving: closed-loop serving clients
	// retry around failures.
	StopOnErr bool
	// MaxRetries re-issues an operation whose error is retryable — one
	// carrying a RetryAfter hint (fleet.UnavailableError, HTTP 503 +
	// Retry-After) — up to this many times before counting the error.
	// Each retry sleeps the hinted duration scaled by deterministic
	// seeded jitter ([0.5, 1.5), derived from the client and op index) and
	// doubled per attempt, so a recovering shard is not hammered in
	// lockstep by every client at once. 0 (the default) disables retries,
	// keeping reports byte-identical with pre-retry drivers.
	MaxRetries int
}

// RetryAfterer is the error contract retries key off: an error that knows
// how long the caller should back off. fleet.UnavailableError implements it;
// HTTP clients can adapt a 503's Retry-After header to it.
type RetryAfterer interface {
	RetryAfter() time.Duration
}

// retryDelay computes the backoff before retry attempt (1-based): the hint
// doubled per attempt, scaled by jitter in [0.5, 1.5) from the given
// deterministic seed.
func retryDelay(hint time.Duration, attempt int, seed uint64) time.Duration {
	if hint <= 0 {
		hint = time.Millisecond
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	base := hint << uint(shift)
	// splitmix64 finalizer over (seed, attempt) → jitter in [0.5, 1.5).
	z := seed + 0x9e3779b97f4a7c15*uint64(attempt)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(base) * (0.5 + frac))
}

// ErrCount is one error class tally (sorted by class in reports).
type ErrCount struct {
	Class string `json:"class"`
	N     int64  `json:"n"`
}

// DriverReport summarizes one closed-loop run.
type DriverReport struct {
	Clients      int   `json:"clients"`
	OpsPerClient int   `json:"ops_per_client"`
	Done         int64 `json:"done"`
	Errors       int64 `json:"errors"`
	// Retries counts re-issues of retryable (Retry-After-hinted) failures;
	// an op that eventually succeeds after retries is NOT an error.
	Retries   int64         `json:"retries,omitempty"`
	ErrCounts []ErrCount    `json:"err_counts,omitempty"`
	Elapsed   time.Duration `json:"-"`
	ElapsedMS float64       `json:"elapsed_ms"`
	OpsPerSec float64       `json:"ops_per_sec"`
	P50US     float64       `json:"p50_us"`
	P99US     float64       `json:"p99_us"`

	// Latency is the merged per-op latency histogram (microseconds).
	Latency obs.Hist `json:"-"`
}

// deriveSeed gives client c its private stream seed via a splitmix64 step,
// so neighboring clients get uncorrelated streams from one base seed.
func deriveSeed(base uint64, c int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(c+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ClientStream returns the operation stream client c runs — exposed so
// benchmarks can derive routing digests from the exact streams without
// executing them.
func (d *Driver) ClientStream(c int) []Op {
	shape := d.Shape
	shape.Ops = d.opsPerClient()
	shape.Seed = deriveSeed(d.Shape.Seed, c)
	return Generate(shape)
}

func (d *Driver) clients() int {
	if d.Clients < 1 {
		return 1
	}
	return d.Clients
}

func (d *Driver) opsPerClient() int {
	if d.OpsPerClient > 0 {
		return d.OpsPerClient
	}
	if d.Shape.Ops > 0 {
		return d.Shape.Ops
	}
	return 1000
}

// clientResult is one client's private tallies, merged after the run so the
// hot loop takes no shared locks beyond the sink's own.
type clientResult struct {
	done    int64
	nerrs   int64
	retries int64
	errs    map[string]int64
	lat     obs.Hist
	kinds   [4]obs.Hist
}

// Run drives every client to completion and returns the merged report.
func (d *Driver) Run() *DriverReport {
	nc := d.clients()
	sink := obs.OrNop(d.Obs)
	instrumented := obs.Enabled(sink)

	results := make([]clientResult, nc)
	var total atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.errs = map[string]int64{}
			seed := deriveSeed(d.Shape.Seed, c)
			for _, op := range d.ClientStream(c) {
				t0 := time.Now()
				err := d.Do(c, op)
				// Refusals carrying a Retry-After hint are re-driven with
				// jittered exponential backoff; the op's latency then spans
				// all attempts (the client-observed service time).
				for attempt := 1; err != nil && attempt <= d.MaxRetries; attempt++ {
					var ra RetryAfterer
					if !errors.As(err, &ra) {
						break
					}
					time.Sleep(retryDelay(ra.RetryAfter(), attempt, seed^uint64(res.done)))
					res.retries++
					err = d.Do(c, op)
				}
				us := float64(time.Since(t0).Microseconds())
				res.lat.Add(us)
				res.kinds[op.Kind].Add(us)
				if instrumented {
					sink.Observe("workload.op.us", us)
					sink.Observe("workload."+kindName(op.Kind)+".us", us)
				}
				res.done++
				if err != nil {
					res.nerrs++
					class := "error"
					if d.ErrClass != nil {
						class = d.ErrClass(err)
					}
					res.errs[class]++
					if d.StopOnErr {
						break
					}
				}
				if d.Tick != nil {
					d.Tick(int(total.Add(1)))
				} else {
					total.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &DriverReport{Clients: nc, OpsPerClient: d.opsPerClient(), Elapsed: elapsed}
	errs := map[string]int64{}
	for c := range results {
		res := &results[c]
		rep.Done += res.done
		rep.Errors += res.nerrs
		rep.Retries += res.retries
		rep.Latency.Merge(&res.lat)
		for class, n := range res.errs {
			errs[class] += n
		}
	}
	for class, n := range errs {
		rep.ErrCounts = append(rep.ErrCounts, ErrCount{Class: class, N: n})
	}
	sort.Slice(rep.ErrCounts, func(i, j int) bool { return rep.ErrCounts[i].Class < rep.ErrCounts[j].Class })
	rep.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Done) / elapsed.Seconds()
	}
	rep.P50US = rep.Latency.Quantile(0.5)
	rep.P99US = rep.Latency.Quantile(0.99)

	if instrumented {
		sink.Count("workload.op", rep.Done)
		sink.Count("workload.err", rep.Errors)
		if rep.Retries > 0 {
			sink.Count("workload.retry", rep.Retries)
		}
	}
	return rep
}

func kindName(k OpKind) string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	default:
		return "delete"
	}
}
