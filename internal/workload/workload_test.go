package workload

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(WorkloadA(1000, 100, 7))
	b := Generate(WorkloadA(1000, 100, 7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(WorkloadA(1000, 100, 8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWorkloadAMix(t *testing.T) {
	ops := Generate(WorkloadA(20000, 500, 3))
	reads := 0
	for _, op := range ops {
		if op.Kind == OpRead {
			reads++
		}
	}
	pct := 100 * float64(reads) / float64(len(ops))
	if pct < 44 || pct > 56 {
		t.Fatalf("read pct = %.1f, want ~50", pct)
	}
}

func TestInsertOnly(t *testing.T) {
	ops := Generate(InsertOnly(100, 1))
	for i, op := range ops {
		if op.Kind != OpInsert {
			t.Fatalf("op %d kind = %v", i, op.Kind)
		}
		if op.Key != int64(i+1) {
			t.Fatalf("op %d key = %d, want ascending", i, op.Key)
		}
	}
}

func TestKeysInRange(t *testing.T) {
	cfg := WorkloadA(5000, 200, 11)
	for _, op := range Generate(cfg) {
		if op.Kind == OpInsert {
			continue // fresh keys may exceed the initial space
		}
		if op.Key < 1 || op.Key > int64(cfg.Keys) {
			t.Fatalf("key %d out of [1,%d]", op.Key, cfg.Keys)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99, 42)
	counts := map[int64]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Zipf 0.99 over 1000 keys: the hottest key draws a few percent of all
	// accesses; the top-10 keys together far exceed a uniform share.
	top10 := 0
	for k := int64(1); k <= 10; k++ {
		top10 += counts[k]
	}
	uniformShare := float64(n) * 10 / 1000
	if float64(top10) < 5*uniformShare {
		t.Fatalf("top-10 share = %d, want heavy skew (uniform would be %.0f)", top10, uniformShare)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(100, 0, 9)
	counts := map[int64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k := int64(1); k <= 100; k++ {
		share := float64(counts[k]) / float64(n)
		if share < 0.003 || share > 0.03 {
			t.Fatalf("key %d share = %.4f, want ~0.01", k, share)
		}
	}
}

func TestPowApprox(t *testing.T) {
	cases := []struct{ base, exp float64 }{
		{2, 1}, {2, 2}, {10, 0.5}, {3, 0.99}, {7, 1.5}, {1.5, 0.25},
	}
	for _, c := range cases {
		got := pow(c.base, c.exp)
		want := math.Pow(c.base, c.exp)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("pow(%v, %v) = %v, want %v", c.base, c.exp, got, want)
		}
	}
}

func TestRunnerDispatch(t *testing.T) {
	var reads, updates, inserts, deletes int
	r := &Runner{
		Read:   func(int64) error { reads++; return nil },
		Update: func(int64, int64) error { updates++; return nil },
		Insert: func(int64, int64) error { inserts++; return nil },
		Delete: func(int64) error { deletes++; return nil },
	}
	cfg := WorkloadA(2000, 100, 5)
	cfg.DeletePM = 20
	n, err := r.Run(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("ran %d", n)
	}
	if reads == 0 || updates == 0 || inserts == 0 || deletes == 0 {
		t.Fatalf("dispatch counts: r=%d u=%d i=%d d=%d", reads, updates, inserts, deletes)
	}
}

func TestRunnerStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	r := &Runner{Insert: func(int64, int64) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	}}
	n, err := r.Run(Generate(InsertOnly(10, 1)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2 completed", n)
	}
}

// Property: generation is a pure function of its config.
func TestPropGenerationPure(t *testing.T) {
	f := func(seed uint64, opsRaw, keysRaw uint16) bool {
		ops := int(opsRaw%500) + 1
		keys := int(keysRaw%200) + 1
		a := Generate(WorkloadA(ops, keys, seed))
		b := Generate(WorkloadA(ops, keys, seed))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
