package workload

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"arthas/internal/obs"
)

func TestDriverStreamsDeterministic(t *testing.T) {
	d1 := &Driver{Clients: 4, OpsPerClient: 500, Shape: WorkloadA(0, 100, 42)}
	d2 := &Driver{Clients: 4, OpsPerClient: 500, Shape: WorkloadA(0, 100, 42)}
	for c := 0; c < 4; c++ {
		a, b := d1.ClientStream(c), d2.ClientStream(c)
		if len(a) != 500 || len(b) != 500 {
			t.Fatalf("client %d stream len = %d/%d, want 500", c, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("client %d op %d differs: %+v vs %+v", c, i, a[i], b[i])
			}
		}
	}
	// Distinct clients must not replay each other's stream.
	a, b := d1.ClientStream(0), d1.ClientStream(1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clients 0 and 1 generated identical streams")
	}
}

func TestDriverClosedLoop(t *testing.T) {
	var mu sync.Mutex
	perClient := map[int]int{}
	rec := obs.NewRecorder()
	var ticks int
	var tickMu sync.Mutex
	d := &Driver{
		Clients:      3,
		OpsPerClient: 200,
		Shape:        WorkloadA(0, 50, 7),
		Obs:          rec,
		Do: func(c int, op Op) error {
			mu.Lock()
			perClient[c]++
			mu.Unlock()
			return nil
		},
		Tick: func(done int) {
			tickMu.Lock()
			ticks++
			tickMu.Unlock()
		},
	}
	rep := d.Run()
	if rep.Done != 600 || rep.Errors != 0 {
		t.Fatalf("done=%d errors=%d, want 600/0", rep.Done, rep.Errors)
	}
	if ticks != 600 {
		t.Fatalf("ticks = %d, want 600", ticks)
	}
	for c := 0; c < 3; c++ {
		if perClient[c] != 200 {
			t.Fatalf("client %d ran %d ops, want 200", c, perClient[c])
		}
	}
	if rep.Latency.Count != 600 {
		t.Fatalf("latency samples = %d, want 600", rep.Latency.Count)
	}
	if rep.P99US < rep.P50US {
		t.Fatalf("p99 %g < p50 %g", rep.P99US, rep.P50US)
	}
	if h := rec.Histogram("workload.op.us"); h == nil || h.Count != 600 {
		t.Fatalf("sink hist = %+v, want 600 samples", h)
	}
	if got := rec.CounterValue("workload.op"); got != 600 {
		t.Fatalf("workload.op counter = %d, want 600", got)
	}
	if rep.OpsPerSec <= 0 || rep.ElapsedMS < 0 {
		t.Fatalf("throughput digest: %+v", rep)
	}
}

func TestDriverErrorClassification(t *testing.T) {
	unavailable := errors.New("shard unavailable")
	d := &Driver{
		Clients:      2,
		OpsPerClient: 100,
		Shape:        WorkloadA(0, 20, 3),
		Do: func(c int, op Op) error {
			if op.Kind == OpRead {
				return unavailable
			}
			if op.Kind == OpDelete {
				return errors.New("boom")
			}
			return nil
		},
		ErrClass: func(err error) string {
			if errors.Is(err, unavailable) {
				return "unavailable"
			}
			return "trap"
		},
	}
	rep := d.Run()
	if rep.Done != 200 {
		t.Fatalf("done = %d, want 200 (closed loop must not stop on errors)", rep.Done)
	}
	if rep.Errors == 0 {
		t.Fatal("no errors recorded")
	}
	var total int64
	for _, ec := range rep.ErrCounts {
		if ec.Class != "unavailable" && ec.Class != "trap" {
			t.Fatalf("unexpected class %q", ec.Class)
		}
		total += ec.N
	}
	if total != rep.Errors {
		t.Fatalf("class tallies %d != errors %d", total, rep.Errors)
	}
}

func TestDriverStopOnErr(t *testing.T) {
	calls := 0
	d := &Driver{
		OpsPerClient: 100,
		Shape:        InsertOnly(0, 1),
		StopOnErr:    true,
		Do: func(c int, op Op) error {
			calls++
			if calls == 5 {
				return errors.New("fatal")
			}
			return nil
		},
	}
	rep := d.Run()
	if calls != 5 || rep.Done != 5 || rep.Errors != 1 {
		t.Fatalf("stop-on-err: calls=%d done=%d errors=%d, want 5/5/1", calls, rep.Done, rep.Errors)
	}
}

// TestRunnerErrorPath covers Runner.Run's abort-on-first-error branch: the
// returned count is the index of the failing op and later ops never run.
func TestRunnerErrorPath(t *testing.T) {
	var applied []Op
	boom := errors.New("boom")
	r := &Runner{
		Insert: func(k, v int64) error {
			if k == 3 {
				return fmt.Errorf("insert %d: %w", k, boom)
			}
			applied = append(applied, Op{Kind: OpInsert, Key: k, Value: v})
			return nil
		},
	}
	ops := Generate(InsertOnly(10, 1)) // keys 1..10 ascending
	n, err := r.Run(ops)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want index 2 of the failing op", n)
	}
	if len(applied) != 2 {
		t.Fatalf("%d ops applied after error, want 2", len(applied))
	}
}

// TestRunnerLatencyCapture covers the new Obs wiring: per-op latency lands
// in workload.op.us with per-kind splits, and quantiles are readable.
func TestRunnerLatencyCapture(t *testing.T) {
	rec := obs.NewRecorder()
	nop := func(...int64) error { return nil }
	r := &Runner{
		Read:   func(k int64) error { return nop(k) },
		Update: func(k, v int64) error { return nop(k, v) },
		Insert: func(k, v int64) error { return nop(k, v) },
		Delete: func(k int64) error { return nop(k) },
		Obs:    rec,
	}
	ops := Generate(WorkloadA(500, 50, 9))
	if _, err := r.Run(ops); err != nil {
		t.Fatal(err)
	}
	h := rec.Histogram("workload.op.us")
	if h == nil || h.Count != 500 {
		t.Fatalf("workload.op.us = %+v, want 500 samples", h)
	}
	if got := rec.CounterValue("workload.op"); got != 500 {
		t.Fatalf("workload.op = %d, want 500", got)
	}
	if rec.Histogram("workload.read.us") == nil {
		t.Fatal("no per-kind read latency histogram")
	}
	if p99 := rec.Quantile("workload.op.us", 0.99); p99 < rec.Quantile("workload.op.us", 0.5) {
		t.Fatal("p99 below p50")
	}
}

// retryableErr implements the RetryAfterer contract the fleet's
// UnavailableError carries.
type retryableErr struct{ after time.Duration }

func (e *retryableErr) Error() string             { return "unavailable, retry later" }
func (e *retryableErr) RetryAfter() time.Duration { return e.after }

// TestDriverRetriesRetryAfter: a refusal carrying a Retry-After hint is
// re-driven with backoff up to MaxRetries; an op that eventually succeeds
// counts as done with retries, not as an error.
func TestDriverRetriesRetryAfter(t *testing.T) {
	var mu sync.Mutex
	fails := map[int64]int{}
	d := &Driver{
		Clients:      2,
		OpsPerClient: 50,
		Shape:        WorkloadA(0, 20, 7),
		MaxRetries:   3,
		Do: func(c int, op Op) error {
			mu.Lock()
			defer mu.Unlock()
			// Every op routed to an "unavailable window" key fails twice with
			// a retry hint, then succeeds.
			if op.Key%5 == 0 && fails[op.Key] < 2 {
				fails[op.Key]++
				return &retryableErr{after: 50 * time.Microsecond}
			}
			return nil
		},
	}
	rep := d.Run()
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (all refusals retried through)", rep.Errors)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if rep.Done != 100 {
		t.Fatalf("done = %d, want 100", rep.Done)
	}
}

// TestDriverRetryBudgetExhausted: a permanently refusing target still
// surfaces the error after MaxRetries attempts.
func TestDriverRetryBudgetExhausted(t *testing.T) {
	attempts := 0
	d := &Driver{
		OpsPerClient: 1,
		Shape:        InsertOnly(0, 11),
		MaxRetries:   4,
		Do: func(c int, op Op) error {
			attempts++
			return &retryableErr{after: 10 * time.Microsecond}
		},
		ErrClass: func(error) string { return "unavailable" },
	}
	rep := d.Run()
	if attempts != 5 {
		t.Fatalf("attempts = %d, want 5 (1 + 4 retries)", attempts)
	}
	if rep.Errors != 1 || rep.Retries != 4 {
		t.Fatalf("errors=%d retries=%d, want 1/4", rep.Errors, rep.Retries)
	}
}

// TestDriverNoRetryWithoutHint: MaxRetries only re-drives errors that carry
// the Retry-After contract; plain errors surface immediately.
func TestDriverNoRetryWithoutHint(t *testing.T) {
	attempts := 0
	d := &Driver{
		OpsPerClient: 1,
		Shape:        InsertOnly(0, 13),
		MaxRetries:   4,
		Do: func(c int, op Op) error {
			attempts++
			return errors.New("hard failure")
		},
	}
	rep := d.Run()
	if attempts != 1 || rep.Retries != 0 || rep.Errors != 1 {
		t.Fatalf("attempts=%d retries=%d errors=%d, want 1/0/1", attempts, rep.Retries, rep.Errors)
	}
}

// TestRetryDelayDeterministicJitter: the backoff schedule is a pure
// function of (hint, attempt, seed) and stays within the jittered
// exponential envelope.
func TestRetryDelayDeterministicJitter(t *testing.T) {
	for attempt := 1; attempt <= 8; attempt++ {
		a := retryDelay(time.Millisecond, attempt, 99)
		b := retryDelay(time.Millisecond, attempt, 99)
		if a != b {
			t.Fatalf("attempt %d: retryDelay not deterministic: %v vs %v", attempt, a, b)
		}
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		base := time.Millisecond << uint(shift)
		if a < base/2 || a >= base+base/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, a, base/2, base+base/2)
		}
	}
	if a, b := retryDelay(time.Millisecond, 1, 1), retryDelay(time.Millisecond, 1, 2); a == b {
		t.Fatal("different seeds produced identical jitter")
	}
	if d := retryDelay(0, 1, 5); d < 500*time.Microsecond {
		t.Fatalf("zero hint floor: %v", d)
	}
}
