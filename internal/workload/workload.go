// Package workload generates the benchmark workloads of the paper's
// overhead evaluation (§6.7): a YCSB-like keyed operation stream with
// configurable read/write mix and zipfian or uniform key popularity, plus
// the custom pure-insert benchmarks used for PMEMKV, Pelikan, and CCEH.
//
// The generator is deterministic (seeded xorshift PRNG) so overhead
// comparisons between deployments run identical operation streams.
package workload

import (
	"fmt"
	"time"

	"arthas/internal/obs"
)

// OpKind is a generated operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpDelete
)

func (k OpKind) String() string {
	return [...]string{"READ", "UPDATE", "INSERT", "DELETE"}[k]
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   int64
	Value int64
}

// rng is a small deterministic xorshift64* generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// Float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Zipf draws keys with zipfian popularity over [1, n] using the classic
// Gray et al. rejection-inversion-free approximation (precomputed CDF for
// moderate n, which is what the harness uses).
type Zipf struct {
	cdf []float64
	rng *rng
}

// NewZipf builds a zipfian sampler over n keys with exponent theta
// (typical YCSB theta = 0.99).
func NewZipf(n int, theta float64, seed uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{cdf: make([]float64, n), rng: newRNG(seed)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
	}
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / pow(float64(i), theta) / sum
		z.cdf[i-1] = acc
	}
	return z
}

// pow is a small positive-base power via exp/log-free iteration: it handles
// the theta in (0, ~2] range used here with binary exponentiation over the
// integer part and a sqrt-based fraction approximation.
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 1
	}
	// Integer part.
	result := 1.0
	b := base
	n := int(exp)
	for i := 0; i < n; i++ {
		result *= b
	}
	frac := exp - float64(n)
	if frac > 1e-9 {
		// Approximate base^frac by repeated square roots (8 bits).
		r := base
		acc := 1.0
		f := frac
		for i := 0; i < 20 && f > 1e-9; i++ {
			r = sqrt(r)
			f *= 2
			if f >= 1 {
				f -= 1
				acc *= r
			}
		}
		result *= acc
	}
	return result
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// Next draws a key in [1, n].
func (z *Zipf) Next() int64 {
	u := z.rng.float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}

// Config describes a YCSB-like workload.
type Config struct {
	Ops      int
	Keys     int
	ReadPct  int // percentage of reads; the rest split into updates/inserts
	Zipfian  bool
	Theta    float64
	Seed     uint64
	DeletePM int // per-mille of operations that are deletes
}

// WorkloadA returns the paper's 50/50 read-write mix (§6.7 "50% writes and
// 50% reads") over nKeys keys.
func WorkloadA(ops, nKeys int, seed uint64) Config {
	return Config{Ops: ops, Keys: nKeys, ReadPct: 50, Zipfian: true, Theta: 0.99, Seed: seed}
}

// InsertOnly returns the custom pure-insert benchmark used for PMEMKV,
// Pelikan, and CCEH.
func InsertOnly(ops int, seed uint64) Config {
	return Config{Ops: ops, Keys: ops, ReadPct: 0, Seed: seed}
}

// Generate materializes the operation stream.
func Generate(cfg Config) []Op {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	r := newRNG(cfg.Seed)
	var z *Zipf
	if cfg.Zipfian {
		z = NewZipf(cfg.Keys, cfg.Theta, cfg.Seed^0xabcdef)
	}
	nextInsert := int64(cfg.Keys) + 1
	ops := make([]Op, cfg.Ops)
	for i := range ops {
		var key int64
		if cfg.ReadPct == 0 && !cfg.Zipfian {
			// Pure insert benchmark: fresh ascending keys.
			ops[i] = Op{Kind: OpInsert, Key: int64(i + 1), Value: int64(i)}
			continue
		}
		if z != nil {
			key = z.Next()
		} else {
			key = int64(r.next()%uint64(cfg.Keys)) + 1
		}
		roll := int(r.next() % 1000)
		switch {
		case cfg.DeletePM > 0 && roll < cfg.DeletePM:
			ops[i] = Op{Kind: OpDelete, Key: key}
		case roll < cfg.DeletePM+cfg.ReadPct*10:
			ops[i] = Op{Kind: OpRead, Key: key}
		case roll%20 == 0:
			ops[i] = Op{Kind: OpInsert, Key: nextInsert, Value: key}
			nextInsert++
		default:
			ops[i] = Op{Kind: OpUpdate, Key: key, Value: int64(i)}
		}
	}
	return ops
}

// Runner executes generated operations against a target system's typed API.
type Runner struct {
	Read   func(k int64) error
	Update func(k, v int64) error
	Insert func(k, v int64) error
	Delete func(k int64) error
	// Obs, when non-nil, receives per-op latency — "workload.op.us" plus a
	// per-kind "workload.<kind>.us" histogram — and an op counter, so
	// overhead runs get p50/p99 alongside their aggregate throughput. The
	// nil default keeps the hot loop free of timing calls.
	Obs obs.Sink
}

// Run applies every operation, returning the count executed and the first
// error (operations after an error are skipped).
func (r *Runner) Run(ops []Op) (int, error) {
	instrumented := obs.Enabled(r.Obs)
	for i, op := range ops {
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		var err error
		switch op.Kind {
		case OpRead:
			if r.Read != nil {
				err = r.Read(op.Key)
			}
		case OpUpdate:
			if r.Update != nil {
				err = r.Update(op.Key, op.Value)
			}
		case OpInsert:
			if r.Insert != nil {
				err = r.Insert(op.Key, op.Value)
			}
		case OpDelete:
			if r.Delete != nil {
				err = r.Delete(op.Key)
			}
		}
		if instrumented {
			us := float64(time.Since(t0).Microseconds())
			r.Obs.Observe("workload.op.us", us)
			r.Obs.Observe("workload."+kindName(op.Kind)+".us", us)
			r.Obs.Count("workload.op", 1)
		}
		if err != nil {
			return i, fmt.Errorf("op %d (%v key %d): %w", i, op.Kind, op.Key, err)
		}
	}
	return len(ops), nil
}
