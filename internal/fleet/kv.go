package fleet

// KVSource is the default PML system a fleet shard runs: a chained-hashtable
// KV store whose items carry a per-item logical checksum (CHK = VAL ^ kvMagic,
// persisted together with the value). The checksum is what turns a silently
// corrupted value — a hard fault in the paper's §2.4 hardware model, injected
// with Fleet.InjectFault — into a trapping failure the detector can observe
// and the per-shard reactor can mitigate online: `get` asserts the pair
// matches before returning, so a flipped value word faults every lookup of
// that key, across restarts, until the checkpoint log reverts it.
//
// Layout:
//
//	root: 0 TAB  1 NBUCKETS  2 NITEMS
//	item: 0 KEY  1 VAL  2 CHK  3 NEXT
//
// Serving functions follow the fleet's Funcs conventions: get/put/del for
// routed client requests, locate for fault injection (it reads only KEY and
// NEXT, so a corrupted value never blocks injection or unlinking), sum as
// the checksum-validating state digest determinism tests compare, count and
// recover_ for restart bookkeeping.
const KVSource = `
// fleet kv shard: chained hashtable with per-item value checksums.
//
// root: 0 TAB  1 NBUCKETS  2 NITEMS
// item: 0 KEY  1 VAL  2 CHK  3 NEXT   (CHK = VAL ^ 776531419)

fn init_() {
    var root = pmalloc(4);
    var tab = pmalloc(64);
    root[0] = tab;
    root[1] = 64;
    root[2] = 0;
    persist(root, 3);
    persist(tab, 64);
    setroot(0, root);
    return 0;
}

fn locate(k) {
    var root = getroot(0);
    var tab = root[0];
    var it = tab[k % root[1]];
    while (it != 0) {
        if (it[0] == k) {
            return it;
        }
        it = it[3];
    }
    return 0;
}

fn put(k, v) {
    var root = getroot(0);
    var it = locate(k);
    if (it != 0) {
        it[1] = v;
        it[2] = v ^ 776531419;
        persist(it + 1, 2);
        return 0;
    }
    it = pmalloc(4);
    it[0] = k;
    it[1] = v;
    it[2] = v ^ 776531419;
    var tab = root[0];
    var b = k % root[1];
    it[3] = tab[b];
    persist(it, 4);
    tab[b] = it;
    persist(tab + b, 1);
    root[2] = root[2] + 1;
    persist(root + 2, 1);
    return 1;
}

fn get(k) {
    var it = locate(k);
    if (it == 0) {
        return -1;
    }
    assert((it[1] ^ 776531419) == it[2]);
    return it[1];
}

fn del(k) {
    var root = getroot(0);
    var tab = root[0];
    var b = k % root[1];
    var it = tab[b];
    var prev = 0;
    while (it != 0) {
        if (it[0] == k) {
            if (prev == 0) {
                tab[b] = it[3];
                persist(tab + b, 1);
            } else {
                prev[3] = it[3];
                persist(prev + 3, 1);
            }
            pfree(it);
            root[2] = root[2] - 1;
            persist(root + 2, 1);
            return 1;
        }
        prev = it;
        it = it[3];
    }
    return 0;
}

fn count() {
    var root = getroot(0);
    return root[2];
}

fn sum() {
    var root = getroot(0);
    var tab = root[0];
    var b = 0;
    var s = 0;
    while (b < root[1]) {
        var it = tab[b];
        while (it != 0) {
            assert((it[1] ^ 776531419) == it[2]);
            s = s + it[1];
            it = it[3];
        }
        b = b + 1;
    }
    return s;
}

fn recover_() {
    recover_begin();
    var root = getroot(0);
    var tab = root[0];
    var b = 0;
    var n = 0;
    while (b < root[1]) {
        var it = tab[b];
        while (it != 0) {
            n = n + 1;
            it = it[3];
        }
        b = b + 1;
    }
    recover_end();
    return n;
}
`
