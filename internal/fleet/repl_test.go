package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newReplFleet builds a replica-backed fleet with a tight lag bound so the
// standby trails by at most a few records.
func newReplFleet(t *testing.T, shards int, mut func(*Config)) *Fleet {
	t.Helper()
	return newTestFleet(t, shards, func(c *Config) {
		c.Replicas = true
		c.ReplMaxLag = 4
		if mut != nil {
			mut(c)
		}
	})
}

// TestFailoverPastMitigation is the tentpole E2E: a hard fault whose
// mitigation is forced to fail (chaos drill) promotes the shard's replica
// instead of leaving it Failed — and the promoted primary serves the
// ORIGINAL value, because the injected corruption bypassed the replication
// hooks and never reached the standby.
func TestFailoverPastMitigation(t *testing.T) {
	f := newReplFleet(t, 2, func(c *Config) { c.ChaosMitigationFail = true })
	for k := int64(1); k <= 40; k++ {
		if err := f.Put(k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	key := faultKeyFor(0, 2)
	if err := f.Put(key, 777); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectFault(key, 3); err != nil {
		t.Fatal(err)
	}

	// Strike one: transient classification, plain restart.
	_, err := f.Get(key)
	var te *TrapError
	if !errors.As(err, &te) || te.Mitigated {
		t.Fatalf("first get: %v, want un-mitigated TrapError", err)
	}
	if f.State(0) != StateServing {
		t.Fatalf("shard 0 after restart: %v", f.State(0))
	}

	// Strike two: hard fault → mitigation (chaos-failed) → promotion. The
	// request is served from the promoted replica with the pre-fault value.
	v, err := f.Get(key)
	if err != nil {
		t.Fatalf("get across failover: %v", err)
	}
	if v != 777 {
		t.Fatalf("promoted replica served %d, want pre-fault 777", v)
	}
	st := f.Stats()[0]
	if st.State != "serving" || st.Promotions != 1 || st.Mitigations != 1 || st.Recovered != 0 {
		t.Fatalf("shard 0 after failover: %+v", st)
	}
	if st.Repl == nil || !st.Repl.Connected || st.Repl.Promotions != 1 {
		t.Fatalf("repl status after failover: %+v", st.Repl)
	}
	// The whole keyspace survived: every pre-failover write is served.
	for k := int64(1); k <= 40; k++ {
		if v, err := f.Get(k); err != nil || (RouteFor(k, 2) == 0 && v != k+1000) {
			if err != nil || v != k+1000 {
				t.Fatalf("get %d after failover = %d, %v", k, v, err)
			}
		}
	}
	// The promoted shard accepts writes and the digest validates checksums.
	if err := f.Put(key, 778); err != nil {
		t.Fatal(err)
	}
	if v, err := f.Get(key); err != nil || v != 778 {
		t.Fatalf("post-failover roundtrip = %d, %v", v, err)
	}
	if _, err := f.StateDigest(); err != nil {
		t.Fatalf("digest after failover: %v", err)
	}
	// Sibling untouched; fleet-level counters recorded the promotion.
	if sib := f.Stats()[1]; sib.Traps != 0 || sib.State != "serving" {
		t.Fatalf("sibling disturbed: %+v", sib)
	}
	mm := f.MergedMetrics()
	if mm.CounterValue("fleet.promotion.completed") != 1 || mm.CounterValue("fleet.chaos.mitigation_fail") != 1 {
		t.Fatalf("promotion counters: completed=%d chaos=%d",
			mm.CounterValue("fleet.promotion.completed"), mm.CounterValue("fleet.chaos.mitigation_fail"))
	}
}

// TestFailoverWithoutReplicaStillFails pins the no-regression contract: with
// replicas disabled, the chaos-failed mitigation leaves the shard Failed
// exactly as before the failover path existed.
func TestFailoverWithoutReplicaStillFails(t *testing.T) {
	f := newTestFleet(t, 2, func(c *Config) { c.ChaosMitigationFail = true })
	key := faultKeyFor(0, 2)
	if err := f.Put(key, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectFault(key, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(key); err == nil {
		t.Fatal("first strike served")
	}
	_, err := f.Get(key)
	var te *TrapError
	if !errors.As(err, &te) || !te.Mitigated {
		t.Fatalf("second get: %v, want mitigated TrapError", err)
	}
	if f.State(0) != StateFailed {
		t.Fatalf("shard 0 state %v, want failed", f.State(0))
	}
}

// TestOperatorPromoteDrill runs the /promote drill: ship, seal, cut over —
// no fault involved. Nothing may be lost and replication must re-establish
// from the promoted primary.
func TestOperatorPromoteDrill(t *testing.T) {
	f := newReplFleet(t, 2, nil)
	for k := int64(1); k <= 60; k++ {
		if err := f.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	before, err := f.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(0); err != nil {
		t.Fatal(err)
	}
	after, err := f.StateDigest()
	if err != nil {
		t.Fatalf("digest after drill: %v", err)
	}
	if before != after {
		t.Fatalf("drill changed logical state: %d vs %d", before, after)
	}
	st := f.Stats()[0]
	if st.State != "serving" || st.Promotions != 1 {
		t.Fatalf("shard 0 after drill: %+v", st)
	}
	if st.Repl == nil || !st.Repl.Connected {
		t.Fatalf("replication not re-established: %+v", st.Repl)
	}
	// A second drill works too: the promoted primary ships like the original.
	for k := int64(61); k <= 80; k++ {
		if err := f.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Promote(0); err != nil {
		t.Fatalf("second drill: %v", err)
	}
	for k := int64(1); k <= 80; k++ {
		if v, err := f.Get(k); err != nil || v != k*3 {
			t.Fatalf("get %d after two drills = %d, %v", k, v, err)
		}
	}
	if err := f.Promote(0); err == nil {
		t.Log("third drill ok")
	}
	if err := f.Promote(99); err == nil {
		t.Fatal("promote of bogus shard succeeded")
	}
}

// TestConcurrentInjectPromoteRace drives writers, fault injection, and
// promote drills concurrently (run under -race) and asserts read-your-writes
// across failovers: once a Put(k, v) succeeds, a later successful Get(k)
// must return v — promotion ships the stream before sealing, so no
// acknowledged write may vanish.
func TestConcurrentInjectPromoteRace(t *testing.T) {
	f := newReplFleet(t, 2, nil)
	const (
		writers      = 3
		keysPerW     = 8
		rounds       = 25
		drills       = 6
		injectRounds = 3
	)
	// retry drives an op until it succeeds or the attempt budget runs out,
	// honoring RetryAfter hints on refusals. Traps surface immediately for
	// writer keys (they are never injected) but are retried for fault keys
	// (the escalation heals them).
	retry := func(op func() error, retryTraps bool) error {
		var err error
		for a := 0; a < 200; a++ {
			err = op()
			if err == nil {
				return nil
			}
			var ue *UnavailableError
			if errors.As(err, &ue) {
				time.Sleep(ue.RetryAfter())
				continue
			}
			var te *TrapError
			if errors.As(err, &te) && retryTraps {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
		return err
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := map[int64]int64{}
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPerW; i++ {
					k := int64(100 + w*keysPerW + i)
					v := int64(r*1000 + w*100 + i)
					if err := retry(func() error { return f.Put(k, v) }, false); err != nil {
						errCh <- fmt.Errorf("writer %d put %d: %w", w, k, err)
						return
					}
					last[k] = v
					var got int64
					if err := retry(func() error {
						var err error
						got, err = f.Get(k)
						return err
					}, false); err != nil {
						errCh <- fmt.Errorf("writer %d get %d: %w", w, k, err)
						return
					}
					if got != last[k] {
						errCh <- fmt.Errorf("read-your-writes violated: key %d = %d, want %d", k, got, last[k])
						return
					}
				}
			}
		}(w)
	}

	// Operator drills both shards while traffic flows. "Not serving" errors
	// are expected when a drill races a trap-handling window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < drills; d++ {
			_ = retry(func() error {
				err := f.Promote(d % 2)
				if err == nil {
					return nil
				}
				var ue *UnavailableError
				if errors.As(err, &ue) {
					return ue
				}
				return nil // "not serving"/transient drill refusal: skip
			}, false)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Fault injector: corrupt dedicated keys (outside the writer keyspace)
	// and read them until the escalation — restart, then mitigation or
	// promotion — serves them again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < injectRounds; r++ {
			k := faultKeyFor(r%2, 2) + int64(r)
			if RouteFor(k, 2) != r%2 {
				continue
			}
			if err := retry(func() error { return f.Put(k, int64(5000+r)) }, true); err != nil {
				continue
			}
			if _, err := f.InjectFault(k, 2); err != nil {
				continue // shard mid-recovery: fine, try next round
			}
			var got int64
			if err := retry(func() error {
				var err error
				got, err = f.Get(k)
				return err
			}, true); err == nil && got != int64(5000+r) {
				errCh <- fmt.Errorf("healed key %d = %d, want %d", k, got, 5000+r)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Whatever interleaving happened, the fleet must end consistent: every
	// shard's digest validates its checksums.
	if err := retry(func() error {
		_, err := f.StateDigest()
		return err
	}, true); err != nil {
		t.Fatalf("final digest: %v", err)
	}
}
