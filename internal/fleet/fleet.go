// Package fleet shards a PML system across N independent arthas.Instance
// pools behind deterministic key routing, mitigating hard faults per shard
// while the siblings keep serving — the paper's single-system toolchain
// (analyzer → checkpoint → detector → reactor) promoted to a serving fleet.
//
// The unit of failure is the shard: each one owns a private PM pool,
// checkpoint log, detector history, and reactor, so a hard fault in one
// pool's state never blocks keys routed elsewhere. Requests to a shard that
// is restarting, mitigating, or scrubbing are refused immediately with
// UnavailableError (degraded-mode serving) instead of queueing behind the
// recovery; the detector's two-strikes escalation and the reactor's
// checkpoint-reversion search run inline on the serving path, exactly as the
// single-instance tools do, but scoped to one shard.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"time"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
	"arthas/internal/repl"
	"arthas/internal/workload"
)

// Funcs names the PML entry points a fleet serves. Zero values default to
// the KVSource conventions.
type Funcs struct {
	// Init builds an empty store on a fresh pool (default "init_").
	Init string
	// Recover is the annotated recovery entry run on every restart
	// (default "recover_").
	Recover string
	// Get/Put/Del serve routed reads, upserts, and deletes (defaults
	// "get", "put", "del").
	Get string
	Put string
	Del string
	// Locate resolves a key to its item's word address without validating
	// the value — the fault-injection hook (default "locate").
	Locate string
	// Sum is the checksum-validating state digest (default "sum").
	Sum string
}

func (f Funcs) withDefaults() Funcs {
	def := func(s *string, d string) {
		if *s == "" {
			*s = d
		}
	}
	def(&f.Init, "init_")
	def(&f.Recover, "recover_")
	def(&f.Get, "get")
	def(&f.Put, "put")
	def(&f.Del, "del")
	def(&f.Locate, "locate")
	def(&f.Sum, "sum")
	return f
}

// Config sizes and tunes a fleet.
type Config struct {
	// Shards is the pool count (default 1).
	Shards int
	// Source is the PML system every shard runs (default KVSource).
	Source string
	// BaseName prefixes shard instance names: "<BaseName>-shard<N>"
	// (default "fleet").
	BaseName string
	// PoolWords sizes each shard's pool (arthas.Config default when 0).
	PoolWords int
	// Workers is each shard's reactor parallelism (speculative reversion
	// search when > 1).
	Workers int
	// MaxVersions bounds each shard's checkpoint log (paper default when 0).
	MaxVersions int
	// RestartLatency simulates real per-shard restart cost, making the
	// degraded-serving window observable in benchmarks.
	RestartLatency time.Duration
	// ServiceLatency simulates the PM-bound service time of one request,
	// spent while holding the shard's serving lock. The simulator's VM runs
	// ops in microseconds of pure CPU, which a single core serializes no
	// matter how many shards exist; modeling the media access time a real
	// deployment would spend per request restores the property the sharded
	// architecture actually provides — requests on different shards overlap,
	// requests on one shard serialize. 0 (the default) disables.
	ServiceLatency time.Duration
	// Provenance enables per-shard write-lineage tracking; recovered
	// mitigations then publish `arthas-incident/v1` reports (Incident).
	Provenance bool
	// Replicas gives every shard a standby replica fed by checkpoint-log
	// stream shipping (internal/repl, docs/REPLICATION.md). The scrubber
	// gains a seal-proven replica repair source, and a shard whose
	// trap→restart→mitigate escalation exhausts promotes its replica and
	// resumes serving instead of going Failed.
	Replicas bool
	// ReplMaxLag bounds how many durability records the replica may trail
	// the primary before the serving path ships the stream (default 64;
	// 1 ships after every operation). Only meaningful with Replicas.
	ReplMaxLag int
	// ChaosMitigationFail is a drill switch: every hard-fault mitigation is
	// forced to fail before touching the reactor, so the escalation path
	// past mitigation — replica promotion, or StateFailed without replicas —
	// is exercised on demand (the CI repl job's failover drill).
	ChaosMitigationFail bool
	// Funcs overrides the served PML entry points.
	Funcs Funcs
}

// Fleet is a set of shards behind deterministic key routing.
type Fleet struct {
	cfg        Config
	rec        *obs.Recorder // fleet-level counters (routing, refusals, mitigations)
	shards     []*Shard
	replMaxLag int
}

// New builds, boots, and initializes every shard.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Source == "" {
		cfg.Source = KVSource
	}
	if cfg.BaseName == "" {
		cfg.BaseName = "fleet"
	}
	cfg.Funcs = cfg.Funcs.withDefaults()

	f := &Fleet{cfg: cfg, rec: obs.NewRecorder(), replMaxLag: cfg.ReplMaxLag}
	if f.replMaxLag <= 0 {
		f.replMaxLag = 64
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &Shard{ID: i, fleet: f, rec: obs.NewRecorder()}
		s.name = fmt.Sprintf("%s-shard%d", cfg.BaseName, i)
		acfg := arthas.Config{
			PoolWords:      cfg.PoolWords,
			MaxVersions:    cfg.MaxVersions,
			RecoverFn:      cfg.Funcs.Recover,
			RestartLatency: cfg.RestartLatency,
			Observer:       s.rec,
			Provenance:     cfg.Provenance,
			OnLifecycle:    s.onLifecycle,
		}
		acfg.Reactor.Workers = cfg.Workers
		if cfg.Replicas {
			// The shipper taps the instance's pmem hooks; the session owns
			// the standby replica. Both close over s.inst so the wiring
			// survives promotion (the shipper keeps feeding from whichever
			// instance currently serves the shard).
			sh := repl.NewShipper()
			acfg.WrapHooks = sh.WrapHooks
			s.repl = repl.NewSession(sh, uint64(i)+1, func() (*pmem.Pool, *checkpoint.Log) {
				return s.inst.Pool, s.inst.Log
			})
			acfg.ScrubSource = s.repl.FetchBlock
		}
		s.acfg = acfg
		inst, err := arthas.New(s.name, cfg.Source, acfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		if _, trap := inst.Call(cfg.Funcs.Init); trap != nil {
			return nil, fmt.Errorf("fleet: shard %d init: %w", i, trap)
		}
		s.inst = inst
		if s.repl != nil {
			// Bootstrap the standby from a snapshot that includes the init
			// effects, so it is caught up from the first served request.
			if err := s.repl.Ship(); err != nil {
				return nil, fmt.Errorf("fleet: shard %d replica bootstrap: %w", i, err)
			}
		}
		s.setState(StateServing)
		s.refreshHealthLocked() // single-threaded here; no lock needed yet
		f.shards = append(f.shards, s)
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// routeHash is a splitmix64 finalizer: full-avalanche so adjacent keys
// spread across shards, fixed so routing is a pure function of (key, shard
// count) — the determinism contract benchmarks digest.
func routeHash(key int64) uint64 {
	z := uint64(key) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ShardFor routes a key to its shard index.
func (f *Fleet) ShardFor(key int64) int {
	return int(routeHash(key) % uint64(len(f.shards)))
}

// RouteFor is ShardFor as a standalone function, for computing routing
// digests without building a fleet.
func RouteFor(key int64, shards int) int {
	if shards < 1 {
		return 0
	}
	return int(routeHash(key) % uint64(shards))
}

// Do routes and executes one workload operation. The error is nil, an
// *UnavailableError (shard fenced for recovery), or a *TrapError.
func (f *Fleet) Do(op workload.Op) (int64, error) {
	fn, args := f.opFor(op)
	return f.doRaw(f.ShardFor(op.Key), fn, args)
}

// ErrClass buckets fleet errors for workload.Driver reports: "unavailable"
// (request refused while the shard recovers), "trap" (execution failed), or
// "error".
func ErrClass(err error) string {
	var ue *UnavailableError
	if errors.As(err, &ue) {
		return "unavailable"
	}
	var te *TrapError
	if errors.As(err, &te) {
		return "trap"
	}
	return "error"
}

// Get reads a key (-1 when absent).
func (f *Fleet) Get(key int64) (int64, error) {
	return f.doRaw(f.ShardFor(key), f.cfg.Funcs.Get, []int64{key})
}

// Put upserts a key.
func (f *Fleet) Put(key, val int64) error {
	_, err := f.doRaw(f.ShardFor(key), f.cfg.Funcs.Put, []int64{key, val})
	return err
}

// Del removes a key; the result reports whether it existed.
func (f *Fleet) Del(key int64) (int64, error) {
	return f.doRaw(f.ShardFor(key), f.cfg.Funcs.Del, []int64{key})
}

func (f *Fleet) doRaw(shard int, fn string, args []int64) (int64, error) {
	return f.shards[shard].do(fn, args...)
}

// Health snapshots per-shard health in shard order. Pool-derived fields come
// from each shard's cached snapshot (refreshed at operation boundaries under
// the shard lock — the pool's own accessors are unsynchronized); the
// Mitigating/Degraded overlay comes from the atomic serving state, so the
// probe is wait-free even while a shard recovers.
func (f *Fleet) Health() []obs.ShardHealth {
	out := make([]obs.ShardHealth, len(f.shards))
	for i, s := range f.shards {
		var h obs.HealthState
		if snap := s.health.Load(); snap != nil {
			h = *snap
		}
		switch s.State() {
		case StateRestarting, StateMitigating, StateScrubbing, StatePromoting:
			// Promotion is a bounded cutover window, not a terminal state:
			// like mitigation, the shard refuses briefly and comes back.
			h.Mitigating = true
		case StateFailed:
			h.Degraded = true
		}
		out[i] = obs.ShardHealth{Shard: i, HealthState: h}
	}
	return out
}

// Stats snapshots per-shard serving counters.
func (f *Fleet) Stats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.stats()
	}
	return out
}

// State returns one shard's serving state.
func (f *Fleet) State(shard int) State { return f.shards[shard].State() }

// MergedMetrics merges the fleet recorder with every shard's telemetry into
// one recorder: each shard metric appears both aggregated across shards
// (unprefixed) and per shard under "shard<N>.", plus a per-shard state gauge.
// Request-rate counters (fleet.req/unavailable/trap) are synthesized from
// the shards' atomic tallies — the serving hot path never touches a
// fleet-wide lock.
func (f *Fleet) MergedMetrics() *obs.Recorder {
	out := obs.NewRecorder()
	out.Absorb(f.rec, "")
	var req, unavail, traps int64
	for i, s := range f.shards {
		req += s.ops.Load() + s.errs.Load()
		unavail += s.unavail.Load()
		traps += s.traps.Load()
		out.Absorb(s.rec, "")
		out.Absorb(s.rec, fmt.Sprintf("shard%d.", i))
		out.SetGauge(fmt.Sprintf("fleet.shard%d.state", i), int64(s.State()))
	}
	out.Count("fleet.req", req)
	out.Count("fleet.unavailable", unavail)
	out.Count("fleet.trap", traps)
	return out
}

// Recorder returns the fleet-level recorder (routing and mitigation
// counters), e.g. for wiring a workload driver's sink alongside it.
func (f *Fleet) Recorder() *obs.Recorder { return f.rec }

// Incident returns a shard's most recent `arthas-incident/v1` report, nil
// until a provenance-enabled mitigation has recovered there.
func (f *Fleet) Incident(shard int) *arthas.Incident {
	return f.shards[shard].incident.Load()
}

// LastReport returns a shard's most recent mitigation report (nil if none).
func (f *Fleet) LastReport(shard int) *arthas.Report {
	return f.shards[shard].report.Load()
}

// Scrub fences one shard and runs a media-scrub pass.
func (f *Fleet) Scrub(shard int) (*arthas.ScrubReport, error) {
	return f.shards[shard].scrub()
}

// Restart restarts one shard, clearing a Failed state if mitigation had
// given up on it.
func (f *Fleet) Restart(shard int) error {
	return f.shards[shard].restart()
}

// Promote is the operator failover drill: it ships the shard's stream to
// the standby, seals the session, and cuts the shard over to its promoted
// replica — the same path a failed mitigation takes, minus the fault. The
// shard must be serving and replica-backed.
func (f *Fleet) Promote(shard int) error {
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", shard)
	}
	s := f.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repl == nil {
		return fmt.Errorf("fleet: shard %d has no replica", shard)
	}
	if st := s.State(); st != StateServing {
		return fmt.Errorf("fleet: shard %d is %s, not serving", shard, st)
	}
	// Catch the standby up before sealing so the drill loses nothing, then
	// promote and answer a read probe on the new primary.
	if err := s.repl.Ship(); err != nil {
		return fmt.Errorf("fleet: shard %d pre-promote ship: %w", shard, err)
	}
	s.repl.Seal()
	if _, err, ok := s.promoteLocked(f.cfg.Funcs.Get, []int64{0}); !ok {
		s.setState(StateFailed)
		return fmt.Errorf("fleet: shard %d promotion failed", shard)
	} else if err != nil {
		return err
	}
	return nil
}

// ReplStatus snapshots per-shard replication sessions in shard order. With
// replicas disabled every entry is the zero Status (Connected=false).
func (f *Fleet) ReplStatus() []repl.Status {
	out := make([]repl.Status, len(f.shards))
	for i, s := range f.shards {
		if s.repl != nil {
			out[i] = s.repl.Status()
		}
	}
	return out
}

// Replicated reports whether the fleet runs standby replicas.
func (f *Fleet) Replicated() bool { return f.cfg.Replicas }

// SaveImage serializes one shard's full image (pool, checkpoint log, trace)
// under the shard lock — the /image endpoint CI uses to hand a promoted
// shard's state to `arthas-inspect verify`.
func (f *Fleet) SaveImage(shard int, w io.Writer) error {
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", shard)
	}
	s := f.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inst.SaveImage(w)
}

// InjectFault flips one pre-writeback bit in the stored value of key — the
// paper's §2.4 hard-fault model: the corruption is inside the persisted
// word, media seals do not catch it, and only checkpoint reversion heals it.
// Returns the shard the fault landed on. The key must exist.
func (f *Fleet) InjectFault(key int64, bit uint) (int, error) {
	shard := f.ShardFor(key)
	s := f.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, trap := s.inst.Call(f.cfg.Funcs.Locate, key)
	if trap != nil {
		return shard, fmt.Errorf("fleet: locate key %d: %w", key, trap)
	}
	if addr == 0 {
		return shard, fmt.Errorf("fleet: key %d not found on shard %d", key, shard)
	}
	// Item layout word 1 is the value; its checksum (word 2) stays stale, so
	// every subsequent get of this key asserts.
	if err := s.inst.InjectBitFlip(uint64(addr)+1, bit); err != nil {
		return shard, fmt.Errorf("fleet: inject on shard %d: %w", shard, err)
	}
	f.rec.Count("fleet.fault.injected", 1)
	return shard, nil
}

// StateDigest runs the checksum-validating digest on every shard and folds
// the results — equal digests across runs certify byte-equivalent logical
// state. Fails if any shard's digest traps (corruption present).
func (f *Fleet) StateDigest() (int64, error) {
	var sum int64
	for i, s := range f.shards {
		v, err := func() (int64, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			v, trap := s.inst.Call(f.cfg.Funcs.Sum)
			if trap != nil {
				return 0, fmt.Errorf("fleet: digest shard %d: %w", i, trap)
			}
			return v, nil
		}()
		if err != nil {
			return 0, err
		}
		sum = sum*1000003 + v
	}
	return sum, nil
}
