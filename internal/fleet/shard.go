package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arthas"
	"arthas/internal/obs"
	"arthas/internal/workload"
)

// State is a shard's serving state. Transitions happen on the goroutine
// holding the shard lock; reads are atomic so health probes and routing
// fast-paths never block behind an in-flight mitigation.
type State int32

// Shard states, ordered roughly by severity.
const (
	// StateServing accepts requests.
	StateServing State = iota
	// StateRestarting is the transient-failure window: the shard observed a
	// trap the detector did not classify as hard and is restarting.
	StateRestarting
	// StateMitigating means the shard's reactor is reverting checkpoint
	// versions and re-executing — the online-mitigation window the fleet's
	// siblings serve through.
	StateMitigating
	// StateScrubbing means a media scrub pass is running.
	StateScrubbing
	// StateFailed is terminal: mitigation was attempted and did not recover
	// the shard. Requests bounce until an operator intervenes (Restart).
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateRestarting:
		return "restarting"
	case StateMitigating:
		return "mitigating"
	case StateScrubbing:
		return "scrubbing"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// UnavailableError is returned for requests routed to a shard that is not
// serving (restarting, mitigating, scrubbing, or failed). HTTP front ends
// map it to 503; closed-loop clients classify it as "unavailable" and keep
// driving their other keys.
type UnavailableError struct {
	Shard int
	State State
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shard %d unavailable: %s", e.Shard, e.State)
}

// TrapError is returned when a request's execution trapped. Mitigated marks
// that the trap escalated to a hard-fault mitigation; Recovered whether that
// mitigation healed the shard.
type TrapError struct {
	Shard     int
	Trap      *arthas.Trap
	Mitigated bool
	Recovered bool
}

func (e *TrapError) Error() string {
	s := fmt.Sprintf("shard %d: %v", e.Shard, e.Trap)
	if e.Mitigated && !e.Recovered {
		s += " (mitigation failed)"
	}
	return s
}

// Unwrap exposes the trap for errors.As chains.
func (e *TrapError) Unwrap() error { return e.Trap }

// Shard is one pool-backed arthas.Instance behind the fleet router. All
// instance access happens under mu; state and the cached health snapshot are
// published through atomics so the fleet's fast paths (routing rejection,
// /healthz) never contend with a mitigation in flight.
type Shard struct {
	ID int

	fleet *Fleet
	rec   *obs.Recorder // per-shard Observer, merged by Fleet.MergedMetrics

	mu   sync.Mutex
	inst *arthas.Instance

	state    atomic.Int32
	health   atomic.Pointer[obs.HealthState]
	incident atomic.Pointer[arthas.Incident]
	report   atomic.Pointer[arthas.Report]

	ops         atomic.Int64
	errs        atomic.Int64
	unavail     atomic.Int64
	traps       atomic.Int64
	restarts    atomic.Int64
	mitigations atomic.Int64
	recovered   atomic.Int64
}

// State returns the shard's current serving state.
func (s *Shard) State() State { return State(s.state.Load()) }

func (s *Shard) setState(st State) { s.state.Store(int32(st)) }

// casState transitions from->to atomically, reporting success. Used by
// lifecycle hooks that must not clobber a state the request path owns.
func (s *Shard) casState(from, to State) bool {
	return s.state.CompareAndSwap(int32(from), int32(to))
}

// onLifecycle mirrors instance transitions into the shard's recorder and —
// for scrubs initiated outside the request path (the reactor's
// scrub-then-retry hook runs inside a mitigation, where the Do path already
// owns the state) — into the serving state. Fired synchronously from the
// goroutine driving the instance, per arthas.Config.OnLifecycle's contract.
func (s *Shard) onLifecycle(ev arthas.LifecycleEvent) {
	s.rec.Count("fleet.lifecycle."+string(ev), 1)
	switch ev {
	case arthas.EventScrubStart:
		s.casState(StateServing, StateScrubbing)
	case arthas.EventScrubEnd:
		s.casState(StateScrubbing, StateServing)
	}
}

// refreshHealthLocked snapshots pool-derived health while holding mu — the
// pool's degraded/quarantine accessors are unsynchronized, so the snapshot
// is taken only at operation boundaries and health probes read the cached
// copy. The Mitigating flag is cleared here: Fleet.Health overlays it from
// the atomic shard state instead, which also covers restart/scrub windows.
func (s *Shard) refreshHealthLocked() {
	h := s.inst.Health()
	h.Mitigating = false
	s.health.Store(&h)
}

// do executes one routed operation, handling the trap → observe → restart →
// hard-fault → mitigate escalation inline so the shard heals online while
// siblings keep serving.
func (s *Shard) do(fn string, args ...int64) (int64, error) {
	// Fast path: refuse without touching the lock while the shard is
	// restarting, mitigating, scrubbing, or failed. Siblings' clients never
	// queue behind this shard's recovery.
	if st := s.State(); st != StateServing {
		s.errs.Add(1)
		s.unavail.Add(1)
		return 0, &UnavailableError{Shard: s.ID, State: st}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The state can have moved while we waited on the lock (a failed
	// mitigation ahead of us); re-check before touching the instance.
	if st := s.State(); st != StateServing {
		s.errs.Add(1)
		s.unavail.Add(1)
		return 0, &UnavailableError{Shard: s.ID, State: st}
	}
	if lat := s.fleet.cfg.ServiceLatency; lat > 0 {
		// Simulated PM-bound service time, spent inside the shard's serving
		// lock: one shard serializes it, sibling shards overlap it (see
		// Config.ServiceLatency).
		time.Sleep(lat)
	}
	v, trap := s.inst.Call(fn, args...)
	if trap == nil {
		s.ops.Add(1)
		return v, nil
	}
	return s.handleTrapLocked(fn, args, trap)
}

// handleTrapLocked runs the paper's serving-side failure protocol: feed the
// trap to the detector; a first (not-yet-hard) failure gets a plain restart
// and the request fails over to the client, while a suspected hard fault
// triggers online mitigation — checkpoint reversion plus re-execution —
// after which the original request is re-issued against the healed shard.
func (s *Shard) handleTrapLocked(fn string, args []int64, trap *arthas.Trap) (int64, error) {
	s.traps.Add(1)
	s.errs.Add(1)
	_, hard := s.inst.Observe(trap)
	if !hard {
		s.setState(StateRestarting)
		s.restarts.Add(1)
		rtrap := s.inst.Restart()
		s.refreshHealthLocked()
		if rtrap != nil {
			// Recovery itself trapped: the fault is in persistent state the
			// restart path touches. Keep serving state down; the next client
			// hit would re-observe, but without a working restart there is
			// nothing to escalate to, so fail the shard.
			s.setState(StateFailed)
			return 0, &TrapError{Shard: s.ID, Trap: rtrap}
		}
		s.setState(StateServing)
		return 0, &TrapError{Shard: s.ID, Trap: trap}
	}

	s.setState(StateMitigating)
	s.mitigations.Add(1)
	s.fleet.rec.Count("fleet.mitigation", 1)
	rep, err := s.inst.MitigateCall(fn, args...)
	if rep != nil {
		s.report.Store(rep)
	}
	if err != nil || rep == nil || !rep.Recovered {
		s.refreshHealthLocked()
		s.setState(StateFailed)
		s.fleet.rec.Count("fleet.mitigation.failed", 1)
		return 0, &TrapError{Shard: s.ID, Trap: lastTrapOf(rep, trap), Mitigated: true}
	}
	s.recovered.Add(1)
	s.fleet.rec.Count("fleet.mitigation.recovered", 1)
	if s.fleet.cfg.Provenance {
		s.incident.Store(s.inst.BuildIncident(rep))
	}
	// The shard is healthy again; serve the request that exposed the fault.
	v, rtrap := s.inst.Call(fn, args...)
	s.refreshHealthLocked()
	if rtrap != nil {
		s.setState(StateFailed)
		return 0, &TrapError{Shard: s.ID, Trap: rtrap, Mitigated: true, Recovered: true}
	}
	s.setState(StateServing)
	s.ops.Add(1)
	return v, nil
}

func lastTrapOf(rep *arthas.Report, fallback *arthas.Trap) *arthas.Trap {
	if rep != nil && rep.LastTrap != nil {
		return rep.LastTrap
	}
	return fallback
}

// scrub runs a media-scrub pass with the shard fenced from traffic.
func (s *Shard) scrub() (*arthas.ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.inst.Scrub() // lifecycle hook flips state around the pass
	s.refreshHealthLocked()
	return rep, err
}

// restart is the operator-initiated restart: it also clears a Failed state,
// giving a shard whose mitigation did not converge another chance.
func (s *Shard) restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setState(StateRestarting)
	s.restarts.Add(1)
	trap := s.inst.Restart()
	s.refreshHealthLocked()
	if trap != nil {
		s.setState(StateFailed)
		return &TrapError{Shard: s.ID, Trap: trap}
	}
	s.setState(StateServing)
	return nil
}

// ShardStats is one shard's counters snapshot, served by /shards.
type ShardStats struct {
	Shard             int    `json:"shard"`
	State             string `json:"state"`
	Ops               int64  `json:"ops"`
	Errors            int64  `json:"errors"`
	Unavailable       int64  `json:"unavailable"`
	Traps             int64  `json:"traps"`
	Restarts          int64  `json:"restarts"`
	Mitigations       int64  `json:"mitigations"`
	Recovered         int64  `json:"recovered"`
	QuarantinedBlocks int    `json:"quarantined_blocks"`
}

func (s *Shard) stats() ShardStats {
	h := s.health.Load()
	quar := 0
	if h != nil {
		quar = h.QuarantinedBlocks
	}
	return ShardStats{
		Shard:             s.ID,
		State:             s.State().String(),
		Ops:               s.ops.Load(),
		Errors:            s.errs.Load(),
		Unavailable:       s.unavail.Load(),
		Traps:             s.traps.Load(),
		Restarts:          s.restarts.Load(),
		Mitigations:       s.mitigations.Load(),
		Recovered:         s.recovered.Load(),
		QuarantinedBlocks: quar,
	}
}

// opFor maps a workload op kind onto this fleet's serving functions. Updates
// and inserts both map to Put: the KV surface upserts.
func (f *Fleet) opFor(op workload.Op) (fn string, args []int64) {
	switch op.Kind {
	case workload.OpRead:
		return f.cfg.Funcs.Get, []int64{op.Key}
	case workload.OpDelete:
		return f.cfg.Funcs.Del, []int64{op.Key}
	default:
		return f.cfg.Funcs.Put, []int64{op.Key, op.Value}
	}
}
