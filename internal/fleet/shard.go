package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arthas"
	"arthas/internal/obs"
	"arthas/internal/repl"
	"arthas/internal/workload"
)

// State is a shard's serving state. Transitions happen on the goroutine
// holding the shard lock; reads are atomic so health probes and routing
// fast-paths never block behind an in-flight mitigation.
type State int32

// Shard states, ordered roughly by severity.
const (
	// StateServing accepts requests.
	StateServing State = iota
	// StateRestarting is the transient-failure window: the shard observed a
	// trap the detector did not classify as hard and is restarting.
	StateRestarting
	// StateMitigating means the shard's reactor is reverting checkpoint
	// versions and re-executing — the online-mitigation window the fleet's
	// siblings serve through.
	StateMitigating
	// StateScrubbing means a media scrub pass is running.
	StateScrubbing
	// StatePromoting is the bounded failover window: the shard's replica is
	// catching up and cutting over after mitigation gave up. Requests are
	// refused only for the drain + reopen duration, then serving resumes on
	// the promoted replica.
	StatePromoting
	// StateFailed is terminal: mitigation was attempted and did not recover
	// the shard — and no replica could take over. Requests bounce until an
	// operator intervenes (Restart).
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateRestarting:
		return "restarting"
	case StateMitigating:
		return "mitigating"
	case StateScrubbing:
		return "scrubbing"
	case StatePromoting:
		return "promoting"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// UnavailableError is returned for requests routed to a shard that is not
// serving (restarting, mitigating, scrubbing, or failed). HTTP front ends
// map it to 503; closed-loop clients classify it as "unavailable" and keep
// driving their other keys.
type UnavailableError struct {
	Shard int
	State State
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shard %d unavailable: %s", e.Shard, e.State)
}

// RetryAfter tells retrying clients how long to back off before re-issuing a
// refused request: restart/mitigation/promotion windows are short, so the
// hint is one millisecond (HTTP front ends surface it as `Retry-After`,
// workload drivers honor it via the workload.RetryAfterer contract).
func (e *UnavailableError) RetryAfter() time.Duration { return time.Millisecond }

// TrapError is returned when a request's execution trapped. Mitigated marks
// that the trap escalated to a hard-fault mitigation; Recovered whether that
// mitigation healed the shard.
type TrapError struct {
	Shard     int
	Trap      *arthas.Trap
	Mitigated bool
	Recovered bool
}

func (e *TrapError) Error() string {
	s := fmt.Sprintf("shard %d: %v", e.Shard, e.Trap)
	if e.Mitigated && !e.Recovered {
		s += " (mitigation failed)"
	}
	return s
}

// Unwrap exposes the trap for errors.As chains.
func (e *TrapError) Unwrap() error { return e.Trap }

// Shard is one pool-backed arthas.Instance behind the fleet router. All
// instance access happens under mu; state and the cached health snapshot are
// published through atomics so the fleet's fast paths (routing rejection,
// /healthz) never contend with a mitigation in flight.
type Shard struct {
	ID int

	fleet *Fleet
	rec   *obs.Recorder // per-shard Observer, merged by Fleet.MergedMetrics

	mu   sync.Mutex
	inst *arthas.Instance
	// repl is the shard's standby-replica session (nil unless
	// Config.Replicas): the shipper taps the instance's pmem hooks, scrub
	// fetches unprovable blocks from the replica, and a failed mitigation
	// promotes it instead of refusing traffic. acfg is retained so the
	// promoted replica's image reopens with identical wiring (observer,
	// lifecycle hook, shipper, scrub source).
	repl *repl.Session
	acfg arthas.Config
	name string

	state    atomic.Int32
	health   atomic.Pointer[obs.HealthState]
	incident atomic.Pointer[arthas.Incident]
	report   atomic.Pointer[arthas.Report]

	ops         atomic.Int64
	errs        atomic.Int64
	unavail     atomic.Int64
	traps       atomic.Int64
	restarts    atomic.Int64
	mitigations atomic.Int64
	recovered   atomic.Int64
	promotions  atomic.Int64
}

// State returns the shard's current serving state.
func (s *Shard) State() State { return State(s.state.Load()) }

func (s *Shard) setState(st State) { s.state.Store(int32(st)) }

// casState transitions from->to atomically, reporting success. Used by
// lifecycle hooks that must not clobber a state the request path owns.
func (s *Shard) casState(from, to State) bool {
	return s.state.CompareAndSwap(int32(from), int32(to))
}

// onLifecycle mirrors instance transitions into the shard's recorder and —
// for scrubs initiated outside the request path (the reactor's
// scrub-then-retry hook runs inside a mitigation, where the Do path already
// owns the state) — into the serving state. Fired synchronously from the
// goroutine driving the instance, per arthas.Config.OnLifecycle's contract.
func (s *Shard) onLifecycle(ev arthas.LifecycleEvent) {
	s.rec.Count("fleet.lifecycle."+string(ev), 1)
	switch ev {
	case arthas.EventScrubStart:
		s.casState(StateServing, StateScrubbing)
	case arthas.EventScrubEnd:
		s.casState(StateScrubbing, StateServing)
	}
	// Mitigation reverts and scrub repairs mutate durable state through raw
	// paths the replication hooks never see; the replica must snapshot-resync
	// on the next ship rather than trust the stream.
	if s.repl != nil && (ev == arthas.EventMitigateEnd || ev == arthas.EventScrubEnd) {
		s.repl.MarkDirty()
	}
}

// refreshHealthLocked snapshots pool-derived health while holding mu — the
// pool's degraded/quarantine accessors are unsynchronized, so the snapshot
// is taken only at operation boundaries and health probes read the cached
// copy. The Mitigating flag is cleared here: Fleet.Health overlays it from
// the atomic shard state instead, which also covers restart/scrub windows.
func (s *Shard) refreshHealthLocked() {
	h := s.inst.Health()
	h.Mitigating = false
	s.health.Store(&h)
}

// do executes one routed operation, handling the trap → observe → restart →
// hard-fault → mitigate escalation inline so the shard heals online while
// siblings keep serving.
func (s *Shard) do(fn string, args ...int64) (int64, error) {
	// Fast path: refuse without touching the lock while the shard is
	// restarting, mitigating, scrubbing, or failed. Siblings' clients never
	// queue behind this shard's recovery.
	if st := s.State(); st != StateServing {
		s.errs.Add(1)
		s.unavail.Add(1)
		return 0, &UnavailableError{Shard: s.ID, State: st}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The state can have moved while we waited on the lock (a failed
	// mitigation ahead of us); re-check before touching the instance.
	if st := s.State(); st != StateServing {
		s.errs.Add(1)
		s.unavail.Add(1)
		return 0, &UnavailableError{Shard: s.ID, State: st}
	}
	if lat := s.fleet.cfg.ServiceLatency; lat > 0 {
		// Simulated PM-bound service time, spent inside the shard's serving
		// lock: one shard serializes it, sibling shards overlap it (see
		// Config.ServiceLatency).
		time.Sleep(lat)
	}
	v, trap := s.inst.Call(fn, args...)
	if trap == nil {
		s.ops.Add(1)
		s.shipIfDueLocked()
		return v, nil
	}
	return s.handleTrapLocked(fn, args, trap)
}

// shipIfDueLocked ships the checkpoint-log stream to the standby replica
// once the lag bound is reached (or a resync is owed). Runs on the serving
// path under the shard lock, so replication cost is part of the measured
// service time (arthas-bench -exp repl quantifies it).
func (s *Shard) shipIfDueLocked() {
	if s.repl == nil || !s.repl.Due(uint64(s.fleet.replMaxLag)) {
		return
	}
	if err := s.repl.Ship(); err != nil {
		s.fleet.rec.Count("fleet.repl.ship_error", 1)
	}
}

// handleTrapLocked runs the paper's serving-side failure protocol: feed the
// trap to the detector; a first (not-yet-hard) failure gets a plain restart
// and the request fails over to the client, while a suspected hard fault
// triggers online mitigation — checkpoint reversion plus re-execution —
// after which the original request is re-issued against the healed shard.
func (s *Shard) handleTrapLocked(fn string, args []int64, trap *arthas.Trap) (int64, error) {
	s.traps.Add(1)
	s.errs.Add(1)
	// Seal the replication session at the failure boundary: everything
	// shipped before this trap is the replica's trusted prefix, and nothing
	// the recovery machinery writes below (restart replay, mitigation
	// re-execution) may leak into a later promote drain. A successful
	// recovery unseals and resyncs; a promotion drains only the sealed
	// prefix.
	if s.repl != nil {
		s.repl.Seal()
	}
	_, hard := s.inst.Observe(trap)
	if !hard {
		s.setState(StateRestarting)
		s.restarts.Add(1)
		rtrap := s.inst.Restart()
		s.refreshHealthLocked()
		if rtrap != nil {
			// Recovery itself trapped: the fault is in persistent state the
			// restart path touches. Without a replica there is nothing to
			// escalate to; with one, fail over instead of refusing.
			if v, err, ok := s.promoteLocked(fn, args); ok {
				return v, err
			}
			s.setState(StateFailed)
			return 0, &TrapError{Shard: s.ID, Trap: rtrap}
		}
		s.unsealReplLocked()
		s.setState(StateServing)
		return 0, &TrapError{Shard: s.ID, Trap: trap}
	}

	s.setState(StateMitigating)
	s.mitigations.Add(1)
	s.fleet.rec.Count("fleet.mitigation", 1)
	var rep *arthas.Report
	var err error
	if s.fleet.cfg.ChaosMitigationFail {
		// Failover drill: pretend checkpoint reversion could not converge, so
		// the escalation path past mitigation (promotion) is exercised on
		// demand (the CI repl job and TestFailoverPastMitigation).
		s.fleet.rec.Count("fleet.chaos.mitigation_fail", 1)
		err = errChaosMitigation
	} else {
		rep, err = s.inst.MitigateCall(fn, args...)
	}
	if rep != nil {
		s.report.Store(rep)
	}
	if err != nil || rep == nil || !rep.Recovered {
		s.refreshHealthLocked()
		s.fleet.rec.Count("fleet.mitigation.failed", 1)
		if v, perr, ok := s.promoteLocked(fn, args); ok {
			return v, perr
		}
		s.setState(StateFailed)
		return 0, &TrapError{Shard: s.ID, Trap: lastTrapOf(rep, trap), Mitigated: true}
	}
	s.recovered.Add(1)
	s.fleet.rec.Count("fleet.mitigation.recovered", 1)
	if s.fleet.cfg.Provenance {
		s.incident.Store(s.inst.BuildIncident(rep))
	}
	// The shard is healthy again; serve the request that exposed the fault.
	v, rtrap := s.inst.Call(fn, args...)
	s.refreshHealthLocked()
	if rtrap != nil {
		if v, perr, ok := s.promoteLocked(fn, args); ok {
			return v, perr
		}
		s.setState(StateFailed)
		return 0, &TrapError{Shard: s.ID, Trap: rtrap, Mitigated: true, Recovered: true}
	}
	s.unsealReplLocked()
	s.setState(StateServing)
	s.ops.Add(1)
	return v, nil
}

// errChaosMitigation marks a drill-forced mitigation failure.
var errChaosMitigation = fmt.Errorf("fleet: chaos drill forced mitigation failure")

// unsealReplLocked reopens the replication session after a recovery that
// kept the primary: the stream records buffered during the recovery window
// are untrustworthy (restart replay, mitigation re-execution), so the
// session is marked dirty and the next ship snapshot-resyncs from the healed
// primary instead.
func (s *Shard) unsealReplLocked() {
	if s.repl == nil {
		return
	}
	s.repl.Unseal()
	s.repl.MarkDirty()
}

// promoteLocked fails the shard over to its standby replica: drain the
// sealed pre-failure stream prefix into the replica, reopen an instance
// from the replica's image with the shard's original wiring, run recovery,
// cut over, and re-issue the request that exposed the fault. Returns
// ok=false when there is no replica or the failover itself failed — the
// caller then falls back to StateFailed exactly as before replicas existed.
// Requests routed here during the drain+reopen window are refused with
// StatePromoting, the bounded unavailability the failover trades against a
// permanent refusal.
func (s *Shard) promoteLocked(fn string, args []int64) (int64, error, bool) {
	if s.repl == nil {
		return 0, nil, false
	}
	s.setState(StatePromoting)
	s.fleet.rec.Count("fleet.promotion", 1)
	rep, err := s.repl.Promote()
	if err != nil {
		s.fleet.rec.Count("fleet.promotion.failed", 1)
		return 0, nil, false
	}
	var img bytes.Buffer
	if err := arthas.WriteImage(&img, rep.Pool, rep.Log, nil); err != nil {
		s.fleet.rec.Count("fleet.promotion.failed", 1)
		return 0, nil, false
	}
	inst, err := arthas.OpenImage(s.name+"-promoted", s.fleet.cfg.Source, s.acfg, &img)
	if err != nil {
		s.fleet.rec.Count("fleet.promotion.failed", 1)
		return 0, nil, false
	}
	if trap := inst.Restart(); trap != nil {
		// The replica's image fails recovery: it is not a viable primary.
		s.fleet.rec.Count("fleet.promotion.failed", 1)
		return 0, nil, false
	}
	s.inst = inst
	s.promotions.Add(1)
	s.fleet.rec.Count("fleet.promotion.completed", 1)
	// The shipper's hooks now feed from the promoted instance. Discard the
	// failed primary's residue and bootstrap a fresh standby immediately so
	// the shard is replica-protected again.
	s.repl.Unseal()
	s.repl.MarkDirty()
	if err := s.repl.Ship(); err != nil {
		s.fleet.rec.Count("fleet.repl.ship_error", 1)
	}
	s.refreshHealthLocked()
	// Serve the request that exposed the fault on the promoted primary.
	v, rtrap := s.inst.Call(fn, args...)
	if rtrap != nil {
		s.setState(StateFailed)
		return 0, &TrapError{Shard: s.ID, Trap: rtrap, Mitigated: true}, true
	}
	s.setState(StateServing)
	s.ops.Add(1)
	return v, nil, true
}

func lastTrapOf(rep *arthas.Report, fallback *arthas.Trap) *arthas.Trap {
	if rep != nil && rep.LastTrap != nil {
		return rep.LastTrap
	}
	return fallback
}

// scrub runs a media-scrub pass with the shard fenced from traffic.
func (s *Shard) scrub() (*arthas.ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.inst.Scrub() // lifecycle hook flips state around the pass
	s.refreshHealthLocked()
	return rep, err
}

// restart is the operator-initiated restart: it also clears a Failed state,
// giving a shard whose mitigation did not converge another chance.
func (s *Shard) restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setState(StateRestarting)
	s.restarts.Add(1)
	trap := s.inst.Restart()
	s.refreshHealthLocked()
	if trap != nil {
		s.setState(StateFailed)
		return &TrapError{Shard: s.ID, Trap: trap}
	}
	// An operator restart can resurrect a Failed shard whose session was
	// sealed at the original failure; reopen it so replication resumes.
	s.unsealReplLocked()
	s.setState(StateServing)
	return nil
}

// ShardStats is one shard's counters snapshot, served by /shards.
type ShardStats struct {
	Shard             int    `json:"shard"`
	State             string `json:"state"`
	Ops               int64  `json:"ops"`
	Errors            int64  `json:"errors"`
	Unavailable       int64  `json:"unavailable"`
	Traps             int64  `json:"traps"`
	Restarts          int64  `json:"restarts"`
	Mitigations       int64  `json:"mitigations"`
	Recovered         int64  `json:"recovered"`
	Promotions        int64  `json:"promotions,omitempty"`
	QuarantinedBlocks int    `json:"quarantined_blocks"`
	// Repl is the shard's replication-session snapshot (nil when replicas
	// are disabled).
	Repl *repl.Status `json:"repl,omitempty"`
}

func (s *Shard) stats() ShardStats {
	h := s.health.Load()
	quar := 0
	if h != nil {
		quar = h.QuarantinedBlocks
	}
	st := ShardStats{
		Shard:             s.ID,
		State:             s.State().String(),
		Ops:               s.ops.Load(),
		Errors:            s.errs.Load(),
		Unavailable:       s.unavail.Load(),
		Traps:             s.traps.Load(),
		Restarts:          s.restarts.Load(),
		Mitigations:       s.mitigations.Load(),
		Recovered:         s.recovered.Load(),
		Promotions:        s.promotions.Load(),
		QuarantinedBlocks: quar,
	}
	if s.repl != nil {
		rs := s.repl.Status()
		st.Repl = &rs
	}
	return st
}

// opFor maps a workload op kind onto this fleet's serving functions. Updates
// and inserts both map to Put: the KV surface upserts.
func (f *Fleet) opFor(op workload.Op) (fn string, args []int64) {
	switch op.Kind {
	case workload.OpRead:
		return f.cfg.Funcs.Get, []int64{op.Key}
	case workload.OpDelete:
		return f.cfg.Funcs.Del, []int64{op.Key}
	default:
		return f.cfg.Funcs.Put, []int64{op.Key, op.Value}
	}
}
