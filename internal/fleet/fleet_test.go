package fleet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"arthas/internal/obs"
	"arthas/internal/workload"
)

func newTestFleet(t *testing.T, shards int, mut func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{Shards: shards, BaseName: "test"}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// faultKeyFor finds a key outside the workload keyspace that routes to the
// given shard — the deterministic fault-injection target.
func faultKeyFor(shard, shards int) int64 {
	for k := int64(1) << 40; ; k++ {
		if RouteFor(k, shards) == shard {
			return k
		}
	}
}

func TestFleetBasicOps(t *testing.T) {
	f := newTestFleet(t, 4, nil)
	for k := int64(1); k <= 64; k++ {
		if err := f.Put(k, k*10); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := int64(1); k <= 64; k++ {
		v, err := f.Get(k)
		if err != nil || v != k*10 {
			t.Fatalf("get %d = %d, %v; want %d", k, v, err, k*10)
		}
	}
	if v, err := f.Get(9999); err != nil || v != -1 {
		t.Fatalf("get missing = %d, %v; want -1", v, err)
	}
	if n, err := f.Del(7); err != nil || n != 1 {
		t.Fatalf("del = %d, %v; want 1", n, err)
	}
	if v, err := f.Get(7); err != nil || v != -1 {
		t.Fatalf("get deleted = %d, %v; want -1", v, err)
	}
	// Keys must actually spread: with 64 keys over 4 shards every shard
	// should have seen traffic.
	for _, st := range f.Stats() {
		if st.Ops == 0 {
			t.Fatalf("shard %d saw no ops: %+v", st.Shard, f.Stats())
		}
		if st.State != "serving" {
			t.Fatalf("shard %d state %q", st.Shard, st.State)
		}
	}
}

func TestRoutingDeterministic(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	for k := int64(0); k < 1000; k++ {
		if f.ShardFor(k) != RouteFor(k, 3) {
			t.Fatalf("ShardFor(%d) != RouteFor", k)
		}
		if r := RouteFor(k, 3); r < 0 || r > 2 {
			t.Fatalf("RouteFor(%d) = %d out of range", k, r)
		}
	}
	// Pure function: same inputs, same route, across calls.
	for k := int64(0); k < 100; k++ {
		if RouteFor(k, 7) != RouteFor(k, 7) {
			t.Fatalf("RouteFor(%d, 7) unstable", k)
		}
	}
}

// TestFleetStateDeterminism is the fleet determinism contract: two fleets
// with the same shard count fed the same deterministic client streams end in
// byte-equivalent logical state (equal checksum digests), and the routing
// digest derived from the streams alone is stable.
func TestFleetStateDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		f := newTestFleet(t, 4, nil)
		d := &workload.Driver{
			Clients:      1, // single client: deterministic application order
			OpsPerClient: 400,
			Shape:        workload.WorkloadA(0, 80, 42),
			Do: func(_ int, op workload.Op) error {
				_, err := f.Do(op)
				return err
			},
		}
		var routing uint64 = 14695981039346656037 // FNV offset basis
		for _, op := range d.ClientStream(0) {
			routing ^= uint64(f.ShardFor(op.Key))
			routing *= 1099511628211
		}
		rep := d.Run()
		if rep.Errors != 0 {
			t.Fatalf("fault-free run had %d errors: %+v", rep.Errors, rep.ErrCounts)
		}
		dig, err := f.StateDigest()
		if err != nil {
			t.Fatal(err)
		}
		return dig, routing
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 {
		t.Fatalf("state digests differ: %d vs %d", d1, d2)
	}
	if r1 != r2 {
		t.Fatalf("routing digests differ: %d vs %d", r1, r2)
	}
}

// TestFaultEscalation walks the serving-side protocol step by step: first
// trap → transient classification → restart (request fails over); second
// similar trap → hard fault → online mitigation → request served from the
// healed shard. The sibling shards never leave serving state.
func TestFaultEscalation(t *testing.T) {
	f := newTestFleet(t, 2, func(c *Config) { c.Provenance = true })
	for k := int64(1); k <= 40; k++ {
		if err := f.Put(k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	key := faultKeyFor(0, 2)
	if err := f.Put(key, 777); err != nil {
		t.Fatal(err)
	}
	shard, err := f.InjectFault(key, 3)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 0 {
		t.Fatalf("fault landed on shard %d, want 0", shard)
	}

	// Strike one: trap, classified transient, shard restarts.
	_, err = f.Get(key)
	var te *TrapError
	if !errors.As(err, &te) || te.Mitigated {
		t.Fatalf("first get: %v, want un-mitigated TrapError", err)
	}
	if st := f.Stats()[0]; st.Restarts != 1 || st.Mitigations != 0 {
		t.Fatalf("after strike one: %+v", st)
	}
	if f.State(0) != StateServing {
		t.Fatalf("shard 0 not back to serving: %v", f.State(0))
	}

	// Strike two: similar signature → hard → mitigation heals online and the
	// triggering request is served.
	if _, err := f.Get(key); err != nil {
		t.Fatalf("second get should be served post-mitigation: %v", err)
	}
	st := f.Stats()[0]
	if st.Mitigations != 1 || st.Recovered != 1 {
		t.Fatalf("after strike two: %+v", st)
	}
	rep := f.LastReport(0)
	if rep == nil || !rep.Recovered {
		t.Fatalf("mitigation report: %+v", rep)
	}
	if inc := f.Incident(0); inc == nil {
		t.Fatal("no incident published after provenance-enabled recovery")
	} else if len(inc.JSON()) == 0 {
		t.Fatal("incident serializes empty")
	}

	// The healed shard serves: the store round-trips again and the digest
	// validates every checksum.
	if err := f.Put(key, 778); err != nil {
		t.Fatal(err)
	}
	if v, err := f.Get(key); err != nil || v != 778 {
		t.Fatalf("post-heal roundtrip = %d, %v", v, err)
	}
	if _, err := f.StateDigest(); err != nil {
		t.Fatalf("digest after heal: %v", err)
	}
	// Sibling untouched throughout.
	if st := f.Stats()[1]; st.Traps != 0 || st.State != "serving" {
		t.Fatalf("sibling disturbed: %+v", st)
	}
}

// TestDegradedModeServing pins a shard in each non-serving state and checks
// the contract: requests to it fail fast with UnavailableError, siblings
// serve, and /healthz-style aggregation reports the overlay.
func TestDegradedModeServing(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	key0 := faultKeyFor(0, 2)
	key1 := faultKeyFor(1, 2)
	if err := f.Put(key1, 5); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		state      State
		status     string
		mitigating bool
	}{
		{StateRestarting, "mitigating", true},
		{StateMitigating, "mitigating", true},
		{StateScrubbing, "mitigating", true},
		{StateFailed, "degraded", false},
	} {
		f.shards[0].setState(tc.state)
		_, err := f.Get(key0)
		var ue *UnavailableError
		if !errors.As(err, &ue) || ue.Shard != 0 || ue.State != tc.state {
			t.Fatalf("state %v: err = %v", tc.state, err)
		}
		if got := ErrClass(err); got != "unavailable" {
			t.Fatalf("ErrClass = %q", got)
		}
		// Sibling serves through it.
		if v, err := f.Get(key1); err != nil || v != 5 {
			t.Fatalf("sibling blocked during %v: %d, %v", tc.state, v, err)
		}
		h := f.Health()
		if h[0].Mitigating != tc.mitigating {
			t.Fatalf("state %v: health overlay %+v", tc.state, h[0])
		}
		if agg := obs.WorstOf(h); agg.Status() != tc.status {
			t.Fatalf("state %v: worst-of %q, want %q", tc.state, agg.Status(), tc.status)
		}
	}
	f.shards[0].setState(StateServing)
	if agg := obs.WorstOf(f.Health()); !agg.Healthy() {
		t.Fatalf("fleet not healthy after clearing: %+v", agg)
	}
}

func TestScrubLifecycleCounters(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	if _, err := f.Scrub(0); err != nil {
		t.Fatal(err)
	}
	if f.State(0) != StateServing {
		t.Fatalf("shard 0 stuck in %v after scrub", f.State(0))
	}
	m := f.MergedMetrics()
	if n := m.CounterValue("fleet.lifecycle.scrub-start"); n != 1 {
		t.Fatalf("aggregated scrub-start = %d, want 1", n)
	}
	if n := m.CounterValue("shard0.fleet.lifecycle.scrub-start"); n != 1 {
		t.Fatalf("shard0 scrub-start = %d, want 1", n)
	}
	if n := m.CounterValue("shard1.fleet.lifecycle.scrub-start"); n != 0 {
		t.Fatalf("shard1 scrub-start = %d, want 0", n)
	}
	// Boot events from New land in the merged view too (one per shard).
	if n := m.CounterValue("fleet.lifecycle.boot"); n != 2 {
		t.Fatalf("aggregated boot = %d, want 2", n)
	}
}

// TestFleetMidRunFaultE2E is the flagship concurrency test (run under
// -race): a closed-loop multi-client workload drives a 4-shard fleet while a
// hard fault is injected mid-run into one shard. The faulted shard must
// escalate and heal online; the sibling shards must never trap, and health
// probes run concurrently throughout.
func TestFleetMidRunFaultE2E(t *testing.T) {
	const shards = 4
	f := newTestFleet(t, shards, func(c *Config) {
		c.Workers = 2
		c.RestartLatency = 2 * time.Millisecond
	})
	faultKey := faultKeyFor(1, shards)
	if err := f.Put(faultKey, 4242); err != nil {
		t.Fatal(err)
	}

	var done atomic.Int64
	d := &workload.Driver{
		Clients:      6,
		OpsPerClient: 300,
		Shape:        workload.WorkloadA(0, 100, 99),
		ErrClass:     ErrClass,
		Do: func(_ int, op workload.Op) error {
			_, err := f.Do(op)
			return err
		},
		Tick: func(n int) { done.Store(int64(n)) },
	}

	// Concurrent health prober: exercises the wait-free Health path against
	// live mitation/restart transitions (the -race payoff).
	stop := make(chan struct{})
	probed := make(chan struct{})
	go func() {
		defer close(probed)
		for {
			select {
			case <-stop:
				return
			default:
				obs.WorstOf(f.Health())
				f.Stats()
			}
		}
	}()

	// Injector: wait for the run to be mid-flight, corrupt the fault key,
	// then probe it until the shard heals online.
	healed := make(chan error, 1)
	go func() {
		for done.Load() < 300 {
			time.Sleep(time.Millisecond)
		}
		if _, err := f.InjectFault(faultKey, 5); err != nil {
			healed <- err
			return
		}
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			_, err := f.Get(faultKey)
			if err == nil {
				healed <- nil
				return
			}
			time.Sleep(time.Millisecond)
		}
		healed <- errors.New("shard 1 did not heal within deadline")
	}()

	rep := d.Run()
	if err := <-healed; err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-probed

	if rep.Done != 6*300 {
		t.Fatalf("driver completed %d ops, want %d", rep.Done, 6*300)
	}
	stats := f.Stats()
	if stats[1].Mitigations < 1 || stats[1].Recovered < 1 {
		t.Fatalf("faulted shard never mitigated: %+v", stats[1])
	}
	for i, st := range stats {
		if i == 1 {
			continue
		}
		if st.Traps != 0 {
			t.Fatalf("non-faulted shard %d trapped: %+v", i, st)
		}
	}
	// Workload errors, if any, must all be degraded-mode refusals or the
	// faulted shard's traps — never unclassified.
	for _, ec := range rep.ErrCounts {
		if ec.Class != "unavailable" && ec.Class != "trap" {
			t.Fatalf("unclassified error class %q (%d)", ec.Class, ec.N)
		}
	}
	// Fleet fully healthy at the end; merged metrics reflect the incident.
	if agg := obs.WorstOf(f.Health()); !agg.Healthy() {
		t.Fatalf("fleet unhealthy after heal: %+v", agg)
	}
	m := f.MergedMetrics()
	if m.CounterValue("fleet.mitigation.recovered") < 1 {
		t.Fatal("merged metrics missing mitigation.recovered")
	}
	if m.CounterValue("fleet.fault.injected") != 1 {
		t.Fatal("merged metrics missing fault.injected")
	}
}
