package ir

import (
	"strings"
	"testing"
)

func compileOne(t *testing.T, src string) *Module {
	t.Helper()
	m, err := CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestCompileSimple(t *testing.T) {
	m := compileOne(t, "fn add(a, b) { return a + b; }")
	f := m.Func("add")
	if f == nil {
		t.Fatal("function add missing")
	}
	if f.NumParams != 2 {
		t.Fatalf("NumParams = %d", f.NumParams)
	}
	term := f.Blocks[len(f.Blocks)-1].Terminator()
	if term == nil || term.Op != OpRet {
		t.Fatalf("last terminator = %v", term)
	}
}

func TestCompileImplicitReturn(t *testing.T) {
	m := compileOne(t, "fn f() { var x = 1; }")
	f := m.Func("f")
	last := f.Blocks[len(f.Blocks)-1]
	term := last.Terminator()
	if term == nil || term.Op != OpRet {
		t.Fatal("missing implicit return")
	}
}

func TestCompileConstOffsetLoad(t *testing.T) {
	m := compileOne(t, "fn f(p) { return p[3]; }")
	var load *Instr
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpLoad {
			load = in
		}
	})
	if load == nil {
		t.Fatal("no load")
	}
	if load.Off != 3 {
		t.Fatalf("load Off = %d, want 3 (constant offsets should fold)", load.Off)
	}
}

func TestCompileDynamicOffsetLoad(t *testing.T) {
	m := compileOne(t, "fn f(p, i) { return p[i]; }")
	var load *Instr
	nAdd := 0
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpLoad {
			load = in
		}
		if in.Op == OpBin && BinOp(in.Imm) == Add {
			nAdd++
		}
	})
	if load == nil || load.Off != 0 || nAdd != 1 {
		t.Fatalf("dynamic index lowering wrong: load=%+v adds=%d", load, nAdd)
	}
}

func TestCompileStore(t *testing.T) {
	m := compileOne(t, "fn f(p, v) { p[2] = v; }")
	var store *Instr
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpStore {
			store = in
		}
	})
	if store == nil || store.Off != 2 || len(store.Args) != 2 {
		t.Fatalf("store = %+v", store)
	}
}

func TestCompileGlobals(t *testing.T) {
	m := compileOne(t, "var g = 7;\nfn f() { g = g + 1; return g; }")
	if len(m.Globals) != 1 || m.Globals[0].Init != 7 {
		t.Fatalf("globals = %+v", m.Globals)
	}
	var loads, stores int
	m.Func("f").Instrs(func(in *Instr) {
		switch in.Op {
		case OpGlobLoad:
			loads++
		case OpGlobStore:
			stores++
		}
	})
	if loads != 2 || stores != 1 {
		t.Fatalf("gloads=%d gstores=%d", loads, stores)
	}
}

func TestCompileUndefinedVariable(t *testing.T) {
	if _, err := CompileSource("t", "fn f() { return nope; }"); err == nil {
		t.Fatal("undefined variable accepted")
	}
	if _, err := CompileSource("t", "fn f() { nope = 3; }"); err == nil {
		t.Fatal("assignment to undefined variable accepted")
	}
}

func TestCompileUndefinedCall(t *testing.T) {
	if _, err := CompileSource("t", "fn f() { return g(); }"); err == nil {
		t.Fatal("call to undefined function accepted")
	}
}

func TestCompileArityMismatch(t *testing.T) {
	if _, err := CompileSource("t", "fn g(a) { return a; } fn f() { return g(); }"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCompileBreakOutsideLoop(t *testing.T) {
	if _, err := CompileSource("t", "fn f() { break; }"); err == nil {
		t.Fatal("break outside loop accepted")
	}
	if _, err := CompileSource("t", "fn f() { continue; }"); err == nil {
		t.Fatal("continue outside loop accepted")
	}
}

func TestCompileDuplicateLocal(t *testing.T) {
	if _, err := CompileSource("t", "fn f() { var x = 1; var x = 2; }"); err == nil {
		t.Fatal("duplicate local accepted")
	}
	// Shadowing in an inner scope is allowed.
	if _, err := CompileSource("t", "fn f() { var x = 1; { var x = 2; } return x; }"); err != nil {
		t.Fatalf("legal shadowing rejected: %v", err)
	}
}

func TestCompileWhileCFG(t *testing.T) {
	m := compileOne(t, `
fn f(n) {
    var i = 0;
    while (i < n) {
        i = i + 1;
        if (i == 5) { break; }
        if (i == 2) { continue; }
    }
    return i;
}`)
	f := m.Func("f")
	// Verify the CFG has no unterminated or mis-terminated blocks (Verify
	// ran in Compile); additionally check there is at least one br.
	brs := 0
	f.Instrs(func(in *Instr) {
		if in.Op == OpBr {
			brs++
		}
	})
	if brs < 3 {
		t.Fatalf("expected >=3 br instructions, got %d", brs)
	}
}

func TestCompileDeadCodeAfterReturn(t *testing.T) {
	// Statements after return must not corrupt the CFG.
	m := compileOne(t, "fn f() { return 1; var x = 2; x = 3; }")
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	m := compileOne(t, "fn f(a, b) { return a && b; }")
	// && must lower to branching, not a plain And.
	brs := 0
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpBr {
			brs++
		}
	})
	if brs == 0 {
		t.Fatal("&& lowered without branches")
	}
}

func TestCompileIntrinsics(t *testing.T) {
	m := compileOne(t, `
fn f() {
    var p = pmalloc(4);
    p[0] = 9;
    persist(p, 1);
    txbegin();
    p[1] = 8;
    txcommit();
    setroot(0, p);
    var q = getroot(0);
    var s = pmsize(q);
    pfree(p);
    var v = valloc(2);
    vfree(v);
    yield();
    lock(p);
    unlock(p);
    assert(1);
    emit(5);
    recover_begin();
    recover_end();
    return s;
}`)
	want := []Op{OpPmalloc, OpPersist, OpTxBegin, OpTxCommit, OpSetRoot, OpGetRoot,
		OpPmSize, OpPfree, OpValloc, OpVfree, OpYield, OpLock, OpUnlock,
		OpAssert, OpEmit, OpRecoverBegin, OpRecoverEnd}
	seen := map[Op]bool{}
	m.Func("f").Instrs(func(in *Instr) { seen[in.Op] = true })
	for _, op := range want {
		if !seen[op] {
			t.Errorf("intrinsic op %v not emitted", op)
		}
	}
}

func TestCompileSpawn(t *testing.T) {
	m := compileOne(t, "fn w(a) { return a; } fn f() { spawn w(3); }")
	found := false
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpSpawn && in.Callee == "w" {
			found = true
		}
	})
	if !found {
		t.Fatal("spawn not lowered")
	}
}

func TestCompileSpawnIntrinsicRejected(t *testing.T) {
	if _, err := CompileSource("t", "fn f() { spawn yield(); }"); err == nil {
		t.Fatal("spawn of intrinsic accepted")
	}
}

func TestInstrIDsDense(t *testing.T) {
	m := compileOne(t, "fn f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }")
	f := m.Func("f")
	seen := map[int]bool{}
	count := 0
	f.Instrs(func(in *Instr) {
		if seen[in.ID] {
			t.Fatalf("duplicate instruction ID %d", in.ID)
		}
		seen[in.ID] = true
		if in.Block < 0 || in.Block >= len(f.Blocks) {
			t.Fatalf("bad owning block %d", in.Block)
		}
		count++
	})
	if count != f.NumInstrs {
		t.Fatalf("NumInstrs = %d, counted %d", f.NumInstrs, count)
	}
	for id := 0; id < count; id++ {
		if !seen[id] {
			t.Fatalf("instruction ID %d missing (not dense)", id)
		}
	}
}

func TestPredsComputation(t *testing.T) {
	m := compileOne(t, "fn f(c) { if (c) { return 1; } return 2; }")
	f := m.Func("f")
	preds := Preds(f)
	// The entry block has no predecessors.
	if len(preds[0]) != 0 {
		t.Fatalf("entry preds = %v", preds[0])
	}
	// Every non-entry reachable block must have >= 1 predecessor.
	reach := map[int]bool{0: true}
	work := []int{0}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range f.Blocks[b].Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	for bi := range f.Blocks {
		if bi != 0 && reach[bi] && len(preds[bi]) == 0 {
			t.Fatalf("reachable block %d has no preds", bi)
		}
	}
}

func TestVerifyCatchesBadTarget(t *testing.T) {
	m := compileOne(t, "fn f() { return 0; }")
	f := m.Func("f")
	f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = &Instr{Op: OpJmp, Target: 99}
	if err := Verify(m); err == nil {
		t.Fatal("bad jump target passed verification")
	}
}

func TestVerifyCatchesBadRegister(t *testing.T) {
	m := compileOne(t, "fn f() { return 0; }")
	f := m.Func("f")
	f.Blocks[0].Instrs[0] = &Instr{Op: OpMov, Dst: 0, Args: []int{50}}
	if err := Verify(m); err == nil {
		t.Fatal("bad register passed verification")
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := compileOne(t, "fn f() { return 0; }")
	f := m.Func("f")
	f.Blocks[0].Instrs = append([]*Instr{{Op: OpRet}}, f.Blocks[0].Instrs...)
	if err := Verify(m); err == nil {
		t.Fatal("mid-block terminator passed verification")
	}
}

func TestPrintListing(t *testing.T) {
	m := compileOne(t, `
var g = 1;
fn f(p) {
    var x = p[0];
    p[1] = x * 2;
    persist(p, 2);
    return x;
}`)
	text := Print(m)
	for _, want := range []string{"global 0 g = 1", "func f(", "load", "store", "persist", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q:\n%s", want, text)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic on bad source")
		}
	}()
	MustCompile("bad", "fn f( {")
}
