package ir

import (
	"fmt"
	"strings"
)

// Print renders a module as readable IR text for debugging, golden tests,
// and cmd/pmlc -dump.
func Print(m *Module) string {
	var b strings.Builder
	for i, g := range m.Globals {
		fmt.Fprintf(&b, "global %d %s = %d\n", i, g.Name, g.Init)
	}
	for _, f := range m.Funcs {
		PrintFunc(&b, f)
	}
	return b.String()
}

// PrintFunc writes one function's IR listing.
func PrintFunc(b *strings.Builder, f *Function) {
	params := make([]string, f.NumParams)
	for i := range params {
		params[i] = fmt.Sprintf("r%d:%s", i, f.RegNames[i])
	}
	fmt.Fprintf(b, "\nfunc %s(%s) regs=%d\n", f.Name, strings.Join(params, ", "), f.NumRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "b%d:\n", blk.Index)
		for _, in := range blk.Instrs {
			fmt.Fprintf(b, "  %s\n", FormatInstr(f, in))
		}
	}
}

// FormatInstr renders one instruction.
func FormatInstr(f *Function, in *Instr) string {
	reg := func(r int) string {
		if f != nil && r >= 0 && r < len(f.RegNames) {
			return fmt.Sprintf("r%d(%s)", r, f.RegNames[r])
		}
		return fmt.Sprintf("r%d", r)
	}
	var s string
	switch in.Op {
	case OpConst:
		s = fmt.Sprintf("%s = const %d", reg(in.Dst), in.Imm)
	case OpMov:
		s = fmt.Sprintf("%s = %s", reg(in.Dst), reg(in.Args[0]))
	case OpBin:
		s = fmt.Sprintf("%s = %s %v %s", reg(in.Dst), reg(in.Args[0]), BinOp(in.Imm), reg(in.Args[1]))
	case OpUn:
		s = fmt.Sprintf("%s = %v%s", reg(in.Dst), UnOp(in.Imm), reg(in.Args[0]))
	case OpLoad:
		s = fmt.Sprintf("%s = load %s+%d", reg(in.Dst), reg(in.Args[0]), in.Off)
	case OpStore:
		s = fmt.Sprintf("store %s+%d, %s", reg(in.Args[0]), in.Off, reg(in.Args[1]))
	case OpGlobLoad:
		s = fmt.Sprintf("%s = gload @%d", reg(in.Dst), in.Imm)
	case OpGlobStore:
		s = fmt.Sprintf("gstore @%d, %s", in.Imm, reg(in.Args[0]))
	case OpCall, OpSpawn:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = reg(a)
		}
		if in.Op == OpSpawn {
			s = fmt.Sprintf("spawn %s(%s)", in.Callee, strings.Join(args, ", "))
		} else {
			s = fmt.Sprintf("%s = call %s(%s)", reg(in.Dst), in.Callee, strings.Join(args, ", "))
		}
	case OpRet:
		if len(in.Args) == 1 {
			s = fmt.Sprintf("ret %s", reg(in.Args[0]))
		} else {
			s = "ret"
		}
	case OpJmp:
		s = fmt.Sprintf("jmp b%d", in.Target)
	case OpBr:
		s = fmt.Sprintf("br %s, b%d, b%d", reg(in.Args[0]), in.Target, in.Target2)
	default:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = reg(a)
		}
		if in.HasDst() {
			s = fmt.Sprintf("%s = %v(%s)", reg(in.Dst), in.Op, strings.Join(args, ", "))
		} else {
			s = fmt.Sprintf("%v(%s)", in.Op, strings.Join(args, ", "))
		}
	}
	if in.GUID != 0 {
		s += fmt.Sprintf("  ; guid=%d", in.GUID)
	}
	if in.Pos.IsValid() {
		s += fmt.Sprintf("  ; %v", in.Pos)
	}
	return s
}
