package ir

import "fmt"

// Verify checks module well-formedness: every block is terminated exactly at
// its end, branch targets are in range, register indices are valid, calls
// resolve to defined functions with matching arity, and globals referenced
// by index exist. Compile runs it automatically; it is exported so tests and
// tools can validate hand-built IR.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("function %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if f.NumParams > f.NumRegs {
		return fmt.Errorf("NumParams %d > NumRegs %d", f.NumParams, f.NumRegs)
	}
	if len(f.RegNames) != f.NumRegs {
		return fmt.Errorf("RegNames length %d != NumRegs %d", len(f.RegNames), f.NumRegs)
	}
	checkReg := func(r int, in *Instr) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("block %d: %v: register %d out of range [0,%d)", in.Block, in.Op, r, f.NumRegs)
		}
		return nil
	}
	checkTarget := func(t int, in *Instr) error {
		if t < 0 || t >= len(f.Blocks) {
			return fmt.Errorf("block %d: %v: target %d out of range", in.Block, in.Op, t)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block %d has Index %d", bi, b.Index)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d is empty", bi)
		}
		for k, in := range b.Instrs {
			isLast := k == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("block %d does not end in a terminator (%v)", bi, in.Op)
				}
				return fmt.Errorf("block %d: terminator %v not at block end", bi, in.Op)
			}
			if in.HasDst() {
				if err := checkReg(in.Dst, in); err != nil {
					return err
				}
			}
			for _, a := range in.Args {
				if err := checkReg(a, in); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpJmp:
				if err := checkTarget(in.Target, in); err != nil {
					return err
				}
			case OpBr:
				if err := checkTarget(in.Target, in); err != nil {
					return err
				}
				if err := checkTarget(in.Target2, in); err != nil {
					return err
				}
				if len(in.Args) != 1 {
					return fmt.Errorf("block %d: br with %d args", bi, len(in.Args))
				}
			case OpRet:
				if len(in.Args) > 1 {
					return fmt.Errorf("block %d: ret with %d args", bi, len(in.Args))
				}
			case OpCall, OpSpawn:
				callee := m.Func(in.Callee)
				if callee == nil {
					return fmt.Errorf("block %d: call to undefined function %q", bi, in.Callee)
				}
				if len(in.Args) != callee.NumParams {
					return fmt.Errorf("block %d: call %s with %d args, want %d",
						bi, in.Callee, len(in.Args), callee.NumParams)
				}
			case OpGlobLoad, OpGlobStore:
				if in.Imm < 0 || int(in.Imm) >= len(m.Globals) {
					return fmt.Errorf("block %d: global index %d out of range", bi, in.Imm)
				}
			case OpPersist, OpFlush:
				// persist(addr, nwords) / flush(addr, nwords): exactly two
				// source registers, no destination. Malformed arities used to
				// slip through and fault only when the VM indexed Args.
				if len(in.Args) != 2 {
					return fmt.Errorf("block %d: %v with %d args, want 2", bi, in.Op, len(in.Args))
				}
				if in.HasDst() {
					return fmt.Errorf("block %d: %v with a destination register", bi, in.Op)
				}
			case OpFence:
				if len(in.Args) != 0 {
					return fmt.Errorf("block %d: fence with %d args, want 0", bi, len(in.Args))
				}
				if in.HasDst() {
					return fmt.Errorf("block %d: fence with a destination register", bi)
				}
			case OpPmalloc, OpGetRoot, OpPmSize, OpValloc:
				if len(in.Args) != 1 {
					return fmt.Errorf("block %d: %v with %d args, want 1", bi, in.Op, len(in.Args))
				}
				if !in.HasDst() {
					return fmt.Errorf("block %d: %v without a destination register", bi, in.Op)
				}
			case OpPfree, OpVfree:
				if len(in.Args) != 1 {
					return fmt.Errorf("block %d: %v with %d args, want 1", bi, in.Op, len(in.Args))
				}
			case OpSetRoot:
				if len(in.Args) != 2 {
					return fmt.Errorf("block %d: setroot with %d args, want 2", bi, len(in.Args))
				}
			case OpPmRealloc:
				if len(in.Args) != 2 {
					return fmt.Errorf("block %d: pmrealloc with %d args, want 2", bi, len(in.Args))
				}
				if !in.HasDst() {
					return fmt.Errorf("block %d: pmrealloc without a destination register", bi)
				}
			case OpLoad:
				if len(in.Args) != 1 {
					return fmt.Errorf("block %d: load with %d args, want 1", bi, len(in.Args))
				}
			case OpStore:
				if len(in.Args) != 2 {
					return fmt.Errorf("block %d: store with %d args, want 2", bi, len(in.Args))
				}
			}
		}
	}
	return nil
}
