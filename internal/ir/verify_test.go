package ir

import (
	"strings"
	"testing"
)

// findOp returns the first instruction with the given op, failing the test
// when the program contains none.
func findOp(t *testing.T, m *Module, op Op) *Instr {
	t.Helper()
	var found *Instr
	for _, f := range m.Funcs {
		f.Instrs(func(in *Instr) {
			if found == nil && in.Op == op {
				found = in
			}
		})
	}
	if found == nil {
		t.Fatalf("no %v instruction in module", op)
	}
	return found
}

const persistProg = `fn f() {
    var p = pmalloc(2);
    p[0] = 1;
    persist(p, 2);
    flush(p, 1);
    fence();
    return 0;
}`

// The persistence ops have fixed shapes the VM indexes blindly; Verify must
// reject every malformed variant instead of letting it fault at runtime.
func TestVerifyRejectsMalformedPersistenceOps(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Module)
		want   string
	}{
		{
			"persist with one arg",
			func(m *Module) { findOp(t, m, OpPersist).Args = findOp(t, m, OpPersist).Args[:1] },
			"want 2",
		},
		{
			"persist with three args",
			func(m *Module) {
				in := findOp(t, m, OpPersist)
				in.Args = append(in.Args, in.Args[0])
			},
			"want 2",
		},
		{
			"persist with destination",
			func(m *Module) { findOp(t, m, OpPersist).Dst = 0 },
			"destination",
		},
		{
			"persist with out-of-range register",
			func(m *Module) { findOp(t, m, OpPersist).Args[1] = 99 },
			"out of range",
		},
		{
			"flush with no args",
			func(m *Module) { findOp(t, m, OpFlush).Args = nil },
			"want 2",
		},
		{
			"flush with destination",
			func(m *Module) { findOp(t, m, OpFlush).Dst = 0 },
			"destination",
		},
		{
			"fence with an arg",
			func(m *Module) { findOp(t, m, OpFence).Args = []int{0} },
			"want 0",
		},
		{
			"fence with destination",
			func(m *Module) { findOp(t, m, OpFence).Dst = 0 },
			"destination",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := CompileSource("t", persistProg)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(m); err != nil {
				t.Fatalf("well-formed module rejected: %v", err)
			}
			tc.mutate(m)
			err = Verify(m)
			if err == nil {
				t.Fatalf("%s passed verification", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
