package ir

import (
	"fmt"

	"arthas/internal/pml"
)

// Compile lowers a parsed PML program to an IR module and verifies it.
func Compile(name string, prog *pml.Program) (*Module, error) {
	m := &Module{
		Name:    name,
		FuncIdx: map[string]*Function{},
		GlobIdx: map[string]int{},
	}
	for i, g := range prog.Globals {
		m.Globals = append(m.Globals, Global{Name: g.Name, Init: g.Init})
		m.GlobIdx[g.Name] = i
	}
	for _, f := range prog.Funcs {
		fn, err := compileFunc(m, f)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fn)
		m.FuncIdx[fn.Name] = fn
	}
	if err := Verify(m); err != nil {
		return nil, err
	}
	return m, nil
}

// CompileSource parses and lowers PML source in one step.
func CompileSource(name, src string) (*Module, error) {
	prog, err := pml.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return Compile(name, prog)
}

// MustCompile compiles or panics; for embedded system sources and tests.
func MustCompile(name, src string) *Module {
	m, err := CompileSource(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// fnCompiler holds per-function lowering state.
type fnCompiler struct {
	mod    *Module
	fn     *Function
	decl   *pml.FuncDecl
	scopes []map[string]int // name -> register; innermost last
	cur    *Block
	// loop context stacks for break/continue
	breakTargets    []int
	continueTargets []int
}

func compileFunc(m *Module, decl *pml.FuncDecl) (*Function, error) {
	fn := &Function{
		Name:      decl.Name,
		NumParams: len(decl.Params),
		Pos:       decl.Pos,
	}
	c := &fnCompiler{mod: m, fn: fn, decl: decl}
	c.pushScope()
	for _, p := range decl.Params {
		if _, dup := c.scopes[0][p]; dup {
			return nil, fmt.Errorf("%v: duplicate parameter %q in %s", decl.Pos, p, decl.Name)
		}
		c.scopes[0][p] = c.newReg(p)
	}
	c.cur = c.newBlock()
	if err := c.block(decl.Body); err != nil {
		return nil, err
	}
	// Implicit `return 0` on fall-through.
	if c.cur.Terminator() == nil {
		zero := c.newReg("")
		c.emit(&Instr{Op: OpConst, Dst: zero, Imm: 0, Pos: decl.Pos})
		c.emit(&Instr{Op: OpRet, Args: []int{zero}, Pos: decl.Pos})
	}
	fn.finalize()
	return fn, nil
}

func (c *fnCompiler) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *fnCompiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *fnCompiler) lookupLocal(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (c *fnCompiler) newReg(name string) int {
	r := c.fn.NumRegs
	c.fn.NumRegs++
	if name == "" {
		name = fmt.Sprintf("%%t%d", r)
	}
	c.fn.RegNames = append(c.fn.RegNames, name)
	return r
}

func (c *fnCompiler) newBlock() *Block {
	b := &Block{Index: len(c.fn.Blocks)}
	c.fn.Blocks = append(c.fn.Blocks, b)
	return b
}

func (c *fnCompiler) emit(in *Instr) { c.cur.Instrs = append(c.cur.Instrs, in) }

// setCur switches emission to block b; if the current block lacks a
// terminator the caller must have already emitted a jump.
func (c *fnCompiler) setCur(b *Block) { c.cur = b }

// jumpTo emits a jmp to b if the current block is not yet terminated.
func (c *fnCompiler) jumpTo(b *Block, pos pml.Pos) {
	if c.cur.Terminator() == nil {
		c.emit(&Instr{Op: OpJmp, Target: b.Index, Pos: pos})
	}
}

func (c *fnCompiler) block(b *pml.BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if c.cur.Terminator() != nil {
			// Dead code after break/continue/return: lower into a fresh
			// unreachable block to keep the CFG well-formed.
			c.setCur(c.newBlock())
		}
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCompiler) stmt(s pml.Stmt) error {
	switch s := s.(type) {
	case *pml.BlockStmt:
		return c.block(s)

	case *pml.VarStmt:
		if _, dup := c.scopes[len(c.scopes)-1][s.Name]; dup {
			return fmt.Errorf("%v: %q redeclared in this scope", s.Pos, s.Name)
		}
		var val int
		var err error
		if s.Init != nil {
			val, err = c.expr(s.Init)
			if err != nil {
				return err
			}
		} else {
			val = c.newReg("")
			c.emit(&Instr{Op: OpConst, Dst: val, Imm: 0, Pos: s.Pos})
		}
		reg := c.newReg(s.Name)
		c.scopes[len(c.scopes)-1][s.Name] = reg
		c.emit(&Instr{Op: OpMov, Dst: reg, Args: []int{val}, Pos: s.Pos})
		return nil

	case *pml.AssignStmt:
		switch lhs := s.LHS.(type) {
		case *pml.Ident:
			val, err := c.expr(s.RHS)
			if err != nil {
				return err
			}
			if reg, ok := c.lookupLocal(lhs.Name); ok {
				c.emit(&Instr{Op: OpMov, Dst: reg, Args: []int{val}, Pos: s.Pos})
				return nil
			}
			if gi, ok := c.mod.GlobIdx[lhs.Name]; ok {
				c.emit(&Instr{Op: OpGlobStore, Args: []int{val}, Imm: int64(gi), Pos: s.Pos})
				return nil
			}
			return fmt.Errorf("%v: undefined variable %q", lhs.Pos, lhs.Name)
		case *pml.IndexExpr:
			base, off, offReg, err := c.address(lhs)
			if err != nil {
				return err
			}
			val, err := c.expr(s.RHS)
			if err != nil {
				return err
			}
			addr := base
			if offReg >= 0 {
				addr = c.newReg("")
				c.emit(&Instr{Op: OpBin, Dst: addr, Imm: int64(Add), Args: []int{base, offReg}, Pos: s.Pos})
			}
			c.emit(&Instr{Op: OpStore, Args: []int{addr, val}, Off: off, Pos: s.Pos})
			return nil
		}
		return fmt.Errorf("%v: invalid assignment target", s.Pos)

	case *pml.ExprStmt:
		_, err := c.exprOpt(s.X, false)
		return err

	case *pml.IfStmt:
		return c.ifStmt(s)

	case *pml.WhileStmt:
		head := c.newBlock()
		c.jumpTo(head, s.Pos)
		c.setCur(head)
		cond, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		body := c.newBlock()
		exit := c.newBlock()
		c.emit(&Instr{Op: OpBr, Args: []int{cond}, Target: body.Index, Target2: exit.Index, Pos: s.Pos})
		c.breakTargets = append(c.breakTargets, exit.Index)
		c.continueTargets = append(c.continueTargets, head.Index)
		c.setCur(body)
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.jumpTo(head, s.Pos)
		c.breakTargets = c.breakTargets[:len(c.breakTargets)-1]
		c.continueTargets = c.continueTargets[:len(c.continueTargets)-1]
		c.setCur(exit)
		return nil

	case *pml.BreakStmt:
		if len(c.breakTargets) == 0 {
			return fmt.Errorf("%v: break outside loop", s.Pos)
		}
		c.emit(&Instr{Op: OpJmp, Target: c.breakTargets[len(c.breakTargets)-1], Pos: s.Pos})
		return nil

	case *pml.ContinueStmt:
		if len(c.continueTargets) == 0 {
			return fmt.Errorf("%v: continue outside loop", s.Pos)
		}
		c.emit(&Instr{Op: OpJmp, Target: c.continueTargets[len(c.continueTargets)-1], Pos: s.Pos})
		return nil

	case *pml.ReturnStmt:
		if s.X == nil {
			zero := c.newReg("")
			c.emit(&Instr{Op: OpConst, Dst: zero, Imm: 0, Pos: s.Pos})
			c.emit(&Instr{Op: OpRet, Args: []int{zero}, Pos: s.Pos})
			return nil
		}
		val, err := c.expr(s.X)
		if err != nil {
			return err
		}
		c.emit(&Instr{Op: OpRet, Args: []int{val}, Pos: s.Pos})
		return nil

	case *pml.SpawnStmt:
		if pml.IsIntrinsic(s.Callee) {
			return fmt.Errorf("%v: cannot spawn intrinsic %q", s.Pos, s.Callee)
		}
		args := make([]int, len(s.Args))
		for i, a := range s.Args {
			r, err := c.expr(a)
			if err != nil {
				return err
			}
			args[i] = r
		}
		c.emit(&Instr{Op: OpSpawn, Callee: s.Callee, Args: args, Pos: s.Pos})
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (c *fnCompiler) ifStmt(s *pml.IfStmt) error {
	cond, err := c.expr(s.Cond)
	if err != nil {
		return err
	}
	thenB := c.newBlock()
	var elseB *Block
	exit := c.newBlock()
	if s.Else != nil {
		elseB = c.newBlock()
		c.emit(&Instr{Op: OpBr, Args: []int{cond}, Target: thenB.Index, Target2: elseB.Index, Pos: s.Pos})
	} else {
		c.emit(&Instr{Op: OpBr, Args: []int{cond}, Target: thenB.Index, Target2: exit.Index, Pos: s.Pos})
	}
	c.setCur(thenB)
	if err := c.block(s.Then); err != nil {
		return err
	}
	c.jumpTo(exit, s.Pos)
	if s.Else != nil {
		c.setCur(elseB)
		if err := c.stmt(s.Else); err != nil {
			return err
		}
		c.jumpTo(exit, s.Pos)
	}
	c.setCur(exit)
	return nil
}

// address lowers an IndexExpr target to (baseReg, constOff, offReg). If the
// index is a constant literal, offReg is -1 and constOff carries it, giving
// the pointer analysis field sensitivity; otherwise constOff is 0 and offReg
// holds the computed index.
func (c *fnCompiler) address(e *pml.IndexExpr) (base int, off int64, offReg int, err error) {
	base, err = c.expr(e.Base)
	if err != nil {
		return 0, 0, -1, err
	}
	if n, ok := e.Idx.(*pml.NumLit); ok {
		return base, n.Val, -1, nil
	}
	offReg, err = c.expr(e.Idx)
	if err != nil {
		return 0, 0, -1, err
	}
	return base, 0, offReg, nil
}

func (c *fnCompiler) expr(e pml.Expr) (int, error) { return c.exprOpt(e, true) }

// exprOpt lowers an expression. If needValue is false (expression statement),
// calls may discard their result.
func (c *fnCompiler) exprOpt(e pml.Expr, needValue bool) (int, error) {
	switch e := e.(type) {
	case *pml.NumLit:
		r := c.newReg("")
		c.emit(&Instr{Op: OpConst, Dst: r, Imm: e.Val, Pos: e.Pos})
		return r, nil

	case *pml.Ident:
		if reg, ok := c.lookupLocal(e.Name); ok {
			return reg, nil
		}
		if gi, ok := c.mod.GlobIdx[e.Name]; ok {
			r := c.newReg("")
			c.emit(&Instr{Op: OpGlobLoad, Dst: r, Imm: int64(gi), Pos: e.Pos})
			return r, nil
		}
		return 0, fmt.Errorf("%v: undefined variable %q", e.Pos, e.Name)

	case *pml.IndexExpr:
		base, off, offReg, err := c.address(e)
		if err != nil {
			return 0, err
		}
		addr := base
		if offReg >= 0 {
			addr = c.newReg("")
			c.emit(&Instr{Op: OpBin, Dst: addr, Imm: int64(Add), Args: []int{base, offReg}, Pos: e.Pos})
		}
		r := c.newReg("")
		c.emit(&Instr{Op: OpLoad, Dst: r, Args: []int{addr}, Off: off, Pos: e.Pos})
		return r, nil

	case *pml.UnaryExpr:
		x, err := c.expr(e.X)
		if err != nil {
			return 0, err
		}
		r := c.newReg("")
		var u UnOp
		switch e.Op {
		case pml.Minus:
			u = Neg
		case pml.Not:
			u = LogNot
		case pml.Tilde:
			u = BitNot
		default:
			return 0, fmt.Errorf("%v: bad unary op %v", e.Pos, e.Op)
		}
		c.emit(&Instr{Op: OpUn, Dst: r, Imm: int64(u), Args: []int{x}, Pos: e.Pos})
		return r, nil

	case *pml.BinaryExpr:
		if e.Op == pml.AmpAmp || e.Op == pml.PipePipe {
			return c.shortCircuit(e)
		}
		l, err := c.expr(e.L)
		if err != nil {
			return 0, err
		}
		rr, err := c.expr(e.R)
		if err != nil {
			return 0, err
		}
		bop, ok := binOpOf(e.Op)
		if !ok {
			return 0, fmt.Errorf("%v: bad binary op %v", e.Pos, e.Op)
		}
		r := c.newReg("")
		c.emit(&Instr{Op: OpBin, Dst: r, Imm: int64(bop), Args: []int{l, rr}, Pos: e.Pos})
		return r, nil

	case *pml.CallExpr:
		return c.call(e, needValue)
	}
	return 0, fmt.Errorf("unhandled expression %T", e)
}

func binOpOf(k pml.Kind) (BinOp, bool) {
	switch k {
	case pml.Plus:
		return Add, true
	case pml.Minus:
		return Sub, true
	case pml.Star:
		return Mul, true
	case pml.Slash:
		return Div, true
	case pml.Percent:
		return Mod, true
	case pml.Amp:
		return And, true
	case pml.Pipe:
		return Or, true
	case pml.Caret:
		return Xor, true
	case pml.Shl:
		return Shl, true
	case pml.Shr:
		return Shr, true
	case pml.Lt:
		return Lt, true
	case pml.Le:
		return Le, true
	case pml.Gt:
		return Gt, true
	case pml.Ge:
		return Ge, true
	case pml.EqEq:
		return Eq, true
	case pml.NotEq:
		return Ne, true
	}
	return 0, false
}

// shortCircuit lowers && and || to control flow producing a 0/1 result.
func (c *fnCompiler) shortCircuit(e *pml.BinaryExpr) (int, error) {
	res := c.newReg("")
	l, err := c.expr(e.L)
	if err != nil {
		return 0, err
	}
	rhsB := c.newBlock()
	shortB := c.newBlock()
	exit := c.newBlock()
	if e.Op == pml.AmpAmp {
		c.emit(&Instr{Op: OpBr, Args: []int{l}, Target: rhsB.Index, Target2: shortB.Index, Pos: e.Pos})
	} else {
		c.emit(&Instr{Op: OpBr, Args: []int{l}, Target: shortB.Index, Target2: rhsB.Index, Pos: e.Pos})
	}
	// Short-circuit value: 0 for &&, 1 for ||.
	c.setCur(shortB)
	short := int64(0)
	if e.Op == pml.PipePipe {
		short = 1
	}
	c.emit(&Instr{Op: OpConst, Dst: res, Imm: short, Pos: e.Pos})
	c.emit(&Instr{Op: OpJmp, Target: exit.Index, Pos: e.Pos})
	// RHS value, normalized to 0/1.
	c.setCur(rhsB)
	r, err := c.expr(e.R)
	if err != nil {
		return 0, err
	}
	zero := c.newReg("")
	c.emit(&Instr{Op: OpConst, Dst: zero, Imm: 0, Pos: e.Pos})
	c.emit(&Instr{Op: OpBin, Dst: res, Imm: int64(Ne), Args: []int{r, zero}, Pos: e.Pos})
	c.emit(&Instr{Op: OpJmp, Target: exit.Index, Pos: e.Pos})
	c.setCur(exit)
	return res, nil
}

// intrinsic lowering table: op, whether it yields a value.
var intrinsicOps = map[string]struct {
	op     Op
	hasDst bool
}{
	"pmalloc":       {OpPmalloc, true},
	"pfree":         {OpPfree, false},
	"persist":       {OpPersist, false},
	"flush":         {OpFlush, false},
	"fence":         {OpFence, false},
	"txbegin":       {OpTxBegin, false},
	"txcommit":      {OpTxCommit, false},
	"setroot":       {OpSetRoot, false},
	"getroot":       {OpGetRoot, true},
	"pmsize":        {OpPmSize, true},
	"pmrealloc":     {OpPmRealloc, true},
	"valloc":        {OpValloc, true},
	"vfree":         {OpVfree, false},
	"yield":         {OpYield, false},
	"lock":          {OpLock, false},
	"unlock":        {OpUnlock, false},
	"assert":        {OpAssert, false},
	"fail":          {OpFail, false},
	"emit":          {OpEmit, false},
	"recover_begin": {OpRecoverBegin, false},
	"recover_end":   {OpRecoverEnd, false},
}

func (c *fnCompiler) call(e *pml.CallExpr, needValue bool) (int, error) {
	args := make([]int, len(e.Args))
	for i, a := range e.Args {
		r, err := c.expr(a)
		if err != nil {
			return 0, err
		}
		args[i] = r
	}
	if spec, ok := intrinsicOps[e.Callee]; ok {
		dst := -1
		if spec.hasDst {
			dst = c.newReg("")
		}
		c.emit(&Instr{Op: spec.op, Dst: dst, Args: args, Pos: e.Pos})
		if spec.hasDst {
			return dst, nil
		}
		if needValue {
			// Valueless intrinsic in value position evaluates to 0.
			z := c.newReg("")
			c.emit(&Instr{Op: OpConst, Dst: z, Imm: 0, Pos: e.Pos})
			return z, nil
		}
		return -1, nil
	}
	dst := c.newReg("")
	c.emit(&Instr{Op: OpCall, Dst: dst, Callee: e.Callee, Args: args, Pos: e.Pos})
	return dst, nil
}
