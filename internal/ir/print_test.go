package ir

import (
	"strings"
	"testing"
)

// Printer coverage: every opcode renders, GUIDs and positions annotate, and
// the listing is stable enough to diff in golden workflows.

func TestFormatInstrAllOps(t *testing.T) {
	m := compileOne(t, `
var g = 2;
fn callee(a) { return a; }
fn f(p, i) {
    var x = 1 + 2;
    var y = -x;
    var z = p[i];
    p[0] = z;
    g = x;
    var w = g;
    var c = callee(x);
    spawn callee(x);
    var q = pmalloc(2);
    var r = pmrealloc(q, 4);
    persist(r, 1);
    flush(r, 1);
    fence();
    txbegin();
    txcommit();
    setroot(0, r);
    var s = getroot(0);
    var sz = pmsize(s);
    pfree(r);
    var v = valloc(1);
    vfree(v);
    yield();
    lock(v);
    unlock(v);
    assert(1);
    emit(5);
    recover_begin();
    recover_end();
    if (x > 0) { return c + w + sz; }
    while (i < 3) { i = i + 1; }
    fail(2);
}`)
	listing := Print(m)
	for _, want := range []string{
		"const", "load", "store", "gload", "gstore", "call callee", "spawn callee",
		"pmalloc", "pmrealloc", "persist", "flush", "fence", "txbegin", "txcommit",
		"setroot", "getroot", "pmsize", "pfree", "valloc", "vfree", "yield",
		"lock", "unlock", "assert", "emit", "recover_begin", "recover_end",
		"br ", "jmp ", "ret", "fail",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	// Positions annotate every instruction line.
	if !strings.Contains(listing, "; 5:") {
		t.Error("listing lacks source positions")
	}
}

func TestFormatInstrGUIDAnnotation(t *testing.T) {
	m := compileOne(t, "fn f() { var p = pmalloc(1); p[0] = 1; persist(p, 1); }")
	var store *Instr
	m.Func("f").Instrs(func(in *Instr) {
		if in.Op == OpStore {
			store = in
		}
	})
	store.GUID = 42
	s := FormatInstr(m.Func("f"), store)
	if !strings.Contains(s, "guid=42") {
		t.Fatalf("no GUID annotation: %s", s)
	}
}

func TestOpStringAndBinUnNames(t *testing.T) {
	if OpStore.String() != "store" || OpFence.String() != "fence" {
		t.Fatal("op names broken")
	}
	if Op(9999).String() == "" {
		t.Fatal("unknown op renders empty")
	}
	for b := Add; b <= Ne; b++ {
		if b.String() == "" {
			t.Fatalf("binop %d renders empty", b)
		}
	}
	for _, u := range []UnOp{Neg, LogNot, BitNot} {
		if u.String() == "" {
			t.Fatalf("unop %d renders empty", u)
		}
	}
	if BinOp(99).String() == "" || UnOp(99).String() == "" {
		t.Fatal("unknown codes render empty")
	}
}

func TestVerifyGlobalsAndSpawnArity(t *testing.T) {
	if _, err := CompileSource("t", "fn w(a) { return a; } fn f() { spawn w(); }"); err == nil {
		t.Fatal("spawn arity mismatch accepted")
	}
	m := compileOne(t, "var g;\nfn f() { g = 1; return g; }")
	f := m.Func("f")
	// Corrupt the global index and re-verify.
	f.Instrs(func(in *Instr) {
		if in.Op == OpGlobStore {
			in.Imm = 7
		}
	})
	if err := Verify(m); err == nil {
		t.Fatal("bad global index passed verification")
	}
}
