// Package ir defines the intermediate representation PML programs are
// compiled to, and the AST→IR lowering.
//
// The IR plays the role LLVM IR plays for the paper's Arthas analyzer: a
// flat, explicit form on which def-use chains, pointer analysis, control
// dependence, and the Program Dependence Graph are computed, and which the
// VM interprets. It is a non-SSA register machine: each function has a set
// of numbered registers (parameters first, then named locals, then
// compiler temporaries) and a list of basic blocks whose final instruction
// is always a terminator (jmp/br/ret).
package ir

import (
	"fmt"

	"arthas/internal/pml"
)

// Op is an IR opcode.
type Op int

// Opcodes. The PM-facing intrinsics (Pmalloc..RecoverEnd) mirror the PMDK
// surface Arthas intercepts (paper §3.2).
const (
	OpConst     Op = iota // Dst = Imm
	OpMov                 // Dst = Args[0]
	OpBin                 // Dst = Args[0] <BinOp(Imm)> Args[1]
	OpUn                  // Dst = <UnOp(Imm)> Args[0]
	OpLoad                // Dst = mem[Args[0] + Off]
	OpStore               // mem[Args[0] + Off] = Args[1]
	OpGlobLoad            // Dst = globals[Imm]
	OpGlobStore           // globals[Imm] = Args[0]
	OpCall                // Dst = Callee(Args...)   (Dst may be -1)
	OpSpawn               // spawn Callee(Args...)
	OpRet                 // return Args[0] (or 0 if no args)
	OpJmp                 // goto Target
	OpBr                  // if Args[0] != 0 goto Target else Target2

	// PM intrinsics
	OpPmalloc // Dst = pmalloc(Args[0])        — persistent alloc (zeroed)
	OpPfree   // pfree(Args[0])
	OpPersist // persist(Args[0], Args[1])     — make words durable
	OpFlush   // flush(Args[0], Args[1])       — queue lines (clwb)
	OpFence   // fence()                       — drain queued lines (sfence)
	OpTxBegin
	OpTxCommit
	OpSetRoot   // setroot(Args[0], Args[1])
	OpGetRoot   // Dst = getroot(Args[0])
	OpPmSize    // Dst = pmsize(Args[0])
	OpPmRealloc // Dst = pmrealloc(Args[0], Args[1])

	// volatile + runtime intrinsics
	OpValloc // Dst = valloc(Args[0])          — volatile alloc (zeroed)
	OpVfree
	OpYield
	OpLock   // lock(Args[0])
	OpUnlock // unlock(Args[0])
	OpAssert // trap if Args[0] == 0
	OpFail   // trap with code Args[0]
	OpEmit   // append Args[0] to output
	OpRecoverBegin
	OpRecoverEnd
)

var opNames = [...]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpUn: "un",
	OpLoad: "load", OpStore: "store",
	OpGlobLoad: "gload", OpGlobStore: "gstore",
	OpCall: "call", OpSpawn: "spawn", OpRet: "ret", OpJmp: "jmp", OpBr: "br",
	OpPmalloc: "pmalloc", OpPfree: "pfree", OpPersist: "persist",
	OpFlush: "flush", OpFence: "fence",
	OpTxBegin: "txbegin", OpTxCommit: "txcommit",
	OpSetRoot: "setroot", OpGetRoot: "getroot", OpPmSize: "pmsize",
	OpPmRealloc: "pmrealloc",
	OpValloc:    "valloc", OpVfree: "vfree", OpYield: "yield",
	OpLock: "lock", OpUnlock: "unlock",
	OpAssert: "assert", OpFail: "fail", OpEmit: "emit",
	OpRecoverBegin: "recover_begin", OpRecoverEnd: "recover_end",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpRet || o == OpJmp || o == OpBr }

// BinOp codes stored in Instr.Imm for OpBin.
type BinOp int64

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
)

var binNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", int64(b))
}

// UnOp codes stored in Instr.Imm for OpUn.
type UnOp int64

// Unary operators.
const (
	Neg    UnOp = iota // arithmetic negation
	LogNot             // !x -> 0/1
	BitNot             // ~x
)

func (u UnOp) String() string {
	switch u {
	case Neg:
		return "-"
	case LogNot:
		return "!"
	case BitNot:
		return "~"
	}
	return fmt.Sprintf("un(%d)", int64(u))
}

// Instr is one IR instruction. Instructions are identified by pointer; the
// dense per-function ID is used for bitset-based dataflow.
type Instr struct {
	Op      Op
	Dst     int   // destination register, -1 if none
	Args    []int // source registers
	Imm     int64 // constant / BinOp / UnOp / global index
	Off     int64 // constant word offset for OpLoad/OpStore (field sensitivity)
	Callee  string
	Target  int // block index (jmp, br-true)
	Target2 int // block index (br-false)
	Pos     pml.Pos
	ID      int // dense per-function id, assigned by finalize
	Block   int // owning block index, assigned by finalize

	// GUID is the globally-unique PM-instruction identifier the Arthas
	// analyzer assigns during instrumentation (paper §4.1); 0 = not a
	// traced instruction.
	GUID int
}

// HasDst reports whether the instruction defines a register.
func (in *Instr) HasDst() bool { return in.Dst >= 0 }

// Block is a basic block: zero or more straight-line instructions followed
// by exactly one terminator.
type Block struct {
	Index  int
	Instrs []*Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor block indices.
func (b *Block) Succs() []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpJmp:
		return []int{t.Target}
	case OpBr:
		return []int{t.Target, t.Target2}
	}
	return nil
}

// Function is a compiled PML function.
type Function struct {
	Name      string
	NumParams int
	NumRegs   int
	RegNames  []string // len == NumRegs; temporaries are "%tN"
	Blocks    []*Block
	NumInstrs int // dense instruction-ID space size
	Pos       pml.Pos
}

// Instrs iterates all instructions in block order.
func (f *Function) Instrs(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Finalize reassigns dense instruction IDs and owning-block indices after a
// transformation (e.g. internal/opt) mutated the block list. Compile calls
// it automatically; passes that insert or delete instructions must call it
// before handing the function back to analysis or the VM.
func (f *Function) Finalize() { f.finalize() }

// finalize assigns dense IDs and owning-block indices.
func (f *Function) finalize() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			in.Block = b.Index
			id++
		}
	}
	f.NumInstrs = id
}

// Global is a module-level volatile variable.
type Global struct {
	Name string
	Init int64
}

// Module is a compiled PML program.
type Module struct {
	Name    string // diagnostic name (e.g. the target system's name)
	Funcs   []*Function
	FuncIdx map[string]*Function
	Globals []Global
	GlobIdx map[string]int
}

// Func returns the named function or nil.
func (m *Module) Func(name string) *Function { return m.FuncIdx[name] }

// Preds computes the predecessor lists for a function's CFG.
func Preds(f *Function) [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.Index)
		}
	}
	return preds
}
