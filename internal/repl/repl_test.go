package repl_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/repl"
)

// kvSource is a small persistent KV map exercising every replicated event
// kind: allocation + zeroing (pmalloc), plain persists, transactional
// persists, frees, and root updates.
const kvSource = `
fn init_() {
    var root = pmalloc(8);
    root[0] = 0;
    persist(root, 1);
    setroot(0, root);
    return 0;
}
fn put(k, v) {
    var root = getroot(0);
    var it = pmalloc(3);
    it[0] = k;
    it[1] = v;
    it[2] = root[0];
    txbegin();
    persist(it, 3);
    txcommit();
    root[0] = it;
    persist(root, 1);
    return 0;
}
fn get(k) {
    var root = getroot(0);
    var it = root[0];
    while (it != 0) {
        if (it[0] == k) { return it[1]; }
        it = it[2];
    }
    return 0 - 1;
}
fn drop_head() {
    var root = getroot(0);
    var it = root[0];
    if (it == 0) { return 0 - 1; }
    root[0] = it[2];
    persist(root, 1);
    pfree(it);
    return 0;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var n = 0;
    var it = root[0];
    while (it != 0) {
        n = n + 1;
        it = it[2];
    }
    recover_end();
    return n;
}
`

// rig builds a primary instance with a shipper tapped into its hooks and a
// session replicating it.
func rig(t *testing.T) (*arthas.Instance, *repl.Session) {
	t.Helper()
	sh := repl.NewShipper()
	var inst *arthas.Instance
	cfg := arthas.Config{
		PoolWords: 1 << 12,
		RecoverFn: "recover_",
		WrapHooks: sh.WrapHooks,
	}
	inst, err := arthas.New("kv", kvSource, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := repl.NewSession(sh, 42, func() (*pmem.Pool, *checkpoint.Log) {
		return inst.Pool, inst.Log
	})
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	return inst, sess
}

func mustCall(t *testing.T, inst *arthas.Instance, fn string, args ...int64) int64 {
	t.Helper()
	v, trap := inst.Call(fn, args...)
	if trap != nil {
		t.Fatalf("%s%v: %v", fn, args, trap)
	}
	return v
}

func assertIdentical(t *testing.T, inst *arthas.Instance, sess *repl.Session) {
	t.Helper()
	prim := inst.Pool.DurableImage()
	rep := sess.ReplicaImage()
	if rep == nil {
		t.Fatal("no replica image")
	}
	if len(prim) != len(rep) {
		t.Fatalf("image sizes differ: %d vs %d", len(prim), len(rep))
	}
	for i := range prim {
		if prim[i] != rep[i] {
			t.Fatalf("durable images diverge at word %d: %#x vs %#x", i, prim[i], rep[i])
		}
	}
}

func TestStreamReplicationWordIdentical(t *testing.T) {
	inst, sess := rig(t)
	for k := int64(1); k <= 20; k++ {
		mustCall(t, inst, "put", k, 100+k)
		if k%3 == 0 {
			if err := sess.Ship(); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustCall(t, inst, "drop_head")
	mustCall(t, inst, "put", 99, 1234)
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	if lag := sess.Lag(); lag != 0 {
		t.Fatalf("lag after ship = %d", lag)
	}
	assertIdentical(t, inst, sess)
	st := sess.Status()
	if !st.Connected || st.Resyncs != 1 || st.Records == 0 {
		t.Fatalf("status: %+v", st)
	}
}

func TestTruncatedBatchRetainedAndReshipped(t *testing.T) {
	inst, sess := rig(t)
	mustCall(t, inst, "put", 1, 101)
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	mustCall(t, inst, "put", 2, 102)
	mustCall(t, inst, "put", 3, 103)
	cut := true
	sess.LinkFault = func(b []byte) []byte {
		if cut && len(b) > 12 {
			cut = false
			return b[:len(b)-12] // mid-record: tears the final record's tail
		}
		return b
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	st := sess.Status()
	if st.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", st.Truncations)
	}
	if st.Lag != 0 {
		t.Fatalf("lag after re-ship = %d", st.Lag)
	}
	assertIdentical(t, inst, sess)
}

func TestCorruptBatchForcesResync(t *testing.T) {
	inst, sess := rig(t)
	mustCall(t, inst, "put", 1, 101)
	poison := true
	sess.LinkFault = func(b []byte) []byte {
		if poison {
			poison = false
			b = append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(b, 99) // invalid kind
		}
		return b
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	st := sess.Status()
	if st.Resyncs != 2 {
		t.Fatalf("resyncs = %d, want 2 (bootstrap + corrupt-batch)", st.Resyncs)
	}
	assertIdentical(t, inst, sess)
}

func TestReplicaDeathBackoffResync(t *testing.T) {
	inst, sess := rig(t)
	mustCall(t, inst, "put", 1, 101)
	mustCall(t, inst, "put", 2, 102)
	die := true
	sess.ReplicaFault = func(seq uint64) bool {
		if die {
			die = false
			return true
		}
		return false
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	st := sess.Status()
	if st.Drops != 1 || st.Resyncs != 2 || !st.Connected {
		t.Fatalf("status after replica death: %+v", st)
	}
	if st.Lag != 0 {
		t.Fatalf("lag after resync = %d", st.Lag)
	}
	assertIdentical(t, inst, sess)
}

func TestUnhookedWritesMarkDirtyAndResync(t *testing.T) {
	inst, sess := rig(t)
	mustCall(t, inst, "put", 1, 101)
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	// A mitigation-style revert bypasses the hooks: the stream cannot see
	// it, so the session must be marked dirty and resync on the next ship.
	root, _ := inst.Pool.Root(0)
	if err := inst.Pool.WriteDurable(root+3, 0x5151); err != nil {
		t.Fatal(err)
	}
	sess.MarkDirty()
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	st := sess.Status()
	if st.Resyncs != 2 || st.Dirty {
		t.Fatalf("status after dirty resync: %+v", st)
	}
	assertIdentical(t, inst, sess)
}

// TestPromoteServesPreFaultValue is the failover core: an injected hard
// fault bypasses the hooks, so the replica never applies the corruption —
// promoting it yields an instance serving the original value.
func TestPromoteServesPreFaultValue(t *testing.T) {
	inst, sess := rig(t)
	for k := int64(1); k <= 5; k++ {
		mustCall(t, inst, "put", k, 100+k)
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	// Two more writes the replica has NOT seen yet: the promote drain must
	// carry them over.
	mustCall(t, inst, "put", 6, 106)
	mustCall(t, inst, "put", 7, 107)

	// The hard fault: a persisted bit flip. Not hook-visible.
	root, _ := inst.Pool.Root(0)
	head, _ := inst.Pool.ReadDurable(root)
	if err := inst.Pool.InjectBitFlip(head+1, 7, true); err != nil {
		t.Fatal(err)
	}
	if v, _ := inst.Call("get", 7); v == 107 {
		t.Fatal("fault did not corrupt the primary")
	}

	sess.Seal()
	rep, err := sess.Promote()
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := arthas.WriteImage(&img, rep.Pool, rep.Log, nil); err != nil {
		t.Fatal(err)
	}
	promoted, err := arthas.OpenImage("kv-promoted", kvSource, arthas.Config{RecoverFn: "recover_"}, &img)
	if err != nil {
		t.Fatal(err)
	}
	if trap := promoted.Restart(); trap != nil {
		t.Fatalf("promoted recovery: %v", trap)
	}
	for k := int64(1); k <= 7; k++ {
		if v := mustCall(t, promoted, "get", k); v != 100+k {
			t.Fatalf("promoted get(%d) = %d, want %d", k, v, 100+k)
		}
	}
	st := sess.Status()
	if st.Promotions != 1 || st.Connected {
		t.Fatalf("status after promote: %+v", st)
	}
}

func TestScrubFetchesFromReplicaSession(t *testing.T) {
	sh := repl.NewShipper()
	var inst *arthas.Instance
	var sess *repl.Session
	cfg := arthas.Config{
		PoolWords: 1 << 12,
		RecoverFn: "recover_",
		WrapHooks: sh.WrapHooks,
		ScrubSource: func(b int) ([]uint64, bool) {
			if sess == nil {
				return nil, false
			}
			return sess.FetchBlock(b)
		},
		MaxVersions: 1,
	}
	inst, err := arthas.New("kv", kvSource, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess = repl.NewSession(sh, 7, func() (*pmem.Pool, *checkpoint.Log) {
		return inst.Pool, inst.Log
	})
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for k := int64(1); k <= 40; k++ {
		mustCall(t, inst, "put", k, 200+k)
	}
	if err := sess.Ship(); err != nil {
		t.Fatal(err)
	}
	// Poison a payload block, then erase the log's ability to heal it
	// locally by capturing the checkpoint state... instead, poison and heal
	// with both sources available: the log path heals what it can prove and
	// the replica path is exercised by the pure-scrub unit tests. Here we
	// assert the end-to-end wiring: Scrub succeeds and the pool verifies.
	item := mustCall(t, inst, "get", 20)
	if item != 220 {
		t.Fatalf("get(20) = %d", item)
	}
	root, _ := inst.Pool.Root(0)
	head, _ := inst.Pool.ReadDurable(root)
	if err := inst.InjectMediaFault(arthas.MediaFault{Kind: arthas.MediaBlockPoison, Addr: head, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v (%s)", err, rep)
	}
	if rep.Healed < 1 {
		t.Fatalf("scrub healed nothing: %s", rep)
	}
	if v := mustCall(t, inst, "get", 20); v != 220 {
		t.Fatalf("get(20) after scrub = %d", v)
	}
}
