// Package repl implements primary→replica pool replication by shipping the
// checkpoint log as an ordered stream (docs/REPLICATION.md).
//
// The primary's durability events — persists, transaction brackets,
// allocator activity — are observed through pmem.Hooks by a Shipper
// (installed via arthas.Config.WrapHooks, outermost, so the checkpoint log
// and provenance index run first) and buffered as sequence-numbered
// checkpoint.StreamOp records. A Session encodes pending records into
// batches, pushes them across a (simulated, fault-injectable) link, and
// replays them into a Replica: a standby pmem pool + checkpoint log pair
// bootstrapped from a snapshot of the primary's own serialized state, so
// both sides share one image lineage.
//
// Replay is deterministic: persists are applied word-for-word to the
// replica's durable image and fed to the replica's checkpoint log (whose
// sequence must then equal the record's shipped CkptSeq — the divergence
// check), and allocator events re-execute against the replica's allocator
// (whose deterministic first-fit placement must return the shipped
// address). Any divergence, stream truncation beyond repair, or replica
// loss degrades to a full snapshot resync with jittered backoff — the
// stream is an optimization over the snapshot, never a correctness
// dependency.
//
// Durable writes that bypass the hooks (checkpoint reversion, media
// repair, fault injection) silently diverge the primary from the stream;
// callers mark the session dirty at those lifecycle points (mitigate-end,
// scrub-end, restart) and the next Ship performs a snapshot resync.
// Crucially, *injected faults* bypass the hooks too: the replica never
// applies the corruption, which is exactly why a promoted replica serves
// the original value and why the scrubber can use it as a seal-proven
// repair source (FetchBlock).
package repl

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// Shipper observes a primary's durability events and buffers them as
// stream records. Install via WrapHooks (arthas.Config.WrapHooks). Safe
// for use from one driving goroutine plus concurrent status readers.
type Shipper struct {
	mu      sync.Mutex
	seq     uint64
	pending []checkpoint.StreamOp
	dirty   bool
}

// NewShipper returns an empty shipper, dirty by default: the first Ship
// of a Session must bootstrap the replica with a snapshot.
func NewShipper() *Shipper {
	return &Shipper{dirty: true}
}

// WrapHooks wraps inner so every durability event is recorded after the
// inner hooks (checkpoint log, provenance) have run. log is the primary's
// checkpoint log — its post-append sequence rides on every persist record
// as the replay divergence check. The signature matches
// arthas.Config.WrapHooks.
func (s *Shipper) WrapHooks(inner pmem.Hooks, log *checkpoint.Log) pmem.Hooks {
	return pmem.Hooks{
		OnPersist: func(addr uint64, data []uint64) {
			if inner.OnPersist != nil {
				inner.OnPersist(addr, data)
			}
			s.record(checkpoint.StreamOp{
				Kind: checkpoint.StreamPersist, Addr: addr, Words: uint64(len(data)),
				CkptSeq: log.Seq(), Data: append([]uint64(nil), data...),
			})
		},
		OnTxBegin: func() {
			if inner.OnTxBegin != nil {
				inner.OnTxBegin()
			}
			s.record(checkpoint.StreamOp{Kind: checkpoint.StreamTxBegin})
		},
		OnTxCommit: func() {
			if inner.OnTxCommit != nil {
				inner.OnTxCommit()
			}
			s.record(checkpoint.StreamOp{Kind: checkpoint.StreamTxCommit})
		},
		OnAlloc: func(addr uint64, words int) {
			if inner.OnAlloc != nil {
				inner.OnAlloc(addr, words)
			}
			s.record(checkpoint.StreamOp{Kind: checkpoint.StreamAlloc, Addr: addr, Words: uint64(words)})
		},
		OnZero: func(addr uint64, words int) {
			if inner.OnZero != nil {
				inner.OnZero(addr, words)
			}
			s.record(checkpoint.StreamOp{Kind: checkpoint.StreamZero, Addr: addr, Words: uint64(words)})
		},
		OnFree: func(addr uint64, words int) {
			if inner.OnFree != nil {
				inner.OnFree(addr, words)
			}
			s.record(checkpoint.StreamOp{Kind: checkpoint.StreamFree, Addr: addr, Words: uint64(words)})
		},
	}
}

func (s *Shipper) record(op checkpoint.StreamOp) {
	s.mu.Lock()
	s.seq++
	op.Seq = s.seq
	s.pending = append(s.pending, op)
	s.mu.Unlock()
}

// Seq returns the stream sequence of the last recorded event.
func (s *Shipper) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Pending returns how many records await shipping.
func (s *Shipper) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// MarkDirty declares the stream unable to represent the primary — an
// unhooked durable write happened (mitigation revert, scrub repair) — so
// the next Ship must snapshot-resync.
func (s *Shipper) MarkDirty() {
	s.mu.Lock()
	s.dirty = true
	s.mu.Unlock()
}

// drain moves all pending records to the caller and reports the dirty
// flag without clearing it.
func (s *Shipper) drain() ([]checkpoint.StreamOp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := s.pending
	s.pending = nil
	return ops, s.dirty
}

// clearDirty acknowledges a completed snapshot resync.
func (s *Shipper) clearDirty() {
	s.mu.Lock()
	s.dirty = false
	s.mu.Unlock()
}

// Replica is the standby: a pool + checkpoint log pair replaying the
// primary's stream. Both are fully functional — promotion serializes them
// into an image and opens a serving instance from it.
type Replica struct {
	Pool *pmem.Pool
	Log  *checkpoint.Log

	hooks pmem.Hooks
}

// NewReplica bootstraps a replica from a snapshot: the primary's pool
// bytes (pmem WriteTo) immediately followed by its checkpoint-log bytes
// (checkpoint WriteTo) — the same image lineage, so replayed allocations
// land at identical addresses.
func NewReplica(snapshot []byte) (*Replica, error) {
	br := bytes.NewReader(snapshot)
	pool, err := pmem.ReadPool(br)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot pool: %w", err)
	}
	log, err := checkpoint.ReadLog(br)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot log: %w", err)
	}
	r := &Replica{Pool: pool, Log: log, hooks: log.Hooks()}
	// Allocator replay must feed the replica's own log (alloc records,
	// realloc linkage) exactly as on the primary.
	pool.SetHooks(r.hooks)
	return r, nil
}

// Snapshot serializes a pool+log pair in NewReplica's wire layout.
func Snapshot(pool *pmem.Pool, log *checkpoint.Log) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := pool.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("repl: snapshotting pool: %w", err)
	}
	if _, err := log.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("repl: snapshotting log: %w", err)
	}
	return buf.Bytes(), nil
}

// ErrDiverged reports a replay whose outcome contradicts the shipped
// record — the replica no longer mirrors the primary and must resync.
var ErrDiverged = errors.New("repl: replica diverged from stream")

// Apply replays one stream record. On ErrDiverged the replica must be
// discarded and rebuilt from a snapshot.
func (r *Replica) Apply(op checkpoint.StreamOp) error {
	switch op.Kind {
	case checkpoint.StreamPersist:
		for i, v := range op.Data {
			if err := r.Pool.WriteDurable(op.Addr+uint64(i), v); err != nil {
				return fmt.Errorf("%w: persist %s: %v", ErrDiverged, op, err)
			}
		}
		r.hooks.OnPersist(op.Addr, op.Data)
		if got := r.Log.Seq(); got != op.CkptSeq {
			return fmt.Errorf("%w: %s applied at replica ckpt seq %d", ErrDiverged, op, got)
		}
	case checkpoint.StreamTxBegin:
		r.hooks.OnTxBegin()
	case checkpoint.StreamTxCommit:
		r.hooks.OnTxCommit()
	case checkpoint.StreamAlloc:
		addr, err := r.Pool.Alloc(int(op.Words))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrDiverged, op, err)
		}
		if addr != op.Addr {
			return fmt.Errorf("%w: %s allocated at %#x on replica", ErrDiverged, op, addr)
		}
	case checkpoint.StreamZero:
		for w := uint64(0); w < op.Words; w++ {
			if err := r.Pool.WriteDurable(op.Addr+w, 0); err != nil {
				return fmt.Errorf("%w: zero %s: %v", ErrDiverged, op, err)
			}
		}
		if r.hooks.OnZero != nil {
			r.hooks.OnZero(op.Addr, int(op.Words))
		}
	case checkpoint.StreamFree:
		if err := r.Pool.Free(op.Addr); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrDiverged, op, err)
		}
	default:
		return fmt.Errorf("%w: unknown record kind in %s", ErrDiverged, op)
	}
	return nil
}

// Status is a session's externally visible replication state.
type Status struct {
	// Seq is the last stream sequence the primary generated; Acked the
	// last the replica applied; Lag their difference plus unshipped
	// pending records.
	Seq   uint64 `json:"seq"`
	Acked uint64 `json:"acked"`
	Lag   uint64 `json:"lag"`
	// Connected reports a live replica; Dirty that the next ship must
	// snapshot-resync; Sealed that shipping is frozen for a promotion
	// decision.
	Connected bool `json:"connected"`
	Dirty     bool `json:"dirty"`
	Sealed    bool `json:"sealed"`
	// Counters.
	Ships       uint64 `json:"ships"`
	Records     uint64 `json:"records"`
	Resyncs     uint64 `json:"resyncs"`
	Truncations uint64 `json:"truncations"`
	Divergences uint64 `json:"divergences"`
	Drops       uint64 `json:"drops"`
	Promotions  uint64 `json:"promotions"`
}

// Session drives one primary→replica pair: draining the shipper, pushing
// batches across the link, replaying into the replica, and tracking acks.
// All methods are safe for concurrent use; the caller serializes Ship
// against primary mutation (the fleet holds the shard lock).
type Session struct {
	// LinkFault, when non-nil, intercepts every encoded batch before
	// decode — the torture harness's wire-fault injection point (truncate
	// to simulate a torn stream tail). Set before first use.
	LinkFault func(batch []byte) []byte
	// ReplicaFault, when non-nil, is consulted before each record applies;
	// returning true kills the replica at that point (torture's replica-
	// crash victim). Set before first use.
	ReplicaFault func(seq uint64) bool
	// BackoffBase scales reconnect backoff (default 50µs; kept tiny so
	// in-process reconnects never stall serving).
	BackoffBase time.Duration

	mu       sync.Mutex
	sh       *Shipper
	src      func() (*pmem.Pool, *checkpoint.Log)
	replica  *Replica
	acked    uint64
	queue    []checkpoint.StreamOp // drained, not yet applied by the replica
	sealed   bool
	sealLen  int
	attempts int // consecutive failed resyncs, for backoff
	seed     uint64
	stats    Status
}

// NewSession wires a shipper to a primary-state source. src must return
// the primary's CURRENT pool and checkpoint log (instances swap both on
// promotion/reopen) and is called only during snapshot resyncs, under the
// caller's serialization of Ship.
func NewSession(sh *Shipper, seed uint64, src func() (*pmem.Pool, *checkpoint.Log)) *Session {
	return &Session{sh: sh, src: src, seed: seed, BackoffBase: 50 * time.Microsecond}
}

// Lag returns how many records the replica is behind the primary.
func (s *Session) Lag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sh.Seq() - s.acked
}

// MarkDirty forwards to the shipper (convenience for lifecycle hooks).
func (s *Session) MarkDirty() { s.sh.MarkDirty() }

// Due reports whether a Ship is warranted under the given lag bound: the
// replica trails by maxLag or more records, a snapshot resync is owed
// (dirty stream or no replica), and the session is not sealed. The serving
// path calls this per operation, so it must stay cheap.
func (s *Session) Due(maxLag uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return false
	}
	if s.replica == nil {
		return true
	}
	s.sh.mu.Lock()
	dirty := s.sh.dirty
	s.sh.mu.Unlock()
	if dirty {
		return true
	}
	if maxLag == 0 {
		maxLag = 1
	}
	return s.sh.Seq()-s.acked >= maxLag
}

// Status snapshots the session's replication state.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Seq = s.sh.Seq()
	st.Acked = s.acked
	st.Lag = st.Seq - st.Acked
	st.Connected = s.replica != nil
	s.sh.mu.Lock()
	st.Dirty = s.sh.dirty
	s.sh.mu.Unlock()
	st.Sealed = s.sealed
	return st
}

// FetchBlock serves the scrubber's replica repair source: media block b of
// the replica's durable image, or false when no replica is connected.
// The scrubber commits it only under seal proof, so a lagging replica is
// safe — its stale block simply fails the checksum and the verdict falls
// through to quarantine.
func (s *Session) FetchBlock(b int) ([]uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica == nil {
		return nil, false
	}
	w := s.replica.Pool.DurableBlock(b)
	return w, w != nil
}

// ReplicaImage snapshots the replica's durable image (nil when no replica
// is connected) — the divergence-audit primitive behind torture's
// word-identity checks.
func (s *Session) ReplicaImage() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica == nil {
		return nil
	}
	return s.replica.Pool.DurableImage()
}

// Seal freezes shipping for a failure decision: pending records drained so
// far mark the pre-failure boundary; anything recorded after (mitigation
// re-execution, recovery reruns) is never shipped. Promote applies only
// the sealed prefix; Unseal (after a successful mitigation) discards the
// boundary and lets the next Ship resync.
func (s *Session) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops, _ := s.sh.drain()
	s.queue = append(s.queue, ops...)
	s.sealed = true
	s.sealLen = len(s.queue)
}

// Unseal reopens shipping after a failure was handled without promotion.
func (s *Session) Unseal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = false
	s.sealLen = 0
}

// Ship drains pending records and replays them into the replica,
// bootstrapping or resyncing with a full snapshot when required (first
// ship, dirty stream, divergence, replica loss). Sealed sessions no-op.
// The error from a wire/replica fault is handled internally (resync path);
// a returned error means even the snapshot path failed.
func (s *Session) Ship() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	return s.shipLocked(4)
}

func (s *Session) shipLocked(attempts int) error {
	ops, dirty := s.sh.drain()
	s.queue = append(s.queue, ops...)
	if dirty || s.replica == nil {
		return s.resyncLocked()
	}
	if len(s.queue) == 0 {
		return nil
	}
	s.stats.Ships++
	batch := checkpoint.EncodeStream(s.queue)
	if s.LinkFault != nil {
		batch = s.LinkFault(batch)
	}
	decoded, err := checkpoint.DecodeStream(batch)
	var te *checkpoint.StreamTruncatedError
	truncated := errors.As(err, &te)
	if err != nil && !truncated {
		// Structurally corrupt bytes: the link is untrustworthy; resync.
		s.stats.Truncations++
		return s.resyncLocked()
	}
	if truncated {
		s.stats.Truncations++
	}
	for _, op := range decoded {
		if s.ReplicaFault != nil && s.ReplicaFault(op.Seq) {
			// Replica died mid-apply: back off, then rebuild from snapshot.
			s.replica = nil
			s.stats.Drops++
			s.backoff()
			return s.resyncLocked()
		}
		if err := s.replica.Apply(op); err != nil {
			s.replica = nil
			s.stats.Divergences++
			return s.resyncLocked()
		}
		s.acked = op.Seq
		s.stats.Records++
	}
	s.dropAckedLocked()
	if truncated && len(s.queue) > 0 && attempts > 0 {
		// The cut tail was retained; re-ship it on the (reconnected) link.
		return s.shipLocked(attempts - 1)
	}
	return nil
}

// dropAckedLocked discards the applied prefix of the queue.
func (s *Session) dropAckedLocked() {
	i := 0
	for i < len(s.queue) && s.queue[i].Seq <= s.acked {
		i++
	}
	s.queue = append(s.queue[:0], s.queue[i:]...)
}

// resyncLocked rebuilds the replica from a fresh primary snapshot. The
// snapshot covers everything the hooks have recorded, so the queue is
// discarded and the ack jumps to the shipper's head.
func (s *Session) resyncLocked() error {
	pool, log := s.src()
	snap, err := Snapshot(pool, log)
	if err != nil {
		s.attempts++
		return err
	}
	rep, err := NewReplica(snap)
	if err != nil {
		s.attempts++
		return err
	}
	s.replica = rep
	s.queue = nil
	s.acked = s.sh.Seq()
	s.sh.clearDirty()
	s.attempts = 0
	s.stats.Resyncs++
	return nil
}

// backoff sleeps a deterministic seeded-jitter interval scaled by the
// consecutive-failure count — reconnecting replication sessions must not
// hammer a struggling peer.
func (s *Session) backoff() {
	shift := s.attempts
	if shift > 6 {
		shift = 6
	}
	s.attempts++
	base := s.BackoffBase
	if base <= 0 {
		base = 50 * time.Microsecond
	}
	d := base << shift
	// Jitter to [0.5, 1.5) of d, splitmix64 over (seed, attempt).
	x := s.seed + 0x9e3779b97f4a7c15*uint64(s.attempts)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / float64(1<<53)
	time.Sleep(time.Duration((0.5 + frac) * float64(d)))
}

// Promote consumes the session for failover: the sealed pre-failure
// prefix (or the full queue when unsealed) is drained into the replica —
// stopping at the first record that does not apply cleanly, since a
// failing primary's tail is exactly what must not survive — and the
// caught-up replica is handed to the caller for cutover. The session
// forgets the replica; after the new primary is serving, the caller
// Unseals and the next Ship bootstraps a fresh replica from it.
func (s *Session) Promote() (*Replica, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealed {
		ops, _ := s.sh.drain()
		s.queue = append(s.queue, ops...)
		s.sealLen = len(s.queue)
	}
	if s.replica == nil {
		return nil, errors.New("repl: no replica to promote")
	}
	for _, op := range s.queue[:s.sealLen] {
		if err := s.replica.Apply(op); err != nil {
			break
		}
		s.acked = op.Seq
		s.stats.Records++
	}
	rep := s.replica
	s.replica = nil
	s.queue = nil
	s.sealLen = 0
	s.stats.Promotions++
	return rep, nil
}
