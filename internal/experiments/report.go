package experiments

import (
	"fmt"
	"strings"

	"arthas/internal/faults"
	"arthas/internal/study"
)

// Study renderers (paper §2): Table 1, Figures 2 and 3, and the §2.6
// propagation-type distribution, all from the internal/study dataset.

// Table1 renders the collected-bugs table.
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Collected hard fault bugs in new and ported PM systems\n")
	counts := study.BySystem()
	fmt.Fprintf(&sb, "  %-8s", "")
	for _, c := range counts {
		fmt.Fprintf(&sb, " %-10s", c.Label)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "Cases")
	for _, c := range counts {
		fmt.Fprintf(&sb, " %-10d", c.N)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "Type")
	for _, c := range counts {
		fmt.Fprintf(&sb, " %-10s", study.OriginOf(c.Label))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Fig2 renders the root-cause distribution.
func Fig2() string {
	return study.FormatCounts("Figure 2. Root cause of studied persistent failures", study.ByRootCause())
}

// Fig3 renders the consequence distribution.
func Fig3() string {
	return study.FormatCounts("Figure 3. Consequence of studied persistent failures", study.ByConsequence())
}

// PropagationTypes renders the §2.6 distribution.
func PropagationTypes() string {
	return study.FormatCounts("Fault propagation patterns (paper §2.6)", study.ByType())
}

// FullReport runs everything and renders the complete evaluation, in paper
// order. Heavy experiments take configs so callers (CLI, benchmarks) can
// size them.
type FullConfig struct {
	Matrix   MatrixConfig
	Overhead OverheadConfig
	Batch    faults.RunConfig
	// SkipOverhead omits the (slow) Figure 12 / Table 8 measurements.
	SkipOverhead bool
	// Workers > 1 adds the sequential-vs-parallel speculative mitigation
	// comparison at that worker count (JSONReport.Parallel).
	Workers int
	// Scrub sizes the media-resilience cost measurement (zero = defaults).
	Scrub ScrubConfig
	// Fleet, when non-nil, adds the sharded-serving-fleet experiment
	// (scaling sweep + mid-run fault) to the JSON report.
	Fleet *FleetConfig
	// Optimize, when non-nil, adds the flush/fence-elimination before/after
	// measurement (JSONReport.Optimize).
	Optimize *OptimizeConfig
}

// FullReport produces the entire paper evaluation as text.
func FullReport(cfg FullConfig) (string, error) {
	var sb strings.Builder
	sb.WriteString("==== Empirical study (paper §2) ====\n\n")
	sb.WriteString(Table1() + "\n")
	sb.WriteString(Fig2() + "\n")
	sb.WriteString(Fig3() + "\n")
	sb.WriteString(PropagationTypes() + "\n")

	sb.WriteString("==== Fault dataset (paper §6.1) ====\n\n")
	sb.WriteString(Table2() + "\n")

	sb.WriteString("==== Recoverability matrix (paper §6.2-§6.4) ====\n\n")
	m, err := RunMatrix(cfg.Matrix)
	if err != nil {
		return "", err
	}
	sb.WriteString(m.Table3() + "\n")
	sb.WriteString(m.Table4() + "\n")
	sb.WriteString(m.Table5() + "\n")
	sb.WriteString(m.Fig8() + "\n")
	sb.WriteString(m.Fig9() + "\n")
	sb.WriteString(m.Fig11() + "\n")

	sb.WriteString("==== Reversion strategies (paper §6.5) ====\n\n")
	br, err := RunBatchComparison(cfg.Batch)
	if err != nil {
		return "", err
	}
	sb.WriteString(br.Fig10() + "\n")
	sb.WriteString(br.Table6() + "\n")

	sb.WriteString("==== Checksum and invariant approaches (paper §6.6) ====\n\n")
	t7, err := Table7(cfg.Matrix.Run)
	if err != nil {
		return "", err
	}
	sb.WriteString(t7 + "\n")

	if !cfg.SkipOverhead {
		sb.WriteString("==== Overhead (paper §6.7) ====\n\n")
		ov, err := MeasureOverhead(cfg.Overhead,
			[]Variant{Vanilla, WithArthas, WithCheckpoint, WithInstr, WithPmCRIU})
		if err != nil {
			return "", err
		}
		sb.WriteString(ov.Fig12() + "\n")
		sb.WriteString(ov.Table8() + "\n")
	}

	sb.WriteString("==== Static analysis performance (paper §6.8) ====\n\n")
	ts, err := MeasureStatic()
	if err != nil {
		return "", err
	}
	sb.WriteString(Table9(ts) + "\n")

	sb.WriteString("==== Media resilience cost (docs/MEDIA_FAULTS.md) ====\n\n")
	sr, err := RunScrub(cfg.Scrub)
	if err != nil {
		return "", err
	}
	sb.WriteString(sr.Text() + "\n")
	return sb.String(), nil
}
