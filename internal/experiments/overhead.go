package experiments

import (
	"fmt"
	"strings"
	"time"

	"arthas/internal/baseline"
	"arthas/internal/systems"
	"arthas/internal/workload"
)

// Runtime overhead experiments (paper §6.7, Figure 12 and Table 8): the
// five target systems run identical deterministic workloads under four
// build/attachment variants — vanilla, full Arthas (checkpoint +
// instrumentation trace), checkpoint-only, and instrumentation-only — plus
// vanilla with pmCRIU's periodic snapshots. Throughput is real measured
// operations per second of the interpreted systems; what transfers from
// the paper is the *relative* cost of each attachment.

// OverheadConfig sizes the measurement.
type OverheadConfig struct {
	// YCSBOps for Memcached/Redis (50/50 read-write zipfian; paper: 3M).
	YCSBOps int
	// InsertOps for PMEMKV/Pelikan (paper: 6M) and CCEH (paper: 1M).
	InsertOps int
	// SnapshotEvery for the pmCRIU variant (ops per snapshot).
	SnapshotEvery int
	Seed          uint64
}

func (c OverheadConfig) withDefaults() OverheadConfig {
	if c.YCSBOps == 0 {
		c.YCSBOps = 30_000
	}
	if c.InsertOps == 0 {
		c.InsertOps = 30_000
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = c.YCSBOps / 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Variant names the measured attachment combinations.
type Variant string

// Variants.
const (
	Vanilla        Variant = "vanilla"
	WithArthas     Variant = "arthas"
	WithCheckpoint Variant = "checkpoint" // checkpoint log only (Table 8)
	WithInstr      Variant = "instr"      // address tracing only (Table 8)
	WithPmCRIU     Variant = "pmcriu"
)

// Throughput is one measured cell.
type Throughput struct {
	System  string
	Variant Variant
	Ops     int
	Elapsed time.Duration
}

// OpsPerSec returns the throughput.
func (t Throughput) OpsPerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds()
}

// OverheadResults collects the full grid.
type OverheadResults struct {
	Cells []Throughput
}

// Get returns the cell for (system, variant).
func (r *OverheadResults) Get(system string, v Variant) (Throughput, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Variant == v {
			return c, true
		}
	}
	return Throughput{}, false
}

// Relative returns variant throughput relative to vanilla (1.0 = equal).
func (r *OverheadResults) Relative(system string, v Variant) float64 {
	base, ok1 := r.Get(system, Vanilla)
	cell, ok2 := r.Get(system, v)
	if !ok1 || !ok2 || base.OpsPerSec() == 0 {
		return 0
	}
	return cell.OpsPerSec() / base.OpsPerSec()
}

// deployFor builds a system deployment for a variant. Pool sizing is
// generous so allocator churn does not dominate.
func deployFor(sysName string, v Variant) (*systems.Deployment, *baseline.PmCRIU, error) {
	var sys *systems.System
	switch sysName {
	case "memcached":
		sys = systems.Memcached()
	case "redis":
		sys = systems.Redis()
	case "pelikan":
		sys = systems.Pelikan()
	case "pmemkv":
		sys = systems.PMEMKV()
	case "cceh":
		sys = systems.CCEH()
	default:
		return nil, nil, fmt.Errorf("unknown system %q", sysName)
	}
	sys.PoolWords = 1 << 21
	opts := systems.DeployOpts{StepLimit: 1 << 40}
	switch v {
	case Vanilla, WithPmCRIU:
		opts.SkipAnalysis = true
	case WithArthas:
		opts.Checkpoint = true
		opts.Trace = true
	case WithCheckpoint:
		opts.Checkpoint = true
		opts.SkipAnalysis = true
	case WithInstr:
		opts.Trace = true
	}
	d, err := systems.Deploy(sys, opts)
	if err != nil {
		return nil, nil, err
	}
	var criu *baseline.PmCRIU
	if v == WithPmCRIU {
		criu = baseline.NewPmCRIU(d.Pool, 1) // interval set by caller ticks
	}
	return d, criu, nil
}

// runnerFor adapts a system's request functions to the workload runner.
func runnerFor(sysName string, d *systems.Deployment) *workload.Runner {
	call := func(fn string, args ...int64) error {
		if _, trap := d.Call(fn, args...); trap != nil {
			return trap
		}
		return nil
	}
	switch sysName {
	case "memcached":
		return &workload.Runner{
			Read:   func(k int64) error { return call("mc_get", k) },
			Update: func(k, v int64) error { return call("mc_set", k, v, 2) },
			Insert: func(k, v int64) error { return call("mc_set", k, v, 2) },
			Delete: func(k int64) error { return call("mc_delete", k) },
		}
	case "redis":
		return &workload.Runner{
			Read:   func(k int64) error { return call("rd_get", k) },
			Update: func(k, v int64) error { return call("rd_set", k, v) },
			Insert: func(k, v int64) error { return call("rd_set", k, v) },
		}
	case "pelikan":
		return &workload.Runner{
			Read:   func(k int64) error { return call("pk_get", k) },
			Update: func(k, v int64) error { return call("pk_set", k, v, 2) },
			Insert: func(k, v int64) error { return call("pk_set", k, v, 2) },
		}
	case "pmemkv":
		return &workload.Runner{
			Read:   func(k int64) error { return call("kv_get", k) },
			Update: func(k, v int64) error { return call("kv_put", k, v) },
			Insert: func(k, v int64) error { return call("kv_put", k, v) },
		}
	case "cceh":
		return &workload.Runner{
			Read:   func(k int64) error { return call("cc_get", k) },
			Update: func(k, v int64) error { return call("cc_insert", k, v) },
			Insert: func(k, v int64) error { return call("cc_insert", k, v) },
		}
	}
	return nil
}

// workloadFor returns each system's benchmark stream (paper §6.7: YCSB for
// Redis and Memcached; custom insert benchmarks for the rest).
func workloadFor(sysName string, cfg OverheadConfig) []workload.Op {
	switch sysName {
	case "memcached", "redis":
		return workload.Generate(workload.WorkloadA(cfg.YCSBOps, 1000, cfg.Seed))
	default:
		return workload.Generate(workload.InsertOnly(cfg.InsertOps, cfg.Seed))
	}
}

// OverheadSystems lists the measured systems in paper order.
var OverheadSystems = []string{"memcached", "redis", "pelikan", "pmemkv", "cceh"}

// MeasureOverhead runs the full grid.
//
// Within a system, the variants execute the workload in interleaved
// round-robin chunks (not one sequential block per variant) and each
// variant accumulates only its own chunks' wall time. What the experiment
// reports is *relative* throughput, and on a busy host a CPU burst or GC
// cycle landing inside one variant's multi-second block would skew exactly
// that ratio; interleaving spreads such windows across all variants, so
// the ratios stay meaningful even when other test binaries share the
// machine. Totals are unchanged: same ops, same per-variant deployment.
func MeasureOverhead(cfg OverheadConfig, variants []Variant) (*OverheadResults, error) {
	cfg = cfg.withDefaults()
	res := &OverheadResults{}
	for _, sysName := range OverheadSystems {
		ops := workloadFor(sysName, cfg)
		type cell struct {
			runner  *workload.Runner
			criu    *baseline.PmCRIU
			elapsed time.Duration
		}
		cells := make([]cell, len(variants))
		for i, v := range variants {
			d, criu, err := deployFor(sysName, v)
			if err != nil {
				return nil, err
			}
			if criu != nil {
				criu.Interval = uint64(cfg.SnapshotEvery)
			}
			cells[i] = cell{runner: runnerFor(sysName, d), criu: criu}
		}
		// Chunk size = the snapshot interval, so the pmCRIU variant takes
		// exactly one snapshot per round, as before.
		for done := 0; done < len(ops); done += cfg.SnapshotEvery {
			end := done + cfg.SnapshotEvery
			if end > len(ops) {
				end = len(ops)
			}
			for i := range cells {
				c := &cells[i]
				start := time.Now()
				if _, err := c.runner.Run(ops[done:end]); err != nil {
					return nil, fmt.Errorf("%s/%s: %w", sysName, variants[i], err)
				}
				if c.criu != nil {
					c.criu.SnapshotNow()
				}
				c.elapsed += time.Since(start)
			}
		}
		for i, v := range variants {
			res.Cells = append(res.Cells, Throughput{
				System: sysName, Variant: v, Ops: len(ops), Elapsed: cells[i].elapsed,
			})
		}
	}
	return res, nil
}

// Fig12 renders relative throughput (paper Figure 12).
func (r *OverheadResults) Fig12() string {
	var sb strings.Builder
	sb.WriteString("Figure 12. System throughput (op/s) relative to Vanilla\n")
	fmt.Fprintf(&sb, "  %-10s %10s %12s %12s\n", "System", "Vanilla", "w/ Arthas", "w/ pmCRIU")
	for _, sysName := range OverheadSystems {
		base, _ := r.Get(sysName, Vanilla)
		fmt.Fprintf(&sb, "  %-10s %9.0f/s %11.3fx %11.3fx\n",
			sysName, base.OpsPerSec(),
			r.Relative(sysName, WithArthas), r.Relative(sysName, WithPmCRIU))
	}
	return sb.String()
}

// Table8 renders the overhead split (paper Table 8).
func (r *OverheadResults) Table8() string {
	var sb strings.Builder
	sb.WriteString("Table 8. Average throughput (op/s): checkpointing vs instrumentation\n")
	fmt.Fprintf(&sb, "  %-14s", "Variant")
	for _, sysName := range OverheadSystems {
		fmt.Fprintf(&sb, " %10s", sysName)
	}
	sb.WriteString("\n")
	for _, v := range []Variant{Vanilla, WithCheckpoint, WithInstr} {
		label := map[Variant]string{
			Vanilla: "Vanilla", WithCheckpoint: "w/ Checkpoint", WithInstr: "w/ Instru.",
		}[v]
		fmt.Fprintf(&sb, "  %-14s", label)
		for _, sysName := range OverheadSystems {
			cell, ok := r.Get(sysName, v)
			if !ok {
				fmt.Fprintf(&sb, " %10s", "n/a")
				continue
			}
			fmt.Fprintf(&sb, " %9.0fK", cell.OpsPerSec()/1000)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
