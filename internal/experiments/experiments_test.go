package experiments

import (
	"fmt"
	"strings"
	"testing"

	"arthas/internal/faults"
)

// smallMatrix shares one matrix run across the shape tests (it is the
// expensive part of this package's suite).
var smallMatrix *Matrix

func matrix(t *testing.T) *Matrix {
	t.Helper()
	if smallMatrix != nil {
		return smallMatrix
	}
	m, err := RunMatrix(MatrixConfig{Seeds: 10})
	if err != nil {
		t.Fatal(err)
	}
	smallMatrix = m
	return m
}

func TestTable3Shape(t *testing.T) {
	m := matrix(t)
	if len(m.Cases) != 12 {
		t.Fatalf("cases = %d", len(m.Cases))
	}
	// Headline: Arthas recovers all twelve.
	for _, c := range m.Cases {
		if !c.Arthas.Recovered {
			t.Errorf("%s: Arthas failed", c.Meta.ID)
		}
		if !c.ArthasRollback.Recovered {
			t.Errorf("%s: Arthas rollback mode failed", c.Meta.ID)
		}
	}
	// pmCRIU recovers most deterministic cases but NOT f3 (natural
	// pre-snapshot trigger) and only some f5/f8 seeds.
	byID := map[string]CaseResult{}
	for _, c := range m.Cases {
		byID[c.Meta.ID] = c
	}
	if ok, _ := byID["f3"].PmCRIUSuccesses(); ok != 0 {
		t.Errorf("pmCRIU recovered f3 (%d runs) — bad state predates every snapshot", ok)
	}
	if ok, total := byID["f5"].PmCRIUSuccesses(); ok == 0 || ok == total {
		t.Errorf("f5 pmCRIU = %d/%d, want probabilistic", ok, total)
	} else if ok != 1 {
		t.Logf("f5 pmCRIU = %d/%d (paper: 1/10)", ok, total)
	}
	if ok, total := byID["f8"].PmCRIUSuccesses(); ok == 0 || ok == total {
		t.Errorf("f8 pmCRIU = %d/%d, want probabilistic", ok, total)
	}
	for _, id := range []string{"f1", "f2", "f4", "f6", "f7", "f9", "f10", "f11", "f12"} {
		if ok, total := byID[id].PmCRIUSuccesses(); ok != total {
			t.Errorf("pmCRIU failed deterministic case %s (%d/%d)", id, ok, total)
		}
	}
	// ArCkpt: immediate-crash cases only.
	for _, id := range []string{"f4", "f10"} {
		if !byID[id].ArCkpt.Recovered {
			t.Errorf("ArCkpt failed immediate-crash case %s", id)
		}
	}
	arCkptWins := 0
	for _, c := range m.Cases {
		if c.ArCkpt.Recovered {
			arCkptWins++
		}
	}
	if arCkptWins > 5 {
		t.Errorf("ArCkpt recovered %d cases; expected only the immediate-crash minority", arCkptWins)
	}
}

func TestFig9Shape(t *testing.T) {
	m := matrix(t)
	// Arthas discards far less than pmCRIU on average (paper: 3.1% vs
	// 56.5%, a ~10x gap; we require a decisive factor).
	var aSum, pSum float64
	var n int
	for _, c := range m.Cases {
		recovered := false
		var ploss float64
		for _, o := range c.PmCRIU {
			if o.Recovered {
				recovered = true
				ploss = o.DataLossPct
				break
			}
		}
		if !recovered {
			continue
		}
		aSum += c.Arthas.DataLossPct
		pSum += ploss
		n++
	}
	if n == 0 {
		t.Fatal("no comparable cases")
	}
	aMean, pMean := aSum/float64(n), pSum/float64(n)
	if aMean*3 > pMean {
		t.Errorf("Arthas mean loss %.2f%% vs pmCRIU %.2f%%: want a large gap", aMean, pMean)
	}
}

func TestFig11Shape(t *testing.T) {
	m := matrix(t)
	var pg, rb float64
	for _, c := range m.Cases {
		if c.Meta.IsLeak {
			continue
		}
		pg += c.Arthas.DataLossPct
		rb += c.ArthasRollback.DataLossPct
	}
	if pg > rb {
		t.Errorf("purge mean loss %.2f > rollback %.2f", pg, rb)
	}
}

func TestTable4Shape(t *testing.T) {
	m := matrix(t)
	// Rollback mode must be consistent everywhere it recovered; purge is
	// allowed (expected, for f7) to show inconsistencies.
	for _, c := range m.Cases {
		if c.ArthasRollback.Recovered && c.ArthasRollback.Consistent != nil {
			t.Errorf("%s: rollback-mode inconsistency: %v", c.Meta.ID, c.ArthasRollback.Consistent)
		}
	}
	byID := map[string]CaseResult{}
	for _, c := range m.Cases {
		byID[c.Meta.ID] = c
	}
	if byID["f7"].Arthas.Consistent == nil {
		t.Log("f7 purge-mode recovered consistently (paper reports an inconsistency here)")
	}
}

func TestRenderings(t *testing.T) {
	m := matrix(t)
	for name, text := range map[string]string{
		"table2": Table2(), "table3": m.Table3(), "table4": m.Table4(),
		"table5": m.Table5(), "fig8": m.Fig8(), "fig9": m.Fig9(),
		"fig11": m.Fig11(), "table1": Table1(), "fig2": Fig2(), "fig3": Fig3(),
		"types": PropagationTypes(),
	} {
		if len(text) < 40 || !strings.Contains(text, "\n") {
			t.Errorf("%s rendering too small:\n%s", name, text)
		}
	}
}

func TestBatchComparison(t *testing.T) {
	br, err := RunBatchComparison(faults.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.OneByOne) != len(br.Batch5) || len(br.OneByOne) == 0 {
		t.Fatalf("cells: %d vs %d", len(br.OneByOne), len(br.Batch5))
	}
	for i := range br.OneByOne {
		if !br.OneByOne[i].Recovered || !br.Batch5[i].Recovered {
			t.Errorf("%s: not recovered under both strategies", br.OneByOne[i].ID)
		}
		// Batch reverts at least as much data per recovery as one-by-one.
		if br.Batch5[i].Reverted < br.OneByOne[i].Reverted {
			t.Errorf("%s: batch reverted %d < single %d",
				br.OneByOne[i].ID, br.Batch5[i].Reverted, br.OneByOne[i].Reverted)
		}
	}
	if br.Fig10() == "" || br.Table6() == "" {
		t.Fatal("empty renderings")
	}
}

func TestTable7Shape(t *testing.T) {
	text, err := Table7(faults.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "f1") || !strings.Contains(text, "f12") {
		t.Fatalf("table 7:\n%s", text)
	}
}

func TestOverheadSmall(t *testing.T) {
	// The assertions bound *relative wall-clock throughput* of variants
	// measured back to back, so a CPU-scheduling burst landing on one
	// variant (common when other test binaries share the host; `go test
	// ./...` runs packages concurrently) can fail a healthy build. A
	// genuine overhead regression fails every attempt, so retry the whole
	// measurement a couple of times before declaring failure.
	cfg := OverheadConfig{YCSBOps: 4000, InsertOps: 4000}
	const attempts = 3
	var lastErrs []string
	for try := 0; try < attempts; try++ {
		res, err := MeasureOverhead(cfg, []Variant{Vanilla, WithArthas, WithCheckpoint, WithInstr, WithPmCRIU})
		if err != nil {
			t.Fatal(err)
		}
		if res.Fig12() == "" || res.Table8() == "" {
			t.Fatal("empty overhead renderings")
		}
		lastErrs = nil
		for _, sysName := range OverheadSystems {
			rel := res.Relative(sysName, WithArthas)
			if rel <= 0 {
				t.Errorf("%s: missing measurement", sysName)
				continue
			}
			// Arthas overhead must be modest (paper: 2.9-4.8%; the
			// interpreted substrate is far noisier at small op counts, so
			// only exclude multi-x slowdowns here; EXPERIMENTS.md records
			// the large-run numbers).
			if rel < 0.45 {
				lastErrs = append(lastErrs,
					fmt.Sprintf("%s: Arthas relative throughput %.2f (overhead too large)", sysName, rel))
			}
			// Instrumentation alone costs no more than full Arthas, within noise.
			if ri := res.Relative(sysName, WithInstr); ri < rel-0.35 {
				lastErrs = append(lastErrs,
					fmt.Sprintf("%s: instr-only %.2f much slower than full Arthas %.2f", sysName, ri, rel))
			}
		}
		if len(lastErrs) == 0 {
			return
		}
		t.Logf("attempt %d/%d: %s", try+1, attempts, strings.Join(lastErrs, "; "))
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}

func TestStaticTimings(t *testing.T) {
	ts, err := MeasureStatic()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("systems = %d", len(ts))
	}
	for _, tm := range ts {
		if tm.Instructions == 0 || tm.PMInstrs == 0 || tm.PDGEdges == 0 {
			t.Errorf("%s: empty stats %+v", tm.System, tm)
		}
		// Slicing (the mitigation-critical-path piece) is fast relative to
		// whole-program analysis.
		if tm.Slicing > tm.Analysis*10 {
			t.Errorf("%s: slicing %v slower than analysis %v", tm.System, tm.Slicing, tm.Analysis)
		}
	}
	if !strings.Contains(Table9(ts), "memcached") {
		t.Fatal("table 9 rendering")
	}
}

func TestScrubCost(t *testing.T) {
	res, err := RunScrub(ScrubConfig{
		PersistOps: 4000, ScanPasses: 5, Cycles: 3, FaultBlocks: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHealed {
		t.Fatal("a scrub-and-heal cycle failed to heal every corrupt block")
	}
	if res.RepairedWords == 0 {
		t.Fatal("repair cycles repaired no words")
	}
	if res.ScanWordsPerMS <= 0 {
		t.Fatalf("scan throughput %v", res.ScanWordsPerMS)
	}
	// The target is < 5% checksum overhead on the persist hot path; at
	// test-sized op counts the measurement is noise-dominated, so only
	// exclude gross regressions here (EXPERIMENTS.md records bench-sized
	// numbers).
	if res.OverheadPct > 50 {
		t.Errorf("persist-path checksum overhead %.1f%%", res.OverheadPct)
	}
	if !strings.Contains(res.Text(), "scrub-and-heal") {
		t.Fatal("scrub text rendering")
	}
}
