package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"arthas"
	"arthas/internal/ir"
	"arthas/internal/opt"
	"arthas/internal/systems"
	"arthas/internal/workload"
)

// Flush/fence-elimination evaluation (arthas-bench -exp optimize): each
// program runs the same workload twice — unoptimized and under the
// internal/opt pass — with the provenance index attached, so the rows
// report the pass's static rewrites next to what they buy dynamically:
// persist-op counts, persisted words, the redundant-persist ratio
// (provenance's headroom metric, which the pass must strictly lower
// wherever it is nonzero), and throughput.

// OptimizeConfig sizes the measurement.
type OptimizeConfig struct {
	// Rounds is the per-fixture workload length (default 64).
	Rounds int
	// Ops is the per-system workload length (default 2000).
	Ops int
	// Seed drives the system workload streams (default 1).
	Seed uint64
	// FixtureDir locates the repo's .pml fixtures (default "testdata" —
	// arthas-bench runs from the repo root; tests pass "../../testdata").
	FixtureDir string
}

func (c OptimizeConfig) withDefaults() OptimizeConfig {
	if c.Rounds == 0 {
		c.Rounds = 64
	}
	if c.Ops == 0 {
		c.Ops = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FixtureDir == "" {
		c.FixtureDir = "testdata"
	}
	return c
}

// OptimizeRow is one program's before/after measurement.
type OptimizeRow struct {
	Program string `json:"program"`
	// Static is what the pass removed from the module.
	Static opt.Stats `json:"static"`
	// Dynamic persist traffic, one uninstrumented-workload run per build.
	PersistOpsBefore     uint64  `json:"persist_ops_before"`
	PersistOpsAfter      uint64  `json:"persist_ops_after"`
	PersistedWordsBefore uint64  `json:"persisted_words_before"`
	PersistedWordsAfter  uint64  `json:"persisted_words_after"`
	RedundantBefore      uint64  `json:"redundant_before"`
	RedundantAfter       uint64  `json:"redundant_after"`
	RatioBefore          float64 `json:"ratio_before"`
	RatioAfter           float64 `json:"ratio_after"`
	OpsPerSecBefore      float64 `json:"ops_per_sec_before"`
	OpsPerSecAfter       float64 `json:"ops_per_sec_after"`
}

// OptimizeResults is the full -exp optimize output.
type OptimizeResults struct {
	Rows []OptimizeRow `json:"programs"`
}

// optFixtures drives each PML fixture's workload against an arthas.Instance.
// Scripts are closed-form so both builds execute the identical call stream.
var optFixtures = []struct {
	name  string
	calls func(rounds int) [][2]interface{} // (fn, args)
}{
	{"counter", func(r int) [][2]interface{} {
		out := [][2]interface{}{{"init_", []int64{}}}
		for i := 0; i < r; i++ {
			out = append(out, [2]interface{}{"bump", []int64{}})
		}
		return out
	}},
	{"checksum", func(r int) [][2]interface{} {
		out := [][2]interface{}{{"init_", []int64{}}}
		for i := 0; i < r; i++ {
			out = append(out, [2]interface{}{"set", []int64{int64(1 + i%7), int64(i)}})
		}
		return out
	}},
	{"linkedset", func(r int) [][2]interface{} {
		out := [][2]interface{}{{"init_", []int64{}}}
		for i := 0; i < r; i++ {
			out = append(out, [2]interface{}{"insert", []int64{int64(i)}})
		}
		return out
	}},
	{"ringlog", func(r int) [][2]interface{} {
		out := [][2]interface{}{{"init_", []int64{16}}}
		for i := 0; i < r; i++ {
			out = append(out, [2]interface{}{"append_", []int64{int64(i)}})
		}
		return out
	}},
	{"native", func(r int) [][2]interface{} {
		out := [][2]interface{}{{"init_", []int64{}}}
		for i := 0; i < r; i++ {
			if i%7 == 6 {
				out = append(out, [2]interface{}{"reset_", []int64{}})
			} else {
				out = append(out, [2]interface{}{"append_", []int64{int64(i)}})
			}
		}
		return out
	}},
}

// staticStats runs the pass on a fresh compile of the program and returns
// what it rewrote.
func staticStats(name, source string) (opt.Stats, error) {
	mod, err := ir.CompileSource(name, source)
	if err != nil {
		return opt.Stats{}, err
	}
	st, err := opt.Optimize(mod)
	if err != nil {
		return opt.Stats{}, err
	}
	return *st, nil
}

// runFixture measures one fixture under one build.
func runFixture(name, source string, calls [][2]interface{}, optimize bool, row *OptimizeRow) error {
	inst, err := arthas.New(name, source, arthas.Config{
		Provenance: true,
		Optimize:   optimize,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	for _, c := range calls {
		if _, trap := inst.Call(c[0].(string), c[1].([]int64)...); trap != nil {
			return fmt.Errorf("%s: %s trapped: %v", name, c[0], trap)
		}
	}
	secs := time.Since(start).Seconds()
	st := inst.Prov.Stats()
	fill(row, optimize, st.PersistOps, st.PersistedWords, st.RedundantPersists,
		st.RedundantRatio, float64(len(calls)), secs)
	return nil
}

// runSystem measures one paper system under one build: deploy (InitFn runs
// inside), then the system's insert/update stream.
func runSystem(sysName string, cfg OptimizeConfig, optimize bool, row *OptimizeRow) error {
	d, _, err := deployForOptimize(sysName, optimize)
	if err != nil {
		return err
	}
	runner := runnerFor(sysName, d)
	ops := workload.Generate(workload.InsertOnly(cfg.Ops, cfg.Seed))
	start := time.Now()
	if _, err := runner.Run(ops); err != nil {
		return fmt.Errorf("%s: %w", sysName, err)
	}
	secs := time.Since(start).Seconds()
	st := d.Prov.Stats()
	fill(row, optimize, st.PersistOps, st.PersistedWords, st.RedundantPersists,
		st.RedundantRatio, float64(len(ops)), secs)
	return nil
}

func deployForOptimize(sysName string, optimize bool) (*systems.Deployment, *systems.System, error) {
	var sys *systems.System
	switch sysName {
	case "memcached":
		sys = systems.Memcached()
	case "redis":
		sys = systems.Redis()
	case "pelikan":
		sys = systems.Pelikan()
	case "pmemkv":
		sys = systems.PMEMKV()
	case "cceh":
		sys = systems.CCEH()
	default:
		return nil, nil, fmt.Errorf("unknown system %q", sysName)
	}
	sys.PoolWords = 1 << 21
	d, err := systems.Deploy(sys, systems.DeployOpts{
		StepLimit:  1 << 40,
		Provenance: true,
		Optimize:   optimize,
	})
	return d, sys, err
}

func fill(row *OptimizeRow, optimize bool, persistOps, words, redundant uint64, ratio, nops, secs float64) {
	ops := 0.0
	if secs > 0 {
		ops = nops / secs
	}
	if optimize {
		row.PersistOpsAfter = persistOps
		row.PersistedWordsAfter = words
		row.RedundantAfter = redundant
		row.RatioAfter = ratio
		row.OpsPerSecAfter = ops
	} else {
		row.PersistOpsBefore = persistOps
		row.PersistedWordsBefore = words
		row.RedundantBefore = redundant
		row.RatioBefore = ratio
		row.OpsPerSecBefore = ops
	}
}

// RunOptimize measures the pass over every fixture and paper system.
func RunOptimize(cfg OptimizeConfig) (*OptimizeResults, error) {
	cfg = cfg.withDefaults()
	res := &OptimizeResults{}

	for _, fx := range optFixtures {
		data, err := os.ReadFile(filepath.Join(cfg.FixtureDir, fx.name+".pml"))
		if err != nil {
			return nil, fmt.Errorf("optimize: fixture %s: %w", fx.name, err)
		}
		src := string(data)
		row := OptimizeRow{Program: fx.name}
		if row.Static, err = staticStats(fx.name, src); err != nil {
			return nil, err
		}
		calls := fx.calls(cfg.Rounds)
		if err := runFixture(fx.name, src, calls, false, &row); err != nil {
			return nil, err
		}
		if err := runFixture(fx.name, src, calls, true, &row); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	for _, sysName := range OverheadSystems {
		_, sys, err := deployForOptimize(sysName, false)
		if err != nil {
			return nil, err
		}
		row := OptimizeRow{Program: sysName}
		if row.Static, err = staticStats(sysName, sys.Source); err != nil {
			return nil, err
		}
		if err := runSystem(sysName, cfg, false, &row); err != nil {
			return nil, err
		}
		if err := runSystem(sysName, cfg, true, &row); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Text renders the results (arthas-bench -exp optimize).
func (r *OptimizeResults) Text() string {
	var sb strings.Builder
	sb.WriteString("Flush/fence elimination (internal/opt): static rewrites and dynamic persist traffic\n")
	fmt.Fprintf(&sb, "  %-10s %28s | %22s | %18s | %s\n",
		"program", "static (pass stats)", "persist ops", "redundant ratio", "ops/s speedup")
	for _, row := range r.Rows {
		speedup := 1.0
		if row.OpsPerSecBefore > 0 {
			speedup = row.OpsPerSecAfter / row.OpsPerSecBefore
		}
		fmt.Fprintf(&sb, "  %-10s %28s | %9d -> %9d | %7.4f -> %7.4f | %.2fx\n",
			row.Program, row.Static.String(),
			row.PersistOpsBefore, row.PersistOpsAfter,
			row.RatioBefore, row.RatioAfter, speedup)
	}
	sb.WriteString("  (ratio = redundant word-persists / persisted words; the pass must never raise it)\n")
	return sb.String()
}

// JSON flattens for JSONReport.Optimize.
func (r *OptimizeResults) JSON() *JSONOptimize {
	return &JSONOptimize{Programs: r.Rows}
}

// WriteJSON writes a standalone optimize-only bench document (the CI
// optimizer job's artifact).
func (r *OptimizeResults) WriteJSON(w io.Writer) error {
	doc := struct {
		Schema   string        `json:"schema"`
		Optimize *JSONOptimize `json:"optimize"`
	}{Schema: JSONSchema, Optimize: r.JSON()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// JSONOptimize is the machine-readable optimize section (schema
// arthas-bench/v1).
type JSONOptimize struct {
	Programs []OptimizeRow `json:"programs"`
}
