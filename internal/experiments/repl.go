package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arthas/internal/fleet"
	"arthas/internal/obs"
	"arthas/internal/workload"
)

// The replication experiment (docs/REPLICATION.md): what does attaching a
// standby replica to every shard cost, how far does the standby trail, and
// what does failover buy when mitigation cannot heal? Three measurements:
//
//   - Overhead: the same closed-loop workload with replicas off and on.
//     Shipping is the checkpoint log the primary already writes, batched at
//     the lag bound, so the gap is the serialization + apply cost.
//   - Lag: the max per-shard record lag sampled across the run — the bound
//     the promote-time catch-up drain has to cover.
//   - Failover vs mitigation: the same mid-run hard fault healed two ways —
//     online mitigation (replica idle), and chaos-failed mitigation forcing
//     promotion. Both runs report time from injection to the key serving
//     again, so the failover window is directly comparable to the
//     mitigation window it replaces.

// ReplConfig sizes the replication experiment.
type ReplConfig struct {
	// Shards is the fleet size (default 2).
	Shards int
	// Clients is the closed-loop client count (default 4).
	Clients int
	// OpsPerClient is each client's op count (default 400).
	OpsPerClient int
	// Keys is the workload keyspace (default 100).
	Keys int
	// Seed fixes the deterministic client streams (default 42).
	Seed uint64
	// MaxLag bounds how many records a standby may trail (default 8).
	MaxLag int
	// ServiceLatency is the simulated PM-bound per-request service time
	// (default 20µs; see FleetConfig.ServiceLatency).
	ServiceLatency time.Duration
}

func (c ReplConfig) withDefaults() ReplConfig {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 400
	}
	if c.Keys == 0 {
		c.Keys = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxLag == 0 {
		c.MaxLag = 8
	}
	if c.ServiceLatency == 0 {
		c.ServiceLatency = 20 * time.Microsecond
	}
	return c
}

// ReplOverheadPoint is one closed-loop run, with or without replicas.
type ReplOverheadPoint struct {
	Replicas  bool    `json:"replicas"`
	Done      int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
	// StateDigest must match between the two points: replication may not
	// change the served state.
	StateDigest int64 `json:"state_digest"`
	// Ships/Records are the stream totals across shards (replicas only).
	Ships   uint64 `json:"ships,omitempty"`
	Records uint64 `json:"records,omitempty"`
}

// ReplLag summarizes the sampled per-shard record lag.
type ReplLag struct {
	Bound   int     `json:"bound"`
	Samples int64   `json:"samples"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
	// FinalLag is the residual lag after the run's last ship — 0 on every
	// shard once traffic stops.
	FinalLag uint64 `json:"final_lag"`
}

// ReplFailover compares the two heal paths for the same injected fault.
type ReplFailover struct {
	// MitigationHealMS is injection→served-again with mitigation healing
	// online (the replica stays a standby).
	MitigationHealMS float64 `json:"mitigation_heal_ms"`
	MitigationHealed bool    `json:"mitigation_healed"`
	// FailoverHealMS is the same window with mitigation chaos-failed, healed
	// by promoting the standby instead.
	FailoverHealMS float64 `json:"failover_heal_ms"`
	FailoverHealed bool    `json:"failover_healed"`
	Promotions     int64   `json:"promotions"`
	// OriginalValueServed reports the promoted replica returning the
	// pre-fault value (the corruption never shipped).
	OriginalValueServed bool `json:"original_value_served"`
}

// ReplResults is the full replication experiment output.
type ReplResults struct {
	Config   ReplConfig          `json:"-"`
	Overhead []ReplOverheadPoint `json:"overhead"`
	Lag      ReplLag             `json:"lag"`
	Failover *ReplFailover       `json:"failover"`
}

// JSONRepl is the machine-readable repl section (schema arthas-bench/v1).
type JSONRepl struct {
	Shards       int                 `json:"shards"`
	Clients      int                 `json:"clients"`
	OpsPerClient int                 `json:"ops_per_client"`
	Keys         int                 `json:"keys"`
	Seed         uint64              `json:"seed"`
	Overhead     []ReplOverheadPoint `json:"overhead"`
	Lag          ReplLag             `json:"lag"`
	Failover     *ReplFailover       `json:"failover,omitempty"`
}

// JSON flattens the results for the bench document.
func (r *ReplResults) JSON() *JSONRepl {
	return &JSONRepl{
		Shards:       r.Config.Shards,
		Clients:      r.Config.Clients,
		OpsPerClient: r.Config.OpsPerClient,
		Keys:         r.Config.Keys,
		Seed:         r.Config.Seed,
		Overhead:     r.Overhead,
		Lag:          r.Lag,
		Failover:     r.Failover,
	}
}

// WriteJSON writes a standalone repl-only bench document (the CI artifact of
// the repl job).
func (r *ReplResults) WriteJSON(w io.Writer) error {
	doc := struct {
		Schema string    `json:"schema"`
		Repl   *JSONRepl `json:"repl"`
	}{Schema: JSONSchema, Repl: r.JSON()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// replFleet builds one experiment fleet; withReplicas is the only knob that
// differs between the overhead points.
func replFleet(cfg ReplConfig, name string, withReplicas, chaosFail bool) (*fleet.Fleet, error) {
	return fleet.New(fleet.Config{
		Shards: cfg.Shards, BaseName: name,
		ServiceLatency: cfg.ServiceLatency, Provenance: true,
		Replicas: withReplicas, ReplMaxLag: cfg.MaxLag,
		ChaosMitigationFail: chaosFail,
	})
}

// replDriver mirrors fleetDriver: identical streams across every run of the
// experiment, key-derived write values so interleavings commute.
func replDriver(cfg ReplConfig, f *fleet.Fleet) *workload.Driver {
	return &workload.Driver{
		Clients:      cfg.Clients,
		OpsPerClient: cfg.OpsPerClient,
		Shape:        workload.WorkloadA(0, cfg.Keys, cfg.Seed),
		ErrClass:     fleet.ErrClass,
		Do: func(_ int, op workload.Op) error {
			if op.Kind != workload.OpRead {
				op.Value = op.Key*2654435761 + 1
			}
			_, err := f.Do(op)
			return err
		},
	}
}

// healTime injects a hard fault into key and measures until it serves again.
func healTime(f *fleet.Fleet, key int64) (time.Duration, bool) {
	if _, err := f.InjectFault(key, 5); err != nil {
		return 0, false
	}
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := f.Get(key); err == nil {
			return time.Since(start), true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return time.Since(start), false
}

// RunRepl executes the replication experiment.
func RunRepl(cfg ReplConfig) (*ReplResults, error) {
	cfg = cfg.withDefaults()
	res := &ReplResults{Config: cfg}

	// Overhead: replicas off, then on, same streams. The lag histogram rides
	// on the replicated run, sampled from the driver's tick hook.
	var lag obs.Hist
	var lagMu sync.Mutex
	for _, withReplicas := range []bool{false, true} {
		f, err := replFleet(cfg, fmt.Sprintf("repl-bench-%v", withReplicas), withReplicas, false)
		if err != nil {
			return nil, err
		}
		d := replDriver(cfg, f)
		if withReplicas {
			d.Tick = func(done int) {
				if done%32 != 0 {
					return
				}
				lagMu.Lock()
				for _, st := range f.ReplStatus() {
					lag.Add(float64(st.Lag))
				}
				lagMu.Unlock()
			}
		}
		rep := d.Run()
		if rep.Errors != 0 {
			return nil, fmt.Errorf("repl: fault-free run (replicas=%v) had %d errors (%+v)",
				withReplicas, rep.Errors, rep.ErrCounts)
		}
		dig, err := f.StateDigest()
		if err != nil {
			return nil, err
		}
		pt := ReplOverheadPoint{
			Replicas:    withReplicas,
			Done:        rep.Done,
			Errors:      rep.Errors,
			ElapsedMS:   rep.ElapsedMS,
			OpsPerSec:   rep.OpsPerSec,
			P50US:       rep.P50US,
			P99US:       rep.P99US,
			StateDigest: dig,
		}
		if withReplicas {
			var final uint64
			for _, st := range f.ReplStatus() {
				pt.Ships += st.Ships
				pt.Records += st.Records
				if st.Lag > final {
					final = st.Lag
				}
			}
			res.Lag = ReplLag{
				Bound:    cfg.MaxLag,
				Samples:  lag.Count,
				P50:      lag.Quantile(0.5),
				P99:      lag.Quantile(0.99),
				Max:      lag.Max,
				FinalLag: final,
			}
		}
		res.Overhead = append(res.Overhead, pt)
	}
	if res.Overhead[0].StateDigest != res.Overhead[1].StateDigest {
		return nil, fmt.Errorf("repl: replication changed served state: digest %d vs %d",
			res.Overhead[0].StateDigest, res.Overhead[1].StateDigest)
	}

	// Failover vs mitigation: identical fleets, identical fault, the only
	// difference is whether mitigation is allowed to succeed.
	fo := &ReplFailover{}
	faultKey := fleetFaultKey(cfg.Shards)
	for _, chaos := range []bool{false, true} {
		f, err := replFleet(cfg, fmt.Sprintf("repl-heal-%v", chaos), true, chaos)
		if err != nil {
			return nil, err
		}
		if err := f.Put(faultKey, 31337); err != nil {
			return nil, err
		}
		// Warm state so promotion replays a real log, not just one record.
		var warm atomic.Int64
		d := replDriver(cfg, f)
		d.OpsPerClient = 50
		d.Tick = func(int) { warm.Add(1) }
		if rep := d.Run(); rep.Errors != 0 {
			return nil, fmt.Errorf("repl: warmup had %d errors", rep.Errors)
		}
		heal, ok := healTime(f, faultKey)
		if chaos {
			fo.FailoverHealMS = float64(heal.Microseconds()) / 1000
			fo.FailoverHealed = ok
			if v, err := f.Get(faultKey); err == nil && v == 31337 {
				fo.OriginalValueServed = true
			}
			for _, st := range f.Stats() {
				fo.Promotions += st.Promotions
			}
		} else {
			fo.MitigationHealMS = float64(heal.Microseconds()) / 1000
			fo.MitigationHealed = ok
		}
	}
	res.Failover = fo
	return res, nil
}

// Text renders the experiment for the terminal.
func (r *ReplResults) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==== Replicated pools (docs/REPLICATION.md) ====\n\n")
	fmt.Fprintf(&sb, "closed loop: %d shards, %d clients x %d ops, %d keys, seed %d, lag bound %d\n\n",
		r.Config.Shards, r.Config.Clients, r.Config.OpsPerClient, r.Config.Keys,
		r.Config.Seed, r.Config.MaxLag)
	fmt.Fprintf(&sb, "%-10s %10s %12s %10s %10s\n", "replicas", "ops", "ops/sec", "p50 us", "p99 us")
	var base float64
	for _, p := range r.Overhead {
		if !p.Replicas {
			base = p.OpsPerSec
		}
		note := ""
		if p.Replicas && base > 0 {
			note = fmt.Sprintf("  (%.1f%% overhead, %d records in %d ships)",
				(1-p.OpsPerSec/base)*100, p.Records, p.Ships)
		}
		fmt.Fprintf(&sb, "%-10v %10d %12.0f %10.1f %10.1f%s\n",
			p.Replicas, p.Done, p.OpsPerSec, p.P50US, p.P99US, note)
	}
	fmt.Fprintf(&sb, "\nstandby lag (records, bound %d): p50 %.0f, p99 %.0f, max %.0f over %d samples; final %d\n",
		r.Lag.Bound, r.Lag.P50, r.Lag.P99, r.Lag.Max, r.Lag.Samples, r.Lag.FinalLag)
	if f := r.Failover; f != nil {
		fmt.Fprintf(&sb, "\nsame hard fault, two heal paths:\n")
		fmt.Fprintf(&sb, "  online mitigation:    healed=%v in %.2f ms\n", f.MitigationHealed, f.MitigationHealMS)
		fmt.Fprintf(&sb, "  replica promotion:    healed=%v in %.2f ms (%d promotions, mitigation chaos-failed)\n",
			f.FailoverHealed, f.FailoverHealMS, f.Promotions)
		if f.OriginalValueServed {
			fmt.Fprintf(&sb, "  promoted standby served the pre-fault value (corruption never shipped)\n")
		}
	}
	return sb.String()
}
