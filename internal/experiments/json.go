package experiments

import (
	"encoding/json"
	"io"

	"arthas/internal/faults"
	"arthas/internal/study"
)

// Machine-readable rendering of the evaluation: the same data behind every
// table and figure, as one JSON document (cmd/arthas-bench -json). Field
// names are stable — treat them as the output schema, versioned by Schema.

// JSONOutcome flattens one faults.Outcome (errors become strings).
type JSONOutcome struct {
	Solution      string  `json:"solution"`
	HardFault     bool    `json:"hard_fault"`
	Recovered     bool    `json:"recovered"`
	Attempts      int     `json:"attempts"`
	DataLossPct   float64 `json:"data_loss_pct"`
	RevertedItems int     `json:"reverted_items"`
	Consistent    bool    `json:"consistent"`
	Inconsistency string  `json:"inconsistency,omitempty"`
	FreedBlocks   int     `json:"freed_blocks,omitempty"`
	MitigationMS  float64 `json:"mitigation_ms"`
	TimedOut      bool    `json:"timed_out,omitempty"`
}

func toJSONOutcome(o *faults.Outcome) *JSONOutcome {
	if o == nil {
		return nil
	}
	j := &JSONOutcome{
		Solution:      o.Solution,
		HardFault:     o.HardFault,
		Recovered:     o.Recovered,
		Attempts:      o.Attempts,
		DataLossPct:   o.DataLossPct,
		RevertedItems: o.RevertedItems,
		Consistent:    o.Consistent == nil,
		FreedBlocks:   o.Freed,
		MitigationMS:  float64(o.MitigationTime.Microseconds()) / 1000,
		TimedOut:      o.TimedOut,
	}
	if o.Consistent != nil {
		j.Inconsistency = o.Consistent.Error()
	}
	return j
}

// JSONCase is one fault's row across all solutions (Tables 3-5, Figs 8-11).
type JSONCase struct {
	ID             string         `json:"id"`
	System         string         `json:"system"`
	Fault          string         `json:"fault"`
	Consequence    string         `json:"consequence"`
	IsLeak         bool           `json:"is_leak,omitempty"`
	Arthas         *JSONOutcome   `json:"arthas"`
	ArthasRollback *JSONOutcome   `json:"arthas_rollback"`
	ArCkpt         *JSONOutcome   `json:"arckpt"`
	PmCRIU         []*JSONOutcome `json:"pmcriu"`
}

// JSON flattens the recoverability matrix.
func (m *Matrix) JSON() []JSONCase {
	out := make([]JSONCase, 0, len(m.Cases))
	for _, c := range m.Cases {
		jc := JSONCase{
			ID:             c.Meta.ID,
			System:         c.Meta.System,
			Fault:          c.Meta.Fault,
			Consequence:    c.Meta.Consequence,
			IsLeak:         c.Meta.IsLeak,
			Arthas:         toJSONOutcome(c.Arthas),
			ArthasRollback: toJSONOutcome(c.ArthasRollback),
			ArCkpt:         toJSONOutcome(c.ArCkpt),
		}
		for _, o := range c.PmCRIU {
			jc.PmCRIU = append(jc.PmCRIU, toJSONOutcome(o))
		}
		out = append(out, jc)
	}
	return out
}

// JSONBatch is the §6.5 strategy comparison (Figure 10, Table 6).
type JSONBatch struct {
	OneByOne []BatchCell `json:"one_by_one"`
	Batch5   []BatchCell `json:"batch5"`
}

// JSONDetection is one Table 7 row.
type JSONDetection struct {
	ID        string `json:"id"`
	Invariant bool   `json:"invariant_detects"`
	Checksum  bool   `json:"checksum_detects"`
}

// JSONThroughput is one overhead cell (Figure 12, Table 8).
type JSONThroughput struct {
	System            string  `json:"system"`
	Variant           string  `json:"variant"`
	Ops               int     `json:"ops"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	RelativeToVanilla float64 `json:"relative_to_vanilla"`
}

// JSON flattens the overhead grid, annotating each cell with its
// vanilla-relative throughput.
func (r *OverheadResults) JSON() []JSONThroughput {
	out := make([]JSONThroughput, 0, len(r.Cells))
	for _, c := range r.Cells {
		out = append(out, JSONThroughput{
			System:            c.System,
			Variant:           string(c.Variant),
			Ops:               c.Ops,
			ElapsedMS:         float64(c.Elapsed.Microseconds()) / 1000,
			OpsPerSec:         c.OpsPerSec(),
			RelativeToVanilla: r.Relative(c.System, c.Variant),
		})
	}
	return out
}

// JSONStatic is one Table 9 row with millisecond timings.
type JSONStatic struct {
	System       string  `json:"system"`
	Functions    int     `json:"functions"`
	Instructions int     `json:"instructions"`
	PMInstrs     int     `json:"pm_instrs"`
	PDGEdges     int     `json:"pdg_edges"`
	AnalysisMS   float64 `json:"analysis_ms"`
	InstrumentMS float64 `json:"instrument_ms"`
	SlicingMS    float64 `json:"slicing_ms"`
}

// JSONStudy is the §2 study dataset distributions (Table 1, Figs 2-3).
type JSONStudy struct {
	BySystem      []study.Count `json:"by_system"`
	ByRootCause   []study.Count `json:"by_root_cause"`
	ByConsequence []study.Count `json:"by_consequence"`
	ByType        []study.Count `json:"by_type"`
}

// JSONScrub is the media-resilience cost measurement (docs/MEDIA_FAULTS.md):
// checksum overhead on the persist hot path, full seal-scan throughput, and
// the cost of a scrub-and-heal cycle from the checkpoint log.
type JSONScrub struct {
	PersistOps     int     `json:"persist_ops"`
	PersistSpan    int     `json:"persist_span"`
	BaselineMS     float64 `json:"baseline_ms"`
	ChecksummedMS  float64 `json:"checksummed_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	ScanPasses     int     `json:"scan_passes"`
	ScanWords      int     `json:"scan_words"`
	ScanWordsPerMS float64 `json:"scan_words_per_ms"`
	Cycles         int     `json:"cycles"`
	FaultBlocks    int     `json:"fault_blocks"`
	RepairMeanMS   float64 `json:"repair_mean_ms"`
	RepairedWords  int     `json:"repaired_words"`
	AllHealed      bool    `json:"all_healed"`
}

func toJSONScrub(r *ScrubResults) *JSONScrub {
	return &JSONScrub{
		PersistOps:     r.PersistOps,
		PersistSpan:    r.PersistSpan,
		BaselineMS:     r.BaselineMS,
		ChecksummedMS:  r.ChecksummedMS,
		OverheadPct:    r.OverheadPct,
		ScanPasses:     r.ScanPasses,
		ScanWords:      r.ScanWords,
		ScanWordsPerMS: r.ScanWordsPerMS,
		Cycles:         r.Cycles,
		FaultBlocks:    r.FaultBlocks,
		RepairMeanMS:   r.RepairMeanMS,
		RepairedWords:  r.RepairedWords,
		AllHealed:      r.AllHealed,
	}
}

// JSONProvenance is the write-lineage cost + persist-amplification digest
// (arthas-bench -exp provenance): the flush-elimination baseline metric.
type JSONProvenance struct {
	PersistOps          int     `json:"persist_ops"`
	PersistSpan         int     `json:"persist_span"`
	BaselineMS          float64 `json:"baseline_ms"`
	LineageMS           float64 `json:"lineage_ms"`
	OverheadPct         float64 `json:"overhead_pct"`
	LineageRecords      uint64  `json:"lineage_records"`
	DistinctWords       int     `json:"distinct_words"`
	MeanPersistsPerWord float64 `json:"mean_persists_per_word"`
	RedundantPersists   uint64  `json:"redundant_persists"`
	RedundantRatio      float64 `json:"redundant_ratio"`
	HotSiteGUID         int     `json:"hot_site_guid"`
	HotSiteWords        uint64  `json:"hot_site_words"`
}

func toJSONProvenance(r *ProvenanceResults) *JSONProvenance {
	return &JSONProvenance{
		PersistOps:          r.PersistOps,
		PersistSpan:         r.PersistSpan,
		BaselineMS:          r.BaselineMS,
		LineageMS:           r.LineageMS,
		OverheadPct:         r.OverheadPct,
		LineageRecords:      r.LineageRecords,
		DistinctWords:       r.DistinctWords,
		MeanPersistsPerWord: r.MeanPersistsPerWord,
		RedundantPersists:   r.RedundantPersists,
		RedundantRatio:      r.RedundantRatio,
		HotSiteGUID:         r.HotSiteGUID,
		HotSiteWords:        r.HotSiteWords,
	}
}

// JSONReport is the complete machine-readable evaluation.
type JSONReport struct {
	Schema     string           `json:"schema"`
	Study      JSONStudy        `json:"study"`
	Matrix     []JSONCase       `json:"matrix"`
	Batch      *JSONBatch       `json:"batch,omitempty"`
	Detection  []JSONDetection  `json:"detection,omitempty"`
	Overhead   []JSONThroughput `json:"overhead,omitempty"`
	Static     []JSONStatic     `json:"static,omitempty"`
	Scrub      *JSONScrub       `json:"scrub,omitempty"`
	Provenance *JSONProvenance  `json:"provenance,omitempty"`
	// Fleet appears when the evaluation ran with FullConfig.Fleet set
	// (the sharded-serving scaling + mid-run fault experiment).
	Fleet *JSONFleet `json:"fleet,omitempty"`
	// Optimize appears when the evaluation ran with FullConfig.Optimize set
	// (the flush/fence-elimination before/after measurement).
	Optimize *JSONOptimize `json:"optimize,omitempty"`
	// Workers and Parallel appear only when the evaluation ran with
	// FullConfig.Workers > 1 (cmd/arthas-bench -workers N): the default
	// sequential report stays byte-identical.
	Workers  int                `json:"workers,omitempty"`
	Parallel []JSONParallelCase `json:"parallel,omitempty"`
}

// JSONParallelCase is one sequential-vs-parallel mitigation measurement.
type JSONParallelCase struct {
	ID           string  `json:"id"`
	System       string  `json:"system"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	OutcomeMatch bool    `json:"outcome_match"`
}

// JSON flattens the parallel comparison.
func (pc *ParallelComparison) JSON() []JSONParallelCase {
	out := make([]JSONParallelCase, 0, len(pc.Cases))
	for i := range pc.Cases {
		c := &pc.Cases[i]
		out = append(out, JSONParallelCase{
			ID:           c.Meta.ID,
			System:       c.Meta.System,
			SequentialMS: float64(c.Sequential.MitigationTime.Microseconds()) / 1000,
			ParallelMS:   float64(c.Parallel.MitigationTime.Microseconds()) / 1000,
			Speedup:      c.Speedup(),
			OutcomeMatch: c.OutcomeMatch,
		})
	}
	return out
}

// JSONSchema versions the report layout.
const JSONSchema = "arthas-bench/v1"

// FullJSON runs the complete evaluation (the same experiments as FullReport)
// and returns it as a structured report.
func FullJSON(cfg FullConfig) (*JSONReport, error) {
	rep := &JSONReport{
		Schema: JSONSchema,
		Study: JSONStudy{
			BySystem:      study.BySystem(),
			ByRootCause:   study.ByRootCause(),
			ByConsequence: study.ByConsequence(),
			ByType:        study.ByType(),
		},
	}

	m, err := RunMatrix(cfg.Matrix)
	if err != nil {
		return nil, err
	}
	rep.Matrix = m.JSON()

	br, err := RunBatchComparison(cfg.Batch)
	if err != nil {
		return nil, err
	}
	rep.Batch = &JSONBatch{OneByOne: br.OneByOne, Batch5: br.Batch5}

	for _, b := range faults.All() {
		inv, chk, err := faults.RunDetectionAlternatives(b, cfg.Matrix.Run)
		if err != nil {
			return nil, err
		}
		rep.Detection = append(rep.Detection, JSONDetection{ID: b.ID, Invariant: inv, Checksum: chk})
	}

	if cfg.Workers > 1 {
		pc, err := RunParallelComparison(cfg.Matrix.Run, cfg.Workers)
		if err != nil {
			return nil, err
		}
		rep.Workers = cfg.Workers
		rep.Parallel = pc.JSON()
	}

	if !cfg.SkipOverhead {
		ov, err := MeasureOverhead(cfg.Overhead,
			[]Variant{Vanilla, WithArthas, WithCheckpoint, WithInstr, WithPmCRIU})
		if err != nil {
			return nil, err
		}
		rep.Overhead = ov.JSON()
	}

	sr, err := RunScrub(cfg.Scrub)
	if err != nil {
		return nil, err
	}
	rep.Scrub = toJSONScrub(sr)

	pr, err := RunProvenance(ProvenanceConfig{})
	if err != nil {
		return nil, err
	}
	rep.Provenance = toJSONProvenance(pr)

	if cfg.Fleet != nil {
		fr, err := RunFleet(*cfg.Fleet)
		if err != nil {
			return nil, err
		}
		rep.Fleet = fr.JSON()
	}

	if cfg.Optimize != nil {
		or, err := RunOptimize(*cfg.Optimize)
		if err != nil {
			return nil, err
		}
		rep.Optimize = or.JSON()
	}

	ts, err := MeasureStatic()
	if err != nil {
		return nil, err
	}
	for _, t := range ts {
		rep.Static = append(rep.Static, JSONStatic{
			System:       t.System,
			Functions:    t.Functions,
			Instructions: t.Instructions,
			PMInstrs:     t.PMInstrs,
			PDGEdges:     t.PDGEdges,
			AnalysisMS:   float64(t.Analysis.Microseconds()) / 1000,
			InstrumentMS: float64(t.Instrument.Microseconds()) / 1000,
			SlicingMS:    float64(t.Slicing.Microseconds()) / 1000,
		})
	}
	return rep, nil
}

// Write renders the report as indented JSON.
func (r *JSONReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
