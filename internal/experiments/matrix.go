// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the reproduced systems, faults, and solutions. Each
// experiment has a Run function returning structured results plus a
// paper-style text rendering; cmd/arthas-bench drives them, and the root
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"arthas/internal/faults"
	"arthas/internal/reactor"
)

// MatrixConfig tunes the recoverability matrix (Tables 3-5, Figures 8-9).
type MatrixConfig struct {
	// Run parameterizes each case execution.
	Run faults.RunConfig
	// Seeds for the probabilistic pmCRIU cases (f5, f8); default 10. Each
	// seed draws a different bug-trigger time, as in the paper where the
	// bugs "have a chance to be triggered in the first 1 minute, before
	// pmCRIU has taken the first snapshot".
	Seeds int
}

// triggerFracs returns the per-seed trigger times for the probabilistic
// pmCRIU cases, calibrated to the per-bug latency between trigger and
// failure so the pre-first-snapshot fraction matches the paper (f5: 9/10
// runs trigger inside the first interval; f8: 6/10).
func triggerFracs(id string, seeds int) []float64 {
	out := make([]float64, seeds)
	switch id {
	case "f5":
		for i := range out {
			out[i] = 0.02 + 0.016*float64(i) // 0.02 .. ~0.16: first interval
		}
		out[seeds-1] = 0.5
	case "f8":
		for i := range out {
			if i < (seeds*6)/10 {
				out[i] = 0.01 // leak crosses the threshold pre-snapshot-1
			} else {
				out[i] = 0.2 + 0.1*float64(i%4)
			}
		}
	default:
		for i := range out {
			out[i] = 0.5
		}
	}
	return out
}

// CaseResult aggregates one fault's outcomes under every solution.
type CaseResult struct {
	Meta           faults.Meta
	Arthas         *faults.Outcome // purge-first default configuration
	ArthasRollback *faults.Outcome // forced rollback mode (Table 4, Fig 11)
	PmCRIU         []*faults.Outcome
	ArCkpt         *faults.Outcome
}

// PmCRIUSuccesses counts recovered pmCRIU runs.
func (r CaseResult) PmCRIUSuccesses() (ok, total int) {
	for _, o := range r.PmCRIU {
		if o.Recovered {
			ok++
		}
	}
	return ok, len(r.PmCRIU)
}

// Matrix holds the full evaluation.
type Matrix struct {
	Cases    []CaseResult
	Duration time.Duration
}

// RunMatrix executes all twelve faults under Arthas (purge and rollback),
// pmCRIU, and ArCkpt.
func RunMatrix(cfg MatrixConfig) (*Matrix, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 10
	}
	start := time.Now()
	m := &Matrix{}
	for _, b := range faults.All() {
		cr := CaseResult{Meta: b.Meta}

		out, err := faults.RunArthas(b, cfg.Run)
		if err != nil {
			return nil, fmt.Errorf("%s arthas: %w", b.ID, err)
		}
		cr.Arthas = out

		rbCfg := cfg.Run
		rbCfg.Reactor = reactor.DefaultConfig()
		rbCfg.Reactor.Mode = reactor.ModeRollback
		out, err = faults.RunArthas(b, rbCfg)
		if err != nil {
			return nil, fmt.Errorf("%s arthas-rollback: %w", b.ID, err)
		}
		cr.ArthasRollback = out

		seeds := 1
		if b.ID == "f5" || b.ID == "f8" {
			seeds = cfg.Seeds
		}
		fracs := triggerFracs(b.ID, seeds)
		for s := 0; s < seeds; s++ {
			pcCfg := cfg.Run
			pcCfg.TriggerFrac = fracs[s]
			out, err = faults.RunPmCRIU(b, pcCfg)
			if err != nil {
				return nil, fmt.Errorf("%s pmcriu seed %d: %w", b.ID, s, err)
			}
			cr.PmCRIU = append(cr.PmCRIU, out)
		}

		out, err = faults.RunArCkpt(b, cfg.Run)
		if err != nil {
			return nil, fmt.Errorf("%s arckpt: %w", b.ID, err)
		}
		cr.ArCkpt = out

		m.Cases = append(m.Cases, cr)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// mark renders ✓/✗ or a k/n fraction for probabilistic results.
func mark(ok bool) string {
	if ok {
		return "Y"
	}
	return "N"
}

// Table2 renders the fault list (paper Table 2).
func Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2. Persistent faults reproduced for evaluation\n")
	fmt.Fprintf(&sb, "  %-4s %-10s %-28s %s\n", "No.", "System", "Fault", "Consequence")
	for _, b := range faults.All() {
		fmt.Fprintf(&sb, "  %-4s %-10s %-28s %s\n", b.ID, b.System, b.Fault, b.Consequence)
	}
	return sb.String()
}

// Table3 renders recoverability (paper Table 3).
func (m *Matrix) Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3. Recoverability in mitigating the evaluated failures\n")
	fmt.Fprintf(&sb, "  %-8s", "Solution")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-5s", c.Meta.ID)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "pmCRIU")
	for _, c := range m.Cases {
		ok, total := c.PmCRIUSuccesses()
		switch {
		case total > 1 && ok > 0 && ok < total:
			fmt.Fprintf(&sb, " %d/%-3d", ok, total)
		default:
			fmt.Fprintf(&sb, " %-5s", mark(ok == total && ok > 0))
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "ArCkpt")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-5s", mark(c.ArCkpt.Recovered))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "Arthas")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-5s", mark(c.Arthas.Recovered))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table4 renders post-recovery consistency (paper Table 4).
func (m *Matrix) Table4() string {
	var sb strings.Builder
	sb.WriteString("Table 4. Semantic consistency of the recovered systems\n")
	fmt.Fprintf(&sb, "  %-12s", "Solution")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-4s", c.Meta.ID)
	}
	sb.WriteString("\n")
	row := func(name string, get func(CaseResult) (recovered bool, consistent error)) {
		fmt.Fprintf(&sb, "  %-12s", name)
		for _, c := range m.Cases {
			rec, cons := get(c)
			switch {
			case !rec:
				fmt.Fprintf(&sb, " %-4s", "n/a")
			case cons != nil:
				fmt.Fprintf(&sb, " %-4s", "N")
			default:
				fmt.Fprintf(&sb, " %-4s", "Y")
			}
		}
		sb.WriteString("\n")
	}
	row("pmCRIU", func(c CaseResult) (bool, error) {
		for _, o := range c.PmCRIU {
			if o.Recovered {
				return true, o.Consistent
			}
		}
		return false, nil
	})
	row("ArCkpt", func(c CaseResult) (bool, error) { return c.ArCkpt.Recovered, c.ArCkpt.Consistent })
	row("Arthas (pg)", func(c CaseResult) (bool, error) { return c.Arthas.Recovered, c.Arthas.Consistent })
	row("Arthas (rb)", func(c CaseResult) (bool, error) {
		return c.ArthasRollback.Recovered, c.ArthasRollback.Consistent
	})
	return sb.String()
}

// Table5 renders rollback attempts (paper Table 5).
func (m *Matrix) Table5() string {
	var sb strings.Builder
	sb.WriteString("Table 5. Attempts of rollback during mitigation\n")
	fmt.Fprintf(&sb, "  %-8s", "Solution")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-4s", c.Meta.ID)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "pmCRIU")
	for _, c := range m.Cases {
		best := "X"
		for _, o := range c.PmCRIU {
			if o.Recovered {
				best = fmt.Sprintf("%d", o.Attempts)
				break
			}
		}
		fmt.Fprintf(&sb, " %-4s", best)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "ArCkpt")
	for _, c := range m.Cases {
		if c.ArCkpt.Recovered {
			fmt.Fprintf(&sb, " %-4d", c.ArCkpt.Attempts)
		} else {
			fmt.Fprintf(&sb, " %-4s", "T")
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-8s", "Arthas")
	for _, c := range m.Cases {
		fmt.Fprintf(&sb, " %-4d", c.Arthas.Attempts)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Fig8 renders mitigation times (paper Figure 8).
func (m *Matrix) Fig8() string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Time to mitigate the failures (ms, including re-execution)\n")
	fmt.Fprintf(&sb, "  %-5s %10s %10s %10s\n", "Fault", "Arthas", "ArCkpt", "pmCRIU")
	var aSum, cSum, pSum float64
	var aN, cN, pN int
	for _, c := range m.Cases {
		ams := float64(c.Arthas.MitigationTime.Microseconds()) / 1000
		aSum += ams
		aN++
		cms := "n/a"
		if c.ArCkpt.Recovered {
			v := float64(c.ArCkpt.MitigationTime.Microseconds()) / 1000
			cms = fmt.Sprintf("%10.2f", v)
			cSum += v
			cN++
		}
		pms := "n/a"
		for _, o := range c.PmCRIU {
			if o.Recovered {
				v := float64(o.MitigationTime.Microseconds()) / 1000
				pms = fmt.Sprintf("%10.2f", v)
				pSum += v
				pN++
				break
			}
		}
		fmt.Fprintf(&sb, "  %-5s %10.2f %10s %10s\n", c.Meta.ID, ams, cms, pms)
	}
	if aN > 0 {
		fmt.Fprintf(&sb, "  mean: Arthas %.2f ms", aSum/float64(aN))
	}
	if cN > 0 {
		fmt.Fprintf(&sb, ", ArCkpt %.2f ms", cSum/float64(cN))
	}
	if pN > 0 {
		fmt.Fprintf(&sb, ", pmCRIU %.2f ms", pSum/float64(pN))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Fig9 renders discarded data (paper Figure 9).
func (m *Matrix) Fig9() string {
	var sb strings.Builder
	sb.WriteString("Figure 9. Data discarded in rollback by different solutions (%)\n")
	fmt.Fprintf(&sb, "  %-5s %10s %10s %10s\n", "Fault", "Arthas", "ArCkpt", "pmCRIU")
	var aSum, pSum float64
	var aN, pN int
	for _, c := range m.Cases {
		a := c.Arthas.DataLossPct
		aSum += a
		aN++
		ck := "n/a"
		if c.ArCkpt.Recovered {
			ck = fmt.Sprintf("%10.3f", c.ArCkpt.DataLossPct)
		}
		pc := "n/a"
		for _, o := range c.PmCRIU {
			if o.Recovered {
				pc = fmt.Sprintf("%10.3f", o.DataLossPct)
				pSum += o.DataLossPct
				pN++
				break
			}
		}
		fmt.Fprintf(&sb, "  %-5s %10.3f %10s %10s\n", c.Meta.ID, a, ck, pc)
	}
	if aN > 0 && pN > 0 {
		fmt.Fprintf(&sb, "  mean: Arthas %.2f%%, pmCRIU %.2f%%\n", aSum/float64(aN), pSum/float64(pN))
	}
	return sb.String()
}

// Fig11 renders purge vs rollback data loss (paper Figure 11).
func (m *Matrix) Fig11() string {
	var sb strings.Builder
	sb.WriteString("Figure 11. Discarded changes with rollback and purging modes (%)\n")
	fmt.Fprintf(&sb, "  %-5s %10s %10s\n", "Fault", "Purge", "Rollback")
	var pgSum, rbSum float64
	n := 0
	for _, c := range m.Cases {
		if c.Meta.IsLeak {
			continue // leak mitigation does not use either reversion mode
		}
		fmt.Fprintf(&sb, "  %-5s %10.3f %10.3f\n",
			c.Meta.ID, c.Arthas.DataLossPct, c.ArthasRollback.DataLossPct)
		pgSum += c.Arthas.DataLossPct
		rbSum += c.ArthasRollback.DataLossPct
		n++
	}
	if n > 0 {
		fmt.Fprintf(&sb, "  mean: purge %.2f%%, rollback %.2f%%\n", pgSum/float64(n), rbSum/float64(n))
	}
	return sb.String()
}

// Table7 evaluates the checksum/invariant alternatives (paper Table 7 and
// §6.6) against live failed states.
func Table7(cfg faults.RunConfig) (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 7. Detecting the hard failures with common invariant checks\n")
	fmt.Fprintf(&sb, "  %-5s %-10s %-10s\n", "Fault", "Invariant", "Checksum")
	for _, b := range faults.All() {
		inv, chk, err := faults.RunDetectionAlternatives(b, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-5s %-10s %-10s\n", b.ID, mark(inv), mark(chk))
	}
	return sb.String(), nil
}
