package experiments

import (
	"fmt"
	"strings"

	"arthas/internal/faults"
)

// Sequential-vs-parallel mitigation comparison (docs/PARALLEL_MITIGATION.md):
// every non-leak case is mitigated twice — once with the sequential search
// and once speculatively at the requested worker count — and the report
// records the wall-time speedup plus whether the mitigation outcomes match
// (they must; divergence is a bug, not a measurement).

// ParallelCase is one case's sequential-vs-parallel measurement.
type ParallelCase struct {
	Meta         faults.Meta
	Sequential   *faults.Outcome
	Parallel     *faults.Outcome
	OutcomeMatch bool
}

// ParallelComparison is the full sweep at one worker count.
type ParallelComparison struct {
	Workers int
	Cases   []ParallelCase
}

// RunParallelComparison mitigates every non-leak case sequentially and with
// `workers` speculative workers. Leak cases are skipped: their mitigation
// (§4.7) performs no candidate search, so there is nothing to parallelize.
func RunParallelComparison(run faults.RunConfig, workers int) (*ParallelComparison, error) {
	if workers < 2 {
		return nil, fmt.Errorf("experiments: parallel comparison needs workers >= 2, got %d", workers)
	}
	pc := &ParallelComparison{Workers: workers}
	for _, b := range faults.All() {
		if b.IsLeak {
			continue
		}
		runAt := func(w int) (*faults.Outcome, error) {
			cfg := run
			cfg.Reactor.Workers = w
			return faults.RunArthas(b, cfg)
		}
		seq, err := runAt(1)
		if err != nil {
			return nil, err
		}
		par, err := runAt(workers)
		if err != nil {
			return nil, err
		}
		pc.Cases = append(pc.Cases, ParallelCase{
			Meta:         b.Meta,
			Sequential:   seq,
			Parallel:     par,
			OutcomeMatch: outcomesMatch(seq, par),
		})
	}
	return pc, nil
}

// outcomesMatch compares the deterministic mitigation outcome of two runs
// (the same contract as the faults package's determinism regression test;
// telemetry-derived tallies and wall times are excluded).
func outcomesMatch(a, b *faults.Outcome) bool {
	if a.Recovered != b.Recovered {
		return false
	}
	ra, rb := a.Report, b.Report
	if (ra == nil) != (rb == nil) {
		return false
	}
	if ra == nil {
		return true
	}
	if ra.Recovered != rb.Recovered || ra.RestartOnly != rb.RestartOnly ||
		ra.Attempts != rb.Attempts || ra.CandidateCount != rb.CandidateCount ||
		ra.ModeUsed != rb.ModeUsed || ra.FellBack != rb.FellBack ||
		ra.Replans != rb.Replans || len(ra.RevertedSeqs) != len(rb.RevertedSeqs) {
		return false
	}
	for i := range ra.RevertedSeqs {
		if ra.RevertedSeqs[i] != rb.RevertedSeqs[i] {
			return false
		}
	}
	return true
}

// Speedup returns sequential wall time over parallel wall time.
func (c *ParallelCase) Speedup() float64 {
	if c.Parallel.MitigationTime <= 0 {
		return 0
	}
	return float64(c.Sequential.MitigationTime) / float64(c.Parallel.MitigationTime)
}

// Text renders the comparison as an aligned table.
func (pc *ParallelComparison) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Speculative mitigation speedup (-workers %d vs sequential)\n", pc.Workers)
	fmt.Fprintf(&sb, "%-5s %-10s %12s %12s %8s %s\n",
		"case", "system", "seq-ms", "par-ms", "speedup", "outcome")
	for i := range pc.Cases {
		c := &pc.Cases[i]
		match := "match"
		if !c.OutcomeMatch {
			match = "DIVERGED"
		}
		fmt.Fprintf(&sb, "%-5s %-10s %12.3f %12.3f %7.2fx %s\n",
			c.Meta.ID, c.Meta.System,
			float64(c.Sequential.MitigationTime.Microseconds())/1000,
			float64(c.Parallel.MitigationTime.Microseconds())/1000,
			c.Speedup(), match)
	}
	return sb.String()
}
