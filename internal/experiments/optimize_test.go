package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunOptimize is the acceptance check behind -exp optimize: the pass
// must never raise dynamic persist traffic or the redundant-persist ratio,
// and must strictly lower the ratio wherever provenance found redundancy.
func TestRunOptimize(t *testing.T) {
	res, err := RunOptimize(OptimizeConfig{
		Rounds:     16,
		Ops:        200,
		FixtureDir: "../../testdata",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 fixtures + 5 systems)", len(res.Rows))
	}
	sawWin := false
	for _, row := range res.Rows {
		if row.PersistOpsAfter > row.PersistOpsBefore {
			t.Errorf("%s: persist ops rose %d -> %d", row.Program, row.PersistOpsBefore, row.PersistOpsAfter)
		}
		if row.PersistedWordsAfter > row.PersistedWordsBefore {
			t.Errorf("%s: persisted words rose %d -> %d", row.Program, row.PersistedWordsBefore, row.PersistedWordsAfter)
		}
		if row.RatioAfter > row.RatioBefore {
			t.Errorf("%s: redundant ratio rose %.4f -> %.4f", row.Program, row.RatioBefore, row.RatioAfter)
		}
		if row.RatioBefore > 0 && row.Static.Total() > 0 {
			if row.RatioAfter >= row.RatioBefore {
				t.Errorf("%s: pass rewrote the module but ratio did not drop (%.4f -> %.4f)",
					row.Program, row.RatioBefore, row.RatioAfter)
			}
			sawWin = true
		}
	}
	if !sawWin {
		t.Error("no program showed a redundant-ratio reduction")
	}

	// The JSON artifact must carry the schema and one entry per program.
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Optimize *struct {
			Programs []OptimizeRow `json:"programs"`
		} `json:"optimize"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != JSONSchema || doc.Optimize == nil || len(doc.Optimize.Programs) != len(res.Rows) {
		t.Fatalf("bad JSON document: %s", buf.Bytes())
	}
	if !strings.Contains(res.Text(), "native") {
		t.Fatal("text rendering missing program rows")
	}
}
