package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arthas/internal/fleet"
	"arthas/internal/workload"
)

// The fleet experiment: the paper's single-system toolchain scaled out to a
// sharded serving fleet (internal/fleet, docs/FLEET.md). Two measurements:
//
//   - Scaling: fault-free closed-loop throughput at increasing shard counts.
//     Shards are independent pools with independent locks, so throughput
//     should scale near-linearly until client parallelism is exhausted.
//   - Fault run: the same workload at the largest shard count with a hard
//     fault injected mid-run into one shard. The faulted shard escalates
//     (trap → restart → hard → online mitigation) while its siblings keep
//     serving; the report compares the run against the fault-free baseline
//     and tracks how much healthy-shard capacity survived.

// FleetConfig sizes the fleet experiment.
type FleetConfig struct {
	// ShardCounts are the scaling points (default 1, 2, 4).
	ShardCounts []int
	// Clients is the closed-loop client count (default 4).
	Clients int
	// OpsPerClient is each client's op count (default 400).
	OpsPerClient int
	// Keys is the workload keyspace (default 100).
	Keys int
	// Seed fixes the deterministic client streams (default 42).
	Seed uint64
	// Workers is per-shard speculative mitigation parallelism.
	Workers int
	// RestartLatency simulates per-shard restart cost, widening the
	// observable degraded-serving window (default 0: instant).
	RestartLatency time.Duration
	// ServiceLatency is the simulated PM-bound per-request service time
	// (fleet.Config.ServiceLatency); it is what makes shard-level
	// parallelism measurable on small hosts — the VM's microsecond CPU ops
	// serialize on one core regardless of shard count. Default 50µs.
	ServiceLatency time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4}
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 500
	}
	if c.Keys == 0 {
		c.Keys = 200
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ServiceLatency == 0 {
		c.ServiceLatency = 50 * time.Microsecond
	}
	return c
}

// FleetScalingPoint is one fault-free closed-loop run.
type FleetScalingPoint struct {
	Shards    int     `json:"shards"`
	Done      int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
	// RoutingDigest folds every client op's shard assignment, in stream
	// order — a pure function of (seed, clients, ops, shard count). Equal
	// digests across runs certify identical routing.
	RoutingDigest uint64 `json:"routing_digest"`
	// StateDigest is the fleet's checksum-validating logical-state digest
	// after the run; equal digests certify byte-equivalent end state.
	StateDigest int64 `json:"state_digest"`
}

// FleetFaultRun is the mid-run hard-fault measurement.
type FleetFaultRun struct {
	Shards       int   `json:"shards"`
	FaultShard   int   `json:"fault_shard"`
	FaultKey     int64 `json:"fault_key"`
	InjectedAtOp int64 `json:"injected_at_op"`
	Done         int64 `json:"ops"`
	Errors       int64 `json:"errors"`
	Unavailable  int64 `json:"unavailable"`
	Traps        int64 `json:"traps"`
	Mitigations  int64 `json:"mitigations"`
	Recovered    int64 `json:"recovered"`
	// Healed reports the faulted key serving again (post-mitigation read
	// succeeded) before the measurement window closed.
	Healed    bool    `json:"healed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
	// BaselineOpsPerSec is the fault-free run at the same shard count.
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	// HealthyShardRatio compares non-faulted shards' delivered throughput
	// (their completed ops over the run's wall clock) against the same
	// shards in the fault-free baseline: 1.0 means the fault cost the
	// siblings nothing.
	HealthyShardRatio float64 `json:"healthy_shard_ratio"`
	// IncidentJSONBytes sizes the faulted shard's published incident report
	// (provenance-enabled mitigation).
	IncidentJSONBytes int `json:"incident_json_bytes,omitempty"`
}

// FleetResults is the full fleet experiment output.
type FleetResults struct {
	Config  FleetConfig         `json:"-"`
	Scaling []FleetScalingPoint `json:"scaling"`
	Fault   *FleetFaultRun      `json:"fault"`
}

// JSONFleet is the machine-readable fleet section (schema arthas-bench/v1).
type JSONFleet struct {
	Clients      int                 `json:"clients"`
	OpsPerClient int                 `json:"ops_per_client"`
	Keys         int                 `json:"keys"`
	Seed         uint64              `json:"seed"`
	Scaling      []FleetScalingPoint `json:"scaling"`
	Fault        *FleetFaultRun      `json:"fault,omitempty"`
}

// JSON flattens the results for JSONReport.Fleet.
func (r *FleetResults) JSON() *JSONFleet {
	return &JSONFleet{
		Clients:      r.Config.Clients,
		OpsPerClient: r.Config.OpsPerClient,
		Keys:         r.Config.Keys,
		Seed:         r.Config.Seed,
		Scaling:      r.Scaling,
		Fault:        r.Fault,
	}
}

// WriteJSON writes a standalone fleet-only bench document (the CI artifact
// of the fleet smoke job).
func (r *FleetResults) WriteJSON(w io.Writer) error {
	doc := struct {
		Schema string     `json:"schema"`
		Fleet  *JSONFleet `json:"fleet"`
	}{Schema: JSONSchema, Fleet: r.JSON()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// fleetDriver builds the closed-loop driver all fleet runs share, so the
// scaling, baseline, and fault measurements execute identical client streams.
//
// Write values are a pure function of the key, not of the stream position:
// concurrent clients race on hot keys (YCSB-A is zipfian), and the state
// digest can only be scheduling-independent if every interleaving of the
// same op multiset converges to the same end state — key-derived values
// make concurrent upserts commute. Throughput and the persist path are
// unaffected; only the payload bytes are pinned.
func fleetDriver(cfg FleetConfig, f *fleet.Fleet) *workload.Driver {
	return &workload.Driver{
		Clients:      cfg.Clients,
		OpsPerClient: cfg.OpsPerClient,
		Shape:        workload.WorkloadA(0, cfg.Keys, cfg.Seed),
		ErrClass:     fleet.ErrClass,
		Do: func(_ int, op workload.Op) error {
			if op.Kind != workload.OpRead {
				op.Value = op.Key*2654435761 + 1
			}
			_, err := f.Do(op)
			return err
		},
	}
}

// routingDigest folds shard assignments of every client stream (FNV-1a).
func routingDigest(cfg FleetConfig, shards int) uint64 {
	d := fleetDriver(cfg, nil) // streams only; Do never called
	h := uint64(14695981039346656037)
	for c := 0; c < cfg.Clients; c++ {
		for _, op := range d.ClientStream(c) {
			h ^= uint64(fleet.RouteFor(op.Key, shards))
			h *= 1099511628211
		}
	}
	return h
}

// errCount pulls one class tally out of a driver report.
func errCount(rep *workload.DriverReport, class string) int64 {
	for _, ec := range rep.ErrCounts {
		if ec.Class == class {
			return ec.N
		}
	}
	return 0
}

// fleetFaultKey finds a key outside the workload keyspace routing to shard 0
// — the deterministic injection target.
func fleetFaultKey(shards int) int64 {
	for k := int64(1) << 40; ; k++ {
		if fleet.RouteFor(k, shards) == 0 {
			return k
		}
	}
}

// RunFleet executes the fleet experiment.
func RunFleet(cfg FleetConfig) (*FleetResults, error) {
	cfg = cfg.withDefaults()
	res := &FleetResults{Config: cfg}

	// Fault-free scaling sweep. The largest point doubles as the fault
	// run's baseline.
	baseline := map[int]*workload.DriverReport{}
	baselineStats := map[int][]fleet.ShardStats{}
	for _, n := range cfg.ShardCounts {
		// Provenance on, matching the fault run's fleet exactly: the scaling
		// points double as its fault-free baseline, so the two configurations
		// must differ only by the injected fault.
		f, err := fleet.New(fleet.Config{
			Shards: n, BaseName: "bench", Workers: cfg.Workers,
			RestartLatency: cfg.RestartLatency, ServiceLatency: cfg.ServiceLatency,
			Provenance: true,
		})
		if err != nil {
			return nil, err
		}
		rep := fleetDriver(cfg, f).Run()
		if rep.Errors != 0 {
			return nil, fmt.Errorf("fleet: fault-free run at %d shards had %d errors (%+v)",
				n, rep.Errors, rep.ErrCounts)
		}
		dig, err := f.StateDigest()
		if err != nil {
			return nil, err
		}
		baseline[n] = rep
		baselineStats[n] = f.Stats()
		res.Scaling = append(res.Scaling, FleetScalingPoint{
			Shards:        n,
			Done:          rep.Done,
			Errors:        rep.Errors,
			ElapsedMS:     rep.ElapsedMS,
			OpsPerSec:     rep.OpsPerSec,
			P50US:         rep.P50US,
			P99US:         rep.P99US,
			RoutingDigest: routingDigest(cfg, n),
			StateDigest:   dig,
		})
	}

	// Fault run at the largest shard count: inject a hard fault into shard 0
	// halfway through, watch it heal online while siblings serve.
	shards := cfg.ShardCounts[len(cfg.ShardCounts)-1]
	f, err := fleet.New(fleet.Config{
		Shards: shards, BaseName: "bench-fault", Workers: cfg.Workers,
		RestartLatency: cfg.RestartLatency, ServiceLatency: cfg.ServiceLatency,
		Provenance: true,
	})
	if err != nil {
		return nil, err
	}
	faultKey := fleetFaultKey(shards)
	if err := f.Put(faultKey, 31337); err != nil {
		return nil, err
	}

	d := fleetDriver(cfg, f)
	half := int64(cfg.Clients*cfg.OpsPerClient) / 2
	var injectedAt atomic.Int64
	var once sync.Once
	healed := make(chan bool, 1)
	d.Tick = func(done int) {
		if int64(done) < half {
			return
		}
		once.Do(func() {
			injectedAt.Store(int64(done))
			go func() {
				if _, err := f.InjectFault(faultKey, 5); err != nil {
					healed <- false
					return
				}
				// Probe the faulted key: strike one trips the transient
				// restart, strike two escalates to hard-fault mitigation;
				// a nil error means the shard serves it again.
				deadline := time.Now().Add(30 * time.Second)
				for time.Now().Before(deadline) {
					if _, err := f.Get(faultKey); err == nil {
						healed <- true
						return
					}
					time.Sleep(time.Millisecond)
				}
				healed <- false
			}()
		})
	}
	rep := d.Run()
	ok := false
	select {
	case ok = <-healed:
	case <-time.After(30 * time.Second):
	}

	stats := f.Stats()
	fr := &FleetFaultRun{
		Shards:            shards,
		FaultShard:        0,
		FaultKey:          faultKey,
		InjectedAtOp:      injectedAt.Load(),
		Done:              rep.Done,
		Errors:            rep.Errors,
		Unavailable:       errCount(rep, "unavailable"),
		Traps:             errCount(rep, "trap"),
		Healed:            ok,
		ElapsedMS:         rep.ElapsedMS,
		OpsPerSec:         rep.OpsPerSec,
		P50US:             rep.P50US,
		P99US:             rep.P99US,
		BaselineOpsPerSec: baseline[shards].OpsPerSec,
	}
	for _, st := range stats {
		fr.Mitigations += st.Mitigations
		fr.Recovered += st.Recovered
	}
	// Healthy-shard capacity: ops delivered by non-faulted shards per wall
	// second, fault run vs fault-free baseline over the same streams.
	var healthyOps, healthyBase int64
	for i, st := range stats {
		if i == fr.FaultShard {
			continue
		}
		healthyOps += st.Ops
	}
	for i, st := range baselineStats[shards] {
		if i == fr.FaultShard {
			continue
		}
		healthyBase += st.Ops
	}
	if healthyBase > 0 && baseline[shards].Elapsed > 0 && rep.Elapsed > 0 {
		fr.HealthyShardRatio = (float64(healthyOps) / rep.Elapsed.Seconds()) /
			(float64(healthyBase) / baseline[shards].Elapsed.Seconds())
	}
	if inc := f.Incident(fr.FaultShard); inc != nil {
		fr.IncidentJSONBytes = len(inc.JSON())
	}
	res.Fault = fr
	return res, nil
}

// Text renders the experiment for the terminal.
func (r *FleetResults) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==== Sharded serving fleet (docs/FLEET.md) ====\n\n")
	fmt.Fprintf(&sb, "closed loop: %d clients x %d ops, %d keys, seed %d, %v simulated service time\n\n",
		r.Config.Clients, r.Config.OpsPerClient, r.Config.Keys, r.Config.Seed, r.Config.ServiceLatency)
	fmt.Fprintf(&sb, "%-7s %10s %12s %10s %10s %18s\n",
		"shards", "ops", "ops/sec", "p50 us", "p99 us", "routing digest")
	var base float64
	for _, p := range r.Scaling {
		if base == 0 {
			base = p.OpsPerSec
		}
		speedup := ""
		if base > 0 {
			speedup = fmt.Sprintf("  (%.2fx)", p.OpsPerSec/base)
		}
		fmt.Fprintf(&sb, "%-7d %10d %12.0f %10.1f %10.1f %18x%s\n",
			p.Shards, p.Done, p.OpsPerSec, p.P50US, p.P99US, p.RoutingDigest, speedup)
	}
	if f := r.Fault; f != nil {
		fmt.Fprintf(&sb, "\nmid-run hard fault (shard %d of %d, key %d, at op %d):\n",
			f.FaultShard, f.Shards, f.FaultKey, f.InjectedAtOp)
		fmt.Fprintf(&sb, "  healed online:        %v (mitigations %d, recovered %d)\n",
			f.Healed, f.Mitigations, f.Recovered)
		fmt.Fprintf(&sb, "  fleet ops/sec:        %.0f (fault-free baseline %.0f)\n",
			f.OpsPerSec, f.BaselineOpsPerSec)
		fmt.Fprintf(&sb, "  healthy-shard ratio:  %.2f (non-faulted shards vs baseline)\n",
			f.HealthyShardRatio)
		fmt.Fprintf(&sb, "  refusals/traps:       %d unavailable, %d trapped of %d ops\n",
			f.Unavailable, f.Traps, f.Done)
		if f.IncidentJSONBytes > 0 {
			fmt.Fprintf(&sb, "  incident report:      %d bytes (arthas-incident/v1)\n", f.IncidentJSONBytes)
		}
	}
	return sb.String()
}
