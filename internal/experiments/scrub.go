package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/scrub"
)

// Media-resilience cost experiments (docs/MEDIA_FAULTS.md): what the
// checksummed pool costs on the persist hot path, how fast a full seal scan
// runs, and what one scrub-and-heal cycle takes. These are this repo's
// additions over the paper's evaluation — the paper's Table 7 shows
// checksums detecting corruption; this measures making that detection an
// always-on property of the pool.

// ScrubConfig sizes the measurement.
type ScrubConfig struct {
	// PoolWords sizes the measured pool (default 1<<16).
	PoolWords int
	// PersistOps is the store+persist operations per maintenance variant
	// (default 30_000).
	PersistOps int
	// PersistSpan is the words per persist (default 8 — a cache line).
	PersistSpan int
	// ScanPasses is the full VerifyMedia sweeps timed (default 50).
	ScanPasses int
	// FaultBlocks is the media blocks corrupted per repair cycle (default 8).
	FaultBlocks int
	// Cycles is the inject-scrub-heal cycles measured (default 10).
	Cycles int
	Seed   int64
}

func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.PoolWords == 0 {
		c.PoolWords = 1 << 16
	}
	if c.PersistOps == 0 {
		c.PersistOps = 30_000
	}
	if c.PersistSpan == 0 {
		c.PersistSpan = 8
	}
	if c.ScanPasses == 0 {
		c.ScanPasses = 50
	}
	if c.FaultBlocks == 0 {
		c.FaultBlocks = 8
	}
	if c.Cycles == 0 {
		c.Cycles = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ScrubResults is the measured cost of media resilience.
type ScrubResults struct {
	// Persist hot path: identical store+persist streams with incremental
	// checksum maintenance off (baseline) and on.
	PersistOps    int
	PersistSpan   int
	BaselineMS    float64
	ChecksummedMS float64
	// OverheadPct is the relative persist-path cost of maintaining seals
	// ((checksummed/baseline - 1) × 100; the target is < 5%).
	OverheadPct float64

	// Full-pool seal scan (VerifyMedia: recompute every block checksum).
	ScanPasses     int
	ScanWords      int
	ScanWordsPerMS float64

	// Scrub-and-heal cycle: FaultBlocks bit flips injected, then
	// scrub.Repair rolls the poisoned words forward from the checkpoint log.
	Cycles        int
	FaultBlocks   int
	RepairMeanMS  float64
	RepairedWords int
	AllHealed     bool
}

// persistLoop runs the hot-path stream: cycle over the buffer storing fresh
// values and persisting PersistSpan-word spans.
func persistLoop(p *pmem.Pool, buf uint64, bufWords int, cfg ScrubConfig) error {
	span := cfg.PersistSpan
	spans := bufWords / span
	for op := 0; op < cfg.PersistOps; op++ {
		addr := buf + uint64((op%spans)*span)
		for w := 0; w < span; w++ {
			p.Store(addr+uint64(w), uint64(op)<<8|uint64(w))
		}
		if err := p.Persist(addr, span); err != nil {
			return err
		}
	}
	return nil
}

// RunScrub measures the three media-resilience costs.
func RunScrub(cfg ScrubConfig) (*ScrubResults, error) {
	cfg = cfg.withDefaults()
	res := &ScrubResults{
		PersistOps:  cfg.PersistOps,
		PersistSpan: cfg.PersistSpan,
		ScanPasses:  cfg.ScanPasses,
		Cycles:      cfg.Cycles,
		FaultBlocks: cfg.FaultBlocks,
		AllHealed:   true,
	}
	bufWords := 64 * pmem.MediaBlockWords
	if bufWords > cfg.PoolWords/2 {
		bufWords = cfg.PoolWords / 2
	}

	// Persist-path overhead: same stream, maintenance off vs on, each on a
	// fresh pool so allocator state is identical.
	for _, maintain := range []bool{false, true} {
		p := pmem.New(cfg.PoolWords)
		buf, err := p.Alloc(bufWords)
		if err != nil {
			return nil, err
		}
		p.SetMediaMaintenance(maintain)
		start := time.Now()
		if err := persistLoop(p, buf, bufWords, cfg); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if maintain {
			res.ChecksummedMS = ms
		} else {
			res.BaselineMS = ms
		}
	}
	if res.BaselineMS > 0 {
		res.OverheadPct = (res.ChecksummedMS/res.BaselineMS - 1) * 100
	}

	// Scan throughput: full seal sweeps over a sealed pool with live data.
	p := pmem.New(cfg.PoolWords)
	buf, err := p.Alloc(bufWords)
	if err != nil {
		return nil, err
	}
	if err := persistLoop(p, buf, bufWords, cfg); err != nil {
		return nil, err
	}
	res.ScanWords = p.Words()
	start := time.Now()
	for i := 0; i < cfg.ScanPasses; i++ {
		if merr := p.VerifyMedia(); merr != nil {
			return nil, fmt.Errorf("scrub bench: clean pool failed scan: %v", merr)
		}
	}
	scanMS := float64(time.Since(start).Microseconds()) / 1000
	if scanMS > 0 {
		res.ScanWordsPerMS = float64(res.ScanWords*cfg.ScanPasses) / scanMS
	}

	// Repair cycle: a checkpointed pool, FaultBlocks bit flips per cycle,
	// healed from the log.
	p = pmem.New(cfg.PoolWords)
	log := checkpoint.NewLog(3)
	p.SetHooks(log.Hooks())
	buf, err = p.Alloc(bufWords)
	if err != nil {
		return nil, err
	}
	if err := persistLoop(p, buf, bufWords, cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	blocks := bufWords / pmem.MediaBlockWords
	var repairTotal time.Duration
	for c := 0; c < cfg.Cycles; c++ {
		hit := rng.Perm(blocks)[:cfg.FaultBlocks]
		for _, b := range hit {
			addr := buf + uint64(b*pmem.MediaBlockWords+rng.Intn(pmem.MediaBlockWords))
			if _, err := p.InjectMediaFault(pmem.MediaFault{
				Kind: pmem.MediaBitFlip, Addr: addr, Bits: 1 << uint(rng.Intn(64)),
			}); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		rep := scrub.Repair(p, log, nil)
		repairTotal += time.Since(start)
		res.RepairedWords += rep.RepairedWords
		if !rep.Healthy() || rep.Healed != rep.CorruptBlocks {
			res.AllHealed = false
		}
	}
	res.RepairMeanMS = float64(repairTotal.Microseconds()) / 1000 / float64(cfg.Cycles)
	return res, nil
}

// Text renders the results (arthas-bench -exp scrub).
func (r *ScrubResults) Text() string {
	var sb strings.Builder
	sb.WriteString("Media resilience cost (docs/MEDIA_FAULTS.md)\n")
	fmt.Fprintf(&sb, "  persist hot path (%d ops x %d words):\n", r.PersistOps, r.PersistSpan)
	fmt.Fprintf(&sb, "    no checksums:   %8.2f ms\n", r.BaselineMS)
	fmt.Fprintf(&sb, "    checksummed:    %8.2f ms  (%+.2f%% overhead)\n", r.ChecksummedMS, r.OverheadPct)
	fmt.Fprintf(&sb, "  seal scan: %d passes over %d words, %.0f words/ms\n",
		r.ScanPasses, r.ScanWords, r.ScanWordsPerMS)
	fmt.Fprintf(&sb, "  scrub-and-heal: %d cycles x %d corrupt blocks, mean %.3f ms/cycle, %d words repaired",
		r.Cycles, r.FaultBlocks, r.RepairMeanMS, r.RepairedWords)
	if r.AllHealed {
		sb.WriteString(", all healed\n")
	} else {
		sb.WriteString(", NOT all healed\n")
	}
	return sb.String()
}
