package experiments

import (
	"fmt"
	"strings"
	"time"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/provenance"
)

// Provenance-overhead experiment: what the write-lineage index costs on the
// persist hot path (hooks wrapped around the checkpoint log's), against the
// same stream with lineage disabled. This is the baseline the future
// flush-elimination pass is judged against: its candidate metric (the
// redundant-persist ratio) is reported here from day one.

// ProvenanceConfig sizes the measurement.
type ProvenanceConfig struct {
	// PoolWords sizes the measured pool (default 1<<16).
	PoolWords int
	// PersistOps is the store+persist operations per variant (default
	// 30_000).
	PersistOps int
	// PersistSpan is the words per persist (default 8 — a cache line).
	PersistSpan int
	// RedundantEvery makes every Nth persist repeat the previous span
	// without new stores (default 4), so the redundant-persist accounting
	// has signal to report.
	RedundantEvery int
}

func (c ProvenanceConfig) withDefaults() ProvenanceConfig {
	if c.PoolWords == 0 {
		c.PoolWords = 1 << 16
	}
	if c.PersistOps == 0 {
		c.PersistOps = 30_000
	}
	if c.PersistSpan == 0 {
		c.PersistSpan = 8
	}
	if c.RedundantEvery == 0 {
		c.RedundantEvery = 4
	}
	return c
}

// ProvenanceResults is the measured cost plus the amplification digest the
// enabled index produced.
type ProvenanceResults struct {
	PersistOps  int
	PersistSpan int
	// Persist hot path: checkpoint log alone vs log + lineage index.
	BaselineMS float64
	LineageMS  float64
	// OverheadPct is the relative cost of stamping lineage records
	// ((lineage/baseline - 1) × 100).
	OverheadPct float64

	// Amplification digest from the enabled run (the Bentō baseline).
	LineageRecords      uint64
	DistinctWords       int
	MeanPersistsPerWord float64
	RedundantPersists   uint64
	RedundantRatio      float64
	HotSiteGUID         int
	HotSiteWords        uint64
}

// provenancePersistLoop runs the hot-path stream: fresh stores + persist,
// with every RedundantEvery-th persist re-persisting the previous span
// unmodified (a redundant flush).
func provenancePersistLoop(p *pmem.Pool, idx *provenance.Index, buf uint64, bufWords int, cfg ProvenanceConfig) error {
	span := cfg.PersistSpan
	spans := bufWords / span
	for op := 0; op < cfg.PersistOps; op++ {
		addr := buf + uint64((op%spans)*span)
		if op%cfg.RedundantEvery == cfg.RedundantEvery-1 && op > 0 {
			// Redundant flush: previous span, no new stores.
			prev := buf + uint64(((op-1)%spans)*span)
			if err := p.Persist(prev, span); err != nil {
				return err
			}
			continue
		}
		for w := 0; w < span; w++ {
			if idx != nil {
				// The VM's WriteSink analogue: attribute the store to a
				// synthetic site so the per-site table has entries.
				idx.NoteWrite(100+(op%7), addr+uint64(w))
			}
			p.Store(addr+uint64(w), uint64(op)<<8|uint64(w))
		}
		if err := p.Persist(addr, span); err != nil {
			return err
		}
	}
	return nil
}

// RunProvenance measures the lineage index's persist-path overhead.
func RunProvenance(cfg ProvenanceConfig) (*ProvenanceResults, error) {
	cfg = cfg.withDefaults()
	res := &ProvenanceResults{PersistOps: cfg.PersistOps, PersistSpan: cfg.PersistSpan}
	bufWords := 64 * pmem.MediaBlockWords
	if bufWords > cfg.PoolWords/2 {
		bufWords = cfg.PoolWords / 2
	}

	for _, lineage := range []bool{false, true} {
		p := pmem.New(cfg.PoolWords)
		log := checkpoint.NewLog(3)
		var idx *provenance.Index
		if lineage {
			idx = provenance.New()
			p.SetHooks(idx.WrapHooks(log.Hooks(), log))
		} else {
			p.SetHooks(log.Hooks())
		}
		buf, err := p.Alloc(bufWords)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := provenancePersistLoop(p, idx, buf, bufWords, cfg); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if lineage {
			res.LineageMS = ms
			st := idx.Stats()
			res.LineageRecords = st.Records
			res.DistinctWords = st.DistinctWords
			res.MeanPersistsPerWord = st.MeanPersistsPerWord
			res.RedundantPersists = st.RedundantPersists
			res.RedundantRatio = st.RedundantRatio
			if len(st.Sites) > 0 {
				res.HotSiteGUID = st.Sites[0].GUID
				res.HotSiteWords = st.Sites[0].PersistedWords
			}
		} else {
			res.BaselineMS = ms
		}
	}
	if res.BaselineMS > 0 {
		res.OverheadPct = (res.LineageMS/res.BaselineMS - 1) * 100
	}
	return res, nil
}

// Text renders the results (arthas-bench -exp provenance).
func (r *ProvenanceResults) Text() string {
	var sb strings.Builder
	sb.WriteString("Write-lineage (provenance) cost on the persist hot path\n")
	fmt.Fprintf(&sb, "  persist stream (%d ops x %d words):\n", r.PersistOps, r.PersistSpan)
	fmt.Fprintf(&sb, "    checkpoint only:   %8.2f ms\n", r.BaselineMS)
	fmt.Fprintf(&sb, "    + lineage index:   %8.2f ms  (%+.2f%% overhead)\n", r.LineageMS, r.OverheadPct)
	fmt.Fprintf(&sb, "  amplification digest: %d records over %d distinct words, mean %.2f persists/word\n",
		r.LineageRecords, r.DistinctWords, r.MeanPersistsPerWord)
	fmt.Fprintf(&sb, "  redundant persists: %d (%.1f%% of word-persists — the flush-elimination headroom)\n",
		r.RedundantPersists, r.RedundantRatio*100)
	fmt.Fprintf(&sb, "  hottest site: guid=%d with %d persisted words\n", r.HotSiteGUID, r.HotSiteWords)
	return sb.String()
}
