package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// smallFleetConfig keeps the experiment fast enough for the unit suite: the
// near-zero service latency disables the scaling-demonstration sleeps (the
// default 50µs is for the real bench), and the tiny op counts still cross
// the mid-run injection point.
func smallFleetConfig() FleetConfig {
	return FleetConfig{
		ShardCounts:    []int{1, 2},
		Clients:        2,
		OpsPerClient:   80,
		Keys:           40,
		Seed:           7,
		ServiceLatency: time.Nanosecond,
	}
}

func TestRunFleetSmall(t *testing.T) {
	res, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 2 {
		t.Fatalf("scaling points: %d", len(res.Scaling))
	}
	for _, p := range res.Scaling {
		if p.Done != 160 || p.Errors != 0 {
			t.Fatalf("point %+v", p)
		}
		if p.P99US < p.P50US {
			t.Fatalf("p99 < p50 in %+v", p)
		}
	}
	f := res.Fault
	if f == nil {
		t.Fatal("no fault run")
	}
	if !f.Healed {
		t.Fatalf("faulted shard did not heal: %+v", f)
	}
	if f.Mitigations < 1 || f.Recovered < 1 {
		t.Fatalf("no mitigation recorded: %+v", f)
	}
	if f.IncidentJSONBytes == 0 {
		t.Fatal("no incident report from provenance-enabled fault run")
	}
	if f.InjectedAtOp < int64(f.Done)/2 {
		t.Fatalf("injected too early: op %d of %d", f.InjectedAtOp, f.Done)
	}
	text := res.Text()
	for _, want := range []string{"Sharded serving fleet", "healed online", "healthy-shard ratio"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
}

// TestRunFleetDeterministic is the bench determinism contract: same seed and
// shard counts ⇒ identical routing digests and identical end-state digests.
func TestRunFleetDeterministic(t *testing.T) {
	a, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scaling {
		if a.Scaling[i].RoutingDigest != b.Scaling[i].RoutingDigest {
			t.Fatalf("routing digest differs at %d shards", a.Scaling[i].Shards)
		}
		if a.Scaling[i].StateDigest != b.Scaling[i].StateDigest {
			t.Fatalf("state digest differs at %d shards", a.Scaling[i].Shards)
		}
	}
	// Different shard counts route differently (the digest covers the
	// assignment, not just the stream).
	if a.Scaling[0].RoutingDigest == a.Scaling[1].RoutingDigest {
		t.Fatal("routing digest ignores shard count")
	}
}

func TestFleetJSONDoc(t *testing.T) {
	res, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string     `json:"schema"`
		Fleet  *JSONFleet `json:"fleet"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != JSONSchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if doc.Fleet == nil || len(doc.Fleet.Scaling) != 2 || doc.Fleet.Fault == nil {
		t.Fatalf("fleet doc: %+v", doc.Fleet)
	}
	if !doc.Fleet.Fault.Healed {
		t.Fatal("fault run not healed in JSON doc")
	}
}
