package experiments

import (
	"fmt"
	"strings"
	"time"

	"arthas/internal/analysis"
	"arthas/internal/ir"
	"arthas/internal/systems"
)

// Static pipeline timings (paper Table 9): analysis, instrumentation, and
// slicing time per target system. The paper measures seconds on hundreds of
// thousands of LLVM IR instructions; our PML systems are smaller, so the
// absolute values are milliseconds — the shape to preserve is that analysis
// dominates, instrumentation is cheap, and slicing (the only component on
// the mitigation critical path, thanks to the reactor server) is fastest.

// StaticTiming is one system's Table 9 row.
type StaticTiming struct {
	System       string
	Functions    int
	Instructions int
	PMInstrs     int
	PDGEdges     int
	Analysis     time.Duration // pointer analysis + PDG
	Instrument   time.Duration // PM closure + GUID assignment
	Slicing      time.Duration // one representative backward slice
}

// MeasureStatic runs the analyzer over all five systems.
func MeasureStatic() ([]StaticTiming, error) {
	var out []StaticTiming
	for _, sys := range []*systems.System{
		systems.Memcached(), systems.Redis(), systems.Pelikan(),
		systems.PMEMKV(), systems.CCEH(),
	} {
		mod, err := ir.CompileSource(sys.Name, sys.Source)
		if err != nil {
			return nil, err
		}
		res := analysis.Analyze(mod)
		st := res.Stats()
		t := StaticTiming{
			System:       sys.Name,
			Functions:    st.Functions,
			Instructions: st.Instructions,
			PMInstrs:     st.PMInstrs,
			PDGEdges:     st.PDGEdges,
			Analysis:     res.PointsToTime + res.PDGTime,
			Instrument:   res.InstrTime,
		}
		// Representative slice: the last PM instruction of the module.
		var fault *ir.Instr
		for _, f := range mod.Funcs {
			f.Instrs(func(in *ir.Instr) {
				if in.GUID != 0 {
					fault = in
				}
			})
		}
		if fault != nil {
			start := time.Now()
			res.PDG.BackwardSlice(fault)
			t.Slicing = time.Since(start)
		}
		out = append(out, t)
	}
	return out, nil
}

// Table9 renders the timings.
func Table9(ts []StaticTiming) string {
	var sb strings.Builder
	sb.WriteString("Table 9. Time for Arthas to analyze and instrument the systems\n")
	fmt.Fprintf(&sb, "  %-10s %6s %7s %5s %7s %12s %12s %12s\n",
		"System", "Funcs", "Instrs", "PM", "Edges", "Analysis", "Instrument", "Slicing")
	for _, t := range ts {
		fmt.Fprintf(&sb, "  %-10s %6d %7d %5d %7d %12v %12v %12v\n",
			t.System, t.Functions, t.Instructions, t.PMInstrs, t.PDGEdges,
			t.Analysis.Round(time.Microsecond), t.Instrument.Round(time.Microsecond),
			t.Slicing.Round(time.Microsecond))
	}
	return sb.String()
}
