package experiments

import (
	"fmt"
	"strings"

	"arthas/internal/faults"
	"arthas/internal/reactor"
)

// Batch-vs-one-by-one reversion (paper §6.5, Figure 10 and Table 6): key
// Memcached/Redis bugs under a reduced workload (the paper reduces the
// workload "to avoid influence from having slice nodes that alias to
// multiple sequence numbers"), reverted one sequence number at a time vs
// five per re-execution.

// BatchCell is one (fault, strategy) measurement.
type BatchCell struct {
	ID        string
	Batch     int
	Recovered bool
	Attempts  int
	Reverted  int
	TimeMS    float64
}

// BatchResults pairs the two strategies per fault.
type BatchResults struct {
	OneByOne []BatchCell
	Batch5   []BatchCell
}

// batchCases are the paper's "several key bugs from Memcached and Redis".
func batchCases() []faults.Builder {
	return []faults.Builder{
		faults.F1(), faults.F2(), faults.F4(), faults.F6(), faults.F7(),
	}
}

// RunBatchComparison measures both strategies over the reduced workload.
func RunBatchComparison(base faults.RunConfig) (*BatchResults, error) {
	if base.WorkloadOps == 0 {
		base.WorkloadOps = 150 // reduced workload
	}
	out := &BatchResults{}
	for _, b := range batchCases() {
		for _, batch := range []int{1, 5} {
			cfg := base
			cfg.Reactor = reactor.DefaultConfig()
			cfg.Reactor.Batch = batch
			o, err := faults.RunArthas(b, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s batch=%d: %w", b.ID, batch, err)
			}
			cell := BatchCell{
				ID: b.ID, Batch: batch, Recovered: o.Recovered,
				Attempts: o.Attempts, Reverted: o.RevertedItems,
				TimeMS: float64(o.MitigationTime.Microseconds()) / 1000,
			}
			if batch == 1 {
				out.OneByOne = append(out.OneByOne, cell)
			} else {
				out.Batch5 = append(out.Batch5, cell)
			}
		}
	}
	return out, nil
}

// Fig10 renders mitigation time per strategy (paper Figure 10).
func (r *BatchResults) Fig10() string {
	var sb strings.Builder
	sb.WriteString("Figure 10. Mitigation time: batch vs one-by-one reversion (ms)\n")
	fmt.Fprintf(&sb, "  %-5s %10s %10s %14s %14s\n", "Fault", "Batch(5)", "Single", "Batch attempts", "Single attempts")
	for i := range r.OneByOne {
		one, five := r.OneByOne[i], r.Batch5[i]
		fmt.Fprintf(&sb, "  %-5s %10.2f %10.2f %14d %14d\n",
			one.ID, five.TimeMS, one.TimeMS, five.Attempts, one.Attempts)
	}
	return sb.String()
}

// Table6 renders discarded items per strategy (paper Table 6).
func (r *BatchResults) Table6() string {
	var sb strings.Builder
	sb.WriteString("Table 6. Discarded items: batch vs one-by-one reversion\n")
	fmt.Fprintf(&sb, "  %-5s %10s %12s\n", "Fault", "Batch(5)", "One-by-one")
	for i := range r.OneByOne {
		one, five := r.OneByOne[i], r.Batch5[i]
		fmt.Fprintf(&sb, "  %-5s %10d %12d\n", one.ID, five.Reverted, one.Reverted)
	}
	return sb.String()
}
