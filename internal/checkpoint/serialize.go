package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorruptLog marks a checkpoint-log image that is truncated or
// structurally undecodable. All ReadLog failures wrap it so callers can
// classify with errors.Is instead of string matching.
var ErrCorruptLog = errors.New("checkpoint: corrupt log image")

// Checkpoint log serialization. The paper's checkpoint log lives in
// persistent memory (§4.2 "initializes a checkpoint log in persistent
// memory"), so it survives process restarts; reversion history recorded
// before a crash remains usable after. Serializing the log alongside the
// pool file reproduces that property.

const (
	logMagic   uint64 = 0x41525448_434B5054 // "ARTH CKPT"
	logVersion uint64 = 1
)

type u64Writer struct {
	w   io.Writer
	n   int64
	err error
}

func (u *u64Writer) put(v uint64) {
	if u.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	n, err := u.w.Write(buf[:])
	u.n += int64(n)
	u.err = err
}

type u64Reader struct {
	r   io.Reader
	err error
}

func (u *u64Reader) get() uint64 {
	if u.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(u.r, buf[:]); err != nil {
		u.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// WriteTo serializes the log. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	u := &u64Writer{w: w}
	u.put(logMagic)
	u.put(logVersion)
	u.put(uint64(l.MaxVersions))
	u.put(l.seq)
	u.put(l.txSeq)
	u.put(l.totalVersions)

	// Entries in creation order; OldEntry references encode as the order
	// index of the target (+1; 0 = none).
	orderIdx := map[*Entry]uint64{}
	for i, k := range l.order {
		orderIdx[l.entries[k]] = uint64(i + 1)
	}
	u.put(uint64(len(l.order)))
	for _, k := range l.order {
		e := l.entries[k]
		u.put(e.Addr)
		u.put(uint64(e.Words))
		u.put(uint64(int64(e.live))) // two's complement for -1
		u.put(b2u(e.dead))
		u.put(b2u(e.resynced))
		u.put(orderIdx[e.OldEntry]) // 0 when nil
		u.put(uint64(len(e.Versions)))
		for _, v := range e.Versions {
			u.put(v.Seq)
			u.put(v.Tx)
			u.put(uint64(len(v.Data)))
			for _, word := range v.Data {
				u.put(word)
			}
		}
	}

	u.put(uint64(len(l.allocOrder)))
	for _, a := range l.allocOrder {
		rec := l.allocs[a]
		u.put(rec.Addr)
		u.put(uint64(rec.Words))
		u.put(rec.Seq)
		u.put(b2u(rec.Freed))
		u.put(b2u(rec.Realloc))
	}
	return u.n, u.err
}

// ReadLog deserializes a log written by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	u := &u64Reader{r: r}
	if m := u.get(); u.err != nil || m != logMagic {
		return nil, fmt.Errorf("%w: not a log image (err=%v)", ErrCorruptLog, u.err)
	}
	if v := u.get(); v != logVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptLog, v, logVersion)
	}
	l := NewLog(int(u.get()))
	l.seq = u.get()
	l.txSeq = u.get()
	l.totalVersions = u.get()

	nEntries := u.get()
	if u.err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptLog, u.err)
	}
	if nEntries > 1<<28 {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrCorruptLog, nEntries)
	}
	oldRefs := make([]uint64, nEntries)
	ordered := make([]*Entry, 0, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		e := &Entry{
			Addr:  u.get(),
			Words: int(u.get()),
		}
		e.live = int(int64(u.get()))
		e.dead = u.get() != 0
		e.resynced = u.get() != 0
		oldRefs[i] = u.get()
		nv := u.get()
		if u.err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d: %v", ErrCorruptLog, i, u.err)
		}
		if e.Words <= 0 || e.Words > 1<<24 {
			return nil, fmt.Errorf("%w: entry %d has implausible size %d", ErrCorruptLog, i, e.Words)
		}
		if nv > 1<<20 {
			return nil, fmt.Errorf("%w: implausible version count %d", ErrCorruptLog, nv)
		}
		for j := uint64(0); j < nv; j++ {
			v := Version{Seq: u.get(), Tx: u.get()}
			nd := u.get()
			if u.err != nil {
				return nil, fmt.Errorf("%w: truncated entry %d version %d: %v", ErrCorruptLog, i, j, u.err)
			}
			if nd > 1<<24 {
				return nil, fmt.Errorf("%w: implausible data length %d", ErrCorruptLog, nd)
			}
			v.Data = make([]uint64, nd)
			for w := range v.Data {
				v.Data[w] = u.get()
			}
			e.Versions = append(e.Versions, v)
			l.bySeq[v.Seq] = e
		}
		key := entryKey{e.Addr, e.Words}
		l.entries[key] = e
		l.order = append(l.order, key)
		ordered = append(ordered, e)
	}
	for i, ref := range oldRefs {
		if ref != 0 && int(ref-1) < len(ordered) {
			ordered[i].OldEntry = ordered[ref-1]
		}
	}

	nAllocs := u.get()
	if u.err != nil {
		return nil, fmt.Errorf("%w: truncated alloc section: %v", ErrCorruptLog, u.err)
	}
	if nAllocs > 1<<28 {
		return nil, fmt.Errorf("%w: implausible alloc count %d", ErrCorruptLog, nAllocs)
	}
	for i := uint64(0); i < nAllocs; i++ {
		rec := &AllocRecord{
			Addr:  u.get(),
			Words: int(u.get()),
			Seq:   u.get(),
		}
		rec.Freed = u.get() != 0
		rec.Realloc = u.get() != 0
		if u.err == nil && (rec.Words <= 0 || rec.Words > 1<<24) {
			return nil, fmt.Errorf("%w: alloc record %d has implausible size %d", ErrCorruptLog, i, rec.Words)
		}
		l.allocs[rec.Addr] = rec
		l.allocOrder = append(l.allocOrder, rec.Addr)
	}
	if u.err != nil {
		return nil, fmt.Errorf("%w: truncated alloc section: %v", ErrCorruptLog, u.err)
	}
	return l, nil
}
