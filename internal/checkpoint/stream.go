package checkpoint

import (
	"encoding/binary"
	"fmt"
)

// Stream shipping codec: the primary→replica replication wire format
// (internal/repl, docs/REPLICATION.md). A stream is a flat sequence of
// records, each one durability event observed through pmem.Hooks on the
// primary, in hook order. The payload of a persist record is literally the
// checkpoint log's entry/version material — (addr, data words, the
// primary's log sequence after the version was appended) — so replaying a
// stream into a standby pool+log reproduces both the durable image and the
// checkpoint log the reactor needs for mitigation after a promotion.
//
// Layout per record, little-endian u64s:
//
//	[0] kind     (StreamKind, 1-based; 0 is invalid so torn zero bytes
//	             never decode as a record)
//	[1] seq      stream sequence, 1-based, strictly increasing
//	[2] addr     first affected word (persist/alloc/zero/free), else 0
//	[3] words    affected word count, else 0
//	[4] ckptSeq  primary checkpoint-log Seq() after the event (persist
//	             kinds; 0 otherwise) — the replay divergence check
//	[5] ndata    payload word count (persist kinds; 0 otherwise)
//	[6..]        ndata payload words
//
// A stream cut mid-record — the torn-tail case a crashed primary or a
// dropped connection produces — decodes to the complete prefix plus a
// *StreamTruncatedError carrying the last fully decoded sequence, wrapped
// in ErrCorruptLog like every other checkpoint parse failure.

// StreamKind tags one replicated durability event.
type StreamKind uint64

// Stream record kinds. Values are part of the wire format.
const (
	// StreamPersist carries one persisted range and its post-append
	// checkpoint-log sequence (Persist, or one range of a PersistTx).
	StreamPersist StreamKind = 1 + iota
	// StreamTxBegin/StreamTxCommit bracket the StreamPersist records of a
	// transactional commit, exactly as OnTxBegin/OnTxCommit bracket
	// OnPersist, so the replica's log groups them into one revert unit.
	StreamTxBegin
	StreamTxCommit
	// StreamAlloc replays an allocation; the replica re-executes it and
	// checks the returned address (the allocator is deterministic).
	StreamAlloc
	// StreamZero replays Zalloc's zeroing of a fresh payload.
	StreamZero
	// StreamFree replays a deallocation.
	StreamFree
)

var streamKindNames = [...]string{
	StreamPersist: "persist", StreamTxBegin: "txbegin", StreamTxCommit: "txcommit",
	StreamAlloc: "alloc", StreamZero: "zero", StreamFree: "free",
}

func (k StreamKind) String() string {
	if int(k) < len(streamKindNames) && k > 0 {
		return streamKindNames[k]
	}
	return fmt.Sprintf("stream-kind(%d)", uint64(k))
}

// streamHdrWords is the fixed per-record header size, in u64 words.
const streamHdrWords = 6

// maxStreamData bounds a record's payload word count to the same
// plausibility ceiling serialize.go uses for version data.
const maxStreamData = 1 << 24

// StreamOp is one decoded (or to-be-encoded) stream record.
type StreamOp struct {
	Seq     uint64
	Kind    StreamKind
	Addr    uint64
	Words   uint64
	CkptSeq uint64
	Data    []uint64
}

func (op StreamOp) String() string {
	return fmt.Sprintf("#%d %s@%#x+%d ckpt=%d", op.Seq, op.Kind, op.Addr, op.Words, op.CkptSeq)
}

// EncodedLen returns the record's encoded size in bytes.
func (op StreamOp) EncodedLen() int { return 8 * (streamHdrWords + len(op.Data)) }

// AppendStreamOp appends op's encoding to b and returns the extended slice.
func AppendStreamOp(b []byte, op StreamOp) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(op.Kind))
	b = binary.LittleEndian.AppendUint64(b, op.Seq)
	b = binary.LittleEndian.AppendUint64(b, op.Addr)
	b = binary.LittleEndian.AppendUint64(b, op.Words)
	b = binary.LittleEndian.AppendUint64(b, op.CkptSeq)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(op.Data)))
	for _, w := range op.Data {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// EncodeStream encodes ops back-to-back.
func EncodeStream(ops []StreamOp) []byte {
	n := 0
	for _, op := range ops {
		n += op.EncodedLen()
	}
	b := make([]byte, 0, n)
	for _, op := range ops {
		b = AppendStreamOp(b, op)
	}
	return b
}

// StreamTruncatedError reports a stream batch cut mid-record: everything
// through LastGoodSeq decoded cleanly; the bytes from Offset on are a
// partial record. It unwraps to ErrCorruptLog.
type StreamTruncatedError struct {
	// LastGoodSeq is the sequence of the last fully decoded record
	// (0 when the batch was cut inside its first record).
	LastGoodSeq uint64
	// Offset is the byte offset of the truncated record's start.
	Offset int
}

func (e *StreamTruncatedError) Error() string {
	return fmt.Sprintf("%v: stream truncated mid-record at byte %d (last good seq %d)",
		ErrCorruptLog, e.Offset, e.LastGoodSeq)
}

// Unwrap makes errors.Is(err, ErrCorruptLog) work.
func (e *StreamTruncatedError) Unwrap() error { return ErrCorruptLog }

// DecodeStream decodes every complete record in b. A batch cut mid-record
// returns the complete prefix AND a *StreamTruncatedError; structurally
// invalid bytes (bad kind, implausible payload size) return a plain
// ErrCorruptLog-wrapped error with whatever prefix decoded before them.
func DecodeStream(b []byte) ([]StreamOp, error) {
	var ops []StreamOp
	lastGood := uint64(0)
	off := 0
	for off < len(b) {
		if len(b)-off < 8*streamHdrWords {
			return ops, &StreamTruncatedError{LastGoodSeq: lastGood, Offset: off}
		}
		hdr := b[off:]
		kind := StreamKind(binary.LittleEndian.Uint64(hdr[0:]))
		seq := binary.LittleEndian.Uint64(hdr[8:])
		addr := binary.LittleEndian.Uint64(hdr[16:])
		words := binary.LittleEndian.Uint64(hdr[24:])
		ckptSeq := binary.LittleEndian.Uint64(hdr[32:])
		ndata := binary.LittleEndian.Uint64(hdr[40:])
		if kind < StreamPersist || kind > StreamFree {
			return ops, fmt.Errorf("%w: invalid stream kind %d at byte %d", ErrCorruptLog, uint64(kind), off)
		}
		if ndata > maxStreamData {
			return ops, fmt.Errorf("%w: implausible stream payload %d words at byte %d", ErrCorruptLog, ndata, off)
		}
		if len(b)-off < 8*(streamHdrWords+int(ndata)) {
			return ops, &StreamTruncatedError{LastGoodSeq: lastGood, Offset: off}
		}
		op := StreamOp{Seq: seq, Kind: kind, Addr: addr, Words: words, CkptSeq: ckptSeq}
		if ndata > 0 {
			op.Data = make([]uint64, ndata)
			for i := range op.Data {
				op.Data[i] = binary.LittleEndian.Uint64(b[off+8*(streamHdrWords+i):])
			}
		}
		ops = append(ops, op)
		lastGood = seq
		off += op.EncodedLen()
	}
	return ops, nil
}
