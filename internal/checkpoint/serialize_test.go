package checkpoint

import (
	"bytes"
	"testing"

	"arthas/internal/pmem"
)

func TestLogSerializationRoundTrip(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	// A few versioned entries.
	for gen := uint64(1); gen <= 3; gen++ {
		pool.Store(a, gen*10)
		pool.Persist(a, 1)
	}
	// A transaction.
	pool.Store(a+1, 7)
	pool.Store(a+3, 8)
	pool.PersistTx([]pmem.Range{{Addr: a + 1, Words: 1}, {Addr: a + 3, Words: 1}})
	// A freed allocation (leak bookkeeping).
	b, _ := pool.Alloc(2)
	pool.Free(b)
	// One reversion so cursors are non-trivial.
	log.Revert(pool, 3)

	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq() != log.Seq() || got.TotalVersions() != log.TotalVersions() {
		t.Fatalf("counters: seq %d/%d total %d/%d", got.Seq(), log.Seq(),
			got.TotalVersions(), log.TotalVersions())
	}
	if got.NumEntries() != log.NumEntries() {
		t.Fatalf("entries: %d vs %d", got.NumEntries(), log.NumEntries())
	}
	if got.RevertedVersions() != log.RevertedVersions() {
		t.Fatalf("reverted: %d vs %d", got.RevertedVersions(), log.RevertedVersions())
	}
	// Version data travels.
	e := got.EntryAt(a)
	if e == nil || e.LiveVersion() == nil || e.LiveVersion().Data[0] != 20 {
		t.Fatalf("entry at a: %+v", e)
	}
	// Transaction grouping travels.
	seqs := got.AllSeqs()
	tx := got.TxOf(seqs[len(seqs)-1])
	if tx == 0 || len(got.SeqsInTx(tx)) != 2 {
		t.Fatalf("tx grouping lost: tx=%d members=%v", tx, got.SeqsInTx(tx))
	}
	// Leak bookkeeping travels: the freed block stays excluded.
	if len(got.LiveAllocs()) != len(log.LiveAllocs()) {
		t.Fatalf("live allocs: %d vs %d", len(got.LiveAllocs()), len(log.LiveAllocs()))
	}
	for _, rec := range got.LiveAllocs() {
		if rec.Addr == b {
			t.Fatal("freed allocation resurrected by serialization")
		}
	}
	// The reopened log keeps working: further reverts are possible.
	if _, err := got.Revert(pool, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := pool.ReadDurable(a)
	if v != 10 {
		t.Fatalf("revert via reopened log -> %d", v)
	}
}

func TestLogSerializationOldEntry(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 1)
	pool.Persist(a, 1)
	pool.Free(a)
	b, _ := pool.Alloc(4)
	if b != a {
		t.Skip("no address reuse")
	}
	pool.Store(b, 2)
	pool.Persist(b, 2) // new entry with OldEntry link

	var buf bytes.Buffer
	log.WriteTo(&buf)
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := got.EntryBySeq(got.Seq())
	if e == nil || e.OldEntry == nil {
		t.Fatal("old_entry link lost in serialization")
	}
	if e.OldEntry.Addr != a {
		t.Fatalf("old entry addr = %#x", e.OldEntry.Addr)
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	pool.Store(a, 1)
	pool.Persist(a, 1)
	var buf bytes.Buffer
	log.WriteTo(&buf)
	data := buf.Bytes()
	if _, err := ReadLog(bytes.NewReader(data[:len(data)-9])); err == nil {
		t.Fatal("truncated log accepted")
	}
}
