package checkpoint

import (
	"testing"
	"testing/quick"

	"arthas/internal/pmem"
)

// newRig wires a fresh pool to a fresh log.
func newRig(maxVersions int) (*pmem.Pool, *Log) {
	pool := pmem.New(1 << 14)
	log := NewLog(maxVersions)
	pool.SetHooks(log.Hooks())
	return pool, log
}

func TestEntryCreatedOnPersist(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 11)
	pool.Store(a+1, 22)
	pool.Persist(a, 2)

	e := log.EntryAt(a)
	if e == nil {
		t.Fatal("no entry for persisted range")
	}
	v := e.LiveVersion()
	if v == nil || len(v.Data) != 2 || v.Data[0] != 11 || v.Data[1] != 22 {
		t.Fatalf("live version = %+v", v)
	}
	if log.Seq() != 1 || log.TotalVersions() != 1 {
		t.Fatalf("seq=%d total=%d", log.Seq(), log.TotalVersions())
	}
}

func TestVersionHistory(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	for i := uint64(1); i <= 3; i++ {
		pool.Store(a, i*100)
		pool.Persist(a, 1)
	}
	e := log.EntryAt(a)
	if len(e.Versions) != 3 {
		t.Fatalf("versions = %d", len(e.Versions))
	}
	for i, v := range e.Versions {
		if v.Data[0] != uint64(i+1)*100 {
			t.Fatalf("version %d data = %v", i, v.Data)
		}
	}
}

func TestMaxVersionsCapDropsOldest(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	for i := uint64(1); i <= 5; i++ {
		pool.Store(a, i)
		pool.Persist(a, 1)
	}
	e := log.EntryAt(a)
	if len(e.Versions) != 3 {
		t.Fatalf("versions = %d, want cap 3", len(e.Versions))
	}
	if e.Versions[0].Data[0] != 3 {
		t.Fatalf("oldest retained = %d, want 3", e.Versions[0].Data[0])
	}
	// Dropped seqs are no longer addressable.
	if log.EntryBySeq(1) != nil || log.EntryBySeq(2) != nil {
		t.Fatal("dropped versions still indexed by seq")
	}
}

func TestRevertRestoresPreviousVersion(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	pool.Store(a, 10)
	pool.Persist(a, 1) // seq 1
	pool.Store(a, 20)
	pool.Persist(a, 1) // seq 2

	n, err := log.Revert(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("discarded = %d", n)
	}
	v, _ := pool.Load(a)
	if v != 10 {
		t.Fatalf("after revert, value = %d, want 10", v)
	}
	// The reversion is durable.
	pool.Crash()
	v, _ = pool.Load(a)
	if v != 10 {
		t.Fatal("reversion not durable")
	}
}

func TestRevertOldestKillsEntry(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(2)
	pool.Store(a, 7)
	pool.Store(a+1, 8)
	pool.Persist(a, 2) // seq 1: the only recorded version
	n, err := log.Revert(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("discarded = %d, want 1 (the entry dies)", n)
	}
	e := log.EntryAt(a)
	if !e.Dead() || e.LiveVersion() != nil {
		t.Fatal("entry should be dead after reverting its only version")
	}
	// No older covering entry exists, so the words are left untouched —
	// the log never captured their prior state.
	v0, _ := pool.Load(a)
	v1, _ := pool.Load(a + 1)
	if v0 != 7 || v1 != 8 {
		t.Fatalf("unowned words were rewritten: %d,%d", v0, v1)
	}
	// A second revert is a no-op.
	if n, _ := log.Revert(pool, 1); n != 0 {
		t.Fatalf("second revert discarded %d", n)
	}
}

func TestDeathTransfersOwnership(t *testing.T) {
	pool, log := newRig(3)
	root, _ := pool.Alloc(4)
	// Init-time whole-struct persist...
	pool.Store(root, 1)
	pool.Store(root+1, 2)
	pool.Persist(root, 4) // seq 1: (root, 4)
	// ...then a buggy per-field persist.
	pool.Store(root+1, 999)
	pool.Persist(root+1, 1) // seq 2: (root+1, 1), single version
	// Reverting the per-field entry below its only version transfers the
	// word back to the init entry, restoring 2.
	n, err := log.Revert(pool, 2)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	v, _ := pool.ReadDurable(root + 1)
	if v != 2 {
		t.Fatalf("root+1 = %d, want 2 (ownership fallback)", v)
	}
	// The untouched field keeps its value.
	v0, _ := pool.ReadDurable(root)
	if v0 != 1 {
		t.Fatalf("root+0 = %d", v0)
	}
}

func TestResyncRespectsOwnership(t *testing.T) {
	pool, log := newRig(3)
	tab, _ := pool.Alloc(8)
	// Init-time empty-table persist.
	pool.Persist(tab, 8) // seq 1: all zeros
	// Later per-slot persists hold the real heads.
	pool.Store(tab+3, 333)
	pool.Persist(tab+3, 1) // seq 2
	// Reverting seq 1 must NOT wipe slot 3: that word is owned by the
	// newer per-slot entry.
	if _, err := log.Revert(pool, 1); err != nil {
		t.Fatal(err)
	}
	v, _ := pool.ReadDurable(tab + 3)
	if v != 333 {
		t.Fatalf("slot 3 = %d, want 333 (stale overlapping resync fired)", v)
	}
}

func TestRevertIdempotentBelow(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	pool.Store(a, 1)
	pool.Persist(a, 1) // seq 1
	pool.Store(a, 2)
	pool.Persist(a, 1) // seq 2
	if n, _ := log.Revert(pool, 2); n != 1 {
		t.Fatalf("first revert discarded %d", n)
	}
	// Reverting seq 2 again is a no-op.
	if n, err := log.Revert(pool, 2); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	v, _ := pool.Load(a)
	if v != 1 {
		t.Fatalf("value = %d, want 1", v)
	}
	// Reverting the oldest version kills the entry (1 more discard); with
	// no older covering entry the word keeps its value.
	if n, err := log.Revert(pool, 1); err != nil || n != 1 {
		t.Fatalf("oldest revert n=%d err=%v", n, err)
	}
	if n, err := log.Revert(pool, 1); err != nil || n != 0 {
		t.Fatalf("post-death revert n=%d err=%v", n, err)
	}
}

func TestRevertUnknownSeq(t *testing.T) {
	pool, log := newRig(3)
	if _, err := log.Revert(pool, 42); err == nil {
		t.Fatal("revert of unknown seq succeeded")
	}
}

func TestSeqsCovering(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 1)
	pool.Store(a+1, 2)
	pool.Persist(a, 2) // seq 1 covers a, a+1
	pool.Store(a+3, 3)
	pool.Persist(a+3, 1) // seq 2 covers a+3

	if got := log.SeqsCovering(a + 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SeqsCovering(a+1) = %v", got)
	}
	if got := log.SeqsCovering(a + 2); got != nil {
		t.Fatalf("SeqsCovering(a+2) = %v, want none", got)
	}
	if got := log.SeqsCovering(a + 3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SeqsCovering(a+3) = %v", got)
	}
}

func TestTransactionGrouping(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 1)
	pool.Store(a+2, 2)
	pool.PersistTx([]pmem.Range{{Addr: a, Words: 1}, {Addr: a + 2, Words: 1}})

	seqs := log.AllSeqs()
	if len(seqs) != 2 {
		t.Fatalf("seqs = %v", seqs)
	}
	tx := log.TxOf(seqs[0])
	if tx == 0 || log.TxOf(seqs[1]) != tx {
		t.Fatalf("tx ids = %d, %d", tx, log.TxOf(seqs[1]))
	}
	members := log.SeqsInTx(tx)
	if len(members) != 2 {
		t.Fatalf("tx members = %v", members)
	}
}

func TestRevertSeqAndTxRevertsSiblings(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	// Baseline values (non-tx).
	pool.Store(a, 1)
	pool.Persist(a, 1)
	pool.Store(a+2, 10)
	pool.Persist(a+2, 1)
	// Transactional update of both.
	pool.Store(a, 2)
	pool.Store(a+2, 20)
	pool.PersistTx([]pmem.Range{{Addr: a, Words: 1}, {Addr: a + 2, Words: 1}})

	// Reverting either tx seq must revert both words.
	seqs := log.AllSeqs()
	txSeq := seqs[len(seqs)-1]
	if _, err := log.RevertSeqAndTx(pool, txSeq); err != nil {
		t.Fatal(err)
	}
	v0, _ := pool.Load(a)
	v2, _ := pool.Load(a + 2)
	if v0 != 1 || v2 != 10 {
		t.Fatalf("after tx revert: %d, %d, want 1, 10", v0, v2)
	}
}

func TestRevertAllAfter(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	// Two generations per word: seqs 1..4 old, 5..8 new.
	for gen := uint64(0); gen < 2; gen++ {
		for i := uint64(0); i < 4; i++ {
			pool.Store(a+i, gen*1000+100+i)
			pool.Persist(a+i, 1)
		}
	}
	n, err := log.RevertAllAfter(pool, 7) // newest versions of a+2, a+3
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("discarded = %d, want 2", n)
	}
	v2, _ := pool.Load(a + 2)
	v3, _ := pool.Load(a + 3)
	v1, _ := pool.Load(a + 1)
	if v2 != 102 || v3 != 103 {
		t.Fatalf("seqs >= 7 not reverted to old generation: %d %d", v2, v3)
	}
	if v1 != 1101 {
		t.Fatalf("seq 6 wrongly reverted: %d", v1)
	}
}

func TestAllocTracking(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	b, _ := pool.Alloc(4)
	pool.Free(a)
	live := log.LiveAllocs()
	if len(live) != 1 || live[0].Addr != b {
		t.Fatalf("live allocs = %+v", live)
	}
}

func TestAllocatorMetadataNotCheckpointed(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Zalloc(8)
	pool.Free(a)
	pool.Zalloc(4)
	if log.NumEntries() != 0 {
		t.Fatalf("allocator activity created %d checkpoint entries", log.NumEntries())
	}
}

func TestRevertedVersionsAccounting(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	for i := uint64(1); i <= 3; i++ {
		pool.Store(a, i)
		pool.Persist(a, 1)
	}
	log.Revert(pool, 3)
	if log.RevertedVersions() != 1 {
		t.Fatalf("reverted = %d", log.RevertedVersions())
	}
	log.Revert(pool, 2)
	if log.RevertedVersions() != 2 {
		t.Fatalf("reverted = %d", log.RevertedVersions())
	}
}

// Property: after any sequence of persisted writes followed by reverting the
// newest seq of an address, the pool durably holds the previous value.
func TestPropRevertRestoresPrior(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) < 2 {
			return true
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		pool, log := newRig(len(vals) + 1)
		a, err := pool.Alloc(1)
		if err != nil {
			return true
		}
		var seqs []uint64
		for _, v := range vals {
			pool.Store(a, v)
			pool.Persist(a, 1)
			seqs = append(seqs, log.Seq())
		}
		// Revert the newest; expect the second-newest value.
		if _, err := log.Revert(pool, seqs[len(seqs)-1]); err != nil {
			return false
		}
		got, _ := pool.ReadDurable(a)
		return got == vals[len(vals)-2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence numbers are strictly increasing and unique across all
// entries.
func TestPropSeqMonotone(t *testing.T) {
	f := func(addrs []uint8, vals []uint64) bool {
		pool, log := newRig(4)
		base, err := pool.Alloc(300)
		if err != nil {
			return true
		}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := base + uint64(addrs[i])
			pool.Store(a, vals[i])
			pool.Persist(a, 1)
		}
		seqs := log.AllSeqs()
		seen := map[uint64]bool{}
		last := uint64(0)
		for _, s := range seqs {
			if seen[s] || s <= last && last != 0 {
				return false
			}
			seen[s] = true
			last = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
