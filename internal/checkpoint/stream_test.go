package checkpoint

import (
	"errors"
	"reflect"
	"testing"
)

func streamFixture() []StreamOp {
	return []StreamOp{
		{Seq: 1, Kind: StreamAlloc, Addr: 0x1000_0040, Words: 4},
		{Seq: 2, Kind: StreamZero, Addr: 0x1000_0040, Words: 4},
		{Seq: 3, Kind: StreamTxBegin},
		{Seq: 4, Kind: StreamPersist, Addr: 0x1000_0040, Words: 2, CkptSeq: 1, Data: []uint64{7, 9}},
		{Seq: 5, Kind: StreamPersist, Addr: 0x1000_0043, Words: 1, CkptSeq: 2, Data: []uint64{11}},
		{Seq: 6, Kind: StreamTxCommit},
		{Seq: 7, Kind: StreamFree, Addr: 0x1000_0040, Words: 4},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	ops := streamFixture()
	b := EncodeStream(ops)
	got, err := DecodeStream(b)
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, ops)
	}
	if got2, err := DecodeStream(nil); err != nil || len(got2) != 0 {
		t.Fatalf("empty stream: %v %v", got2, err)
	}
}

// TestStreamTruncationEveryBoundary cuts the encoded stream at every byte
// offset — covering every field boundary of every record and every
// mid-word cut — and asserts the decoder returns exactly the complete
// prefix plus a StreamTruncatedError carrying the last good sequence.
func TestStreamTruncationEveryBoundary(t *testing.T) {
	ops := streamFixture()
	b := EncodeStream(ops)

	// recStart[i] = byte offset where record i starts.
	recStart := make([]int, len(ops)+1)
	for i, op := range ops {
		recStart[i+1] = recStart[i] + op.EncodedLen()
	}
	if recStart[len(ops)] != len(b) {
		t.Fatalf("offset bookkeeping: %d != %d", recStart[len(ops)], len(b))
	}

	for cut := 0; cut < len(b); cut++ {
		// How many whole records fit in b[:cut]?
		whole := 0
		for whole < len(ops) && recStart[whole+1] <= cut {
			whole++
		}
		got, err := DecodeStream(b[:cut])
		if recStart[whole] == cut {
			// Cut exactly on a record boundary: clean decode of the prefix.
			if err != nil {
				t.Fatalf("cut=%d (boundary): unexpected error %v", cut, err)
			}
		} else {
			var te *StreamTruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("cut=%d: want StreamTruncatedError, got %v", cut, err)
			}
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("cut=%d: truncation must wrap ErrCorruptLog", cut)
			}
			wantSeq := uint64(0)
			if whole > 0 {
				wantSeq = ops[whole-1].Seq
			}
			if te.LastGoodSeq != wantSeq {
				t.Fatalf("cut=%d: LastGoodSeq=%d, want %d", cut, te.LastGoodSeq, wantSeq)
			}
			if te.Offset != recStart[whole] {
				t.Fatalf("cut=%d: Offset=%d, want %d", cut, te.Offset, recStart[whole])
			}
		}
		if len(got) != whole {
			t.Fatalf("cut=%d: decoded %d records, want %d", cut, len(got), whole)
		}
		if !reflect.DeepEqual(got, ops[:whole]) && !(len(got) == 0 && whole == 0) {
			t.Fatalf("cut=%d: prefix mismatch", cut)
		}
	}
}

func TestStreamBadKind(t *testing.T) {
	b := EncodeStream([]StreamOp{{Seq: 1, Kind: StreamPersist, Addr: 1, Words: 1, Data: []uint64{1}}})
	bad := append([]byte(nil), b...)
	bad = AppendStreamOp(bad, StreamOp{Seq: 2, Kind: 99})
	got, err := DecodeStream(bad)
	if err == nil || !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("bad kind: want ErrCorruptLog, got %v", err)
	}
	var te *StreamTruncatedError
	if errors.As(err, &te) {
		t.Fatalf("bad kind must not read as truncation: %v", err)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("bad kind: prefix %v", got)
	}
}

func TestStreamImplausiblePayload(t *testing.T) {
	op := StreamOp{Seq: 1, Kind: StreamPersist, Addr: 1, Words: 1}
	b := AppendStreamOp(nil, op)
	// Overwrite ndata with an implausible count.
	for i := 0; i < 8; i++ {
		b[40+i] = 0xff
	}
	if _, err := DecodeStream(b); err == nil || !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("implausible payload: want ErrCorruptLog, got %v", err)
	}
}
