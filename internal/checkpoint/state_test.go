package checkpoint

import (
	"testing"
	"testing/quick"
)

func TestCaptureRestoreRoundTrip(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	for gen := uint64(1); gen <= 3; gen++ {
		for i := uint64(0); i < 4; i++ {
			pool.Store(a+i, gen*100+i)
			pool.Persist(a+i, 1)
		}
	}
	st := log.CaptureState()
	before := pool.TakeSnapshot(0)

	// Scramble: revert entries newest-first so step-downs rewrite words
	// (oldest-first would only kill entries, leaving unowned words as-is).
	seqs := log.AllSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		log.Revert(pool, seqs[i])
	}
	if pool.DiffWords(before) == 0 {
		t.Fatal("reverts changed nothing; test is vacuous")
	}

	if err := log.RestoreState(pool, st); err != nil {
		t.Fatal(err)
	}
	if d := pool.DiffWords(before); d != 0 {
		t.Fatalf("restore left %d words different", d)
	}
	if log.RevertedVersions() != 0 {
		t.Fatalf("reverted count = %d after restore", log.RevertedVersions())
	}
}

func TestRestoreStateIgnoresNewerEntries(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(2)
	pool.Store(a, 1)
	pool.Persist(a, 1)
	st := log.CaptureState()
	// A new entry created after the capture must survive the restore.
	pool.Store(a+1, 9)
	pool.Persist(a+1, 1)
	if err := log.RestoreState(pool, st); err != nil {
		t.Fatal(err)
	}
	v, _ := pool.ReadDurable(a + 1)
	if v != 9 {
		t.Fatalf("entry created after capture was reverted: %d", v)
	}
}

func TestRestoreNewestResurrectsDead(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(1)
	pool.Store(a, 5)
	pool.Persist(a, 1)
	log.Revert(pool, 1) // death
	if log.EntryAt(a).Dead() != true {
		t.Fatal("not dead")
	}
	if err := log.RestoreNewest(pool); err != nil {
		t.Fatal(err)
	}
	e := log.EntryAt(a)
	if e.Dead() || e.LiveVersion() == nil || e.LiveVersion().Data[0] != 5 {
		t.Fatalf("entry not resurrected: %+v", e)
	}
	v, _ := pool.ReadDurable(a)
	if v != 5 {
		t.Fatalf("durable = %d", v)
	}
}

// Property: capture → arbitrary reverts → restore is an identity on the
// durable image and on RevertedVersions.
func TestPropCaptureRestoreIdentity(t *testing.T) {
	f := func(writes []uint8, revertPicks []uint8) bool {
		pool, log := newRig(3)
		a, err := pool.Alloc(16)
		if err != nil {
			return true
		}
		for i, w := range writes {
			if i > 40 {
				break
			}
			addr := a + uint64(w%16)
			pool.Store(addr, uint64(i)*7+1)
			pool.Persist(addr, 1)
		}
		if log.Seq() == 0 {
			return true
		}
		st := log.CaptureState()
		img := pool.TakeSnapshot(0)
		seqs := log.AllSeqs()
		for _, p := range revertPicks {
			if len(seqs) == 0 {
				break
			}
			log.Revert(pool, seqs[int(p)%len(seqs)])
		}
		if err := log.RestoreState(pool, st); err != nil {
			return false
		}
		return pool.DiffWords(img) == 0 && log.RevertedVersions() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestResyncOnlyOwnedWords(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 1)
	pool.Store(a+1, 2)
	pool.Persist(a, 2) // entry (a,2)
	pool.Store(a+1, 22)
	pool.Persist(a+1, 1) // newer entry (a+1,1) owns word a+1
	// Corrupt both words out-of-band.
	pool.WriteDurable(a, 100)
	pool.WriteDurable(a+1, 200)
	// Resyncing the old wide entry fixes only word a (its owned word).
	n, err := log.Resync(pool, 1)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	v0, _ := pool.ReadDurable(a)
	v1, _ := pool.ReadDurable(a + 1)
	if v0 != 1 {
		t.Fatalf("owned word not resynced: %d", v0)
	}
	if v1 != 200 {
		t.Fatalf("unowned word was touched: %d", v1)
	}
	// Resyncing the owner fixes the other word.
	if n, _ := log.Resync(pool, 2); n != 1 {
		t.Fatalf("owner resync n=%d", n)
	}
	v1, _ = pool.ReadDurable(a + 1)
	if v1 != 22 {
		t.Fatalf("word a+1 = %d", v1)
	}
}
