package checkpoint

import "fmt"

// Structural validation of a checkpoint log.
//
// The log is itself persistent state (paper §4.2: it lives in PM), so a
// crash — real or injected by the torture harness — must never leave it in
// a state that breaks the invariants reversion relies on. Validate checks
// exactly those invariants; the torture harness runs it on every recovered
// log, and `arthas-inspect verify` fails an image whose log does not pass.

// ValidateReport collects structural problems found in a log.
type ValidateReport struct {
	Problems []string
}

// OK reports whether the log is well-formed.
func (r *ValidateReport) OK() bool { return len(r.Problems) == 0 }

func (r *ValidateReport) String() string {
	if r.OK() {
		return "checkpoint log OK"
	}
	s := fmt.Sprintf("checkpoint log: %d problem(s)", len(r.Problems))
	for _, p := range r.Problems {
		s += "\n  " + p
	}
	return s
}

func (r *ValidateReport) addf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Validate checks the log's structural invariants:
//
//   - every entry's live cursor indexes a real version (or -1 = fully
//     reverted), and dead entries sit at live == -1;
//   - version sequence numbers within an entry are strictly ascending
//     (versions are recorded in logical-time order) and none exceeds the
//     log's global sequence counter;
//   - version data lengths match the entry's range width — an entry whose
//     recorded bytes could not restore its own range is useless for
//     reversion;
//   - version counts respect MaxVersions;
//   - no two versions anywhere share a sequence number (the global order
//     is total), and the bySeq index agrees with the entries;
//   - transaction ids never exceed the transaction counter;
//   - allocation records are consistent (positive sizes, seqs within
//     range).
func (l *Log) Validate() *ValidateReport {
	r := &ValidateReport{}
	versionCount := 0
	seqSeen := map[uint64]bool{}
	for _, k := range l.order {
		e := l.entries[k]
		if e == nil {
			r.addf("entry order references missing key {%#x,%d}", k.addr, k.words)
			continue
		}
		name := fmt.Sprintf("entry {%#x,%d}", e.Addr, e.Words)
		if e.Words <= 0 {
			r.addf("%s: non-positive range width", name)
		}
		if e.live < -1 || e.live >= len(e.Versions) {
			r.addf("%s: live cursor %d out of range [-1,%d)", name, e.live, len(e.Versions))
		}
		if e.dead && e.live != -1 {
			r.addf("%s: dead but live cursor is %d", name, e.live)
		}
		if len(e.Versions) > l.MaxVersions {
			r.addf("%s: %d versions exceed cap %d", name, len(e.Versions), l.MaxVersions)
		}
		prevSeq := uint64(0)
		for i, v := range e.Versions {
			if len(v.Data) != e.Words {
				r.addf("%s: version %d has %d data words, want %d", name, i, len(v.Data), e.Words)
			}
			if v.Seq > l.seq {
				r.addf("%s: version %d seq %d exceeds log seq %d", name, i, v.Seq, l.seq)
			}
			if i > 0 && v.Seq <= prevSeq {
				r.addf("%s: version seqs not ascending (%d after %d)", name, v.Seq, prevSeq)
			}
			prevSeq = v.Seq
			if seqSeen[v.Seq] {
				r.addf("%s: duplicate sequence number %d", name, v.Seq)
			}
			seqSeen[v.Seq] = true
			if v.Tx > l.txSeq {
				r.addf("%s: version %d tx id %d exceeds tx counter %d", name, i, v.Tx, l.txSeq)
			}
			versionCount++
		}
	}
	// The bySeq index must agree with the entries exactly: an index entry
	// with no backing version (or vice versa) would misdirect reversion.
	if len(l.bySeq) != versionCount {
		r.addf("seq index has %d entries, versions total %d", len(l.bySeq), versionCount)
	}
	for seq, e := range l.bySeq {
		if !seqSeen[seq] {
			r.addf("seq index references unknown sequence %d", seq)
			continue
		}
		found := false
		for _, v := range e.Versions {
			if v.Seq == seq {
				found = true
				break
			}
		}
		if !found {
			r.addf("seq index maps %d to an entry that lacks that version", seq)
		}
	}
	for i, a := range l.allocOrder {
		rec := l.allocs[a]
		if rec == nil {
			r.addf("alloc order references missing record %#x", a)
			continue
		}
		if rec.Words <= 0 {
			r.addf("alloc record %d (%#x): non-positive size %d", i, rec.Addr, rec.Words)
		}
		if rec.Seq > l.seq {
			r.addf("alloc record %d (%#x): seq %d exceeds log seq %d", i, rec.Addr, rec.Seq, l.seq)
		}
	}
	return r
}
