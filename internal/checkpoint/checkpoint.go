// Package checkpoint implements Arthas's PM-aware fine-grained checkpointing
// (paper §4.2): persistent state updates are versioned at the granularity of
// the program's own persistence calls, eagerly, at the moment data becomes
// durable.
//
// Each log entry corresponds to one persisted address range and holds up to
// MaxVersions historical values plus the sequence numbers that produced
// them. An atomic sequence number totally orders PM updates by logical time.
// Transaction commits are bracketed so that reverting any entry of a
// transaction reverts its siblings too (§4.6). Allocations and frees are
// tracked for the leak-mitigation diff (§4.7).
//
// The log attaches to a pool via Hooks(); because the pmem simulator fires
// hooks only when data actually becomes durable, both the granularity and
// the timing of checkpointing are exactly the target program's persistence
// granularity and timing — the paper's central consistency argument.
package checkpoint

import (
	"fmt"
	"sort"
	"time"

	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// DefaultMaxVersions matches the paper's default of 3 data versions per entry.
const DefaultMaxVersions = 3

// Version is one durable value of an entry's address range.
type Version struct {
	Data []uint64
	Seq  uint64
	Tx   uint64 // transaction id, 0 = not transactional
}

// Entry versions one persisted address range. Entries are keyed by
// (start address, size): a program that persists both a single field and a
// whole struct at the same base gets two independent version histories, so
// reverting either restores exactly the span that persistence call covered
// (the paper's Figure 5 entry carries address, offset and per-version
// sizes for the same reason).
type Entry struct {
	Addr     uint64
	Words    int
	Versions []Version // oldest first; capped at MaxVersions
	// live indexes the version currently in PM: len(Versions)-1 after a
	// write, decremented by reversions, -1 = reverted to pre-first state.
	live int
	// OldEntry links to the entry this range was reallocated from
	// (paper Figure 5's old_entry field).
	OldEntry *Entry
	// resynced marks that an out-of-band-corruption resync already ran
	// for this entry; later reverts step down versions normally. One shot
	// guarantees reversion progress even when overlapping entries dispute
	// the same words.
	resynced bool
	// dead marks an entry reverted below its oldest recorded version: its
	// words fall back to the next-newest covering live entry (ownership
	// transfer), and it no longer participates in resyncs.
	dead bool
}

// Dead reports whether the entry was reverted below its first version.
func (e *Entry) Dead() bool { return e.dead }

// LiveVersion returns the currently-live version (nil when the entry was
// reverted below its first recorded version).
func (e *Entry) LiveVersion() *Version {
	if e.dead || e.live < 0 || e.live >= len(e.Versions) {
		return nil
	}
	return &e.Versions[e.live]
}

// AllocRecord tracks one persistent allocation for leak mitigation.
type AllocRecord struct {
	Addr  uint64
	Words int
	Seq   uint64 // sequence counter value when allocated
	Freed bool
	// Realloc marks that this allocation reuses an address that a previous
	// (freed) allocation occupied — the trigger for old_entry linking.
	Realloc bool
}

// entryKey identifies one versioned range.
type entryKey struct {
	addr  uint64
	words int
}

// Log is the checkpoint log for one pool.
type Log struct {
	MaxVersions int

	entries map[entryKey]*Entry
	order   []entryKey // entry creation order (stable iteration)
	bySeq   map[uint64]*Entry

	seq   uint64
	txSeq uint64
	inTx  bool

	allocs     map[uint64]*AllocRecord
	allocOrder []uint64

	totalVersions uint64 // every version ever recorded (data-loss accounting)

	// sink receives checkpointing telemetry; obsOn caches sink.Enabled() so
	// the per-persist hook pays one predictable branch when disabled.
	sink  obs.Sink
	obsOn bool
}

// NewLog creates an empty checkpoint log.
func NewLog(maxVersions int) *Log {
	if maxVersions <= 0 {
		maxVersions = DefaultMaxVersions
	}
	return &Log{
		MaxVersions: maxVersions,
		entries:     map[entryKey]*Entry{},
		bySeq:       map[uint64]*Entry{},
		allocs:      map[uint64]*AllocRecord{},
		sink:        obs.Nop(),
	}
}

// SetSink installs an observability sink (nil restores the no-op).
func (l *Log) SetSink(s obs.Sink) {
	l.sink = obs.OrNop(s)
	l.obsOn = l.sink.Enabled()
}

// noteReversion refreshes the reversion gauges after any operation that
// moves entry cursors (reverts, restores, trial rollbacks).
func (l *Log) noteReversion() {
	if l.obsOn {
		l.sink.SetGauge("ckpt.reverted_versions", int64(l.RevertedVersions()))
	}
}

// Hooks returns pmem hooks that feed this log. Install with pool.SetHooks.
func (l *Log) Hooks() pmem.Hooks {
	return pmem.Hooks{
		OnPersist:  l.onPersist,
		OnTxBegin:  func() { l.inTx = true; l.txSeq++ },
		OnTxCommit: func() { l.inTx = false },
		OnAlloc:    l.onAlloc,
		OnFree:     l.onFree,
	}
}

func (l *Log) onPersist(addr uint64, data []uint64) {
	var hookStart time.Time
	if l.obsOn {
		hookStart = time.Now()
	}
	key := entryKey{addr, len(data)}
	e := l.entries[key]
	if e == nil {
		e = &Entry{Addr: addr, Words: len(data), live: -1}
		// Realloc linkage (Figure 5's old_entry): if this address was freed
		// and re-allocated, link the new entry to the prior history there.
		if rec, ok := l.allocs[addr]; ok && rec.Realloc {
			for _, k := range l.order {
				if k.addr == addr {
					e.OldEntry = l.entries[k]
					break
				}
			}
		}
		l.entries[key] = e
		l.order = append(l.order, key)
	}
	l.seq++
	v := Version{Data: append([]uint64(nil), data...), Seq: l.seq}
	if l.inTx {
		v.Tx = l.txSeq
	}
	// Drop-oldest when at capacity.
	if len(e.Versions) >= l.MaxVersions {
		delete(l.bySeq, e.Versions[0].Seq)
		e.Versions = append(e.Versions[:0], e.Versions[1:]...)
	}
	e.Versions = append(e.Versions, v)
	e.live = len(e.Versions) - 1
	// A fresh persisted version revives an entry that reversion had killed:
	// leaving dead set with a valid cursor would serialize an inconsistent
	// state (and fail Validate).
	e.dead = false
	l.bySeq[v.Seq] = e
	l.totalVersions++
	if l.obsOn {
		l.sink.Count("ckpt.versions", 1)
		l.sink.Count("ckpt.versioned_words", int64(len(data)))
		l.sink.SetGauge("ckpt.entries", int64(len(l.entries)))
		l.sink.SetGauge("ckpt.total_versions", int64(l.totalVersions))
		l.sink.Observe("ckpt.versions_per_entry", float64(len(e.Versions)))
		l.sink.Observe("ckpt.hook.ns", float64(time.Since(hookStart).Nanoseconds()))
	}
}

func (l *Log) onAlloc(addr uint64, words int) {
	rec := &AllocRecord{Addr: addr, Words: words, Seq: l.seq}
	if prev, seen := l.allocs[addr]; !seen {
		l.allocOrder = append(l.allocOrder, addr)
	} else if prev.Freed {
		rec.Realloc = true
	}
	l.allocs[addr] = rec
}

func (l *Log) onFree(addr uint64, words int) {
	if rec, ok := l.allocs[addr]; ok {
		rec.Freed = true
	}
}

// Seq returns the latest sequence number issued.
func (l *Log) Seq() uint64 { return l.seq }

// TotalVersions returns how many PM updates were checkpointed in total.
func (l *Log) TotalVersions() uint64 { return l.totalVersions }

// RevertedVersions returns how many recorded updates are currently
// discarded by reversion (derived from the entries' live cursors, so trial
// restores are reflected automatically).
func (l *Log) RevertedVersions() uint64 {
	var n uint64
	for _, k := range l.order {
		e := l.entries[k]
		if e.dead {
			n += uint64(len(e.Versions))
		} else if d := len(e.Versions) - 1 - e.live; d > 0 {
			n += uint64(d)
		}
	}
	return n
}

// NumEntries returns the number of distinct versioned ranges.
func (l *Log) NumEntries() int { return len(l.entries) }

// Entries returns every entry in creation order (the version table view
// used by forensic tooling). The returned entries are the live ones —
// callers must not mutate them.
func (l *Log) Entries() []*Entry {
	out := make([]*Entry, 0, len(l.order))
	for _, k := range l.order {
		out = append(out, l.entries[k])
	}
	return out
}

// AllocRecords returns every allocation record in allocation order.
func (l *Log) AllocRecords() []*AllocRecord {
	out := make([]*AllocRecord, 0, len(l.allocOrder))
	for _, a := range l.allocOrder {
		out = append(out, l.allocs[a])
	}
	return out
}

// EntryAt returns the first-created entry starting exactly at addr, or nil.
func (l *Log) EntryAt(addr uint64) *Entry {
	for _, k := range l.order {
		if k.addr == addr {
			return l.entries[k]
		}
	}
	return nil
}

// EntryBySeq returns the entry owning a sequence number, or nil.
func (l *Log) EntryBySeq(seq uint64) *Entry { return l.bySeq[seq] }

// Locate resolves a sequence number to its entry and the index of the
// version carrying that seq — the entry↔lineage linkage incident reports
// use to cite "checkpoint entry X, version i" for a reverted write.
func (l *Log) Locate(seq uint64) (*Entry, int, bool) {
	e := l.bySeq[seq]
	if e == nil {
		return nil, 0, false
	}
	for i, v := range e.Versions {
		if v.Seq == seq {
			return e, i, true
		}
	}
	return nil, 0, false
}

// TxOf returns the transaction id of a sequence number (0 if none).
func (l *Log) TxOf(seq uint64) uint64 {
	e := l.bySeq[seq]
	if e == nil {
		return 0
	}
	for _, v := range e.Versions {
		if v.Seq == seq {
			return v.Tx
		}
	}
	return 0
}

// SeqsInTx returns every live sequence number recorded under a transaction.
func (l *Log) SeqsInTx(tx uint64) []uint64 {
	if tx == 0 {
		return nil
	}
	var out []uint64
	for _, k := range l.order {
		for _, v := range l.entries[k].Versions {
			if v.Tx == tx {
				out = append(out, v.Seq)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SeqsCovering returns the sequence numbers of every version of every entry
// whose range covers addr (the join used when mapping trace addresses to
// checkpoint entries).
func (l *Log) SeqsCovering(addr uint64) []uint64 {
	var out []uint64
	for _, k := range l.order {
		if addr < k.addr || addr >= k.addr+uint64(k.words) {
			continue
		}
		for _, v := range l.entries[k].Versions {
			out = append(out, v.Seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllSeqs returns every live sequence number in ascending order.
func (l *Log) AllSeqs() []uint64 {
	var out []uint64
	for s := range l.bySeq {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ownerOf returns the covering live entry with the newest live version for
// a word — the entry whose data governs that durable word. Overlapping
// entries (an init-time whole-struct persist vs later per-field persists)
// are arbitrated by this ownership: only the owner may rewrite the word.
func (l *Log) ownerOf(addr uint64) (*Entry, uint64, bool) {
	var best *Entry
	var bestSeq uint64
	for _, k := range l.order {
		if addr < k.addr || addr >= k.addr+uint64(k.words) {
			continue
		}
		ent := l.entries[k]
		lv := ent.LiveVersion()
		if lv == nil {
			continue
		}
		if best == nil || lv.Seq >= bestSeq {
			best, bestSeq = ent, lv.Seq
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, best.LiveVersion().Data[addr-best.Addr], true
}

// CheckpointedValueAt returns the newest checkpointed value covering addr,
// if any live entry owns that word. This is the scrubber's ground-truth
// source (internal/scrub): a word the log checkpointed can be rewritten to
// its last-known-good value when the medium corrupts it — the same version
// store the reactor reverts through, used in the forward direction.
func (l *Log) CheckpointedValueAt(addr uint64) (uint64, bool) {
	_, val, ok := l.ownerOf(addr)
	return val, ok
}

// Revert reverts the entry owning seq by one version step: the address
// range is durably rewritten with the version preceding the currently-live
// one at or above seq. Reverting the oldest recorded version "kills" the
// entry: ownership of its words transfers to the next-newest covering live
// entry, whose values are written back (nothing is written for words no
// live entry covers — the log never captured their prior state).
// Returns the number of versions discarded.
//
// Out-of-band corruption (a hardware bit flip, a stray write outside any
// persistence call) never produces a checkpoint version, so the durable
// image can disagree with the checkpointed state. Revert therefore first
// re-syncs the words this entry OWNS: it rewrites only differing words from
// the live version and stops there — restoring the last checkpointed state
// is itself a reversion step and often the entire fix for hardware faults
// (paper §2.4).
func (l *Log) Revert(pool *pmem.Pool, seq uint64) (int, error) {
	e := l.bySeq[seq]
	if e == nil {
		return 0, fmt.Errorf("checkpoint: no entry for seq %d", seq)
	}
	if l.obsOn {
		l.sink.Count("ckpt.revert", 1)
		defer l.noteReversion()
	}
	if lv := e.LiveVersion(); lv != nil && !e.resynced {
		fixed := false
		for w, want := range lv.Data {
			a := e.Addr + uint64(w)
			if !pool.InAllocatedPayload(a) {
				continue // never scribble into freed blocks
			}
			if owner, _, ok := l.ownerOf(a); !ok || owner != e {
				continue // a newer covering entry governs this word
			}
			got, err := pool.ReadDurable(a)
			if err != nil {
				return 0, err
			}
			if got != want {
				if err := pool.WriteDurable(a, want); err != nil {
					return 0, err
				}
				fixed = true
			}
		}
		if fixed {
			e.resynced = true
			return 0, nil
		}
	}
	// Locate the version index for seq.
	idx := -1
	for i, v := range e.Versions {
		if v.Seq == seq {
			idx = i
			break
		}
	}
	if idx == -1 {
		return 0, fmt.Errorf("checkpoint: seq %d vanished from entry %#x", seq, e.Addr)
	}
	if e.dead || e.live <= idx-1 {
		return 0, nil // already reverted at or below this version
	}
	if idx == 0 {
		// Reverting the first recorded version: the entry dies and its
		// words fall back to whatever older covering entries still hold.
		// The cursor drops to -1 with it: a dead entry carrying a stale
		// live index would serialize an inconsistent state.
		discarded := e.live + 1
		e.dead = true
		e.live = -1
		for w := 0; w < e.Words; w++ {
			a := e.Addr + uint64(w)
			if !pool.InAllocatedPayload(a) {
				continue
			}
			if _, val, ok := l.ownerOf(a); ok {
				if err := pool.WriteDurable(a, val); err != nil {
					return 0, err
				}
			}
		}
		return discarded, nil
	}
	discarded := e.live - (idx - 1)
	e.live = idx - 1

	data := e.Versions[e.live].Data
	for w := 0; w < len(data); w++ {
		a := e.Addr + uint64(w)
		if !pool.InAllocatedPayload(a) {
			continue // the block was freed since: leave the allocator alone
		}
		if err := pool.WriteDurable(a, data[w]); err != nil {
			return 0, err
		}
	}
	return discarded, nil
}

// Resync repairs out-of-band corruption for the entry owning seq WITHOUT
// stepping versions: words this entry owns whose durable value disagrees
// with the live checkpointed version are rewritten. It is the minimal
// reversion — "back to the last checkpointed state" — and the first thing
// the reactor's rollback mode tries before discarding any history.
// Returns the number of words repaired.
func (l *Log) Resync(pool *pmem.Pool, seq uint64) (int, error) {
	e := l.bySeq[seq]
	if e == nil {
		return 0, fmt.Errorf("checkpoint: no entry for seq %d", seq)
	}
	lv := e.LiveVersion()
	if lv == nil {
		return 0, nil
	}
	if l.obsOn {
		l.sink.Count("ckpt.resync", 1)
	}
	fixed := 0
	for w, want := range lv.Data {
		a := e.Addr + uint64(w)
		if !pool.InAllocatedPayload(a) {
			continue
		}
		if owner, _, ok := l.ownerOf(a); !ok || owner != e {
			continue
		}
		got, err := pool.ReadDurable(a)
		if err != nil {
			return fixed, err
		}
		if got != want {
			if err := pool.WriteDurable(a, want); err != nil {
				return fixed, err
			}
			fixed++
		}
	}
	return fixed, nil
}

// RevertSeqAndTx reverts seq plus, if it belongs to a transaction, every
// other sequence number of that transaction (§4.6 transaction-level
// consistency). Returns total versions discarded.
func (l *Log) RevertSeqAndTx(pool *pmem.Pool, seq uint64) (int, error) {
	total := 0
	n, err := l.Revert(pool, seq)
	if err != nil {
		return total, err
	}
	total += n
	if tx := l.TxOf(seq); tx != 0 {
		for _, s := range l.SeqsInTx(tx) {
			if s == seq {
				continue
			}
			n, err := l.Revert(pool, s)
			if err != nil {
				return total, err
			}
			total += n
		}
	}
	return total, nil
}

// RevertAllAfter reverts every entry that has live versions with sequence
// numbers >= seq, in descending order — the strict time-order rollback used
// by the rollback mode and the ArCkpt baseline.
func (l *Log) RevertAllAfter(pool *pmem.Pool, seq uint64) (int, error) {
	var seqs []uint64
	for s := range l.bySeq {
		if s >= seq {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	total := 0
	for _, s := range seqs {
		n, err := l.Revert(pool, s)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// RestoreNewest undoes all reversions: every entry is durably rewritten
// with its newest recorded version. Overlapping entries are written in
// ascending newest-seq order so the most recent persist wins. The reactor
// uses this when switching strategies, so a failed purge attempt does not
// permanently destroy state the rollback mode still needs.
func (l *Log) RestoreNewest(pool *pmem.Pool) error {
	if l.obsOn {
		l.sink.Count("ckpt.restore_newest", 1)
		defer l.noteReversion()
	}
	type pending struct {
		e   *Entry
		seq uint64
	}
	var ps []pending
	for _, k := range l.order {
		e := l.entries[k]
		if len(e.Versions) == 0 {
			continue
		}
		ps = append(ps, pending{e, e.Versions[len(e.Versions)-1].Seq})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].seq < ps[j].seq })
	for _, p := range ps {
		e := p.e
		e.dead = false
		e.live = len(e.Versions) - 1
		e.resynced = false
		data := e.Versions[e.live].Data
		for w := 0; w < len(data); w++ {
			a := e.Addr + uint64(w)
			if !pool.InAllocatedPayload(a) {
				continue
			}
			if err := pool.WriteDurable(a, data[w]); err != nil {
				return err
			}
		}
	}
	return nil
}

// LogState is a snapshot of every entry's reversion cursor, used by the
// reactor to run *isolated* reversion trials: capture, revert a candidate,
// probe, and restore on failure so unsuccessful trials leave no damage.
type LogState struct {
	live     []int
	dead     []bool
	resynced []bool
}

// CaptureState snapshots the reversion cursors of all entries.
func (l *Log) CaptureState() *LogState {
	st := &LogState{
		live:     make([]int, len(l.order)),
		dead:     make([]bool, len(l.order)),
		resynced: make([]bool, len(l.order)),
	}
	for i, k := range l.order {
		e := l.entries[k]
		st.live[i] = e.live
		st.dead[i] = e.dead
		st.resynced[i] = e.resynced
	}
	return st
}

// RestoreState puts the cursors back and durably rewrites the ranges of
// every entry whose cursor changed, using word-level ownership so
// overlapping entries settle to the correct values. Entries created after
// the capture keep their current state.
func (l *Log) RestoreState(pool *pmem.Pool, st *LogState) error {
	if l.obsOn {
		defer l.noteReversion()
	}
	var changed []*Entry
	for i := 0; i < len(st.live) && i < len(l.order); i++ {
		e := l.entries[l.order[i]]
		if e.live != st.live[i] || e.dead != st.dead[i] {
			changed = append(changed, e)
		}
		e.live = st.live[i]
		e.dead = st.dead[i]
		e.resynced = st.resynced[i]
	}
	for _, e := range changed {
		for w := 0; w < e.Words; w++ {
			a := e.Addr + uint64(w)
			if !pool.InAllocatedPayload(a) {
				continue
			}
			if _, val, ok := l.ownerOf(a); ok {
				if err := pool.WriteDurable(a, val); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// LiveAllocs returns allocation records never freed, in allocation order.
func (l *Log) LiveAllocs() []*AllocRecord {
	var out []*AllocRecord
	for _, a := range l.allocOrder {
		if rec := l.allocs[a]; rec != nil && !rec.Freed {
			out = append(out, rec)
		}
	}
	return out
}
