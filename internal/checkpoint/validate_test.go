package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"arthas/internal/pmem"
)

func buildValidLog(t *testing.T) (*pmem.Pool, *Log) {
	t.Helper()
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	for gen := uint64(1); gen <= 4; gen++ {
		pool.Store(a, gen)
		pool.Persist(a, 1)
	}
	pool.Store(a+1, 7)
	pool.Store(a+2, 8)
	pool.PersistTx([]pmem.Range{{Addr: a + 1, Words: 1}, {Addr: a + 2, Words: 1}})
	b, _ := pool.Alloc(2)
	pool.Free(b)
	log.Revert(pool, log.Seq())
	return pool, log
}

func TestValidateAcceptsHealthyLog(t *testing.T) {
	_, log := buildValidLog(t)
	if rep := log.Validate(); !rep.OK() {
		t.Fatalf("healthy log flagged: %v", rep)
	}
	// A serialization round trip stays valid.
	var buf bytes.Buffer
	log.WriteTo(&buf)
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep := got.Validate(); !rep.OK() {
		t.Fatalf("round-tripped log flagged: %v", rep)
	}
}

func TestValidateCatchesDamage(t *testing.T) {
	damage := []struct {
		name string
		hurt func(l *Log)
	}{
		{"live cursor out of range", func(l *Log) {
			l.entries[l.order[0]].live = 99
		}},
		{"dead with live cursor", func(l *Log) {
			e := l.entries[l.order[0]]
			e.dead = true
			e.live = 0
		}},
		{"version data width mismatch", func(l *Log) {
			e := l.entries[l.order[0]]
			e.Versions[0].Data = e.Versions[0].Data[:0]
		}},
		{"seq beyond counter", func(l *Log) {
			e := l.entries[l.order[0]]
			old := e.Versions[0].Seq
			e.Versions[0].Seq = l.seq + 1000
			delete(l.bySeq, old)
			l.bySeq[e.Versions[0].Seq] = e
		}},
		{"non-ascending version seqs", func(l *Log) {
			e := l.entries[l.order[0]]
			if len(e.Versions) < 2 {
				t.Skip("need 2 versions")
			}
			e.Versions[0].Seq, e.Versions[1].Seq = e.Versions[1].Seq, e.Versions[0].Seq
		}},
		{"tx beyond counter", func(l *Log) {
			e := l.entries[l.order[0]]
			e.Versions[0].Tx = l.txSeq + 50
		}},
		{"stale seq index", func(l *Log) {
			l.bySeq[l.seq+77] = l.entries[l.order[0]]
		}},
		{"alloc seq beyond counter", func(l *Log) {
			for _, a := range l.allocOrder {
				l.allocs[a].Seq = l.seq + 9
				return
			}
		}},
		{"alloc non-positive size", func(l *Log) {
			for _, a := range l.allocOrder {
				l.allocs[a].Words = 0
				return
			}
		}},
	}
	for _, d := range damage {
		_, log := buildValidLog(t)
		d.hurt(log)
		if rep := log.Validate(); rep.OK() {
			t.Fatalf("%s: not detected", d.name)
		}
	}
}

func TestReadLogTypedErrors(t *testing.T) {
	_, log := buildValidLog(t)
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every truncation point yields ErrCorruptLog, never a panic or nil.
	for cut := 0; cut < len(full); cut += 7 {
		_, err := ReadLog(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrCorruptLog) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// Garbage and version damage too.
	if _, err := ReadLog(bytes.NewReader([]byte("junkjunkjunkjunk"))); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("garbage: %v", err)
	}
}
