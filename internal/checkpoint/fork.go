package checkpoint

import "arthas/internal/obs"

// Log forking for speculative mitigation (see docs/PARALLEL_MITIGATION.md).
//
// A parallel reversion search runs one trial per fork of the target pool;
// each trial reverts and re-executes, which both MOVE entry cursors (live
// indexes, dead flags) and APPEND new versions (the probe's own persists).
// The shared log must see none of that until a winner is chosen, so each
// trial gets a fork: entry structs and version slices are copied (cheap —
// the Version.Data payloads are immutable once recorded and stay shared),
// while reversion cursors, the seq counters, and the allocation table are
// all fork-local. The winning trial's log replaces the shared one via Adopt;
// losing forks are dropped.

// Fork returns a deep-enough copy of the log for one speculative trial:
// entries, version slices, cursors, sequence counters, and allocation
// records are fork-local; version payload data is shared read-only. The
// fork's hooks (Hooks()) feed the fork, so wiring them into a forked pool
// isolates the trial completely. The fork starts with the no-op sink.
func (l *Log) Fork() *Log {
	f := &Log{
		MaxVersions:   l.MaxVersions,
		entries:       make(map[entryKey]*Entry, len(l.entries)),
		order:         append([]entryKey(nil), l.order...),
		bySeq:         make(map[uint64]*Entry, len(l.bySeq)),
		seq:           l.seq,
		txSeq:         l.txSeq,
		inTx:          l.inTx,
		allocs:        make(map[uint64]*AllocRecord, len(l.allocs)),
		allocOrder:    append([]uint64(nil), l.allocOrder...),
		totalVersions: l.totalVersions,
		sink:          obs.Nop(),
	}
	// Copy entries with fresh Version slice headers: onPersist's drop-oldest
	// shifts elements of the backing array in place, so sharing headers
	// would let a fork's appends corrupt its siblings. Data payloads are
	// never mutated after recording and are safely shared.
	remap := make(map[*Entry]*Entry, len(l.entries))
	for k, e := range l.entries {
		ne := &Entry{
			Addr:     e.Addr,
			Words:    e.Words,
			Versions: append([]Version(nil), e.Versions...),
			live:     e.live,
			resynced: e.resynced,
			dead:     e.dead,
		}
		remap[e] = ne
		f.entries[k] = ne
	}
	for k, e := range l.entries {
		if e.OldEntry != nil {
			if ne, ok := remap[e.OldEntry]; ok {
				f.entries[k].OldEntry = ne
			}
		}
	}
	// bySeq holds only retained seqs; rebuild it against the forked entries.
	for s, e := range l.bySeq {
		if ne, ok := remap[e]; ok {
			f.bySeq[s] = ne
		}
	}
	for a, r := range l.allocs {
		cp := *r
		f.allocs[a] = &cp
	}
	return f
}

// Adopt replaces the log's contents with a fork's — the promotion step after
// a speculative trial wins. The receiver keeps its own sink (and the hook
// closures previously handed out by Hooks() remain valid: they capture the
// *Log pointer, whose contents this rewrites). The fork must come from this
// log's Fork() and must no longer be in use by any worker.
func (l *Log) Adopt(f *Log) {
	l.MaxVersions = f.MaxVersions
	l.entries = f.entries
	l.order = f.order
	l.bySeq = f.bySeq
	l.seq = f.seq
	l.txSeq = f.txSeq
	l.inTx = f.inTx
	l.allocs = f.allocs
	l.allocOrder = f.allocOrder
	l.totalVersions = f.totalVersions
	if l.obsOn {
		l.sink.SetGauge("ckpt.entries", int64(len(l.entries)))
		l.sink.SetGauge("ckpt.total_versions", int64(l.totalVersions))
	}
	l.noteReversion()
}
