package checkpoint

import (
	"testing"
)

// A program that persists both a single field and the whole struct at the
// same base address must get independent version histories, so reverting
// the struct-wide entry restores the full span (paper Figure 5: entries
// carry address + size).
func TestDistinctSizesSameAddress(t *testing.T) {
	pool, log := newRig(3)
	root, _ := pool.Alloc(4)

	// Whole-struct persist: {count=0, ptr=111, len=16}.
	pool.Store(root, 0)
	pool.Store(root+1, 111)
	pool.Store(root+2, 16)
	pool.Persist(root, 3) // seq 1, entry (root, 3)

	// Field-only persist of count.
	pool.Store(root, 1)
	pool.Persist(root, 1) // seq 2, entry (root, 1)

	// Buggy whole-struct persist corrupting ptr.
	pool.Store(root+1, 2331)
	pool.Persist(root, 3) // seq 3, version 2 of entry (root, 3)

	if log.NumEntries() != 2 {
		t.Fatalf("entries = %d, want 2 (distinct sizes)", log.NumEntries())
	}

	// Reverting seq 3 must restore ptr=111 across the full 3-word span.
	if _, err := log.Revert(pool, 3); err != nil {
		t.Fatal(err)
	}
	ptr, _ := pool.Load(root + 1)
	if ptr != 111 {
		t.Fatalf("ptr after revert = %d, want 111", ptr)
	}
	ln, _ := pool.Load(root + 2)
	if ln != 16 {
		t.Fatalf("len after revert = %d, want 16", ln)
	}
}

func TestSeqsCoveringAcrossEntrySizes(t *testing.T) {
	pool, log := newRig(3)
	root, _ := pool.Alloc(4)
	pool.Store(root, 1)
	pool.Persist(root, 3) // seq 1 covers root..root+2
	pool.Store(root, 2)
	pool.Persist(root, 1) // seq 2 covers root only

	if got := log.SeqsCovering(root); len(got) != 2 {
		t.Fatalf("SeqsCovering(root) = %v, want both entries", got)
	}
	if got := log.SeqsCovering(root + 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SeqsCovering(root+1) = %v", got)
	}
}

func TestReallocLinksOldEntry(t *testing.T) {
	pool, log := newRig(3)
	a, _ := pool.Alloc(4)
	pool.Store(a, 5)
	pool.Persist(a, 1)
	pool.Free(a)
	b, _ := pool.Alloc(4) // allocator reuses the block
	if b != a {
		t.Skip("allocator did not reuse the address")
	}
	pool.Store(b, 9)
	pool.Store(b+1, 10)
	pool.Persist(b, 2) // new (addr, 2) entry at the reused address

	e := log.EntryBySeq(log.Seq())
	if e == nil {
		t.Fatal("no entry for latest seq")
	}
	if e.OldEntry == nil {
		t.Fatal("reallocated entry not linked to prior history via OldEntry")
	}
	if e.OldEntry.Addr != a {
		t.Fatalf("old entry addr = %#x, want %#x", e.OldEntry.Addr, a)
	}
}

func TestLiveVersionAccessor(t *testing.T) {
	pool, log := newRig(2)
	a, _ := pool.Alloc(1)
	pool.Store(a, 1)
	pool.Persist(a, 1)
	e := log.EntryAt(a)
	if v := e.LiveVersion(); v == nil || v.Data[0] != 1 {
		t.Fatalf("live = %+v", v)
	}
	// Reverting the oldest version kills the entry.
	log.Revert(pool, 1)
	if !e.Dead() || e.LiveVersion() != nil {
		t.Fatal("entry should be dead after reverting its only version")
	}
}
