package pmem

import (
	"errors"
	"testing"
)

// crashOnEvent returns a CrashFunc that crashes on the nth matching event
// (0-based), keeping the first keep words of it.
func crashOnEvent(kind DurKind, n, keep int) CrashFunc {
	seen := 0
	return func(ev DurEvent) (int, bool) {
		if ev.Kind != kind {
			return 0, false
		}
		if seen == n {
			seen++
			return keep, true
		}
		seen++
		return 0, false
	}
}

func TestInjectTornPersist(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	for w := uint64(0); w < 4; w++ {
		p.Store(a+w, 100+w)
	}
	// Crash mid-flush: only the first 2 of 4 words become durable.
	p.SetCrashFunc(crashOnEvent(DurPersist, 0, 2))
	if err := p.Persist(a, 4); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Persist = %v, want ErrCrashInjected", err)
	}
	if !p.CrashLatched() {
		t.Fatal("pool not latched after injected crash")
	}
	p.SetCrashFunc(nil)
	p.Crash()
	p.ResetCrashLatch()
	for w := uint64(0); w < 4; w++ {
		v, _ := p.Load(a + w)
		want := uint64(0)
		if w < 2 {
			want = 100 + w
		}
		if v != want {
			t.Fatalf("word %d after torn persist = %d, want %d", w, v, want)
		}
	}
}

func TestInjectPersistHookSuppressed(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	var hookFired int
	p.SetHooks(Hooks{OnPersist: func(addr uint64, data []uint64) { hookFired++ }})
	p.Store(a, 7)

	// keep == Words: the flush itself completed, but the crash lands before
	// the checkpoint hook — the data is durable yet the log must not know.
	p.SetCrashFunc(crashOnEvent(DurPersist, 0, 1))
	if err := p.Persist(a, 1); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Persist = %v, want ErrCrashInjected", err)
	}
	if hookFired != 0 {
		t.Fatalf("persist hook fired %d times after injected crash", hookFired)
	}
	p.SetCrashFunc(nil)
	p.Crash()
	p.ResetCrashLatch()
	if v, _ := p.Load(a); v != 7 {
		t.Fatalf("completed flush lost: %d", v)
	}
}

func TestInjectTornTx(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	b, _ := p.Alloc(2)
	p.Store(a, 1)
	p.Store(a+1, 2)
	p.Store(b, 3)
	p.Store(b+1, 4)

	var persists, commits int
	p.SetHooks(Hooks{
		OnPersist:  func(addr uint64, data []uint64) { persists++ },
		OnTxCommit: func() { commits++ },
	})
	// Crash on the second range of the commit, tearing it at 1 of 2 words:
	// range a fully durable (hook fired), range b half durable (hook
	// suppressed), no commit bracket.
	p.SetCrashFunc(crashOnEvent(DurTxRange, 1, 1))
	err := p.PersistTx([]Range{{a, 2}, {b, 2}})
	if !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("PersistTx = %v, want ErrCrashInjected", err)
	}
	if persists != 1 {
		t.Fatalf("persist hooks fired %d times, want 1 (completed range only)", persists)
	}
	if commits != 0 {
		t.Fatal("commit hook fired for a torn transaction")
	}
	p.SetCrashFunc(nil)
	p.Crash()
	p.ResetCrashLatch()
	for i, want := range []struct {
		addr uint64
		val  uint64
	}{{a, 1}, {a + 1, 2}, {b, 3}, {b + 1, 0}} {
		if v, _ := p.Load(want.addr); v != want.val {
			t.Fatalf("word %d = %d, want %d", i, v, want.val)
		}
	}
}

func TestInjectLatchFailsFast(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	p.Store(a, 5)
	p.SetCrashFunc(crashOnEvent(DurPersist, 0, 0))
	if err := p.Persist(a, 1); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Persist = %v", err)
	}
	// Every later durability operation fails fast without changing durable
	// state; volatile loads/stores still work.
	if err := p.Persist(a, 1); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("second Persist = %v", err)
	}
	if err := p.PersistTx([]Range{{a, 1}}); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("PersistTx = %v", err)
	}
	if _, err := p.Alloc(1); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Alloc = %v", err)
	}
	if err := p.Free(a); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Free = %v", err)
	}
	if err := p.SetRoot(0, a); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("SetRoot = %v", err)
	}
	if err := p.Store(a, 9); err != nil {
		t.Fatalf("volatile store failed under latch: %v", err)
	}
	if v, err := p.Load(a); err != nil || v != 9 {
		t.Fatalf("volatile load under latch = %d, %v", v, err)
	}
	before, _ := p.ReadDurable(a)
	p.Crash()
	p.ResetCrashLatch()
	after, _ := p.Load(a)
	if after != before {
		t.Fatalf("latched operations leaked into durable state: %d vs %d", after, before)
	}
}

func TestInjectMetaEventsObserved(t *testing.T) {
	p := New(256)
	var kinds []DurKind
	p.SetCrashFunc(func(ev DurEvent) (int, bool) {
		kinds = append(kinds, ev.Kind)
		return 0, false
	})
	a, _ := p.Alloc(2)
	p.Store(a, 1)
	p.Persist(a, 1)
	p.Free(a)
	p.SetCrashFunc(nil)

	var meta, persist int
	for _, k := range kinds {
		switch k {
		case DurMeta:
			meta++
		case DurPersist:
			persist++
		}
	}
	if meta < 4 {
		t.Fatalf("alloc+free produced only %d meta events: %v", meta, kinds)
	}
	if persist != 1 {
		t.Fatalf("%d persist events, want 1: %v", persist, kinds)
	}
}

func TestInjectKeepClamped(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	for w := uint64(0); w < 4; w++ {
		p.Store(a+w, 1)
	}
	// keep beyond the event width or negative must clamp, not panic.
	for _, keep := range []int{-5, 99} {
		q := New(256)
		b, _ := q.Alloc(4)
		for w := uint64(0); w < 4; w++ {
			q.Store(b+w, 1)
		}
		q.SetCrashFunc(crashOnEvent(DurPersist, 0, keep))
		if err := q.Persist(b, 4); !errors.Is(err, ErrCrashInjected) {
			t.Fatalf("keep=%d: %v", keep, err)
		}
	}
	_ = a
}
