package pmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestMediaChecksumsMaintainedByNormalOperation(t *testing.T) {
	p := New(1024)
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("fresh pool fails media verification: %v", merr)
	}
	a, _ := p.Alloc(8)
	for w := uint64(0); w < 8; w++ {
		p.Store(a+w, 100+w)
	}
	p.Persist(a, 8)
	p.SetRoot(0, a)
	b, _ := p.Alloc(3)
	p.Store(b, 7)
	p.Persist(b, 1)
	p.Free(b)
	p.Store(a, 999) // dirty, unpersisted
	p.Crash()
	p.ResetCrashLatch()
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("media verification failed after normal ops: %v", merr)
	}
	if v, err := p.Load(a); err != nil || v != 100 {
		t.Fatalf("Load(a) = %d, %v", v, err)
	}
}

func TestMediaFaultDetectedOnLoad(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 42)
	p.Persist(a, 4)
	r, err := p.InjectMediaFault(MediaFault{Kind: MediaBitFlip, Addr: a, Bits: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if r.Words != 1 || r.Addr != a {
		t.Fatalf("fault range = %+v", r)
	}
	_, err = p.Load(a)
	if !errors.Is(err, ErrMediaCorrupt) {
		t.Fatalf("Load after media fault: err = %v, want ErrMediaCorrupt", err)
	}
	var merr *MediaError
	if !errors.As(err, &merr) || len(merr.Ranges) != 1 {
		t.Fatalf("error is not a *MediaError with one range: %v", err)
	}
	blk := MediaBlockOf(a)
	got := merr.Ranges[0]
	if got != p.MediaBlockRange(blk) {
		t.Fatalf("poisoned range %v, want block %d range %v", got, blk, p.MediaBlockRange(blk))
	}
	// A load from a different, clean media block still works.
	if _, err := p.Root(0); err != nil {
		t.Fatalf("clean header block unreadable: %v", err)
	}
}

func TestMediaFaultKindsAllBreakSeals(t *testing.T) {
	kinds := []MediaFault{
		{Kind: MediaBitFlip, Bits: 1},
		{Kind: MediaStuckWord, Words: 3, Value: 0xFFFF_FFFF_FFFF_FFFF},
		{Kind: MediaStrayWrite, Words: 2},
		{Kind: MediaBlockPoison, Seed: 99},
	}
	for _, f := range kinds {
		t.Run(f.Kind.String(), func(t *testing.T) {
			p := New(1024)
			a, _ := p.Alloc(16)
			for w := uint64(0); w < 16; w++ {
				p.Store(a+w, 0x1000+w)
			}
			p.Persist(a, 16)
			f.Addr = a + 2
			if _, err := p.InjectMediaFault(f); err != nil {
				t.Fatal(err)
			}
			merr := p.VerifyMedia()
			if merr == nil {
				t.Fatalf("%v did not break any seal", f.Kind)
			}
			if len(p.CorruptMediaBlocks()) == 0 {
				t.Fatal("no corrupt blocks reported")
			}
		})
	}
}

func TestMediaFaultDeterministic(t *testing.T) {
	build := func() *Pool {
		p := New(512)
		a, _ := p.Alloc(8)
		for w := uint64(0); w < 8; w++ {
			p.Store(a+w, 5*w)
		}
		p.Persist(a, 8)
		p.InjectMediaFault(MediaFault{Kind: MediaBlockPoison, Addr: a, Seed: 1234})
		return p
	}
	p1, p2 := build(), build()
	for i := 0; i < p1.words; i++ {
		if p1.durAt(i) != p2.durAt(i) {
			t.Fatalf("same seed diverged at word %d: %#x vs %#x", i, p1.durAt(i), p2.durAt(i))
		}
	}
}

func TestInjectBitFlipStaysChecksumTransparent(t *testing.T) {
	// The paper's pre-write-back fault model: the flipped value was
	// checksummed like any other store, so the media layer must NOT flag it
	// (only checkpoint-log reversion can heal it).
	p := New(512)
	a, _ := p.Alloc(2)
	p.Store(a, 4096)
	p.Persist(a, 1)
	if err := p.InjectBitFlip(a, 3, true); err != nil {
		t.Fatal(err)
	}
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("InjectBitFlip broke a media seal: %v", merr)
	}
	if v, err := p.Load(a); err != nil || v != 4096^8 {
		t.Fatalf("Load = %d, %v", v, err)
	}
}

func TestMediaRepairHealsWithGroundTruth(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(8)
	orig := make(map[uint64]uint64)
	for w := uint64(0); w < 8; w++ {
		p.Store(a+w, 7000+w)
		orig[a+w] = 7000 + w
	}
	p.Persist(a, 8)
	if _, err := p.InjectMediaFault(MediaFault{Kind: MediaStuckWord, Addr: a + 1, Words: 4, Value: 0xBAD}); err != nil {
		t.Fatal(err)
	}
	reps := p.RepairMedia(
		[]AllocHint{{Addr: a, Words: 8}},
		func(addr uint64) (uint64, bool) { v, ok := orig[addr]; return v, ok },
	)
	if len(reps) != 1 || !reps[0].Healed || reps[0].RepairedWords == 0 {
		t.Fatalf("repairs = %+v", reps)
	}
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("pool still corrupt after heal: %v", merr)
	}
	for w := uint64(0); w < 8; w++ {
		if v, err := p.Load(a + w); err != nil || v != 7000+w {
			t.Fatalf("word %d after heal = %d, %v", w, v, err)
		}
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("integrity after heal: %v", rep)
	}
}

func TestMediaRepairQuarantinesUnreconstructible(t *testing.T) {
	p := New(4096)
	a, _ := p.Alloc(200) // spans multiple media blocks
	for w := uint64(0); w < 200; w++ {
		p.Store(a+w, w)
	}
	p.Persist(a, 200)
	// Poison a payload-interior block and offer NO checkpointed values: the
	// original contents are unreconstructible, so the block must be fenced.
	target := a + 3*MediaBlockWords
	blk := MediaBlockOf(target)
	if blk == 0 {
		t.Fatal("setup: target landed in header block")
	}
	if _, err := p.InjectMediaFault(MediaFault{Kind: MediaBlockPoison, Addr: target, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	reps := p.RepairMedia([]AllocHint{{Addr: a, Words: 200}}, nil)
	if len(reps) != 1 || !reps[0].Quarantined {
		t.Fatalf("repairs = %+v", reps)
	}
	if !p.IsQuarantined(blk) {
		t.Fatalf("block %d not quarantined", blk)
	}
	// The quarantined block is resealed: reads stop erroring, the pool
	// verifies, and the allocator never hands the region out again.
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("pool does not verify after quarantine: %v", merr)
	}
	lo := Base + uint64(blk*MediaBlockWords)
	hi := lo + MediaBlockWords
	for i := 0; i < 40; i++ {
		na, err := p.Alloc(10)
		if err != nil {
			break // out of space is fine — just never overlap
		}
		if na+10 > lo && na < hi {
			t.Fatalf("Alloc handed out %#x inside quarantined block [%#x,%#x)", na, lo, hi)
		}
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("integrity after quarantine fills: %v", rep)
	}
}

func TestMediaRepairHeaderBlockDegrades(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 5)
	p.Persist(a, 1)
	p.SetRoot(0, a)
	// Poison the header block; roots are not reconstructible without a log,
	// so repair must reseal block 0 and latch the degraded flag rather than
	// fail or quarantine the header.
	if _, err := p.InjectMediaFault(MediaFault{Kind: MediaBlockPoison, Addr: Base + hdrRootBase, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	reps := p.RepairMedia(nil, nil)
	if len(reps) != 1 || !reps[0].Degraded {
		t.Fatalf("repairs = %+v", reps)
	}
	if !p.MediaDegraded() {
		t.Fatal("degraded flag not latched")
	}
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("pool does not verify in degraded mode: %v", merr)
	}
}

func TestQuarantineFillerBlocksAreInert(t *testing.T) {
	p := New(2048)
	a, _ := p.Alloc(4)
	p.Store(a, 1)
	p.Persist(a, 1)
	// Quarantine the media block just past the current bump pointer, then
	// allocate through it: the allocator must carve a filler and keep the
	// heap walkable.
	next := int(p.durAt(hdrHeapNext))
	blk := next/MediaBlockWords + 1
	if err := p.QuarantineMediaBlock(blk); err != nil {
		t.Fatal(err)
	}
	if err := p.QuarantineMediaBlock(0); err == nil {
		t.Fatal("quarantining the header block must fail")
	}
	liveBefore := len(p.LiveBlocks())
	var got []uint64
	for i := 0; i < 10; i++ {
		na, err := p.Alloc(30)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		lo := Base + uint64(blk*MediaBlockWords)
		if na+30 > lo && na < lo+MediaBlockWords {
			t.Fatalf("allocation %#x overlaps quarantined block %d", na, blk)
		}
		got = append(got, na)
	}
	if len(p.LiveBlocks()) != liveBefore+10 {
		t.Fatalf("LiveBlocks counts fillers: %d, want %d", len(p.LiveBlocks()), liveBefore+10)
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("integrity with filler blocks: %v", rep)
	}
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("media verification with filler blocks: %v", merr)
	}
	for _, na := range got {
		if err := p.Free(na); err != nil {
			t.Fatalf("free %#x: %v", na, err)
		}
	}
	// Freed blocks bordering the quarantine go back on the free list, but
	// re-allocation still never returns quarantined words.
	for i := 0; i < 10; i++ {
		na, err := p.Alloc(30)
		if err != nil {
			t.Fatalf("re-alloc %d: %v", i, err)
		}
		lo := Base + uint64(blk*MediaBlockWords)
		if na+30 > lo && na < lo+MediaBlockWords {
			t.Fatalf("re-allocation %#x overlaps quarantined block %d", na, blk)
		}
	}
}

func TestPoolFileV3RoundTripsMediaState(t *testing.T) {
	p := New(2048)
	a, _ := p.Alloc(4)
	p.Store(a, 11)
	p.Persist(a, 1)
	blk := int(p.durAt(hdrHeapNext))/MediaBlockWords + 2
	if err := p.QuarantineMediaBlock(blk); err != nil {
		t.Fatal(err)
	}
	p.SetMediaDegraded()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatalf("v3 round trip: %v", err)
	}
	if q.FormatVersion() != 3 {
		t.Fatalf("format version = %d", q.FormatVersion())
	}
	if !q.IsQuarantined(blk) {
		t.Fatal("quarantine set lost in round trip")
	}
	if !q.MediaDegraded() {
		t.Fatal("degraded flag lost in round trip")
	}
	if merr := q.VerifyMedia(); merr != nil {
		t.Fatalf("round-tripped pool fails verification: %v", merr)
	}
	for b := 0; b < p.MediaBlocks(); b++ {
		if p.MediaChecksum(b) != q.MediaChecksum(b) {
			t.Fatalf("checksum of block %d changed in round trip", b)
		}
	}
}

func TestPoolFileDetectsOnDiskCorruption(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 42)
	p.Persist(a, 1)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit of the durable payload INSIDE the serialized file — rot
	// that happened on the medium, not through any pool API.
	raw := buf.Bytes()
	off := 24 + 8*int(a-Base)
	raw[off] ^= 0x40

	q, err := ReadPool(bytes.NewReader(raw))
	if !errors.Is(err, ErrMediaCorrupt) {
		t.Fatalf("err = %v, want ErrMediaCorrupt", err)
	}
	if q == nil {
		t.Fatal("pool not returned alongside the media error (scrubber needs it)")
	}
	var merr *MediaError
	if !errors.As(err, &merr) {
		t.Fatalf("error is not a *MediaError: %v", err)
	}
	// The scrubber's contract end to end: repair with ground truth, then a
	// fresh verification passes and the word reads back correctly.
	reps := q.RepairMedia(
		[]AllocHint{{Addr: a, Words: 4}},
		func(addr uint64) (uint64, bool) {
			if addr == a {
				return 42, true
			}
			return 0, false
		},
	)
	if len(reps) != 1 || !reps[0].Healed {
		t.Fatalf("repairs = %+v", reps)
	}
	if merr := q.VerifyMedia(); merr != nil {
		t.Fatalf("still corrupt after repair: %v", merr)
	}
	if v, err := q.Load(a); err != nil || v != 42 {
		t.Fatalf("Load after repair = %d, %v", v, err)
	}
}

func TestPoolFileReadsV2ImagesBackfillingChecksums(t *testing.T) {
	p := New(128)
	a, _ := p.Alloc(2)
	p.Store(a, 77)
	p.Persist(a, 1)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A v2 file is the v3 file truncated before the media section (this pool
	// has no flight recorder, so the flight section is just its zero length).
	v2 := buf.Bytes()[:24+8*128+8+7*8+8]
	binary.LittleEndian.PutUint64(v2[8:], 2) // rewrite version field

	q, err := ReadPool(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 image rejected: %v", err)
	}
	if q.FormatVersion() != 2 {
		t.Fatalf("format version = %d", q.FormatVersion())
	}
	if v, _ := q.Load(a); v != 77 {
		t.Fatalf("payload = %d", v)
	}
	if merr := q.VerifyMedia(); merr != nil {
		t.Fatalf("backfilled checksums do not verify: %v", merr)
	}
	if q.MediaBlocks() == 0 || len(q.QuarantinedBlocks()) != 0 || q.MediaDegraded() {
		t.Fatalf("unexpected media state on v2 read: %+v", q.Info())
	}
}

func TestPoolFileTruncatedMediaSection(t *testing.T) {
	p := New(128)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{8, 16, 24} {
		if _, err := ReadPool(bytes.NewReader(raw[:len(raw)-cut])); !errors.Is(err, ErrTruncatedImage) {
			t.Fatalf("cut %d: err = %v, want ErrTruncatedImage", cut, err)
		}
	}
}

func TestMediaInfoFields(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(4)
	p.Store(a, 9)
	p.Persist(a, 1)
	info := p.Info()
	if info.MediaBlocks != p.MediaBlocks() || len(info.CorruptBlocks) != 0 {
		t.Fatalf("info media fields: %+v", info)
	}
	p.InjectMediaFault(MediaFault{Kind: MediaBitFlip, Addr: a})
	info = p.Info()
	if len(info.CorruptBlocks) != 1 || info.CorruptBlocks[0] != MediaBlockOf(a) {
		t.Fatalf("corrupt blocks = %v", info.CorruptBlocks)
	}
}

func TestSetMediaMaintenanceToggle(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.SetMediaMaintenance(false)
	p.Store(a, 123)
	p.Persist(a, 1)
	p.SetMediaMaintenance(true) // reseals
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("reseal after maintenance toggle failed: %v", merr)
	}
	p.Store(a+1, 456)
	p.Persist(a+1, 1)
	if merr := p.VerifyMedia(); merr != nil {
		t.Fatalf("incremental maintenance broken after toggle: %v", merr)
	}
}
