package pmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPoolHeader(t *testing.T) {
	p := New(1024)
	if p.Words() != 1024 {
		t.Fatalf("Words = %d, want 1024", p.Words())
	}
	if !p.CheckIntegrity().OK() {
		t.Fatalf("fresh pool fails integrity: %v", p.CheckIntegrity())
	}
	if p.LiveWords() != 0 {
		t.Fatalf("fresh pool LiveWords = %d", p.LiveWords())
	}
}

func TestNewPoolMinimumSize(t *testing.T) {
	p := New(1)
	if p.Words() < 64 {
		t.Fatalf("pool smaller than minimum: %d", p.Words())
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := New(256)
	a, err := p.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Store(a+2, 0xdead); err != nil {
		t.Fatal(err)
	}
	v, err := p.Load(a + 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdead {
		t.Fatalf("Load = %#x, want 0xdead", v)
	}
}

func TestOutOfBounds(t *testing.T) {
	p := New(256)
	cases := []uint64{0, 1, Base - 1, Base + 256, Base + 1000000}
	for _, addr := range cases {
		if _, err := p.Load(addr); !errors.Is(err, ErrOutOfBounds) {
			t.Errorf("Load(%#x) err = %v, want ErrOutOfBounds", addr, err)
		}
		if err := p.Store(addr, 1); !errors.Is(err, ErrOutOfBounds) {
			t.Errorf("Store(%#x) err = %v, want ErrOutOfBounds", addr, err)
		}
	}
}

func TestStoreIsVolatileUntilPersist(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	if err := p.Store(a, 42); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	v, _ := p.Load(a)
	if v == 42 {
		t.Fatal("unpersisted store survived crash")
	}
}

func TestPersistSurvivesCrash(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	p.Store(a, 42)
	p.Store(a+1, 43)
	if err := p.Persist(a, 2); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	v0, _ := p.Load(a)
	v1, _ := p.Load(a + 1)
	if v0 != 42 || v1 != 43 {
		t.Fatalf("persisted stores lost: %d, %d", v0, v1)
	}
}

func TestPartialPersist(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(3)
	p.Store(a, 1)
	p.Store(a+1, 2)
	p.Store(a+2, 3)
	p.Persist(a, 2) // only first two words
	p.Crash()
	v2, _ := p.Load(a + 2)
	if v2 == 3 {
		t.Fatal("word outside persist range survived crash")
	}
	v0, _ := p.Load(a)
	if v0 != 1 {
		t.Fatal("persisted word lost")
	}
}

func TestDirtyTracking(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.Store(a, 1)
	p.Store(a+1, 2)
	if got := p.DirtyWords(); got != 2 {
		t.Fatalf("DirtyWords = %d, want 2", got)
	}
	p.Persist(a, 1)
	if got := p.DirtyWords(); got != 1 {
		t.Fatalf("DirtyWords after partial persist = %d, want 1", got)
	}
	p.Crash()
	if got := p.DirtyWords(); got != 0 {
		t.Fatalf("DirtyWords after crash = %d, want 0", got)
	}
}

func TestRootSlots(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	if err := p.SetRoot(0, a); err != nil {
		t.Fatal(err)
	}
	p.Crash() // roots are durable immediately
	got, err := p.Root(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("Root = %#x, want %#x", got, a)
	}
	if err := p.SetRoot(-1, a); !errors.Is(err, ErrBadRoot) {
		t.Fatalf("SetRoot(-1) err = %v", err)
	}
	if _, err := p.Root(NumRoots); !errors.Is(err, ErrBadRoot) {
		t.Fatalf("Root(NumRoots) err = %v", err)
	}
}

func TestAllocDistinct(t *testing.T) {
	p := New(4096)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		a, err := p.Alloc(3)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("Alloc returned duplicate address %#x", a)
		}
		seen[a] = true
	}
}

func TestZallocZeroes(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(8)
	for w := uint64(0); w < 8; w++ {
		p.Store(a+w, ^uint64(0))
	}
	p.Persist(a, 8)
	p.Free(a)
	b, err := p.Zalloc(8)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 8; w++ {
		v, _ := p.Load(b + w)
		if v != 0 {
			t.Fatalf("Zalloc word %d = %#x, want 0", w, v)
		}
	}
	// And the zeroing is durable.
	p.Crash()
	for w := uint64(0); w < 8; w++ {
		v, _ := p.Load(b + w)
		if v != 0 {
			t.Fatalf("Zalloc word %d not durable-zero after crash", w)
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(10)
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("freed block not reused: got %#x, want %#x", b, a)
	}
}

func TestFreeSplitting(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(20)
	p.Free(a)
	b, _ := p.Alloc(5) // should split the 20-word block
	c, err := p.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if b == c {
		t.Fatal("two live allocations share an address")
	}
	if !p.CheckIntegrity().OK() {
		t.Fatalf("integrity after split: %v", p.CheckIntegrity())
	}
}

func TestDoubleFree(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free err = %v, want ErrBadFree", err)
	}
}

func TestFreeBogusAddress(t *testing.T) {
	p := New(256)
	if err := p.Free(Base + 2); !errors.Is(err, ErrBadFree) {
		t.Fatalf("free header-region addr err = %v", err)
	}
	if err := p.Free(123); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("free non-pool addr err = %v", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	p := New(128)
	var lastErr error
	for i := 0; i < 1000; i++ {
		_, lastErr = p.Alloc(8)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrOutOfSpace) {
		t.Fatalf("expected ErrOutOfSpace, got %v", lastErr)
	}
}

func TestLiveWordsAccounting(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(10)
	b, _ := p.Alloc(20)
	if got := p.LiveWords(); got != 30 {
		t.Fatalf("LiveWords = %d, want 30", got)
	}
	p.Free(a)
	if got := p.LiveWords(); got != 20 {
		t.Fatalf("LiveWords after free = %d, want 20", got)
	}
	p.Free(b)
	if got := p.LiveWords(); got != 0 {
		t.Fatalf("LiveWords after all frees = %d, want 0", got)
	}
}

func TestLiveBlocksEnumeration(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(3)
	b, _ := p.Alloc(4)
	c, _ := p.Alloc(5)
	p.Free(b)
	blocks := p.LiveBlocks()
	if len(blocks) != 2 || blocks[0] != a || blocks[1] != c {
		t.Fatalf("LiveBlocks = %#v, want [%#x %#x]", blocks, a, c)
	}
}

func TestAllocatorSurvivesCrash(t *testing.T) {
	p := New(1024)
	a, _ := p.Alloc(10)
	p.Crash()
	if !p.IsAllocated(a) {
		t.Fatal("allocation metadata lost in crash")
	}
	b, err := p.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	aEnd := a + 10
	if b >= a && b < aEnd {
		t.Fatal("post-crash allocation overlaps pre-crash block")
	}
	if !p.CheckIntegrity().OK() {
		t.Fatalf("integrity after crash: %v", p.CheckIntegrity())
	}
}

func TestBlockSize(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(7)
	n, err := p.BlockSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("BlockSize = %d, want 7", n)
	}
	p.Free(a)
	if _, err := p.BlockSize(a); err == nil {
		t.Fatal("BlockSize of freed block succeeded")
	}
}

func TestPersistHookFires(t *testing.T) {
	p := New(256)
	var gotAddr uint64
	var gotData []uint64
	p.SetHooks(Hooks{OnPersist: func(addr uint64, data []uint64) {
		gotAddr = addr
		gotData = append([]uint64(nil), data...)
	}})
	a, _ := p.Alloc(2)
	p.Store(a, 7)
	p.Store(a+1, 8)
	p.Persist(a, 2)
	if gotAddr != a {
		t.Fatalf("hook addr = %#x, want %#x", gotAddr, a)
	}
	if len(gotData) != 2 || gotData[0] != 7 || gotData[1] != 8 {
		t.Fatalf("hook data = %v", gotData)
	}
}

func TestAllocatorMetaDoesNotFireHooks(t *testing.T) {
	p := New(256)
	calls := 0
	var lastAddr uint64
	p.SetHooks(Hooks{OnPersist: func(addr uint64, _ []uint64) { calls++; lastAddr = addr }})
	a, _ := p.Zalloc(4)
	p.Free(a)
	if calls != 0 {
		t.Fatalf("allocator metadata fired %d persist hooks", calls)
	}
	// Root slots are the exception: they hold program data (the durable
	// entry points), so SetRoot checkpoints exactly its one slot.
	p.SetRoot(0, a)
	if calls != 1 || lastAddr != Base+uint64(hdrRootBase) {
		t.Fatalf("SetRoot fired %d hooks (last addr %#x), want 1 at root slot", calls, lastAddr)
	}
}

func TestTxHooksBracket(t *testing.T) {
	p := New(256)
	var events []string
	p.SetHooks(Hooks{
		OnPersist:  func(addr uint64, data []uint64) { events = append(events, "persist") },
		OnTxBegin:  func() { events = append(events, "begin") },
		OnTxCommit: func() { events = append(events, "commit") },
	})
	a, _ := p.Alloc(4)
	p.Store(a, 1)
	p.Store(a+2, 2)
	err := p.PersistTx([]Range{{a, 1}, {a + 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"begin", "persist", "persist", "commit"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestPersistTxDurability(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.Store(a, 11)
	p.Store(a+3, 22)
	if err := p.PersistTx([]Range{{a, 1}, {a + 3, 1}}); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	v0, _ := p.Load(a)
	v3, _ := p.Load(a + 3)
	if v0 != 11 || v3 != 22 {
		t.Fatalf("tx-committed values lost: %d %d", v0, v3)
	}
}

func TestPersistTxBadRange(t *testing.T) {
	p := New(256)
	if err := p.PersistTx([]Range{{Base + 1000, 4}}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("PersistTx OOB err = %v", err)
	}
}

func TestInjectBitFlip(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(1)
	p.Store(a, 0)
	p.Persist(a, 1)
	p.InjectBitFlip(a, 3, true)
	v, _ := p.Load(a)
	if v != 8 {
		t.Fatalf("after flip, Load = %d, want 8", v)
	}
	p.Crash()
	v, _ = p.Load(a)
	if v != 8 {
		t.Fatal("durable bit flip did not survive crash")
	}
}

func TestTransientBitFlip(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(1)
	p.Store(a, 0)
	p.Persist(a, 1)
	p.InjectBitFlip(a, 3, false)
	p.Crash()
	v, _ := p.Load(a)
	if v != 0 {
		t.Fatal("transient bit flip survived crash")
	}
}

func TestWriteDurable(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(1)
	p.Store(a, 5)
	p.Persist(a, 1)
	if err := p.WriteDurable(a, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := p.Load(a)
	if v != 99 {
		t.Fatalf("current image after WriteDurable = %d", v)
	}
	p.Crash()
	v, _ = p.Load(a)
	if v != 99 {
		t.Fatalf("durable image after WriteDurable+crash = %d", v)
	}
	d, _ := p.ReadDurable(a)
	if d != 99 {
		t.Fatalf("ReadDurable = %d", d)
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	p.Store(a, 1)
	p.Persist(a, 1)
	snap := p.TakeSnapshot(7)
	if snap.Seq != 7 {
		t.Fatalf("snap.Seq = %d", snap.Seq)
	}
	p.Store(a, 2)
	p.Persist(a, 1)
	if p.DiffWords(snap) != 1 {
		t.Fatalf("DiffWords = %d, want 1", p.DiffWords(snap))
	}
	if err := p.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	v, _ := p.Load(a)
	if v != 1 {
		t.Fatalf("after restore, Load = %d, want 1", v)
	}
}

func TestSnapshotExcludesDirty(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(1)
	p.Store(a, 77) // not persisted
	snap := p.TakeSnapshot(0)
	idx := int(a - Base)
	if snap.Durable[idx] == 77 {
		t.Fatal("snapshot captured an unpersisted store")
	}
}

func TestSnapshotSizeMismatch(t *testing.T) {
	p := New(256)
	q := New(512)
	if err := q.RestoreSnapshot(p.TakeSnapshot(0)); err == nil {
		t.Fatal("restoring mismatched snapshot succeeded")
	}
}

func TestIntegrityDetectsCorruptHeader(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	// Smash the block header durably (size 0).
	p.WriteDurable(a-1, 0)
	if p.CheckIntegrity().OK() {
		t.Fatal("integrity check missed corrupt header")
	}
}

func TestIntegrityDetectsFreeListCycle(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	b, _ := p.Alloc(4)
	p.Free(a)
	p.Free(b)
	// Point b's next at itself: cycle.
	p.WriteDurable(b, b-Base)
	if p.CheckIntegrity().OK() {
		t.Fatal("integrity check missed free list cycle")
	}
}

func TestStatsCounters(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(2)
	p.Store(a, 1)
	p.Load(a)
	p.Persist(a, 2)
	p.Free(a)
	p.Crash()
	s := p.Stats()
	if s.Allocs != 1 || s.Frees != 1 || s.Stores != 1 || s.Loads != 1 || s.Persists != 1 || s.Crashes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PersistedWords.Words != 2 {
		t.Fatalf("persisted words = %d", s.PersistedWords.Words)
	}
}

func TestRangeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{Base, 4}, Range{Base + 4, 4}, false},
		{Range{Base, 4}, Range{Base + 3, 4}, true},
		{Range{Base + 3, 4}, Range{Base, 4}, true},
		{Range{Base, 4}, Range{Base + 1, 1}, true},
		{Range{Base, 0}, Range{Base, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// --- Property-based tests ---

// Property: any persisted store survives a crash; any unpersisted store does
// not (assuming distinct addresses and a fresh pool per trial).
func TestPropPersistSurvival(t *testing.T) {
	f := func(vals []uint64, persistMask uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		p := New(256)
		a, err := p.Alloc(len(vals))
		if err != nil {
			return true
		}
		for i, v := range vals {
			p.Store(a+uint64(i), v)
			if persistMask&(1<<uint(i)) != 0 {
				p.Persist(a+uint64(i), 1)
			}
		}
		p.Crash()
		for i, v := range vals {
			got, _ := p.Load(a + uint64(i))
			persisted := persistMask&(1<<uint(i)) != 0
			if persisted && got != v {
				return false
			}
			if !persisted && got != 0 && got == v && v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: live allocations never overlap each other, regardless of the
// interleaving of allocs and frees.
func TestPropAllocNonOverlap(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(4096)
		type block struct {
			addr uint64
			size int
		}
		var live []block
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// free a random live block
				i := rng.Intn(len(live))
				if p.Free(live[i].addr) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := 1 + int(op%7)
			a, err := p.Alloc(size)
			if err != nil {
				continue // pool exhausted is fine
			}
			na := Range{a, size}
			for _, b := range live {
				if na.Overlaps(Range{b.addr, b.size}) {
					return false
				}
			}
			live = append(live, block{a, size})
		}
		return p.CheckIntegrity().OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot + restore is an identity on the durable image.
func TestPropSnapshotRoundTrip(t *testing.T) {
	f := func(writes []uint16, vals []uint64) bool {
		p := New(1024)
		a, err := p.Alloc(512)
		if err != nil {
			return true
		}
		n := len(writes)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			addr := a + uint64(writes[i]%512)
			p.Store(addr, vals[i])
			p.Persist(addr, 1)
		}
		snap := p.TakeSnapshot(0)
		// Scribble.
		for i := 0; i < n; i++ {
			addr := a + uint64(writes[i]%512)
			p.Store(addr, ^vals[i])
			p.Persist(addr, 1)
		}
		if err := p.RestoreSnapshot(snap); err != nil {
			return false
		}
		return p.DiffWords(snap) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: crash is idempotent — two crashes in a row observe the same image.
func TestPropCrashIdempotent(t *testing.T) {
	f := func(vals []uint64) bool {
		p := New(512)
		a, err := p.Alloc(64)
		if err != nil {
			return true
		}
		for i, v := range vals {
			if i >= 64 {
				break
			}
			p.Store(a+uint64(i), v)
			if i%2 == 0 {
				p.Persist(a+uint64(i), 1)
			}
		}
		p.Crash()
		img1 := p.TakeSnapshot(0)
		p.Crash()
		return p.DiffWords(img1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
