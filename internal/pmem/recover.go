package pmem

import "fmt"

// Open-time allocator metadata recovery.
//
// The allocator keeps its metadata crash-consistent one word at a time, but
// several operations update MORE than one metadata word (Free rewrites the
// block header, the free-list link, the list head, and the live-words
// counter; Alloc's split path rewrites two headers, a link, and the
// counter). A crash between — or, with torn flushes, inside — those
// persists leaves states that are perfectly reconstructible from the block
// chain but violate the strict invariants CheckIntegrity enforces:
//
//   - a block durably marked free before it was durably linked into the
//     free list ("free block not on free list", with a possibly stale link
//     word);
//   - a durable allocation or free whose live-words counter update did not
//     complete ("live-words accounting" mismatch).
//
// Real PM allocators (PMDK's palloc) run exactly this kind of recovery on
// pool open. RecoverMeta is that step: it re-derives the free list and the
// live-words counter from the block chain — the single source of truth —
// and durably rewrites them. Damage the chain itself cannot explain
// (unwalkable headers, a bad magic) is fatal and reported, never "fixed".

// RecoverReport describes what RecoverMeta did.
type RecoverReport struct {
	// Fixed lists recoverable inconsistencies that were repaired.
	Fixed []string
	// Fatal lists corruption that recovery cannot repair; when non-empty
	// the pool was left untouched.
	Fatal []string
}

// OK reports whether the pool is usable (no fatal corruption).
func (r *RecoverReport) OK() bool { return len(r.Fatal) == 0 }

// Clean reports whether no repairs were needed at all.
func (r *RecoverReport) Clean() bool { return len(r.Fixed) == 0 && len(r.Fatal) == 0 }

func (r *RecoverReport) String() string {
	if r.Clean() {
		return "pool recovery: clean"
	}
	s := fmt.Sprintf("pool recovery: %d fixed, %d fatal", len(r.Fixed), len(r.Fatal))
	for _, f := range r.Fixed {
		s += "\n  fixed: " + f
	}
	for _, f := range r.Fatal {
		s += "\n  FATAL: " + f
	}
	return s
}

// RecoverMeta repairs recoverable allocator-metadata inconsistencies in the
// pool, durably. It must run on a freshly crashed/opened pool (current
// image == durable image) with no crash-injection hook armed. Consistent
// pools are untouched; the call is idempotent.
func (p *Pool) RecoverMeta() *RecoverReport {
	r := &RecoverReport{}
	if p.curAt(hdrMagic) != magicValue {
		r.Fatal = append(r.Fatal, fmt.Sprintf("bad magic %#x", p.curAt(hdrMagic)))
		return r
	}
	heapNext := int(p.curAt(hdrHeapNext))
	if heapNext < heapStart || heapNext > p.words {
		r.Fatal = append(r.Fatal, fmt.Sprintf("heap bump pointer %d out of range", heapNext))
		return r
	}

	// Walk the block chain: the ground truth for everything else.
	live := 0
	var freeBlocks []int // payload indices of free blocks, ascending
	i := heapStart
	for i < heapNext {
		hdr := p.curAt(i)
		size := int(hdr & blockSizeMask)
		if size <= 0 || i+1+size > heapNext {
			r.Fatal = append(r.Fatal, fmt.Sprintf("corrupt block header at word %d: size=%d", i, size))
			return r
		}
		if hdr&blockAllocated != 0 {
			live += size
		} else {
			freeBlocks = append(freeBlocks, i+1)
		}
		i += 1 + size
	}

	// Free-list check: every free block on the list exactly once, no
	// cycles, no allocated entries. Any deviation (a crash window between
	// the header flip and the relink, or a torn link word) is repaired by
	// rebuilding the whole list from the chain walk, in ascending address
	// order — deterministic, so recovery is reproducible.
	isFree := make(map[int]bool, len(freeBlocks))
	for _, fb := range freeBlocks {
		isFree[fb] = true
	}
	seen := map[int]bool{}
	listOK := true
	cur := int(p.curAt(hdrFreeHead))
	for cur != 0 {
		if !isFree[cur] || seen[cur] {
			listOK = false
			break
		}
		seen[cur] = true
		cur = int(p.curAt(cur))
	}
	if listOK && len(seen) != len(freeBlocks) {
		listOK = false
	}
	if !listOK {
		head := 0
		for j := len(freeBlocks) - 1; j >= 0; j-- {
			fb := freeBlocks[j]
			p.setCurAt(fb, uint64(head))
			p.persistMeta(fb, 1)
			head = fb
		}
		p.setCurAt(hdrFreeHead, uint64(head))
		p.persistMeta(hdrFreeHead, 1)
		r.Fixed = append(r.Fixed,
			fmt.Sprintf("rebuilt free list: %d free block(s) relinked", len(freeBlocks)))
	}

	// Live-words counter: recompute from the walk.
	if got := int(p.curAt(hdrLiveWords)); got != live {
		p.setCurAt(hdrLiveWords, uint64(live))
		p.persistMeta(hdrLiveWords, 1)
		r.Fixed = append(r.Fixed,
			fmt.Sprintf("live-words counter corrected: %d -> %d", got, live))
	}
	return r
}
